#!/usr/bin/env bash
# Docs consistency check, run by scripts/check.sh:
#
#  1. every `src/<dir>` named in docs/ARCHITECTURE.md must exist as a
#     directory (the layer map must not drift from the tree);
#  2. every intra-repo markdown link in the tracked *.md files must
#     resolve (relative to the file containing it).
#
# Exits non-zero listing every violation.
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

# --- 1. src/ subdirectories named in the architecture doc exist ------
while IFS= read -r dir; do
    if [ ! -d "$dir" ]; then
        echo "check_docs: docs/ARCHITECTURE.md names missing directory: $dir"
        fail=1
    fi
done < <(grep -oE 'src/[a-z_0-9]+' docs/ARCHITECTURE.md | sort -u)

# --- 2. intra-repo markdown links resolve ----------------------------
# Inline links: [text](target). External schemes and pure-anchor links
# are skipped; a target's own "#fragment" suffix is stripped before the
# existence check (fragments are not validated).
for md in README.md ROADMAP.md PAPER.md PAPERS.md docs/*.md; do
    [ -f "$md" ] || continue
    base=$(dirname "$md")
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|'#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            echo "check_docs: broken link in $md: $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$md" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED"
    exit 1
fi
echo "check_docs: OK"
