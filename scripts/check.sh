#!/usr/bin/env bash
# Tier-1 verification in both Release and sanitizer configurations,
# plus the repo consistency checks (docs links/layer map, bench record
# schema).
#
# Usage: scripts/check.sh [jobs]
#
# Builds the tree three times — the default Release config, an
# address+undefined sanitizer config (CMake option
# -DFOVE_SANITIZE=address,undefined), and a ThreadSanitizer config
# (-DFOVE_SANITIZE=thread; tsan cannot combine with asan, so it gets
# its own tree) — running the full ctest suite in the first two and
# the concurrency-heavy suites in the third. Exits non-zero on the
# first failure. Build directories:
#   build/        Release (shared with normal development)
#   build-san/    address,undefined sanitizers
#   build-tsan/   ThreadSanitizer
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

echo "== Docs consistency (layer map + markdown links) =="
scripts/check_docs.sh

echo "== Release build =="
cmake -B build -S . > /dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== Sanitizer build (address,undefined) =="
cmake -B build-san -S . -DFOVE_SANITIZE=address,undefined > /dev/null
cmake --build build-san -j"$JOBS"
# The multi-seed soak sweep (ctest label "soak") is excluded here and
# run bounded below — 16 seeds x 5 loss schedules is Release-cheap but
# sanitizer-expensive.
ctest --test-dir build-san --output-on-failure -j"$JOBS" -LE soak

echo "== Adaptive-rate soak sweep under asan/ubsan (bounded) =="
# The delivery soak harness is the property suite for the adaptive
# rate controller: per-frame invariants, bit-exact replay, and the
# adaptive-beats-constant-baseline comparison across seeded loss
# schedules. The Release ctest pass above already ran it at the full
# default width (16 seeds); under the sanitizers it is bounded to 4
# seeds by default. Opt into the full-width sanitized sweep with
# PCE_SOAK_SEEDS=16 scripts/check.sh.
PCE_SOAK_SEEDS="${PCE_SOAK_SEEDS:-4}" \
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ctest --test-dir build-san --output-on-failure -L soak

echo "== Decode hardening corpus under asan/ubsan =="
# The malformed-stream corpus (bit flips, truncations, extensions,
# adversarial headers) is where decode memory bugs would surface; run
# it explicitly so a filtered/partial ctest invocation can never skip
# it, with halt-on-error so sanitizer reports fail the run loudly.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-san/bd_test_bd_decode_hardening
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-san/bd_test_bd_variable_hardening

echo "== Gaze subsystem under asan/ubsan =="
# The incremental re-fixation path does raw in-place memmove shifts of
# the eccentricity storage plus band-boundary arithmetic — exactly the
# kind of code where an off-by-one is a heap overflow. Run the gaze
# suites explicitly under the sanitizers so a filtered/partial ctest
# invocation can never skip them.
for suite in gaze_test_incremental_ecc gaze_test_gaze_trace \
             gaze_test_gaze_pipeline service_test_gaze_service; do
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        "./build-san/${suite}"
done

echo "== Lossy delivery tier under asan/ubsan =="
# The reassembler copies attacker-controlled byte ranges into a frame
# buffer guided by untrusted header fields, and the prefix walk parses
# corrupted bit streams — run the net suites explicitly under the
# sanitizers so a filtered/partial ctest invocation can never skip
# them. test_reassembly in particular feeds forged-CRC corrupt-prefix
# datagrams straight at the bounds checks.
for suite in net_test_wire_format net_test_packetizer \
             net_test_reassembly net_test_delivery \
             service_test_collect_timeout; do
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        "./build-san/${suite}"
done

echo "== Fault injection + integrity hardening under asan/ubsan =="
# The injector writes raw bits into live buffers and the campaign
# drives corrupted data through every decode path — run these suites
# explicitly under the sanitizers so a filtered/partial ctest
# invocation can never skip them. The campaign smoke is bounded: a
# handful of trials on a small frame.
for suite in fault_test_fault_injector common_test_integrity \
             bd_test_bd_duplicate_validate gaze_test_gaze_integrity \
             service_test_fault_service; do
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        "./build-san/${suite}"
done
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-san/fault_test_fault_campaign

echo "== Observability tier under asan/ubsan =="
# The tracer hands out raw per-thread ring-buffer references and the
# exporter walks C-string names captured from any thread — run the obs
# suites explicitly under the sanitizers so a filtered/partial ctest
# invocation can never skip them.
for suite in obs_test_trace obs_test_metrics obs_test_trace_export \
             obs_test_frame_trace; do
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        "./build-san/${suite}"
done

echo "== Concurrency suites under ThreadSanitizer =="
# The sharded dispatch refactor (dispatcher-per-shard, cross-shard
# work stealing, lane-exclusive per-stream state hand-off) lives or
# dies on happens-before edges that asan/ubsan cannot see. Build a
# dedicated tsan tree (tsan is incompatible with asan) and run the
# queue/pool primitives plus every service and net suite that drives
# concurrent dispatchers, so a data race in the steal protocol fails
# the run loudly.
cmake -B build-tsan -S . -DFOVE_SANITIZE=thread > /dev/null
cmake --build build-tsan -j"$JOBS" --target \
    common_test_sharded_queue common_test_thread_pool \
    common_test_bounded_queue \
    service_test_sharded_service service_test_encode_service \
    service_test_gaze_service service_test_collect_timeout \
    service_test_fault_service \
    net_test_delivery net_test_delivery_sharded \
    obs_test_trace obs_test_metrics obs_test_frame_trace
for suite in common_test_sharded_queue common_test_thread_pool \
             common_test_bounded_queue \
             service_test_sharded_service service_test_encode_service \
             service_test_gaze_service service_test_collect_timeout \
             service_test_fault_service \
             net_test_delivery net_test_delivery_sharded \
             obs_test_trace obs_test_metrics obs_test_frame_trace; do
    TSAN_OPTIONS="halt_on_error=1" "./build-tsan/${suite}"
done

echo "== Bounded fault-campaign smoke (Release) =="
# A tiny end-to-end fault_runner invocation (seconds, not minutes)
# proving the campaign harness and record writer work as shipped; the
# record lands in a scratch file, not the checked-in trajectory.
rm -f build/fault_smoke.json
PCE_BENCH_FAULT_WIDTH=48 PCE_BENCH_FAULT_HEIGHT=48 \
PCE_BENCH_FAULT_TRIALS=6 PCE_BENCH_REPEATS=1 \
PCE_BENCH_THREADS=2 \
    ./build/fault_runner build/fault_smoke.json
test -s build/fault_smoke.json

echo "== BENCH_encoder.json schema (docs/PERF.md) =="
# Run explicitly (it is also a ctest suite) so a filtered/partial
# invocation can never skip validating the checked-in trajectory.
./build/bench_test_bench_schema

echo "== All checks passed =="
