#!/usr/bin/env bash
# Tier-1 verification in both Release and sanitizer configurations,
# plus the repo consistency checks (docs links/layer map, bench record
# schema).
#
# Usage: scripts/check.sh [jobs]
#
# Builds the tree twice — the default Release config and an
# address+undefined sanitizer config (CMake option
# -DFOVE_SANITIZE=address,undefined) — and runs the full ctest suite in
# each. Exits non-zero on the first failure. Build directories:
#   build/        Release (shared with normal development)
#   build-san/    sanitizers
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

echo "== Docs consistency (layer map + markdown links) =="
scripts/check_docs.sh

echo "== Release build =="
cmake -B build -S . > /dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== Sanitizer build (address,undefined) =="
cmake -B build-san -S . -DFOVE_SANITIZE=address,undefined > /dev/null
cmake --build build-san -j"$JOBS"
ctest --test-dir build-san --output-on-failure -j"$JOBS"

echo "== Decode hardening corpus under asan/ubsan =="
# The malformed-stream corpus (bit flips, truncations, extensions,
# adversarial headers) is where decode memory bugs would surface; run
# it explicitly so a filtered/partial ctest invocation can never skip
# it, with halt-on-error so sanitizer reports fail the run loudly.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-san/bd_test_bd_decode_hardening
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
    ./build-san/bd_test_bd_variable_hardening

echo "== Gaze subsystem under asan/ubsan =="
# The incremental re-fixation path does raw in-place memmove shifts of
# the eccentricity storage plus band-boundary arithmetic — exactly the
# kind of code where an off-by-one is a heap overflow. Run the gaze
# suites explicitly under the sanitizers so a filtered/partial ctest
# invocation can never skip them.
for suite in gaze_test_incremental_ecc gaze_test_gaze_trace \
             gaze_test_gaze_pipeline service_test_gaze_service; do
    ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
    UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
        "./build-san/${suite}"
done

echo "== BENCH_encoder.json schema (docs/PERF.md) =="
# Run explicitly (it is also a ctest suite) so a filtered/partial
# invocation can never skip validating the checked-in trajectory.
./build/bench_test_bench_schema

echo "== All checks passed =="
