#!/usr/bin/env bash
# Tier-1 verification in both Release and sanitizer configurations.
#
# Usage: scripts/check.sh [jobs]
#
# Builds the tree twice — the default Release config and an
# address+undefined sanitizer config (CMake option
# -DFOVE_SANITIZE=address,undefined) — and runs the full ctest suite in
# each. Exits non-zero on the first failure. Build directories:
#   build/        Release (shared with normal development)
#   build-san/    sanitizers
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-2}"

echo "== Release build =="
cmake -B build -S . > /dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== Sanitizer build (address,undefined) =="
cmake -B build-san -S . -DFOVE_SANITIZE=address,undefined > /dev/null
cmake --build build-san -j"$JOBS"
ctest --test-dir build-san --output-on-failure -j"$JOBS"

echo "== All checks passed =="
