/**
 * @file
 * BENCH_encoder.json schema validation (docs/PERF.md, "BENCH_encoder
 * record schema"): the checked-in trajectory file must parse as a JSON
 * array of record objects with the documented fields and types, and
 * the runners' append path must keep it that way. The strict
 * recursive-descent parser lives in tests/support/json_test_util.hh
 * (shared with the trace-export structural check) and is itself
 * exercised against malformed inputs below. scripts/check.sh runs this
 * suite explicitly so a perf-record regression can never slip through
 * a filtered ctest invocation.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../support/json_test_util.hh"

#ifndef PCE_SOURCE_DIR
#error "PCE_SOURCE_DIR must point at the repository root"
#endif

namespace {

using testjson::JsonParser;
using testjson::JsonValue;
using testjson::readFile;

// ------------------------------------------------------ schema checks

std::string
benchFilePath()
{
    return std::string(PCE_SOURCE_DIR) + "/BENCH_encoder.json";
}

/** Assert @p rec has string field @p key (non-empty). */
void
expectString(const JsonValue &rec, const char *key, std::size_t index)
{
    const JsonValue *v = rec.find(key);
    ASSERT_NE(v, nullptr) << "record " << index << " missing \"" << key
                          << "\"";
    EXPECT_TRUE(v->isString())
        << "record " << index << " field \"" << key
        << "\" is not a string";
    EXPECT_FALSE(v->string.empty())
        << "record " << index << " field \"" << key << "\" is empty";
}

/** Assert @p rec has a finite, non-negative numeric field @p key. */
void
expectNumber(const JsonValue &rec, const char *key, std::size_t index)
{
    const JsonValue *v = rec.find(key);
    ASSERT_NE(v, nullptr) << "record " << index << " missing \"" << key
                          << "\"";
    EXPECT_TRUE(v->isNumber())
        << "record " << index << " field \"" << key
        << "\" is not a number";
    EXPECT_GE(v->number, 0.0)
        << "record " << index << " field \"" << key << "\" is negative";
}

TEST(BenchSchema, TrajectoryFileParsesAndConforms)
{
    const std::string text = readFile(benchFilePath());
    ASSERT_FALSE(text.empty())
        << benchFilePath() << " is missing or empty";
    JsonValue doc;
    ASSERT_NO_THROW(doc = JsonParser(text).parse())
        << "BENCH_encoder.json does not parse";
    ASSERT_TRUE(doc.isArray())
        << "top level must be an array of records";
    ASSERT_FALSE(doc.array.empty())
        << "the trajectory must hold at least one record";

    for (std::size_t i = 0; i < doc.array.size(); ++i) {
        const JsonValue &rec = doc.array[i];
        ASSERT_TRUE(rec.isObject()) << "record " << i;

        // Shared fields (docs/PERF.md). Records predating the `bench`
        // discriminator are full_frame_encoder records; known types
        // are full_frame_encoder, encode_service, gaze_encode,
        // fault_campaign, and net_delivery.
        std::string bench = "full_frame_encoder";
        if (const JsonValue *b = rec.find("bench")) {
            ASSERT_TRUE(b->isString()) << "record " << i;
            bench = b->string;
        }
        for (const char *key : {"width", "height", "repeats"})
            expectNumber(rec, key, i);

        // Provenance fields exist on every record since PR 2; the
        // PR 1 record predates them (it carries `threads` instead of
        // the mt_* pair), detected by the absence of `date`.
        const bool legacy = rec.find("date") == nullptr;
        if (legacy) {
            expectNumber(rec, "threads", i);
        } else {
            expectString(rec, "date", i);
            expectString(rec, "git_rev", i);
            expectString(rec, "simd_level", i);
            for (const char *key :
                 {"hw_threads", "mt_threads", "mt_pool_workers"})
                expectNumber(rec, key, i);

            // ISO-8601 date shape: YYYY-MM-DDThh:mm:ssZ.
            const JsonValue *d = rec.find("date");
            ASSERT_NE(d, nullptr) << "record " << i;
            const std::string &date = d->string;
            EXPECT_EQ(date.size(), 20u) << "record " << i;
            if (date.size() == 20) {
                EXPECT_EQ(date[4], '-') << "record " << i;
                EXPECT_EQ(date[10], 'T') << "record " << i;
                EXPECT_EQ(date[19], 'Z') << "record " << i;
            }
        }

        if (bench == "full_frame_encoder") {
            for (const char *key :
                 {"adjust_mps_1t", "encode_mps_1t", "adjust_mps_mt",
                  "encode_mps_mt", "baseline_adjust_mps_1t",
                  "baseline_encode_mps_1t",
                  "adjust_speedup_vs_baseline",
                  "encode_speedup_vs_baseline"})
                expectNumber(rec, key, i);
            expectString(rec, "scene", i);
            // decode_* fields appeared in PR 3; require them from any
            // record that carries the decode baseline.
            if (rec.find("baseline_decode_mps_1t") != nullptr)
                for (const char *key :
                     {"decode_mps_1t", "decode_mps_mt",
                      "decode_speedup_vs_baseline"})
                    expectNumber(rec, key, i);
            // Trace-overhead fields appeared with the obs subsystem
            // (PR 10): tracing-off vs tracing-on single-thread encode
            // throughput plus their ratio. The off run must not pay
            // for disabled instrumentation (one relaxed load per
            // span), so the on/off ratio is a real measurement, not
            // noise around zero.
            if (rec.find("trace_on_vs_off") != nullptr) {
                for (const char *key :
                     {"trace_off_encode_mps_1t",
                      "trace_on_encode_mps_1t", "trace_on_vs_off",
                      "trace_events"})
                    expectNumber(rec, key, i);
                const JsonValue *ratio = rec.find("trace_on_vs_off");
                const JsonValue *ev = rec.find("trace_events");
                ASSERT_TRUE(ratio && ev) << "record " << i;
                EXPECT_GT(ratio->number, 0.0) << "record " << i;
                EXPECT_GT(ev->number, 0.0)
                    << "record " << i
                    << ": a traced run must record events";
            }
        } else if (bench == "encode_service") {
            for (const char *key :
                 {"streams", "frames_per_stream", "aggregate_mps",
                  "singleshot_mps", "service_efficiency",
                  "queue_p50_ms", "queue_p99_ms", "queue_max_ms"})
                expectNumber(rec, key, i);
            // Sharded-dispatch fields appeared in PR 8; records from
            // the single-dispatcher era lack them. Any record that
            // carries shard_count must carry the whole group, and a
            // sharded run must use at least one shard.
            if (rec.find("shard_count") != nullptr) {
                for (const char *key :
                     {"shard_count", "stolen_frames",
                      "queue_peak_depth", "shard_occupancy_mean"})
                    expectNumber(rec, key, i);
                const JsonValue *sc = rec.find("shard_count");
                ASSERT_NE(sc, nullptr) << "record " << i;
                EXPECT_GE(sc->number, 1.0)
                    << "record " << i << ": shard_count must be >= 1";
            }
            // Trace-overhead fields (PR 10): aggregate service
            // throughput with tracing off vs on, as one gated group.
            if (rec.find("trace_on_vs_off") != nullptr) {
                for (const char *key :
                     {"trace_off_aggregate_mps",
                      "trace_on_aggregate_mps", "trace_on_vs_off",
                      "trace_events"})
                    expectNumber(rec, key, i);
                const JsonValue *ratio = rec.find("trace_on_vs_off");
                const JsonValue *ev = rec.find("trace_events");
                ASSERT_TRUE(ratio && ev) << "record " << i;
                EXPECT_GT(ratio->number, 0.0) << "record " << i;
                EXPECT_GT(ev->number, 0.0)
                    << "record " << i
                    << ": a traced run must record events";
            }
        } else if (bench == "gaze_encode") {
            for (const char *key :
                 {"frames", "refix_incremental_ms", "refix_rebuild_ms",
                  "refix_speedup", "refix_fallback_rebuilds",
                  "gaze_encode_mps", "rebuild_encode_mps",
                  "moving_fixation_speedup", "saccade_frames"})
                expectNumber(rec, key, i);
            // The point of the record: incremental re-fixation must
            // be measurably cheaper than a full per-frame rebuild.
            const JsonValue *speedup = rec.find("refix_speedup");
            ASSERT_NE(speedup, nullptr) << "record " << i;
            EXPECT_GT(speedup->number, 1.0)
                << "record " << i
                << ": incremental re-fixation not cheaper than "
                   "rebuild";
        } else if (bench == "fault_campaign") {
            for (const char *key :
                 {"total_trials", "max_flips", "campaign_seconds",
                  "baseline_encode_mps", "hardened_encode_mps"})
                expectNumber(rec, key, i);
            // Per-surface coverage / silent-corruption rates for both
            // configurations; rates are probabilities. The net_packet
            // surface appeared with the delivery tier (PR 7): require
            // its fields only on records that carry them.
            static const char *const surfaces[] = {
                "tile_scratch", "bd_stream", "png_payload",
                "queue_slot",   "ecc_map",   "frame_output"};
            static const char *const metrics[] = {
                "_baseline_coverage", "_hardened_coverage",
                "_baseline_silent_rate", "_hardened_silent_rate"};
            std::vector<std::string> surface_names(
                surfaces, surfaces + std::size(surfaces));
            if (rec.find("net_packet_baseline_coverage") != nullptr)
                surface_names.push_back("net_packet");
            for (const std::string &surface : surface_names)
                for (const char *metric : metrics) {
                    const std::string key = surface + metric;
                    expectNumber(rec, key.c_str(), i);
                    const JsonValue *v = rec.find(key);
                    ASSERT_NE(v, nullptr) << "record " << i;
                    EXPECT_LE(v->number, 1.0)
                        << "record " << i << " field \"" << key
                        << "\" is not a rate";
                }
            // The point of the record: on every surface the selective
            // hardening defends, silent corruption must drop and
            // detection coverage must rise relative to baseline.
            std::vector<std::string> defended = {
                "bd_stream", "queue_slot", "ecc_map", "frame_output"};
            if (rec.find("net_packet_baseline_coverage") != nullptr)
                defended.push_back("net_packet");
            for (const std::string &s : defended) {
                const JsonValue *bs =
                    rec.find(s + "_baseline_silent_rate");
                const JsonValue *hs =
                    rec.find(s + "_hardened_silent_rate");
                const JsonValue *bc =
                    rec.find(s + "_baseline_coverage");
                const JsonValue *hc =
                    rec.find(s + "_hardened_coverage");
                ASSERT_TRUE(bs && hs && bc && hc) << "record " << i;
                EXPECT_LT(hs->number, bs->number)
                    << "record " << i << " surface " << s
                    << ": hardening did not reduce silent corruption";
                EXPECT_GT(hc->number, bc->number)
                    << "record " << i << " surface " << s
                    << ": hardening did not raise detection coverage";
            }
        } else if (bench == "net_delivery") {
            expectNumber(rec, "frames_per_loss_point", i);
            for (const int loss : {0, 10, 25}) {
                const std::string p = "loss" + std::to_string(loss);
                for (const char *metric :
                     {"_delivered_tile_fraction", "_foveal_intact_rate",
                      "_retransmit_overhead", "_effective_psnr_db"})
                    expectNumber(rec, (p + metric).c_str(), i);
                const JsonValue *frac =
                    rec.find(p + "_delivered_tile_fraction");
                const JsonValue *intact =
                    rec.find(p + "_foveal_intact_rate");
                const JsonValue *retx =
                    rec.find(p + "_retransmit_overhead");
                ASSERT_TRUE(frac && intact && retx)
                    << "record " << i;
                EXPECT_LE(frac->number, 1.0) << "record " << i;
                EXPECT_LE(intact->number, 1.0) << "record " << i;
                EXPECT_LE(retx->number, 1.0) << "record " << i;
                EXPECT_GE(frac->number, 0.0) << "record " << i;
                EXPECT_GE(intact->number, 0.0) << "record " << i;
                EXPECT_GE(retx->number, 0.0) << "record " << i;
            }
            // A clean channel must be fully transparent.
            const JsonValue *clean =
                rec.find("loss0_delivered_tile_fraction");
            ASSERT_NE(clean, nullptr) << "record " << i;
            EXPECT_DOUBLE_EQ(clean->number, 1.0)
                << "record " << i
                << ": tiles lost over a clean channel";
            // Adaptive rate-control sweep fields (ISSUE 9), gated by
            // adaptive_loss_schedules for records predating the
            // controller. The gate names the schedules the record
            // carries ("step,burst"); each contributes a full metric
            // group.
            if (const JsonValue *gate =
                    rec.find("adaptive_loss_schedules")) {
                ASSERT_TRUE(gate->isString()) << "record " << i;
                expectNumber(rec, "adaptive_frames", i);
                std::stringstream names(gate->string);
                std::string sched;
                int schedules_seen = 0;
                while (std::getline(names, sched, ',')) {
                    ++schedules_seen;
                    const std::string p = "adaptive_" + sched;
                    for (const char *metric :
                         {"_mean_budget_bytes_per_round",
                          "_foveal_intact_rate",
                          "_delivered_tile_fraction"})
                        expectNumber(rec, (p + metric).c_str(), i);
                    const JsonValue *budget =
                        rec.find(p + "_mean_budget_bytes_per_round");
                    const JsonValue *intact =
                        rec.find(p + "_foveal_intact_rate");
                    const JsonValue *frac =
                        rec.find(p + "_delivered_tile_fraction");
                    ASSERT_TRUE(budget && intact && frac)
                        << "record " << i << " schedule " << sched;
                    EXPECT_GT(budget->number, 0.0)
                        << "record " << i << " schedule " << sched;
                    EXPECT_LE(intact->number, 1.0)
                        << "record " << i << " schedule " << sched;
                    EXPECT_LE(frac->number, 1.0)
                        << "record " << i << " schedule " << sched;
                    // Convergence: frames until byte-identical
                    // delivery returned after the loss ended; -1 =
                    // never within the run, anything else bounded by
                    // the run length.
                    const JsonValue *conv =
                        rec.find(p + "_convergence_frames");
                    const JsonValue *total =
                        rec.find("adaptive_frames");
                    ASSERT_TRUE(conv && conv->isNumber())
                        << "record " << i << " schedule " << sched
                        << " missing convergence frames";
                    ASSERT_TRUE(total != nullptr) << "record " << i;
                    EXPECT_GE(conv->number, -1.0)
                        << "record " << i << " schedule " << sched;
                    EXPECT_LE(conv->number, total->number)
                        << "record " << i << " schedule " << sched;
                }
                EXPECT_GE(schedules_seen, 2)
                    << "record " << i
                    << ": adaptive sweep must cover step and burst";
            }
        } else {
            ADD_FAILURE() << "record " << i
                          << " has unknown bench type \"" << bench
                          << "\" — document it in docs/PERF.md and "
                             "extend this test";
        }
    }
}

TEST(BenchSchema, ParserRejectsMalformedDocuments)
{
    const char *bad[] = {
        "",
        "[",
        "[{]",
        "[{}",
        "{\"a\": }",
        "[1,]",
        "[01]",
        "[1.2.3]",
        "[\"unterminated]",
        "[{\"a\":1,\"a\":2}]",   // duplicate key
        "[true] trailing",
        "[nul]",
        "[+1]",
        "[1e]",
    };
    for (const char *text : bad) {
        const std::string doc(text);
        EXPECT_THROW(JsonParser(doc).parse(), std::runtime_error)
            << "accepted: " << doc;
    }
}

TEST(BenchSchema, ParserAcceptsRepresentativeDocuments)
{
    const char *good[] = {
        "[]",
        "[{}]",
        "{\"a\": [1, -2.5, 1e3, 1.5E-2], \"b\": \"x\\n\\u0041\", "
        "\"c\": true, \"d\": null}",
        "  [ { \"nested\" : { \"deep\" : [ [ ] ] } } ]  ",
    };
    for (const char *text : good) {
        const std::string doc(text);
        EXPECT_NO_THROW(JsonParser(doc).parse()) << "rejected: " << doc;
    }
}

} // namespace
