/**
 * @file
 * Tests for the reporting helpers shared by the benchmark harness.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/report.hh"

namespace pce {
namespace {

TEST(TextTable, AlignsColumnsAndPrintsTitle)
{
    TextTable table("Demo");
    table.setHeader({"scene", "bpp"});
    table.addRow({"office", "7.17"});
    table.addRow({"fortnite-long-name", "5.51"});
    std::ostringstream ss;
    table.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    EXPECT_NE(out.find("office"), std::string::npos);
    EXPECT_NE(out.find("fortnite-long-name"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
    // Both value cells start in the same column: find the lines.
    std::istringstream lines(out);
    std::string line;
    std::vector<std::string> rows;
    while (std::getline(lines, line))
        rows.push_back(line);
    ASSERT_GE(rows.size(), 4u);
    EXPECT_EQ(rows[3].find("7.17"), rows[4].find("5.51"));
}

TEST(TextTable, WorksWithoutHeader)
{
    TextTable table("NoHeader");
    table.addRow({"a", "b"});
    std::ostringstream ss;
    table.print(ss);
    EXPECT_NE(ss.str().find("a"), std::string::npos);
}

TEST(FmtDouble, PrecisionControl)
{
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
    EXPECT_EQ(fmtDouble(3.14159, 4), "3.1416");
    EXPECT_EQ(fmtDouble(-1.5, 1), "-1.5");
    EXPECT_EQ(fmtDouble(2.0, 0), "2");
}

TEST(BitsPerPixel, BasicMath)
{
    EXPECT_DOUBLE_EQ(bitsPerPixel(2400, 100), 24.0);
    EXPECT_DOUBLE_EQ(bitsPerPixel(0, 100), 0.0);
    EXPECT_DOUBLE_EQ(bitsPerPixel(100, 0), 0.0);
    EXPECT_DOUBLE_EQ(bitsPerPixelFromBytes(300, 100), 24.0);
}

TEST(Reduction, VsRaw)
{
    EXPECT_DOUBLE_EQ(reductionVsRawPercent(24.0), 0.0);
    EXPECT_DOUBLE_EQ(reductionVsRawPercent(12.0), 50.0);
    EXPECT_DOUBLE_EQ(reductionVsRawPercent(8.0),
                     100.0 * (1.0 - 8.0 / 24.0));
}

TEST(Reduction, VsBaseline)
{
    EXPECT_DOUBLE_EQ(reductionVsBaselinePercent(8.0, 12.0),
                     100.0 * (1.0 - 8.0 / 12.0));
    EXPECT_DOUBLE_EQ(reductionVsBaselinePercent(12.0, 12.0), 0.0);
    // Negative when we are worse than the baseline (PNG sometimes wins,
    // Fig. 10).
    EXPECT_LT(reductionVsBaselinePercent(14.0, 12.0), 0.0);
    EXPECT_DOUBLE_EQ(reductionVsBaselinePercent(8.0, 0.0), 0.0);
}

} // namespace
} // namespace pce
