/**
 * @file
 * Tests for the temporal-flicker metric and the temporal behaviour of
 * the perceptual encoder on animated scenes.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "metrics/temporal.hh"
#include "render/scenes.hh"

namespace pce {
namespace {

TEST(TemporalFlicker, ZeroWhenAdjustmentIsCoherent)
{
    // Identical adjustment offsets at t and t+1: induced flicker = 0
    // even though both content and adjustment are nonzero.
    const int n = 16;
    ImageF orig_t(n, n, Vec3(0.4, 0.4, 0.4));
    ImageF orig_t1(n, n, Vec3(0.5, 0.5, 0.5));  // content moves
    ImageF adj_t(n, n, Vec3(0.42, 0.4, 0.4));   // constant offset
    ImageF adj_t1(n, n, Vec3(0.52, 0.5, 0.5));
    const auto stats =
        temporalFlicker(orig_t, orig_t1, adj_t, adj_t1);
    EXPECT_NEAR(stats.meanFlicker, 0.0, 1e-12);
    EXPECT_NEAR(stats.maxFlicker, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(stats.fractionAbove, 0.0);
}

TEST(TemporalFlicker, DetectsInducedFlicker)
{
    // Static content, oscillating adjustment: pure induced flicker.
    const int n = 16;
    const ImageF orig(n, n, Vec3(0.4, 0.4, 0.4));
    const ImageF adj_t(n, n, Vec3(0.45, 0.4, 0.4));
    const ImageF adj_t1(n, n, Vec3(0.35, 0.4, 0.4));
    const auto stats = temporalFlicker(orig, orig, adj_t, adj_t1);
    EXPECT_NEAR(stats.meanFlicker, 0.1, 1e-12);
    EXPECT_NEAR(stats.maxFlicker, 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(stats.fractionAbove, 1.0);
}

TEST(TemporalFlicker, ThresholdSplitsPopulation)
{
    const int n = 8;
    const ImageF orig(n, n, Vec3(0.5, 0.5, 0.5));
    ImageF adj_t = orig;
    ImageF adj_t1 = orig;
    // Half the pixels flicker strongly.
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n / 2; ++x)
            adj_t1.at(x, y) = Vec3(0.6, 0.5, 0.5);
    const auto stats =
        temporalFlicker(orig, orig, adj_t, adj_t1, 0.05);
    EXPECT_NEAR(stats.fractionAbove, 0.5, 1e-12);
}

TEST(TemporalFlicker, RejectsSizeMismatch)
{
    const ImageF a(4, 4);
    const ImageF b(5, 4);
    EXPECT_THROW(temporalFlicker(a, b, a, a), std::invalid_argument);
}

TEST(TemporalFlicker, EncoderIsReasonablyStableOnAnimation)
{
    // Two consecutive frames of an animated scene: the encoder's
    // induced flicker should stay well below the adjustment magnitude
    // itself (deterministic per-tile decisions keep static regions
    // static).
    const int n = 96;
    DisplayGeometry g;
    g.width = n;
    g.height = n;
    g.fixationX = n / 2.0;
    g.fixationY = n / 2.0;
    const EccentricityMap ecc(g);
    const AnalyticDiscriminationModel model;
    const PerceptualEncoder enc(model, {});

    const double dt = 1.0 / 72.0;
    const ImageF orig_t =
        renderScene(SceneId::Fortnite, {n, n, 0, 1.0, 0});
    const ImageF orig_t1 =
        renderScene(SceneId::Fortnite, {n, n, 0, 1.0 + dt, 0});
    const ImageF adj_t = enc.adjustFrame(orig_t, ecc);
    const ImageF adj_t1 = enc.adjustFrame(orig_t1, ecc);

    const auto stats =
        temporalFlicker(orig_t, orig_t1, adj_t, adj_t1);
    // Mean adjustment magnitude for context.
    double adj_mag = 0.0;
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
            const Vec3 d = adj_t.at(x, y) - orig_t.at(x, y);
            adj_mag +=
                std::abs(d.x) + std::abs(d.y) + std::abs(d.z);
        }
    adj_mag /= static_cast<double>(orig_t.pixelCount());

    EXPECT_LT(stats.meanFlicker, adj_mag)
        << "induced flicker should not exceed the adjustment itself";
    EXPECT_GE(stats.meanFlicker, 0.0);
}

} // namespace
} // namespace pce
