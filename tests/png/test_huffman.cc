/**
 * @file
 * Tests for length-limited Huffman code construction (package-merge) and
 * the canonical DEFLATE code assignment.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.hh"
#include "png/huffman.hh"

namespace pce {
namespace {

/** Kraft sum scaled by 2^15 (integer-exact). */
uint64_t
kraftSum(const std::vector<uint8_t> &lengths)
{
    uint64_t sum = 0;
    for (uint8_t l : lengths)
        if (l > 0)
            sum += uint64_t(1) << (15 - l);
    return sum;
}

TEST(PackageMerge, AllZeroFrequencies)
{
    const auto lengths = packageMergeLengths({0, 0, 0}, 15);
    for (uint8_t l : lengths)
        EXPECT_EQ(l, 0);
}

TEST(PackageMerge, SingleSymbolGetsLengthOne)
{
    const auto lengths = packageMergeLengths({0, 42, 0}, 15);
    EXPECT_EQ(lengths[0], 0);
    EXPECT_EQ(lengths[1], 1);
    EXPECT_EQ(lengths[2], 0);
}

TEST(PackageMerge, TwoSymbols)
{
    const auto lengths = packageMergeLengths({100, 1}, 15);
    EXPECT_EQ(lengths[0], 1);
    EXPECT_EQ(lengths[1], 1);
}

TEST(PackageMerge, KraftInequalityHolds)
{
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint64_t> freqs(2 + rng.uniformInt(60));
        for (auto &f : freqs)
            f = rng.uniformInt(1000);
        const auto lengths = packageMergeLengths(freqs, 15);
        EXPECT_LE(kraftSum(lengths), uint64_t(1) << 15);
        // Every used symbol coded; every unused symbol not.
        for (std::size_t i = 0; i < freqs.size(); ++i) {
            if (freqs[i] > 0)
                EXPECT_GT(lengths[i], 0);
            else
                EXPECT_EQ(lengths[i], 0);
        }
    }
}

TEST(PackageMerge, RespectsLengthLimit)
{
    // Exponential frequencies force deep unconstrained Huffman trees;
    // the limited code must cap at the limit.
    std::vector<uint64_t> freqs;
    uint64_t f = 1;
    for (int i = 0; i < 20; ++i) {
        freqs.push_back(f);
        f *= 3;
    }
    for (unsigned limit : {7u, 10u, 15u}) {
        const auto lengths = packageMergeLengths(freqs, limit);
        for (uint8_t l : lengths) {
            EXPECT_GT(l, 0);
            EXPECT_LE(l, limit);
        }
        EXPECT_LE(kraftSum(lengths), uint64_t(1) << 15);
    }
}

TEST(PackageMerge, MoreFrequentSymbolsGetShorterCodes)
{
    const std::vector<uint64_t> freqs{1, 2, 4, 8, 16, 32, 64, 128};
    const auto lengths = packageMergeLengths(freqs, 15);
    for (std::size_t i = 1; i < freqs.size(); ++i)
        EXPECT_LE(lengths[i], lengths[i - 1]);
}

TEST(PackageMerge, MatchesUnconstrainedHuffmanCost)
{
    // With a generous limit, package-merge is plain Huffman-optimal.
    // Compare total cost against a directly computed Huffman tree cost
    // for a known case: freqs {5,9,12,13,16,45} -> classic example with
    // optimal cost 5*4+9*4+12*3+13*3+16*3+45*1 = 224.
    const std::vector<uint64_t> freqs{5, 9, 12, 13, 16, 45};
    const auto lengths = packageMergeLengths(freqs, 15);
    uint64_t cost = 0;
    for (std::size_t i = 0; i < freqs.size(); ++i)
        cost += freqs[i] * lengths[i];
    EXPECT_EQ(cost, 224u);
}

TEST(PackageMerge, ThrowsWhenAlphabetExceedsLimit)
{
    // 5 symbols cannot be coded with 2-bit codes... they can (4 codes
    // of length 2 is full): 5 need at least length 3 for some. With
    // limit 2 -> only 4 codewords available.
    std::vector<uint64_t> freqs(5, 1);
    EXPECT_THROW(packageMergeLengths(freqs, 2), std::invalid_argument);
}

TEST(CanonicalCodes, Rfc1951WorkedExample)
{
    // RFC 1951 3.2.2 example: lengths (3,3,3,3,3,2,4,4) produce codes
    // 010,011,100,101,110,00,1110,1111.
    const std::vector<uint8_t> lengths{3, 3, 3, 3, 3, 2, 4, 4};
    const auto codes = canonicalCodes(lengths);
    EXPECT_EQ(codes[0], 0b010u);
    EXPECT_EQ(codes[1], 0b011u);
    EXPECT_EQ(codes[2], 0b100u);
    EXPECT_EQ(codes[3], 0b101u);
    EXPECT_EQ(codes[4], 0b110u);
    EXPECT_EQ(codes[5], 0b00u);
    EXPECT_EQ(codes[6], 0b1110u);
    EXPECT_EQ(codes[7], 0b1111u);
}

TEST(CanonicalCodes, PrefixFreeProperty)
{
    Rng rng(2);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint64_t> freqs(2 + rng.uniformInt(40));
        for (auto &f : freqs)
            f = 1 + rng.uniformInt(500);
        const auto lengths = packageMergeLengths(freqs, 15);
        const auto codes = canonicalCodes(lengths);
        // Check pairwise prefix-freedom.
        for (std::size_t i = 0; i < codes.size(); ++i) {
            for (std::size_t j = 0; j < codes.size(); ++j) {
                if (i == j || lengths[i] == 0 || lengths[j] == 0)
                    continue;
                if (lengths[i] <= lengths[j]) {
                    const uint32_t prefix =
                        codes[j] >> (lengths[j] - lengths[i]);
                    EXPECT_NE(prefix, codes[i])
                        << "code " << i << " prefixes code " << j;
                }
            }
        }
    }
}

TEST(ReverseBits, KnownValues)
{
    EXPECT_EQ(reverseBits(0b1, 1), 0b1u);
    EXPECT_EQ(reverseBits(0b10, 2), 0b01u);
    EXPECT_EQ(reverseBits(0b1100, 4), 0b0011u);
    EXPECT_EQ(reverseBits(0b10110, 5), 0b01101u);
}

TEST(HuffmanDecoder, DecodesCanonicalStream)
{
    const std::vector<uint8_t> lengths{3, 3, 3, 3, 3, 2, 4, 4};
    const auto codes = canonicalCodes(lengths);
    const HuffmanDecoder decoder(lengths);

    // Encode symbols 5, 0, 7 MSB-first into a flat bit vector.
    std::vector<int> bits;
    for (int sym : {5, 0, 7}) {
        for (int b = lengths[sym] - 1; b >= 0; --b)
            bits.push_back((codes[sym] >> b) & 1);
    }
    std::size_t pos = 0;
    auto next_bit = [&]() { return bits[pos++]; };
    EXPECT_EQ(decoder.decode(next_bit), 5);
    EXPECT_EQ(decoder.decode(next_bit), 0);
    EXPECT_EQ(decoder.decode(next_bit), 7);
    EXPECT_EQ(pos, bits.size());
}

TEST(HuffmanDecoder, RoundTripsRandomCodes)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<uint64_t> freqs(2 + rng.uniformInt(30));
        for (auto &f : freqs)
            f = 1 + rng.uniformInt(100);
        const auto lengths = packageMergeLengths(freqs, 15);
        const auto codes = canonicalCodes(lengths);
        const HuffmanDecoder decoder(lengths);

        std::vector<int> symbols;
        std::vector<int> bits;
        for (int i = 0; i < 100; ++i) {
            const int sym =
                static_cast<int>(rng.uniformInt(freqs.size()));
            symbols.push_back(sym);
            for (int b = lengths[sym] - 1; b >= 0; --b)
                bits.push_back((codes[sym] >> b) & 1);
        }
        std::size_t pos = 0;
        auto next_bit = [&]() { return bits[pos++]; };
        for (int want : symbols)
            EXPECT_EQ(decoder.decode(next_bit), want);
    }
}

TEST(HuffmanDecoder, RejectsOversubscribedLengths)
{
    // Three codes of length 1 are over-subscribed.
    EXPECT_THROW(HuffmanDecoder({1, 1, 1}), std::invalid_argument);
}

} // namespace
} // namespace pce
