/**
 * @file
 * Tests for the PNG encoder/decoder (the Sec. 5.3 PNG baseline).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hh"
#include "png/png_codec.hh"

namespace pce {
namespace {

ImageU8
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return img;
}

ImageU8
gradientImage(int w, int h)
{
    ImageU8 img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            img.setChannel(x, y, 0, static_cast<uint8_t>(x & 0xff));
            img.setChannel(x, y, 1, static_cast<uint8_t>(y & 0xff));
            img.setChannel(x, y, 2,
                           static_cast<uint8_t>((x + y) & 0xff));
        }
    }
    return img;
}

TEST(PngFilter, RoundTripsAllContent)
{
    for (uint64_t seed : {1u, 2u, 3u}) {
        const ImageU8 img = randomImage(23, 17, seed);
        const auto filtered = pngFilterScanlines(img);
        EXPECT_EQ(pngUnfilterScanlines(filtered, 23, 17), img);
    }
}

TEST(PngFilter, GradientPrefersDifferencingFilters)
{
    // A smooth gradient should rarely pick filter type 0 (None): the
    // sum-of-absolute heuristic favors Sub/Up/Paeth there.
    const ImageU8 img = gradientImage(64, 64);
    const auto filtered = pngFilterScanlines(img);
    const std::size_t rowbytes = 64 * 3 + 1;
    int type0 = 0;
    for (int y = 0; y < 64; ++y)
        type0 += filtered[y * rowbytes] == 0;
    EXPECT_LT(type0, 8);
}

TEST(PngFilter, FilteredSizeIncludesTypeBytes)
{
    const ImageU8 img = randomImage(10, 5, 4);
    const auto filtered = pngFilterScanlines(img);
    EXPECT_EQ(filtered.size(), static_cast<std::size_t>(5 * (10 * 3 + 1)));
}

class PngRoundTripTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(PngRoundTripTest, EncodeDecodeIsLossless)
{
    const auto [w, h] = GetParam();
    const ImageU8 img = randomImage(w, h, 100 + w + h);
    const auto png = pngEncode(img);
    EXPECT_EQ(pngDecode(png), img);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PngRoundTripTest,
                         ::testing::Values(std::pair(1, 1),
                                           std::pair(16, 16),
                                           std::pair(64, 48),
                                           std::pair(33, 7),
                                           std::pair(128, 3)));

TEST(Png, SignatureAndChunksWellFormed)
{
    const auto png = pngEncode(gradientImage(8, 8));
    ASSERT_GE(png.size(), 8u);
    const uint8_t sig[8] = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1a,
                            '\n'};
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(png[i], sig[i]);
    // IHDR follows immediately with length 13.
    EXPECT_EQ(png[8], 0);
    EXPECT_EQ(png[9], 0);
    EXPECT_EQ(png[10], 0);
    EXPECT_EQ(png[11], 13);
    EXPECT_EQ(png[12], 'I');
    EXPECT_EQ(png[13], 'H');
}

TEST(Png, SmoothContentCompressesWell)
{
    const ImageU8 img = gradientImage(128, 128);
    const auto png = pngEncode(img);
    EXPECT_LT(png.size(), img.byteSize() / 4);
}

TEST(Png, RandomContentDoesNotExplode)
{
    const ImageU8 img = randomImage(64, 64, 9);
    const auto png = pngEncode(img);
    // Incompressible data should cost at most a few percent overhead.
    EXPECT_LT(png.size(), img.byteSize() * 11 / 10);
}

TEST(Png, DecodeRejectsCorruptCrc)
{
    auto png = pngEncode(gradientImage(8, 8));
    // Flip a byte inside the IDAT payload (well after the header).
    png[png.size() / 2] ^= 0x01;
    EXPECT_THROW(pngDecode(png), std::runtime_error);
}

TEST(Png, DecodeRejectsBadSignature)
{
    auto png = pngEncode(gradientImage(4, 4));
    png[0] = 0x00;
    EXPECT_THROW(pngDecode(png), std::runtime_error);
}

TEST(Png, DecodeRejectsTruncatedFile)
{
    auto png = pngEncode(gradientImage(16, 16));
    png.resize(png.size() - 10);
    EXPECT_THROW(pngDecode(png), std::runtime_error);
}

TEST(Png, WritesReadableFile)
{
    namespace fs = std::filesystem;
    const ImageU8 img = gradientImage(12, 9);
    const std::string path =
        (fs::temp_directory_path() / "pce_test.png").string();
    writePng(path, img);
    EXPECT_GT(fs::file_size(path), 50u);
    fs::remove(path);
}

} // namespace
} // namespace pce
