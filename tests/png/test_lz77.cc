/**
 * @file
 * Tests for the LZ77 match finder.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "png/lz77.hh"

namespace pce {
namespace {

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

void
expectRoundTrip(const std::vector<uint8_t> &data,
                const Lz77Params &params = {})
{
    const auto tokens = lz77Tokenize(data.data(), data.size(), params);
    EXPECT_EQ(lz77Expand(tokens), data);
}

TEST(Lz77, EmptyInput)
{
    const auto tokens = lz77Tokenize(nullptr, 0);
    EXPECT_TRUE(tokens.empty());
}

TEST(Lz77, AllLiteralsForShortInput)
{
    const auto data = bytesOf("ab");
    const auto tokens = lz77Tokenize(data.data(), data.size());
    ASSERT_EQ(tokens.size(), 2u);
    EXPECT_FALSE(tokens[0].isMatch);
    EXPECT_FALSE(tokens[1].isMatch);
    expectRoundTrip(data);
}

TEST(Lz77, FindsSimpleRepeat)
{
    const auto data = bytesOf("abcabcabcabc");
    const auto tokens = lz77Tokenize(data.data(), data.size());
    bool has_match = false;
    for (const auto &t : tokens)
        has_match |= t.isMatch;
    EXPECT_TRUE(has_match);
    EXPECT_LT(tokens.size(), data.size());
    expectRoundTrip(data);
}

TEST(Lz77, OverlappingRunCompresses)
{
    // 'aaaa...' uses distance-1 overlapping matches (RLE in LZ77 form).
    const std::vector<uint8_t> data(1000, 'a');
    const auto tokens = lz77Tokenize(data.data(), data.size());
    EXPECT_LE(tokens.size(), 8u);
    expectRoundTrip(data);
}

TEST(Lz77, MatchFieldsWithinDeflateBounds)
{
    Rng rng(1);
    std::vector<uint8_t> data;
    // Repetitive-ish data with noise to generate varied matches.
    for (int i = 0; i < 50000; ++i)
        data.push_back(
            static_cast<uint8_t>((i % 97) ^ (rng.uniformInt(4) == 0
                                                 ? rng.uniformInt(256)
                                                 : 0)));
    const auto tokens = lz77Tokenize(data.data(), data.size());
    for (const auto &t : tokens) {
        if (!t.isMatch)
            continue;
        EXPECT_GE(t.length, 3);
        EXPECT_LE(t.length, 258);
        EXPECT_GE(t.distance, 1);
        EXPECT_LE(t.distance, 32768);
    }
    expectRoundTrip(data);
}

TEST(Lz77, RandomDataRoundTrips)
{
    Rng rng(2);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<uint8_t> data(1 + rng.uniformInt(5000));
        for (auto &b : data)
            b = static_cast<uint8_t>(rng.uniformInt(256));
        expectRoundTrip(data);
    }
}

TEST(Lz77, LowEntropyDataRoundTrips)
{
    Rng rng(3);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<uint8_t> data(1 + rng.uniformInt(5000));
        for (auto &b : data)
            b = static_cast<uint8_t>(rng.uniformInt(3));
        expectRoundTrip(data);
    }
}

TEST(Lz77, LazyMatchingToggleBothRoundTrip)
{
    Rng rng(4);
    std::vector<uint8_t> data(20000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>((i / 7 + i / 13) & 0xff);

    Lz77Params lazy;
    lazy.lazyMatching = true;
    Lz77Params greedy;
    greedy.lazyMatching = false;
    expectRoundTrip(data, lazy);
    expectRoundTrip(data, greedy);

    // Lazy matching should never produce more compressed-side tokens on
    // this structured input by a large margin (sanity, not strictness).
    const auto lazy_tokens =
        lz77Tokenize(data.data(), data.size(), lazy);
    const auto greedy_tokens =
        lz77Tokenize(data.data(), data.size(), greedy);
    EXPECT_LE(lazy_tokens.size(), greedy_tokens.size() + 50);
}

TEST(Lz77Expand, RejectsBadDistance)
{
    Lz77Token bad;
    bad.isMatch = true;
    bad.length = 5;
    bad.distance = 3;  // nothing emitted yet
    EXPECT_THROW(lz77Expand({bad}), std::invalid_argument);
}

TEST(Lz77, WindowLimitRespected)
{
    // Far-apart repeats beyond 32 KiB cannot be matched.
    std::vector<uint8_t> data;
    const auto pattern = bytesOf("unique-pattern-here!");
    data.insert(data.end(), pattern.begin(), pattern.end());
    data.insert(data.end(), 40000, 0);
    data.insert(data.end(), pattern.begin(), pattern.end());
    const auto tokens = lz77Tokenize(data.data(), data.size());
    for (const auto &t : tokens) {
        if (t.isMatch) {
            EXPECT_LE(t.distance, 32768);
        }
    }
    expectRoundTrip(data);
}

} // namespace
} // namespace pce
