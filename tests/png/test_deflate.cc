/**
 * @file
 * Round-trip and known-answer tests for DEFLATE / zlib.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "png/deflate.hh"
#include "png/inflate.hh"

namespace pce {
namespace {

std::vector<uint8_t>
bytesOf(const std::string &s)
{
    return {s.begin(), s.end()};
}

void
expectDeflateRoundTrip(const std::vector<uint8_t> &data)
{
    const auto compressed = deflateCompress(data);
    const auto back = inflateDecompress(compressed);
    EXPECT_EQ(back, data);
}

TEST(LengthCode, BoundaryValues)
{
    EXPECT_EQ(lengthCodeFor(3).code, 257);
    EXPECT_EQ(lengthCodeFor(3).extraBits, 0);
    EXPECT_EQ(lengthCodeFor(10).code, 264);
    EXPECT_EQ(lengthCodeFor(11).code, 265);
    EXPECT_EQ(lengthCodeFor(11).extraBits, 1);
    EXPECT_EQ(lengthCodeFor(258).code, 285);
    EXPECT_EQ(lengthCodeFor(258).extraBits, 0);
    EXPECT_EQ(lengthCodeFor(257).code, 284);
    EXPECT_THROW(lengthCodeFor(2), std::invalid_argument);
    EXPECT_THROW(lengthCodeFor(259), std::invalid_argument);
}

TEST(DistanceCode, BoundaryValues)
{
    EXPECT_EQ(distanceCodeFor(1).code, 0);
    EXPECT_EQ(distanceCodeFor(4).code, 3);
    EXPECT_EQ(distanceCodeFor(5).code, 4);
    EXPECT_EQ(distanceCodeFor(5).extraBits, 1);
    EXPECT_EQ(distanceCodeFor(32768).code, 29);
    EXPECT_THROW(distanceCodeFor(0), std::invalid_argument);
    EXPECT_THROW(distanceCodeFor(32769), std::invalid_argument);
}

TEST(Deflate, EmptyInput)
{
    expectDeflateRoundTrip({});
}

TEST(Deflate, SingleByte)
{
    expectDeflateRoundTrip({42});
}

TEST(Deflate, TextRoundTrip)
{
    expectDeflateRoundTrip(bytesOf(
        "It is a truth universally acknowledged, that a single man in "
        "possession of a good fortune, must be in want of a wife. It "
        "is a truth universally acknowledged..."));
}

TEST(Deflate, HighlyCompressibleShrinks)
{
    const std::vector<uint8_t> data(100000, 'z');
    const auto compressed = deflateCompress(data);
    EXPECT_LT(compressed.size(), data.size() / 100);
    EXPECT_EQ(inflateDecompress(compressed), data);
}

TEST(Deflate, RandomDataRoundTrips)
{
    Rng rng(1);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<uint8_t> data(1 + rng.uniformInt(30000));
        for (auto &b : data)
            b = static_cast<uint8_t>(rng.uniformInt(256));
        expectDeflateRoundTrip(data);
    }
}

TEST(Deflate, StructuredDataRoundTrips)
{
    std::vector<uint8_t> data;
    for (int i = 0; i < 60000; ++i)
        data.push_back(static_cast<uint8_t>((i * i / 64) & 0xff));
    expectDeflateRoundTrip(data);
}

TEST(Deflate, MultiBlockStreams)
{
    // Force several DEFLATE blocks via a tiny per-block token budget.
    DeflateParams params;
    params.maxTokensPerBlock = 500;
    Rng rng(2);
    std::vector<uint8_t> data(40000);
    for (auto &b : data)
        b = static_cast<uint8_t>(rng.uniformInt(64));
    const auto compressed = deflateCompress(data, params);
    EXPECT_EQ(inflateDecompress(compressed), data);
}

TEST(Inflate, StoredBlockHandWritten)
{
    // Hand-assembled stored block: BFINAL=1 BTYPE=00, LEN=3, payload.
    std::vector<uint8_t> stream;
    stream.push_back(0x01);  // BFINAL=1, BTYPE=00, then padding
    stream.push_back(0x03);  // LEN low
    stream.push_back(0x00);  // LEN high
    stream.push_back(0xfc);  // NLEN low
    stream.push_back(0xff);  // NLEN high
    stream.push_back('h');
    stream.push_back('e');
    stream.push_back('y');
    EXPECT_EQ(inflateDecompress(stream), bytesOf("hey"));
}

TEST(Inflate, FixedHuffmanBlockHandWritten)
{
    // BFINAL=1 BTYPE=01 with literal 'a' (0x61 -> code 0x91, 8 bits)
    // and end-of-block (7 zero bits). Assembled LSB-first.
    // 'a' = 97; fixed code for 97 is 0b10010001 (0x30 + 97 = 0x91).
    std::vector<uint8_t> stream;
    // bits: 1 (final), 10 -> btype=01 stored LSB-first as 1,1,0...
    // Build with a tiny local bit packer to stay readable.
    std::vector<int> bits;
    bits.push_back(1);         // BFINAL
    bits.push_back(1);         // BTYPE low bit
    bits.push_back(0);         // BTYPE high bit
    for (int i = 7; i >= 0; --i)  // literal code MSB-first
        bits.push_back((0x91 >> i) & 1);
    for (int i = 0; i < 7; ++i)   // EOB code 0000000
        bits.push_back(0);
    std::size_t nbytes = (bits.size() + 7) / 8;
    stream.assign(nbytes, 0);
    for (std::size_t i = 0; i < bits.size(); ++i)
        if (bits[i])
            stream[i / 8] |= static_cast<uint8_t>(1 << (i % 8));
    EXPECT_EQ(inflateDecompress(stream), bytesOf("a"));
}

TEST(Inflate, RejectsReservedBlockType)
{
    // BFINAL=1, BTYPE=11 (reserved).
    const std::vector<uint8_t> stream{0x07};
    EXPECT_THROW(inflateDecompress(stream), std::runtime_error);
}

TEST(Inflate, RejectsCorruptStoredLength)
{
    std::vector<uint8_t> stream{0x01, 0x03, 0x00, 0x00, 0x00, 'h',
                                'e', 'y'};
    EXPECT_THROW(inflateDecompress(stream), std::runtime_error);
}

TEST(Zlib, RoundTripWithChecksum)
{
    const auto data = bytesOf("zlib container round trip payload");
    const auto compressed = zlibCompress(data);
    EXPECT_EQ(zlibDecompress(compressed), data);
}

TEST(Zlib, HeaderIsStandardsCompliant)
{
    const auto compressed = zlibCompress(bytesOf("x"));
    ASSERT_GE(compressed.size(), 6u);
    EXPECT_EQ(compressed[0] & 0x0f, 8);  // deflate method
    EXPECT_EQ((compressed[0] * 256 + compressed[1]) % 31, 0);
}

TEST(Zlib, DetectsCorruptedPayload)
{
    auto compressed = zlibCompress(bytesOf("corruption target data"));
    compressed[compressed.size() / 2] ^= 0x55;
    EXPECT_THROW(zlibDecompress(compressed), std::runtime_error);
}

TEST(Zlib, DetectsTruncation)
{
    auto compressed = zlibCompress(bytesOf("truncation target"));
    compressed.resize(4);
    EXPECT_THROW(zlibDecompress(compressed), std::runtime_error);
}

TEST(Deflate, CompressionBeatsNaiveOnText)
{
    std::string text;
    for (int i = 0; i < 500; ++i)
        text += "the quick brown fox jumps over the lazy dog. ";
    const auto data = bytesOf(text);
    const auto compressed = deflateCompress(data);
    EXPECT_LT(compressed.size(), data.size() / 10);
}

} // namespace
} // namespace pce
