/**
 * @file
 * Known-answer tests for CRC-32 and Adler-32.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "png/checksum.hh"

namespace pce {
namespace {

uint32_t
crcOf(const std::string &s)
{
    return crc32(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

uint32_t
adlerOf(const std::string &s)
{
    return adler32(reinterpret_cast<const uint8_t *>(s.data()),
                   s.size());
}

TEST(Crc32, StandardTestVector)
{
    // The canonical CRC-32 check value.
    EXPECT_EQ(crcOf("123456789"), 0xCBF43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(crcOf(""), 0x00000000u);
}

TEST(Crc32, KnownStrings)
{
    EXPECT_EQ(crcOf("a"), 0xE8B7BE43u);
    EXPECT_EQ(crcOf("abc"), 0x352441C2u);
    EXPECT_EQ(crcOf("The quick brown fox jumps over the lazy dog"),
              0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string s = "incremental-checksum-data-0123456789";
    Crc32 inc;
    inc.update(reinterpret_cast<const uint8_t *>(s.data()), 10);
    inc.update(reinterpret_cast<const uint8_t *>(s.data()) + 10,
               s.size() - 10);
    EXPECT_EQ(inc.value(), crcOf(s));
}

TEST(Crc32, PngIendChunk)
{
    // The IEND chunk CRC is fixed in every PNG file: type bytes only.
    const uint8_t type[4] = {'I', 'E', 'N', 'D'};
    EXPECT_EQ(crc32(type, 4), 0xAE426082u);
}

TEST(Adler32, StandardTestVectors)
{
    // RFC 1950 examples / well-known values.
    EXPECT_EQ(adlerOf(""), 1u);
    EXPECT_EQ(adlerOf("a"), 0x00620062u);
    EXPECT_EQ(adlerOf("abc"), 0x024d0127u);
    EXPECT_EQ(adlerOf("Wikipedia"), 0x11E60398u);
}

TEST(Adler32, IncrementalMatchesOneShot)
{
    const std::string s(10000, 'x');
    Adler32 inc;
    inc.update(reinterpret_cast<const uint8_t *>(s.data()), 5000);
    inc.update(reinterpret_cast<const uint8_t *>(s.data()) + 5000, 5000);
    EXPECT_EQ(inc.value(), adlerOf(s));
}

TEST(Adler32, ModularReductionOnLongInput)
{
    // Long 0xff-runs force many modular reductions.
    const std::string s(100000, '\xff');
    const uint32_t v = adlerOf(s);
    const uint32_t a = v & 0xffff;
    const uint32_t b = v >> 16;
    EXPECT_LT(a, 65521u);
    EXPECT_LT(b, 65521u);
}

} // namespace
} // namespace pce
