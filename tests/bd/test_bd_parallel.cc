/**
 * @file
 * Byte-identity of the parallel BD encode across thread counts, plus
 * the reusable-buffer (encodeInto) contract.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bd/bd_codec.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace pce {
namespace {

/** Random image with tile-local structure (realistic BD ranges). */
ImageU8
randomImage(Rng &rng, int w, int h)
{
    ImageU8 img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const int base = static_cast<int>(rng.uniform(0.0, 200.0));
            for (int c = 0; c < 3; ++c)
                img.setChannel(
                    x, y, c,
                    static_cast<uint8_t>(
                        base + static_cast<int>(
                                   rng.uniform(0.0, 55.0))));
        }
    }
    return img;
}

TEST(BdParallel, ThreadCountSweepIsByteIdentical)
{
    Rng rng(1);
    const struct
    {
        int w, h, tile;
    } cases[] = {{64, 64, 4}, {61, 47, 4}, {13, 7, 5}, {128, 96, 16},
                 {1, 1, 4},   {4, 4, 4}};
    for (const auto &cs : cases) {
        const ImageU8 img = randomImage(rng, cs.w, cs.h);
        const BdCodec codec(cs.tile);
        const std::vector<uint8_t> serial = codec.encode(img);

        for (const int workers : {0, 1, 2, 3}) {
            ThreadPool pool(workers);
            for (const int participants : {2, 3, 8}) {
                std::vector<uint8_t> out;
                BdEncodeScratch scratch;
                BdFrameStats stats;
                codec.encodeInto(img, &stats, out, &scratch, &pool,
                                 participants);
                EXPECT_EQ(out, serial)
                    << cs.w << "x" << cs.h << " tile " << cs.tile
                    << " workers " << workers << " participants "
                    << participants;
                EXPECT_EQ(stats.totalBits(),
                          codec.analyze(img).totalBits());
            }
        }
    }
}

TEST(BdParallel, ParallelStreamDecodesLosslessly)
{
    Rng rng(2);
    const ImageU8 img = randomImage(rng, 96, 80);
    const BdCodec codec(4);
    ThreadPool pool(3);
    std::vector<uint8_t> out;
    codec.encodeInto(img, nullptr, out, nullptr, &pool, 4);
    EXPECT_EQ(BdCodec::decode(out), img);
}

TEST(BdParallel, StatsMatchSerialSinglePass)
{
    Rng rng(3);
    const ImageU8 img = randomImage(rng, 64, 48);
    const BdCodec codec(4);
    BdFrameStats serial_stats;
    codec.encode(img, &serial_stats);

    ThreadPool pool(2);
    BdFrameStats parallel_stats;
    std::vector<uint8_t> out;
    codec.encodeInto(img, &parallel_stats, out, nullptr, &pool, 3);
    EXPECT_EQ(parallel_stats.pixels, serial_stats.pixels);
    EXPECT_EQ(parallel_stats.headerBits, serial_stats.headerBits);
    EXPECT_EQ(parallel_stats.metaBits, serial_stats.metaBits);
    EXPECT_EQ(parallel_stats.baseBits, serial_stats.baseBits);
    EXPECT_EQ(parallel_stats.deltaBits, serial_stats.deltaBits);
}

TEST(BdParallel, EncodeIntoReusesTheOutputBuffer)
{
    Rng rng(4);
    const ImageU8 img = randomImage(rng, 64, 64);
    const BdCodec codec(4);
    const std::vector<uint8_t> expected = codec.encode(img);

    std::vector<uint8_t> out;
    BdEncodeScratch scratch;
    codec.encodeInto(img, nullptr, out, &scratch);
    EXPECT_EQ(out, expected);

    // Steady state: the second encode of a same-size frame must land
    // in the same allocation (capacity reuse, no growth).
    const uint8_t *data = out.data();
    const std::size_t cap = out.capacity();
    codec.encodeInto(img, nullptr, out, &scratch);
    EXPECT_EQ(out, expected);
    EXPECT_EQ(out.data(), data);
    EXPECT_EQ(out.capacity(), cap);
}

TEST(BdParallel, ScratchSurvivesGeometryChanges)
{
    // One scratch reused across different frame sizes and tile sizes
    // must keep producing serial-identical streams.
    Rng rng(5);
    BdEncodeScratch scratch;
    std::vector<uint8_t> out;
    ThreadPool pool(2);
    for (const int dim : {32, 17, 64, 8}) {
        const ImageU8 img = randomImage(rng, dim, dim + 3);
        for (const int tile : {4, 7}) {
            const BdCodec codec(tile);
            codec.encodeInto(img, nullptr, out, &scratch, &pool, 3);
            EXPECT_EQ(out, codec.encode(img))
                << dim << " tile " << tile;
        }
    }
}

} // namespace
} // namespace pce
