/**
 * @file
 * Byte-identity of the parallel BD encode across thread counts, plus
 * the reusable-buffer (encodeInto) contract.
 */

#include <gtest/gtest.h>

#include <vector>

#include "bd/bd_codec.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace pce {
namespace {

/** Random image with tile-local structure (realistic BD ranges). */
ImageU8
randomImage(Rng &rng, int w, int h)
{
    ImageU8 img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const int base = static_cast<int>(rng.uniform(0.0, 200.0));
            for (int c = 0; c < 3; ++c)
                img.setChannel(
                    x, y, c,
                    static_cast<uint8_t>(
                        base + static_cast<int>(
                                   rng.uniform(0.0, 55.0))));
        }
    }
    return img;
}

TEST(BdParallel, ThreadCountSweepIsByteIdentical)
{
    Rng rng(1);
    const struct
    {
        int w, h, tile;
    } cases[] = {{64, 64, 4}, {61, 47, 4}, {13, 7, 5}, {128, 96, 16},
                 {1, 1, 4},   {4, 4, 4}};
    for (const auto &cs : cases) {
        const ImageU8 img = randomImage(rng, cs.w, cs.h);
        const BdCodec codec(cs.tile);
        const std::vector<uint8_t> serial = codec.encode(img);

        for (const int workers : {0, 1, 2, 3}) {
            ThreadPool pool(workers);
            for (const int participants : {2, 3, 8}) {
                std::vector<uint8_t> out;
                BdEncodeScratch scratch;
                BdFrameStats stats;
                codec.encodeInto(img, &stats, out, &scratch, &pool,
                                 participants);
                EXPECT_EQ(out, serial)
                    << cs.w << "x" << cs.h << " tile " << cs.tile
                    << " workers " << workers << " participants "
                    << participants;
                EXPECT_EQ(stats.totalBits(),
                          codec.analyze(img).totalBits());
            }
        }
    }
}

TEST(BdParallel, ParallelStreamDecodesLosslessly)
{
    Rng rng(2);
    const ImageU8 img = randomImage(rng, 96, 80);
    const BdCodec codec(4);
    ThreadPool pool(3);
    std::vector<uint8_t> out;
    codec.encodeInto(img, nullptr, out, nullptr, &pool, 4);
    EXPECT_EQ(BdCodec::decode(out), img);
}

TEST(BdParallel, StatsMatchSerialSinglePass)
{
    Rng rng(3);
    const ImageU8 img = randomImage(rng, 64, 48);
    const BdCodec codec(4);
    BdFrameStats serial_stats;
    codec.encode(img, &serial_stats);

    ThreadPool pool(2);
    BdFrameStats parallel_stats;
    std::vector<uint8_t> out;
    codec.encodeInto(img, &parallel_stats, out, nullptr, &pool, 3);
    EXPECT_EQ(parallel_stats.pixels, serial_stats.pixels);
    EXPECT_EQ(parallel_stats.headerBits, serial_stats.headerBits);
    EXPECT_EQ(parallel_stats.metaBits, serial_stats.metaBits);
    EXPECT_EQ(parallel_stats.baseBits, serial_stats.baseBits);
    EXPECT_EQ(parallel_stats.deltaBits, serial_stats.deltaBits);
}

TEST(BdParallel, EncodeIntoReusesTheOutputBuffer)
{
    Rng rng(4);
    const ImageU8 img = randomImage(rng, 64, 64);
    const BdCodec codec(4);
    const std::vector<uint8_t> expected = codec.encode(img);

    std::vector<uint8_t> out;
    BdEncodeScratch scratch;
    codec.encodeInto(img, nullptr, out, &scratch);
    EXPECT_EQ(out, expected);

    // Steady state: the second encode of a same-size frame must land
    // in the same allocation (capacity reuse, no growth).
    const uint8_t *data = out.data();
    const std::size_t cap = out.capacity();
    codec.encodeInto(img, nullptr, out, &scratch);
    EXPECT_EQ(out, expected);
    EXPECT_EQ(out.data(), data);
    EXPECT_EQ(out.capacity(), cap);
}

TEST(BdParallel, DecodeIntoRoundTripSweepIsByteIdentical)
{
    // encodeInto -> decodeInto across tile sizes, odd frame sizes
    // (edge tiles), and participant counts: the parallel decode must
    // reproduce the source image byte for byte, and match the serial
    // decode exactly, for any pool/participant combination.
    Rng rng(6);
    const struct
    {
        int w, h;
    } sizes[] = {{64, 64}, {61, 47}, {13, 7}, {1, 1}, {33, 40}};
    for (const int tile : {4, 8, 16}) {
        const BdCodec codec(tile);
        for (const auto &sz : sizes) {
            const ImageU8 img = randomImage(rng, sz.w, sz.h);
            std::vector<uint8_t> stream;
            codec.encodeInto(img, nullptr, stream);

            ImageU8 serial;
            BdCodec::decodeInto(stream, serial);
            EXPECT_EQ(serial, img)
                << sz.w << "x" << sz.h << " tile " << tile;

            for (const int workers : {0, 1, 3}) {
                ThreadPool pool(workers);
                for (const int participants : {1, 2, 8}) {
                    ImageU8 parallel;
                    BdDecodeScratch scratch;
                    BdCodec::decodeInto(stream, parallel, &scratch,
                                        &pool, participants);
                    EXPECT_EQ(parallel, img)
                        << sz.w << "x" << sz.h << " tile " << tile
                        << " workers " << workers << " participants "
                        << participants;
                }
            }
        }
    }
}

TEST(BdParallel, DecodeIntoReusesEveryBuffer)
{
    // Steady state: the second decode of a same-geometry stream must
    // land in the same allocations (image data, tile grid, offsets) —
    // the decode mirror of EncodeIntoReusesTheOutputBuffer.
    Rng rng(7);
    const ImageU8 img = randomImage(rng, 64, 48);
    const BdCodec codec(4);
    const std::vector<uint8_t> stream = codec.encode(img);

    ThreadPool pool(2);
    ImageU8 out;
    BdDecodeScratch scratch;
    BdCodec::decodeInto(stream, out, &scratch, &pool, 3);
    EXPECT_EQ(out, img);

    const uint8_t *img_data = out.data().data();
    const TileRect *tiles_data = scratch.tiles.data();
    const std::size_t *offsets_data = scratch.bitOffsets.data();
    for (int repeat = 0; repeat < 3; ++repeat) {
        BdCodec::decodeInto(stream, out, &scratch, &pool, 3);
        EXPECT_EQ(out, img);
        EXPECT_EQ(out.data().data(), img_data);
        EXPECT_EQ(scratch.tiles.data(), tiles_data);
        EXPECT_EQ(scratch.bitOffsets.data(), offsets_data);
    }
}

TEST(BdParallel, DecodeScratchSurvivesGeometryChanges)
{
    // One decode scratch reused across frame/tile geometries must keep
    // decoding losslessly (the cached grid is keyed, not assumed).
    Rng rng(8);
    BdDecodeScratch scratch;
    ImageU8 out;
    ThreadPool pool(2);
    for (const int dim : {32, 17, 64, 8}) {
        const ImageU8 img = randomImage(rng, dim, dim + 3);
        for (const int tile : {4, 7}) {
            const BdCodec codec(tile);
            BdCodec::decodeInto(codec.encode(img), out, &scratch,
                                &pool, 3);
            EXPECT_EQ(out, img) << dim << " tile " << tile;
        }
    }
}

TEST(BdParallel, ScratchSurvivesGeometryChanges)
{
    // One scratch reused across different frame sizes and tile sizes
    // must keep producing serial-identical streams.
    Rng rng(5);
    BdEncodeScratch scratch;
    std::vector<uint8_t> out;
    ThreadPool pool(2);
    for (const int dim : {32, 17, 64, 8}) {
        const ImageU8 img = randomImage(rng, dim, dim + 3);
        for (const int tile : {4, 7}) {
            const BdCodec codec(tile);
            codec.encodeInto(img, nullptr, out, &scratch, &pool, 3);
            EXPECT_EQ(out, codec.encode(img))
                << dim << " tile " << tile;
        }
    }
}

} // namespace
} // namespace pce
