/**
 * @file
 * Tests for the Base+Delta framebuffer codec (paper Sec. 2.2).
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "common/rng.hh"

namespace pce {
namespace {

ImageU8
randomImage(int w, int h, uint64_t seed, int range = 256)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(range));
    return img;
}

TEST(BdDeltaWidth, ExactBoundaries)
{
    EXPECT_EQ(bdDeltaWidth(10, 10), 0u);   // flat
    EXPECT_EQ(bdDeltaWidth(10, 11), 1u);   // range 1
    EXPECT_EQ(bdDeltaWidth(10, 12), 2u);   // range 2
    EXPECT_EQ(bdDeltaWidth(10, 13), 2u);   // range 3
    EXPECT_EQ(bdDeltaWidth(10, 14), 3u);   // range 4: ceil, not floor
    EXPECT_EQ(bdDeltaWidth(0, 255), 8u);   // full range
    EXPECT_EQ(bdDeltaWidth(0, 127), 7u);
    EXPECT_EQ(bdDeltaWidth(0, 128), 8u);
}

TEST(BdDeltaWidth, PaperFloorFormWouldLoseData)
{
    // Documentation of the Eq. 6 deviation: floor(log2(range+1)) for
    // range 4 yields 2 bits, but deltas 0..4 need 3. Our ceil form is
    // asserted lossless by the round-trip tests below.
    const unsigned range = 4;
    const unsigned floor_bits = 2;  // floor(log2(5)) = 2
    EXPECT_LT(1u << floor_bits, range + 1);
    EXPECT_GE(1u << bdDeltaWidth(0, 4), range + 1);
}

class BdRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(BdRoundTripTest, LosslessForRandomImages)
{
    const auto [w, h, tile] = GetParam();
    const BdCodec codec(tile);
    const ImageU8 img = randomImage(w, h, 1000 + w * h + tile);
    const auto stream = codec.encode(img);
    const ImageU8 back = BdCodec::decode(stream);
    EXPECT_EQ(back, img);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTiles, BdRoundTripTest,
    ::testing::Values(std::tuple(16, 16, 4), std::tuple(64, 32, 4),
                      std::tuple(33, 17, 4),   // ragged edges
                      std::tuple(7, 5, 4),     // image smaller than tile
                      std::tuple(40, 40, 8), std::tuple(50, 30, 6),
                      std::tuple(64, 64, 16), std::tuple(10, 10, 1),
                      std::tuple(1, 1, 4)));

TEST(BdCodec, SmoothContentCompressesRandomDoesNot)
{
    // BD thrives on small local ranges.
    ImageU8 smooth(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            for (int c = 0; c < 3; ++c)
                smooth.setChannel(x, y, c,
                                  static_cast<uint8_t>((x + y) / 2));
    const ImageU8 noisy = randomImage(64, 64, 7);

    const BdCodec codec(4);
    const double smooth_bpp = codec.analyze(smooth).bitsPerPixel();
    const double noisy_bpp = codec.analyze(noisy).bitsPerPixel();
    EXPECT_LT(smooth_bpp, 12.0);
    EXPECT_GT(noisy_bpp, 20.0);  // random data compresses ~not at all
}

TEST(BdCodec, FlatImageCostsOnlyBasesAndMetadata)
{
    ImageU8 flat(16, 16);
    for (auto &b : flat.data())
        b = 123;
    const BdCodec codec(4);
    const auto stats = codec.analyze(flat);
    EXPECT_EQ(stats.deltaBits, 0u);
    // 16 tiles * 3 channels * (8 base + 4 meta).
    EXPECT_EQ(stats.baseBits, 16u * 3 * 8);
    EXPECT_EQ(stats.metaBits, 16u * 3 * 4);
}

TEST(BdCodec, AnalyzeMatchesEncodedStreamLength)
{
    Rng rng(9);
    for (int trial = 0; trial < 20; ++trial) {
        const int w = 1 + static_cast<int>(rng.uniformInt(70));
        const int h = 1 + static_cast<int>(rng.uniformInt(70));
        const int tile = 1 + static_cast<int>(rng.uniformInt(8));
        const BdCodec codec(tile);
        const ImageU8 img = randomImage(w, h, trial * 77u);
        const auto stats = codec.analyze(img);
        const auto stream = codec.encode(img);
        // The stream is byte-aligned at the very end only.
        EXPECT_EQ((stats.totalBits() + 7) / 8, stream.size());
    }
}

TEST(BdCodec, AnalyzeTileChannelMatchesManual)
{
    ImageU8 img(4, 4);
    // Channel 0 values 10..25 -> range 15 -> 4 bits.
    int v = 10;
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            img.setChannel(x, y, 0, static_cast<uint8_t>(v++));
    const TileRect rect{0, 0, 4, 4};
    const auto stats = BdCodec::analyzeTileChannel(img, rect, 0);
    EXPECT_EQ(stats.deltaWidth, 4u);
    EXPECT_EQ(stats.baseBits, 8u);
    EXPECT_EQ(stats.metaBits, 4u);
    EXPECT_EQ(stats.deltaBits, 16u * 4);
}

TEST(BdCodec, ReductionPercentagesAreConsistent)
{
    const ImageU8 img = randomImage(32, 32, 10, 16);  // low-range noise
    const BdCodec codec(4);
    const auto stats = codec.analyze(img);
    const double bpp = stats.bitsPerPixel();
    EXPECT_NEAR(stats.reductionVsRawPercent(),
                100.0 * (1.0 - bpp / 24.0), 1e-9);
    EXPECT_LT(bpp, 24.0);
}

TEST(BdCodec, DecodeRejectsCorruptMagic)
{
    const BdCodec codec(4);
    auto stream = codec.encode(randomImage(8, 8, 11));
    stream[0] ^= 0xff;
    EXPECT_THROW(BdCodec::decode(stream), std::runtime_error);
}

TEST(BdCodec, DecodeRejectsTruncatedStream)
{
    const BdCodec codec(4);
    auto stream = codec.encode(randomImage(32, 32, 12));
    stream.resize(stream.size() / 2);
    EXPECT_THROW(BdCodec::decode(stream), std::runtime_error);
}

TEST(BdCodec, RejectsBadTileSize)
{
    EXPECT_THROW(BdCodec(0), std::invalid_argument);
    EXPECT_THROW(BdCodec(-1), std::invalid_argument);
    EXPECT_THROW(BdCodec(300), std::invalid_argument);
}

TEST(BdFrameStats, BitsPerPixelHandlesEmpty)
{
    BdFrameStats stats;
    EXPECT_DOUBLE_EQ(stats.bitsPerPixel(), 0.0);
}

} // namespace
} // namespace pce
