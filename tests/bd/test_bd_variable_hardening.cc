/**
 * @file
 * Hardened-decode corpus for the variable bit-length BD extension,
 * mirroring tests/bd/test_bd_decode_hardening.cc: deterministic
 * mutations (bit flips, truncations, extensions) of known-good BDV
 * streams plus hand-crafted adversarial headers. Every mutant must
 * either decode cleanly or throw std::runtime_error — never crash,
 * hang, zero-fill a truncation, or scale work with a lying header.
 * scripts/check.sh runs this suite under asan/ubsan on every tier-1
 * sanitizer pass.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "bd/bd_variable.hh"
#include "common/bitstream.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace pce {
namespace {

constexpr uint32_t kBdvMagic = 0x424456;  // "BDV"

ImageU8
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return img;
}

/** A frame with row structure, so mode-1 (per-row) records appear. */
ImageU8
rowStructuredImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (int y = 0; y < h; ++y) {
        const uint8_t row_base =
            static_cast<uint8_t>(rng.uniformInt(200));
        for (int x = 0; x < w; ++x)
            for (int c = 0; c < 3; ++c)
                img.setChannel(x, y, c,
                               static_cast<uint8_t>(
                                   row_base + rng.uniformInt(4)));
    }
    return img;
}

bool
decodesCleanly(const std::vector<uint8_t> &mutant)
{
    ImageU8 out;
    try {
        BdVariableCodec::decodeInto(mutant, out);
    } catch (const std::runtime_error &) {
        return false;
    }
    EXPECT_GT(out.width(), 0);
    EXPECT_GT(out.height(), 0);
    EXPECT_EQ(out.data().size(),
              static_cast<std::size_t>(out.width()) * out.height() * 3);
    return true;
}

/** Header layout: [24-bit magic][16-bit w][16-bit h][8-bit tile]. */
std::vector<uint8_t>
craftHeader(uint32_t w, uint32_t h, uint32_t tile)
{
    BitWriter bw;
    bw.putBits(kBdvMagic, 24);
    bw.putBits(w, 16);
    bw.putBits(h, 16);
    bw.putBits(tile, 8);
    bw.alignToByte();
    return bw.take();
}

TEST(BdVariableHardening, DecodeIntoMatchesLegacyRoundTrip)
{
    // Both content classes (noise: mode 0; row structure: mode 1) and
    // ragged edge tiles round-trip through the hardened path, with and
    // without scratch reuse.
    const BdVariableCodec codec(4);
    BdDecodeScratch scratch;
    for (const auto &img :
         {randomImage(33, 17, 11), rowStructuredImage(40, 24, 12),
          rowStructuredImage(7, 5, 13)}) {
        const auto stream = codec.encode(img);
        EXPECT_EQ(BdVariableCodec::decode(stream), img);
        ImageU8 out;
        BdVariableCodec::decodeInto(stream, out, &scratch);
        EXPECT_EQ(out, img);
    }
}

TEST(BdVariableHardening, EveryHeaderBitFlipIsGraceful)
{
    const BdVariableCodec codec(4);
    const auto valid = codec.encode(rowStructuredImage(33, 17, 1));
    const ImageU8 reference = BdVariableCodec::decode(valid);
    // The full header is the first 8 bytes (24+16+16+8 bits).
    for (std::size_t byte = 0; byte < 8; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = valid;
            mutant[byte] ^= static_cast<uint8_t>(1u << bit);
            if (decodesCleanly(mutant)) {
                EXPECT_EQ(BdVariableCodec::decode(mutant), reference)
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

TEST(BdVariableHardening, EveryPayloadByteBitFlipIsGraceful)
{
    // Small frames so the sweep covers every payload byte: flips hit
    // mode bits (re-branching the whole walk), widths, bases, deltas,
    // and the final padding. Run both content classes so both record
    // modes sit under the flips.
    const BdVariableCodec codec(4);
    for (const auto &img :
         {randomImage(9, 6, 2), rowStructuredImage(9, 6, 3)}) {
        const auto valid = codec.encode(img);
        for (std::size_t byte = 8; byte < valid.size(); ++byte) {
            for (int bit = 0; bit < 8; ++bit) {
                auto mutant = valid;
                mutant[byte] ^= static_cast<uint8_t>(1u << bit);
                ImageU8 out;
                try {
                    BdVariableCodec::decodeInto(mutant, out);
                    // A surviving mutant altered only payload bits:
                    // geometry must be untouched.
                    EXPECT_EQ(out.width(), 9);
                    EXPECT_EQ(out.height(), 6);
                } catch (const std::runtime_error &) {
                    // Rejected cleanly.
                }
            }
        }
    }
}

TEST(BdVariableHardening, EveryTruncationLengthThrows)
{
    const BdVariableCodec codec(5);
    const auto valid = codec.encode(rowStructuredImage(21, 13, 4));
    ImageU8 out;
    for (std::size_t len = 0; len < valid.size(); ++len) {
        const std::vector<uint8_t> truncated(valid.begin(),
                                             valid.begin() + len);
        EXPECT_THROW(BdVariableCodec::decodeInto(truncated, out),
                     std::runtime_error)
            << "length " << len;
    }
}

TEST(BdVariableHardening, TrailingGarbageBytesThrow)
{
    const BdVariableCodec codec(4);
    const auto valid = codec.encode(randomImage(16, 16, 5));
    ImageU8 out;
    for (const std::size_t extra : {1u, 2u, 7u, 64u}) {
        for (const uint8_t fill : {0x00, 0xff, 0x5a}) {
            auto mutant = valid;
            mutant.insert(mutant.end(), extra, fill);
            EXPECT_THROW(BdVariableCodec::decodeInto(mutant, out),
                         std::runtime_error)
                << extra << " bytes of 0x" << std::hex
                << static_cast<int>(fill);
        }
    }
}

TEST(BdVariableHardening, NonzeroPaddingBitsThrow)
{
    // A 1x1 tile-4 frame costs header + 3 x (1+4+8) = 103 bits (mode 0
    // always wins a single-pixel tile), so the final byte carries
    // padding written as zeros. Flipping only padding changes no
    // decoded pixel — the decoder must still reject the non-canonical
    // stream.
    const BdVariableCodec codec(4);
    ImageU8 px(1, 1);
    px.setChannel(0, 0, 0, 7);
    const auto valid = codec.encode(px);
    const auto stats = codec.analyze(px);
    ASSERT_NE(stats.totalBits % 8, 0u) << "need a padded stream";
    auto mutant = valid;
    mutant.back() |= 1u;  // lowest bit is always padding here
    ImageU8 out;
    EXPECT_THROW(BdVariableCodec::decodeInto(mutant, out),
                 std::runtime_error);
}

TEST(BdVariableHardening, ZeroDimensionHeadersThrow)
{
    ImageU8 out;
    const std::tuple<uint32_t, uint32_t, uint32_t> cases[] = {
        {0, 16, 4}, {16, 0, 4}, {16, 16, 0}, {0, 0, 0}};
    for (const auto &[w, h, tile] : cases) {
        auto stream = craftHeader(w, h, tile);
        stream.insert(stream.end(), 64, 0);  // plausible payload bytes
        EXPECT_THROW(BdVariableCodec::decodeInto(stream, out),
                     std::runtime_error)
            << w << "x" << h << " tile " << tile;
    }
}

TEST(BdVariableHardening, OverflowingDimensionsRejectedBeforeAllocation)
{
    // 0xFFFF x 0xFFFF tile-1 claims 2^32 tiles: the 64-bit floor check
    // must reject the short stream without walking the claimed tile
    // count or allocating the claimed frame; the time bound is the
    // observable.
    ImageU8 out;
    const auto t0 = std::chrono::steady_clock::now();
    const std::tuple<uint32_t, uint32_t, uint32_t> cases[] = {
        {0xffff, 0xffff, 1},
        {0xffff, 0xffff, 255},
        {0xffff, 1, 1},
        {1, 0xffff, 1}};
    for (const auto &[w, h, tile] : cases) {
        auto stream = craftHeader(w, h, tile);
        stream.insert(stream.end(), 4096, 0xa5);
        EXPECT_THROW(BdVariableCodec::decodeInto(stream, out),
                     std::runtime_error)
            << w << "x" << h << " tile " << tile;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(seconds, 1.0);
}

TEST(BdVariableHardening, WellFormedDecompressionBombRejected)
{
    // Flat mode-0 tile-channels (1 mode + 4 width-0 + 8 base bits, no
    // deltas) honestly encode a 0xFFFF x 0xFFFF frame in ~320 KB; only
    // the pixel cap stands between that stream and a ~13 GB
    // allocation.
    BitWriter bw;
    bw.putBits(kBdvMagic, 24);
    bw.putBits(0xffff, 16);
    bw.putBits(0xffff, 16);
    bw.putBits(255, 8);
    const std::size_t tiles = 257 * 257;  // ceil(65535/255) = 257
    for (std::size_t t = 0; t < tiles * 3; ++t) {
        bw.putBits(0, 1);   // mode 0
        bw.putBits(0, 4);   // flat: width 0, no deltas follow
        bw.putBits(77, 8);  // base
    }
    bw.alignToByte();
    const std::vector<uint8_t> bomb = bw.take();
    ImageU8 out;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(BdVariableCodec::decodeInto(bomb, out),
                 std::runtime_error);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(seconds, 1.0);
}

TEST(BdVariableHardening, PixelCapIsCallerTunable)
{
    const BdVariableCodec codec(4);
    const ImageU8 img = randomImage(32, 16, 9);  // 512 pixels
    const auto stream = codec.encode(img);
    ImageU8 out;
    EXPECT_THROW(BdVariableCodec::decodeInto(stream, out, nullptr,
                                             nullptr, 1, 511),
                 std::runtime_error);
    BdVariableCodec::decodeInto(stream, out, nullptr, nullptr, 1, 512);
    EXPECT_EQ(out, img);
}

TEST(BdVariableHardening, OversizedWidthFieldsThrowInBothModes)
{
    // Mode 0 with a claimed 15-bit delta width.
    {
        BitWriter bw;
        bw.putBits(kBdvMagic, 24);
        bw.putBits(4, 16);
        bw.putBits(4, 16);
        bw.putBits(4, 8);
        bw.putBits(0, 1);    // mode 0
        bw.putBits(15, 4);   // delta width 15: invalid
        bw.putBits(0, 8);    // base
        for (int i = 0; i < 16; ++i)
            bw.putBits(0x7fff, 15);  // the claimed deltas
        for (int c = 0; c < 2; ++c) {
            bw.putBits(0, 1);
            bw.putBits(0, 4);
            bw.putBits(0, 8);
        }
        bw.alignToByte();
        ImageU8 out;
        EXPECT_THROW(BdVariableCodec::decodeInto(bw.take(), out),
                     std::runtime_error);
    }
    // Mode 1 with a claimed 12-bit row width.
    {
        BitWriter bw;
        bw.putBits(kBdvMagic, 24);
        bw.putBits(4, 16);
        bw.putBits(4, 16);
        bw.putBits(4, 8);
        bw.putBits(1, 1);    // mode 1
        bw.putBits(0, 8);    // base
        bw.putBits(12, 4);   // row 0 width 12: invalid
        for (int i = 0; i < 4; ++i)
            bw.putBits(0xfff, 12);
        for (int r = 1; r < 4; ++r)
            bw.putBits(0, 4);  // remaining rows flat
        for (int c = 0; c < 2; ++c) {
            bw.putBits(0, 1);
            bw.putBits(0, 4);
            bw.putBits(0, 8);
        }
        bw.alignToByte();
        ImageU8 out;
        EXPECT_THROW(BdVariableCodec::decodeInto(bw.take(), out),
                     std::runtime_error);
    }
}

TEST(BdVariableHardening, MidTileTruncationThrowsNotZeroFills)
{
    // Cut a valid stream inside the last tile's delta block: the old
    // decoder zero-filled those deltas (BitReader semantics) and
    // returned a frame; the hardened walk must throw instead.
    const BdVariableCodec codec(4);
    const auto valid = codec.encode(rowStructuredImage(32, 32, 6));
    ImageU8 out;
    auto cut = valid;
    cut.resize(valid.size() - 1);
    EXPECT_THROW(BdVariableCodec::decodeInto(cut, out),
                 std::runtime_error);
}

TEST(BdVariableHardening, RandomStreamsAreGraceful)
{
    Rng rng(7);
    ImageU8 out;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint8_t> bytes(rng.uniformInt(512));
        for (auto &b : bytes)
            b = static_cast<uint8_t>(rng.uniformInt(256));
        // Half the trials get a valid magic so the header parse
        // proceeds into dimension/payload validation.
        if (trial % 2 == 0 && bytes.size() >= 3) {
            bytes[0] = 0x42;
            bytes[1] = 0x44;
            bytes[2] = 0x56;
        }
        (void)decodesCleanly(bytes);
    }
}

TEST(BdVariableHardening, ParallelDecodeIsByteIdenticalAndAgreesOnMutants)
{
    // The parallel path runs only over validated offsets, so it must
    // accept/reject exactly like the serial path and produce identical
    // pixels when it accepts — across participant counts and scratch
    // reuse (pointer-pinned).
    const BdVariableCodec codec(4);
    const auto valid = codec.encode(rowStructuredImage(48, 48, 8));
    ThreadPool pool(3);
    BdDecodeScratch scratch;
    ImageU8 serial_out;
    ImageU8 parallel_out;
    BdVariableCodec::decodeInto(valid, serial_out);
    for (const int participants : {2, 4}) {
        BdVariableCodec::decodeInto(valid, parallel_out, &scratch,
                                    &pool, participants);
        EXPECT_EQ(parallel_out, serial_out)
            << participants << " participants";
    }
    const uint8_t *pinned = parallel_out.data().data();
    BdVariableCodec::decodeInto(valid, parallel_out, &scratch, &pool, 4);
    EXPECT_EQ(parallel_out.data().data(), pinned)
        << "steady-state decode reallocated";

    Rng rng(9);
    for (int trial = 0; trial < 150; ++trial) {
        auto mutant = valid;
        const std::size_t pos = rng.uniformInt(mutant.size());
        mutant[pos] ^= static_cast<uint8_t>(1u << rng.uniformInt(8));
        bool serial_ok = true;
        try {
            BdVariableCodec::decodeInto(mutant, serial_out);
        } catch (const std::runtime_error &) {
            serial_ok = false;
        }
        bool parallel_ok = true;
        try {
            BdVariableCodec::decodeInto(mutant, parallel_out, &scratch,
                                        &pool, 4);
        } catch (const std::runtime_error &) {
            parallel_ok = false;
        }
        EXPECT_EQ(serial_ok, parallel_ok) << "trial " << trial;
        if (serial_ok && parallel_ok)
            EXPECT_EQ(serial_out, parallel_out) << "trial " << trial;
    }
}

} // namespace
} // namespace pce
