/**
 * @file
 * Hardened-decode corpus: deterministic mutations (bit flips,
 * truncations, extensions) of known-good BD streams, plus hand-crafted
 * adversarial headers. Every mutant must either decode cleanly or
 * throw std::runtime_error — never crash, hang, or scale work with a
 * lying header. scripts/check.sh runs this suite under asan/ubsan on
 * every tier-1 sanitizer pass.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "bd/bd_codec.hh"
#include "common/bitstream.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"

namespace pce {
namespace {

ImageU8
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return img;
}

/**
 * Feed a mutant to decodeInto. Anything other than a clean decode or a
 * clean std::runtime_error fails the test (other exception types would
 * escape and abort it; memory errors trip the sanitizer build).
 *
 * @return true when the mutant decoded without throwing.
 */
bool
decodesCleanly(const std::vector<uint8_t> &mutant)
{
    ImageU8 out;
    try {
        BdCodec::decodeInto(mutant, out);
    } catch (const std::runtime_error &) {
        return false;
    }
    // A mutant that decodes must have produced a frame of its header's
    // claimed geometry (never a zero/garbage-sized image).
    EXPECT_GT(out.width(), 0);
    EXPECT_GT(out.height(), 0);
    EXPECT_EQ(out.data().size(),
              static_cast<std::size_t>(out.width()) * out.height() * 3);
    return true;
}

/** Header layout: [24-bit magic][16-bit w][16-bit h][8-bit tile]. */
std::vector<uint8_t>
craftHeader(uint32_t w, uint32_t h, uint32_t tile)
{
    BitWriter bw;
    bw.putBits(0x424431, 24);
    bw.putBits(w, 16);
    bw.putBits(h, 16);
    bw.putBits(tile, 8);
    bw.alignToByte();
    return bw.take();
}

TEST(BdDecodeHardening, EveryHeaderBitFlipIsGraceful)
{
    const BdCodec codec(4);
    const auto valid = codec.encode(randomImage(33, 17, 1));
    const ImageU8 reference = BdCodec::decode(valid);
    // The full header is the first 8 bytes (24+16+16+8 bits).
    for (std::size_t byte = 0; byte < 8; ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = valid;
            mutant[byte] ^= static_cast<uint8_t>(1u << bit);
            if (decodesCleanly(mutant)) {
                // Only an identity-preserving flip may still decode —
                // and then it must round-trip to the original frame.
                EXPECT_EQ(BdCodec::decode(mutant), reference)
                    << "byte " << byte << " bit " << bit;
            }
        }
    }
}

TEST(BdDecodeHardening, EveryPayloadByteBitFlipIsGraceful)
{
    // Small frame so the sweep covers every payload byte of the
    // stream, not a sample: flips hit width fields (resyncing the
    // whole tile walk), bases, deltas, and the final padding bits.
    const BdCodec codec(4);
    const auto valid = codec.encode(randomImage(9, 6, 2));
    for (std::size_t byte = 8; byte < valid.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = valid;
            mutant[byte] ^= static_cast<uint8_t>(1u << bit);
            ImageU8 out;
            try {
                BdCodec::decodeInto(mutant, out);
                // A surviving mutant altered only delta/base payload:
                // geometry must be untouched.
                EXPECT_EQ(out.width(), 9);
                EXPECT_EQ(out.height(), 6);
            } catch (const std::runtime_error &) {
                // Rejected cleanly.
            }
        }
    }
}

TEST(BdDecodeHardening, EveryTruncationLengthThrows)
{
    const BdCodec codec(5);
    const auto valid = codec.encode(randomImage(21, 13, 3));
    ImageU8 out;
    for (std::size_t len = 0; len < valid.size(); ++len) {
        const std::vector<uint8_t> truncated(valid.begin(),
                                             valid.begin() + len);
        EXPECT_THROW(BdCodec::decodeInto(truncated, out),
                     std::runtime_error)
            << "length " << len;
    }
}

TEST(BdDecodeHardening, TrailingGarbageBytesThrow)
{
    const BdCodec codec(4);
    const auto valid = codec.encode(randomImage(16, 16, 4));
    ImageU8 out;
    for (const std::size_t extra : {1u, 2u, 7u, 64u}) {
        for (const uint8_t fill : {0x00, 0xff, 0x5a}) {
            auto mutant = valid;
            mutant.insert(mutant.end(), extra, fill);
            EXPECT_THROW(BdCodec::decodeInto(mutant, out),
                         std::runtime_error)
                << extra << " bytes of 0x" << std::hex
                << static_cast<int>(fill);
        }
    }
}

TEST(BdDecodeHardening, NonzeroPaddingBitsThrow)
{
    // A 1x1 tile-4 frame: header + 3 x (4+8+1) bits = 103 bits, so the
    // final byte carries padding the encoder wrote as zeros. Flipping
    // only padding changes no decoded pixel — the decoder must still
    // reject it rather than accept a non-canonical stream.
    const BdCodec codec(4);
    ImageU8 px(1, 1);
    px.setChannel(0, 0, 0, 7);
    const auto valid = codec.encode(px);
    const BdFrameStats stats = codec.analyze(px);
    ASSERT_NE(stats.totalBits() % 8, 0u) << "need a padded stream";
    auto mutant = valid;
    mutant.back() |= 1u;  // lowest bit is always padding here
    ImageU8 out;
    EXPECT_THROW(BdCodec::decodeInto(mutant, out), std::runtime_error);
}

TEST(BdDecodeHardening, ZeroDimensionHeadersThrow)
{
    ImageU8 out;
    const std::tuple<uint32_t, uint32_t, uint32_t> cases[] = {
        {0, 16, 4}, {16, 0, 4}, {16, 16, 0}, {0, 0, 0}};
    for (const auto &[w, h, tile] : cases) {
        auto stream = craftHeader(w, h, tile);
        stream.insert(stream.end(), 64, 0);  // plausible payload bytes
        EXPECT_THROW(BdCodec::decodeInto(stream, out),
                     std::runtime_error)
            << w << "x" << h << " tile " << tile;
    }
}

TEST(BdDecodeHardening, OverflowingDimensionsRejectedBeforeAllocation)
{
    // 0xFFFF x 0xFFFF tile-1 claims 2^32 tiles (~4.3 G pixels): the
    // 64-bit floor check must reject the short stream without walking
    // the claimed tile count or allocating the claimed frame. The time
    // bound is the observable: O(claimed tiles) work or a ~13 GB
    // allocation would blow it by orders of magnitude.
    ImageU8 out;
    const auto t0 = std::chrono::steady_clock::now();
    const std::tuple<uint32_t, uint32_t, uint32_t> cases[] = {
        {0xffff, 0xffff, 1},
        {0xffff, 0xffff, 255},
        {0xffff, 1, 1},
        {1, 0xffff, 1}};
    for (const auto &[w, h, tile] : cases) {
        auto stream = craftHeader(w, h, tile);
        stream.insert(stream.end(), 4096, 0xa5);
        EXPECT_THROW(BdCodec::decodeInto(stream, out),
                     std::runtime_error)
            << w << "x" << h << " tile " << tile;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(seconds, 1.0);
}

TEST(BdDecodeHardening, WellFormedDecompressionBombRejected)
{
    // Flat tiles make a 0xFFFF x 0xFFFF frame honestly encodable in
    // ~300 KB: 66049 tile-channels x (4-bit width 0 + 8-bit base), no
    // delta bits, passing every consistency check. Only the pixel cap
    // stands between this stream and a ~13 GB allocation from a
    // ~300 KB untrusted input.
    BitWriter bw;
    bw.putBits(0x424431, 24);
    bw.putBits(0xffff, 16);
    bw.putBits(0xffff, 16);
    bw.putBits(255, 8);
    const std::size_t tiles = 257 * 257;  // ceil(65535/255) = 257
    for (std::size_t t = 0; t < tiles * 3; ++t) {
        bw.putBits(0, 4);   // flat: width 0, no deltas follow
        bw.putBits(77, 8);  // base
    }
    bw.alignToByte();
    const std::vector<uint8_t> bomb = bw.take();
    ImageU8 out;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(BdCodec::decodeInto(bomb, out), std::runtime_error);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    EXPECT_LT(seconds, 1.0);
}

TEST(BdDecodeHardening, PixelCapIsCallerTunable)
{
    const BdCodec codec(4);
    const ImageU8 img = randomImage(32, 16, 9);  // 512 pixels
    const auto stream = codec.encode(img);
    ImageU8 out;
    // Just over the frame's pixel count: rejected.
    EXPECT_THROW(BdCodec::decodeInto(stream, out, nullptr, nullptr, 1,
                                     511),
                 std::runtime_error);
    // At the exact pixel count: decodes.
    BdCodec::decodeInto(stream, out, nullptr, nullptr, 1, 512);
    EXPECT_EQ(out, img);
}

TEST(BdDecodeHardening, OversizedWidthFieldThrows)
{
    // Craft a stream whose first tile-channel claims a 15-bit delta
    // width (fields are 4 bits; valid streams never exceed 8). The
    // payload is padded so only the width check can reject it.
    BitWriter bw;
    bw.putBits(0x424431, 24);
    bw.putBits(4, 16);
    bw.putBits(4, 16);
    bw.putBits(4, 8);
    bw.putBits(15, 4);   // delta width 15: invalid
    bw.putBits(0, 8);    // base
    for (int i = 0; i < 16; ++i)
        bw.putBits(0x7fff, 15);  // the claimed deltas
    bw.putBits(0, 4);    // next channel's meta...
    bw.putBits(0, 8);
    bw.putBits(0, 4);
    bw.putBits(0, 8);
    bw.alignToByte();
    ImageU8 out;
    EXPECT_THROW(BdCodec::decodeInto(bw.take(), out),
                 std::runtime_error);
}

TEST(BdDecodeHardening, MidTileTruncationThrowsNotZeroFills)
{
    // Cut a valid stream exactly inside the last tile's delta block:
    // the old decoder zero-filled those deltas (BitReader semantics)
    // and returned a frame; the hardened walk must throw instead.
    const BdCodec codec(4);
    const auto valid = codec.encode(randomImage(32, 32, 5));
    ImageU8 out;
    auto cut = valid;
    cut.resize(valid.size() - 1);
    EXPECT_THROW(BdCodec::decodeInto(cut, out), std::runtime_error);
}

TEST(BdDecodeHardening, RandomStreamsAreGraceful)
{
    Rng rng(6);
    ImageU8 out;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<uint8_t> bytes(rng.uniformInt(512));
        for (auto &b : bytes)
            b = static_cast<uint8_t>(rng.uniformInt(256));
        // Half the trials get a valid magic so the header parse
        // proceeds into dimension/payload validation.
        if (trial % 2 == 0 && bytes.size() >= 3) {
            bytes[0] = 0x42;
            bytes[1] = 0x44;
            bytes[2] = 0x31;
        }
        (void)decodesCleanly(bytes);
    }
}

TEST(BdDecodeHardening, MutantsAreGracefulUnderParallelDecode)
{
    // The parallel path must fail validation identically to the serial
    // path — workers only ever run over validated offsets.
    const BdCodec codec(4);
    const auto valid = codec.encode(randomImage(24, 24, 7));
    ThreadPool pool(3);
    BdDecodeScratch scratch;
    ImageU8 serial_out;
    ImageU8 parallel_out;
    Rng rng(8);
    for (int trial = 0; trial < 150; ++trial) {
        auto mutant = valid;
        const std::size_t pos = rng.uniformInt(mutant.size());
        mutant[pos] ^= static_cast<uint8_t>(1u << rng.uniformInt(8));
        bool serial_ok = true;
        try {
            BdCodec::decodeInto(mutant, serial_out);
        } catch (const std::runtime_error &) {
            serial_ok = false;
        }
        bool parallel_ok = true;
        try {
            BdCodec::decodeInto(mutant, parallel_out, &scratch, &pool,
                                4);
        } catch (const std::runtime_error &) {
            parallel_ok = false;
        }
        EXPECT_EQ(serial_ok, parallel_ok) << "trial " << trial;
        if (serial_ok && parallel_ok)
            EXPECT_EQ(serial_out, parallel_out) << "trial " << trial;
    }
}

} // namespace
} // namespace pce
