/**
 * @file
 * Tests for the variable bit-length BD extension (paper footnote 1).
 */

#include <gtest/gtest.h>

#include "bd/bd_variable.hh"
#include "common/rng.hh"

namespace pce {
namespace {

ImageU8
randomImage(int w, int h, uint64_t seed, int range = 256)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(range));
    return img;
}

class BdVariableRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(BdVariableRoundTripTest, Lossless)
{
    const auto [w, h, tile] = GetParam();
    const BdVariableCodec codec(tile);
    const ImageU8 img = randomImage(w, h, 500 + w * h + tile);
    EXPECT_EQ(BdVariableCodec::decode(codec.encode(img)), img);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndTiles, BdVariableRoundTripTest,
    ::testing::Values(std::tuple(16, 16, 4), std::tuple(33, 17, 4),
                      std::tuple(7, 5, 4), std::tuple(64, 64, 8),
                      std::tuple(40, 24, 6), std::tuple(1, 1, 4)));

TEST(BdVariable, AtMostOneModeBitWorseThanUniformBd)
{
    // Choosing mode 0 everywhere reproduces BdCodec plus the 1-bit mode
    // flags; the encoder picks min(mode0, mode1), so the bound holds.
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        const ImageU8 img = randomImage(32, 32, trial * 31u);
        const BdCodec uniform(4);
        const BdVariableCodec variable(4);
        const auto u = uniform.analyze(img);
        const auto v = variable.analyze(img);
        const std::size_t tiles = 8 * 8;
        EXPECT_LE(v.totalBits, u.totalBits() + tiles * 3);
    }
}

TEST(BdVariable, PerRowModeWinsOnRowStructuredContent)
{
    // A tile whose rows are individually flat but mutually far apart:
    // uniform mode needs wide deltas for every pixel; per-row needs
    // none.
    ImageU8 img(4, 4);
    const uint8_t rows[4] = {10, 200, 60, 140};
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x)
            for (int c = 0; c < 3; ++c)
                img.setChannel(x, y, c, rows[y]);

    const BdVariableCodec codec(4);
    const auto stats = codec.analyze(img);
    EXPECT_EQ(stats.perRowChannels, 3u);
    // Uniform would cost 4+8+16*8 bits/channel; per-row costs
    // 8 + 4*(4+0) = 24 bits/channel (rows flat relative to base need
    // width 8 only on non-base rows...) -- assert the aggregate win.
    const BdCodec uniform(4);
    EXPECT_LT(stats.totalBits, uniform.analyze(img).totalBits());
    EXPECT_EQ(BdVariableCodec::decode(codec.encode(img)), img);
}

TEST(BdVariable, UniformModeWinsOnUniformNoise)
{
    // I.i.d. noise has no row structure: per-row mode pays 4 width
    // fields for nothing, so uniform should dominate.
    const ImageU8 img = randomImage(64, 64, 99);
    const BdVariableCodec codec(4);
    const auto stats = codec.analyze(img);
    EXPECT_GT(stats.uniformChannels, stats.perRowChannels);
}

TEST(BdVariable, AnalyzeMatchesStreamLength)
{
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        const int w = 1 + static_cast<int>(rng.uniformInt(50));
        const int h = 1 + static_cast<int>(rng.uniformInt(50));
        const ImageU8 img = randomImage(w, h, trial * 13u, 32);
        const BdVariableCodec codec(4);
        EXPECT_EQ((codec.analyze(img).totalBits + 7) / 8,
                  codec.encode(img).size());
    }
}

TEST(BdVariable, GradientContentBeatsUniformBd)
{
    // A steep vertical gradient has row-local ranges of zero but a tile
    // range spanning several values; per-row widths should strictly
    // win over the uniform tile width.
    ImageU8 img(64, 64);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            for (int c = 0; c < 3; ++c)
                img.setChannel(x, y, c,
                               static_cast<uint8_t>((y * 4) & 0xff));

    const BdVariableCodec variable(4);
    const BdCodec uniform(4);
    EXPECT_LT(variable.analyze(img).totalBits,
              uniform.analyze(img).totalBits());
    EXPECT_EQ(BdVariableCodec::decode(variable.encode(img)), img);
}

TEST(BdVariable, DecodeRejectsCorruption)
{
    const BdVariableCodec codec(4);
    auto stream = codec.encode(randomImage(16, 16, 3));
    stream[0] ^= 0xff;
    EXPECT_THROW(BdVariableCodec::decode(stream), std::runtime_error);
    stream[0] ^= 0xff;
    stream.resize(stream.size() / 2);
    EXPECT_THROW(BdVariableCodec::decode(stream), std::runtime_error);
}

TEST(BdVariable, RejectsBadTileSize)
{
    EXPECT_THROW(BdVariableCodec(0), std::invalid_argument);
    EXPECT_THROW(BdVariableCodec(256), std::invalid_argument);
}

} // namespace
} // namespace pce
