/**
 * @file
 * The duplicated (selective-EDDI) BD validate+prefix pass: identical
 * output on clean streams, and detection of prefix-table corruption
 * injected between the two walks via the scratch's fault hook.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "bd/bd_codec.hh"
#include "common/rng.hh"

namespace pce {
namespace {

ImageU8
testImage(int w, int h, std::uint64_t seed)
{
    ImageU8 img(w, h);
    Rng rng(seed);
    for (int y = 0; y < h; ++y) {
        uint8_t *row = img.pixel(0, y);
        for (int x = 0; x < 3 * w; ++x)
            row[x] = static_cast<uint8_t>(rng.uniformInt(256));
    }
    return img;
}

TEST(BdDuplicateValidate, CleanStreamDecodesIdentically)
{
    const ImageU8 img = testImage(61, 47, 5);
    const BdCodec codec(4);
    const std::vector<uint8_t> stream = codec.encode(img);

    ImageU8 plain, dup;
    BdCodec::decodeInto(stream, plain);
    BdCodec::decodeInto(stream, dup, nullptr, nullptr, 1,
                        kBdDefaultMaxDecodePixels, true);
    EXPECT_EQ(plain, img);
    EXPECT_EQ(dup, img);
}

TEST(BdDuplicateValidate, DetectsPrefixCorruptionViaHook)
{
    const ImageU8 img = testImage(64, 64, 9);
    const BdCodec codec(4);
    const std::vector<uint8_t> stream = codec.encode(img);

    // The hook fires between the first walk and the duplicate walk,
    // modeling an SEU in the offset table after computation: without
    // duplication this would silently shift every later tile's read
    // position; with it, the compare must throw.
    BdDecodeScratch scratch;
    int fired = 0;
    scratch.prefixFaultHook =
        [&fired](std::vector<std::size_t> &offsets) {
            ++fired;
            offsets[offsets.size() / 2] += 8;
        };
    ImageU8 out;
    EXPECT_THROW(BdCodec::decodeInto(stream, out, &scratch, nullptr, 1,
                                     kBdDefaultMaxDecodePixels, true),
                 std::runtime_error);
    EXPECT_EQ(fired, 1);
}

TEST(BdDuplicateValidate, HookNeverFiresWithoutDuplication)
{
    const ImageU8 img = testImage(32, 32, 2);
    const BdCodec codec(4);
    const std::vector<uint8_t> stream = codec.encode(img);

    BdDecodeScratch scratch;
    int fired = 0;
    scratch.prefixFaultHook =
        [&fired](std::vector<std::size_t> &) { ++fired; };
    ImageU8 out;
    BdCodec::decodeInto(stream, out, &scratch);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(out, img);
}

TEST(BdDuplicateValidate, MalformedStreamsStillRejected)
{
    const ImageU8 img = testImage(24, 24, 3);
    const BdCodec codec(4);
    std::vector<uint8_t> stream = codec.encode(img);

    // Truncation is caught by the (first) walk itself, with or
    // without duplication.
    stream.resize(stream.size() / 2);
    ImageU8 out;
    EXPECT_THROW(BdCodec::decodeInto(stream, out, nullptr, nullptr, 1,
                                     kBdDefaultMaxDecodePixels, true),
                 std::runtime_error);
}

} // namespace
} // namespace pce
