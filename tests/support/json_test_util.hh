/**
 * @file
 * Dependency-free strict JSON parser shared by test suites
 * (tests/bench/test_bench_schema.cc validates BENCH_encoder.json,
 * tests/obs/test_trace_export.cc validates exported Chrome traces).
 * Strict by design: no trailing commas, no comments, no NaN/Inf, no
 * duplicate keys — if this parser accepts a document, any JSON
 * consumer will. Header-only so the test CMake glob needs no support
 * library; not part of the shipped library.
 */

#ifndef PCE_TESTS_SUPPORT_JSON_TEST_UTIL_HH
#define PCE_TESTS_SUPPORT_JSON_TEST_UTIL_HH

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace testjson {

struct JsonValue
{
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool isString() const { return type == Type::String; }
    bool isNumber() const { return type == Type::Number; }
    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    const JsonValue *find(const std::string &key) const
    {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    /** Parse the whole document; throws std::runtime_error. */
    JsonValue parse()
    {
        const JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(pos_) + ": " + what);
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue parseValue()
    {
        skipWs();
        switch (peek()) {
        case '{': return parseObject();
        case '[': return parseArray();
        case '"': return parseString();
        case 't':
        case 'f': return parseBool();
        case 'n': return parseNull();
        default: return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            JsonValue key = parseString();
            skipWs();
            expect(':');
            if (!v.object.emplace(key.string, parseValue()).second)
                fail("duplicate key \"" + key.string + "\"");
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue parseString()
    {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                v.string.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': v.string.push_back('"'); break;
            case '\\': v.string.push_back('\\'); break;
            case '/': v.string.push_back('/'); break;
            case 'b': v.string.push_back('\b'); break;
            case 'f': v.string.push_back('\f'); break;
            case 'n': v.string.push_back('\n'); break;
            case 'r': v.string.push_back('\r'); break;
            case 't': v.string.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                for (int i = 0; i < 4; ++i)
                    if (!std::isxdigit(static_cast<unsigned char>(
                            text_[pos_ + i])))
                        fail("bad \\u escape");
                // Validated fields are ASCII; keep the escape
                // verbatim.
                v.string.append(text_, pos_ - 2, 6);
                pos_ += 4;
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    JsonValue parseBool()
    {
        JsonValue v;
        v.type = JsonValue::Type::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        JsonValue v;
        v.type = JsonValue::Type::Null;
        return v;
    }

    JsonValue parseNumber()
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (pos_ >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_])))
            fail("bad number");
        if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
            std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
            fail("leading zero");
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("bad fraction");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (pos_ >= text_.size() ||
                !std::isdigit(static_cast<unsigned char>(text_[pos_])))
                fail("bad exponent");
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::stod(text_.substr(start, pos_ - start));
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Whole-file read (empty string when unreadable). */
inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace testjson

#endif // PCE_TESTS_SUPPORT_JSON_TEST_UTIL_HH
