/**
 * @file
 * Reassembly edge cases: everything a hostile-or-unlucky transport can
 * do — reorder, duplication, corruption (CRC-caught and CRC-forged),
 * stale and foreign datagrams, zero-tile frames — must either be
 * absorbed or rejected with the right counter, and never corrupt a
 * neighboring tile's bytes. These run under the sanitizer jobs of
 * scripts/check.sh.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bd/bd_codec.hh"
#include "common/rng.hh"
#include "net/packetizer.hh"
#include "net/reassembler.hh"

namespace pce::net {
namespace {

constexpr std::uint64_t kSession = 77;
constexpr std::uint32_t kStream = 3;

ImageU8
noisyImage(int w, int h, std::uint64_t seed)
{
    ImageU8 img(w, h);
    Rng rng(seed);
    for (auto &b : img.data())
        b = static_cast<std::uint8_t>(rng.next());
    return img;
}

struct Fixture
{
    ImageU8 image;
    std::vector<std::uint8_t> stream;
    PacketizedFrame pf;

    explicit Fixture(std::uint64_t seed = 1, int w = 48, int h = 32,
                     std::size_t mtu = 200)
        : image(noisyImage(w, h, seed))
    {
        stream = BdCodec(4).encode(image);
        PacketizerParams params;
        params.mtuBytes = mtu;
        params.sessionId = kSession;
        params.streamId = kStream;
        pf = packetizeFrame(stream, 0, nullptr, params);
    }
};

ReassemblerParams
rxParams()
{
    ReassemblerParams p;
    p.sessionId = kSession;
    return p;
}

/** Re-CRC a tampered datagram so only post-CRC defenses see it. */
std::vector<std::uint8_t>
forgeCrc(std::vector<std::uint8_t> pkt)
{
    PacketHeader h;
    EXPECT_TRUE(parsePacketHeader(pkt.data(), pkt.size(), h));
    return buildPacket(h, pkt.data() + kPacketHeaderBytes,
                       pkt.size() - kPacketHeaderBytes);
}

TEST(Reassembly, ReorderedAndDuplicatedPacketsReassembleByteIdentical)
{
    Fixture fx;
    FrameReassembler rx(rxParams());

    // Deliver in reverse, with every packet sent twice and the
    // manifest arriving dead last (tile data must be parked).
    std::vector<std::size_t> order(fx.pf.packets.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = order.size() - 1 - i;
    for (const std::size_t i : order) {
        EXPECT_EQ(rx.accept(fx.pf.packets[i].bytes),
                  AcceptResult::Accepted);
        rx.accept(fx.pf.packets[i].bytes);  // duplicate copy
    }
    EXPECT_TRUE(rx.frameComplete(kStream, 0));
    EXPECT_TRUE(rx.missingSequences(kStream, 0).empty());

    ImageU8 out;
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 0, out);
    EXPECT_TRUE(rep.complete);
    EXPECT_TRUE(rep.byteIdentical);
    EXPECT_EQ(rep.deliveredTiles, rep.totalTiles);
    EXPECT_EQ(out, fx.image);
    EXPECT_GT(rx.duplicatePackets(), 0u);
    EXPECT_EQ(rx.rejectedPackets(), 0u);
}

TEST(Reassembly, CrcRejectsCorruptPacketAndTileDegrades)
{
    Fixture fx;
    FrameReassembler rx(rxParams());
    Rng rng(9);

    for (std::size_t i = 0; i < fx.pf.packets.size(); ++i) {
        if (i != 2) {
            rx.accept(fx.pf.packets[i].bytes);
            continue;
        }
        std::vector<std::uint8_t> corrupt = fx.pf.packets[i].bytes;
        const std::uint64_t bit = rng.uniformInt(corrupt.size() * 8);
        corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_EQ(rx.accept(corrupt), AcceptResult::RejectedCrc);
    }
    EXPECT_EQ(rx.rejectedCrc(), 1u);
    EXPECT_FALSE(rx.frameComplete(kStream, 0));
    const std::vector<std::uint32_t> missing =
        rx.missingSequences(kStream, 0);
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0], fx.pf.packets[2].header.sequence);

    ImageU8 out;
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 0, out);
    EXPECT_FALSE(rep.complete);
    EXPECT_FALSE(rep.byteIdentical);
    // No previous frame: the missing range is flat-filled and flagged.
    EXPECT_EQ(rep.filledTiles, fx.pf.packets[2].header.tileCount);
    EXPECT_EQ(rep.deliveredTiles + rep.filledTiles, rep.totalTiles);
    // Every tile the report claims delivered is pixel-exact.
    const std::vector<TileRect> tiles = tileGrid(48, 32, 4);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        if (!rep.tileDelivered[t])
            continue;
        for (int y = tiles[t].y0; y < tiles[t].y0 + tiles[t].h; ++y)
            for (int x = tiles[t].x0; x < tiles[t].x0 + tiles[t].w;
                 ++x)
                for (int c = 0; c < 3; ++c)
                    ASSERT_EQ(out.channel(x, y, c),
                              fx.image.channel(x, y, c));
    }
}

TEST(Reassembly, MissingTilesFallBackToPreviousFrame)
{
    Fixture first(1), second(2);
    FrameReassembler rx(rxParams());

    // Frame 0 lands complete; it becomes the stream's hold source.
    for (const Packet &p : first.pf.packets)
        rx.accept(p.bytes);
    ImageU8 out;
    ASSERT_TRUE(rx.finalizeFrame(kStream, 0, out).byteIdentical);

    // Frame 1 loses packet 1.
    PacketizerParams params;
    params.mtuBytes = 200;
    params.sessionId = kSession;
    params.streamId = kStream;
    const PacketizedFrame pf1 =
        packetizeFrame(second.stream, 1, nullptr, params);
    for (std::size_t i = 0; i < pf1.packets.size(); ++i)
        if (i != 1)
            rx.accept(pf1.packets[i].bytes);
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 1, out);
    EXPECT_FALSE(rep.complete);
    EXPECT_EQ(rep.fallbackTiles, pf1.packets[1].header.tileCount);
    EXPECT_EQ(rep.filledTiles, 0u);

    // Fallback tiles hold frame 0's pixels; delivered tiles are
    // frame 1's.
    const std::vector<TileRect> tiles = tileGrid(48, 32, 4);
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        const ImageU8 &want =
            rep.tileDelivered[t] ? second.image : first.image;
        const TileRect &r = tiles[t];
        for (int y = r.y0; y < r.y0 + r.h; ++y)
            for (int x = r.x0; x < r.x0 + r.w; ++x)
                for (int c = 0; c < 3; ++c)
                    ASSERT_EQ(out.channel(x, y, c),
                              want.channel(x, y, c))
                        << "tile " << t;
    }
}

TEST(Reassembly, DuplicateManifestIsIgnored)
{
    Fixture fx;
    FrameReassembler rx(rxParams());
    EXPECT_EQ(rx.accept(fx.pf.packets[0].bytes),
              AcceptResult::Accepted);
    EXPECT_EQ(rx.accept(fx.pf.packets[0].bytes),
              AcceptResult::Duplicate);
    for (std::size_t i = 1; i < fx.pf.packets.size(); ++i)
        rx.accept(fx.pf.packets[i].bytes);
    ImageU8 out;
    EXPECT_TRUE(rx.finalizeFrame(kStream, 0, out).byteIdentical);
}

TEST(Reassembly, PacketForFinalizedFrameIsStale)
{
    Fixture fx;
    FrameReassembler rx(rxParams());
    for (const Packet &p : fx.pf.packets)
        rx.accept(p.bytes);
    ImageU8 out;
    rx.finalizeFrame(kStream, 0, out);

    EXPECT_EQ(rx.accept(fx.pf.packets[1].bytes), AcceptResult::Stale);
    EXPECT_EQ(rx.accept(fx.pf.packets[0].bytes), AcceptResult::Stale);
    EXPECT_EQ(rx.stalePackets(), 2u);
    EXPECT_TRUE(rx.missingSequences(kStream, 0).empty());
}

TEST(Reassembly, SessionMismatchIsRejected)
{
    Fixture fx;
    ReassemblerParams params;
    params.sessionId = kSession + 1;  // receiver expects another session
    FrameReassembler rx(params);
    for (const Packet &p : fx.pf.packets)
        EXPECT_EQ(rx.accept(p.bytes), AcceptResult::RejectedSession);
    EXPECT_EQ(rx.rejectedSession(), fx.pf.packets.size());
    ImageU8 out;
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 0, out);
    EXPECT_FALSE(rep.manifestReceived);
}

TEST(Reassembly, ForgedCrcWithCorruptPrefixRestoresNeighborBytes)
{
    Fixture fx;
    FrameReassembler rx(rxParams());
    rx.accept(fx.pf.packets[0].bytes);

    // Tamper with packet 1's first payload byte — the 4-bit delta
    // width field of its first tile record — and forge a fresh CRC so
    // only the per-packet prefix walk stands between the damage and
    // the buffer. Width 15 > 8 cannot walk.
    std::vector<std::uint8_t> evil = fx.pf.packets[1].bytes;
    evil[kPacketHeaderBytes] = 0xff;
    evil = forgeCrc(std::move(evil));
    ASSERT_TRUE(verifyPacketCrc(evil.data(), evil.size()));
    EXPECT_EQ(rx.accept(evil), AcceptResult::RejectedMalformed);
    EXPECT_EQ(rx.rejectedMalformed(), 1u);

    // The rejection must have restored the spliced bytes: the genuine
    // packet (which shares a boundary byte with packet 2's span)
    // still lands, and the frame still proves byte-identical.
    for (std::size_t i = 1; i < fx.pf.packets.size(); ++i)
        EXPECT_EQ(rx.accept(fx.pf.packets[i].bytes),
                  AcceptResult::Accepted);
    ImageU8 out;
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 0, out);
    EXPECT_TRUE(rep.complete);
    EXPECT_TRUE(rep.byteIdentical);
    EXPECT_EQ(out, fx.image);
}

TEST(Reassembly, ZeroTileFrameFinalizesEmpty)
{
    FrameManifest m;  // 0x0 frame: no tiles, no data packets
    PacketHeader h;
    h.sessionId = kSession;
    h.streamId = kStream;
    h.frameId = 5;
    h.type = PacketType::Manifest;
    const std::vector<std::uint8_t> pkt = buildManifestPacket(h, m);

    FrameReassembler rx(rxParams());
    EXPECT_EQ(rx.accept(pkt), AcceptResult::Accepted);
    EXPECT_TRUE(rx.frameComplete(kStream, 5));
    EXPECT_TRUE(rx.missingSequences(kStream, 5).empty());
    ImageU8 out(4, 4);
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 5, out);
    EXPECT_TRUE(rep.manifestReceived);
    EXPECT_TRUE(rep.complete);
    EXPECT_EQ(rep.totalTiles, 0u);
    EXPECT_EQ(out.width(), 0);

    // But a zero-tile manifest that *claims* data packets is nonsense.
    FrameManifest bad;
    bad.packetCount = 3;
    PacketHeader h2 = h;
    h2.frameId = 6;
    EXPECT_EQ(rx.accept(buildManifestPacket(h2, bad)),
              AcceptResult::RejectedMalformed);
}

TEST(Reassembly, ManifestNeverArrivesDegradesWholeFrame)
{
    Fixture fx;
    FrameReassembler rx(rxParams());

    // Frame 0 complete (the hold source), frame 1 all data, no
    // manifest.
    for (const Packet &p : fx.pf.packets)
        rx.accept(p.bytes);
    ImageU8 out;
    rx.finalizeFrame(kStream, 0, out);

    PacketizerParams params;
    params.mtuBytes = 200;
    params.sessionId = kSession;
    params.streamId = kStream;
    const PacketizedFrame pf1 =
        packetizeFrame(fx.stream, 1, nullptr, params);
    for (std::size_t i = 1; i < pf1.packets.size(); ++i)
        rx.accept(pf1.packets[i].bytes);
    EXPECT_FALSE(rx.frameComplete(kStream, 1));
    EXPECT_EQ(rx.missingSequences(kStream, 1),
              std::vector<std::uint32_t>{0});

    ImageU8 held;
    const FrameDeliveryReport rep = rx.finalizeFrame(kStream, 1, held);
    EXPECT_FALSE(rep.manifestReceived);
    EXPECT_EQ(rep.deliveredTiles, 0u);
    EXPECT_EQ(held, fx.image) << "whole-frame hold from frame 0";
}

TEST(Reassembly, UnknownFrameNacksTheManifest)
{
    FrameReassembler rx(rxParams());
    EXPECT_EQ(rx.missingSequences(kStream, 123),
              std::vector<std::uint32_t>{0});
    EXPECT_FALSE(rx.frameComplete(kStream, 123));
}

TEST(Reassembly, MalformedDatagramsAreCounted)
{
    FrameReassembler rx(rxParams());
    const std::vector<std::uint8_t> junk(100, 0xab);
    EXPECT_EQ(rx.accept(junk), AcceptResult::RejectedMalformed);
    EXPECT_EQ(rx.accept(junk.data(), 3), AcceptResult::RejectedMalformed);
    EXPECT_EQ(rx.rejectedMalformed(), 2u);
}

} // namespace
} // namespace pce::net
