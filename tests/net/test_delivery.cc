/**
 * @file
 * Delivery-loop acceptance tests (ISSUE 7): over a seeded channel at
 * 10% loss with foveal-priority scheduling, every delivered frame
 * must have a fully intact foveal region and zero silently corrupt
 * tiles — every tile claimed delivered is pixel-exact, every degraded
 * tile is flagged. Over a clean channel the tier must be fully
 * transparent (byte-identical, CRC-proven). Congestion must shed
 * peripheral tiles first.
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "common/rng.hh"
#include "net/delivery.hh"
#include "perception/display.hh"

namespace pce::net {
namespace {

constexpr int kW = 64;
constexpr int kH = 64;

ImageU8
noisyImage(std::uint64_t seed)
{
    ImageU8 img(kW, kH);
    Rng rng(seed);
    for (auto &b : img.data())
        b = static_cast<std::uint8_t>(rng.next());
    return img;
}

EccentricityMap
centeredEcc()
{
    DisplayGeometry geom;
    geom.width = kW;
    geom.height = kH;
    geom.horizontalFovDeg = 100.0;
    geom.fixationX = kW / 2.0;
    geom.fixationY = kH / 2.0;
    return EccentricityMap(geom);
}

SenderPolicy
testPolicy()
{
    SenderPolicy p;
    p.mtuBytes = 300;
    p.sessionId = 0xabc;
    p.streamId = 1;
    return p;
}

/** Every tile the report claims delivered must match @p clean. */
void
expectNoSilentTiles(const FrameDeliveryReport &rep, const ImageU8 &out,
                    const ImageU8 &clean)
{
    const std::vector<TileRect> tiles = tileGrid(kW, kH, 4);
    ASSERT_EQ(rep.tileDelivered.size(), tiles.size());
    std::size_t flagged = 0;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        if (!rep.tileDelivered[t]) {
            ++flagged;
            continue;
        }
        const TileRect &r = tiles[t];
        for (int y = r.y0; y < r.y0 + r.h; ++y)
            for (int x = r.x0; x < r.x0 + r.w; ++x)
                for (int c = 0; c < 3; ++c)
                    ASSERT_EQ(out.channel(x, y, c),
                              clean.channel(x, y, c))
                        << "silently corrupt tile " << t;
    }
    // Degraded tiles are all accounted for — nothing silent.
    EXPECT_EQ(flagged, rep.fallbackTiles + rep.filledTiles);
    EXPECT_EQ(rep.deliveredTiles + flagged, rep.totalTiles);
}

TEST(Delivery, CleanChannelIsByteTransparent)
{
    const EccentricityMap ecc = centeredEcc();
    LossyChannel channel;  // no impairments
    FrameReassembler rx([] {
        ReassemblerParams p;
        p.sessionId = 0xabc;
        return p;
    }());

    for (std::uint64_t f = 0; f < 4; ++f) {
        const ImageU8 image = noisyImage(f + 1);
        const std::vector<std::uint8_t> stream =
            BdCodec(4).encode(image);
        ImageU8 out;
        const DeliveryReport rep = deliverFrame(
            stream, f, &ecc, channel, rx, out, testPolicy());
        EXPECT_TRUE(rep.frame.complete);
        EXPECT_TRUE(rep.frame.byteIdentical)
            << "frame " << f << " not byte-identical at 0% loss";
        EXPECT_TRUE(rep.fovealIntact);
        EXPECT_EQ(rep.retransmittedPackets, 0u);
        EXPECT_EQ(rep.shedPackets, 0u);
        EXPECT_EQ(out, image);
    }
    EXPECT_EQ(rx.rejectedPackets(), 0u);
}

TEST(Delivery, TenPercentLossKeepsFovealRegionIntactAndNothingSilent)
{
    const EccentricityMap ecc = centeredEcc();
    LossyChannelConfig ch;
    ch.dropRate = 0.10;
    ch.duplicateRate = 0.05;
    ch.corruptRate = 0.05;
    ch.reorderRate = 0.10;
    ch.seed = 0x10557;
    LossyChannel channel(ch);
    FrameReassembler rx([] {
        ReassemblerParams p;
        p.sessionId = 0xabc;
        return p;
    }());

    std::size_t retransmissions = 0;
    for (std::uint64_t f = 0; f < 8; ++f) {
        const ImageU8 image = noisyImage(f + 100);
        const std::vector<std::uint8_t> stream =
            BdCodec(4).encode(image);
        ImageU8 out;
        const DeliveryReport rep = deliverFrame(
            stream, f, &ecc, channel, rx, out, testPolicy());
        ASSERT_TRUE(rep.frame.manifestReceived) << "frame " << f;
        EXPECT_GT(rep.fovealTiles, 0u);
        EXPECT_TRUE(rep.fovealIntact)
            << "frame " << f << ": foveal region degraded at 10% loss";
        expectNoSilentTiles(rep.frame, out, image);
        retransmissions += rep.retransmittedPackets;
    }
    // The channel actually bit: the NACK loop had work to do.
    EXPECT_GT(retransmissions, 0u);
}

TEST(Delivery, CongestionShedsPeripheryFirst)
{
    const EccentricityMap ecc = centeredEcc();
    LossyChannel channel;  // loss-free: only the budget bites
    FrameReassembler rx([] {
        ReassemblerParams p;
        p.sessionId = 0xabc;
        return p;
    }());

    const ImageU8 image = noisyImage(7);
    const std::vector<std::uint8_t> stream = BdCodec(4).encode(image);
    SenderPolicy policy = testPolicy();
    policy.deadlineRounds = 3;
    policy.budgetBytesPerRound = 4 * policy.mtuBytes;  // ~4 packets

    ImageU8 out;
    const DeliveryReport rep =
        deliverFrame(stream, 0, &ecc, channel, rx, out, policy);
    EXPECT_GT(rep.shedPackets, 0u);
    EXPECT_GT(rep.shedTiles, 0u);
    EXPECT_FALSE(rep.frame.complete);
    // The budget went to the fovea: what was shed is all peripheral.
    EXPECT_TRUE(rep.fovealIntact)
        << "congestion shed foveal tiles before peripheral ones";
    expectNoSilentTiles(rep.frame, out, image);
}

TEST(Delivery, ReportsAreDeterministicForASeed)
{
    auto run = [](std::uint64_t seed) {
        const EccentricityMap ecc = centeredEcc();
        LossyChannelConfig ch;
        ch.dropRate = 0.25;
        ch.corruptRate = 0.1;
        ch.reorderRate = 0.2;
        ch.seed = seed;
        LossyChannel channel(ch);
        FrameReassembler rx([] {
            ReassemblerParams p;
            p.sessionId = 0xabc;
            return p;
        }());
        const ImageU8 image = noisyImage(42);
        const std::vector<std::uint8_t> stream =
            BdCodec(4).encode(image);
        ImageU8 out;
        const DeliveryReport rep = deliverFrame(
            stream, 0, &ecc, channel, rx, out, testPolicy());
        return std::make_tuple(rep.frame.deliveredTiles,
                               rep.packetsSent, rep.bytesSent,
                               rep.retransmittedPackets,
                               rep.roundsUsed, out);
    };
    EXPECT_EQ(run(5), run(5));
    // A different seed draws a different channel history (statistical
    // sanity that the seed actually matters).
    EXPECT_NE(std::get<1>(run(5)), std::get<1>(run(6)));
}

} // namespace
} // namespace pce::net
