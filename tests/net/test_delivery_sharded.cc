/**
 * @file
 * DeliverySession over sharded collect: per-frame delivery deadlines
 * must compose with dispatcher-per-shard encoding. Concurrent
 * sessions on streams homed to the *same* shard stay byte-identical
 * at 0% loss (their frames ride the steal protocol), and a session
 * whose stream is stuck behind a parked dispatcher degrades on its
 * deadline while a co-homed session keeps delivering via steals.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "net/delivery.hh"
#include "service/encode_service.hh"

namespace pce {
namespace {

using namespace std::chrono_literals;

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

std::vector<std::string>
namesHomedTo(std::size_t shard, std::size_t shards, std::size_t count)
{
    std::vector<std::string> out;
    for (int i = 0; out.size() < count && i < 100000; ++i) {
        std::string name = "net-" + std::to_string(i);
        if (EncodeService::shardForName(name, shards) == shard)
            out.push_back(std::move(name));
    }
    EXPECT_EQ(out.size(), count);
    return out;
}

TEST(DeliverySharded, CohomedSessionsDeliverByteIdenticalFrames)
{
    // Two sessions on streams hash-homed to the same shard of a
    // 4-shard service: their interleaved encodes exercise cross-shard
    // stealing, and every frame must still arrive byte-identical over
    // a clean channel.
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);

    ServiceParams sp;
    sp.shards = 4;
    sp.streamDepth = 2;
    EncodeService svc(model(), sp);
    const std::vector<std::string> names = namesHomedTo(0, sp.shards, 2);

    std::vector<net::LossyChannel> channels(2);  // clean
    std::vector<net::DeliverySession> sessions;
    sessions.reserve(2);
    std::vector<StreamHandle> handles;
    handles.reserve(2);
    for (int s = 0; s < 2; ++s) {
        handles.push_back(svc.openStream(names[s], ecc));
        net::SenderPolicy policy;
        policy.sessionId = 0xd00d + s;
        policy.streamId = static_cast<std::uint32_t>(s);
        sessions.emplace_back(svc, handles.back(), channels[s],
                              policy, &ecc);
    }

    constexpr int kFrames = 4;
    for (int i = 0; i < kFrames; ++i) {
        // Interleave submissions so both streams are queued on shard
        // 0 at once before either delivery collects.
        for (int s = 0; s < 2; ++s)
            sessions[s].submit(renderScene(
                SceneId::Office, {n, n, s, 0.1 * i + 0.3 * s, 0}));
        for (int s = 0; s < 2; ++s) {
            ImageU8 out;
            const net::DeliveryReport rep =
                sessions[s].deliverNext(out, 30000ms);
            EXPECT_FALSE(rep.encodeTimedOut);
            EXPECT_TRUE(rep.frame.byteIdentical)
                << "session " << s << ", frame " << i;
            EXPECT_TRUE(rep.fovealIntact);
        }
    }
    for (int s = 0; s < 2; ++s)
        EXPECT_EQ(sessions[s].framesDelivered(),
                  static_cast<std::uint64_t>(kFrames));
}

TEST(DeliverySharded, ParkedDispatcherDegradesOneSessionNotItsNeighbor)
{
    // Stream A's first encode parks its dispatcher; stream B is homed
    // to the same shard. A's session must degrade on its encode
    // deadline (whole-frame hold), while B's — behind A in the same
    // ring — still delivers intact within a bounded deadline because
    // another shard steals it. This is the sharded-collect contract
    // the delivery tier depends on: one stalled stream cannot wedge a
    // co-homed neighbor's delivery loop.
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);

    std::mutex gateMutex;
    std::condition_variable gateCv;
    bool gateOpen = false;

    ServiceParams sp;
    sp.shards = 2;
    sp.streamDepth = 2;
    const std::vector<std::string> names = namesHomedTo(0, sp.shards, 2);
    const std::string gatedName = names[0];
    sp.preEncodeFaultHook = [&](const std::string &name, std::uint64_t,
                                ImageF &) {
        if (name != gatedName)
            return;
        std::unique_lock<std::mutex> lock(gateMutex);
        gateCv.wait(lock, [&] { return gateOpen; });
    };
    EncodeService svc(model(), sp);

    StreamHandle a = svc.openStream(names[0], ecc);
    StreamHandle b = svc.openStream(names[1], ecc);
    net::LossyChannel chA, chB;  // clean
    net::SenderPolicy polA, polB;
    polA.sessionId = 0xa;
    polB.sessionId = 0xb;
    polB.streamId = 1;
    net::DeliverySession sesA(svc, a, chA, polA, &ecc);
    net::DeliverySession sesB(svc, b, chB, polB, &ecc);

    const ImageF frameA =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const ImageF frameB =
        renderScene(SceneId::Monkey, {n, n, 0, 0.5, 0});
    sesA.submit(frameA);  // parks whichever dispatcher takes it
    sesB.submit(frameB);

    ImageU8 outB;
    net::DeliveryReport repB = sesB.deliverNext(outB, 30000ms);
    EXPECT_FALSE(repB.encodeTimedOut)
        << "co-homed stream starved behind the parked dispatcher";
    EXPECT_TRUE(repB.frame.byteIdentical);

    ImageU8 outA;
    net::DeliveryReport repA = sesA.deliverNext(outA, 30ms);
    EXPECT_TRUE(repA.encodeTimedOut) << "A's encode is parked";
    EXPECT_FALSE(repA.frame.manifestReceived);

    {
        std::lock_guard<std::mutex> lock(gateMutex);
        gateOpen = true;
    }
    gateCv.notify_all();
    repA = sesA.deliverNext(outA, 30000ms);
    EXPECT_FALSE(repA.encodeTimedOut);
    EXPECT_TRUE(repA.frame.byteIdentical)
        << "late frame delivers under the next id, intact";
}

} // namespace
} // namespace pce
