/**
 * @file
 * Wire-format unit tests: header and manifest serialization must
 * round-trip bit-exactly, the parse must refuse structural nonsense,
 * and the per-packet CRC-32 must catch the bit flips the lossy
 * channel deals in.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "net/wire_format.hh"

namespace pce::net {
namespace {

PacketHeader
sampleHeader()
{
    PacketHeader h;
    h.sessionId = 0x0123456789abcdefULL;
    h.streamId = 42;
    h.frameId = 7;
    h.sequence = 3;
    h.type = PacketType::TileData;
    h.flags = kFlagRetransmit;
    h.tileBegin = 16;
    h.tileCount = 5;
    h.payloadBitBegin = 12345;
    return h;
}

TEST(WireFormat, HeaderRoundTripsThroughBuildAndParse)
{
    const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    PacketHeader h = sampleHeader();
    h.payloadBytes = static_cast<std::uint32_t>(payload.size());
    const std::vector<std::uint8_t> pkt =
        buildPacket(h, payload.data(), payload.size());
    ASSERT_EQ(pkt.size(), kPacketHeaderBytes + payload.size());

    PacketHeader parsed;
    ASSERT_TRUE(parsePacketHeader(pkt.data(), pkt.size(), parsed));
    EXPECT_EQ(parsed.sessionId, h.sessionId);
    EXPECT_EQ(parsed.streamId, h.streamId);
    EXPECT_EQ(parsed.frameId, h.frameId);
    EXPECT_EQ(parsed.sequence, h.sequence);
    EXPECT_EQ(parsed.type, h.type);
    EXPECT_EQ(parsed.flags, h.flags);
    EXPECT_EQ(parsed.tileBegin, h.tileBegin);
    EXPECT_EQ(parsed.tileCount, h.tileCount);
    EXPECT_EQ(parsed.payloadBitBegin, h.payloadBitBegin);
    EXPECT_EQ(parsed.payloadBytes, payload.size());
    EXPECT_TRUE(verifyPacketCrc(pkt.data(), pkt.size()));
}

TEST(WireFormat, ParseRejectsStructuralNonsense)
{
    const std::vector<std::uint8_t> payload = {9, 9};
    PacketHeader h = sampleHeader();
    h.payloadBytes = 2;
    const std::vector<std::uint8_t> good =
        buildPacket(h, payload.data(), payload.size());
    PacketHeader out;

    // Too short for a header at all.
    EXPECT_FALSE(parsePacketHeader(good.data(), 10, out));
    // Truncated payload: header length field disagrees with size.
    EXPECT_FALSE(
        parsePacketHeader(good.data(), good.size() - 1, out));
    // Bad magic.
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xff;
    EXPECT_FALSE(parsePacketHeader(bad.data(), bad.size(), out));
    // Unknown version.
    bad = good;
    bad[4] = 0x7f;
    EXPECT_FALSE(parsePacketHeader(bad.data(), bad.size(), out));
    // Unknown packet type.
    bad = good;
    bad[5] = 0x33;
    EXPECT_FALSE(parsePacketHeader(bad.data(), bad.size(), out));
}

TEST(WireFormat, CrcCatchesEverySmallFlip)
{
    std::vector<std::uint8_t> payload(600);
    Rng rng(99);
    for (auto &b : payload)
        b = static_cast<std::uint8_t>(rng.next());
    PacketHeader h = sampleHeader();
    h.payloadBytes = static_cast<std::uint32_t>(payload.size());
    const std::vector<std::uint8_t> pkt =
        buildPacket(h, payload.data(), payload.size());
    ASSERT_TRUE(verifyPacketCrc(pkt.data(), pkt.size()));

    // Every single-bit flip anywhere in the datagram — header bytes
    // included — must be caught (CRC-32 guarantees 1-3 flips at this
    // size).
    for (std::size_t byte = 0; byte < pkt.size(); ++byte) {
        std::vector<std::uint8_t> flipped = pkt;
        flipped[byte] ^= 0x10;
        EXPECT_FALSE(verifyPacketCrc(flipped.data(), flipped.size()))
            << "flip at byte " << byte << " undetected";
    }
    // A sample of triple flips.
    for (int trial = 0; trial < 64; ++trial) {
        std::vector<std::uint8_t> flipped = pkt;
        for (int f = 0; f < 3; ++f) {
            const std::uint64_t bit =
                rng.uniformInt(flipped.size() * 8);
            flipped[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
        if (flipped == pkt)
            continue;  // flips cancelled
        EXPECT_FALSE(verifyPacketCrc(flipped.data(), flipped.size()));
    }
}

TEST(WireFormat, ManifestRoundTrips)
{
    FrameManifest m;
    m.width = 640;
    m.height = 480;
    m.tileSize = 4;
    m.tileCount = 160 * 120;
    m.packetCount = 57;
    m.payloadBits = 0x123456789ULL;
    m.streamBytes = 0x2468ace;
    m.streamCrc = 0xdeadbeef;

    PacketHeader h;
    h.sessionId = 1;
    h.type = PacketType::Manifest;
    h.sequence = 0;
    h.payloadBytes = kManifestPayloadBytes;
    const std::vector<std::uint8_t> pkt = buildManifestPacket(h, m);
    ASSERT_EQ(pkt.size(), kPacketHeaderBytes + kManifestPayloadBytes);
    EXPECT_TRUE(verifyPacketCrc(pkt.data(), pkt.size()));

    FrameManifest out;
    ASSERT_TRUE(parseManifestPayload(pkt.data() + kPacketHeaderBytes,
                                     kManifestPayloadBytes, out));
    EXPECT_EQ(out.width, m.width);
    EXPECT_EQ(out.height, m.height);
    EXPECT_EQ(out.tileSize, m.tileSize);
    EXPECT_EQ(out.tileCount, m.tileCount);
    EXPECT_EQ(out.packetCount, m.packetCount);
    EXPECT_EQ(out.payloadBits, m.payloadBits);
    EXPECT_EQ(out.streamBytes, m.streamBytes);
    EXPECT_EQ(out.streamCrc, m.streamCrc);

    // Wrong payload size is a parse failure, not a partial read.
    EXPECT_FALSE(parseManifestPayload(pkt.data() + kPacketHeaderBytes,
                                      kManifestPayloadBytes - 1, out));
}

} // namespace
} // namespace pce::net
