/**
 * @file
 * Deterministic property/soak harness for the adaptive delivery tier
 * (ISSUE 9): PCE_SOAK_SEEDS seeds (default 16) x five loss schedules
 * (clean, constant 10%, constant 25%, step 0->25->0, burst) x 32
 * frames each, all through the seeded LossyChannel with the per-frame
 * drop rate driven by the shared schedule functions
 * (net/rate_control.hh), so every run is replayable bit for bit.
 *
 * Invariants asserted on every frame of every run:
 *  - frames delivered before the schedule's first lossy frame are
 *    byte-identical (CRC-proven), nothing shed, nothing retransmitted
 *    — at 0% loss the adaptive tier is fully transparent;
 *  - zero silent tiles: every tile claimed delivered is pixel-exact
 *    against the encoder input, every degraded tile is flagged;
 *  - shedding respects the continuous cutoff: no shed packet's tile
 *    eccentricity is below the frame's cutoff radius;
 *  - frames the schedule leaves clean deliver the foveal region
 *    intact (the budget floor always admits the fovea);
 *  - replaying a (seed, schedule) pair reproduces the identical
 *    budget/cutoff/byte trace;
 *  - under the step schedule the adaptive controller recovers full
 *    foveal delivery after the loss ends and beats the constant-
 *    budget baseline's delivered-tile ratio.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "bd/bd_codec.hh"
#include "common/env.hh"
#include "common/rng.hh"
#include "net/delivery.hh"
#include "perception/display.hh"

namespace pce::net {
namespace {

constexpr int kW = 64;
constexpr int kH = 64;
constexpr int kTile = 4;
constexpr int kFrames = 32;
constexpr int kDeadlineRounds = 8;

int
soakSeeds()
{
    return static_cast<int>(
        std::max(1L, envInt("PCE_SOAK_SEEDS", 16)));
}

ImageU8
noisyImage(std::uint64_t seed)
{
    ImageU8 img(kW, kH);
    Rng rng(seed);
    for (auto &b : img.data())
        b = static_cast<std::uint8_t>(rng.next());
    return img;
}

EccentricityMap
centeredEcc()
{
    DisplayGeometry geom;
    geom.width = kW;
    geom.height = kH;
    geom.horizontalFovDeg = 100.0;
    geom.fixationX = kW / 2.0;
    geom.fixationY = kH / 2.0;
    return EccentricityMap(geom);
}

/** The 32-frame content set, encoded once for the whole suite. */
struct Content
{
    std::vector<ImageU8> images;
    std::vector<std::vector<std::uint8_t>> streams;
    std::size_t maxWireBytes = 0;
};

const Content &
content()
{
    static const Content c = [] {
        Content ct;
        const EccentricityMap ecc = centeredEcc();
        PacketizerParams pp;
        pp.mtuBytes = 300;
        for (int f = 0; f < kFrames; ++f) {
            ct.images.push_back(
                noisyImage(0x9000 + static_cast<std::uint64_t>(f)));
            ct.streams.push_back(BdCodec(kTile).encode(ct.images.back()));
            ct.maxWireBytes =
                std::max(ct.maxWireBytes,
                         packetizeFrame(ct.streams.back(),
                                        static_cast<std::uint64_t>(f),
                                        &ecc, pp)
                             .wireBytes);
        }
        return ct;
    }();
    return c;
}

/**
 * The statically provisioned constant budget: just enough rounds-
 * times-bytes to move the largest frame through a clean channel
 * within the deadline. The +300 absorbs per-round packing loss (a
 * packet that misses the residual budget waits a round). This is
 * both the constant baseline's budget and the adaptive controller's
 * floor — adaptation only ever adds capacity on top.
 */
std::size_t
provisionedBudget()
{
    return (content().maxWireBytes +
            static_cast<std::size_t>(kDeadlineRounds) - 1) /
               static_cast<std::size_t>(kDeadlineRounds) +
           300;
}

SenderPolicy
soakPolicy(bool adaptive)
{
    SenderPolicy p;
    p.mtuBytes = 300;
    p.sessionId = 0xabc;
    p.streamId = 1;
    p.deadlineRounds = kDeadlineRounds;
    p.adaptiveRate = adaptive;
    if (adaptive) {
        p.rateControl.minBudgetBytesPerRound = provisionedBudget();
        p.rateControl.initialBudgetBytesPerRound = provisionedBudget();
        p.rateControl.maxBudgetBytesPerRound = content().maxWireBytes;
        // Gentle decrease: an 11-frame loss step must not collapse
        // the clean-phase headroom all the way to the floor — that
        // headroom is precisely the adaptive controller's edge over
        // the constant baseline.
        p.rateControl.multiplicativeDecrease = 0.9;
    } else {
        p.budgetBytesPerRound = provisionedBudget();
    }
    return p;
}

/** One frame's outcome, everything determinism must reproduce. */
struct FrameTrace
{
    std::size_t budget = 0;
    double estimatedLoss = 0.0;
    double cutoffEccDeg = 0.0;
    std::size_t packetsSent = 0;
    std::size_t bytesSent = 0;
    std::size_t retransmitted = 0;
    std::size_t shedPackets = 0;
    std::size_t shedBytes = 0;
    std::size_t deliveredTiles = 0;
    std::size_t totalTiles = 0;
    bool fovealIntact = false;
    bool byteIdentical = false;

    bool operator==(const FrameTrace &) const = default;
};

std::uint64_t
channelSeed(int seed_index)
{
    return 0x5eedULL + 977ULL * static_cast<std::uint64_t>(seed_index);
}

/** Every tile the report claims delivered must match @p clean. */
void
expectNoSilentTiles(const FrameDeliveryReport &rep, const ImageU8 &out,
                    const ImageU8 &clean)
{
    if (!rep.manifestReceived) {
        // Whole-frame degradation (the manifest never made it): no
        // tile is claimed delivered, so nothing can be silent.
        EXPECT_TRUE(rep.tileDelivered.empty());
        EXPECT_EQ(rep.deliveredTiles, 0u);
        return;
    }
    const std::vector<TileRect> tiles = tileGrid(kW, kH, kTile);
    ASSERT_EQ(rep.tileDelivered.size(), tiles.size());
    std::size_t flagged = 0;
    for (std::size_t t = 0; t < tiles.size(); ++t) {
        if (!rep.tileDelivered[t]) {
            ++flagged;
            continue;
        }
        const TileRect &r = tiles[t];
        for (int y = r.y0; y < r.y0 + r.h; ++y)
            for (int x = r.x0; x < r.x0 + r.w; ++x)
                for (int c = 0; c < 3; ++c)
                    ASSERT_EQ(out.channel(x, y, c),
                              clean.channel(x, y, c))
                        << "silently corrupt tile " << t;
    }
    EXPECT_EQ(flagged, rep.fallbackTiles + rep.filledTiles);
    EXPECT_EQ(rep.deliveredTiles + flagged, rep.totalTiles);
}

/**
 * Run one (seed, schedule) sweep and return its trace. With
 * @p check_invariants the per-frame soak invariants are asserted
 * in-line (the replay pass skips them — it compares traces instead).
 */
std::vector<FrameTrace>
runSweep(int seed_index, LossScheduleId schedule, bool adaptive,
         bool check_invariants)
{
    const Content &ct = content();
    const EccentricityMap ecc = centeredEcc();
    const SenderPolicy policy = soakPolicy(adaptive);

    LossyChannelConfig ch;
    ch.seed = channelSeed(seed_index);
    LossyChannel channel(ch);
    FrameReassembler rx([&] {
        ReassemblerParams rp;
        rp.sessionId = policy.sessionId;
        return rp;
    }());
    RateController rate(policy.rateControl);

    std::vector<FrameTrace> trace;
    bool seen_loss = false;
    for (int f = 0; f < kFrames; ++f) {
        const double drop =
            scheduledDropRate(schedule, f, kFrames);
        channel.setDropRate(drop);
        seen_loss = seen_loss || drop > 0.0;

        ImageU8 out;
        const DeliveryReport rep = deliverFrame(
            ct.streams[static_cast<std::size_t>(f)],
            static_cast<std::uint64_t>(f), &ecc, channel, rx, out,
            policy, adaptive ? &rate : nullptr);

        FrameTrace t;
        t.budget = rep.frame.budgetBytesPerRound;
        t.estimatedLoss = rep.frame.estimatedLossRate;
        t.cutoffEccDeg = rep.frame.cutoffEccDeg;
        t.packetsSent = rep.packetsSent;
        t.bytesSent = rep.bytesSent;
        t.retransmitted = rep.retransmittedPackets;
        t.shedPackets = rep.shedPackets;
        t.shedBytes = rep.shedBytes;
        t.deliveredTiles = rep.frame.deliveredTiles;
        t.totalTiles = rep.frame.totalTiles;
        t.fovealIntact = rep.fovealIntact;
        t.byteIdentical = rep.frame.byteIdentical;
        trace.push_back(t);

        if (!check_invariants)
            continue;
        const ImageU8 &clean = ct.images[static_cast<std::size_t>(f)];
        // Transparency before the schedule's first lossy frame: the
        // provisioned floor moves the whole frame at 0% loss, so the
        // adaptive tier starts byte-identical — not degraded-until-
        // converged.
        if (!seen_loss) {
            EXPECT_TRUE(rep.frame.byteIdentical)
                << "pre-loss frame " << f << " not byte-identical";
            EXPECT_EQ(rep.shedPackets, 0u);
            EXPECT_EQ(rep.retransmittedPackets, 0u);
            EXPECT_EQ(out, clean);
        }
        // Zero silent tiles, always — loss degrades, never corrupts.
        expectNoSilentTiles(rep.frame, out, clean);
        // Shedding respects the foveal-first order: the fovea is
        // never shed, and without retransmission pressure (no loss
        // actually bit) nothing inside the cutoff radius is shed —
        // reactive starvation inside the cutoff can only come from
        // retransmissions eating the planned budget.
        if (rep.shedPackets > 0) {
            EXPECT_GT(rep.minShedEccDeg, policy.fovealCutoffDeg)
                << "frame " << f << " shed a foveal packet";
            if (rep.retransmittedPackets == 0 &&
                std::isfinite(rep.frame.cutoffEccDeg))
                EXPECT_GE(rep.minShedEccDeg, rep.frame.cutoffEccDeg)
                    << "frame " << f
                    << " shed inside the cutoff radius";
        }
        // Frames the schedule leaves clean keep the fovea intact:
        // even a worst-case loss estimate derates capacity no further
        // than the floor, which always admits the foveal packets.
        if (drop == 0.0)
            EXPECT_TRUE(rep.fovealIntact)
                << "foveal region degraded on clean frame " << f;
    }
    return trace;
}

double
deliveredTileRatio(const std::vector<FrameTrace> &trace)
{
    std::size_t delivered = 0;
    std::size_t total = 0;
    for (const FrameTrace &t : trace) {
        delivered += t.deliveredTiles;
        total += t.totalTiles;
    }
    return total > 0 ? static_cast<double>(delivered) /
                           static_cast<double>(total)
                     : 0.0;
}

const LossScheduleId kSchedules[] = {
    LossScheduleId::Clean, LossScheduleId::Constant10,
    LossScheduleId::Constant25, LossScheduleId::Step,
    LossScheduleId::Burst};

TEST(DeliverySoak, SweepInvariantsHoldForEverySeedAndSchedule)
{
    const int seeds = soakSeeds();
    for (int s = 0; s < seeds; ++s) {
        for (const LossScheduleId sched : kSchedules) {
            SCOPED_TRACE(std::string("schedule ") +
                         lossScheduleName(sched) + " seed " +
                         std::to_string(s));
            const std::vector<FrameTrace> trace =
                runSweep(s, sched, /*adaptive=*/true,
                         /*check_invariants=*/true);
            ASSERT_EQ(trace.size(),
                      static_cast<std::size_t>(kFrames));
            // Clean schedule: transparent on every frame.
            if (sched == LossScheduleId::Clean)
                for (const FrameTrace &t : trace)
                    EXPECT_TRUE(t.byteIdentical);
            // Lossy schedules still keep the fovea intact on the
            // overwhelming majority of frames (foveal packets get
            // every retransmission attempt first).
            std::size_t intact = 0;
            for (const FrameTrace &t : trace)
                intact += t.fovealIntact ? 1 : 0;
            EXPECT_GE(static_cast<double>(intact) / kFrames, 0.85);
        }
    }
}

TEST(DeliverySoak, ReplayWithTheSameSeedIsBitIdentical)
{
    const int seeds = soakSeeds();
    for (int s = 0; s < seeds; ++s)
        for (const LossScheduleId sched : kSchedules) {
            SCOPED_TRACE(std::string("schedule ") +
                         lossScheduleName(sched) + " seed " +
                         std::to_string(s));
            const std::vector<FrameTrace> once =
                runSweep(s, sched, true, false);
            const std::vector<FrameTrace> twice =
                runSweep(s, sched, true, false);
            // Budgets, loss estimates, cutoffs, byte counts: the
            // whole control trajectory replays exactly, doubles
            // included — the controller is pure arithmetic.
            EXPECT_EQ(once, twice);
        }
    // Different seeds draw different channel histories (sanity that
    // the seed is actually load-bearing).
    const std::vector<FrameTrace> a =
        runSweep(0, LossScheduleId::Constant25, true, false);
    const std::vector<FrameTrace> b =
        runSweep(1, LossScheduleId::Constant25, true, false);
    EXPECT_NE(a, b);
}

TEST(DeliverySoak, AdaptiveRecoversAndBeatsConstantUnderStep)
{
    const int seeds = soakSeeds();
    double adaptive_sum = 0.0;
    double constant_sum = 0.0;
    for (int s = 0; s < seeds; ++s) {
        SCOPED_TRACE("seed " + std::to_string(s));
        const std::vector<FrameTrace> adaptive =
            runSweep(s, LossScheduleId::Step, true, false);
        const std::vector<FrameTrace> constant =
            runSweep(s, LossScheduleId::Step, false, false);

        // Recovery: once the loss step ends, the controller re-opens
        // and every tail frame delivers the foveal region; by the
        // last frame the budget has regrown past the floor and the
        // frame is transparent again.
        bool in_tail = false;
        for (int f = 0; f < kFrames; ++f) {
            const bool lossy =
                scheduledDropRate(LossScheduleId::Step, f, kFrames) >
                0.0;
            in_tail = in_tail || (f > 0 && !lossy &&
                                  scheduledDropRate(
                                      LossScheduleId::Step, f - 1,
                                      kFrames) > 0.0);
            if (in_tail && !lossy)
                EXPECT_TRUE(adaptive[static_cast<std::size_t>(f)]
                                .fovealIntact)
                    << "foveal delivery not recovered at frame " << f;
        }
        EXPECT_TRUE(adaptive.back().byteIdentical)
            << "budget did not re-open to full delivery";
        EXPECT_GT(adaptive.back().budget, provisionedBudget());

        // The floor equals the constant baseline's budget and the
        // clean-phase headroom carried into the step buys retransmit
        // capacity the baseline never has: every seed delivers a
        // strictly larger share of tiles.
        const double ra = deliveredTileRatio(adaptive);
        const double rc = deliveredTileRatio(constant);
        EXPECT_GT(ra, rc);
        adaptive_sum += ra;
        constant_sum += rc;
    }
    EXPECT_GT(adaptive_sum, constant_sum);
}

} // namespace
} // namespace pce::net
