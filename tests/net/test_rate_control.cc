/**
 * @file
 * Unit tests for the adaptive rate-control primitives (ISSUE 9):
 * EWMA estimator convergence and idle reset, the AIMD budget law
 * (additive increase on clean frames, multiplicative decrease on
 * loss, clamped to [min, max]), and monotonicity of the continuous
 * foveal cutoff in the budget. Everything here is pure arithmetic —
 * no channel, no threads — so the expectations are exact.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "bd/bd_codec.hh"
#include "common/rng.hh"
#include "net/rate_control.hh"
#include "perception/display.hh"

namespace pce::net {
namespace {

/** Feedback for a frame that lost @p lost of @p sent transmissions. */
DeliveryFeedback
frameWithLoss(std::size_t sent, std::size_t lost, int rounds = 2)
{
    DeliveryFeedback fb;
    fb.packetsSent = sent;
    fb.retransmittedPackets = lost;
    fb.admittedPackets = sent;
    fb.roundsUsed = rounds;
    return fb;
}

TEST(RateEstimator, ConvergesToKnownLossRate)
{
    RateControlParams p;
    p.lossAlpha = 0.25;
    RateEstimator est(p);
    EXPECT_FALSE(est.warm());
    EXPECT_DOUBLE_EQ(est.lossRate(), 0.0);

    // Constant 20% loss samples: the first is adopted outright, every
    // later one leaves the estimate unchanged — already converged.
    for (int f = 0; f < 32; ++f)
        est.onFrame(frameWithLoss(100, 20));
    EXPECT_TRUE(est.warm());
    EXPECT_NEAR(est.lossRate(), 0.20, 1e-12);

    // A regime change converges geometrically: the residual shrinks
    // by (1 - alpha) per frame, so after n frames the estimate is
    // target + (start - target) * (1 - alpha)^n exactly.
    const double start = est.lossRate();
    const int n = 16;
    for (int f = 0; f < n; ++f)
        est.onFrame(frameWithLoss(100, 0));
    const double expected = start * std::pow(1.0 - p.lossAlpha, n);
    EXPECT_NEAR(est.lossRate(), expected, 1e-12);
    EXPECT_LT(est.lossRate(), 0.01);
}

TEST(RateEstimator, TracksRttInRounds)
{
    RateEstimator est;
    est.onFrame(frameWithLoss(10, 0, 4));
    EXPECT_DOUBLE_EQ(est.rttRounds(), 4.0);  // first sample adopted
    for (int f = 0; f < 64; ++f)
        est.onFrame(frameWithLoss(10, 0, 2));
    EXPECT_NEAR(est.rttRounds(), 2.0, 1e-6);
}

TEST(RateEstimator, IdleStreakResetsTheEstimator)
{
    RateControlParams p;
    p.idleResetFrames = 3;
    RateEstimator est(p);
    for (int f = 0; f < 8; ++f)
        est.onFrame(frameWithLoss(100, 50));
    EXPECT_NEAR(est.lossRate(), 0.50, 1e-12);

    // Two idle frames are forgiven; delivery feedback clears the
    // streak, so another two still do not reset.
    est.onIdleFrame();
    est.onIdleFrame();
    EXPECT_TRUE(est.warm());
    est.onFrame(frameWithLoss(100, 50));
    est.onIdleFrame();
    est.onIdleFrame();
    EXPECT_TRUE(est.warm());

    // The third consecutive idle frame crosses the threshold: the
    // channel knowledge expires and the estimator reads cold-clean.
    est.onIdleFrame();
    EXPECT_FALSE(est.warm());
    EXPECT_DOUBLE_EQ(est.lossRate(), 0.0);
    EXPECT_DOUBLE_EQ(est.rttRounds(), 1.0);
}

TEST(RateController, AdditiveIncreaseOnCleanFrames)
{
    RateControlParams p;
    p.minBudgetBytesPerRound = 2400;
    p.additiveIncreaseBytes = 1200;
    p.maxBudgetBytesPerRound = 2400 + 10 * 1200;
    RateController ctl(p);
    EXPECT_EQ(ctl.budgetBytesPerRound(), 2400u);

    // Exactly +additiveIncreaseBytes per clean frame...
    for (int f = 1; f <= 10; ++f) {
        ctl.onFrame(frameWithLoss(50, 0));
        EXPECT_EQ(ctl.budgetBytesPerRound(),
                  2400u + static_cast<std::size_t>(f) * 1200u);
    }
    // ...then clamped at the ceiling, however many clean frames pass.
    for (int f = 0; f < 20; ++f)
        ctl.onFrame(frameWithLoss(50, 0));
    EXPECT_EQ(ctl.budgetBytesPerRound(), p.maxBudgetBytesPerRound);
}

TEST(RateController, MultiplicativeDecreaseOnLossClampsAtFloor)
{
    RateControlParams p;
    p.minBudgetBytesPerRound = 2400;
    p.initialBudgetBytesPerRound = 64 * 1024;
    p.multiplicativeDecrease = 0.5;
    RateController ctl(p);
    EXPECT_EQ(ctl.budgetBytesPerRound(), 64u * 1024u);

    ctl.onFrame(frameWithLoss(100, 10));
    EXPECT_EQ(ctl.budgetBytesPerRound(), 32u * 1024u);
    ctl.onFrame(frameWithLoss(100, 10));
    EXPECT_EQ(ctl.budgetBytesPerRound(), 16u * 1024u);

    // However sustained the loss, the budget never undercuts the
    // statically provisioned floor — adaptation only ever adds.
    for (int f = 0; f < 32; ++f)
        ctl.onFrame(frameWithLoss(100, 50));
    EXPECT_EQ(ctl.budgetBytesPerRound(), p.minBudgetBytesPerRound);
}

TEST(RateController, IdleResetReanchorsTheBudget)
{
    RateControlParams p;
    p.minBudgetBytesPerRound = 2400;
    p.idleResetFrames = 2;
    RateController ctl(p);
    for (int f = 0; f < 8; ++f)
        ctl.onFrame(frameWithLoss(50, 0));
    const std::size_t grown = ctl.budgetBytesPerRound();
    EXPECT_GT(grown, p.minBudgetBytesPerRound);

    ctl.onIdleFrame();
    EXPECT_EQ(ctl.budgetBytesPerRound(), grown);  // streak too short
    ctl.onIdleFrame();
    EXPECT_EQ(ctl.budgetBytesPerRound(), p.minBudgetBytesPerRound);
    EXPECT_FALSE(ctl.estimator().warm());
}

TEST(RateController, RejectsNonsenseParameters)
{
    RateControlParams p;
    p.minBudgetBytesPerRound = 0;
    EXPECT_THROW(RateController{p}, std::invalid_argument);

    p = {};
    p.maxBudgetBytesPerRound = p.minBudgetBytesPerRound - 1;
    EXPECT_THROW(RateController{p}, std::invalid_argument);

    p = {};
    p.multiplicativeDecrease = 1.0;
    EXPECT_THROW(RateController{p}, std::invalid_argument);

    p = {};
    p.lossAlpha = 0.0;
    EXPECT_THROW(RateController{p}, std::invalid_argument);
}

/** A packetized 64x64 frame with a centered fixation. */
PacketizedFrame
packetizedTestFrame()
{
    ImageU8 img(64, 64);
    Rng rng(99);
    for (auto &b : img.data())
        b = static_cast<std::uint8_t>(rng.next());
    DisplayGeometry geom;
    geom.width = 64;
    geom.height = 64;
    geom.horizontalFovDeg = 100.0;
    geom.fixationX = 32.0;
    geom.fixationY = 32.0;
    const EccentricityMap ecc(geom);
    PacketizerParams pp;
    pp.mtuBytes = 300;
    return packetizeFrame(BdCodec(4).encode(img), 0, &ecc, pp);
}

TEST(ContinuousFovealCutoff, MonotoneInBudget)
{
    const PacketizedFrame pf = packetizedTestFrame();
    ASSERT_GT(pf.packets.size(), 4u);

    std::size_t prev_packets = 0;
    double prev_ecc = -1.0;
    bool saw_partial = false;
    for (std::size_t budget = 64; budget <= 64 * 1024; budget *= 2) {
        const FovealCutoff cut =
            continuousFovealCutoff(pf, budget, 4, 0.0);
        // Never fewer packets or a smaller radius than a smaller
        // budget admitted.
        EXPECT_GE(cut.admittedPackets, prev_packets);
        if (std::isfinite(cut.cutoffEccDeg))
            EXPECT_GE(cut.cutoffEccDeg, prev_ecc);
        // The floor: manifest plus the innermost data packet always
        // ship, no matter how small the budget.
        EXPECT_GE(cut.admittedPackets, 2u);
        if (cut.admittedPackets < pf.packets.size())
            saw_partial = true;
        prev_packets = cut.admittedPackets;
        if (std::isfinite(cut.cutoffEccDeg))
            prev_ecc = cut.cutoffEccDeg;
    }
    // The sweep actually exercised a partial admission and ended with
    // everything admitted (infinite radius).
    EXPECT_TRUE(saw_partial);
    EXPECT_EQ(prev_packets, pf.packets.size());
    const FovealCutoff full =
        continuousFovealCutoff(pf, 64 * 1024, 4, 0.0);
    EXPECT_TRUE(std::isinf(full.cutoffEccDeg));
}

TEST(ContinuousFovealCutoff, LossEstimateDeratesCapacity)
{
    const PacketizedFrame pf = packetizedTestFrame();
    // Pick a budget that admits a strict subset at zero loss.
    std::size_t budget = 0;
    FovealCutoff clean;
    for (budget = 256;; budget += 256) {
        clean = continuousFovealCutoff(pf, budget, 2, 0.0);
        if (clean.admittedPackets > 2 &&
            clean.admittedPackets < pf.packets.size() - 2)
            break;
        ASSERT_LT(budget, std::size_t{1} << 20);
    }
    // A lossy estimate of the same channel admits no more (usually
    // strictly fewer) packets: the capacity is derated.
    const FovealCutoff lossy =
        continuousFovealCutoff(pf, budget, 2, 0.5);
    EXPECT_LE(lossy.admittedPackets, clean.admittedPackets);
    // The derate floor keeps even a 100%-loss estimate shipping the
    // foveal floor.
    const FovealCutoff worst =
        continuousFovealCutoff(pf, budget, 2, 1.0);
    EXPECT_GE(worst.admittedPackets, 2u);
}

TEST(LossSchedules, AreDeterministicAndShaped)
{
    // Pure functions: same inputs, same rate.
    for (int f = 0; f < 48; ++f)
        EXPECT_EQ(scheduledDropRate(LossScheduleId::Step, f, 48),
                  scheduledDropRate(LossScheduleId::Step, f, 48));

    // Step: clean head, 25% middle third, clean tail.
    EXPECT_DOUBLE_EQ(scheduledDropRate(LossScheduleId::Step, 0, 48),
                     0.0);
    EXPECT_DOUBLE_EQ(scheduledDropRate(LossScheduleId::Step, 24, 48),
                     0.25);
    EXPECT_DOUBLE_EQ(scheduledDropRate(LossScheduleId::Step, 47, 48),
                     0.0);

    // Burst: recurring two-frame 50% shocks, clean otherwise.
    int burst_frames = 0;
    for (int f = 0; f < 48; ++f) {
        const double r =
            scheduledDropRate(LossScheduleId::Burst, f, 48);
        EXPECT_TRUE(r == 0.0 || r == 0.50);
        if (r > 0.0)
            ++burst_frames;
    }
    EXPECT_EQ(burst_frames, 12);

    EXPECT_STREQ(lossScheduleName(LossScheduleId::Clean), "clean");
    EXPECT_STREQ(lossScheduleName(LossScheduleId::Step), "step");
}

} // namespace
} // namespace pce::net
