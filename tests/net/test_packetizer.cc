/**
 * @file
 * Packetizer unit tests: tile-aligned splitting must cover every tile
 * exactly once within the MTU budget, payload slices must carry the
 * stream's own bytes (shared boundary bytes identical between
 * neighbors, so reassembly copies are order-free), and foveal-priority
 * scheduling must order the send schedule by eccentricity.
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "common/rng.hh"
#include "net/packetizer.hh"
#include "perception/display.hh"

namespace pce::net {
namespace {

ImageU8
noisyImage(int w, int h, std::uint64_t seed)
{
    ImageU8 img(w, h);
    Rng rng(seed);
    for (auto &b : img.data())
        b = static_cast<std::uint8_t>(rng.next());
    return img;
}

std::vector<std::uint8_t>
encodeStream(const ImageU8 &img, int tile = 4)
{
    return BdCodec(tile).encode(img);
}

TEST(Packetizer, CoversEveryTileExactlyOnceInOrder)
{
    const std::vector<std::uint8_t> stream =
        encodeStream(noisyImage(64, 48, 1));
    PacketizerParams params;
    params.mtuBytes = 256;
    const PacketizedFrame pf = packetizeFrame(stream, 0, nullptr,
                                              params);

    ASSERT_GE(pf.packets.size(), 2u);
    EXPECT_EQ(pf.packets[0].header.type, PacketType::Manifest);
    EXPECT_EQ(pf.packets[0].header.sequence, 0u);
    EXPECT_EQ(pf.manifest.tileCount, 16u * 12u);
    EXPECT_EQ(pf.manifest.packetCount, pf.packets.size() - 1);

    std::uint32_t next_tile = 0;
    for (std::size_t i = 1; i < pf.packets.size(); ++i) {
        const PacketHeader &h = pf.packets[i].header;
        EXPECT_EQ(h.type, PacketType::TileData);
        EXPECT_EQ(h.sequence, i);
        EXPECT_EQ(h.tileBegin, next_tile) << "gap or overlap";
        EXPECT_GE(h.tileCount, 1u);
        next_tile += h.tileCount;
        EXPECT_LE(pf.packets[i].bytes.size(), params.mtuBytes);
        EXPECT_TRUE(verifyPacketCrc(pf.packets[i].bytes.data(),
                                    pf.packets[i].bytes.size()));
    }
    EXPECT_EQ(next_tile, pf.manifest.tileCount);
}

TEST(Packetizer, PayloadSlicesCarryTheStreamBytes)
{
    const std::vector<std::uint8_t> stream =
        encodeStream(noisyImage(32, 32, 2));
    PacketizerParams params;
    params.mtuBytes = 200;
    const PacketizedFrame pf = packetizeFrame(stream, 0, nullptr,
                                              params);

    for (std::size_t i = 1; i < pf.packets.size(); ++i) {
        const PacketHeader &h = pf.packets[i].header;
        const std::size_t start =
            static_cast<std::size_t>(
                (kBdStreamHeaderBits + h.payloadBitBegin) / 8);
        ASSERT_LE(start + h.payloadBytes, stream.size());
        // The payload is literally the stream's bytes: adjacent
        // packets may share a boundary byte, but both copies carry
        // identical source bytes, which is what makes reassembly
        // copies idempotent in any arrival order.
        EXPECT_TRUE(std::equal(
            pf.packets[i].bytes.begin() + kPacketHeaderBytes,
            pf.packets[i].bytes.end(), stream.begin() + start));
    }
}

TEST(Packetizer, ManifestAccountsForTheWholeStream)
{
    const std::vector<std::uint8_t> stream =
        encodeStream(noisyImage(40, 24, 3));
    const PacketizedFrame pf = packetizeFrame(stream, 9, nullptr, {});
    EXPECT_EQ(pf.manifest.width, 40u);
    EXPECT_EQ(pf.manifest.height, 24u);
    EXPECT_EQ(pf.manifest.tileSize, 4u);
    EXPECT_EQ(pf.manifest.streamBytes, stream.size());
    EXPECT_EQ(
        (kBdStreamHeaderBits + pf.manifest.payloadBits + 7) / 8,
        stream.size());
    for (const Packet &p : pf.packets)
        EXPECT_EQ(p.header.frameId, 9u);
}

TEST(Packetizer, FovealPacketsLeadTheSendOrder)
{
    DisplayGeometry geom;
    geom.width = 64;
    geom.height = 64;
    geom.horizontalFovDeg = 100.0;
    geom.fixationX = 32.0;
    geom.fixationY = 32.0;
    const EccentricityMap ecc(geom);
    const std::vector<std::uint8_t> stream =
        encodeStream(noisyImage(64, 64, 4));
    PacketizerParams params;
    params.mtuBytes = 200;
    const PacketizedFrame pf = packetizeFrame(stream, 0, &ecc, params);

    ASSERT_GE(pf.sendOrder.size(), 3u);
    EXPECT_EQ(pf.sendOrder[0], 0u) << "manifest must go first";
    double prev = -1.0;
    for (std::size_t i = 1; i < pf.sendOrder.size(); ++i) {
        const double e = pf.packets[pf.sendOrder[i]].minEccDeg;
        EXPECT_GE(e, prev) << "send order not foveal-first at " << i;
        prev = e;
    }
    // And it is a permutation of all packets.
    std::vector<std::uint32_t> sorted(pf.sendOrder);
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Packetizer, RejectsNonsense)
{
    const std::vector<std::uint8_t> stream =
        encodeStream(noisyImage(16, 16, 5));
    PacketizerParams params;
    params.mtuBytes = kPacketHeaderBytes;  // no room for any payload
    EXPECT_THROW(packetizeFrame(stream, 0, nullptr, params),
                 std::invalid_argument);

    std::vector<std::uint8_t> bad = stream;
    bad[0] ^= 0xff;  // break the BD magic
    EXPECT_THROW(packetizeFrame(bad, 0, nullptr, {}),
                 std::runtime_error);

    bad = stream;
    bad.push_back(0);  // trailing garbage
    EXPECT_THROW(packetizeFrame(bad, 0, nullptr, {}),
                 std::runtime_error);
}

TEST(Packetizer, DeterministicAcrossCalls)
{
    const std::vector<std::uint8_t> stream =
        encodeStream(noisyImage(48, 32, 6));
    PacketizerParams params;
    params.mtuBytes = 300;
    const PacketizedFrame a = packetizeFrame(stream, 5, nullptr,
                                             params);
    const PacketizedFrame b = packetizeFrame(stream, 5, nullptr,
                                             params);
    ASSERT_EQ(a.packets.size(), b.packets.size());
    for (std::size_t i = 0; i < a.packets.size(); ++i)
        EXPECT_EQ(a.packets[i].bytes, b.packets[i].bytes);
    EXPECT_EQ(a.sendOrder, b.sendOrder);
}

} // namespace
} // namespace pce::net
