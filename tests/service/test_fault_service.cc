/**
 * @file
 * EncodeService integrity hardening: quarantine of corrupt frames at
 * dispatch and collect, graceful per-stream degradation (healthy
 * streams and later frames unaffected), gaze-state recovery through
 * the service path, fault counters in StreamStats/ServiceReport, and
 * the documented baseline gap (unhardened services deliver the
 * corruption silently).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "fault/fault_injector.hh"
#include "render/scenes.hh"
#include "service/encode_service.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

DisplayGeometry
centeredGeom(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

/** Golden encode of @p frame for comparison with delivered results. */
EncodedFrame
goldenEncode(const ImageF &frame, const EccentricityMap &ecc)
{
    const PerceptualEncoder enc(model(), {});
    return enc.encodeFrame(frame, ecc);
}

TEST(FaultService, InputCorruptionQuarantinedAtDispatch)
{
    const int n = 48;
    const EccentricityMap ecc(centeredGeom(n, n));
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    ServiceParams sp;
    sp.hardenIntegrity = true;
    // Corrupt frame 1's queued input copy; leave the others alone.
    sp.preEncodeFaultHook = [](const std::string &,
                               std::uint64_t frame_index,
                               ImageF &input) {
        if (frame_index != 1)
            return;
        FaultInjector inj(7);
        inj.injectDoubles(
            reinterpret_cast<double *>(input.pixels().data()),
            input.pixels().size() * 3, 1);
    };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("victim", ecc);

    const EncodedFrame golden = goldenEncode(frame, ecc);
    for (int i = 0; i < 4; ++i) {
        svc.submit(stream, frame);
        if (i == 1) {
            EXPECT_THROW(svc.collect(stream), FrameQuarantined);
        } else {
            const FrameLease lease = svc.collect(stream);
            EXPECT_EQ(lease->bdStream, golden.bdStream)
                << "healthy frame " << i << " affected by quarantine";
        }
    }
    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.faultsDetected, 1u);
    EXPECT_EQ(rep.framesQuarantined, 1u);
    EXPECT_EQ(rep.streams.at(0).framesQuarantined, 1u);
}

TEST(FaultService, OutputCorruptionQuarantinedAtCollect)
{
    const int n = 48;
    const EccentricityMap ecc(centeredGeom(n, n));
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    ServiceParams sp;
    sp.hardenIntegrity = true;
    // Corrupt frame 0's encoded output after the seal was written —
    // the flip happens while the result waits for collect().
    sp.postEncodeFaultHook = [](const std::string &,
                                std::uint64_t frame_index,
                                EncodedFrame &out) {
        if (frame_index != 0)
            return;
        FaultInjector inj(11);
        inj.inject(out.adjustedSrgb.data().data(),
                   out.adjustedSrgb.data().size(), 1);
    };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("victim", ecc);

    svc.submit(stream, frame);
    EXPECT_THROW(svc.collect(stream), FrameQuarantined);
    // The slot was reclaimed: the stream keeps working.
    const EncodedFrame golden = goldenEncode(frame, ecc);
    svc.submit(stream, frame);
    const FrameLease lease = svc.collect(stream);
    EXPECT_EQ(lease->bdStream, golden.bdStream);

    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.faultsDetected, 1u);
    EXPECT_EQ(rep.framesQuarantined, 1u);
}

TEST(FaultService, UnhardenedServiceDeliversCorruptionSilently)
{
    // The baseline gap the campaign measures: without hardenIntegrity
    // the same output flip sails through collect() undetected.
    const int n = 48;
    const EccentricityMap ecc(centeredGeom(n, n));
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    ServiceParams sp;  // hardenIntegrity left off
    sp.postEncodeFaultHook = [](const std::string &, std::uint64_t,
                                EncodedFrame &out) {
        FaultInjector inj(11);
        inj.inject(out.adjustedSrgb.data().data(),
                   out.adjustedSrgb.data().size(), 1);
    };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("victim", ecc);

    const EncodedFrame golden = goldenEncode(frame, ecc);
    svc.submit(stream, frame);
    const FrameLease lease = svc.collect(stream);
    EXPECT_NE(lease->adjustedSrgb, golden.adjustedSrgb);
    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.faultsDetected, 0u);
    EXPECT_EQ(rep.framesQuarantined, 0u);
}

TEST(FaultService, HealthyStreamUnaffectedByNeighborQuarantine)
{
    const int n = 48;
    const EccentricityMap ecc(centeredGeom(n, n));
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    ServiceParams sp;
    sp.hardenIntegrity = true;
    sp.preEncodeFaultHook = [](const std::string &stream_name,
                               std::uint64_t, ImageF &input) {
        if (stream_name != "victim")
            return;
        FaultInjector inj(3);
        inj.injectDoubles(
            reinterpret_cast<double *>(input.pixels().data()),
            input.pixels().size() * 3, 2);
    };
    EncodeService svc(model(), sp);
    StreamHandle victim = svc.openStream("victim", ecc);
    StreamHandle healthy = svc.openStream("healthy", ecc);

    const EncodedFrame golden = goldenEncode(frame, ecc);
    for (int i = 0; i < 3; ++i) {
        svc.submit(victim, frame);
        svc.submit(healthy, frame);
        EXPECT_THROW(svc.collect(victim), FrameQuarantined);
        const FrameLease lease = svc.collect(healthy);
        EXPECT_EQ(lease->bdStream, golden.bdStream);
    }
    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.framesQuarantined, 3u);
    for (const StreamStats &st : rep.streams) {
        if (st.name == "healthy") {
            EXPECT_EQ(st.framesQuarantined, 0u);
            EXPECT_EQ(st.faultsDetected, 0u);
            EXPECT_EQ(st.framesCollected, 3u);
        } else {
            EXPECT_EQ(st.framesQuarantined, 3u);
        }
    }
}

TEST(FaultService, GazeStateRecoveryCountsAndStillDelivers)
{
    const int n = 64;
    const DisplayGeometry geom = centeredGeom(n, n);
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    // Golden: the same gaze-tracked encode with no faults.
    std::vector<std::vector<uint8_t>> goldenStreams;
    {
        const PerceptualEncoder enc(model(), {});
        GazeTrackedEccentricity gaze(geom);
        EncodedFrame out;
        for (int i = 0; i < 3; ++i) {
            const GazeSample s{0.1 * i, geom.fixationX,
                               geom.fixationY};
            enc.encodeFrameGazeInto(frame, gaze, s, out);
            goldenStreams.push_back(out.bdStream);
        }
    }

    ServiceParams sp;
    sp.hardenIntegrity = true;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openGazeStream("eye", geom);

    // No in-service hook reaches the gaze map, so corrupt it through
    // the public recovery API instead: verify the counters aggregate.
    for (int i = 0; i < 3; ++i) {
        const GazeSample s{0.1 * i, geom.fixationX, geom.fixationY};
        svc.submit(stream, frame, s);
        const FrameLease lease = svc.collect(stream);
        EXPECT_EQ(lease->bdStream, goldenStreams[i]) << "frame " << i;
    }
    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.gazeRecoveries, 0u);  // nothing was corrupted
    EXPECT_EQ(rep.framesQuarantined, 0u);
}

TEST(FaultService, ReportAggregatesCorruptFramesAcrossStreams)
{
    // Satellite: corruptFrames (verifyRoundTrip) and the fault
    // counters roll up into one deployment-health report.
    const int n = 32;
    const EccentricityMap ecc(centeredGeom(n, n));
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    ServiceParams sp;
    sp.verifyRoundTrip = true;
    sp.hardenIntegrity = true;
    EncodeService svc(model(), sp);
    StreamHandle a = svc.openStream("a", ecc);
    StreamHandle b = svc.openStream("b", ecc);
    for (int i = 0; i < 2; ++i) {
        svc.submit(a, frame);
        svc.submit(b, frame);
        svc.collect(a).release();
        svc.collect(b).release();
    }
    const ServiceReport rep = svc.report();
    std::uint64_t corrupt = 0, detected = 0, quarantined = 0,
                  recoveries = 0, verified = 0;
    for (const StreamStats &st : rep.streams) {
        corrupt += st.corruptFrames;
        detected += st.faultsDetected;
        quarantined += st.framesQuarantined;
        recoveries += st.gazeRecoveries;
        verified += st.framesVerified;
    }
    EXPECT_EQ(rep.corruptFrames, corrupt);
    EXPECT_EQ(rep.faultsDetected, detected);
    EXPECT_EQ(rep.framesQuarantined, quarantined);
    EXPECT_EQ(rep.gazeRecoveries, recoveries);
    EXPECT_EQ(verified, 4u);
    EXPECT_EQ(rep.corruptFrames, 0u);  // clean run: all healthy
}

} // namespace
} // namespace pce
