/**
 * @file
 * EncodeService: byte-identity with the single-shot encodeFrameInto
 * path, per-stream buffer pinning (zero steady-state allocations),
 * concurrent stream interleaving, backpressure, drain/shutdown with
 * in-flight work, and the stats report.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/encode_service.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

/** Single-shot reference: the exact frames a stream should produce. */
std::vector<std::vector<uint8_t>>
referenceStreams(const std::vector<ImageF> &frames,
                 const EccentricityMap &ecc, int threads)
{
    PipelineParams p;
    p.threads = threads;
    const PerceptualEncoder enc(model(), p);
    std::vector<std::vector<uint8_t>> out;
    EncodedFrame scratch;
    for (const ImageF &f : frames) {
        enc.encodeFrameInto(f, ecc, scratch);
        out.push_back(scratch.bdStream);
    }
    return out;
}

TEST(EncodeService, ByteIdenticalToSingleShotAcrossThreadCounts)
{
    const int n = 64;
    const EccentricityMap ecc = centeredMap(n, n);
    std::vector<ImageF> frames;
    for (int i = 0; i < 4; ++i)
        frames.push_back(renderScene(
            SceneId::Office, {n, n, i % 2, 0.25 * i, 0}));

    const auto reference = referenceStreams(frames, ecc, 1);
    for (const int threads : {1, 4}) {
        ServiceParams sp;
        sp.threads = threads;
        EncodeService svc(model(), sp);
        StreamHandle stream = svc.openStream("office", ecc);
        for (std::size_t i = 0; i < frames.size(); ++i) {
            svc.submit(stream, frames[i]);
            const FrameLease lease = svc.collect(stream);
            EXPECT_EQ(lease->bdStream, reference[i])
                << "frame " << i << ", " << threads << " threads";
            EXPECT_GT(lease->stats.totalTiles, 0u);
        }
    }
}

TEST(EncodeService, StereoPairMatchesPerEyeReferences)
{
    const int n = 48;
    const EccentricityMap ecc = centeredMap(n, n);
    const StereoFrame pair = renderStereo(SceneId::Skyline, n, n, 0.5);
    const auto reference =
        referenceStreams({pair.left, pair.right}, ecc, 1);

    EncodeService svc(model(), {});
    StreamHandle stream = svc.openStream("skyline-stereo", ecc);
    svc.submitStereo(stream, pair);
    const FrameLease left = svc.collect(stream);
    EXPECT_EQ(left->bdStream, reference[0]);
    const FrameLease right = svc.collect(stream);
    EXPECT_EQ(right->bdStream, reference[1]);
}

TEST(EncodeService, SteadyStatePinsEveryPerStreamBuffer)
{
    // The acceptance test of the reuse design: after the first cycle
    // through a stream's slots, further frames must reuse the exact
    // same allocations — input copies, adjusted images, bitstreams.
    const int n = 64;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame = renderScene(SceneId::Dumbo, {n, n, 0, 0.0, 0});

    ServiceParams sp;
    sp.streamDepth = 2;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("pinned", ecc);

    // Warm-up: cycle every slot once (depth=2) so buffers reach their
    // steady-state size, recording each slot's pointers.
    std::vector<const uint8_t *> stream_ptrs;
    std::vector<const Vec3 *> linear_ptrs;
    std::vector<const uint8_t *> srgb_ptrs;
    std::vector<std::vector<uint8_t>> first_streams;
    for (int i = 0; i < 2; ++i) {
        svc.submit(stream, frame);
        const FrameLease lease = svc.collect(stream);
        stream_ptrs.push_back(lease->bdStream.data());
        linear_ptrs.push_back(lease->adjustedLinear.pixels().data());
        srgb_ptrs.push_back(lease->adjustedSrgb.data().data());
        first_streams.push_back(lease->bdStream);
    }
    EXPECT_EQ(first_streams[0], first_streams[1]);

    // Steady state: many more frames; every lease must point into one
    // of the warm slots' pinned buffers and reproduce the stream.
    for (int i = 0; i < 8; ++i) {
        svc.submit(stream, frame);
        const FrameLease lease = svc.collect(stream);
        EXPECT_EQ(lease->bdStream, first_streams[0]) << "frame " << i;
        bool pinned = false;
        for (std::size_t s = 0; s < stream_ptrs.size(); ++s) {
            if (lease->bdStream.data() == stream_ptrs[s]) {
                EXPECT_EQ(lease->adjustedLinear.pixels().data(),
                          linear_ptrs[s]);
                EXPECT_EQ(lease->adjustedSrgb.data().data(),
                          srgb_ptrs[s]);
                pinned = true;
            }
        }
        EXPECT_TRUE(pinned)
            << "frame " << i << " was encoded into a fresh allocation";
    }
}

TEST(EncodeService, ConcurrentStreamsInterleaveWithoutCrosstalk)
{
    // Three producer threads on three streams (different scenes and
    // phases), pipelined submit/collect: every stream must get exactly
    // its own frames back, byte-identical to single-shot encodes.
    const int n = 48;
    const EccentricityMap ecc = centeredMap(n, n);
    const SceneId scenes[3] = {SceneId::Office, SceneId::Fortnite,
                               SceneId::Monkey};
    constexpr int kFrames = 6;

    std::vector<std::vector<ImageF>> frames(3);
    std::vector<std::vector<std::vector<uint8_t>>> reference(3);
    for (int s = 0; s < 3; ++s) {
        for (int i = 0; i < kFrames; ++i)
            frames[s].push_back(renderScene(
                scenes[s], {n, n, 0, 0.1 * i + 0.05 * s, 0}));
        reference[s] = referenceStreams(frames[s], ecc, 1);
    }

    ServiceParams sp;
    sp.threads = 2;
    sp.queueCapacity = 3;  // small: cross-stream backpressure engages
    sp.streamDepth = 2;
    EncodeService svc(model(), sp);

    std::vector<StreamHandle> handles;
    for (int s = 0; s < 3; ++s)
        handles.push_back(
            svc.openStream(sceneName(scenes[s]), ecc));

    std::atomic<int> mismatches{0};
    std::vector<std::thread> producers;
    for (int s = 0; s < 3; ++s) {
        producers.emplace_back([&, s] {
            int collected = 0;
            for (int i = 0; i < kFrames; ++i) {
                svc.submit(handles[s], frames[s][i]);
                // Keep at most one frame in flight beyond this one.
                if (i - collected >= 1) {
                    const FrameLease lease = svc.collect(handles[s]);
                    if (lease->bdStream != reference[s][collected])
                        mismatches.fetch_add(1);
                    ++collected;
                }
            }
            while (collected < kFrames) {
                const FrameLease lease = svc.collect(handles[s]);
                if (lease->bdStream != reference[s][collected])
                    mismatches.fetch_add(1);
                ++collected;
            }
        });
    }
    for (auto &t : producers)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);

    const ServiceReport rep = svc.report();
    ASSERT_EQ(rep.streams.size(), 3u);
    for (const StreamStats &st : rep.streams) {
        EXPECT_EQ(st.framesSubmitted, kFrames);
        EXPECT_EQ(st.framesEncoded, kFrames);
        EXPECT_EQ(st.framesCollected, kFrames);
        EXPECT_GT(st.megapixels, 0.0);
        EXPECT_GT(st.encodeMps, 0.0);
        EXPECT_GE(st.queueLatencyP99Ms, st.queueLatencyP50Ms);
        EXPECT_GE(st.queueLatencyMaxMs, st.queueLatencyP99Ms);
        EXPECT_EQ(st.latencySamples, kFrames);
    }
    EXPECT_EQ(rep.framesEncoded, 3u * kFrames);
}

TEST(EncodeService, DrainWaitsForEverySubmittedFrame)
{
    const int n = 48;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Thai, {n, n, 0, 0.0, 0});
    ServiceParams sp;
    sp.streamDepth = 3;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("thai", ecc);
    for (int i = 0; i < 3; ++i)
        svc.submit(stream, frame);
    svc.drain(stream);
    const ServiceReport rep = svc.report();
    ASSERT_EQ(rep.streams.size(), 1u);
    EXPECT_EQ(rep.streams[0].framesEncoded, 3u);
    // All three results are still collectible after the drain.
    for (int i = 0; i < 3; ++i) {
        const FrameLease lease = svc.collect(stream);
        EXPECT_FALSE(lease->bdStream.empty());
    }
}

TEST(EncodeService, ShutdownFinishesInFlightWorkAndRefusesNew)
{
    const int n = 48;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    ServiceParams sp;
    sp.streamDepth = 4;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("office", ecc);
    for (int i = 0; i < 4; ++i)
        svc.submit(stream, frame);
    svc.shutdown();  // must encode all four queued frames first
    EXPECT_THROW(svc.submit(stream, frame), std::runtime_error);
    EXPECT_THROW(svc.openStream("late", ecc), std::runtime_error);
    for (int i = 0; i < 4; ++i) {
        const FrameLease lease = svc.collect(stream);
        EXPECT_FALSE(lease->bdStream.empty()) << "frame " << i;
    }
    EXPECT_THROW(svc.collect(stream), std::logic_error);
    svc.shutdown();  // idempotent
}

TEST(EncodeService, ShutdownUnblocksBackpressuredProducer)
{
    // A producer stuck in per-stream backpressure (depth 1, nothing
    // collected) must be woken by shutdown with an error, not hang.
    const int n = 48;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    ServiceParams sp;
    sp.streamDepth = 1;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("stuck", ecc);
    svc.submit(stream, frame);
    std::atomic<bool> threw{false};
    std::thread producer([&] {
        try {
            svc.submit(stream, frame);  // blocks: slot still leased out
            svc.submit(stream, frame);
        } catch (const std::runtime_error &) {
            threw.store(true);
        }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    svc.shutdown();
    producer.join();
    EXPECT_TRUE(threw.load());
}

TEST(EncodeService, GeometryMismatchAndBadHandleAreRejected)
{
    const EccentricityMap ecc = centeredMap(48, 48);
    EncodeService svc(model(), {});
    StreamHandle stream = svc.openStream("geom", ecc);
    const ImageF wrong(32, 32);
    EXPECT_THROW(svc.submit(stream, wrong), std::invalid_argument);
    EXPECT_THROW(svc.submit(StreamHandle(), wrong),
                 std::invalid_argument);
    EXPECT_THROW(svc.collect(StreamHandle()), std::invalid_argument);
    EXPECT_THROW(svc.collect(stream), std::logic_error);
    EXPECT_EQ(StreamHandle().name(), "");
    EXPECT_EQ(stream.name(), "geom");
}

TEST(EncodeService, InvalidParamsThrow)
{
    ServiceParams bad_threads;
    bad_threads.threads = 0;
    EXPECT_THROW(EncodeService svc(model(), bad_threads),
                 std::invalid_argument);
    ServiceParams bad_depth;
    bad_depth.streamDepth = 0;
    EXPECT_THROW(EncodeService svc(model(), bad_depth),
                 std::invalid_argument);
    ServiceParams bad_queue;
    bad_queue.queueCapacity = 0;
    EXPECT_THROW(EncodeService svc(model(), bad_queue),
                 std::invalid_argument);
    ServiceParams bad_window;
    bad_window.latencyWindow = 0;
    EXPECT_THROW(EncodeService svc(model(), bad_window),
                 std::invalid_argument);
}

TEST(EncodeService, StereoOnSingleSlotStreamFailsInsteadOfDeadlocking)
{
    const EccentricityMap ecc = centeredMap(48, 48);
    ServiceParams sp;
    sp.streamDepth = 1;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("mono", ecc);
    const StereoFrame pair = renderStereo(SceneId::Office, 48, 48);
    EXPECT_THROW(svc.submitStereo(stream, pair), std::logic_error);
}

} // namespace
} // namespace pce
