/**
 * @file
 * EncodeService gaze streams: per-frame gaze submission is
 * byte-identical to driving encodeFrameGazeInto directly, streams
 * re-fixate independently, per-frame round-trip verification and the
 * dispatcher-backlog metrics surface in the report, and the
 * gaze/static submit APIs reject mixed use.
 */

#include <gtest/gtest.h>

#include <vector>

#include "service/encode_service.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

DisplayGeometry
geometry(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

/** A small clip plus a 1 Hz scanpath with one saccade-speed jump. */
struct Workload
{
    std::vector<ImageF> frames;
    std::vector<GazeSample> gaze;
};

Workload
workload(SceneId scene, int n, int frame_count)
{
    Workload w;
    double t = 0.0;
    for (int i = 0; i < frame_count; ++i) {
        w.frames.push_back(
            renderScene(scene, {n, n, 0, 0.2 * i, 0}));
        // 1 s spacing keeps pixel-scale motion in fixation range on
        // the tiny test display; frame 3 jumps fast (a saccade).
        t += (i == 3) ? 0.004 : 1.0;
        const double x = n / 2.0 + (i % 4) + (i == 3 ? n / 3.0 : 0.0);
        const double y = n / 2.0 + ((i * 2) % 5);
        w.gaze.push_back({t, x, y});
    }
    return w;
}

TEST(GazeService, ByteIdenticalToDirectGazeEncode)
{
    const int n = 64;
    const DisplayGeometry geom = geometry(n, n);
    const Workload w = workload(SceneId::Office, n, 8);

    // Direct reference: one gaze state, one encoder, same samples.
    PipelineParams pp;
    const PerceptualEncoder enc(model(), pp);
    GazeTrackedEccentricity ref_gaze(geom);
    std::vector<std::vector<uint8_t>> reference;
    std::vector<bool> ref_saccade;
    EncodedFrame scratch;
    for (std::size_t i = 0; i < w.frames.size(); ++i) {
        const GazePhase phase = enc.encodeFrameGazeInto(
            w.frames[i], ref_gaze, w.gaze[i], scratch);
        reference.push_back(scratch.bdStream);
        ref_saccade.push_back(phase == GazePhase::Saccade);
    }
    ASSERT_TRUE(ref_saccade[3]);  // the workload's jump frame

    ServiceParams sp;
    sp.verifyRoundTrip = true;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openGazeStream("tracked", geom);
    for (std::size_t i = 0; i < w.frames.size(); ++i) {
        svc.submit(stream, w.frames[i], w.gaze[i]);
        const FrameLease lease = svc.collect(stream);
        EXPECT_EQ(lease->bdStream, reference[i]) << "frame " << i;
        EXPECT_EQ(lease->stats.saccadeBypassTiles > 0,
                  ref_saccade[i]) << "frame " << i;
    }

    const ServiceReport rep = svc.report();
    ASSERT_EQ(rep.streams.size(), 1u);
    const StreamStats &st = rep.streams[0];
    EXPECT_EQ(st.framesEncoded, w.frames.size());
    EXPECT_EQ(st.saccadeFrames, 1u);
    EXPECT_EQ(st.deferredGazeUpdates, 1u);
    EXPECT_EQ(st.refixations, w.frames.size() - 1);
    EXPECT_EQ(st.framesVerified, w.frames.size());
    EXPECT_EQ(st.corruptFrames, 0u);
    EXPECT_EQ(rep.corruptFrames, 0u);
}

TEST(GazeService, StreamsRefixateIndependently)
{
    const int n = 48;
    const DisplayGeometry geom = geometry(n, n);
    const Workload wa = workload(SceneId::Thai, n, 6);
    const Workload wb = workload(SceneId::Dumbo, n, 6);

    // Interleave two gaze streams with *different* scanpaths; each
    // must match its own single-stream run.
    const auto solo = [&](const Workload &w,
                          std::vector<GazeSample> gaze) {
        ServiceParams sp;
        EncodeService svc(model(), sp);
        StreamHandle s = svc.openGazeStream("solo", geom);
        std::vector<std::vector<uint8_t>> out;
        for (std::size_t i = 0; i < w.frames.size(); ++i) {
            svc.submit(s, w.frames[i], gaze[i]);
            out.push_back(svc.collect(s)->bdStream);
        }
        return out;
    };
    std::vector<GazeSample> gaze_b = wb.gaze;
    for (GazeSample &s : gaze_b) {  // shift stream B's scanpath
        s.x -= 6.0;
        s.y += 4.0;
    }
    const auto ref_a = solo(wa, wa.gaze);
    const auto ref_b = solo(wb, gaze_b);

    ServiceParams sp;
    EncodeService svc(model(), sp);
    StreamHandle a = svc.openGazeStream("a", geom);
    StreamHandle b = svc.openGazeStream("b", geom);
    for (std::size_t i = 0; i < wa.frames.size(); ++i) {
        svc.submit(a, wa.frames[i], wa.gaze[i]);
        svc.submit(b, wb.frames[i], gaze_b[i]);
        EXPECT_EQ(svc.collect(a)->bdStream, ref_a[i]) << i;
        EXPECT_EQ(svc.collect(b)->bdStream, ref_b[i]) << i;
    }
}

TEST(GazeService, MixedSubmitApisAreRejected)
{
    const int n = 48;
    const DisplayGeometry geom = geometry(n, n);
    const EccentricityMap static_map(geom);
    const ImageF frame(n, n);

    ServiceParams sp;
    EncodeService svc(model(), sp);
    StreamHandle tracked = svc.openGazeStream("tracked", geom);
    StreamHandle fixed = svc.openStream("fixed", static_map);

    EXPECT_THROW(svc.submit(tracked, frame), std::invalid_argument);
    EXPECT_THROW(svc.submit(fixed, frame, {0.0, 1.0, 1.0}),
                 std::invalid_argument);
    // The valid pairings still work.
    svc.submit(tracked, frame, {0.0, n / 2.0, n / 2.0});
    svc.submit(fixed, frame);
    svc.drainAll();

    // Gaze params that cannot honor the foveal cutoff fail at open.
    GazeStreamParams bad;
    bad.ecc.exactBandDeg = 6.0;
    EXPECT_THROW(svc.openGazeStream("bad", geom, bad),
                 std::invalid_argument);
}

TEST(GazeService, VerifyRoundTripCountsOnStaticStreams)
{
    const int n = 48;
    const DisplayGeometry geom = geometry(n, n);
    const EccentricityMap ecc(geom);
    ServiceParams sp;
    sp.verifyRoundTrip = true;
    EncodeService svc(model(), sp);
    StreamHandle s = svc.openStream("checked", ecc);
    const ImageF frame =
        renderScene(SceneId::Monkey, {n, n, 0, 0, 0});
    for (int i = 0; i < 3; ++i) {
        svc.submit(s, frame);
        svc.collect(s).release();
    }
    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.streams[0].framesVerified, 3u);
    EXPECT_EQ(rep.streams[0].corruptFrames, 0u);
    EXPECT_EQ(rep.corruptFrames, 0u);

    // Off by default: no verification cost, no counts.
    ServiceParams off;
    EncodeService svc2(model(), off);
    StreamHandle s2 = svc2.openStream("unchecked", ecc);
    svc2.submit(s2, frame);
    svc2.collect(s2).release();
    EXPECT_EQ(svc2.report().streams[0].framesVerified, 0u);
}

TEST(GazeService, QueueDepthMetricsSurfaceInReport)
{
    const int n = 32;
    const DisplayGeometry geom = geometry(n, n);
    const EccentricityMap ecc(geom);
    ServiceParams sp;
    sp.streamDepth = 4;
    EncodeService svc(model(), sp);
    StreamHandle s = svc.openStream("depth", ecc);
    const ImageF frame(n, n, Vec3(0.5, 0.5, 0.5));
    for (int i = 0; i < 4; ++i)
        svc.submit(s, frame);
    svc.drain(s);
    const ServiceReport rep = svc.report();
    EXPECT_EQ(rep.queueCapacity, sp.queueCapacity);
    EXPECT_GE(rep.queuePeakDepth, 1u);
    EXPECT_LE(rep.queuePeakDepth, rep.queueCapacity);
    EXPECT_EQ(rep.queuedRequests, 0u);
}

} // namespace
} // namespace pce
