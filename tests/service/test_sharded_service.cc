/**
 * @file
 * Sharded dispatch: the correctness bar of the shard/steal refactor.
 * Byte-identity vs single-shot encode across shards x threads x
 * streams, per-stream FIFO under stealing, starvation-free stealing
 * when a dispatcher parks, shutdown waking backpressured producers on
 * every shard, gaze streams across shard counts, and the per-shard
 * report counters.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/encode_service.hh"

namespace pce {
namespace {

using namespace std::chrono_literals;

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

/** Single-shot reference: the exact frames a stream should produce. */
std::vector<std::vector<uint8_t>>
referenceStreams(const std::vector<ImageF> &frames,
                 const EccentricityMap &ecc)
{
    PipelineParams p;
    p.threads = 1;
    const PerceptualEncoder enc(model(), p);
    std::vector<std::vector<uint8_t>> out;
    EncodedFrame scratch;
    for (const ImageF &f : frames) {
        enc.encodeFrameInto(f, ecc, scratch);
        out.push_back(scratch.bdStream);
    }
    return out;
}

/** @p count stream names whose home shard is @p shard. */
std::vector<std::string>
namesHomedTo(std::size_t shard, std::size_t shards, std::size_t count)
{
    std::vector<std::string> out;
    for (int i = 0; out.size() < count && i < 100000; ++i) {
        std::string name = "stream-" + std::to_string(i);
        if (EncodeService::shardForName(name, shards) == shard)
            out.push_back(std::move(name));
    }
    EXPECT_EQ(out.size(), count) << "hash never hit shard " << shard;
    return out;
}

/** A gate a dispatcher blocks on inside preEncodeFaultHook. */
struct EncodeGate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    bool entered = false;

    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        entered = true;
        cv.notify_all();
        cv.wait(lock, [&] { return open; });
    }

    void awaitEntered()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return entered; });
    }

    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            open = true;
        }
        cv.notify_all();
    }
};

TEST(ShardedService, ByteIdenticalAcrossShardThreadStreamCombos)
{
    // The tentpole invariant: sharding and stealing add scheduling,
    // never change bytes. Three concurrent producer streams, swept
    // over shard and thread counts, all compared against single-shot
    // references.
    const int n = 48;
    const EccentricityMap ecc = centeredMap(n, n);
    const SceneId scenes[3] = {SceneId::Office, SceneId::Fortnite,
                               SceneId::Monkey};
    constexpr int kFrames = 4;

    std::vector<std::vector<ImageF>> frames(3);
    std::vector<std::vector<std::vector<uint8_t>>> reference(3);
    for (int s = 0; s < 3; ++s) {
        for (int i = 0; i < kFrames; ++i)
            frames[s].push_back(renderScene(
                scenes[s], {n, n, 0, 0.1 * i + 0.05 * s, 0}));
        reference[s] = referenceStreams(frames[s], ecc);
    }

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}}) {
        for (const int threads : {1, 4}) {
            ServiceParams sp;
            sp.shards = shards;
            sp.threads = threads;
            sp.queueCapacity = 8;
            sp.streamDepth = 2;
            EncodeService svc(model(), sp);

            std::vector<StreamHandle> handles;
            for (int s = 0; s < 3; ++s)
                handles.push_back(
                    svc.openStream(sceneName(scenes[s]), ecc));

            std::atomic<int> mismatches{0};
            std::vector<std::thread> producers;
            for (int s = 0; s < 3; ++s) {
                producers.emplace_back([&, s] {
                    int collected = 0;
                    for (int i = 0; i < kFrames; ++i) {
                        svc.submit(handles[s], frames[s][i]);
                        if (i - collected >= 1) {
                            const FrameLease lease =
                                svc.collect(handles[s]);
                            if (lease->bdStream !=
                                reference[s][collected])
                                mismatches.fetch_add(1);
                            ++collected;
                        }
                    }
                    while (collected < kFrames) {
                        const FrameLease lease =
                            svc.collect(handles[s]);
                        if (lease->bdStream !=
                            reference[s][collected])
                            mismatches.fetch_add(1);
                        ++collected;
                    }
                });
            }
            for (auto &t : producers)
                t.join();
            EXPECT_EQ(mismatches.load(), 0)
                << shards << " shards, " << threads << " threads";

            const ServiceReport rep = svc.report();
            ASSERT_EQ(rep.shards.size(), shards);
            std::uint64_t byShard = 0;
            for (const ShardStats &sh : rep.shards)
                byShard += sh.framesEncoded;
            EXPECT_EQ(byShard, 3u * kFrames)
                << "every frame is encoded by exactly one shard";
        }
    }
}

TEST(ShardedService, PerStreamFifoHoldsWhenFramesCrossShards)
{
    // One stream homed to shard 0 under four dispatchers: its frames
    // may be encoded by any mix of home and thief shards, but the
    // lane protocol must keep hand-out (and therefore collect) in
    // submission order. Distinct frames make any reorder a byte
    // mismatch at a known index.
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    constexpr int kFrames = 10;
    std::vector<ImageF> frames;
    for (int i = 0; i < kFrames; ++i)
        frames.push_back(
            renderScene(SceneId::Office, {n, n, i % 2, 0.2 * i, 0}));
    const auto reference = referenceStreams(frames, ecc);

    ServiceParams sp;
    sp.shards = 4;
    sp.threads = 1;
    sp.streamDepth = 4;
    EncodeService svc(model(), sp);
    const std::string name = namesHomedTo(0, sp.shards, 1)[0];
    StreamHandle stream = svc.openStream(name, ecc);

    int collected = 0;
    for (int i = 0; i < kFrames; ++i) {
        svc.submit(stream, frames[i]);
        if (i - collected >= 3) {
            const FrameLease lease = svc.collect(stream);
            EXPECT_EQ(lease->bdStream, reference[collected])
                << "frame " << collected << " out of order";
            ++collected;
        }
    }
    while (collected < kFrames) {
        const FrameLease lease = svc.collect(stream);
        EXPECT_EQ(lease->bdStream, reference[collected])
            << "frame " << collected << " out of order";
        ++collected;
    }

    const ServiceReport rep = svc.report();
    ASSERT_EQ(rep.streams.size(), 1u);
    EXPECT_EQ(rep.streams[0].shard,
              EncodeService::shardForName(name, sp.shards));
    EXPECT_EQ(rep.streams[0].framesEncoded, kFrames);
}

TEST(ShardedService, StealingKeepsCohomedStreamsStarvationFree)
{
    // Four streams all homed to shard 0, four dispatchers. The first
    // frame to reach a dispatcher parks it in the gate; the other
    // three streams are queued behind it on the same ring and can
    // only proceed if other shards steal them. collectFor with a
    // generous deadline fails loudly (instead of hanging the suite)
    // if stealing starves them.
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});

    EncodeGate gate;
    std::string gated;  // written once before gate.entered flips
    ServiceParams sp;
    sp.shards = 4;
    sp.threads = 1;
    sp.queueCapacity = 16;
    // The hook parks exactly the first dispatcher that picks up
    // work; later frames pass through.
    std::atomic<bool> firstTaken{false};
    sp.preEncodeFaultHook = [&](const std::string &name,
                                std::uint64_t, ImageF &) {
        if (!firstTaken.exchange(true)) {
            gated = name;
            gate.wait();
        }
    };
    EncodeService svc(model(), sp);

    const std::vector<std::string> names = namesHomedTo(0, sp.shards, 4);
    std::vector<StreamHandle> handles;
    for (const std::string &name : names)
        handles.push_back(svc.openStream(name, ecc));

    // First submission parks whichever dispatcher grabs it.
    svc.submit(handles[0], frame);
    gate.awaitEntered();
    for (int s = 1; s < 4; ++s)
        svc.submit(handles[s], frame);

    // The three later streams must complete while the holder of the
    // first frame is parked — only possible via hand-off to other
    // shards (the home dispatcher is parked, or was bypassed by a
    // thief, in which case the home dispatcher drains).
    for (int s = 1; s < 4; ++s) {
        FrameLease lease = svc.collectFor(handles[s], 30000ms);
        ASSERT_TRUE(lease.valid())
            << "stream " << names[s] << " starved behind the parked "
            << "dispatcher (stealing failed)";
        EXPECT_FALSE(lease->bdStream.empty());
    }

    ServiceReport rep = svc.report();
    EXPECT_GE(rep.stolenFrames, 1u)
        << "a parked home dispatcher implies at least one steal";
    EXPECT_EQ(gated, names[0]);

    gate.release();
    FrameLease lease = svc.collectFor(handles[0], 30000ms);
    ASSERT_TRUE(lease.valid());
    EXPECT_FALSE(lease->bdStream.empty());

    // Counter cross-checks after quiescence.
    svc.drainAll();
    rep = svc.report();
    std::uint64_t stealsBy = 0;
    std::uint64_t stolenFrom = 0;
    std::uint64_t queued = 0;
    for (const ShardStats &sh : rep.shards) {
        stealsBy += sh.framesStolen;
        stolenFrom += sh.framesStolenFrom;
        queued += sh.framesQueued;
    }
    EXPECT_EQ(stealsBy, stolenFrom);
    EXPECT_EQ(stealsBy, rep.stolenFrames);
    EXPECT_EQ(queued, 4u) << "all four requests homed to shard 0";
    EXPECT_EQ(rep.shards[0].framesQueued, 4u);
    std::uint64_t streamStolen = 0;
    for (const StreamStats &st : rep.streams) {
        EXPECT_EQ(st.shard, 0u);
        streamStolen += st.framesStolen;
    }
    EXPECT_EQ(streamStolen, rep.stolenFrames);
}

TEST(ShardedService, ShutdownWakesBackpressuredProducersOnEveryShard)
{
    // One stream per shard, each with streamDepth 1 and its slot
    // leased out, each with a producer blocked in per-stream
    // backpressure. shutdown() must wake all of them with an error —
    // no shard's waiters may be missed.
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});

    ServiceParams sp;
    sp.shards = 4;
    sp.streamDepth = 1;
    EncodeService svc(model(), sp);

    std::vector<StreamHandle> handles;
    for (std::size_t s = 0; s < sp.shards; ++s) {
        const std::string name = namesHomedTo(s, sp.shards, 1)[0];
        EXPECT_EQ(EncodeService::shardForName(name, sp.shards), s);
        handles.push_back(svc.openStream(name, ecc));
        svc.submit(handles.back(), frame);
    }

    std::atomic<int> woken{0};
    std::vector<std::thread> producers;
    for (std::size_t s = 0; s < sp.shards; ++s) {
        producers.emplace_back([&, s] {
            try {
                // Slot still leased out (nothing collected): blocks
                // in this stream's per-slot backpressure until
                // shutdown wakes it.
                svc.submit(handles[s], frame);
                svc.submit(handles[s], frame);
            } catch (const std::runtime_error &) {
                woken.fetch_add(1);
            }
        });
    }
    std::this_thread::sleep_for(50ms);
    svc.shutdown();
    for (auto &t : producers)
        t.join();
    EXPECT_EQ(woken.load(), 4);
}

TEST(ShardedService, GazeStreamsByteIdenticalAcrossShardCounts)
{
    // A gaze stream owns mutable per-stream eccentricity state; the
    // lane protocol hands it between dispatchers. Identical gaze
    // traces through 1-shard and 3-shard services must produce
    // identical bytes (the 1-shard service is the config the gaze
    // suite already proves against direct encodes).
    const int n = 48;
    DisplayGeometry geom;
    geom.width = n;
    geom.height = n;
    geom.horizontalFovDeg = 100.0;
    geom.fixationX = n / 2.0;
    geom.fixationY = n / 2.0;

    constexpr int kFrames = 6;
    std::vector<ImageF> frames;
    std::vector<GazeSample> samples;
    for (int i = 0; i < kFrames; ++i) {
        frames.push_back(
            renderScene(SceneId::Office, {n, n, 0, 0.15 * i, 0}));
        GazeSample gs;
        gs.timeSeconds = 0.011 * i;
        gs.x = n / 2.0 + 1.5 * i;
        gs.y = n / 2.0 - 0.7 * i;
        samples.push_back(gs);
    }

    auto runService = [&](std::size_t shards) {
        ServiceParams sp;
        sp.shards = shards;
        EncodeService svc(model(), sp);
        StreamHandle stream = svc.openGazeStream("gaze", geom);
        std::vector<std::vector<uint8_t>> out;
        for (int i = 0; i < kFrames; ++i) {
            svc.submit(stream, frames[i], samples[i]);
            const FrameLease lease = svc.collect(stream);
            out.push_back(lease->bdStream);
        }
        return out;
    };

    const auto one = runService(1);
    const auto three = runService(3);
    ASSERT_EQ(one.size(), three.size());
    for (int i = 0; i < kFrames; ++i)
        EXPECT_EQ(one[i], three[i]) << "gaze frame " << i;
}

TEST(ShardedService, ReportExposesShardCountersAndCapacities)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});

    ServiceParams sp;
    sp.shards = 2;
    sp.threads = 4;  // split 2+2: each shard gets a 1-worker pool
    sp.queueCapacity = 64;
    EncodeService svc(model(), sp);

    std::vector<StreamHandle> handles;
    handles.push_back(
        svc.openStream(namesHomedTo(0, sp.shards, 1)[0], ecc));
    handles.push_back(
        svc.openStream(namesHomedTo(1, sp.shards, 1)[0], ecc));
    for (int i = 0; i < 3; ++i)
        for (StreamHandle &h : handles) {
            svc.submit(h, frame);
            svc.collect(h).release();
        }
    svc.drainAll();

    const ServiceReport rep = svc.report();
    ASSERT_EQ(rep.shards.size(), 2u);
    EXPECT_EQ(rep.queueCapacity, sp.queueCapacity)
        << "shards divide queueCapacity evenly here";
    EXPECT_GE(rep.queuePeakDepth, 1u);
    EXPECT_LE(rep.queuePeakDepth, rep.queueCapacity);
    std::uint64_t encoded = 0;
    for (const ShardStats &sh : rep.shards) {
        EXPECT_EQ(sh.queueCapacity, sp.queueCapacity / sp.shards);
        EXPECT_GE(sh.queuePeakDepth, 1u) << "both shards saw work";
        EXPECT_LE(sh.queuePeakDepth, sh.queueCapacity);
        EXPECT_EQ(sh.queueDepth, 0u) << "drained";
        EXPECT_EQ(sh.participants, 2);
        EXPECT_GT(sh.poolDispatches, 0u);
        EXPECT_GT(sh.poolMeanParticipants, 1.0);
        EXPECT_LE(sh.poolMeanParticipants, 2.0);
        EXPECT_GT(sh.busySeconds, 0.0);
        EXPECT_GE(sh.occupancy, 0.0);
        EXPECT_EQ(sh.streamsHomed, 1u);
        encoded += sh.framesEncoded;
    }
    EXPECT_EQ(encoded, rep.framesEncoded);
    EXPECT_EQ(rep.framesEncoded, 6u);
}

TEST(ShardedService, InvalidShardParamsThrow)
{
    ServiceParams bad;
    bad.shards = 0;
    EXPECT_THROW(EncodeService svc(model(), bad),
                 std::invalid_argument);
}

TEST(ShardedService, ShutdownFinishesQueuedWorkOnAllShards)
{
    // Queued-but-unencoded requests on every shard at shutdown time
    // must all be finished, not dropped (the drain half of the
    // close protocol, sharded edition).
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});

    ServiceParams sp;
    sp.shards = 3;
    sp.streamDepth = 4;
    EncodeService svc(model(), sp);
    std::vector<StreamHandle> handles;
    for (std::size_t s = 0; s < sp.shards; ++s) {
        handles.push_back(
            svc.openStream(namesHomedTo(s, sp.shards, 1)[0], ecc));
        for (int i = 0; i < 4; ++i)
            svc.submit(handles.back(), frame);
    }
    svc.shutdown();
    for (StreamHandle &h : handles)
        for (int i = 0; i < 4; ++i) {
            const FrameLease lease = svc.collect(h);
            EXPECT_FALSE(lease->bdStream.empty());
        }
}

} // namespace
} // namespace pce
