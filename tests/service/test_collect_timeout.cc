/**
 * @file
 * Deadline-bounded collection (the delivery tier's service entry
 * point): collectFor must return an invalid lease when the deadline
 * expires first and hand the same frame out later (delayed, never
 * lost); tryCollect must poll without ever throwing; and
 * DeliverySession must degrade a frame whose encode misses the
 * deadline instead of wedging.
 *
 * The dispatcher is stalled deterministically through the service's
 * preEncodeFaultHook (a condition variable, not a sleep), so the
 * timeout-expired and result-arrives-late paths are exercised without
 * wall-clock races.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "net/delivery.hh"
#include "service/encode_service.hh"

namespace pce {
namespace {

using namespace std::chrono_literals;

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

/** A gate the dispatcher blocks on inside preEncodeFaultHook. */
struct EncodeGate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;

    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return open; });
    }

    void release()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            open = true;
        }
        cv.notify_all();
    }
};

TEST(CollectTimeout, ExpiredDeadlineLeavesFrameOutstanding)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    EncodeGate gate;
    ServiceParams sp;
    sp.preEncodeFaultHook = [&gate](const std::string &, std::uint64_t,
                                    ImageF &) { gate.wait(); };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("s", ecc);
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});
    svc.submit(stream, frame);

    // The dispatcher is parked in the hook: the deadline must expire
    // and the frame must stay owed.
    FrameLease lease = svc.collectFor(stream, 30ms);
    EXPECT_FALSE(lease.valid());
    lease = svc.tryCollect(stream);
    EXPECT_FALSE(lease.valid()) << "tryCollect invented a result";

    // Result arrives late: the same frame is handed out by the next
    // collect — delayed, never lost.
    gate.release();
    lease = svc.collect(stream);
    ASSERT_TRUE(lease.valid());
    EXPECT_FALSE(lease->bdStream.empty());

    // Nothing outstanding anymore: collectFor keeps collect()'s
    // contract and throws rather than blocking forever...
    EXPECT_THROW(svc.collectFor(stream, 1ms), std::logic_error);
    // ...while tryCollect is the poll-friendly variant and just
    // reports nothing ready.
    EXPECT_FALSE(svc.tryCollect(stream).valid());
}

TEST(CollectTimeout, ReadyResultIsReturnedImmediately)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    EncodeService svc(model(), {});
    StreamHandle stream = svc.openStream("s", ecc);
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});

    svc.submit(stream, frame);
    svc.drain(stream);
    // Encoded and waiting: a zero timeout must still succeed.
    FrameLease lease = svc.collectFor(stream, 0ms);
    ASSERT_TRUE(lease.valid());
    lease.release();

    svc.submit(stream, frame);
    svc.drain(stream);
    lease = svc.tryCollect(stream);
    ASSERT_TRUE(lease.valid());
}

TEST(CollectTimeout, ZeroTimeoutIsAPureNonBlockingProbe)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    EncodeGate gate;
    ServiceParams sp;
    sp.preEncodeFaultHook = [&gate](const std::string &, std::uint64_t,
                                    ImageF &) { gate.wait(); };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("s", ecc);
    svc.submit(stream,
               renderScene(SceneId::Office, {n, n, 0, 0, 0}));

    // Outstanding but not ready: timeout=0 must return an invalid
    // lease immediately — degenerate deadline, not a block and not a
    // throw (something *is* outstanding).
    const auto before = std::chrono::steady_clock::now();
    FrameLease lease = svc.collectFor(stream, 0ms);
    const auto waited =
        std::chrono::steady_clock::now() - before;
    EXPECT_FALSE(lease.valid());
    EXPECT_LT(waited, 5s) << "timeout=0 blocked on the encoder";

    // The probe must not have consumed or duplicated the frame.
    gate.release();
    lease = svc.collectFor(stream, 5000ms);
    ASSERT_TRUE(lease.valid());
    lease.release();
    EXPECT_FALSE(svc.tryCollect(stream).valid());
}

TEST(CollectTimeout, DeadlineBoundaryNeverLosesOrDuplicatesTheFrame)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    EncodeGate gate;
    ServiceParams sp;
    sp.preEncodeFaultHook = [&gate](const std::string &, std::uint64_t,
                                    ImageF &) { gate.wait(); };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("s", ecc);
    svc.submit(stream,
               renderScene(SceneId::Office, {n, n, 0, 0, 0}));

    // Release the gate while a short-deadline collectFor loop is in
    // flight: the result lands somewhere right around a deadline
    // boundary. Whichever side of the boundary each call falls on,
    // the frame must surface exactly once across the loop.
    std::thread releaser([&] {
        std::this_thread::sleep_for(20ms);
        gate.release();
    });
    int collected = 0;
    for (int attempt = 0; attempt < 1000 && collected == 0;
         ++attempt) {
        FrameLease lease = svc.collectFor(stream, 10ms);
        if (lease.valid()) {
            ++collected;
            EXPECT_FALSE(lease->bdStream.empty());
        }
    }
    releaser.join();
    EXPECT_EQ(collected, 1) << "frame lost across deadline retries";
    // And never duplicated: the stream is drained now.
    EXPECT_FALSE(svc.tryCollect(stream).valid());
    EXPECT_THROW(svc.collectFor(stream, 0ms), std::logic_error);
}

TEST(CollectTimeout, TryCollectPollingPreservesSubmissionFifo)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    const SceneId scenes[] = {SceneId::Office, SceneId::Skyline,
                              SceneId::Monkey};

    // Reference streams: each scene encoded alone, in order, so the
    // polled results below can be matched byte-for-byte.
    std::vector<std::vector<std::uint8_t>> expected;
    {
        EncodeService ref(model(), {});
        StreamHandle stream = ref.openStream("ref", ecc);
        for (const SceneId id : scenes) {
            ref.submit(stream, renderScene(id, {n, n, 0, 0, 0}));
            FrameLease lease = ref.collect(stream);
            expected.push_back(lease->bdStream);
        }
    }
    ASSERT_NE(expected[0], expected[1]);
    ASSERT_NE(expected[1], expected[2]);

    ServiceParams sp;
    sp.streamDepth = 4;
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("s", ecc);
    for (const SceneId id : scenes)
        svc.submit(stream, renderScene(id, {n, n, 0, 0, 0}));

    // Pure polling, no blocking collect: results must come back in
    // submission order however many empty polls interleave.
    std::vector<std::vector<std::uint8_t>> polled;
    while (polled.size() < 3) {
        FrameLease lease = svc.tryCollect(stream);
        if (!lease.valid()) {
            std::this_thread::yield();
            continue;
        }
        polled.push_back(lease->bdStream);
    }
    EXPECT_EQ(polled, expected)
        << "tryCollect polling reordered the per-stream FIFO";
    EXPECT_FALSE(svc.tryCollect(stream).valid());
}

TEST(CollectTimeout, DeliverySessionDegradesOnEncodeDeadline)
{
    const int n = 32;
    const EccentricityMap ecc = centeredMap(n, n);
    EncodeGate gate;
    ServiceParams sp;
    sp.streamDepth = 2;
    sp.preEncodeFaultHook = [&gate](const std::string &, std::uint64_t,
                                    ImageF &) { gate.wait(); };
    EncodeService svc(model(), sp);
    StreamHandle stream = svc.openStream("s", ecc);

    net::SenderPolicy policy;
    policy.sessionId = 0xfeed;
    policy.streamId = 2;
    net::LossyChannel channel;  // clean
    net::DeliverySession session(svc, stream, channel, policy, &ecc);

    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});
    session.submit(frame);

    // Encode stalled: frame 0 must degrade (whole-frame hold with no
    // previous frame = untouched output), not wedge the loop.
    ImageU8 out;
    net::DeliveryReport rep = session.deliverNext(out, 30ms);
    EXPECT_TRUE(rep.encodeTimedOut);
    EXPECT_FALSE(rep.frame.manifestReceived);
    EXPECT_EQ(session.framesDelivered(), 1u);

    // The late result delivers under the next frame id, intact.
    gate.release();
    rep = session.deliverNext(out, 5000ms);
    EXPECT_FALSE(rep.encodeTimedOut);
    EXPECT_TRUE(rep.frame.byteIdentical);
    EXPECT_TRUE(rep.fovealIntact);
    EXPECT_EQ(session.framesDelivered(), 2u);
    EXPECT_EQ(out.width(), n);
}

} // namespace
} // namespace pce
