/**
 * @file
 * Tests for image containers, tiling, PSNR and PPM I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.hh"
#include "image/image.hh"
#include "image/ppm.hh"

namespace pce {
namespace {

ImageU8
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return img;
}

TEST(ImageF, ConstructionAndFill)
{
    const ImageF img(4, 3, Vec3(0.5, 0.25, 0.125));
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.pixelCount(), 12u);
    EXPECT_EQ(img.at(3, 2), Vec3(0.5, 0.25, 0.125));
}

TEST(ImageF, MeanLuminanceAndColor)
{
    ImageF img(2, 1);
    img.at(0, 0) = Vec3(1.0, 1.0, 1.0);
    img.at(1, 0) = Vec3(0.0, 0.0, 0.0);
    EXPECT_NEAR(img.meanLuminance(), 0.5, 1e-12);
    EXPECT_EQ(img.meanColor(), Vec3(0.5, 0.5, 0.5));
}

TEST(ImageU8, PixelAccess)
{
    ImageU8 img(3, 2);
    img.setChannel(2, 1, 0, 10);
    img.setChannel(2, 1, 1, 20);
    img.setChannel(2, 1, 2, 30);
    EXPECT_EQ(img.channel(2, 1, 0), 10);
    EXPECT_EQ(img.channel(2, 1, 1), 20);
    EXPECT_EQ(img.channel(2, 1, 2), 30);
    EXPECT_EQ(img.byteSize(), 18u);
}

TEST(Conversion, SrgbLinearRoundTripStable)
{
    // toSrgb8(toLinear(img)) == img for any 8-bit image.
    const ImageU8 img = randomImage(16, 16, 1);
    const ImageU8 back = toSrgb8(toLinear(img));
    EXPECT_EQ(back, img);
}

class TileGridTest : public ::testing::TestWithParam<int>
{};

TEST_P(TileGridTest, CoversEveryPixelExactlyOnce)
{
    const int tile = GetParam();
    const int w = 37;  // deliberately not a multiple of any tile size
    const int h = 23;
    std::vector<int> cover(static_cast<std::size_t>(w) * h, 0);
    for (const TileRect &r : tileGrid(w, h, tile)) {
        EXPECT_GT(r.w, 0);
        EXPECT_GT(r.h, 0);
        EXPECT_LE(r.w, tile);
        EXPECT_LE(r.h, tile);
        for (int y = r.y0; y < r.y0 + r.h; ++y)
            for (int x = r.x0; x < r.x0 + r.w; ++x)
                ++cover[static_cast<std::size_t>(y) * w + x];
    }
    for (int c : cover)
        EXPECT_EQ(c, 1);
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileGridTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 10, 12, 16,
                                           32));

TEST(TileGrid, ExactFitProducesFullTiles)
{
    const auto tiles = tileGrid(16, 8, 4);
    EXPECT_EQ(tiles.size(), 8u);
    for (const auto &t : tiles) {
        EXPECT_EQ(t.w, 4);
        EXPECT_EQ(t.h, 4);
        EXPECT_EQ(t.pixelCount(), 16);
    }
}

TEST(TileGrid, RejectsBadTileSize)
{
    EXPECT_THROW(tileGrid(8, 8, 0), std::invalid_argument);
    EXPECT_THROW(tileGrid(8, 8, -4), std::invalid_argument);
}

TEST(Psnr, IdenticalImagesIsInfinite)
{
    const ImageU8 img = randomImage(8, 8, 2);
    EXPECT_TRUE(std::isinf(psnr(img, img)));
    EXPECT_DOUBLE_EQ(meanSquaredError(img, img), 0.0);
}

TEST(Psnr, KnownValueForUniformError)
{
    ImageU8 a(4, 4);
    ImageU8 b(4, 4);
    for (auto &v : b.data())
        v = 10;  // uniform error of 10 codes
    EXPECT_DOUBLE_EQ(meanSquaredError(a, b), 100.0);
    EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0),
                1e-12);
}

TEST(Psnr, SizeMismatchThrows)
{
    const ImageU8 a(4, 4);
    const ImageU8 b(5, 4);
    EXPECT_THROW(psnr(a, b), std::invalid_argument);
}

TEST(Ppm, RoundTripsThroughDisk)
{
    namespace fs = std::filesystem;
    const ImageU8 img = randomImage(21, 13, 3);
    const std::string path =
        (fs::temp_directory_path() / "pce_test_roundtrip.ppm").string();
    writePpm(path, img);
    const ImageU8 back = readPpm(path);
    EXPECT_EQ(back, img);
    fs::remove(path);
}

TEST(Ppm, ReadRejectsMissingFile)
{
    EXPECT_THROW(readPpm("/nonexistent/definitely_missing.ppm"),
                 std::runtime_error);
}

} // namespace
} // namespace pce
