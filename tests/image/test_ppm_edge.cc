/**
 * @file
 * Edge cases of the PPM reader/writer: comments, whitespace, and
 * malformed headers.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "image/ppm.hh"

namespace pce {
namespace {

namespace fs = std::filesystem;

std::string
tempPath(const char *name)
{
    return (fs::temp_directory_path() / name).string();
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream f(path, std::ios::binary);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PpmEdge, HeaderCommentsAreSkipped)
{
    const std::string path = tempPath("pce_comment.ppm");
    std::string content = "P6\n# a comment line\n2 # inline\n1\n255\n";
    content += std::string("\x01\x02\x03\x04\x05\x06", 6);
    writeBytes(path, content);
    const ImageU8 img = readPpm(path);
    EXPECT_EQ(img.width(), 2);
    EXPECT_EQ(img.height(), 1);
    EXPECT_EQ(img.channel(0, 0, 0), 1);
    EXPECT_EQ(img.channel(1, 0, 2), 6);
    fs::remove(path);
}

TEST(PpmEdge, RejectsWrongMagic)
{
    const std::string path = tempPath("pce_magic.ppm");
    writeBytes(path, "P5\n2 1\n255\nxxxxxx");
    EXPECT_THROW(readPpm(path), std::runtime_error);
    fs::remove(path);
}

TEST(PpmEdge, RejectsUnsupportedMaxval)
{
    const std::string path = tempPath("pce_maxval.ppm");
    writeBytes(path, "P6\n1 1\n65535\n\x00\x00\x00\x00\x00\x00");
    EXPECT_THROW(readPpm(path), std::runtime_error);
    fs::remove(path);
}

TEST(PpmEdge, RejectsTruncatedPixels)
{
    const std::string path = tempPath("pce_trunc.ppm");
    writeBytes(path, "P6\n4 4\n255\nshort");
    EXPECT_THROW(readPpm(path), std::runtime_error);
    fs::remove(path);
}

TEST(PpmEdge, WriteRejectsBadPath)
{
    const ImageU8 img(2, 2);
    EXPECT_THROW(writePpm("/nonexistent-dir/file.ppm", img),
                 std::runtime_error);
}

TEST(PpmEdge, SinglePixelRoundTrip)
{
    const std::string path = tempPath("pce_single.ppm");
    ImageU8 img(1, 1);
    img.setChannel(0, 0, 0, 200);
    img.setChannel(0, 0, 1, 100);
    img.setChannel(0, 0, 2, 50);
    writePpm(path, img);
    EXPECT_EQ(readPpm(path), img);
    fs::remove(path);
}

} // namespace
} // namespace pce
