/**
 * @file
 * Cross-module integration tests: the full Fig. 7 pipeline against all
 * baselines, the perceptual-quality chain, and the hardware roll-up.
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "hw/cau_model.hh"
#include "hw/dram_model.hh"
#include "image/image.hh"
#include "metrics/report.hh"
#include "perception/observer.hh"
#include "png/png_codec.hh"
#include "render/scenes.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

TEST(Integration, CodecOrderingHoldsOnEveryScene)
{
    // Fig. 10 shape: ours < BD < raw, SCC < raw; PNG lossless
    // round-trips. (PNG vs BD ordering is scene-dependent in the paper
    // and is not asserted.)
    const int n = 96;
    const EccentricityMap ecc = centeredMap(n, n);
    PipelineParams pp;
    pp.threads = 2;
    const PerceptualEncoder enc(model(), pp);
    const BdCodec bd(4);

    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {n, n, 0, 0.0, 0});
        const ImageU8 srgb = toSrgb8(frame);

        const double raw_bits = 24.0 * srgb.pixelCount();
        const double bd_bits =
            static_cast<double>(bd.analyze(srgb).totalBits());
        const auto ours = enc.encodeFrame(frame, ecc);
        const double ours_bits =
            static_cast<double>(ours.bdStats.totalBits());
        const auto png = pngEncode(srgb);

        EXPECT_LT(bd_bits, raw_bits) << sceneName(id);
        EXPECT_LE(ours_bits, bd_bits) << sceneName(id);
        EXPECT_EQ(pngDecode(png), srgb) << sceneName(id);
    }
}

TEST(Integration, DisplayPathIsUnchangedBdDecoder)
{
    // Sec. 3.4 "Remarks on Decoding": the stream our encoder emits is a
    // plain BD stream; the stock decoder reconstructs it bit-exactly.
    const int n = 64;
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    const ImageF frame =
        renderScene(SceneId::Skyline, {n, n, 0, 0.0, 0});
    const auto encoded = enc.encodeFrame(frame, ecc);
    EXPECT_EQ(BdCodec::decode(encoded.bdStream), encoded.adjustedSrgb);
}

TEST(Integration, PerceptualQualityChainHolds)
{
    // Numerically lossy (PSNR finite), perceptually bounded (population
    // observer sees few supra-threshold pixels on bright scenes).
    const int n = 96;
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    const ImageF frame =
        renderScene(SceneId::Fortnite, {n, n, 0, 0.0, 0});
    const auto encoded = enc.encodeFrame(frame, ecc);

    const double quality = psnr(toSrgb8(frame), encoded.adjustedSrgb);
    EXPECT_LT(quality, 70.0);  // numerically lossy
    EXPECT_GT(quality, 20.0);  // but not destroyed

    ObserverPopulationParams params;
    const SimulatedObserver average(1.0, params);
    EXPECT_LT(average.supraThresholdFraction(frame,
                                             encoded.adjustedLinear,
                                             ecc, model()),
              0.02);
}

TEST(Integration, StereoFramesCompressIndependently)
{
    const int n = 64;
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    const StereoFrame stereo = renderStereo(SceneId::Office, n, n);
    const auto left = enc.encodeFrame(stereo.left, ecc);
    const auto right = enc.encodeFrame(stereo.right, ecc);
    EXPECT_EQ(BdCodec::decode(left.bdStream), left.adjustedSrgb);
    EXPECT_EQ(BdCodec::decode(right.bdStream), right.adjustedSrgb);
    // Parallax makes the streams differ.
    EXPECT_NE(left.bdStream, right.bdStream);
}

TEST(Integration, PowerModelEndToEnd)
{
    // Feed measured compressed sizes into the Fig. 13 arithmetic.
    const int n = 96;
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    const BdCodec bd(4);
    const ImageF frame = renderScene(SceneId::Thai, {n, n, 0, 0.0, 0});

    const double bd_bytes =
        static_cast<double>(bd.analyze(toSrgb8(frame)).totalBits()) /
        8.0;
    const auto ours = enc.encodeFrame(frame, ecc);
    const double ours_bytes =
        static_cast<double>(ours.bdStats.totalBits()) / 8.0;

    const CauModel cau;
    const DramModel dram;
    const double saving = dram.powerSavingMw(bd_bytes, ours_bytes, 72.0,
                                             cau.totalPowerMw());
    // At this tiny resolution the saving is small but must be finite
    // and consistent with the traffic delta.
    EXPECT_GT(saving, -cau.totalPowerMw() - 1e-9);
    const double gross = dram.streamPowerMw(bd_bytes, 72.0) -
                         dram.streamPowerMw(ours_bytes, 72.0);
    EXPECT_NEAR(saving, gross - cau.totalPowerMw(), 1e-12);
}

TEST(Integration, TileSizeSweepReproducesFig15Trend)
{
    // Fig. 15: compression peaks at small tiles and degrades as tiles
    // grow (worst-case delta dominates); T16 must be clearly worse than
    // T4 on textured content.
    const int n = 96;
    const EccentricityMap ecc = centeredMap(n, n);
    const ImageF frame =
        renderScene(SceneId::Skyline, {n, n, 0, 0.0, 0});

    double bpp_t4 = 0.0;
    double bpp_t16 = 0.0;
    for (int tile : {4, 16}) {
        PipelineParams params;
        params.tileSize = tile;
        const PerceptualEncoder enc(model(), params);
        const auto encoded = enc.encodeFrame(frame, ecc);
        (tile == 4 ? bpp_t4 : bpp_t16) =
            encoded.bdStats.bitsPerPixel();
    }
    EXPECT_LT(bpp_t4, bpp_t16);
}

TEST(Integration, UserStudyHarnessRunsEndToEnd)
{
    // Miniature Fig. 14: population verdicts over original/adjusted
    // pairs; bright green content must not be worse than dark content.
    const int n = 64;
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    ObserverPopulationParams params;
    const auto pop = drawObserverPopulation(params);

    const ImageF bright =
        renderScene(SceneId::Fortnite, {n, n, 0, 0.0, 0});
    const ImageF dark =
        renderScene(SceneId::Monkey, {n, n, 0, 0.0, 0});
    const auto bright_adj = enc.adjustFrame(bright, ecc);
    const auto dark_adj = enc.adjustFrame(dark, ecc);

    const auto bright_res =
        runUserStudy(pop, bright, bright_adj, ecc, model());
    const auto dark_res =
        runUserStudy(pop, dark, dark_adj, ecc, model());
    EXPECT_EQ(bright_res.participants, 11);
    EXPECT_GE(bright_res.noArtifactCount, dark_res.noArtifactCount);
}

TEST(Integration, ReportHelpersMatchCodecStats)
{
    const int n = 64;
    const BdCodec bd(4);
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const auto stats = bd.analyze(toSrgb8(frame));
    EXPECT_NEAR(bitsPerPixel(stats.totalBits(), stats.pixels),
                stats.bitsPerPixel(), 1e-12);
    EXPECT_NEAR(reductionVsRawPercent(stats.bitsPerPixel()),
                stats.reductionVsRawPercent(), 1e-12);
}

} // namespace
} // namespace pce
