/**
 * @file
 * Golden-band regression tests pinning the headline reproduction
 * results (EXPERIMENTS.md). Bands are deliberately wide — they exist so
 * a refactor cannot silently destroy the reproduction, not to freeze
 * exact values.
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "core/pipeline.hh"
#include "hw/cau_model.hh"
#include "hw/dram_model.hh"
#include "perception/observer.hh"
#include "render/scenes.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int n)
{
    DisplayGeometry g;
    g.width = n;
    g.height = n;
    g.fixationX = n / 2.0;
    g.fixationY = n / 2.0;
    return EccentricityMap(g);
}

TEST(Headline, BandwidthReductionBands)
{
    // Paper: 66.9% vs NoCom, 15.6% (up to 20.4%) vs BD. Bands cover
    // resolution effects (tests run smaller than benches).
    const int n = 160;
    const EccentricityMap ecc = centeredMap(n);
    PipelineParams params;
    params.threads = 4;
    const PerceptualEncoder enc(model(), params);
    const BdCodec bd(4);

    double vs_raw_sum = 0.0;
    double vs_bd_sum = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {n, n, 0, 0.0, 0});
        const double bd_bits = static_cast<double>(
            bd.analyze(toSrgb8(frame)).totalBits());
        const auto ours = enc.encodeFrame(frame, ecc);
        const double our_bits =
            static_cast<double>(ours.bdStats.totalBits());
        const double raw_bits = 24.0 * frame.pixelCount();

        const double vs_raw = 100.0 * (1.0 - our_bits / raw_bits);
        const double vs_bd = 100.0 * (1.0 - our_bits / bd_bits);
        EXPECT_GT(vs_raw, 40.0) << sceneName(id);
        EXPECT_GT(vs_bd, 8.0) << sceneName(id);
        EXPECT_LT(vs_bd, 40.0) << sceneName(id);
        vs_raw_sum += vs_raw;
        vs_bd_sum += vs_bd;
    }
    // Paper-scale averages within generous bands.
    EXPECT_NEAR(vs_raw_sum / 6.0, 66.9, 15.0);
    EXPECT_NEAR(vs_bd_sum / 6.0, 19.0, 10.0);
}

TEST(Headline, CaseTwoDominates)
{
    // Paper Fig. 12: c2 is the common case (78.92%).
    const int n = 160;
    const EccentricityMap ecc = centeredMap(n);
    PipelineParams params;
    params.threads = 4;
    const PerceptualEncoder enc(model(), params);
    std::size_t c1 = 0;
    std::size_t c2 = 0;
    for (SceneId id : allScenes()) {
        PipelineStats stats;
        enc.adjustFrame(renderScene(id, {n, n, 0, 0.0, 0}), ecc,
                        &stats);
        c1 += stats.c1Tiles;
        c2 += stats.c2Tiles;
    }
    EXPECT_GT(static_cast<double>(c2) / (c1 + c2), 0.75);
}

TEST(Headline, UserStudyShape)
{
    // Paper Fig. 14 shape: fortnite clean for all 11; a dark scene is
    // the worst; average noticing within sight of 2.8/11.
    const int n = 192;
    const EccentricityMap ecc = centeredMap(n);
    PipelineParams params;
    params.threads = 4;
    const PerceptualEncoder enc(model(), params);
    ObserverPopulationParams op;
    const auto pop = drawObserverPopulation(op);

    int fortnite_clean = 0;
    int worst_clean = 11;
    SceneId worst = SceneId::Office;
    double notice_sum = 0.0;
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {n, n, 0, 0.0, 0});
        const ImageF adjusted = enc.adjustFrame(frame, ecc);
        const auto result =
            runUserStudy(pop, frame, adjusted, ecc, model());
        notice_sum += 11 - result.noArtifactCount;
        if (id == SceneId::Fortnite)
            fortnite_clean = result.noArtifactCount;
        if (result.noArtifactCount < worst_clean) {
            worst_clean = result.noArtifactCount;
            worst = id;
        }
    }
    EXPECT_EQ(fortnite_clean, 11);
    EXPECT_TRUE(worst == SceneId::Dumbo || worst == SceneId::Monkey ||
                worst == SceneId::Skyline)
        << "worst scene: " << sceneName(worst);
    EXPECT_LT(notice_sum / 6.0, 6.0);  // paper: 2.8
}

TEST(Headline, HardwareConstants)
{
    // The Sec. 6.1 roll-up, end to end.
    const CauModel cau;
    const DramModel dram;
    EXPECT_EQ(cau.peCount(), 96);
    EXPECT_NEAR(cau.totalPowerMw(), 0.2016, 1e-9);
    EXPECT_NEAR(cau.compressionDelayUs(5408, 2736), 173.4, 0.3);
    // Fig. 13 scale: savings in the hundreds of mW with ~10 vs ~8 bpp.
    const double pixels = 5408.0 * 2736.0;
    const double saving = dram.powerSavingMw(
        pixels * 10.0 / 8.0, pixels * 8.0 / 8.0, 72.0,
        cau.totalPowerMw());
    EXPECT_GT(saving, 100.0);
    EXPECT_LT(saving, 1000.0);
}

} // namespace
} // namespace pce
