/**
 * @file
 * Decoder robustness: every decoder in the repository must reject
 * corrupted or random input with an exception — never crash, hang, or
 * silently return garbage sizes. Exercised with deterministic random
 * buffers and bit-flip mutations of valid streams.
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "bd/bd_variable.hh"
#include "common/rng.hh"
#include "png/inflate.hh"
#include "png/png_codec.hh"
#include "scc/scc_codec.hh"

namespace pce {
namespace {

std::vector<uint8_t>
randomBytes(std::size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> bytes(n);
    for (auto &b : bytes)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return bytes;
}

ImageU8
randomImage(int w, int h, uint64_t seed)
{
    Rng rng(seed);
    ImageU8 img(w, h);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));
    return img;
}

/** Run a decoder; success or std::exception both count as graceful. */
template <typename Decode>
void
expectGraceful(Decode &&decode, const std::vector<uint8_t> &input)
{
    try {
        (void)decode(input);
    } catch (const std::exception &) {
        // Rejected cleanly.
    }
}

TEST(Robustness, BdDecoderSurvivesRandomInput)
{
    for (uint64_t seed = 0; seed < 30; ++seed) {
        const auto bytes =
            randomBytes(8 + seed * 37 % 4000, 100 + seed);
        expectGraceful([](const auto &b) { return BdCodec::decode(b); },
                       bytes);
    }
}

TEST(Robustness, BdDecoderSurvivesBitFlips)
{
    const BdCodec codec(4);
    const auto valid = codec.encode(randomImage(32, 24, 1));
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        auto mutated = valid;
        const std::size_t pos = rng.uniformInt(mutated.size());
        mutated[pos] ^= static_cast<uint8_t>(1u << rng.uniformInt(8));
        expectGraceful(
            [](const auto &b) { return BdCodec::decode(b); }, mutated);
    }
}

TEST(Robustness, BdVariableDecoderSurvivesMutation)
{
    const BdVariableCodec codec(4);
    const auto valid = codec.encode(randomImage(24, 24, 3));
    Rng rng(4);
    for (int trial = 0; trial < 100; ++trial) {
        auto mutated = valid;
        mutated[rng.uniformInt(mutated.size())] ^=
            static_cast<uint8_t>(0xff);
        expectGraceful(
            [](const auto &b) { return BdVariableCodec::decode(b); },
            mutated);
    }
}

TEST(Robustness, InflateSurvivesRandomInput)
{
    for (uint64_t seed = 0; seed < 30; ++seed) {
        const auto bytes =
            randomBytes(1 + seed * 53 % 3000, 200 + seed);
        expectGraceful(
            [](const auto &b) { return inflateDecompress(b); }, bytes);
        expectGraceful(
            [](const auto &b) { return zlibDecompress(b); }, bytes);
    }
}

TEST(Robustness, PngDecoderSurvivesMutation)
{
    const auto valid = pngEncode(randomImage(20, 20, 5));
    Rng rng(6);
    for (int trial = 0; trial < 100; ++trial) {
        auto mutated = valid;
        mutated[rng.uniformInt(mutated.size())] ^=
            static_cast<uint8_t>(1u << rng.uniformInt(8));
        expectGraceful([](const auto &b) { return pngDecode(b); },
                       mutated);
    }
}

TEST(Robustness, PngDecoderSurvivesTruncationSweep)
{
    const auto valid = pngEncode(randomImage(16, 16, 7));
    for (std::size_t len = 0; len < valid.size(); len += 7) {
        std::vector<uint8_t> truncated(valid.begin(),
                                       valid.begin() + len);
        expectGraceful([](const auto &b) { return pngDecode(b); },
                       truncated);
    }
}

TEST(Robustness, SccDecoderSurvivesRandomInput)
{
    const AnalyticDiscriminationModel model;
    const SccCodebook book(model, SccParams{16, 20.0});
    for (uint64_t seed = 0; seed < 20; ++seed) {
        const auto bytes =
            randomBytes(8 + seed * 97 % 2000, 300 + seed);
        // decodeColor bounds-checks via .at(); out-of-range indices in
        // a random stream must throw, not index out of bounds.
        expectGraceful(
            [&book](const auto &b) { return book.decode(b); }, bytes);
    }
}

TEST(Robustness, ValidStreamsStillDecodeAfterHarness)
{
    // Sanity: the graceful harness must not mask real decoding.
    const BdCodec codec(4);
    const ImageU8 img = randomImage(16, 16, 9);
    EXPECT_EQ(BdCodec::decode(codec.encode(img)), img);
}

} // namespace
} // namespace pce
