/**
 * @file
 * Tests for the sRGB gamma (paper Eq. 1) and DKL (Eq. 2) transforms.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "color/dkl.hh"
#include "color/srgb.hh"
#include "common/rng.hh"

namespace pce {
namespace {

TEST(Srgb, EndpointsMap)
{
    EXPECT_EQ(linearToSrgb8(0.0), 0);
    EXPECT_EQ(linearToSrgb8(1.0), 255);
    EXPECT_DOUBLE_EQ(srgb8ToLinear(uint8_t(0)), 0.0);
    EXPECT_NEAR(srgb8ToLinear(uint8_t(255)), 1.0, 1e-12);
}

TEST(Srgb, ClampsOutOfRangeInput)
{
    EXPECT_EQ(linearToSrgb8(-0.5), 0);
    EXPECT_EQ(linearToSrgb8(1.5), 255);
}

TEST(Srgb, ForwardIsMonotonic)
{
    double prev = -1.0;
    for (int i = 0; i <= 1000; ++i) {
        const double s = linearToSrgbContinuous(i / 1000.0);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

TEST(Srgb, AllCodesRoundTripExactly)
{
    // quantize(linearize(code)) must reproduce every 8-bit code: the
    // encoding domain is stable under decode/encode (BD relies on it).
    for (int code = 0; code < 256; ++code) {
        const double lin = srgb8ToLinear(static_cast<uint8_t>(code));
        EXPECT_EQ(linearToSrgb8(lin), code) << "code " << code;
    }
}

TEST(Srgb, LinearSegmentUsedNearBlack)
{
    // Below the cutoff the transform is linear with slope 12.92*255.
    const double x = 0.001;
    EXPECT_NEAR(linearToSrgbContinuous(x), 12.92 * x * 255.0, 1e-9);
}

TEST(Srgb, PowerSegmentAboveCutoff)
{
    const double x = 0.5;
    const double want = (1.055 * std::pow(x, 1.0 / 2.4) - 0.055) * 255.0;
    EXPECT_NEAR(linearToSrgbContinuous(x), want, 1e-9);
}

TEST(Srgb, ContinuousInverseMatchesForward)
{
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform();
        const double s = linearToSrgbContinuous(x);
        EXPECT_NEAR(srgbToLinearContinuous(s), x, 1e-9);
    }
}

TEST(Srgb, VectorHelpersMatchScalar)
{
    const Vec3 rgb(0.1, 0.5, 0.9);
    uint8_t out[3];
    linearToSrgb8(rgb, out);
    EXPECT_EQ(out[0], linearToSrgb8(0.1));
    EXPECT_EQ(out[1], linearToSrgb8(0.5));
    EXPECT_EQ(out[2], linearToSrgb8(0.9));
    const Vec3 back = srgb8ToLinear(out);
    EXPECT_NEAR(back.x, srgb8ToLinear(out[0]), 1e-15);
}

TEST(Srgb, QuantizationErrorBounded)
{
    // One quantization step of error in linear space, at most.
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform();
        const double back = srgb8ToLinear(linearToSrgb8(x));
        // Derivative of inverse gamma is <= ~0.011 per code near white;
        // bound conservatively by 0.012.
        EXPECT_NEAR(back, x, 0.012);
    }
}

TEST(SrgbLut, MatchesReferenceOnDenseSweep)
{
    // The table-driven forward map must be bit-exact with the pow
    // reference. 2^20 evenly spaced inputs cover every LUT bucket ~256
    // times over.
    const int n = 1 << 20;
    for (int i = 0; i <= n; ++i) {
        const double x = static_cast<double>(i) / n;
        ASSERT_EQ(linearToSrgb8(x), linearToSrgb8Reference(x))
            << "x = " << x;
    }
}

TEST(SrgbLut, MatchesReferenceAroundEveryCodeBoundary)
{
    // The half-code rounding thresholds are where an off-by-one-ulp
    // table would diverge: probe a ulp neighborhood of each of them.
    for (int code = 1; code < 256; ++code) {
        // Forward and continuous-inverse are exact inverses, so this
        // is the continuous input that quantizes right at the boundary.
        double x = srgbToLinearContinuous(code - 0.5);
        for (int step = 0; step < 200; ++step)
            x = std::nextafter(x, 0.0);
        for (int step = 0; step < 400; ++step) {
            ASSERT_EQ(linearToSrgb8(x), linearToSrgb8Reference(x))
                << "code " << code << " x = " << x;
            x = std::nextafter(x, 2.0);
        }
    }
}

TEST(SrgbLut, MatchesReferenceOnRandomAndEdgeInputs)
{
    Rng rng(6);
    for (int i = 0; i < 100000; ++i) {
        const double x = rng.uniform(-0.25, 1.25);
        ASSERT_EQ(linearToSrgb8(x), linearToSrgb8Reference(x))
            << "x = " << x;
    }
    const double edges[] = {0.0,   1.0,    -0.0,   1e-300, 5e-324,
                            2.0,   -3.0,   0.5,    1.0 - 1e-16,
                            0.0031308, 0.00313081, 1e-9};
    for (const double x : edges)
        EXPECT_EQ(linearToSrgb8(x), linearToSrgb8Reference(x))
            << "x = " << x;
}

TEST(SrgbLut, InverseTableMatchesContinuousForAllCodes)
{
    for (int code = 0; code < 256; ++code) {
        const double want =
            srgbToLinearContinuous(static_cast<double>(code));
        EXPECT_EQ(srgb8ToLinear(static_cast<uint8_t>(code)), want)
            << "code " << code;
    }
}

TEST(SrgbLut, BatchedConversionMatchesScalar)
{
    Rng rng(7);
    std::vector<Vec3> pixels;
    for (int i = 0; i < 257; ++i)
        pixels.emplace_back(rng.uniform(-0.1, 1.1), rng.uniform(),
                            rng.uniform());
    std::vector<uint8_t> codes(pixels.size() * 3);
    linearToSrgb8(pixels.data(), pixels.size(), codes.data());
    for (std::size_t i = 0; i < pixels.size(); ++i) {
        EXPECT_EQ(codes[3 * i + 0], linearToSrgb8(pixels[i].x));
        EXPECT_EQ(codes[3 * i + 1], linearToSrgb8(pixels[i].y));
        EXPECT_EQ(codes[3 * i + 2], linearToSrgb8(pixels[i].z));
    }
}

TEST(Dkl, MatrixMatchesPaperCoefficients)
{
    const Mat3 &m = rgb2dklMatrix();
    EXPECT_DOUBLE_EQ(m(0, 0), 0.14);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.17);
    EXPECT_DOUBLE_EQ(m(0, 2), 0.00);
    EXPECT_DOUBLE_EQ(m(1, 0), -0.21);
    EXPECT_DOUBLE_EQ(m(1, 1), -0.71);
    EXPECT_DOUBLE_EQ(m(1, 2), -0.07);
    EXPECT_DOUBLE_EQ(m(2, 0), 0.21);
    EXPECT_DOUBLE_EQ(m(2, 1), 0.72);
    EXPECT_DOUBLE_EQ(m(2, 2), 0.07);
}

TEST(Dkl, TransformIsInvertible)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const Vec3 rgb(rng.uniform(), rng.uniform(), rng.uniform());
        const Vec3 back = dklToRgb(rgbToDkl(rgb));
        EXPECT_NEAR(back.x, rgb.x, 1e-9);
        EXPECT_NEAR(back.y, rgb.y, 1e-9);
        EXPECT_NEAR(back.z, rgb.z, 1e-9);
    }
}

TEST(Dkl, InverseMatrixIsTrueInverse)
{
    const Mat3 prod = rgb2dklMatrix() * dkl2rgbMatrix();
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
}

TEST(Dkl, TransformIsLinear)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const Vec3 a(rng.uniform(), rng.uniform(), rng.uniform());
        const Vec3 b(rng.uniform(), rng.uniform(), rng.uniform());
        const Vec3 lhs = rgbToDkl(a + b);
        const Vec3 rhs = rgbToDkl(a) + rgbToDkl(b);
        EXPECT_NEAR(lhs.x, rhs.x, 1e-12);
        EXPECT_NEAR(lhs.y, rhs.y, 1e-12);
        EXPECT_NEAR(lhs.z, rhs.z, 1e-12);
    }
}

TEST(Dkl, BlackMapsToOrigin)
{
    const Vec3 dkl = rgbToDkl(Vec3(0.0, 0.0, 0.0));
    EXPECT_DOUBLE_EQ(dkl.x, 0.0);
    EXPECT_DOUBLE_EQ(dkl.y, 0.0);
    EXPECT_DOUBLE_EQ(dkl.z, 0.0);
}

TEST(Dkl, GamutExtentsMatchAnalysis)
{
    // The axis ranges documented in discrimination.cc: K1 in [0,0.31],
    // K2 in [-0.99,0], K3 in [0,1.0], attained at cube corners.
    const Vec3 white = rgbToDkl(Vec3(1.0, 1.0, 1.0));
    EXPECT_NEAR(white.x, 0.31, 1e-12);
    EXPECT_NEAR(white.y, -0.99, 1e-12);
    EXPECT_NEAR(white.z, 1.00, 1e-12);
}

} // namespace
} // namespace pce
