/**
 * @file
 * Bit-exactness of the SIMD kernel layer (src/simd) across dispatch
 * levels, plus the FOVE_SIMD override.
 *
 * The contract under test is equality, not tolerance: every kernel at
 * every level available on this host must reproduce the legacy scalar
 * datapath (model/quadric code, Vec3 flow) double for double. Scalar
 * is always available; AVX2 runs whenever the host CPU has it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "bd/bd_codec.hh"
#include "color/srgb.hh"
#include "common/rng.hh"
#include "core/adjust.hh"
#include "core/quadric.hh"
#include "perception/discrimination.hh"
#include "simd/tile_kernels.hh"
#include "simd/tile_soa.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

/** Every dispatch level available on this host. */
std::vector<simd::SimdLevel>
availableLevels()
{
    std::vector<simd::SimdLevel> levels{simd::SimdLevel::Scalar};
    if (simd::detectedSimdLevel() == simd::SimdLevel::Avx2)
        levels.push_back(simd::SimdLevel::Avx2);
    return levels;
}

/** A random tile around a base color, optionally near the gamut edge. */
std::vector<Vec3>
randomTile(Rng &rng, std::size_t n, double spread, bool gamut_edge)
{
    std::vector<Vec3> tile;
    const Vec3 base = gamut_edge
                          ? Vec3(rng.uniform(), rng.uniform(),
                                 rng.uniform(0.9, 1.0))
                          : Vec3(rng.uniform(0.15, 0.85),
                                 rng.uniform(0.15, 0.85),
                                 rng.uniform(0.15, 0.85));
    for (std::size_t i = 0; i < n; ++i) {
        Vec3 p = base + Vec3(rng.uniform(-spread, spread),
                             rng.uniform(-spread, spread),
                             rng.uniform(-spread, spread));
        tile.push_back(p.clamped(0.0, 1.0));
    }
    return tile;
}

/** Fill a TileSoA's input lanes from AoS pixels/eccentricities. */
void
fillSoA(simd::TileSoA &soa, const std::vector<Vec3> &pixels,
        const std::vector<double> &ecc)
{
    soa.resize(pixels.size());
    for (std::size_t i = 0; i < pixels.size(); ++i) {
        soa.lane(simd::kPx)[i] = pixels[i].x;
        soa.lane(simd::kPy)[i] = pixels[i].y;
        soa.lane(simd::kPz)[i] = pixels[i].z;
        soa.lane(simd::kEcc)[i] = ecc[i];
    }
}

class SimdLevelTest
    : public ::testing::TestWithParam<simd::SimdLevel>
{};

TEST_P(SimdLevelTest, EllipsoidKernelMatchesModelExactly)
{
    const simd::TileKernels &k = simd::tileKernels(GetParam());
    Rng rng(101);
    simd::TileSoA soa;
    for (const std::size_t n : {16u, 7u, 1u, 33u}) {
        for (int trial = 0; trial < 25; ++trial) {
            const auto tile = randomTile(rng, n, 0.2, trial % 3 == 0);
            std::vector<double> ecc;
            for (std::size_t i = 0; i < n; ++i)
                ecc.push_back(rng.uniform(0.0, 40.0));
            fillSoA(soa, tile, ecc);
            k.ellipsoids(soa, model().params());
            for (std::size_t i = 0; i < n; ++i) {
                const Ellipsoid e = model().ellipsoidFor(
                    tile[i].clamped(0.0, 1.0), ecc[i]);
                EXPECT_EQ(soa.lane(simd::kCx)[i], e.centerDkl.x);
                EXPECT_EQ(soa.lane(simd::kCy)[i], e.centerDkl.y);
                EXPECT_EQ(soa.lane(simd::kCz)[i], e.centerDkl.z);
                EXPECT_EQ(soa.lane(simd::kAx)[i], e.semiAxes.x);
                EXPECT_EQ(soa.lane(simd::kAy)[i], e.semiAxes.y);
                EXPECT_EQ(soa.lane(simd::kAz)[i], e.semiAxes.z);
            }
        }
    }
}

TEST_P(SimdLevelTest, ExtremaKernelMatchesQuadricDatapathExactly)
{
    const simd::TileKernels &k = simd::tileKernels(GetParam());
    Rng rng(202);
    simd::TileSoA soa;
    for (const std::size_t n : {16u, 5u, 2u}) {
        for (int trial = 0; trial < 25; ++trial) {
            const auto tile = randomTile(rng, n, 0.25, false);
            std::vector<double> ecc;
            for (std::size_t i = 0; i < n; ++i)
                ecc.push_back(rng.uniform(0.0, 40.0));
            fillSoA(soa, tile, ecc);
            k.ellipsoids(soa, model().params());
            k.extremaBoth(soa);
            for (std::size_t i = 0; i < n; ++i) {
                const Ellipsoid e = model().ellipsoidFor(
                    tile[i].clamped(0.0, 1.0), ecc[i]);
                ExtremaPair red;
                ExtremaPair blue;
                extremaBothAxes(e, red, blue);
                EXPECT_EQ(soa.lane(simd::kRedHighX)[i], red.high.x);
                EXPECT_EQ(soa.lane(simd::kRedHighY)[i], red.high.y);
                EXPECT_EQ(soa.lane(simd::kRedHighZ)[i], red.high.z);
                EXPECT_EQ(soa.lane(simd::kRedLowX)[i], red.low.x);
                EXPECT_EQ(soa.lane(simd::kRedLowY)[i], red.low.y);
                EXPECT_EQ(soa.lane(simd::kRedLowZ)[i], red.low.z);
                EXPECT_EQ(soa.lane(simd::kBlueHighX)[i], blue.high.x);
                EXPECT_EQ(soa.lane(simd::kBlueHighY)[i], blue.high.y);
                EXPECT_EQ(soa.lane(simd::kBlueHighZ)[i], blue.high.z);
                EXPECT_EQ(soa.lane(simd::kBlueLowX)[i], blue.low.x);
                EXPECT_EQ(soa.lane(simd::kBlueLowY)[i], blue.low.y);
                EXPECT_EQ(soa.lane(simd::kBlueLowZ)[i], blue.low.z);
            }
        }
    }
}

TEST_P(SimdLevelTest, TileFlowMatchesLegacyFlowExactly)
{
    // The full kernel tile flow at this level vs. the legacy Vec3 flow
    // (forced by a non-default extrema backend that evaluates the same
    // Eq. 11-13 datapath): outcome metadata, bit costs, gamut counts,
    // and every adjusted double must be identical. Ragged sizes and
    // gamut-edge tiles exercise the padded lanes and the clamp path.
    const TileAdjuster kernel_adjuster(model(), {}, GetParam());
    ASSERT_TRUE(kernel_adjuster.usingSimdKernels());
    const TileAdjuster legacy_adjuster(
        model(), [](const Ellipsoid &e, int axis) {
            return extremaAlongAxis(e, axis);
        });
    ASSERT_FALSE(legacy_adjuster.usingSimdKernels());

    Rng rng(303);
    TileScratch kernel_scratch;
    TileScratch legacy_scratch;
    for (const std::size_t n : {16u, 4u, 1u, 13u, 64u}) {
        for (int trial = 0; trial < 30; ++trial) {
            const auto tile =
                randomTile(rng, n, rng.uniform(0.0, 0.3),
                           trial % 2 == 0);
            std::vector<double> ecc;
            for (std::size_t i = 0; i < n; ++i)
                ecc.push_back(rng.uniform(5.0, 40.0));

            kernel_scratch.pixels = tile;
            kernel_scratch.ecc = ecc;
            const TileOutcome a =
                kernel_adjuster.adjustTile(kernel_scratch);
            legacy_scratch.pixels = tile;
            legacy_scratch.ecc = ecc;
            const TileOutcome b =
                legacy_adjuster.adjustTile(legacy_scratch);

            EXPECT_EQ(a.chosenAxis, b.chosenAxis);
            EXPECT_EQ(a.chosenCase, b.chosenCase);
            EXPECT_EQ(a.caseRed, b.caseRed);
            EXPECT_EQ(a.caseBlue, b.caseBlue);
            EXPECT_EQ(a.bitsRed, b.bitsRed);
            EXPECT_EQ(a.bitsBlue, b.bitsBlue);
            EXPECT_EQ(a.gamutClampedPixels, b.gamutClampedPixels);
            ASSERT_EQ(a.adjusted->size(), b.adjusted->size());
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ((*a.adjusted)[i], (*b.adjusted)[i])
                    << "n " << n << " trial " << trial << " pixel "
                    << i;
        }
    }
}

TEST_P(SimdLevelTest, TileCostMatchesCodePath)
{
    // The fused quantize+cost kernel vs. the materialized-codes path.
    const simd::TileKernels &k = simd::tileKernels(GetParam());
    Rng rng(404);
    simd::TileSoA soa;
    for (const std::size_t n : {16u, 3u, 9u}) {
        for (int trial = 0; trial < 25; ++trial) {
            soa.resize(n);
            // Raw candidate values, including slightly out-of-gamut
            // and exact-boundary inputs the quantizer must clamp.
            for (std::size_t i = 0; i < n; ++i) {
                soa.lane(simd::kOutRedX)[i] = rng.uniform(-0.1, 1.1);
                soa.lane(simd::kOutRedY)[i] = rng.uniform(0.0, 1.0);
                soa.lane(simd::kOutRedZ)[i] =
                    i % 4 == 0 ? 1.0 : rng.uniform();
            }
            std::vector<uint8_t> codes(n * 3);
            linearToSrgb8Planar(soa.lane(simd::kOutRedX),
                                soa.lane(simd::kOutRedY),
                                soa.lane(simd::kOutRedZ), n,
                                codes.data());
            EXPECT_EQ(k.tileCost(soa, 0),
                      bdTileBitsFromCodes(codes.data(), n));
        }
    }
}

TEST_P(SimdLevelTest, BdTileMinMaxMatchesDirectScanExactly)
{
    // The BD stats kernel vs. a direct per-channel scan over every
    // tile of the grid: full tiles, ragged edge tiles, tiles ending at
    // the very last byte of the buffer (exercising the in-bounds guard
    // of the vector tail), and row widths on both sides of the 32-byte
    // vector width.
    const simd::TileKernels &k = simd::tileKernels(GetParam());
    Rng rng(808);
    const struct
    {
        int w, h, tile;
    } cases[] = {{64, 64, 4},  {61, 47, 4}, {13, 7, 5}, {128, 96, 16},
                 {1, 1, 4},    {40, 40, 8}, {9, 9, 3},  {33, 2, 32},
                 {256, 3, 255}};
    for (const auto &cs : cases) {
        ImageU8 img(cs.w, cs.h);
        for (auto &b : img.data())
            b = static_cast<uint8_t>(rng.uniformInt(256));
        const std::size_t stride =
            static_cast<std::size_t>(cs.w) * 3;
        const uint8_t *end = img.data().data() + img.data().size();
        for (const TileRect &rect :
             tileGrid(cs.w, cs.h, cs.tile)) {
            uint8_t lo[3];
            uint8_t hi[3];
            k.bdTileMinMax(img.pixel(rect.x0, rect.y0), stride,
                           rect.w, rect.h, end, lo, hi);
            uint8_t ref_lo[3] = {255, 255, 255};
            uint8_t ref_hi[3] = {0, 0, 0};
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
                for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
                    for (int c = 0; c < 3; ++c) {
                        const uint8_t v = img.channel(x, y, c);
                        ref_lo[c] = std::min(ref_lo[c], v);
                        ref_hi[c] = std::max(ref_hi[c], v);
                    }
            for (int c = 0; c < 3; ++c) {
                EXPECT_EQ(lo[c], ref_lo[c])
                    << cs.w << "x" << cs.h << " tile " << cs.tile
                    << " at (" << rect.x0 << "," << rect.y0
                    << ") channel " << c;
                EXPECT_EQ(hi[c], ref_hi[c])
                    << cs.w << "x" << cs.h << " tile " << cs.tile
                    << " at (" << rect.x0 << "," << rect.y0
                    << ") channel " << c;
            }
        }
    }
}

TEST(SimdDispatch, EncodeStatsPassIsLevelInvariant)
{
    // The whole-frame encode must emit byte-identical streams whether
    // the stats pass ran the AVX2 or the scalar min/max kernel (the
    // FOVE_SIMD override is read per encodeInto call).
    Rng rng(909);
    ImageU8 img(61, 53);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));
    const BdCodec codec(4);

    ASSERT_EQ(setenv("FOVE_SIMD", "off", 1), 0);
    std::vector<uint8_t> scalar_stream;
    codec.encodeInto(img, nullptr, scalar_stream);
    ASSERT_EQ(unsetenv("FOVE_SIMD"), 0);

    std::vector<uint8_t> active_stream;
    codec.encodeInto(img, nullptr, active_stream);
    EXPECT_EQ(scalar_stream, active_stream);
    EXPECT_EQ(BdCodec::decode(active_stream), img);
}

TEST_P(SimdLevelTest, NanPixelsCountAndPlaceIdentically)
{
    // A NaN input pixel (upstream renderer bug) must flow through the
    // kernels exactly like the scalar reference: same gamut-clamp
    // count (C++ != is unordered-true, so NaN movements count) and
    // bitwise-identical output lanes (NaN payloads included — compare
    // representations, not values).
    const TileAdjuster kernel_adjuster(model(), {}, GetParam());
    const TileAdjuster legacy_adjuster(
        model(), [](const Ellipsoid &e, int axis) {
            return extremaAlongAxis(e, axis);
        });

    Rng rng(707);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    for (int trial = 0; trial < 10; ++trial) {
        auto tile = randomTile(rng, 16, 0.1, trial % 2 == 0);
        tile[3].y = nan;
        tile[8] = Vec3(nan, nan, nan);
        const std::vector<double> ecc(16, 25.0);

        TileScratch a_scratch;
        a_scratch.pixels = tile;
        a_scratch.ecc = ecc;
        const TileOutcome a = kernel_adjuster.adjustTile(a_scratch);
        TileScratch b_scratch;
        b_scratch.pixels = tile;
        b_scratch.ecc = ecc;
        const TileOutcome b = legacy_adjuster.adjustTile(b_scratch);

        EXPECT_EQ(a.gamutClampedPixels, b.gamutClampedPixels);
        EXPECT_EQ(a.bitsRed, b.bitsRed);
        EXPECT_EQ(a.bitsBlue, b.bitsBlue);
        ASSERT_EQ(a.adjusted->size(), b.adjusted->size());
        EXPECT_EQ(std::memcmp(a.adjusted->data(), b.adjusted->data(),
                              a.adjusted->size() * sizeof(Vec3)),
                  0)
            << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Levels, SimdLevelTest, ::testing::ValuesIn(availableLevels()),
    [](const ::testing::TestParamInfo<simd::SimdLevel> &info) {
        return simd::simdLevelName(info.param);
    });

TEST(SimdDispatch, FoveSimdOffForcesScalar)
{
    ASSERT_EQ(setenv("FOVE_SIMD", "off", 1), 0);
    EXPECT_EQ(simd::activeSimdLevel(), simd::SimdLevel::Scalar);
    // A TileAdjuster built under the override runs the scalar kernels
    // and still matches the default-dispatch adjuster bit for bit.
    const TileAdjuster forced(model());
    EXPECT_EQ(forced.simdLevel(), simd::SimdLevel::Scalar);
    ASSERT_EQ(unsetenv("FOVE_SIMD"), 0);
    EXPECT_EQ(simd::activeSimdLevel(), simd::detectedSimdLevel());

    Rng rng(505);
    const auto tile = randomTile(rng, 16, 0.1, false);
    const std::vector<double> ecc(16, 20.0);
    const TileAdjuster active(model());
    TileScratch sa;
    TileScratch sb;
    sa.pixels = tile;
    sa.ecc = ecc;
    sb.pixels = tile;
    sb.ecc = ecc;
    const TileOutcome a = forced.adjustTile(sa);
    const TileOutcome b = active.adjustTile(sb);
    EXPECT_EQ(a.bitsRed, b.bitsRed);
    EXPECT_EQ(a.bitsBlue, b.bitsBlue);
    for (std::size_t i = 0; i < tile.size(); ++i)
        EXPECT_EQ((*a.adjusted)[i], (*b.adjusted)[i]);
}

TEST(SimdDispatch, ScalarAliasesAreAccepted)
{
    for (const char *v : {"scalar", "0"}) {
        ASSERT_EQ(setenv("FOVE_SIMD", v, 1), 0);
        EXPECT_EQ(simd::activeSimdLevel(), simd::SimdLevel::Scalar);
    }
    ASSERT_EQ(setenv("FOVE_SIMD", "avx2", 1), 0);
    // Explicit requests are clamped to what the CPU supports.
    EXPECT_EQ(simd::activeSimdLevel(), simd::detectedSimdLevel());
    ASSERT_EQ(unsetenv("FOVE_SIMD"), 0);
}

TEST(SimdDispatch, NonAnalyticModelFallsBackToLegacyFlow)
{
    // A wrapped model cannot go through the analytic kernels; the
    // adjuster must notice and keep the (correct) legacy flow.
    const ScaledDiscriminationModel scaled(model(), 1.5);
    const TileAdjuster adjuster(scaled);
    EXPECT_FALSE(adjuster.usingSimdKernels());

    Rng rng(606);
    TileScratch s;
    s.pixels = randomTile(rng, 16, 0.05, false);
    s.ecc.assign(16, 25.0);
    const TileOutcome out = adjuster.adjustTile(s);
    EXPECT_EQ(out.adjusted->size(), 16u);
}

} // namespace
} // namespace pce
