/**
 * @file
 * Tests for the SCC set-cover baseline codec (paper Sec. 5.3).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "scc/scc_codec.hh"

namespace pce {
namespace {

/**
 * Step-8 lattice: fine enough that ellipsoids at 25 degrees span
 * multiple cells along every axis (a coarser lattice degenerates to a
 * near-identity cover because the Green extent is only a few codes).
 */
const SccCodebook &
testCodebook()
{
    static const AnalyticDiscriminationModel model;
    static const SccParams params{8, 25.0};
    static const SccCodebook book(model, params);
    return book;
}

TEST(Scc, CoverIsComplete)
{
    const AnalyticDiscriminationModel model;
    EXPECT_EQ(testCodebook().verifyCover(model), 0u);
}

TEST(Scc, CodebookLandsNearPaperBitWidth)
{
    // The paper's greedy cover maps 2^24 colors to 32,274 (15 bits).
    // Our cover runs on the step-8 lattice (DESIGN.md); the
    // discrimination ellipsoids are thin pancakes in RGB (tight along
    // the opponent axes), so lattice merging is modest and the codebook
    // lands in the tens of thousands -- the same 14-16 bit regime.
    const std::size_t cells = 32u * 32u * 32u;  // step 8 lattice
    EXPECT_LT(testCodebook().size(), cells);
    EXPECT_GT(testCodebook().size(), cells / 64);
    EXPECT_GE(testCodebook().bitsPerPixel(), 12u);
    EXPECT_LE(testCodebook().bitsPerPixel(), 16u);
}

TEST(Scc, BitsPerPixelIsCeilLog2)
{
    const unsigned bits = testCodebook().bitsPerPixel();
    EXPECT_GE(std::size_t(1) << bits, testCodebook().size());
    EXPECT_LT(std::size_t(1) << (bits - 1), testCodebook().size());
    EXPECT_LT(bits, 24u);  // always beats raw
}

TEST(Scc, EncodeDecodeColorConsistent)
{
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        const auto r = static_cast<uint8_t>(rng.uniformInt(256));
        const auto g = static_cast<uint8_t>(rng.uniformInt(256));
        const auto b = static_cast<uint8_t>(rng.uniformInt(256));
        const uint32_t idx = testCodebook().encodeColor(r, g, b);
        ASSERT_LT(idx, testCodebook().size());
        uint8_t rgb[3];
        testCodebook().decodeColor(idx, rgb);
        // The representative differs from the input by at most the
        // lattice step plus the ellipsoid extent; sanity-bound it.
        EXPECT_LT(std::abs(int(rgb[0]) - int(r)), 128);
    }
}

TEST(Scc, StreamRoundTripIsStable)
{
    // decode(encode(img)) maps every pixel to its representative;
    // re-encoding the result must reproduce the same stream
    // (idempotence on the representative set).
    Rng rng(2);
    ImageU8 img(24, 16);
    for (auto &b : img.data())
        b = static_cast<uint8_t>(rng.uniformInt(256));

    const auto stream = testCodebook().encode(img);
    const ImageU8 once = testCodebook().decode(stream);
    const auto stream2 = testCodebook().encode(once);
    const ImageU8 twice = testCodebook().decode(stream2);
    EXPECT_EQ(once, twice);
}

TEST(Scc, StreamSizeMatchesBitsPerPixel)
{
    ImageU8 img(32, 8);
    const auto stream = testCodebook().encode(img);
    const std::size_t header_bits = 24 + 16 + 16 + 5;
    const std::size_t want_bits =
        header_bits + img.pixelCount() * testCodebook().bitsPerPixel();
    EXPECT_EQ(stream.size(), (want_bits + 7) / 8);
}

TEST(Scc, TableSizesMatchPaperStructure)
{
    // Encode table: one index per 2^24 colors; decode: 3 B per entry.
    const double enc_bytes = testCodebook().encodeTableBytesFullRes();
    EXPECT_NEAR(enc_bytes,
                double(1 << 24) * testCodebook().bitsPerPixel() / 8.0,
                1.0);
    EXPECT_EQ(testCodebook().decodeTableBytes(),
              testCodebook().size() * 3);
    // The paper's point: the encode table is tens of MB -- far too
    // large for an SoC DRAM-path block.
    EXPECT_GT(enc_bytes, 10.0 * 1024 * 1024);
}

TEST(Scc, RejectsBadGridStep)
{
    const AnalyticDiscriminationModel model;
    EXPECT_THROW(SccCodebook(model, SccParams{0, 20.0}),
                 std::invalid_argument);
    EXPECT_THROW(SccCodebook(model, SccParams{3, 20.0}),
                 std::invalid_argument);
}

TEST(Scc, LargerEllipsoidsYieldSmallerCodebook)
{
    const AnalyticDiscriminationModel model;
    const SccCodebook tight(model, SccParams{16, 5.0});
    const SccCodebook loose(model, SccParams{16, 35.0});
    EXPECT_LT(loose.size(), tight.size());
}

TEST(Scc, DecodeRejectsBadMagic)
{
    ImageU8 img(8, 8);
    auto stream = testCodebook().encode(img);
    stream[0] ^= 0xff;
    EXPECT_THROW(testCodebook().decode(stream), std::runtime_error);
}

} // namespace
} // namespace pce
