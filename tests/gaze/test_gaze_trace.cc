/**
 * @file
 * GazeTrace model (gaze/gaze_trace.hh): I-VT fixation/saccade
 * classification on synthetic traces, generator determinism, and the
 * CSV round trip with its malformed-input rejection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "gaze/gaze_trace.hh"

namespace pce {
namespace {

DisplayGeometry
geometry(int w = 512, int h = 512)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

TEST(GazeTrace, SlowPursuitClassifiesAsAllFixation)
{
    const DisplayGeometry geom = geometry();
    // 20 px radius, 4 s lap at 72 Hz: peak speed 2*pi*20/4 ~ 31 px/s,
    // well under the default 70 deg/s threshold on this geometry.
    const GazeTrace trace =
        smoothPursuitTrace(2.0, 72.0, 256.0, 256.0, 20.0, 4.0);
    ASSERT_GT(trace.size(), 100u);
    for (const GazePhase p : classifyIVT(trace, geom))
        EXPECT_EQ(p, GazePhase::Fixation);
}

TEST(GazeTrace, FastPursuitCrossesTheThreshold)
{
    const DisplayGeometry geom = geometry();
    // 180 px radius, 0.25 s lap: ~4.5k px/s — saccade-fast.
    const GazeTrace trace =
        smoothPursuitTrace(1.0, 72.0, 256.0, 256.0, 180.0, 0.25);
    const auto phases = classifyIVT(trace, geom);
    ASSERT_FALSE(phases.empty());
    EXPECT_EQ(phases.front(), GazePhase::Fixation);  // no velocity yet
    for (std::size_t i = 1; i < phases.size(); ++i)
        EXPECT_EQ(phases[i], GazePhase::Saccade) << "sample " << i;
}

TEST(GazeTrace, SaccadeJumpsAreFlaggedAndDwellsAreNot)
{
    const DisplayGeometry geom = geometry();
    Rng rng(42);
    const GazeTrace trace =
        saccadeJumpTrace(geom, 4.0, 72.0, 0.4, rng);
    const auto phases = classifyIVT(trace, geom);

    std::size_t saccades = 0, fixations = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
        const double jump = std::hypot(
            trace.samples[i].x - trace.samples[i - 1].x,
            trace.samples[i].y - trace.samples[i - 1].y);
        if (jump == 0.0) {
            EXPECT_EQ(phases[i], GazePhase::Fixation);
            ++fixations;
        } else if (jump > 30.0) {
            // A >30 px jump in one 72 Hz interval is >2000 px/s.
            EXPECT_EQ(phases[i], GazePhase::Saccade);
            ++saccades;
        }
    }
    EXPECT_GT(saccades, 2u);
    EXPECT_GT(fixations, 100u);
}

TEST(GazeTrace, GeneratorsAreDeterministic)
{
    const DisplayGeometry geom = geometry();
    Rng a(7), b(7);
    const GazeTrace ta = saccadeJumpTrace(geom, 2.0, 72.0, 0.3, a);
    const GazeTrace tb = saccadeJumpTrace(geom, 2.0, 72.0, 0.3, b);
    ASSERT_EQ(ta.samples, tb.samples);

    GazeTrace na = ta, nb = tb;
    Rng ra(9), rb(9);
    addTrackerNoise(na, 1.5, ra);
    addTrackerNoise(nb, 1.5, rb);
    EXPECT_EQ(na.samples, nb.samples);
    EXPECT_NE(na.samples, ta.samples);
}

TEST(GazeTrace, StreamingClassifierMatchesBatchAndResets)
{
    const DisplayGeometry geom = geometry();
    Rng rng(3);
    GazeTrace trace = saccadeJumpTrace(geom, 1.5, 72.0, 0.25, rng);
    addTrackerNoise(trace, 0.5, rng);

    IVTClassifier ivt(geom);
    const auto batch = classifyIVT(trace, geom);
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(ivt.update(trace.samples[i]), batch[i]);

    ivt.reset();
    // After reset the next sample has no predecessor: Fixation even
    // if it is far from the last one fed.
    EXPECT_EQ(ivt.update({1000.0, 0.0, 0.0}), GazePhase::Fixation);
}

TEST(GazeTrace, NonMonotonicTimestampClassifiesConservatively)
{
    const DisplayGeometry geom = geometry();
    IVTClassifier ivt(geom);
    EXPECT_EQ(ivt.update({1.0, 100.0, 100.0}), GazePhase::Fixation);
    // Same timestamp, huge jump: no valid interval -> Fixation.
    EXPECT_EQ(ivt.update({1.0, 400.0, 400.0}), GazePhase::Fixation);
    EXPECT_EQ(ivt.lastVelocityDegPerSec(), 0.0);
}

TEST(GazeTrace, CsvRoundTripIsExact)
{
    const DisplayGeometry geom = geometry();
    Rng rng(11);
    GazeTrace trace = saccadeJumpTrace(geom, 1.0, 72.0, 0.3, rng);
    addTrackerNoise(trace, 1.0, rng);

    std::stringstream ss;
    saveGazeTraceCsv(trace, ss);
    const GazeTrace loaded = loadGazeTraceCsv(ss);
    EXPECT_EQ(loaded.samples, trace.samples);
}

TEST(GazeTrace, CsvSkipsCommentsHeaderAndBlankLines)
{
    std::stringstream ss(
        "time,x,y\n"
        "# recorded 2026-07-30\n"
        "\n"
        "0.0, 10.5, 20.25\n"
        "0.0139,11,21  # inline comment\n");
    const GazeTrace t = loadGazeTraceCsv(ss);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_DOUBLE_EQ(t.samples[0].x, 10.5);
    EXPECT_DOUBLE_EQ(t.samples[1].timeSeconds, 0.0139);
    EXPECT_DOUBLE_EQ(t.samples[1].y, 21.0);
}

TEST(GazeTrace, CsvRejectsMalformedInput)
{
    const char *bad[] = {
        "0.0,1.0\n",              // too few fields
        "0.0,1.0,2.0,3.0\n",      // too many fields
        "0.0,abc,2.0\n",          // non-numeric
        "0.0,1.0,2.0z\n",         // trailing garbage
        "0.0,1.0,2.0\n0.0,1.0,2.0\n",    // non-increasing time
        "0.0,1.0,2.0\n-1.0,1.0,2.0\n",   // time going backwards
        "0.0,nan,2.0\n",          // stod accepts nan; we must not
    };
    for (const char *text : bad) {
        std::stringstream ss(text);
        EXPECT_THROW(loadGazeTraceCsv(ss), std::runtime_error)
            << "accepted: " << text;
    }
}

TEST(GazeTrace, GeneratorAndClassifierRejectBadParams)
{
    const DisplayGeometry geom = geometry();
    Rng rng(1);
    EXPECT_THROW(smoothPursuitTrace(-1.0, 72.0, 0, 0, 10, 1),
                 std::invalid_argument);
    EXPECT_THROW(smoothPursuitTrace(1.0, 0.0, 0, 0, 10, 1),
                 std::invalid_argument);
    EXPECT_THROW(saccadeJumpTrace(geom, 1.0, 72.0, 0.0, rng),
                 std::invalid_argument);
    EXPECT_THROW(saccadeJumpTrace(geom, 1.0, 72.0, 0.3, rng, 1.5),
                 std::invalid_argument);
    GazeTrace t;
    EXPECT_THROW(addTrackerNoise(t, -1.0, rng), std::invalid_argument);
    EXPECT_THROW(IVTClassifier(geom, 0.0), std::invalid_argument);
}

} // namespace
} // namespace pce
