/**
 * @file
 * PerceptualEncoder::encodeFrameGazeInto (core/pipeline.hh): fixation
 * frames match the static-map encode for the same fixation, saccade
 * frames take the whole-frame bypass (and still decode losslessly),
 * the exact-band guarantee is enforced, and the steady state of a
 * gaze-tracked frame loop pins every buffer.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/pipeline.hh"
#include "render/scenes.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

DisplayGeometry
geometry(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

TEST(GazePipeline, FixationFrameMatchesStaticEncodeAtSameFixation)
{
    const int n = 64;
    const DisplayGeometry geom = geometry(n, n);
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});
    const PerceptualEncoder enc(model());

    // First sample sits exactly on the initial fixation: the gaze map
    // is bit-identical to the static one, so the encode must be too.
    GazeTrackedEccentricity gaze(geom);
    EncodedFrame via_gaze;
    const GazePhase phase = enc.encodeFrameGazeInto(
        frame, gaze, {0.0, geom.fixationX, geom.fixationY}, via_gaze);
    EXPECT_EQ(phase, GazePhase::Fixation);
    EXPECT_EQ(via_gaze.stats.saccadeBypassTiles, 0u);

    const EccentricityMap static_map(geom);
    EncodedFrame via_static;
    enc.encodeFrameInto(frame, static_map, via_static);
    EXPECT_EQ(via_gaze.bdStream, via_static.bdStream);
    EXPECT_EQ(via_gaze.adjustedSrgb, via_static.adjustedSrgb);
}

TEST(GazePipeline, MovingFixationTracksTheIncrementalMap)
{
    const int n = 64;
    const DisplayGeometry geom = geometry(n, n);
    const ImageF frame = renderScene(SceneId::Thai, {n, n, 0, 0, 0});
    const PerceptualEncoder enc(model());

    GazeTrackedEccentricity gaze(geom);
    // Twin state driven identically: encoding against its map via the
    // static entry point must reproduce the gaze entry point.
    GazeTrackedEccentricity twin(geom);

    EncodedFrame via_gaze, via_twin;
    // 1 s between samples: on this tiny 100-degree test display a
    // pixel is ~1.5 degrees, so HMD-rate sampling would classify any
    // pixel-scale motion as a saccade.
    double t = 0.0;
    for (const auto &[dx, dy] :
         {std::pair<double, double>{2.0, 1.0}, {3.0, -2.0},
          {-1.5, 2.5}}) {
        t += 1.0;
        const GazeSample s{t, gaze.map().fixationX() + dx,
                           gaze.map().fixationY() + dy};
        const GazePhase phase =
            enc.encodeFrameGazeInto(frame, gaze, s, via_gaze);
        ASSERT_EQ(phase, GazePhase::Fixation);

        ASSERT_EQ(twin.update(s), GazePhase::Fixation);
        enc.encodeFrameInto(frame, twin.map(), via_twin);
        ASSERT_EQ(via_gaze.bdStream, via_twin.bdStream);
    }
    EXPECT_EQ(gaze.refixations(), 3u);
}

TEST(GazePipeline, SaccadeFrameBypassesAdjustmentAndStillDecodes)
{
    const int n = 64;
    const DisplayGeometry geom = geometry(n, n);
    const ImageF frame = renderScene(SceneId::Dumbo, {n, n, 0, 0, 0});
    PipelineParams pp;
    pp.tileSize = 4;
    const PerceptualEncoder enc(model(), pp);

    GazeTrackedEccentricity gaze(geom);
    EncodedFrame out;
    // Land the classifier, then jump across the display in 1/72 s.
    enc.encodeFrameGazeInto(frame, gaze, {0.0, 32.0, 32.0}, out);
    const GazePhase phase = enc.encodeFrameGazeInto(
        frame, gaze, {1.0 / 72.0, 60.0, 4.0}, out);
    EXPECT_EQ(phase, GazePhase::Saccade);

    // Every tile bypassed: the adjusted image is the input.
    EXPECT_EQ(out.stats.saccadeBypassTiles, out.stats.totalTiles);
    EXPECT_EQ(out.stats.totalTiles, 16u * 16u);
    EXPECT_EQ(out.stats.fovealBypassTiles, 0u);
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            ASSERT_EQ(out.adjustedLinear.at(x, y), frame.at(x, y));

    // The stream is still a valid lossless encode of the frame.
    EncodedFrame &mutable_out = out;
    EXPECT_TRUE(enc.verifyRoundTrip(mutable_out));
    EXPECT_EQ(out.roundTripSrgb, toSrgb8(frame));

    // The map update was deferred during the saccade...
    EXPECT_EQ(gaze.deferredUpdates(), 1u);
    // ...and the landing fixation re-fixates (here: far enough for
    // the documented full-rebuild fallback).
    enc.encodeFrameGazeInto(frame, gaze, {2.0 / 72.0, 60.0, 4.0}, out);
    EXPECT_EQ(gaze.fullRebuilds(), 1u);
    EXPECT_DOUBLE_EQ(gaze.map().fixationX(), 60.0);
}

TEST(GazePipeline, SteadyStateGazeLoopPinsEveryBuffer)
{
    const int n = 48;
    const DisplayGeometry geom = geometry(n, n);
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});
    const PerceptualEncoder enc(model());

    GazeTrackedEccentricity gaze(geom);
    EncodedFrame out;
    // Warm both paths: the saccade frame encodes unadjusted, whose
    // (larger) stream sets the bdStream high-water capacity.
    enc.encodeFrameGazeInto(frame, gaze, {0.0, 24.0, 24.0}, out);
    enc.encodeFrameGazeInto(frame, gaze, {0.005, 54.0, 24.0}, out);
    enc.encodeFrameGazeInto(frame, gaze, {1.005, 25.0, 24.5}, out);

    const double *map_ptr = gaze.map().data();
    const Vec3 *lin_ptr = out.adjustedLinear.pixels().data();
    const uint8_t *srgb_ptr = out.adjustedSrgb.data().data();
    const uint8_t *stream_ptr = out.bdStream.data();
    const std::size_t stream_cap = out.bdStream.capacity();
    double t = 1.005;
    for (int i = 2; i < 24; ++i) {
        // Jitter and pursuit at 1 s spacing (fixations on this tiny
        // display, see above) plus one fast jump (a saccade frame).
        const double x = 24.0 + (i % 5) + (i == 13 ? 30.0 : 0.0);
        const double y = 24.0 + ((i * 3) % 7);
        t += (i == 13) ? 0.005 : 1.0;
        enc.encodeFrameGazeInto(frame, gaze, {t, x, y}, out);
        ASSERT_EQ(gaze.map().data(), map_ptr) << i;
        ASSERT_EQ(out.adjustedLinear.pixels().data(), lin_ptr) << i;
        ASSERT_EQ(out.adjustedSrgb.data().data(), srgb_ptr) << i;
        ASSERT_EQ(out.bdStream.capacity(), stream_cap) << i;
        ASSERT_EQ(out.bdStream.data(), stream_ptr) << i;
    }
}

TEST(GazePipeline, ExactBandGuaranteeIsEnforced)
{
    const int n = 48;
    const DisplayGeometry geom = geometry(n, n);
    const ImageF frame = renderScene(SceneId::Office, {n, n, 0, 0, 0});
    const PerceptualEncoder enc(model());

    IncrementalEccParams bad;
    bad.exactBandDeg = 6.0;  // < fovealCutoffDeg(5) + accumulated(6)
    GazeTrackedEccentricity gaze(geom, bad);
    EncodedFrame out;
    EXPECT_THROW(
        enc.encodeFrameGazeInto(frame, gaze, {0.0, 24.0, 24.0}, out),
        std::invalid_argument);

    GazeTrackedEccentricity ok(geom);
    const ImageF wrong(32, 32);
    EXPECT_THROW(
        enc.encodeFrameGazeInto(wrong, ok, {0.0, 24.0, 24.0}, out),
        std::invalid_argument);
}

TEST(GazePipeline, RenderGazeClipPairsFramesWithSamples)
{
    const GazeAnnotatedClip clip =
        renderGazeClip(SceneId::Skyline, 64, 64, 12);
    ASSERT_EQ(clip.frames.size(), 12u);
    ASSERT_EQ(clip.gaze.samples.size(), 12u);
    for (std::size_t i = 1; i < clip.gaze.samples.size(); ++i)
        EXPECT_GE(clip.gaze.samples[i].timeSeconds,
                  clip.gaze.samples[i - 1].timeSeconds);
    // Deterministic for a fixed seed.
    const GazeAnnotatedClip again =
        renderGazeClip(SceneId::Skyline, 64, 64, 12);
    EXPECT_EQ(again.gaze.samples, clip.gaze.samples);
    EXPECT_EQ(again.frames[3].left.pixels(),
              clip.frames[3].left.pixels());
}

} // namespace
} // namespace pce
