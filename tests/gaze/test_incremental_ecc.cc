/**
 * @file
 * IncrementalEccentricity exactness/fallback contract
 * (gaze/incremental_ecc.hh): for a sweep of gaze deltas — sub-tile,
 * multi-tile, fractional, off-screen clamp, and the exact fallback
 * threshold edge — the in-place re-fixated map must (a) be
 * bit-identical to a fresh build inside every recomputed band, (b)
 * stay within the documented accumulated error bound everywhere else,
 * (c) cover the whole exact iso-eccentricity band so the encoder can
 * never falsely bypass a foveal tile, and (d) never reallocate its
 * storage (pointer pinning).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "gaze/incremental_ecc.hh"
#include "image/image.hh"

namespace pce {
namespace {

DisplayGeometry
geometry(int w, int h, double fx, double fy)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = fx;
    g.fixationY = fy;
    return g;
}

/** Fresh exact build at the given fixation. */
EccentricityMap
freshMap(const DisplayGeometry &geom, double fx, double fy)
{
    DisplayGeometry g = geom;
    g.fixationX = fx;
    g.fixationY = fy;
    return EccentricityMap(g);
}

bool
inRect(const TileRect &r, int x, int y)
{
    return x >= r.x0 && x < r.x0 + r.w && y >= r.y0 && y < r.y0 + r.h;
}

/**
 * Assert the full contract of one re-fixated map against a fresh
 * build at the same fixation.
 */
void
expectContract(const EccentricityMap &inc, const EccentricityMap &fresh,
               const RefixStats &st, const IncrementalEccParams &params,
               const std::string &what)
{
    ASSERT_EQ(inc.width(), fresh.width());
    ASSERT_EQ(inc.height(), fresh.height());
    EXPECT_DOUBLE_EQ(inc.fixationX(), fresh.fixationX()) << what;
    EXPECT_DOUBLE_EQ(inc.fixationY(), fresh.fixationY()) << what;

    double max_err = 0.0;
    for (int y = 0; y < inc.height(); ++y) {
        for (int x = 0; x < inc.width(); ++x) {
            const double e_inc = inc.at(x, y);
            const double e_fresh = fresh.at(x, y);
            if (st.fullRebuild || inRect(st.exactRect, x, y)) {
                // Recomputed pixels are bit-identical to a fresh
                // build (same eccentricityDeg evaluation).
                ASSERT_EQ(e_inc, e_fresh)
                    << what << " exact pixel (" << x << "," << y << ")";
            } else {
                max_err = std::max(max_err, std::abs(e_inc - e_fresh));
            }
            // The always-exact band covers the iso-eccentricity
            // ellipse: any truly-foveal pixel must be exact.
            if (e_fresh <= params.exactBandDeg)
                ASSERT_TRUE(st.fullRebuild ||
                            inRect(st.exactRect, x, y))
                    << what << " in-band pixel (" << x << "," << y
                    << ") ecc " << e_fresh << " outside exactRect";
        }
    }
    EXPECT_LE(max_err, st.accumulatedErrorBoundDeg + 1e-12) << what;
}

TEST(IncrementalEcc, DeltaSweepMeetsContract)
{
    const int w = 96, h = 80;
    const DisplayGeometry geom = geometry(w, h, w / 2.0, h / 2.0);
    IncrementalEccParams params;
    params.maxShiftPx = 40.0;
    // The tiny test display has a ~40 px focal length, so per-step
    // bounds are tens of degrees; park the accumulation cap out of
    // the way to exercise the shift path and the maxShiftPx edge.
    params.maxAccumulatedErrorDeg = 1000.0;
    params.exactBandDeg = 12.0;

    const std::pair<double, double> deltas[] = {
        {0.0, 0.0},    {0.4, -0.3},  {1.0, 0.0},  {-3.0, 2.0},
        {2.5, 7.5},    {-9.0, -9.0}, {13.0, 0.0}, {0.0, -13.0},
        {35.0, 25.0},  // hypot 43 > maxShiftPx: fallback
    };
    for (const auto &[dx, dy] : deltas) {
        IncrementalEccentricity upd(geom, params);
        EccentricityMap map(geom);
        const double fx = geom.fixationX + dx;
        const double fy = geom.fixationY + dy;
        RefixStats st;
        upd.refixate(map, fx, fy, &st);

        const double d = std::hypot(dx, dy);
        EXPECT_EQ(st.fullRebuild, d > params.maxShiftPx)
            << "delta (" << dx << "," << dy << ")";
        const EccentricityMap fresh = freshMap(geom, fx, fy);
        expectContract(map, fresh, st, params,
                       "delta (" + std::to_string(dx) + "," +
                           std::to_string(dy) + ")");
        if (!st.fullRebuild) {
            EXPECT_LE(st.stepErrorBoundDeg,
                      IncrementalEccentricity::shiftErrorBoundDeg(
                          geom, dx, dy) + 1e-12);
            EXPECT_EQ(st.accumulatedErrorBoundDeg,
                      upd.accumulatedErrorBoundDeg());
        } else {
            EXPECT_EQ(upd.accumulatedErrorBoundDeg(), 0.0);
        }
    }
}

TEST(IncrementalEcc, ChainedRefixationsAccumulateWithinBound)
{
    const int w = 96, h = 96;
    const DisplayGeometry geom = geometry(w, h, 30.0, 40.0);
    IncrementalEccParams params;
    params.maxShiftPx = 20.0;
    params.maxAccumulatedErrorDeg = 1000.0;  // stay incremental
    IncrementalEccentricity upd(geom, params);
    EccentricityMap map(geom);

    // A pursuit-like walk; contract must hold after every step.
    double fx = 30.0, fy = 40.0;
    const std::pair<double, double> steps[] = {
        {2.0, 1.0}, {3.0, -1.5}, {2.0, 2.0}, {-1.0, 3.0}, {4.0, 0.0},
    };
    double expected_accum = 0.0;
    for (const auto &[dx, dy] : steps) {
        fx += dx;
        fy += dy;
        RefixStats st;
        upd.refixate(map, fx, fy, &st);
        ASSERT_FALSE(st.fullRebuild);
        expected_accum += st.stepErrorBoundDeg;
        EXPECT_NEAR(st.accumulatedErrorBoundDeg, expected_accum,
                    1e-12);
        expectContract(map, freshMap(geom, fx, fy), st, params,
                       "chained step");
    }
}

TEST(IncrementalEcc, AccumulatedErrorCapForcesRebuild)
{
    const int w = 64, h = 64;
    const DisplayGeometry geom = geometry(w, h, w / 2.0, h / 2.0);
    IncrementalEccParams params;
    params.maxShiftPx = 20.0;
    params.maxAccumulatedErrorDeg = 3.0;
    IncrementalEccentricity upd(geom, params);
    EccentricityMap map(geom);

    double fx = w / 2.0;
    bool saw_rebuild = false;
    for (int i = 0; i < 64 && !saw_rebuild; ++i) {
        fx += (i % 2 == 0) ? 2.0 : -2.0;  // jitter, no net motion
        RefixStats st;
        upd.refixate(map, fx, h / 2.0, &st);
        if (st.fullRebuild) {
            saw_rebuild = true;
            EXPECT_EQ(upd.accumulatedErrorBoundDeg(), 0.0);
            // After the reset the map is exact everywhere.
            const EccentricityMap fresh = freshMap(geom, fx, h / 2.0);
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x)
                    ASSERT_EQ(map.at(x, y), fresh.at(x, y));
        } else {
            EXPECT_LE(st.accumulatedErrorBoundDeg,
                      params.maxAccumulatedErrorDeg);
        }
    }
    EXPECT_TRUE(saw_rebuild)
        << "jitter never crossed the accumulation cap";
}

TEST(IncrementalEcc, ThresholdEdgeTakesIncrementalPathExactlyAt)
{
    const int w = 128, h = 128;
    const DisplayGeometry geom = geometry(w, h, w / 2.0, h / 2.0);
    IncrementalEccParams params;
    params.maxShiftPx = 16.0;
    params.maxAccumulatedErrorDeg = 1000.0;  // isolate the px check

    {
        IncrementalEccentricity upd(geom, params);
        EccentricityMap map(geom);
        RefixStats st;
        // |delta| == maxShiftPx exactly: still incremental.
        upd.refixate(map, geom.fixationX + 16.0, geom.fixationY, &st);
        EXPECT_FALSE(st.fullRebuild);
        EXPECT_GT(st.shiftedPixels, 0u);
    }
    {
        IncrementalEccentricity upd(geom, params);
        EccentricityMap map(geom);
        RefixStats st;
        // Just above the threshold: fallback. (A one-ulp overshoot
        // would be absorbed when added to the fixation coordinate, so
        // use a half-pixel.)
        upd.refixate(map, geom.fixationX + 16.5, geom.fixationY, &st);
        EXPECT_TRUE(st.fullRebuild);
        EXPECT_EQ(st.shiftedPixels, 0u);
    }
}

TEST(IncrementalEcc, OffScreenFixationIsClampedIntoDisplay)
{
    const int w = 64, h = 48;
    const DisplayGeometry geom = geometry(w, h, w / 2.0, h / 2.0);
    IncrementalEccParams params;
    params.maxShiftPx = 1e9;  // force the incremental path even here
    params.maxAccumulatedErrorDeg = 1e9;
    IncrementalEccentricity upd(geom, params);
    EccentricityMap map(geom);

    RefixStats st;
    upd.refixate(map, -50.0, 1e6, &st);
    EXPECT_TRUE(st.clamped);
    EXPECT_DOUBLE_EQ(map.fixationX(), 0.0);
    EXPECT_DOUBLE_EQ(map.fixationY(), static_cast<double>(h - 1));
    expectContract(map, freshMap(geom, 0.0, h - 1), st, params,
                   "clamped");

    // An in-display fixation is not clamped.
    upd.refixate(map, 10.0, 10.0, &st);
    EXPECT_FALSE(st.clamped);
}

TEST(IncrementalEcc, SteadyStateRefixationIsAllocationFree)
{
    const int w = 160, h = 120;
    const DisplayGeometry geom = geometry(w, h, w / 2.0, h / 2.0);
    IncrementalEccParams params;
    params.maxShiftPx = 8.0;
    params.maxAccumulatedErrorDeg = 2.0;  // rebuilds happen in-chain
    IncrementalEccentricity upd(geom, params);
    EccentricityMap map(geom);
    const double *storage = map.data();

    double fx = w / 2.0, fy = h / 2.0;
    bool saw_incremental = false, saw_rebuild = false;
    for (int i = 0; i < 48; ++i) {
        fx += ((i * 7) % 11) - 5.0;
        fy += ((i * 5) % 9) - 4.0;
        RefixStats st;
        upd.refixate(map, fx, fy, &st);
        (st.fullRebuild ? saw_rebuild : saw_incremental) = true;
        // Both paths reuse the same storage: the pointer never moves.
        ASSERT_EQ(map.data(), storage) << "step " << i;
        fx = map.fixationX();
        fy = map.fixationY();
    }
    EXPECT_TRUE(saw_incremental);
    EXPECT_TRUE(saw_rebuild);
}

TEST(IncrementalEcc, NoFalseFovealBypassAcrossAChain)
{
    // The property the encoder depends on: a tile whose fresh-map
    // minimum eccentricity is below the cutoff is never seen as
    // bypassable on the incremental map (the reverse direction —
    // extra adjusted tiles — is allowed and costs only work).
    const int w = 96, h = 96;
    const double cutoff = 5.0;
    const DisplayGeometry geom = geometry(w, h, 20.0, 70.0);
    IncrementalEccParams params;  // defaults: 12 >= 5 + 6 holds
    IncrementalEccentricity upd(geom, params);
    EccentricityMap map(geom);

    double fx = 20.0, fy = 70.0;
    const std::pair<double, double> steps[] = {
        {4.0, -3.0}, {6.0, 5.0}, {-2.0, 6.0}, {8.0, 0.0}, {3.0, -7.0},
    };
    for (const auto &[dx, dy] : steps) {
        fx += dx;
        fy += dy;
        upd.refixate(map, fx, fy);
        const EccentricityMap fresh = freshMap(geom, fx, fy);
        for (const TileRect &t : tileGrid(w, h, 8)) {
            if (fresh.minInRect(t) < cutoff)
                ASSERT_LT(map.minInRect(t), cutoff)
                    << "tile (" << t.x0 << "," << t.y0
                    << ") falsely bypassable";
        }
    }
}

TEST(IncrementalEcc, ShiftErrorBoundIsRigorousOnASweep)
{
    // Single-step empirical check of the documented bound on a
    // wide-FoV display (the worst case for the shift approximation).
    const int w = 128, h = 128;
    const DisplayGeometry geom = geometry(w, h, w / 2.0, h / 2.0);
    for (const auto &[dx, dy] : {std::pair<double, double>{4.0, 0.0},
                                 {0.0, 9.0},
                                 {7.0, -7.0}}) {
        IncrementalEccParams params;
        params.maxShiftPx = 32.0;
        params.maxAccumulatedErrorDeg = 1000.0;
        params.exactBandDeg = 0.0;  // measure the raw shift error
        IncrementalEccentricity upd(geom, params);
        EccentricityMap map(geom);
        RefixStats st;
        upd.refixate(map, geom.fixationX + dx, geom.fixationY + dy,
                     &st);
        ASSERT_FALSE(st.fullRebuild);
        const EccentricityMap fresh =
            freshMap(geom, geom.fixationX + dx, geom.fixationY + dy);
        double max_err = 0.0;
        for (int y = 0; y < h; ++y)
            for (int x = 0; x < w; ++x)
                if (!inRect(st.exactRect, x, y))
                    max_err = std::max(
                        max_err,
                        std::abs(map.at(x, y) - fresh.at(x, y)));
        EXPECT_LE(max_err, st.stepErrorBoundDeg)
            << "delta (" << dx << "," << dy << ")";
    }
}

TEST(IncrementalEcc, RejectsMismatchedMapAndBadParams)
{
    const DisplayGeometry geom = geometry(64, 64, 32.0, 32.0);
    IncrementalEccentricity upd(geom);
    EccentricityMap wrong(geometry(32, 32, 16.0, 16.0));
    EXPECT_THROW(upd.refixate(wrong, 10.0, 10.0),
                 std::invalid_argument);

    IncrementalEccParams bad;
    bad.maxAccumulatedErrorDeg = 0.0;
    EXPECT_THROW(IncrementalEccentricity(geom, bad),
                 std::invalid_argument);
    bad = IncrementalEccParams{};
    bad.maxShiftPx = -1.0;
    EXPECT_THROW(IncrementalEccentricity(geom, bad),
                 std::invalid_argument);
    bad = IncrementalEccParams{};
    bad.exactBandDeg = -0.1;
    EXPECT_THROW(IncrementalEccentricity(geom, bad),
                 std::invalid_argument);
}

TEST(IncrementalEcc, RebuildReusesStorageAndMatchesConstructor)
{
    DisplayGeometry g = geometry(80, 60, 40.0, 30.0);
    EccentricityMap map(g);
    const double *storage = map.data();
    g.fixationX = 11.0;
    g.fixationY = 52.0;
    map.rebuild(g);
    EXPECT_EQ(map.data(), storage);
    const EccentricityMap fresh(g);
    for (int y = 0; y < map.height(); ++y)
        for (int x = 0; x < map.width(); ++x)
            ASSERT_EQ(map.at(x, y), fresh.at(x, y));
}

} // namespace
} // namespace pce
