/**
 * @file
 * Checksummed gaze/eccentricity state: seal, verify, and
 * rebuild-on-mismatch recovery (docs/FAULTS.md).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "gaze/incremental_ecc.hh"
#include "perception/display.hh"

namespace pce {
namespace {

DisplayGeometry
testGeom(int w = 96, int h = 96)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

TEST(GazeIntegrity, UnsealedStateAlwaysVerifies)
{
    GazeTrackedEccentricity gaze(testGeom());
    EXPECT_TRUE(gaze.verifyState());
    // Even after map corruption: no seal, no evidence, no false alarm.
    gaze.mutableMap().data()[0] += 1.0;
    EXPECT_TRUE(gaze.verifyState());
    EXPECT_EQ(gaze.integrityRecoveries(), 0u);
}

TEST(GazeIntegrity, SealedStateDetectsSingleBitFlip)
{
    GazeTrackedEccentricity gaze(testGeom());
    gaze.sealState();
    EXPECT_TRUE(gaze.verifyState());

    double *values = gaze.mutableMap().data();
    std::uint64_t bits;
    std::memcpy(&bits, &values[1234], 8);
    bits ^= 1ull << 17;
    std::memcpy(&values[1234], &bits, 8);

    EXPECT_FALSE(gaze.verifyState());
}

TEST(GazeIntegrity, RecoveryRestoresBitIdenticalMap)
{
    const DisplayGeometry geom = testGeom();
    GazeTrackedEccentricity gaze(geom);
    gaze.sealState();
    const EccentricityMap fresh(geom);  // golden reference

    // Corrupt several values outright, then recover.
    double *values = gaze.mutableMap().data();
    values[0] = -1.0;
    values[500] = 9999.0;
    EXPECT_FALSE(gaze.verifyAndRecoverState());
    EXPECT_EQ(gaze.integrityRecoveries(), 1u);

    // The recovered map is bit-identical to a fresh build at the
    // sealed fixation, and the re-seal verifies.
    const std::size_t n = static_cast<std::size_t>(geom.width) *
                          static_cast<std::size_t>(geom.height);
    EXPECT_EQ(std::memcmp(gaze.map().data(), fresh.data(),
                          n * sizeof(double)),
              0);
    EXPECT_TRUE(gaze.verifyState());
    // Intact state recovers nothing.
    EXPECT_TRUE(gaze.verifyAndRecoverState());
    EXPECT_EQ(gaze.integrityRecoveries(), 1u);
}

TEST(GazeIntegrity, UpdateResealsAutomatically)
{
    GazeTrackedEccentricity gaze(testGeom());
    gaze.sealState();

    // A legitimate re-fixation rewrites map values; the seal must
    // follow it instead of flagging the service's own work.
    GazeSample sample{0.1, 40.0, 52.0};
    gaze.update(sample);
    EXPECT_TRUE(gaze.verifyState());

    // And a flip after that update is still caught.
    gaze.mutableMap().data()[42] *= 2.0;
    EXPECT_FALSE(gaze.verifyState());
}

TEST(GazeIntegrity, SealCoversFixationBookkeeping)
{
    const DisplayGeometry geom = testGeom();
    GazeTrackedEccentricity gaze(geom);
    gaze.sealState();
    // Move the fixation through the legitimate path; auto-reseal keeps
    // the seal aligned. Then corrupt the map and confirm recovery goes
    // to the *new* sealed fixation, not the original one.
    GazeSample sample{0.1, 20.0, 24.0};
    gaze.update(sample);
    const double fx = gaze.map().fixationX();
    const double fy = gaze.map().fixationY();
    gaze.mutableMap().data()[7] = 1e6;
    EXPECT_FALSE(gaze.verifyAndRecoverState());
    EXPECT_EQ(gaze.map().fixationX(), fx);
    EXPECT_EQ(gaze.map().fixationY(), fy);
}

TEST(IncrementalEccentricity, RebuildAtResetsErrorAndClamps)
{
    const DisplayGeometry geom = testGeom();
    IncrementalEccentricity updater(geom);
    EccentricityMap map(geom);

    // Accumulate some shift error first (shift small enough that the
    // incremental path runs instead of the full-rebuild fallback).
    updater.refixate(map, geom.fixationX + 1.0, geom.fixationY + 1.0);
    EXPECT_GT(updater.accumulatedErrorBoundDeg(), 0.0);

    // rebuildAt: exact, clamped, error bound reset.
    updater.rebuildAt(map, -50.0, 1e9);
    EXPECT_EQ(updater.accumulatedErrorBoundDeg(), 0.0);
    EXPECT_EQ(map.fixationX(), 0.0);
    EXPECT_EQ(map.fixationY(), static_cast<double>(geom.height - 1));

    DisplayGeometry at = geom;
    at.fixationX = 0.0;
    at.fixationY = geom.height - 1;
    const EccentricityMap fresh(at);
    const std::size_t n = static_cast<std::size_t>(geom.width) *
                          static_cast<std::size_t>(geom.height);
    EXPECT_EQ(std::memcmp(map.data(), fresh.data(),
                          n * sizeof(double)),
              0);
}

} // namespace
} // namespace pce
