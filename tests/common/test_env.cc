/**
 * @file
 * Tests for the environment-variable configuration helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.hh"

namespace pce {
namespace {

class EnvTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        unsetenv("PCE_TEST_VARIABLE");
    }

    void
    set(const char *value)
    {
        setenv("PCE_TEST_VARIABLE", value, 1);
    }
};

TEST_F(EnvTest, IntFallsBackWhenUnset)
{
    unsetenv("PCE_TEST_VARIABLE");
    EXPECT_EQ(envInt("PCE_TEST_VARIABLE", 42), 42);
}

TEST_F(EnvTest, IntParsesValue)
{
    set("1234");
    EXPECT_EQ(envInt("PCE_TEST_VARIABLE", 42), 1234);
    set("-7");
    EXPECT_EQ(envInt("PCE_TEST_VARIABLE", 42), -7);
}

TEST_F(EnvTest, IntRejectsGarbage)
{
    set("12abc");
    EXPECT_EQ(envInt("PCE_TEST_VARIABLE", 42), 42);
    set("");
    EXPECT_EQ(envInt("PCE_TEST_VARIABLE", 42), 42);
}

TEST_F(EnvTest, DoubleParsesAndFallsBack)
{
    set("2.5");
    EXPECT_DOUBLE_EQ(envDouble("PCE_TEST_VARIABLE", 1.0), 2.5);
    set("not-a-number");
    EXPECT_DOUBLE_EQ(envDouble("PCE_TEST_VARIABLE", 1.0), 1.0);
    unsetenv("PCE_TEST_VARIABLE");
    EXPECT_DOUBLE_EQ(envDouble("PCE_TEST_VARIABLE", 3.5), 3.5);
}

TEST_F(EnvTest, StringPassesThrough)
{
    set("hello");
    EXPECT_EQ(envString("PCE_TEST_VARIABLE", "def"), "hello");
    unsetenv("PCE_TEST_VARIABLE");
    EXPECT_EQ(envString("PCE_TEST_VARIABLE", "def"), "def");
    set("");
    EXPECT_EQ(envString("PCE_TEST_VARIABLE", "def"), "def");
}

} // namespace
} // namespace pce
