/**
 * @file
 * Tests for the persistent worker pool and its dynamic chunk scheduler.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

namespace pce {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, 7, 4, [&](std::size_t begin, std::size_t end,
                                  int slot) {
        EXPECT_GE(slot, 0);
        EXPECT_LT(slot, 4);
        for (std::size_t i = begin; i < end; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossManyRuns)
{
    // The whole point of the pool: many frames, one set of workers.
    ThreadPool pool(2);
    for (int run = 0; run < 50; ++run) {
        std::atomic<std::size_t> sum{0};
        pool.parallelFor(100, 3, 3,
                         [&](std::size_t begin, std::size_t end, int) {
                             std::size_t local = 0;
                             for (std::size_t i = begin; i < end; ++i)
                                 local += i;
                             sum.fetch_add(local);
                         });
        EXPECT_EQ(sum.load(), 100u * 99u / 2u) << "run " << run;
    }
}

TEST(ThreadPool, ParticipantsClampedToPoolSize)
{
    ThreadPool pool(2);
    std::mutex m;
    std::set<int> slots;
    pool.parallelFor(64, 1, 99,
                     [&](std::size_t, std::size_t, int slot) {
                         std::lock_guard<std::mutex> lock(m);
                         slots.insert(slot);
                     });
    // Slots are 0 (caller) plus at most the two pool workers.
    for (const int s : slots)
        EXPECT_LT(s, 3);
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller)
{
    ThreadPool pool(0);
    std::size_t count = 0;
    pool.parallelFor(10, 4, 8,
                     [&](std::size_t begin, std::size_t end, int slot) {
                         EXPECT_EQ(slot, 0);
                         count += end - begin;
                     });
    EXPECT_EQ(count, 10u);
}

TEST(ThreadPool, EmptyRangeMakesNoCalls)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 4, 3, [&](std::size_t, std::size_t, int) {
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, DispatchGivesEachParticipantItsOwnSlot)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> seen(4);
    pool.dispatch(4, [&](int slot) {
        ASSERT_GE(slot, 0);
        ASSERT_LT(slot, 4);
        seen[slot].fetch_add(1);
    });
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(seen[s].load(), 1) << "slot " << s;
}

TEST(ThreadPool, CallerExceptionWaitsForWorkersAndPropagates)
{
    ThreadPool pool(2);
    // Workers hold their first chunk until the caller has taken one:
    // with free-running workers a slow caller thread (e.g. under
    // ThreadSanitizer) can find the range already drained and never
    // reach its throw.
    std::atomic<bool> caller_threw{false};
    std::atomic<int> worker_chunks{0};
    EXPECT_THROW(
        pool.parallelFor(300, 1, 3,
                         [&](std::size_t, std::size_t, int slot) {
                             if (slot == 0) {
                                 caller_threw.store(true);
                                 throw std::runtime_error("caller");
                             }
                             while (!caller_threw.load())
                                 std::this_thread::yield();
                             worker_chunks.fetch_add(1);
                         }),
        std::runtime_error);
    // The pool must be fully quiesced and reusable afterwards.
    std::atomic<std::size_t> count{0};
    pool.parallelFor(50, 4, 3,
                     [&](std::size_t begin, std::size_t end, int) {
                         count.fetch_add(end - begin);
                     });
    EXPECT_EQ(count.load(), 50u);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller)
{
    ThreadPool pool(2);
    for (int attempt = 0; attempt < 20; ++attempt) {
        bool worker_ran = false;
        try {
            pool.parallelFor(300, 1, 3,
                             [&](std::size_t, std::size_t, int slot) {
                                 if (slot != 0) {
                                     worker_ran = true;
                                     throw std::runtime_error("worker");
                                 }
                             });
        } catch (const std::runtime_error &) {
            EXPECT_TRUE(worker_ran);
            return;  // a worker got a chunk and its throw surfaced
        }
        // All 300 chunks may have landed on the caller; retry.
        EXPECT_FALSE(worker_ran);
    }
    GTEST_SKIP() << "workers never claimed a chunk; single-core sched";
}

TEST(ThreadPool, RejectsNegativeWorkerCount)
{
    EXPECT_THROW(ThreadPool(-1), std::invalid_argument);
}

} // namespace
} // namespace pce
