/**
 * @file
 * Tests for the deterministic PRNG and procedural noise primitives.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hh"

namespace pce {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(6);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 7.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(7);
    const int n = 50000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalIsPositive)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, ReseedReproduces)
{
    Rng rng(9);
    const uint64_t first = rng.next();
    rng.next();
    rng.reseed(9);
    EXPECT_EQ(rng.next(), first);
}

TEST(HashNoise, DeterministicAndBounded)
{
    for (int x = -20; x <= 20; x += 7) {
        for (int y = -20; y <= 20; y += 5) {
            const double v = hashNoise(x, y, 42);
            EXPECT_GE(v, 0.0);
            EXPECT_LT(v, 1.0);
            EXPECT_EQ(v, hashNoise(x, y, 42));
        }
    }
}

TEST(HashNoise, SeedChangesField)
{
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += hashNoise(i, i * 3, 1) == hashNoise(i, i * 3, 2);
    EXPECT_LT(same, 3);
}

TEST(ValueNoise, SmoothBetweenLatticePoints)
{
    // At lattice points, value noise equals the hash; between them it
    // interpolates, so it must stay within the hull of the 4 corners.
    const uint64_t seed = 77;
    for (double x = 0.1; x < 3.0; x += 0.37) {
        for (double y = 0.1; y < 3.0; y += 0.41) {
            const double v = valueNoise(x, y, seed);
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(FbmNoise, BoundedAndDeterministic)
{
    for (double x = -2.0; x < 2.0; x += 0.31) {
        const double v = fbmNoise(x, x * 1.7, 5, 4);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        EXPECT_EQ(v, fbmNoise(x, x * 1.7, 5, 4));
    }
}

TEST(FbmNoise, MoreOctavesAddDetail)
{
    // 1-octave fbm equals value noise; more octaves must differ
    // somewhere (they add higher-frequency energy).
    bool differs = false;
    for (double x = 0.0; x < 4.0; x += 0.13) {
        if (std::abs(fbmNoise(x, 1.3, 9, 1) - fbmNoise(x, 1.3, 9, 5)) >
            1e-6)
            differs = true;
    }
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace pce
