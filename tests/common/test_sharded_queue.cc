/**
 * @file
 * ShardedStealQueue: per-lane FIFO hand-out, lane exclusivity, steal
 * routing and counters, per-shard backpressure, close/drain protocol,
 * and a multi-consumer stress run that checks the full contract the
 * sharded encode service is built on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/sharded_queue.hh"

namespace pce {
namespace {

TEST(ShardedStealQueue, OwnShardFifoSingleLane)
{
    ShardedStealQueue<int> q(2, 8);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(q.push(0, 7, i));
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        auto p = q.popForShard(0);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->value, i);
        EXPECT_EQ(p->lane, 7u);
        EXPECT_EQ(p->homeShard, 0u);
        EXPECT_FALSE(p->stolen);
        q.finishLane(7);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(ShardedStealQueue, LaneExclusivityHoldsBackSameLane)
{
    ShardedStealQueue<int> q(1, 8);
    ASSERT_TRUE(q.push(0, 1, 10));
    ASSERT_TRUE(q.push(0, 1, 11));
    ASSERT_TRUE(q.push(0, 2, 20));

    auto first = q.popForShard(0);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->value, 10);

    // Lane 1 is held: the next hand-out must skip 11 and serve lane 2
    // even though 11 is older in the ring.
    auto second = q.popForShard(0);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->value, 20);
    EXPECT_EQ(second->lane, 2u);

    q.finishLane(1);
    auto third = q.popForShard(0);
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(third->value, 11) << "lane 1 resumes in FIFO order";
    q.finishLane(2);
    q.finishLane(1);
}

TEST(ShardedStealQueue, StealServesIdleConsumerAndCounts)
{
    ShardedStealQueue<int> q(2, 8);
    ASSERT_TRUE(q.push(0, 1, 42));
    auto p = q.popForShard(1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->value, 42);
    EXPECT_EQ(p->homeShard, 0u);
    EXPECT_TRUE(p->stolen);
    q.finishLane(1);

    EXPECT_EQ(q.counters(1).stealsBy, 1u);
    EXPECT_EQ(q.counters(0).stolenFrom, 1u);
    EXPECT_EQ(q.counters(0).stealsBy, 0u);
}

TEST(ShardedStealQueue, StealPrefersMostLoadedShard)
{
    ShardedStealQueue<int> q(3, 8);
    ASSERT_TRUE(q.push(0, 1, 100));
    ASSERT_TRUE(q.push(1, 2, 200));
    ASSERT_TRUE(q.push(1, 3, 201));
    // Shard 2 is idle; shard 1 is the deepest backlog, so the steal
    // comes from there (its ring head), not shard 0.
    auto p = q.popForShard(2);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->homeShard, 1u);
    EXPECT_EQ(p->value, 200);
    q.finishLane(p->lane);
}

TEST(ShardedStealQueue, PushRefusedAfterCloseQueueStillDrains)
{
    ShardedStealQueue<int> q(2, 4);
    ASSERT_TRUE(q.push(0, 1, 1));
    ASSERT_TRUE(q.push(1, 2, 2));
    q.close();
    EXPECT_FALSE(q.push(0, 3, 3));

    auto a = q.popForShard(0);
    ASSERT_TRUE(a.has_value());
    q.finishLane(a->lane);
    auto b = q.popForShard(0);  // steals shard 1's leftover
    ASSERT_TRUE(b.has_value());
    EXPECT_TRUE(b->stolen);
    q.finishLane(b->lane);
    EXPECT_FALSE(q.popForShard(0).has_value());
    EXPECT_FALSE(q.popForShard(1).has_value());
}

TEST(ShardedStealQueue, BlockedPushWakesOnClose)
{
    ShardedStealQueue<int> q(2, 1);
    ASSERT_TRUE(q.push(0, 1, 1));
    std::atomic<bool> returned{false};
    std::thread producer([&] {
        EXPECT_FALSE(q.push(0, 2, 2)) << "woken by close, not space";
        returned.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(returned.load()) << "push must block while full";
    q.close();
    producer.join();
    EXPECT_TRUE(returned.load());
}

TEST(ShardedStealQueue, PerShardBackpressureIsIndependent)
{
    // Shard 0 full; shard 1 must still accept without blocking.
    ShardedStealQueue<int> q(2, 1);
    ASSERT_TRUE(q.push(0, 1, 1));
    ASSERT_TRUE(q.push(1, 2, 2));
    q.close();
    auto a = q.popForShard(0);
    ASSERT_TRUE(a.has_value());
    q.finishLane(a->lane);
    auto b = q.popForShard(1);
    ASSERT_TRUE(b.has_value());
    q.finishLane(b->lane);
}

TEST(ShardedStealQueue, ConsumerBlockedOnHeldLaneWakesOnFinish)
{
    // The only queued element's lane is held: a consumer must wait —
    // even after close() — and wake when finishLane releases it (the
    // shutdown-drain path of the service).
    ShardedStealQueue<int> q(1, 4);
    ASSERT_TRUE(q.push(0, 1, 10));
    ASSERT_TRUE(q.push(0, 1, 11));
    auto first = q.popForShard(0);
    ASSERT_TRUE(first.has_value());
    q.close();

    std::atomic<bool> got{false};
    std::thread consumer([&] {
        auto p = q.popForShard(0);
        ASSERT_TRUE(p.has_value());
        EXPECT_EQ(p->value, 11);
        got.store(true);
        q.finishLane(p->lane);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(got.load()) << "lane still held";
    q.finishLane(1);
    consumer.join();
    EXPECT_TRUE(got.load());
    EXPECT_FALSE(q.popForShard(0).has_value());
}

TEST(ShardedStealQueue, PeakDepthPerShardAndAggregate)
{
    ShardedStealQueue<int> q(2, 4);
    ASSERT_TRUE(q.push(0, 1, 1));
    ASSERT_TRUE(q.push(0, 2, 2));
    ASSERT_TRUE(q.push(1, 3, 3));
    EXPECT_EQ(q.counters(0).peakDepth, 2u);
    EXPECT_EQ(q.counters(1).peakDepth, 1u);
    EXPECT_EQ(q.aggregatePeakDepth(), 3u);
    // Draining does not lower peaks.
    for (int i = 0; i < 3; ++i) {
        auto p = q.popForShard(0);
        ASSERT_TRUE(p.has_value());
        q.finishLane(p->lane);
    }
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.counters(0).peakDepth, 2u);
    EXPECT_EQ(q.aggregatePeakDepth(), 3u);
    EXPECT_EQ(q.counters(0).pushes, 2u);
    EXPECT_EQ(q.counters(1).pushes, 1u);
}

TEST(ShardedStealQueue, FinishUnknownLaneThrows)
{
    ShardedStealQueue<int> q(1, 2);
    EXPECT_THROW(q.finishLane(99), std::logic_error);
}

TEST(ShardedStealQueue, StressDeliversEachOnceInLaneOrderExclusively)
{
    // The full service contract under contention: several producers
    // push per-lane sequences to hashed home shards while one
    // consumer per shard pops (own ring + steals). Every element must
    // arrive exactly once, per-lane in push order, and no lane may
    // ever be held by two consumers at once.
    const std::size_t kShards = 4;
    const int kLanes = 8;
    const int kPerLane = 200;
    ShardedStealQueue<std::pair<int, int>> q(kShards, 4);

    std::vector<std::atomic<int>> laneBusy(kLanes);
    std::vector<std::atomic<int>> laneNext(kLanes);
    for (int l = 0; l < kLanes; ++l) {
        laneBusy[l].store(0);
        laneNext[l].store(0);
    }
    std::atomic<int> delivered{0};
    std::atomic<int> violations{0};

    std::vector<std::thread> consumers;
    for (std::size_t s = 0; s < kShards; ++s) {
        consumers.emplace_back([&, s] {
            while (auto p = q.popForShard(s)) {
                const int lane = p->value.first;
                const int seq = p->value.second;
                if (laneBusy[lane].fetch_add(1) != 0)
                    ++violations;  // two holders of one lane
                if (laneNext[lane].fetch_add(1) != seq)
                    ++violations;  // out of lane order
                std::this_thread::yield();
                laneBusy[lane].fetch_sub(1);
                ++delivered;
                q.finishLane(p->lane);
            }
        });
    }

    std::vector<std::thread> producers;
    for (int l = 0; l < kLanes; ++l) {
        producers.emplace_back([&, l] {
            const std::size_t home =
                static_cast<std::size_t>(l) % kShards;
            for (int i = 0; i < kPerLane; ++i)
                ASSERT_TRUE(q.push(home,
                                   static_cast<std::uint64_t>(l),
                                   {l, i}));
        });
    }
    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    EXPECT_EQ(delivered.load(), kLanes * kPerLane);
    EXPECT_EQ(violations.load(), 0);
    for (int l = 0; l < kLanes; ++l)
        EXPECT_EQ(laneNext[l].load(), kPerLane);
}

} // namespace
} // namespace pce
