/**
 * @file
 * BoundedQueue: FIFO order, capacity backpressure, close/drain
 * protocol, and multi-producer stress.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/bounded_queue.hh"

namespace pce {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread)
{
    BoundedQueue<int> q(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 8u);
    EXPECT_FALSE(q.tryPush(99)) << "queue is full";
    for (int i = 0; i < 8; ++i) {
        const auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, WrapAroundKeepsFifo)
{
    // Interleave pushes and pops past the ring's capacity several
    // times over so head/count wrap arithmetic is exercised.
    BoundedQueue<int> q(3);
    int next_push = 0;
    int next_pop = 0;
    for (int round = 0; round < 10; ++round) {
        while (q.tryPush(next_push))
            ++next_push;
        EXPECT_EQ(q.size(), 3u);
        for (int i = 0; i < 2; ++i) {
            const auto v = q.pop();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, next_pop++);
        }
    }
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom)
{
    BoundedQueue<int> q(1);
    EXPECT_TRUE(q.push(1));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
        pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load()) << "push must wait on a full queue";
    EXPECT_EQ(q.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsRemainingItemsThenSignalsEnd)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.push(10));
    EXPECT_TRUE(q.push(11));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(12)) << "push after close must be refused";
    EXPECT_EQ(q.pop().value(), 10);
    EXPECT_EQ(q.pop().value(), 11);
    EXPECT_FALSE(q.pop().has_value()) << "closed and drained";
    EXPECT_FALSE(q.pop().has_value()) << "stays drained";
}

TEST(BoundedQueue, CloseWakesBlockedProducerAndConsumer)
{
    BoundedQueue<int> full(1);
    ASSERT_TRUE(full.push(0));
    BoundedQueue<int> empty(1);
    std::atomic<int> results{0};
    std::thread producer([&] {
        EXPECT_FALSE(full.push(1));  // blocked, then refused by close
        results.fetch_add(1);
    });
    std::thread consumer([&] {
        EXPECT_FALSE(empty.pop().has_value());  // blocked, then ended
        results.fetch_add(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    full.close();
    empty.close();
    producer.join();
    consumer.join();
    EXPECT_EQ(results.load(), 2);
}

TEST(BoundedQueue, MultiProducerDeliversEveryItemExactlyOnce)
{
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> q(7);  // small: forces constant backpressure
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    std::vector<int> seen(kProducers * kPerProducer, 0);
    std::thread consumer([&] {
        for (;;) {
            const auto v = q.pop();
            if (!v.has_value())
                return;
            ++seen[static_cast<std::size_t>(*v)];
        }
    });
    for (auto &t : producers)
        t.join();
    q.close();
    consumer.join();
    for (int i = 0; i < kProducers * kPerProducer; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], 1) << "item " << i;
}

} // namespace
} // namespace pce
