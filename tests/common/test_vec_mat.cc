/**
 * @file
 * Unit tests for the Vec3/Mat3 linear algebra substrate.
 */

#include <gtest/gtest.h>

#include "common/mat3.hh"
#include "common/rng.hh"
#include "common/vec3.hh"

namespace pce {
namespace {

TEST(Vec3, BasicArithmetic)
{
    const Vec3 a(1.0, 2.0, 3.0);
    const Vec3 b(4.0, -5.0, 6.0);
    EXPECT_EQ(a + b, Vec3(5.0, -3.0, 9.0));
    EXPECT_EQ(a - b, Vec3(-3.0, 7.0, -3.0));
    EXPECT_EQ(a * 2.0, Vec3(2.0, 4.0, 6.0));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(-a, Vec3(-1.0, -2.0, -3.0));
    EXPECT_EQ(a / 2.0, Vec3(0.5, 1.0, 1.5));
}

TEST(Vec3, CompoundAssignment)
{
    Vec3 v(1.0, 1.0, 1.0);
    v += Vec3(1.0, 2.0, 3.0);
    EXPECT_EQ(v, Vec3(2.0, 3.0, 4.0));
    v -= Vec3(1.0, 1.0, 1.0);
    EXPECT_EQ(v, Vec3(1.0, 2.0, 3.0));
    v *= 3.0;
    EXPECT_EQ(v, Vec3(3.0, 6.0, 9.0));
}

TEST(Vec3, DotAndCross)
{
    const Vec3 x(1.0, 0.0, 0.0);
    const Vec3 y(0.0, 1.0, 0.0);
    const Vec3 z(0.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
    EXPECT_EQ(x.cross(y), z);
    EXPECT_EQ(y.cross(z), x);
    EXPECT_EQ(z.cross(x), y);
    // Anti-commutativity.
    EXPECT_EQ(x.cross(y), -(y.cross(x)));
}

TEST(Vec3, CrossIsOrthogonal)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const Vec3 a(rng.uniform(-1, 1), rng.uniform(-1, 1),
                     rng.uniform(-1, 1));
        const Vec3 b(rng.uniform(-1, 1), rng.uniform(-1, 1),
                     rng.uniform(-1, 1));
        const Vec3 c = a.cross(b);
        EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
        EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
    }
}

TEST(Vec3, NormAndNormalize)
{
    const Vec3 v(3.0, 4.0, 0.0);
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.squaredNorm(), 25.0);
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
}

TEST(Vec3, IndexAccess)
{
    Vec3 v(1.0, 2.0, 3.0);
    EXPECT_DOUBLE_EQ(v[0], 1.0);
    EXPECT_DOUBLE_EQ(v[1], 2.0);
    EXPECT_DOUBLE_EQ(v[2], 3.0);
    v[1] = 9.0;
    EXPECT_DOUBLE_EQ(v.y, 9.0);
}

TEST(Vec3, ClampAndExtrema)
{
    const Vec3 v(-0.5, 0.5, 1.5);
    EXPECT_EQ(v.clamped(0.0, 1.0), Vec3(0.0, 0.5, 1.0));
    EXPECT_DOUBLE_EQ(v.maxCoeff(), 1.5);
    EXPECT_DOUBLE_EQ(v.minCoeff(), -0.5);
}

TEST(Vec3, CwiseOps)
{
    const Vec3 a(2.0, 3.0, 4.0);
    const Vec3 b(4.0, 6.0, 8.0);
    EXPECT_EQ(a.cwiseMul(b), Vec3(8.0, 18.0, 32.0));
    EXPECT_EQ(b.cwiseDiv(a), Vec3(2.0, 2.0, 2.0));
}

TEST(Vec3, Lerp)
{
    const Vec3 a(0.0, 0.0, 0.0);
    const Vec3 b(1.0, 2.0, 4.0);
    EXPECT_EQ(lerp(a, b, 0.0), a);
    EXPECT_EQ(lerp(a, b, 1.0), b);
    EXPECT_EQ(lerp(a, b, 0.5), Vec3(0.5, 1.0, 2.0));
}

TEST(Mat3, IdentityBehaviour)
{
    const Mat3 id = Mat3::identity();
    const Vec3 v(1.0, -2.0, 3.0);
    EXPECT_EQ(id * v, v);
    EXPECT_DOUBLE_EQ(id.determinant(), 1.0);
}

TEST(Mat3, MatrixVectorProduct)
{
    const Mat3 m(1, 2, 3,
                 4, 5, 6,
                 7, 8, 10);
    const Vec3 v(1.0, 1.0, 1.0);
    EXPECT_EQ(m * v, Vec3(6.0, 15.0, 25.0));
}

TEST(Mat3, MatrixMatrixProduct)
{
    const Mat3 a(1, 2, 0,
                 0, 1, 0,
                 0, 0, 1);
    const Mat3 b(1, 0, 0,
                 3, 1, 0,
                 0, 0, 1);
    const Mat3 c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 3.0);
}

TEST(Mat3, TransposeInvolution)
{
    const Mat3 m(1, 2, 3,
                 4, 5, 6,
                 7, 8, 9);
    const Mat3 t = m.transpose();
    EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
    const Mat3 tt = t.transpose();
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(tt(r, c), m(r, c));
}

TEST(Mat3, InverseRoundTrip)
{
    Rng rng(7);
    int tested = 0;
    while (tested < 50) {
        Mat3 m;
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c)
                m(r, c) = rng.uniform(-2.0, 2.0);
        if (std::abs(m.determinant()) < 1e-3)
            continue;  // skip near-singular draws
        const Mat3 inv = m.inverse();
        const Mat3 prod = m * inv;
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t c = 0; c < 3; ++c)
                EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
        ++tested;
    }
}

TEST(Mat3, SingularInverseThrows)
{
    const Mat3 m(1, 2, 3,
                 2, 4, 6,
                 0, 0, 1);
    EXPECT_THROW(m.inverse(), std::domain_error);
}

TEST(Mat3, DiagonalConstruction)
{
    const Mat3 d = Mat3::diagonal(Vec3(2.0, 3.0, 4.0));
    EXPECT_EQ(d * Vec3(1.0, 1.0, 1.0), Vec3(2.0, 3.0, 4.0));
    EXPECT_DOUBLE_EQ(d.determinant(), 24.0);
}

TEST(Mat3, RowColAccessors)
{
    const Mat3 m(1, 2, 3,
                 4, 5, 6,
                 7, 8, 9);
    EXPECT_EQ(m.row(1), Vec3(4.0, 5.0, 6.0));
    EXPECT_EQ(m.col(2), Vec3(3.0, 6.0, 9.0));
}

} // namespace
} // namespace pce
