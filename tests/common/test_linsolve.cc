/**
 * @file
 * Tests for the dense Cholesky / ridge least-squares solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/linsolve.hh"
#include "common/rng.hh"

namespace pce {
namespace {

DenseMatrix
randomMatrix(std::size_t rows, std::size_t cols, Rng &rng)
{
    DenseMatrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniform(-1.0, 1.0);
    return m;
}

TEST(CholeskySolve, IdentitySystem)
{
    DenseMatrix a(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        a(i, i) = 1.0;
    const std::vector<double> b{1.0, 2.0, 3.0};
    const auto x = choleskySolve(a, b);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x[i], b[i], 1e-12);
}

TEST(CholeskySolve, RandomSpdSystems)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 2 + rng.uniformInt(20);
        const DenseMatrix g = randomMatrix(n + 4, n, rng);
        // Gram matrix of a tall random matrix is SPD (w.h.p.), plus a
        // small diagonal for conditioning.
        DenseMatrix a = g.gram();
        for (std::size_t i = 0; i < n; ++i)
            a(i, i) += 0.1;

        std::vector<double> want(n);
        for (auto &v : want)
            v = rng.uniform(-2.0, 2.0);

        // b = A * want.
        std::vector<double> b(n, 0.0);
        for (std::size_t r = 0; r < n; ++r)
            for (std::size_t c = 0; c < n; ++c)
                b[r] += a(r, c) * want[c];

        const auto x = choleskySolve(a, b);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(x[i], want[i], 1e-8);
    }
}

TEST(CholeskySolve, RejectsIndefinite)
{
    DenseMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(1, 1) = -1.0;
    EXPECT_THROW(choleskySolve(a, {1.0, 1.0}), std::domain_error);
}

TEST(CholeskySolve, RejectsShapeMismatch)
{
    DenseMatrix a(2, 3);
    EXPECT_THROW(choleskySolve(a, {1.0, 1.0}), std::invalid_argument);
}

TEST(RidgeLeastSquares, RecoversExactSolutionNoiseFree)
{
    Rng rng(4);
    const std::size_t rows = 40;
    const std::size_t cols = 6;
    const DenseMatrix a = randomMatrix(rows, cols, rng);
    std::vector<double> want(cols);
    for (auto &v : want)
        v = rng.uniform(-1.0, 1.0);
    const auto b = a.times(want);

    const auto x = ridgeLeastSquares(a, b, 1e-12);
    for (std::size_t i = 0; i < cols; ++i)
        EXPECT_NEAR(x[i], want[i], 1e-6);
}

TEST(RidgeLeastSquares, RegularizationShrinksNorm)
{
    Rng rng(5);
    const DenseMatrix a = randomMatrix(30, 5, rng);
    std::vector<double> b(30);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);

    auto norm = [](const std::vector<double> &v) {
        double s = 0.0;
        for (double x : v)
            s += x * x;
        return std::sqrt(s);
    };
    const auto weak = ridgeLeastSquares(a, b, 1e-9);
    const auto strong = ridgeLeastSquares(a, b, 100.0);
    EXPECT_LT(norm(strong), norm(weak));
}

TEST(DenseMatrix, GramIsSymmetric)
{
    Rng rng(6);
    const DenseMatrix a = randomMatrix(10, 7, rng);
    const DenseMatrix g = a.gram();
    ASSERT_EQ(g.rows(), 7u);
    ASSERT_EQ(g.cols(), 7u);
    for (std::size_t i = 0; i < 7; ++i)
        for (std::size_t j = 0; j < 7; ++j)
            EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
}

TEST(DenseMatrix, TransposeTimesMatchesManual)
{
    DenseMatrix a(2, 2);
    a(0, 0) = 1.0;
    a(0, 1) = 2.0;
    a(1, 0) = 3.0;
    a(1, 1) = 4.0;
    const auto v = a.transposeTimes({1.0, 1.0});
    EXPECT_DOUBLE_EQ(v[0], 4.0);
    EXPECT_DOUBLE_EQ(v[1], 6.0);
}

} // namespace
} // namespace pce
