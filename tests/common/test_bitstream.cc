/**
 * @file
 * Unit and property tests for the MSB/LSB bit writers and readers.
 */

#include <gtest/gtest.h>

#include "common/bitstream.hh"
#include "common/rng.hh"

namespace pce {
namespace {

TEST(BitWriter, SingleByteMsbFirst)
{
    BitWriter bw;
    bw.putBits(0b1, 1);
    bw.putBits(0b01, 2);
    bw.putBits(0b10110, 5);
    ASSERT_EQ(bw.bitCount(), 8u);
    ASSERT_EQ(bw.bytes().size(), 1u);
    EXPECT_EQ(bw.bytes()[0], 0b10110110);
}

TEST(BitWriter, WidthZeroWritesNothing)
{
    BitWriter bw;
    bw.putBits(0xff, 0);
    EXPECT_EQ(bw.bitCount(), 0u);
    EXPECT_TRUE(bw.bytes().empty());
}

TEST(BitWriter, AlignToByte)
{
    BitWriter bw;
    bw.putBits(0b101, 3);
    bw.alignToByte();
    EXPECT_EQ(bw.bitCount(), 8u);
    EXPECT_EQ(bw.bytes()[0], 0b10100000);
    bw.alignToByte();  // idempotent at boundary
    EXPECT_EQ(bw.bitCount(), 8u);
}

TEST(BitWriter, ValueBitsAboveWidthIgnored)
{
    BitWriter bw;
    bw.putBits(0xfffffff5, 4);  // only low nibble (0101) kept
    bw.alignToByte();
    EXPECT_EQ(bw.bytes()[0], 0b01010000);
}

TEST(BitRoundTrip, MsbRandomFields)
{
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::pair<uint32_t, unsigned>> fields;
        BitWriter bw;
        for (int i = 0; i < 200; ++i) {
            const unsigned width =
                static_cast<unsigned>(rng.uniformInt(33));
            const uint32_t value = static_cast<uint32_t>(
                rng.next() &
                (width == 32 ? 0xffffffffu : ((1u << width) - 1)));
            fields.emplace_back(value, width);
            bw.putBits(value, width);
        }
        const std::size_t bits = bw.bitCount();
        BitReader br(bw.bytes());
        for (const auto &[value, width] : fields)
            EXPECT_EQ(br.getBits(width), value);
        EXPECT_EQ(br.bitPosition(), bits);
        EXPECT_FALSE(br.exhausted());
    }
}

TEST(BitReader, ExhaustionDetected)
{
    BitWriter bw;
    bw.putBits(0xab, 8);
    BitReader br(bw.bytes());
    EXPECT_EQ(br.getBits(8), 0xabu);
    EXPECT_FALSE(br.exhausted());
    br.getBits(1);
    EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, AlignSkipsPartialByte)
{
    BitWriter bw;
    bw.putBits(0b111, 3);
    bw.putBits(0xcd, 8);
    bw.alignToByte();
    BitReader br(bw.bytes());
    br.getBits(3);
    br.alignToByte();
    EXPECT_EQ(br.bitPosition(), 8u);
}

TEST(BitReader, SeekRepositionsMidStream)
{
    BitWriter bw;
    bw.putBits(0xdead, 16);
    bw.putBits(0x3, 2);
    bw.putBits(0x1cb, 9);
    bw.alignToByte();
    BitReader br(bw.bytes());
    // Seek to an unaligned position and read across byte seams.
    br.seek(18);
    EXPECT_EQ(br.bitPosition(), 18u);
    EXPECT_EQ(br.getBits(9), 0x1cbu);
    // Seeking backwards re-reads the same field.
    br.seek(16);
    EXPECT_EQ(br.getBits(2), 0x3u);
    EXPECT_FALSE(br.exhausted());
    // Past-the-end seeks clamp; the next read exhausts.
    br.seek(1000);
    EXPECT_EQ(br.bitPosition(), bw.bytes().size() * 8);
    br.getBits(1);
    EXPECT_TRUE(br.exhausted());
}

TEST(BitReader, SeekMatchesSequentialReads)
{
    // Reading field k after seek(offset_k) must equal the k-th value
    // of a straight sequential read — the contract the parallel BD
    // decoder's per-chunk readers rely on.
    Rng rng(21);
    BitWriter bw;
    std::vector<std::pair<uint32_t, unsigned>> fields;
    std::vector<std::size_t> offsets;
    for (int i = 0; i < 300; ++i) {
        const unsigned width =
            1 + static_cast<unsigned>(rng.uniformInt(24));
        const uint32_t value =
            static_cast<uint32_t>(rng.next() & ((1u << width) - 1));
        offsets.push_back(bw.bitCount());
        fields.emplace_back(value, width);
        bw.putBits(value, width);
    }
    BitReader br(bw.bytes());
    for (std::size_t k = 0; k < fields.size(); k += 7) {
        br.seek(offsets[k]);
        EXPECT_EQ(br.getBits(fields[k].second), fields[k].first);
    }
}

TEST(BitReader, PartialReadPastEndZeroFillsLowBits)
{
    // Reading more bits than remain yields the available bits shifted
    // up with zeros below (the pre-chunking semantics, preserved).
    BitWriter bw;
    bw.putBits(0b101, 3);
    bw.alignToByte();  // buffer: 1010'0000
    BitReader br(bw.bytes());
    br.seek(5);  // 3 zero bits remain
    EXPECT_EQ(br.getBits(8), 0b000'00000u);
    EXPECT_TRUE(br.exhausted());

    BitWriter bw2;
    bw2.putBits(0xff, 8);
    BitReader br2(bw2.bytes());
    br2.seek(4);
    EXPECT_EQ(br2.getBits(8), 0b1111'0000u);
    EXPECT_TRUE(br2.exhausted());
    EXPECT_EQ(br2.bitPosition(), 8u);
    // Reads at the hard end return zero without advancing.
    EXPECT_EQ(br2.getBits(32), 0u);
    EXPECT_EQ(br2.bitPosition(), 8u);
}

TEST(LsbBitWriter, SingleByteLsbFirst)
{
    LsbBitWriter bw;
    bw.putBits(0b1, 1);    // bit 0
    bw.putBits(0b01, 2);   // bits 1-2
    bw.putBits(0b10110, 5);  // bits 3-7
    ASSERT_EQ(bw.bytes().size(), 1u);
    // Bits assemble from the LSB up: 1, then 1,0, then 0,1,1,0,1.
    EXPECT_EQ(bw.bytes()[0], 0b10110011);
}

TEST(LsbRoundTrip, RandomFields)
{
    Rng rng(13);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::pair<uint32_t, unsigned>> fields;
        LsbBitWriter bw;
        for (int i = 0; i < 200; ++i) {
            const unsigned width =
                1 + static_cast<unsigned>(rng.uniformInt(24));
            const uint32_t value =
                static_cast<uint32_t>(rng.next() & ((1u << width) - 1));
            fields.emplace_back(value, width);
            bw.putBits(value, width);
        }
        LsbBitReader br(bw.bytes());
        for (const auto &[value, width] : fields)
            EXPECT_EQ(br.getBits(width), value);
        EXPECT_FALSE(br.exhausted());
    }
}

TEST(LsbBitWriter, AlignedByteHelpers)
{
    LsbBitWriter bw;
    bw.putBits(0b101, 3);
    bw.alignToByte();
    bw.putAlignedByte(0x5a);
    LsbBitReader br(bw.bytes());
    EXPECT_EQ(br.getBits(3), 0b101u);
    EXPECT_EQ(br.getAlignedByte(), 0x5a);
}

TEST(BitWriter, TakeResetsState)
{
    BitWriter bw;
    bw.putBits(0xff, 8);
    auto bytes = bw.take();
    EXPECT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bw.bitCount(), 0u);
}

TEST(BitWriter, ByteCountRoundsUp)
{
    BitWriter bw;
    bw.putBits(0, 9);
    EXPECT_EQ(bw.byteCount(), 2u);
    EXPECT_EQ(bw.bitCount(), 9u);
}

TEST(BitWriter, AppendBitsMatchesDirectWrites)
{
    // Splicing independently written streams at every head/tail bit
    // phase must equal one straight-through write sequence.
    Rng rng(77);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<std::pair<uint32_t, unsigned>> fields;
        const int n_fields =
            1 + static_cast<int>(rng.uniformInt(40));
        for (int i = 0; i < n_fields; ++i) {
            const unsigned width =
                1 + static_cast<unsigned>(rng.uniformInt(24));
            const uint32_t value = static_cast<uint32_t>(
                rng.next() & ((1u << width) - 1));
            fields.emplace_back(value, width);
        }
        const std::size_t split = static_cast<std::size_t>(
            rng.uniformInt(static_cast<uint64_t>(n_fields)));

        BitWriter direct;
        BitWriter head;
        BitWriter tail;
        for (std::size_t i = 0; i < fields.size(); ++i) {
            direct.putBits(fields[i].first, fields[i].second);
            (i < split ? head : tail)
                .putBits(fields[i].first, fields[i].second);
        }
        BitWriter spliced;
        spliced.appendBits(head.bytes().data(), head.bitCount());
        spliced.appendBits(tail.bytes().data(), tail.bitCount());
        EXPECT_EQ(spliced.bitCount(), direct.bitCount());
        EXPECT_EQ(spliced.bytes(), direct.bytes()) << "trial " << trial;
    }
}

TEST(BitWriter, ReserveDoesNotChangeContent)
{
    BitWriter bw;
    bw.putBits(0xabc, 12);
    const std::size_t bits = bw.bitCount();
    bw.reserve(100000);
    EXPECT_EQ(bw.bitCount(), bits);
    EXPECT_GE(bw.bytes().capacity(), (bits + 100000 + 7) / 8);
    bw.putBits(0x5, 3);
    BitReader br(bw.bytes());
    EXPECT_EQ(br.getBits(12), 0xabcu);
    EXPECT_EQ(br.getBits(3), 0x5u);
}

TEST(BitWriter, ClearKeepsCapacityAndZeroes)
{
    BitWriter bw;
    bw.putBits(0xffffffff, 32);
    bw.clear();
    EXPECT_EQ(bw.bitCount(), 0u);
    bw.putBits(0, 4);
    // Freshly written padding after clear() must be zero, not stale.
    EXPECT_EQ(bw.bytes()[0], 0u);
}

TEST(BitWriter, ResetAdoptsBufferCapacity)
{
    std::vector<uint8_t> buf;
    buf.reserve(1024);
    const uint8_t *data = buf.data();
    BitWriter bw;
    bw.reset(std::move(buf));
    bw.putBits(0x12, 8);
    auto back = bw.take();
    EXPECT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0], 0x12);
    EXPECT_EQ(back.data(), data);  // same allocation round-tripped
    EXPECT_GE(back.capacity(), 1024u);
}

} // namespace
} // namespace pce
