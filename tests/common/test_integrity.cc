/**
 * @file
 * Known-answer tests for CRC-32 and Adler-32, plus detection-property
 * tests for the fast hash64 used by the integrity seals.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/integrity.hh"

namespace pce {
namespace {

uint32_t
crcOf(const std::string &s)
{
    return crc32(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

uint32_t
adlerOf(const std::string &s)
{
    return adler32(reinterpret_cast<const uint8_t *>(s.data()),
                   s.size());
}

TEST(Crc32, StandardTestVector)
{
    // The canonical CRC-32 check value.
    EXPECT_EQ(crcOf("123456789"), 0xCBF43926u);
}

TEST(Crc32, EmptyInput)
{
    EXPECT_EQ(crcOf(""), 0x00000000u);
}

TEST(Crc32, KnownStrings)
{
    EXPECT_EQ(crcOf("a"), 0xE8B7BE43u);
    EXPECT_EQ(crcOf("abc"), 0x352441C2u);
    EXPECT_EQ(crcOf("The quick brown fox jumps over the lazy dog"),
              0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    const std::string s = "incremental-checksum-data-0123456789";
    Crc32 inc;
    inc.update(reinterpret_cast<const uint8_t *>(s.data()), 10);
    inc.update(reinterpret_cast<const uint8_t *>(s.data()) + 10,
               s.size() - 10);
    EXPECT_EQ(inc.value(), crcOf(s));
}

TEST(Crc32, PngIendChunk)
{
    // The IEND chunk CRC is fixed in every PNG file: type bytes only.
    const uint8_t type[4] = {'I', 'E', 'N', 'D'};
    EXPECT_EQ(crc32(type, 4), 0xAE426082u);
}

TEST(Adler32, StandardTestVectors)
{
    // RFC 1950 examples / well-known values.
    EXPECT_EQ(adlerOf(""), 1u);
    EXPECT_EQ(adlerOf("a"), 0x00620062u);
    EXPECT_EQ(adlerOf("abc"), 0x024d0127u);
    EXPECT_EQ(adlerOf("Wikipedia"), 0x11E60398u);
}

TEST(Adler32, IncrementalMatchesOneShot)
{
    const std::string s(10000, 'x');
    Adler32 inc;
    inc.update(reinterpret_cast<const uint8_t *>(s.data()), 5000);
    inc.update(reinterpret_cast<const uint8_t *>(s.data()) + 5000, 5000);
    EXPECT_EQ(inc.value(), adlerOf(s));
}

TEST(Adler32, ModularReductionOnLongInput)
{
    // Long 0xff-runs force many modular reductions.
    const std::string s(100000, '\xff');
    const uint32_t v = adlerOf(s);
    const uint32_t a = v & 0xffff;
    const uint32_t b = v >> 16;
    EXPECT_LT(a, 65521u);
    EXPECT_LT(b, 65521u);
}

TEST(Hash64, DeterministicAndLengthSensitive)
{
    const std::string s = "hash64-determinism-vector";
    const uint64_t h1 = hash64(s.data(), s.size());
    const uint64_t h2 = hash64(s.data(), s.size());
    EXPECT_EQ(h1, h2);
    EXPECT_NE(h1, hash64(s.data(), s.size() - 1));
    EXPECT_NE(hash64("", 0), 0u);
}

TEST(Hash64, EverySingleBitFlipDetected)
{
    // The seals rely on hash64 catching any single-bit upset; the
    // per-word mix is bijective so this must hold for every position,
    // including the ragged tail beyond the last full 8-byte word.
    std::vector<uint8_t> buf(37);
    for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<uint8_t>(i * 29 + 3);
    const uint64_t golden = hash64(buf.data(), buf.size());
    for (std::size_t byte = 0; byte < buf.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            buf[byte] ^= static_cast<uint8_t>(1u << bit);
            EXPECT_NE(hash64(buf.data(), buf.size()), golden)
                << "undetected flip at byte " << byte << " bit " << bit;
            buf[byte] ^= static_cast<uint8_t>(1u << bit);
        }
    }
    EXPECT_EQ(hash64(buf.data(), buf.size()), golden);
}

TEST(Hash64, PositionSensitive)
{
    // Swapping two equal-content words must change the hash: the
    // position salt makes identical words at different offsets
    // contribute differently.
    std::vector<uint64_t> words = {7, 0, 0, 9};
    const uint64_t before = hash64(words.data(), words.size() * 8);
    std::swap(words[0], words[3]);
    EXPECT_NE(hash64(words.data(), words.size() * 8), before);
}

TEST(Hash64, DoubleArraysHashByRepresentation)
{
    // The gaze/ecc seals hash raw double storage; +0.0 and -0.0 differ
    // in representation and must be distinguished.
    std::vector<double> a = {1.5, 0.0, -3.25};
    std::vector<double> b = {1.5, -0.0, -3.25};
    EXPECT_NE(hash64(a.data(), a.size() * sizeof(double)),
              hash64(b.data(), b.size() * sizeof(double)));
}

} // namespace
} // namespace pce
