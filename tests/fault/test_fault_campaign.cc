/**
 * @file
 * Campaign smoke: a small deterministic sweep over every surface must
 * account for every trial, show the hardened defenses eliminating
 * silent corruption on the surfaces they cover, and replay exactly
 * from the same config (the property that makes any campaign finding
 * debuggable).
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"

namespace pce {
namespace {

FaultCampaignConfig
smokeConfig()
{
    FaultCampaignConfig cfg;
    cfg.width = 64;
    cfg.height = 64;
    cfg.trialsPerSurface = 12;
    cfg.flipCounts = {1, 3};
    cfg.seed = 1234;
    return cfg;
}

TEST(FaultCampaign, EveryTrialAccounted)
{
    const FaultCampaignReport report = runFaultCampaign(smokeConfig());
    // 7 surfaces x 2 flip counts x 2 configurations.
    EXPECT_EQ(report.outcomes.size(), 28u);
    for (const SurfaceOutcome &o : report.outcomes) {
        EXPECT_EQ(o.trials, 12) << faultSurfaceName(o.surface);
        EXPECT_EQ(o.detected + o.silentCorrupt + o.benign + o.crashes,
                  o.trials)
            << faultSurfaceName(o.surface) << " flips=" << o.flips
            << " hardened=" << o.hardened;
    }
}

TEST(FaultCampaign, HardenedSurfacesHaveNoSilentCorruption)
{
    const FaultCampaignReport report = runFaultCampaign(smokeConfig());
    for (const FaultSurface s :
         {FaultSurface::BdStream, FaultSurface::QueueSlot,
          FaultSurface::EccMap, FaultSurface::FrameOutput,
          FaultSurface::NetPacket}) {
        const SurfaceOutcome agg = report.aggregate(s, true);
        EXPECT_GT(agg.trials, 0) << faultSurfaceName(s);
        EXPECT_EQ(agg.silentCorrupt, 0)
            << faultSurfaceName(s)
            << ": hardened config delivered corrupt output";
        EXPECT_EQ(agg.crashes, 0) << faultSurfaceName(s);
        EXPECT_DOUBLE_EQ(agg.coverage(), 1.0) << faultSurfaceName(s);
    }
}

TEST(FaultCampaign, HardeningImprovesOnBaseline)
{
    const FaultCampaignReport report = runFaultCampaign(smokeConfig());
    for (const FaultSurface s :
         {FaultSurface::QueueSlot, FaultSurface::EccMap,
          FaultSurface::FrameOutput}) {
        const SurfaceOutcome base = report.aggregate(s, false);
        const SurfaceOutcome hard = report.aggregate(s, true);
        // These surfaces have no baseline defense at all: flips that
        // matter get through silently; hardened detects every one.
        EXPECT_GT(base.silentCorrupt, 0) << faultSurfaceName(s);
        EXPECT_LT(hard.silentRate(), base.silentRate())
            << faultSurfaceName(s);
        EXPECT_GT(hard.coverage(), base.coverage())
            << faultSurfaceName(s);
    }
    // BdStream and NetPacket have a real baseline defense (the
    // decoder's walk-validation, run per packet on the wire path),
    // but the CRC layer must still not be worse.
    for (const FaultSurface s :
         {FaultSurface::BdStream, FaultSurface::NetPacket}) {
        const SurfaceOutcome base = report.aggregate(s, false);
        const SurfaceOutcome hard = report.aggregate(s, true);
        EXPECT_LE(hard.silentCorrupt, base.silentCorrupt)
            << faultSurfaceName(s);
        EXPECT_GE(hard.coverage(), base.coverage())
            << faultSurfaceName(s);
    }
}

TEST(FaultCampaign, DeterministicAcrossRuns)
{
    const FaultCampaignConfig cfg = smokeConfig();
    const FaultCampaignReport a = runFaultCampaign(cfg);
    const FaultCampaignReport b = runFaultCampaign(cfg);
    ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
    for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
        const SurfaceOutcome &oa = a.outcomes[i];
        const SurfaceOutcome &ob = b.outcomes[i];
        EXPECT_EQ(oa.detected, ob.detected);
        EXPECT_EQ(oa.silentCorrupt, ob.silentCorrupt);
        EXPECT_EQ(oa.benign, ob.benign);
        EXPECT_EQ(oa.crashes, ob.crashes);
    }
}

TEST(FaultCampaign, FindLocatesSweptCombinations)
{
    const FaultCampaignReport report = runFaultCampaign(smokeConfig());
    const SurfaceOutcome *o =
        report.find(FaultSurface::BdStream, 3, true);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->flips, 3);
    EXPECT_TRUE(o->hardened);
    EXPECT_EQ(report.find(FaultSurface::BdStream, 7, true), nullptr);
}

TEST(FaultCampaign, RejectsNonsenseConfigs)
{
    FaultCampaignConfig cfg = smokeConfig();
    cfg.trialsPerSurface = 0;
    EXPECT_THROW(runFaultCampaign(cfg), std::invalid_argument);
    cfg = smokeConfig();
    cfg.flipCounts.clear();
    EXPECT_THROW(runFaultCampaign(cfg), std::invalid_argument);
    cfg = smokeConfig();
    cfg.width = 0;
    EXPECT_THROW(runFaultCampaign(cfg), std::invalid_argument);
}

} // namespace
} // namespace pce
