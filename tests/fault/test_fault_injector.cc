/**
 * @file
 * The injector itself must be trustworthy before any campaign number
 * is: seeded determinism (replayability), surface targeting (flips
 * land only where planned), and schedule hygiene (distinct, in-bounds
 * positions; exact flip counts).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <set>
#include <vector>

#include "fault/fault_injector.hh"

namespace pce {
namespace {

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultInjector a(42);
    FaultInjector b(42);
    for (int round = 0; round < 8; ++round) {
        const auto pa = a.plan(1000, 3);
        const auto pb = b.plan(1000, 3);
        EXPECT_EQ(pa, pb) << "diverged at round " << round;
    }
}

TEST(FaultInjector, DifferentSeedsDifferentSchedules)
{
    FaultInjector a(1);
    FaultInjector b(2);
    // 3 positions out of 8000 bits: a collision of the whole schedule
    // across seeds would be astronomically unlikely.
    EXPECT_NE(a.plan(1000, 3), b.plan(1000, 3));
}

TEST(FaultInjector, PlanPositionsDistinctAndInBounds)
{
    FaultInjector inj(7);
    const std::size_t size = 16;
    const auto plan = inj.plan(size, 64);
    EXPECT_EQ(plan.size(), 64u);
    std::set<std::pair<std::size_t, int>> seen;
    for (const BitFlip &f : plan) {
        EXPECT_LT(f.byte, size);
        EXPECT_GE(f.bit, 0);
        EXPECT_LT(f.bit, 8);
        EXPECT_TRUE(seen.insert({f.byte, f.bit}).second)
            << "duplicate flip at byte " << f.byte << " bit " << f.bit;
    }
}

TEST(FaultInjector, FlipCountClampedToBufferBits)
{
    FaultInjector inj(3);
    // 2 bytes = 16 bits; asking for 100 flips must yield exactly 16.
    EXPECT_EQ(inj.plan(2, 100).size(), 16u);
    EXPECT_TRUE(inj.plan(0, 5).empty());
    EXPECT_TRUE(inj.plan(10, 0).empty());
}

TEST(FaultInjector, InjectFlipsExactlyThePlannedBits)
{
    // Surface targeting: snapshot-compare the buffer — only the
    // returned schedule's bits may differ, everything else identical.
    std::vector<std::uint8_t> buf(256);
    std::iota(buf.begin(), buf.end(), 0);
    const std::vector<std::uint8_t> before = buf;

    FaultInjector inj(99);
    const auto schedule = inj.inject(buf, 5);
    EXPECT_EQ(schedule.size(), 5u);

    std::vector<std::uint8_t> expectedDelta(buf.size(), 0);
    for (const BitFlip &f : schedule)
        expectedDelta[f.byte] ^= static_cast<std::uint8_t>(1u << f.bit);
    for (std::size_t i = 0; i < buf.size(); ++i)
        EXPECT_EQ(static_cast<std::uint8_t>(buf[i] ^ before[i]),
                  expectedDelta[i])
            << "unplanned modification at byte " << i;
}

TEST(FaultInjector, InjectTwiceRestoresTheBuffer)
{
    // XOR semantics: replaying the same schedule undoes it — the
    // property campaigns use to reuse one golden copy across trials.
    std::vector<std::uint8_t> buf(64, 0xA5);
    const std::vector<std::uint8_t> before = buf;
    FaultInjector inj(5);
    const auto schedule = inj.plan(buf.size(), 7);
    for (int round = 0; round < 2; ++round)
        for (const BitFlip &f : schedule)
            buf[f.byte] ^= static_cast<std::uint8_t>(1u << f.bit);
    EXPECT_EQ(buf, before);
}

TEST(FaultInjector, InjectDoublesTargetsRawRepresentation)
{
    std::vector<double> values(32, 1.0);
    const std::vector<double> before = values;
    FaultInjector inj(11);
    const auto schedule =
        inj.injectDoubles(values.data(), values.size(), 1);
    ASSERT_EQ(schedule.size(), 1u);
    // Exactly one double's representation changed.
    int changed = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        std::uint64_t a, b;
        std::memcpy(&a, &values[i], 8);
        std::memcpy(&b, &before[i], 8);
        if (a != b) {
            ++changed;
            EXPECT_EQ(schedule[0].byte / 8, i);
            // Exactly one bit differs within it.
            EXPECT_EQ(__builtin_popcountll(a ^ b), 1);
        }
    }
    EXPECT_EQ(changed, 1);
}

TEST(FaultSurface, NamesAreStable)
{
    // Bench records and the schema test key on these strings.
    EXPECT_STREQ(faultSurfaceName(FaultSurface::TileScratch),
                 "tile_scratch");
    EXPECT_STREQ(faultSurfaceName(FaultSurface::BdStream),
                 "bd_stream");
    EXPECT_STREQ(faultSurfaceName(FaultSurface::PngPayload),
                 "png_payload");
    EXPECT_STREQ(faultSurfaceName(FaultSurface::QueueSlot),
                 "queue_slot");
    EXPECT_STREQ(faultSurfaceName(FaultSurface::EccMap), "ecc_map");
    EXPECT_STREQ(faultSurfaceName(FaultSurface::NetPacket),
                 "net_packet");
    EXPECT_STREQ(faultSurfaceName(FaultSurface::FrameOutput),
                 "frame_output");
}

} // namespace
} // namespace pce
