/**
 * @file
 * Tests for the discrimination-ellipsoid model (paper Sec. 2.1).
 */

#include <gtest/gtest.h>

#include "color/dkl.hh"
#include "common/rng.hh"
#include "perception/discrimination.hh"

namespace pce {
namespace {

TEST(Ellipsoid, MembershipAtCenterAndSurface)
{
    Ellipsoid e;
    e.centerDkl = Vec3(0.1, -0.2, 0.3);
    e.semiAxes = Vec3(0.01, 0.02, 0.03);
    EXPECT_DOUBLE_EQ(e.membership(e.centerDkl), 0.0);
    // Surface point along the first axis.
    EXPECT_NEAR(e.membership(e.centerDkl + Vec3(0.01, 0.0, 0.0)), 1.0,
                1e-12);
    EXPECT_TRUE(e.contains(e.centerDkl + Vec3(0.01, 0.0, 0.0)));
    EXPECT_FALSE(e.contains(e.centerDkl + Vec3(0.011, 0.0, 0.0)));
}

TEST(AnalyticModel, AxesArePositiveEverywhere)
{
    const AnalyticDiscriminationModel model;
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Vec3 rgb(rng.uniform(), rng.uniform(), rng.uniform());
        const Vec3 axes = model.semiAxes(rgb, rng.uniform(0.0, 60.0));
        EXPECT_GT(axes.minCoeff(), 0.0);
    }
}

class EccentricityMonotonicTest
    : public ::testing::TestWithParam<double>  // luminance of test color
{};

TEST_P(EccentricityMonotonicTest, AxesGrowWithEccentricity)
{
    // Paper Fig. 2: discrimination weakens (ellipsoids grow) with
    // eccentricity, for every color.
    const AnalyticDiscriminationModel model;
    const double l = GetParam();
    const Vec3 rgb(l, l, l);
    Vec3 prev = model.semiAxes(rgb, 0.0);
    for (double ecc = 2.0; ecc <= 40.0; ecc += 2.0) {
        const Vec3 axes = model.semiAxes(rgb, ecc);
        EXPECT_GT(axes.x, prev.x);
        EXPECT_GT(axes.y, prev.y);
        EXPECT_GT(axes.z, prev.z);
        prev = axes;
    }
}

INSTANTIATE_TEST_SUITE_P(Luminances, EccentricityMonotonicTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 1.0));

TEST(AnalyticModel, RgbEllipsoidElongatedAlongBlueNotGreen)
{
    // The Sec. 3.2 relaxation rests on ellipsoids being elongated along
    // Red or Blue in linear RGB, and tightest along Green.
    const AnalyticDiscriminationModel model;
    const Mat3 &inv = dkl2rgbMatrix();
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const Vec3 rgb(rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                       rng.uniform(0.1, 0.9));
        const Vec3 axes = model.semiAxes(rgb, rng.uniform(5.0, 30.0));
        Vec3 extent;
        for (std::size_t k = 0; k < 3; ++k)
            extent[k] = inv.row(k).cwiseMul(axes).norm();
        EXPECT_GT(extent.z, extent.y);  // B > G
        EXPECT_GT(extent.x, extent.y);  // R > G
    }
}

TEST(AnalyticModel, BrighterColorsHaveLargerThresholds)
{
    const AnalyticDiscriminationModel model;
    const Vec3 dark = model.semiAxes(Vec3(0.1, 0.1, 0.1), 15.0);
    const Vec3 bright = model.semiAxes(Vec3(0.9, 0.9, 0.9), 15.0);
    EXPECT_GT(bright.x, dark.x);
    EXPECT_GT(bright.y, dark.y);
    EXPECT_GT(bright.z, dark.z);
}

TEST(AnalyticModel, NegativeEccentricityClampedToFovea)
{
    const AnalyticDiscriminationModel model;
    const Vec3 rgb(0.5, 0.5, 0.5);
    const Vec3 a = model.semiAxes(rgb, -3.0);
    const Vec3 b = model.semiAxes(rgb, 0.0);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.z, b.z);
}

TEST(AnalyticModel, GlobalScaleScalesAxesLinearly)
{
    AnalyticModelParams params;
    params.globalScale = 2.0;
    const AnalyticDiscriminationModel base;
    const AnalyticDiscriminationModel scaled(params);
    const Vec3 rgb(0.3, 0.6, 0.4);
    const Vec3 a = base.semiAxes(rgb, 12.0);
    const Vec3 b = scaled.semiAxes(rgb, 12.0);
    EXPECT_NEAR(b.x, 2.0 * a.x, 1e-15);
    EXPECT_NEAR(b.y, 2.0 * a.y, 1e-15);
    EXPECT_NEAR(b.z, 2.0 * a.z, 1e-15);
}

TEST(AnalyticModel, RejectsNonPositiveBase)
{
    AnalyticModelParams params;
    params.base = Vec3(0.0, 1e-4, 1e-4);
    EXPECT_THROW(AnalyticDiscriminationModel{params},
                 std::invalid_argument);
}

TEST(DiscriminationModel, EllipsoidForCentersAtDklOfColor)
{
    const AnalyticDiscriminationModel model;
    const Vec3 rgb(0.25, 0.5, 0.75);
    const Ellipsoid e = model.ellipsoidFor(rgb, 10.0);
    const Vec3 dkl = rgbToDkl(rgb);
    EXPECT_NEAR(e.centerDkl.x, dkl.x, 1e-15);
    EXPECT_NEAR(e.centerDkl.y, dkl.y, 1e-15);
    EXPECT_NEAR(e.centerDkl.z, dkl.z, 1e-15);
    EXPECT_TRUE(e.contains(dkl));
}

TEST(ScaledModel, AppliesConstantFactor)
{
    const AnalyticDiscriminationModel base;
    const ScaledDiscriminationModel half(base, 0.5);
    const Vec3 rgb(0.4, 0.4, 0.4);
    const Vec3 a = base.semiAxes(rgb, 20.0);
    const Vec3 b = half.semiAxes(rgb, 20.0);
    EXPECT_NEAR(b.x, 0.5 * a.x, 1e-15);
    EXPECT_NEAR(b.z, 0.5 * a.z, 1e-15);
    EXPECT_DOUBLE_EQ(half.scale(), 0.5);
}

TEST(AnalyticModel, FovealThresholdsNearQuantizationStep)
{
    // At zero eccentricity the Green RGB extent should be on the order
    // of one 8-bit quantization step (sub-JND encoding headroom).
    const AnalyticDiscriminationModel model;
    const Mat3 &inv = dkl2rgbMatrix();
    const Vec3 axes = model.semiAxes(Vec3(0.5, 0.5, 0.5), 0.0);
    const double g_extent = inv.row(1).cwiseMul(axes).norm();
    EXPECT_LT(g_extent, 0.02);
    EXPECT_GT(g_extent, 0.0005);
}

} // namespace
} // namespace pce
