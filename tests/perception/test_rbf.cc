/**
 * @file
 * Tests for the RBF-network discrimination model (the paper's deployed
 * form of Phi, Sec. 2.1).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "perception/rbf.hh"

namespace pce {
namespace {

/** One shared fitted network (construction costs ~a second). */
const RbfDiscriminationModel &
fittedModel()
{
    static const AnalyticDiscriminationModel reference;
    static const RbfDiscriminationModel model(reference);
    return model;
}

TEST(RbfModel, FitErrorIsSmall)
{
    const AnalyticDiscriminationModel reference;
    // Under 10% relative RMS error across the whole (color, ecc) domain:
    // the encoder's behaviour is insensitive at this level, matching
    // the paper's use of an RBF approximation for GPU evaluation.
    EXPECT_LT(fittedModel().relativeRmsError(reference, 6), 0.10);
}

TEST(RbfModel, PredictionsArePositive)
{
    Rng rng(1);
    for (int i = 0; i < 500; ++i) {
        const Vec3 rgb(rng.uniform(), rng.uniform(), rng.uniform());
        const Vec3 axes =
            fittedModel().semiAxes(rgb, rng.uniform(0.0, 50.0));
        EXPECT_GT(axes.minCoeff(), 0.0);
    }
}

TEST(RbfModel, TracksEccentricityGrowth)
{
    // The fit must preserve the monotone eccentricity trend that the
    // encoder exploits (checked loosely at a 10-degree stride).
    const Vec3 rgb(0.5, 0.5, 0.5);
    double prev = fittedModel().semiAxes(rgb, 0.0).z;
    for (double ecc = 10.0; ecc <= 40.0; ecc += 10.0) {
        const double axis = fittedModel().semiAxes(rgb, ecc).z;
        EXPECT_GT(axis, prev);
        prev = axis;
    }
}

TEST(RbfModel, CenterCountMatchesGrid)
{
    RbfNetworkParams params;
    params.colorGrid = 3;
    params.eccGrid = 2;
    params.trainGrid = 4;
    const AnalyticDiscriminationModel reference;
    const RbfDiscriminationModel model(reference, params);
    EXPECT_EQ(model.centerCount(), 3u * 3u * 3u * 2u);
}

TEST(RbfModel, InputsAreClampedToDomain)
{
    // Out-of-range inputs must not produce garbage (the pipeline clamps
    // colors, but defensive evaluation matters for tooling).
    const Vec3 axes_in = fittedModel().semiAxes(Vec3(0.5, 0.5, 0.5), 50.0);
    const Vec3 axes_out =
        fittedModel().semiAxes(Vec3(0.5, 0.5, 0.5), 500.0);
    EXPECT_NEAR(axes_in.z, axes_out.z, 1e-12);
}

TEST(RbfModel, RejectsDegenerateGrid)
{
    RbfNetworkParams params;
    params.colorGrid = 1;
    const AnalyticDiscriminationModel reference;
    EXPECT_THROW(RbfDiscriminationModel(reference, params),
                 std::invalid_argument);
}

} // namespace
} // namespace pce
