/**
 * @file
 * Tests for HMD display geometry and eccentricity maps.
 */

#include <gtest/gtest.h>

#include "perception/display.hh"

namespace pce {
namespace {

DisplayGeometry
smallDisplay()
{
    DisplayGeometry g;
    g.width = 200;
    g.height = 100;
    g.horizontalFovDeg = 100.0;
    g.fixationX = 100.0;
    g.fixationY = 50.0;
    return g;
}

TEST(DisplayGeometry, FixationHasZeroEccentricity)
{
    const DisplayGeometry g = smallDisplay();
    EXPECT_NEAR(g.eccentricityDeg(g.fixationX, g.fixationY), 0.0, 1e-9);
}

TEST(DisplayGeometry, EccentricityGrowsFromFixation)
{
    const DisplayGeometry g = smallDisplay();
    double prev = -1.0;
    for (int x = 100; x < 200; x += 10) {
        const double e = g.eccentricityDeg(x, 50.0);
        EXPECT_GT(e, prev);
        prev = e;
    }
}

TEST(DisplayGeometry, EdgeReachesHalfFov)
{
    // With central fixation, the horizontal display edge sits at the
    // half-FoV angle.
    const DisplayGeometry g = smallDisplay();
    EXPECT_NEAR(g.eccentricityDeg(0.0, 50.0), 50.0, 0.5);
    EXPECT_NEAR(g.eccentricityDeg(200.0, 50.0), 50.0, 0.5);
}

TEST(DisplayGeometry, FocalLengthMatchesFov)
{
    const DisplayGeometry g = smallDisplay();
    // tan(50 deg) = (w/2) / f.
    EXPECT_NEAR((g.width / 2.0) / g.focalPixels(),
                std::tan(50.0 * M_PI / 180.0), 1e-12);
}

TEST(DisplayGeometry, MaxEccentricityAtACorner)
{
    const DisplayGeometry g = smallDisplay();
    const double m = g.maxEccentricityDeg();
    EXPECT_GE(m + 1e-9, g.eccentricityDeg(0.0, 0.0));
    EXPECT_GE(m, 50.0);  // corners are beyond the horizontal edge
}

TEST(DisplayGeometry, OffCenterFixationShiftsField)
{
    DisplayGeometry g = smallDisplay();
    g.fixationX = 150.0;
    EXPECT_NEAR(g.eccentricityDeg(150.0, 50.0), 0.0, 1e-4);
    EXPECT_GT(g.eccentricityDeg(0.0, 50.0),
              g.eccentricityDeg(200.0, 50.0));
}

TEST(EccentricityMap, MatchesDirectEvaluation)
{
    const DisplayGeometry g = smallDisplay();
    const EccentricityMap map(g);
    ASSERT_EQ(map.width(), g.width);
    ASSERT_EQ(map.height(), g.height);
    for (int y = 0; y < g.height; y += 17) {
        for (int x = 0; x < g.width; x += 13) {
            EXPECT_DOUBLE_EQ(map.at(x, y), g.eccentricityDeg(x, y));
        }
    }
}

TEST(EccentricityMap, VastMajorityOfPixelsPeripheral)
{
    // Paper Sec. 1: above 90% of pixels fall outside 20 degrees on a
    // wide-FoV display (quoted for ~100-degree FoV headsets).
    DisplayGeometry g;
    g.width = 400;
    g.height = 400;
    g.horizontalFovDeg = 100.0;
    g.fixationX = 200.0;
    g.fixationY = 200.0;
    const EccentricityMap map(g);
    EXPECT_GT(map.fractionBeyond(20.0), 0.80);
    EXPECT_GT(map.fractionBeyond(5.0), 0.97);
}

TEST(EccentricityMap, FractionBeyondIsMonotone)
{
    const EccentricityMap map(smallDisplay());
    double prev = 1.1;
    for (double deg = 0.0; deg <= 60.0; deg += 5.0) {
        const double f = map.fractionBeyond(deg);
        EXPECT_LE(f, prev);
        prev = f;
    }
    EXPECT_DOUBLE_EQ(map.fractionBeyond(90.0), 0.0);
}

} // namespace
} // namespace pce
