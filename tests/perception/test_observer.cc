/**
 * @file
 * Tests for the simulated observer population (paper Sec. 5.2, Fig. 14).
 */

#include <gtest/gtest.h>

#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "perception/observer.hh"

namespace pce {
namespace {

EccentricityMap
testMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

TEST(Observer, IdenticalFramesShowNoArtifacts)
{
    const AnalyticDiscriminationModel model;
    const ImageF frame(32, 32, Vec3(0.4, 0.4, 0.4));
    const EccentricityMap ecc = testMap(32, 32);
    ObserverPopulationParams params;
    const SimulatedObserver obs(1.0, params);
    EXPECT_FALSE(obs.noticesArtifact(frame, frame, ecc, model));
    EXPECT_DOUBLE_EQ(
        obs.supraThresholdFraction(frame, frame, ecc, model), 0.0);
}

TEST(Observer, GrossDistortionIsAlwaysNoticed)
{
    const AnalyticDiscriminationModel model;
    const ImageF original(32, 32, Vec3(0.4, 0.4, 0.4));
    ImageF adjusted(32, 32, Vec3(0.9, 0.1, 0.9));  // far outside any JND
    const EccentricityMap ecc = testMap(32, 32);
    ObserverPopulationParams params;
    const SimulatedObserver obs(1.0, params);
    EXPECT_TRUE(obs.noticesArtifact(original, adjusted, ecc, model));
    EXPECT_GT(obs.supraThresholdFraction(original, adjusted, ecc, model),
              0.9);
}

TEST(Observer, SensitiveObserverNoticesMore)
{
    const AnalyticDiscriminationModel model;
    const int n = 48;
    ImageF original(n, n);
    ImageF adjusted(n, n);
    // Moderate distortion: near the population threshold.
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            original.at(x, y) = Vec3(0.5, 0.5, 0.5);
            adjusted.at(x, y) = Vec3(0.5, 0.5, 0.55);
        }
    }
    const EccentricityMap ecc = testMap(n, n);
    ObserverPopulationParams params;
    const SimulatedObserver sensitive(0.3, params);
    const SimulatedObserver tolerant(3.0, params);
    EXPECT_GE(sensitive.supraThresholdFraction(original, adjusted, ecc,
                                               model),
              tolerant.supraThresholdFraction(original, adjusted, ecc,
                                              model));
}

TEST(Observer, DarkContentIsJudgedMoreStrictly)
{
    // The same absolute color shift should violate more often on dark
    // content (Sec. 6.3's low-luminance model error).
    const AnalyticDiscriminationModel model;
    const int n = 32;
    const EccentricityMap ecc = testMap(n, n);
    ObserverPopulationParams params;
    params.darkErrorGain = 0.7;
    const SimulatedObserver obs(1.0, params);

    auto supra_for = [&](double level, double delta) {
        ImageF orig(n, n, Vec3(level, level, level));
        ImageF adj(n, n, Vec3(level, level, level + delta));
        return obs.supraThresholdFraction(orig, adj, ecc, model);
    };
    // Pick a shift in the transition band. Dark content must violate at
    // least as often as bright content; find a delta separating them.
    bool separated = false;
    for (double delta = 0.002; delta <= 0.2; delta *= 1.5) {
        const double dark = supra_for(0.08, delta);
        const double bright = supra_for(0.7, delta);
        EXPECT_GE(dark + 1e-12, bright);
        if (dark > 0.5 && bright < 0.5)
            separated = true;
    }
    EXPECT_TRUE(separated);
}

TEST(ObserverPopulation, DeterministicDraw)
{
    ObserverPopulationParams params;
    const auto a = drawObserverPopulation(params);
    const auto b = drawObserverPopulation(params);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), static_cast<std::size_t>(params.participants));
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i].thresholdScale(), b[i].thresholdScale());
}

TEST(ObserverPopulation, ScalesVaryAroundUnity)
{
    ObserverPopulationParams params;
    params.participants = 200;
    const auto pop = drawObserverPopulation(params);
    double sum = 0.0;
    for (const auto &o : pop)
        sum += o.thresholdScale();
    EXPECT_NEAR(sum / pop.size(), 1.0, 0.15);
    bool below = false;
    bool above = false;
    for (const auto &o : pop) {
        below |= o.thresholdScale() < 0.9;
        above |= o.thresholdScale() > 1.1;
    }
    EXPECT_TRUE(below);
    EXPECT_TRUE(above);
}

TEST(UserStudy, AggregatesPopulationVerdicts)
{
    const AnalyticDiscriminationModel model;
    const ImageF frame(32, 32, Vec3(0.4, 0.4, 0.4));
    const EccentricityMap ecc = testMap(32, 32);
    ObserverPopulationParams params;
    const auto pop = drawObserverPopulation(params);
    const auto result = runUserStudy(pop, frame, frame, ecc, model);
    EXPECT_EQ(result.participants, params.participants);
    EXPECT_EQ(result.noArtifactCount, params.participants);
    EXPECT_DOUBLE_EQ(result.meanSupraFraction, 0.0);
}

TEST(Observer, SizeMismatchThrows)
{
    const AnalyticDiscriminationModel model;
    const ImageF a(8, 8);
    const ImageF b(9, 8);
    const EccentricityMap ecc = testMap(8, 8);
    ObserverPopulationParams params;
    const SimulatedObserver obs(1.0, params);
    EXPECT_THROW(obs.noticesArtifact(a, b, ecc, model),
                 std::invalid_argument);
}

} // namespace
} // namespace pce
