/**
 * @file
 * Tests for the dark-adaptation model extension (paper Sec. 7).
 */

#include <gtest/gtest.h>

#include "perception/adaptation.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
photopic()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

TEST(DarkAdaptation, NoBoostAtOrAboveReference)
{
    const DarkAdaptationModel at_ref(photopic(), 100.0);
    const DarkAdaptationModel bright(photopic(), 500.0);
    EXPECT_DOUBLE_EQ(at_ref.boost(), 1.0);
    EXPECT_DOUBLE_EQ(bright.boost(), 1.0);

    const Vec3 rgb(0.4, 0.4, 0.4);
    const Vec3 a = photopic().semiAxes(rgb, 20.0);
    const Vec3 b = at_ref.semiAxes(rgb, 20.0);
    EXPECT_DOUBLE_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.z, b.z);
}

TEST(DarkAdaptation, BoostGrowsAsAmbientDims)
{
    double prev = 0.0;
    for (double ambient : {100.0, 10.0, 1.0, 0.1}) {
        const DarkAdaptationModel model(photopic(), ambient);
        EXPECT_GE(model.boost(), prev);
        prev = model.boost();
    }
    EXPECT_GT(prev, 1.5);
}

TEST(DarkAdaptation, BoostPerDecadeMatchesGain)
{
    DarkAdaptationParams params;
    params.gainPerDecade = 0.4;
    params.maxBoost = 10.0;
    const DarkAdaptationModel one_decade(photopic(), 10.0, params);
    const DarkAdaptationModel two_decades(photopic(), 1.0, params);
    EXPECT_NEAR(one_decade.boost(), 1.4, 1e-12);
    EXPECT_NEAR(two_decades.boost(), 1.8, 1e-12);
}

TEST(DarkAdaptation, BoostSaturates)
{
    DarkAdaptationParams params;
    params.maxBoost = 1.7;
    const DarkAdaptationModel pitch_black(photopic(), 1e-6, params);
    EXPECT_DOUBLE_EQ(pitch_black.boost(), 1.7);
}

TEST(DarkAdaptation, ScalesAllAxesUniformly)
{
    const DarkAdaptationModel dim(photopic(), 1.0);
    const Vec3 rgb(0.3, 0.5, 0.7);
    const Vec3 a = photopic().semiAxes(rgb, 15.0);
    const Vec3 b = dim.semiAxes(rgb, 15.0);
    EXPECT_NEAR(b.x / a.x, dim.boost(), 1e-12);
    EXPECT_NEAR(b.y / a.y, dim.boost(), 1e-12);
    EXPECT_NEAR(b.z / a.z, dim.boost(), 1e-12);
}

TEST(DarkAdaptation, RejectsNonPositiveAmbient)
{
    EXPECT_THROW(DarkAdaptationModel(photopic(), 0.0),
                 std::invalid_argument);
    EXPECT_THROW(DarkAdaptationModel(photopic(), -5.0),
                 std::invalid_argument);
}

} // namespace
} // namespace pce
