/**
 * @file
 * Metrics registry unit tests (src/obs/metrics.hh). The load-bearing
 * one is the LogHistogram within-one-bucket percentile contract the
 * StreamStats queue-latency migration relies on: against a sorted
 * full-history reference using the same nearest-rank rule, the
 * histogram's reported percentile must bound the exact sample from
 * above within one sub-bucket's relative width (and never exceed the
 * exact max). Runs under ThreadSanitizer in scripts/check.sh; the
 * concurrent-record test is the race proof for the lock-free path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "obs/metrics.hh"

namespace pce::obs {
namespace {

/**
 * The old EncodeService percentileOf, verbatim: nearest-rank on a
 * sorted window. The histogram must stay within one bucket of this.
 */
double
exactPercentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size());
    std::size_t idx =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
    idx = std::min(idx, sorted.size() - 1);
    return sorted[idx];
}

TEST(Counter, AddsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(3.5);
    g.set(-2.0);
    EXPECT_EQ(g.value(), -2.0);
}

TEST(LogHistogram, ExactCountSumMinMax)
{
    LogHistogram h;
    const double values[] = {0.004, 1.25, 17.0, 17.0, 250.75};
    double sum = 0.0;
    for (const double v : values) {
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), sum);
    EXPECT_DOUBLE_EQ(h.min(), 0.004);
    EXPECT_DOUBLE_EQ(h.max(), 250.75);
}

TEST(LogHistogram, EmptyReportsZeroes)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, NegativeAndNanClampToZero)
{
    LogHistogram h;
    h.record(-3.0);
    h.record(std::nan(""));
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_LE(h.percentile(99.0), h.params().minValue);
}

TEST(LogHistogram, BucketEdgesRoundTrip)
{
    LogHistogram h;
    // Every bucket's lower bound must land in that bucket, and upper
    // bounds must be the next bucket's lower bound — exact edge math
    // (frexp/ldexp), no misplaced boundary values.
    for (std::size_t i = 1; i + 1 < h.bucketCount(); ++i) {
        EXPECT_EQ(h.bucketIndexFor(h.bucketLowerBound(i)), i)
            << "bucket " << i;
        EXPECT_DOUBLE_EQ(h.bucketUpperBound(i),
                         h.bucketLowerBound(i + 1))
            << "bucket " << i;
    }
    EXPECT_EQ(h.bucketIndexFor(0.0), 0u);
    EXPECT_EQ(h.bucketIndexFor(1e30), h.bucketCount() - 1);
}

TEST(LogHistogram, PercentileWithinOneBucketOfExact)
{
    // The migration contract (encode_service report()): for p50/90/99
    // over log-uniform samples spanning six orders of magnitude,
    // exact <= reported <= exact * (1 + 1/subBucketsPerOctave),
    // and reported never exceeds the exact max.
    LogHistogram h;
    std::mt19937_64 rng(0x0b5eca11);
    std::uniform_real_distribution<double> exponent(-2.0, 4.0);
    std::vector<double> samples;
    for (int i = 0; i < 5000; ++i) {
        const double v = std::pow(10.0, exponent(rng));
        samples.push_back(v);
        h.record(v);
    }
    const double tol =
        1.0 + 1.0 / h.params().subBucketsPerOctave + 1e-12;
    for (const double p : {50.0, 90.0, 99.0, 100.0}) {
        const double exact = exactPercentile(samples, p);
        const double reported = h.percentile(p);
        EXPECT_GE(reported, exact) << "p" << p;
        EXPECT_LE(reported, exact * tol) << "p" << p;
        EXPECT_LE(reported, h.max()) << "p" << p;
    }
}

TEST(LogHistogram, PercentileMatchesRankOnTinySets)
{
    // Small-N behavior must track the old window rule exactly (same
    // rank selection): one sample pins every percentile to it.
    LogHistogram h;
    h.record(4.2);
    const double tol = 1.0 + 1.0 / h.params().subBucketsPerOctave;
    for (const double p : {1.0, 50.0, 99.0}) {
        EXPECT_GE(h.percentile(p), 4.2);
        EXPECT_LE(h.percentile(p), 4.2 * tol);
    }
}

TEST(LogHistogram, ResetClears)
{
    LogHistogram h;
    h.record(5.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.percentile(99.0), 0.0);
}

TEST(LogHistogram, ConcurrentRecordersLoseNothing)
{
    // Lock-free record path: N threads hammer one histogram; the
    // final count and sum must be exact (relaxed atomics, no lost
    // updates), extrema must cover every thread's range.
    LogHistogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 20000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&h, t] {
            for (int i = 1; i <= kPerThread; ++i)
                h.record(static_cast<double>(t) * 100.0 + 1.0);
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 301.0);
}

TEST(MetricsRegistry, ReturnsStableSharedInstances)
{
    MetricsRegistry reg;
    Counter &a = reg.counter("frames");
    Counter &b = reg.counter("frames");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);

    LogHistogram::Params params;
    params.subBucketsPerOctave = 4;
    LogHistogram &h1 = reg.histogram("lat", params);
    // Params apply on first creation only; the name is the identity.
    LogHistogram &h2 = reg.histogram("lat");
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.params().subBucketsPerOctave, 4);
}

TEST(MetricsRegistry, SnapshotIsNameSortedAndTyped)
{
    MetricsRegistry reg;
    reg.counter("z/count").add(2);
    reg.gauge("a/gauge").set(1.5);
    reg.histogram("m/hist").record(10.0);

    const std::vector<MetricsRegistry::Reading> snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a/gauge");
    EXPECT_EQ(snap[1].name, "m/hist");
    EXPECT_EQ(snap[2].name, "z/count");
    EXPECT_EQ(snap[0].kind, MetricsRegistry::Reading::Kind::Gauge);
    EXPECT_EQ(snap[1].kind,
              MetricsRegistry::Reading::Kind::Histogram);
    EXPECT_EQ(snap[2].kind, MetricsRegistry::Reading::Kind::Counter);
    EXPECT_DOUBLE_EQ(snap[0].value, 1.5);
    EXPECT_EQ(snap[1].count, 1u);
    EXPECT_GE(snap[1].p50, 10.0);
    EXPECT_DOUBLE_EQ(snap[2].value, 2.0);
}

} // namespace
} // namespace pce::obs
