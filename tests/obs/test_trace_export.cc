/**
 * @file
 * Chrome trace-event export validation (src/obs/trace_export.hh),
 * using the same strict dependency-free JSON parser that guards
 * BENCH_encoder.json (tests/support/json_test_util.hh): the exported
 * document must parse, every event must carry pid/tid/ts/ph/name,
 * complete events need dur, instants need the scope field, string
 * escaping must survive hostile thread names, and span begin/end
 * ordering must survive the µs re-quantization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "../support/json_test_util.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"

namespace pce::obs {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

/** Structural contract for one exported trace document. */
void
validateTraceDocument(const JsonValue &doc)
{
    ASSERT_TRUE(doc.isObject());
    const JsonValue *unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->string, "ms");
    const JsonValue *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        ASSERT_TRUE(e.isObject()) << "event " << i;
        for (const char *key : {"pid", "tid", "ts"}) {
            const JsonValue *v = e.find(key);
            ASSERT_NE(v, nullptr)
                << "event " << i << " missing " << key;
            EXPECT_TRUE(v->isNumber()) << "event " << i;
        }
        const JsonValue *ph = e.find("ph");
        ASSERT_NE(ph, nullptr) << "event " << i;
        ASSERT_TRUE(ph->isString()) << "event " << i;
        const JsonValue *name = e.find("name");
        ASSERT_NE(name, nullptr) << "event " << i;
        EXPECT_TRUE(name->isString()) << "event " << i;
        EXPECT_FALSE(name->string.empty()) << "event " << i;
        const JsonValue *args = e.find("args");
        ASSERT_NE(args, nullptr) << "event " << i;
        EXPECT_TRUE(args->isObject()) << "event " << i;
        if (ph->string == "X") {
            const JsonValue *dur = e.find("dur");
            ASSERT_NE(dur, nullptr) << "event " << i;
            EXPECT_TRUE(dur->isNumber()) << "event " << i;
            EXPECT_GE(dur->number, 0.0) << "event " << i;
        } else if (ph->string == "i") {
            const JsonValue *scope = e.find("s");
            ASSERT_NE(scope, nullptr) << "event " << i;
            EXPECT_EQ(scope->string, "t") << "event " << i;
        } else {
            EXPECT_EQ(ph->string, "M") << "event " << i;
        }
    }
}

TEST(TraceExport, EmptyTraceIsAValidDocument)
{
    std::ostringstream os;
    writeChromeTrace(os, {});
    JsonValue doc;
    ASSERT_NO_THROW(doc = JsonParser(os.str()).parse()) << os.str();
    validateTraceDocument(doc);
    EXPECT_TRUE(doc.find("traceEvents")->array.empty());
}

TEST(TraceExport, EventsCarryTimesTagsAndPayloads)
{
    std::vector<TraceEvent> events;
    TraceEvent span;
    span.name = "service/dispatch";
    span.beginNs = 1234567;   // 1234.567 us
    span.endNs = 9876543;
    span.frame = 7;
    span.stream = 1;
    span.shard = 0;
    span.argName = "stolen";
    span.arg = 1;
    span.tid = 2;
    events.push_back(span);
    TraceEvent instant;
    instant.name = "net/nack";
    instant.beginNs = 2000000;
    instant.endNs = 2000000;
    instant.instant = true;
    instant.tid = 3;
    events.push_back(instant);

    std::ostringstream os;
    writeChromeTrace(os, events, {{2, "shard0/dispatcher"}});
    JsonValue doc;
    ASSERT_NO_THROW(doc = JsonParser(os.str()).parse()) << os.str();
    validateTraceDocument(doc);

    const std::vector<JsonValue> &out =
        doc.find("traceEvents")->array;
    ASSERT_EQ(out.size(), 3u);  // thread_name + span + instant
    EXPECT_EQ(out[0].find("ph")->string, "M");
    EXPECT_EQ(out[0].find("args")->find("name")->string,
              "shard0/dispatcher");

    const JsonValue &x = out[1];
    EXPECT_EQ(x.find("ph")->string, "X");
    EXPECT_DOUBLE_EQ(x.find("ts")->number, 1234.567);
    EXPECT_DOUBLE_EQ(x.find("dur")->number, 8641.976);
    EXPECT_DOUBLE_EQ(x.find("args")->find("frame")->number, 7.0);
    EXPECT_DOUBLE_EQ(x.find("args")->find("stream")->number, 1.0);
    EXPECT_DOUBLE_EQ(x.find("args")->find("shard")->number, 0.0);
    EXPECT_DOUBLE_EQ(x.find("args")->find("stolen")->number, 1.0);

    const JsonValue &ii = out[2];
    EXPECT_EQ(ii.find("ph")->string, "i");
    // Untagged event: the sentinel tag fields must be *absent*, not
    // emitted as giant sentinel numbers.
    EXPECT_EQ(ii.find("args")->find("frame"), nullptr);
    EXPECT_EQ(ii.find("args")->find("stream"), nullptr);
    EXPECT_EQ(ii.find("args")->find("shard"), nullptr);
}

TEST(TraceExport, HostileThreadNamesAreEscaped)
{
    const std::string hostile =
        "quote\" backslash\\ newline\n tab\t ctrl\x01 done";
    std::ostringstream os;
    writeChromeTrace(os, {}, {{9, hostile}});
    JsonValue doc;
    ASSERT_NO_THROW(doc = JsonParser(os.str()).parse()) << os.str();
    validateTraceDocument(doc);
    const std::string &name = doc.find("traceEvents")
                                  ->array[0]
                                  .find("args")
                                  ->find("name")
                                  ->string;
    // The strict parser keeps \uXXXX escapes verbatim, so the control
    // byte round-trips as its escape.
    EXPECT_NE(name.find("quote\""), std::string::npos);
    EXPECT_NE(name.find("backslash\\"), std::string::npos);
    EXPECT_NE(name.find("newline\n"), std::string::npos);
    EXPECT_NE(name.find("\\u0001"), std::string::npos);
}

TEST(TraceExport, CollectedTraceExportsAndSaves)
{
    setTraceEnabled(false);
    Tracer::instance().reset();
    setTraceEnabled(true);
    Tracer::instance().nameThread("exporter-test");
    {
        TraceSpan outer("outer");
        TraceSpan inner("inner");
        inner.end();
        traceInstant("mark", "k", 5);
    }
    setTraceEnabled(false);

    std::ostringstream os;
    writeChromeTrace(os);
    JsonValue doc;
    ASSERT_NO_THROW(doc = JsonParser(os.str()).parse()) << os.str();
    validateTraceDocument(doc);
    // thread_name + outer + inner + instant.
    EXPECT_EQ(doc.find("traceEvents")->array.size(), 4u);

    const std::string path = "trace_export_test.json";
    ASSERT_TRUE(saveChromeTrace(path));
    const std::string text = testjson::readFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(text.empty());
    JsonValue saved;
    ASSERT_NO_THROW(saved = JsonParser(text).parse());
    validateTraceDocument(saved);
    Tracer::instance().reset();
}

TEST(TraceExport, SpansNestInExportOrder)
{
    // Exported order is collect() order: a parent span must appear
    // before its child, and the child's [ts, ts+dur] window must sit
    // inside the parent's — µs re-quantization included, because both
    // edges round the same way (truncation toward zero).
    setTraceEnabled(false);
    Tracer::instance().reset();
    setTraceEnabled(true);
    {
        TraceSpan a("parent");
        TraceSpan b("child");
    }
    setTraceEnabled(false);
    std::ostringstream os;
    writeChromeTrace(os);
    JsonValue doc;
    ASSERT_NO_THROW(doc = JsonParser(os.str()).parse());
    // Filter to the span events: the main thread's recorder may
    // still carry a thread_name from an earlier test in this binary.
    std::vector<JsonValue> out;
    for (const JsonValue &e : doc.find("traceEvents")->array)
        if (e.find("ph")->string == "X")
            out.push_back(e);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].find("name")->string, "parent");
    EXPECT_EQ(out[1].find("name")->string, "child");
    const double p0 = out[0].find("ts")->number;
    const double p1 = p0 + out[0].find("dur")->number;
    const double c0 = out[1].find("ts")->number;
    const double c1 = c0 + out[1].find("dur")->number;
    EXPECT_LE(p0, c0);
    EXPECT_GE(p1, c1);
    Tracer::instance().reset();
}

} // namespace
} // namespace pce::obs
