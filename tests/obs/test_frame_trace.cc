/**
 * @file
 * End-to-end frame-lifecycle trace: a seeded two-gaze-stream workload
 * on a sharded service, delivered over a seeded lossy channel, must
 * produce a trace whose per-name event counts equal values derived
 * from the service and delivery reports (deterministic under the
 * seeds), and whose spans stitch one frame's timeline contiguously:
 * submit -> queue_wait -> dispatch (with the encode passes nested
 * inside) -> collect -> deliver_frame (with packetize/rounds/finalize
 * nested inside). The exported JSON for the same run must pass the
 * strict structural check. Runs under ThreadSanitizer via
 * scripts/check.sh: producer, two dispatchers, and the delivery loop
 * all record concurrently.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "../support/json_test_util.hh"
#include "net/delivery.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"
#include "service/encode_service.hh"

namespace pce {
namespace {

using namespace std::chrono_literals;

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

DisplayGeometry
geometry(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return g;
}

struct Workload
{
    std::vector<ImageF> frames;
    std::vector<GazeSample> gaze;
};

/** Seeded clip + scanpath with one saccade-speed jump at frame 3. */
Workload
workload(SceneId scene, int n, int frame_count, double phase)
{
    Workload w;
    double t = 0.0;
    for (int i = 0; i < frame_count; ++i) {
        w.frames.push_back(
            renderScene(scene, {n, n, 0, 0.2 * i + phase, 0}));
        t += (i == 3) ? 0.004 : 1.0;
        const double x = n / 2.0 + (i % 4) + (i == 3 ? n / 3.0 : 0.0);
        const double y = n / 2.0 + ((i * 2) % 5);
        w.gaze.push_back({t, x, y});
    }
    return w;
}

struct TraceIndex
{
    std::map<std::string, std::vector<obs::TraceEvent>> byName;

    explicit TraceIndex(const std::vector<obs::TraceEvent> &events)
    {
        for (const obs::TraceEvent &e : events)
            byName[e.name].push_back(e);
    }

    std::size_t count(const std::string &name) const
    {
        const auto it = byName.find(name);
        return it == byName.end() ? 0 : it->second.size();
    }

    /** Events of @p name tagged with {stream, frame}. */
    std::vector<obs::TraceEvent>
    tagged(const std::string &name, std::uint32_t stream,
           std::uint64_t frame) const
    {
        std::vector<obs::TraceEvent> out;
        const auto it = byName.find(name);
        if (it == byName.end())
            return out;
        for (const obs::TraceEvent &e : it->second)
            if (e.stream == stream && e.frame == frame)
                out.push_back(e);
        return out;
    }
};

TEST(FrameTrace, SeededRunPinsEventCountsAndStitchesOneFrame)
{
    obs::setTraceEnabled(false);
    obs::Tracer::instance().setCapacityPerThread(16384);
    obs::Tracer::instance().reset();

    const int n = 64;
    constexpr int kFrames = 8;
    const DisplayGeometry geom = geometry(n, n);
    const Workload wa = workload(SceneId::Office, n, kFrames, 0.0);
    const Workload wb = workload(SceneId::Thai, n, kFrames, 0.7);
    const EccentricityMap ecc(geom);

    ServiceParams sp;
    sp.shards = 2;
    sp.verifyRoundTrip = true;
    sp.hardenIntegrity = true;
    EncodeService svc(model(), sp);
    const StreamHandle ha = svc.openGazeStream("trace-a", geom);
    const StreamHandle hb = svc.openGazeStream("trace-b", geom);
    const std::uint32_t ida = svc.streamTraceId(ha);
    const std::uint32_t idb = svc.streamTraceId(hb);
    ASSERT_NE(ida, idb);

    // Seeded lossy channels: drops force NACK rounds and
    // retransmissions; the seeds make every count below a pure
    // function of this workload.
    net::LossyChannelConfig cc;
    cc.dropRate = 0.25;
    cc.seed = 0xace0fba5e;
    net::LossyChannel cha(cc);
    cc.seed = 0xdecafbad;
    net::LossyChannel chb(cc);

    net::SenderPolicy pa;
    pa.sessionId = 0xa;
    pa.streamId = ida;  // the stitch key: delivery tags == encode tags
    net::SenderPolicy pb;
    pb.sessionId = 0xb;
    pb.streamId = idb;
    net::DeliverySession sa(svc, ha, cha, pa, &ecc);
    net::DeliverySession sb(svc, hb, chb, pb, &ecc);

    obs::setTraceEnabled(true);
    std::uint64_t total_rounds = 0;
    std::uint64_t frames_with_shed = 0;
    std::uint64_t frames_with_retx = 0;
    for (int i = 0; i < kFrames; ++i) {
        svc.submit(ha, wa.frames[i], wa.gaze[i]);
        svc.submit(hb, wb.frames[i], wb.gaze[i]);
        for (net::DeliverySession *s : {&sa, &sb}) {
            ImageU8 out;
            const net::DeliveryReport rep =
                s->deliverNext(out, 30000ms);
            ASSERT_FALSE(rep.encodeTimedOut);
            total_rounds += static_cast<std::uint64_t>(rep.roundsUsed);
            if (rep.shedPackets > 0)
                ++frames_with_shed;
            if (rep.retransmittedPackets > 0)
                ++frames_with_retx;
        }
    }
    svc.drainAll();
    obs::setTraceEnabled(false);

    const ServiceReport rep = svc.report();
    ASSERT_EQ(rep.streams.size(), 2u);
    std::uint64_t saccades = 0;
    for (const StreamStats &st : rep.streams) {
        EXPECT_EQ(st.framesEncoded, static_cast<std::uint64_t>(kFrames));
        saccades += st.saccadeFrames;
    }
    EXPECT_EQ(saccades, 2u);  // one scripted jump per stream

    ASSERT_EQ(obs::Tracer::instance().droppedEvents(), 0u)
        << "pinned counts require a loss-free trace";
    const std::vector<obs::TraceEvent> events =
        obs::Tracer::instance().collect();
    const TraceIndex idx(events);

    // Count contract: every count is derived from the reports, which
    // are themselves deterministic under the workload + channel seeds.
    const std::uint64_t F = 2 * kFrames;
    EXPECT_EQ(idx.count("service/submit"), F);
    EXPECT_EQ(idx.count("service/queue_wait"), F);
    EXPECT_EQ(idx.count("service/dispatch"), F);
    EXPECT_EQ(idx.count("service/collect"), F);
    EXPECT_EQ(idx.count("encode/gaze_update"), F);
    EXPECT_EQ(idx.count("encode/saccade_bypass"), saccades);
    EXPECT_EQ(idx.count("encode/adjust"), F - saccades);
    EXPECT_EQ(idx.count("encode/quantize"), F);
    EXPECT_EQ(idx.count("encode/bd"), F);
    EXPECT_EQ(idx.count("bd/stats"), F);
    EXPECT_EQ(idx.count("bd/prefix"), F);
    EXPECT_EQ(idx.count("bd/emit"), F);
    EXPECT_EQ(idx.count("service/verify_roundtrip"), F);
    EXPECT_EQ(idx.count("service/seal"), F);
    EXPECT_EQ(idx.count("net/deliver_frame"), F);
    EXPECT_EQ(idx.count("net/packetize"), F);
    EXPECT_EQ(idx.count("net/finalize"), F);
    EXPECT_EQ(idx.count("net/round"), total_rounds);
    EXPECT_EQ(idx.count("net/shed"), frames_with_shed);
    // 25% drop over 8 deadline rounds: the seeded run must actually
    // exercise the NACK path, and every NACK instant sits in a round.
    EXPECT_GT(frames_with_retx, 0u);
    EXPECT_GE(idx.count("net/nack"), frames_with_retx);
    EXPECT_LT(idx.count("net/nack"), total_rounds);

    // Stitch contract for one fixation frame of stream a: the spans
    // chain contiguously across producer, dispatcher, delivery loop.
    const std::uint64_t frame = 2;
    const auto submit = idx.tagged("service/submit", ida, frame);
    const auto wait = idx.tagged("service/queue_wait", ida, frame);
    const auto dispatch = idx.tagged("service/dispatch", ida, frame);
    const auto collect = idx.tagged("service/collect", ida, frame);
    const auto deliver = idx.tagged("net/deliver_frame", ida, frame);
    ASSERT_EQ(submit.size(), 1u);
    ASSERT_EQ(wait.size(), 1u);
    ASSERT_EQ(dispatch.size(), 1u);
    ASSERT_EQ(collect.size(), 1u);
    ASSERT_EQ(deliver.size(), 1u);

    EXPECT_LE(submit[0].beginNs, wait[0].beginNs);
    // Exact contiguity: the queue-wait span ends on the *same*
    // captured timestamp the dispatch span begins on.
    EXPECT_EQ(wait[0].endNs, dispatch[0].beginNs);
    EXPECT_LE(dispatch[0].endNs, collect[0].endNs);
    EXPECT_LE(collect[0].endNs, deliver[0].beginNs);

    // Encode passes nest inside the dispatch span and inherit its tag
    // through the ambient TagScope.
    for (const char *name :
         {"encode/gaze_update", "encode/adjust", "encode/quantize",
          "encode/bd", "bd/stats", "bd/prefix", "bd/emit",
          "service/verify_roundtrip", "service/seal"}) {
        const auto nested = idx.tagged(name, ida, frame);
        ASSERT_EQ(nested.size(), 1u) << name;
        EXPECT_GE(nested[0].beginNs, dispatch[0].beginNs) << name;
        EXPECT_LE(nested[0].endNs, dispatch[0].endNs) << name;
        EXPECT_EQ(nested[0].tid, dispatch[0].tid) << name;
    }

    // Delivery-side nesting, same tag, delivery-loop thread.
    for (const char *name : {"net/packetize", "net/finalize"}) {
        const auto nested = idx.tagged(name, ida, frame);
        ASSERT_EQ(nested.size(), 1u) << name;
        EXPECT_GE(nested[0].beginNs, deliver[0].beginNs) << name;
        EXPECT_LE(nested[0].endNs, deliver[0].endNs) << name;
    }
    const auto rounds = idx.tagged("net/round", ida, frame);
    ASSERT_GE(rounds.size(), 1u);
    for (const obs::TraceEvent &r : rounds) {
        EXPECT_GE(r.beginNs, deliver[0].beginNs);
        EXPECT_LE(r.endNs, deliver[0].endNs);
    }

    // The same trace must export as a structurally valid Chrome
    // trace: every event carries pid/tid/ts/ph/name (the strict
    // parser enforces well-formedness).
    std::ostringstream os;
    obs::writeChromeTrace(os);
    testjson::JsonValue doc;
    ASSERT_NO_THROW(doc = testjson::JsonParser(os.str()).parse());
    const testjson::JsonValue *exported = doc.find("traceEvents");
    ASSERT_NE(exported, nullptr);
    // Spans + the dispatcher thread_name metadata events (only
    // dispatchers that encoded at least one traced frame are named).
    EXPECT_GE(exported->array.size(), events.size());
    for (std::size_t i = 0; i < exported->array.size(); ++i) {
        const testjson::JsonValue &e = exported->array[i];
        for (const char *key : {"pid", "tid", "ts"})
            EXPECT_NE(e.find(key), nullptr)
                << "event " << i << " missing " << key;
        EXPECT_NE(e.find("ph"), nullptr) << "event " << i;
        EXPECT_NE(e.find("name"), nullptr) << "event " << i;
    }

    obs::Tracer::instance().reset();
}

TEST(FrameTrace, DisabledRunRecordsNothing)
{
    obs::setTraceEnabled(false);
    obs::Tracer::instance().reset();

    const int n = 32;
    const DisplayGeometry geom = geometry(n, n);
    const EccentricityMap ecc(geom);
    ServiceParams sp;
    EncodeService svc(model(), sp);
    const StreamHandle h = svc.openStream("untraced", ecc);
    net::LossyChannel ch;
    net::SenderPolicy policy;
    policy.streamId = svc.streamTraceId(h);
    net::DeliverySession session(svc, h, ch, policy, &ecc);
    for (int i = 0; i < 3; ++i) {
        session.submit(renderScene(SceneId::Office, {n, n, 0, 0.1 * i, 0}));
        ImageU8 out;
        const net::DeliveryReport rep = session.deliverNext(out, 30000ms);
        EXPECT_FALSE(rep.encodeTimedOut);
    }
    svc.shutdown();
    EXPECT_EQ(obs::Tracer::instance().recordedEvents(), 0u);
}

} // namespace
} // namespace pce
