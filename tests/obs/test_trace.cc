/**
 * @file
 * Span-ring tracer unit tests (src/obs/trace.hh): the disabled fast
 * path records nothing, RAII spans nest and order parent-first,
 * wraparound drops are counted rather than hidden, cross-thread
 * collect() merges in begin-time order, and ambient TagScope tags
 * stick to nested spans. The whole suite runs under ThreadSanitizer
 * in scripts/check.sh — the cross-thread tests double as the
 * data-race proof for the per-recorder mutex design.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace pce::obs {
namespace {

/** Every test starts disabled, empty, and at default capacity. */
class TraceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        setTraceEnabled(false);
        Tracer::instance().setCapacityPerThread(16384);
        Tracer::instance().reset();
    }
    void TearDown() override
    {
        setTraceEnabled(false);
        Tracer::instance().reset();
    }
};

TEST_F(TraceTest, DisabledFastPathRecordsNothing)
{
    {
        TraceSpan span("should/not/appear");
        span.arg("x", 7);
        traceInstant("also/not");
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(Tracer::instance().recordedEvents(), 0u);
    EXPECT_EQ(Tracer::instance().droppedEvents(), 0u);
    EXPECT_TRUE(Tracer::instance().collect().empty());
}

TEST_F(TraceTest, SpanBegunWhileDisabledStaysInert)
{
    // The enable check happens once, at span begin: flipping tracing
    // on mid-span must not record a half-timed event.
    TraceSpan span("begun/disabled");
    setTraceEnabled(true);
    span.end();
    EXPECT_EQ(Tracer::instance().recordedEvents(), 0u);
}

TEST_F(TraceTest, RaiiNestingParentsPrecedeChildren)
{
    setTraceEnabled(true);
    {
        TraceSpan outer("outer");
        {
            TraceSpan inner("inner");
        }
    }
    const std::vector<TraceEvent> events =
        Tracer::instance().collect();
    ASSERT_EQ(events.size(), 2u);
    // collect() orders parents first even though the child *records*
    // first (it ends first).
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_LE(events[0].beginNs, events[1].beginNs);
    EXPECT_GE(events[0].endNs, events[1].endNs);
    EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ExplicitEndIsIdempotent)
{
    setTraceEnabled(true);
    {
        TraceSpan span("once");
        span.end();
        span.end();  // destructor will be the third attempt
    }
    EXPECT_EQ(Tracer::instance().recordedEvents(), 1u);
}

TEST_F(TraceTest, WraparoundCountsDropsAndKeepsNewest)
{
    Tracer::instance().setCapacityPerThread(8);
    setTraceEnabled(true);
    for (std::uint64_t i = 0; i < 20; ++i)
        traceInstant("tick", "i", i);

    EXPECT_EQ(Tracer::instance().recordedEvents(), 20u);
    EXPECT_EQ(Tracer::instance().droppedEvents(), 12u);
    const std::vector<TraceEvent> events =
        Tracer::instance().collect();
    ASSERT_EQ(events.size(), 8u);
    // The ring keeps the *newest* events, oldest-first.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_STREQ(events[i].name, "tick");
        EXPECT_EQ(events[i].arg, 12 + i) << "slot " << i;
    }
}

TEST_F(TraceTest, ResetClearsEventsAndDropCounters)
{
    Tracer::instance().setCapacityPerThread(4);
    setTraceEnabled(true);
    for (int i = 0; i < 9; ++i)
        traceInstant("tick");
    ASSERT_GT(Tracer::instance().droppedEvents(), 0u);
    Tracer::instance().reset();
    EXPECT_EQ(Tracer::instance().recordedEvents(), 0u);
    EXPECT_EQ(Tracer::instance().droppedEvents(), 0u);
    EXPECT_TRUE(Tracer::instance().collect().empty());
    traceInstant("after");
    EXPECT_EQ(Tracer::instance().recordedEvents(), 1u);
}

TEST_F(TraceTest, CrossThreadMergeOrdersByBeginTime)
{
    setTraceEnabled(true);
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 50;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([t] {
            Tracer::instance().nameThread("worker" +
                                          std::to_string(t));
            for (int i = 0; i < kSpansPerThread; ++i) {
                TraceSpan span("work");
                span.arg("i", static_cast<std::uint64_t>(i));
            }
        });
    for (std::thread &w : workers)
        w.join();

    const std::vector<TraceEvent> events =
        Tracer::instance().collect();
    ASSERT_EQ(events.size(),
              static_cast<std::size_t>(kThreads * kSpansPerThread));
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LE(events[i - 1].beginNs, events[i].beginNs)
            << "merge order broken at " << i;
    // All four recorders contributed, under distinct tids.
    std::vector<std::uint32_t> tids;
    for (const TraceEvent &e : events)
        tids.push_back(e.tid);
    std::sort(tids.begin(), tids.end());
    tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
    EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
    EXPECT_EQ(Tracer::instance().threadNames().size(),
              static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, ConcurrentRecordAndCollectIsSafe)
{
    // The TSan-facing test: one thread records while another
    // repeatedly merges and resets. No assertion beyond "no race" —
    // counts are racy by design, memory safety is not.
    setTraceEnabled(true);
    std::atomic<bool> stop{false};
    std::thread recorder([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            TraceSpan span("hot");
            traceInstant("dot");
        }
    });
    for (int i = 0; i < 50; ++i) {
        (void)Tracer::instance().collect();
        (void)Tracer::instance().recordedEvents();
        if (i % 10 == 9)
            Tracer::instance().reset();
    }
    stop.store(true, std::memory_order_relaxed);
    recorder.join();
}

TEST_F(TraceTest, TagScopeAppliesAmbientTagAndNests)
{
    setTraceEnabled(true);
    const TraceTag outer{7, 1, 0};
    const TraceTag inner{8, 2, 1};
    {
        TagScope scope_outer(outer);
        traceInstant("at_outer");
        {
            TagScope scope_inner(inner);
            TraceSpan span("at_inner");
        }
        traceInstant("back_at_outer");
    }
    traceInstant("no_tag");

    const std::vector<TraceEvent> events =
        Tracer::instance().collect();
    ASSERT_EQ(events.size(), 4u);
    auto find = [&](const char *name) -> const TraceEvent & {
        for (const TraceEvent &e : events)
            if (std::string(e.name) == name)
                return e;
        static TraceEvent none;
        return none;
    };
    EXPECT_EQ(find("at_outer").frame, 7u);
    EXPECT_EQ(find("at_outer").stream, 1u);
    EXPECT_EQ(find("at_inner").frame, 8u);
    EXPECT_EQ(find("at_inner").shard, 1);
    EXPECT_EQ(find("back_at_outer").frame, 7u);
    EXPECT_EQ(find("no_tag").frame, kNoFrame);
    EXPECT_EQ(find("no_tag").stream, kNoStream);
    EXPECT_EQ(find("no_tag").shard, kNoShard);
}

TEST_F(TraceTest, ExplicitBeginStitchesSpansExactly)
{
    setTraceEnabled(true);
    const std::uint64_t t0 = traceNowNs();
    const std::uint64_t t1 = traceNowNs();
    recordSpan("first", t0, t1, TraceTag{});
    recordSpan("second", t1, traceNowNs(), TraceTag{});
    const std::vector<TraceEvent> events =
        Tracer::instance().collect();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].endNs, events[1].beginNs);
}

} // namespace
} // namespace pce::obs
