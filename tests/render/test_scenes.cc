/**
 * @file
 * Tests for the procedural VR scenes (paper Sec. 5.1 substitution).
 */

#include <gtest/gtest.h>

#include "render/scenes.hh"

namespace pce {
namespace {

TEST(Scenes, AllSixScenesPresent)
{
    ASSERT_EQ(allScenes().size(), 6u);
    EXPECT_STREQ(sceneName(allScenes()[0]), "office");
    EXPECT_STREQ(sceneName(allScenes()[1]), "fortnite");
    EXPECT_STREQ(sceneName(allScenes()[2]), "skyline");
    EXPECT_STREQ(sceneName(allScenes()[3]), "dumbo");
    EXPECT_STREQ(sceneName(allScenes()[4]), "thai");
    EXPECT_STREQ(sceneName(allScenes()[5]), "monkey");
}

class SceneRenderTest : public ::testing::TestWithParam<SceneId>
{};

TEST_P(SceneRenderTest, DeterministicRendering)
{
    const RenderOptions opts{64, 64, 0, 1.5, 0};
    const ImageF a = renderScene(GetParam(), opts);
    const ImageF b = renderScene(GetParam(), opts);
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            ASSERT_EQ(a.at(x, y), b.at(x, y));
}

TEST_P(SceneRenderTest, PixelsInGamut)
{
    const ImageF img = renderScene(GetParam(), {48, 48, 0, 0.0, 0});
    for (const Vec3 &p : img.pixels()) {
        EXPECT_GE(p.minCoeff(), 0.0);
        EXPECT_LE(p.maxCoeff(), 1.0);
    }
}

TEST_P(SceneRenderTest, StereoEyesDiffer)
{
    const StereoFrame frame = renderStereo(GetParam(), 64, 64);
    EXPECT_EQ(frame.left.width(), 64);
    EXPECT_EQ(frame.right.width(), 64);
    int differing = 0;
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            differing += !(frame.left.at(x, y) == frame.right.at(x, y));
    EXPECT_GT(differing, 64);  // parallax shifts visible structure
}

TEST_P(SceneRenderTest, HasSpatialVariation)
{
    // No scene is a flat card: tile-level variance must exist for the
    // codecs to have anything to do.
    const ImageF img = renderScene(GetParam(), {64, 64, 0, 0.0, 0});
    const Vec3 mean = img.meanColor();
    double var = 0.0;
    for (const Vec3 &p : img.pixels())
        var += (p - mean).squaredNorm();
    var /= static_cast<double>(img.pixelCount());
    EXPECT_GT(var, 1e-4) << sceneName(GetParam());
}

TEST_P(SceneRenderTest, TimeAnimatesSomeScenes)
{
    const ImageF t0 = renderScene(GetParam(), {48, 48, 0, 0.0, 0});
    const ImageF t1 = renderScene(GetParam(), {48, 48, 0, 10.0, 0});
    // Time affects at least the animated scenes; for static ones this
    // simply must not crash. Count as informational.
    SUCCEED() << sceneName(GetParam()) << " meanLum t0="
              << t0.meanLuminance() << " t10=" << t1.meanLuminance();
}

INSTANTIATE_TEST_SUITE_P(
    AllScenes, SceneRenderTest, ::testing::ValuesIn(allScenes()),
    [](const ::testing::TestParamInfo<SceneId> &info) {
        return std::string(sceneName(info.param));
    });

TEST(SceneStatistics, FortniteIsBrightAndGreenDominant)
{
    // Paper Sec. 6.3: fortnite is "a bright scene with a large amount
    // of green" -- no participant noticed artifacts there.
    const ImageF img =
        renderScene(SceneId::Fortnite, {96, 96, 0, 0.0, 0});
    const Vec3 mean = img.meanColor();
    EXPECT_GT(img.meanLuminance(), 0.35);
    EXPECT_GT(mean.y, mean.x);  // green above red
}

TEST(SceneStatistics, DumboAndMonkeyAreDark)
{
    // Paper Sec. 6.3: "dumbo and monkey, both dark scenes".
    const double lum_dumbo =
        renderScene(SceneId::Dumbo, {96, 96, 0, 0.0, 0})
            .meanLuminance();
    const double lum_monkey =
        renderScene(SceneId::Monkey, {96, 96, 0, 0.0, 0})
            .meanLuminance();
    EXPECT_LT(lum_dumbo, 0.12);
    EXPECT_LT(lum_monkey, 0.12);
    // And clearly darker than the bright scene.
    const double lum_fortnite =
        renderScene(SceneId::Fortnite, {96, 96, 0, 0.0, 0})
            .meanLuminance();
    EXPECT_LT(lum_dumbo * 3.0, lum_fortnite);
}

TEST(SceneStatistics, ThaiIsWarm)
{
    const Vec3 mean =
        renderScene(SceneId::Thai, {96, 96, 0, 0.0, 0}).meanColor();
    EXPECT_GT(mean.x, mean.z);  // red above blue
}

TEST(Scenes, ResolutionIsRespected)
{
    const ImageF img =
        renderScene(SceneId::Office, {123, 45, 0, 0.0, 0});
    EXPECT_EQ(img.width(), 123);
    EXPECT_EQ(img.height(), 45);
}

TEST(Scenes, InvalidOptionsThrow)
{
    EXPECT_THROW(renderScene(SceneId::Office, {0, 10, 0, 0.0, 0}),
                 std::invalid_argument);
    EXPECT_THROW(renderScene(SceneId::Office, {10, 10, 2, 0.0, 0}),
                 std::invalid_argument);
}

TEST(Scenes, SeedPerturbsContent)
{
    const ImageF a = renderScene(SceneId::Monkey, {48, 48, 0, 0.0, 0});
    const ImageF b =
        renderScene(SceneId::Monkey, {48, 48, 0, 0.0, 999});
    int differing = 0;
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 48; ++x)
            differing += !(a.at(x, y) == b.at(x, y));
    EXPECT_GT(differing, 100);
}

} // namespace
} // namespace pce
