/**
 * @file
 * Tests for the fixed-point Compute-Extrema datapath model (Fig. 8).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "color/dkl.hh"
#include "common/rng.hh"
#include "hw/fixed_datapath.hh"

namespace pce {
namespace {

TEST(Fixed, RoundTripsDoubles)
{
    for (double v : {0.0, 1.0, -1.0, 0.123456, -3.75, 19.99}) {
        const Fixed f = Fixed::fromDouble(v, 24);
        EXPECT_NEAR(f.toDouble(), v, 1.0 / (1 << 24));
    }
}

TEST(Fixed, ArithmeticMatchesDoubles)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const double a = rng.uniform(-8.0, 8.0);
        const double b = rng.uniform(-8.0, 8.0);
        const Fixed fa = Fixed::fromDouble(a, 24);
        const Fixed fb = Fixed::fromDouble(b, 24);
        EXPECT_NEAR((fa + fb).toDouble(), a + b, 1e-6);
        EXPECT_NEAR((fa - fb).toDouble(), a - b, 1e-6);
        EXPECT_NEAR((fa * fb).toDouble(), a * b, 1e-5);
    }
}

TEST(Fixed, SqrtMatchesDouble)
{
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(1e-4, 50.0);
        const Fixed f = Fixed::fromDouble(v, 24);
        EXPECT_NEAR(f.sqrt().toDouble(), std::sqrt(v), 1e-5)
            << "v = " << v;
    }
    EXPECT_DOUBLE_EQ(Fixed::fromDouble(0.0, 24).sqrt().toDouble(), 0.0);
}

TEST(Fixed, ReciprocalMatchesDouble)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(0.05, 20.0);
        const Fixed f = Fixed::fromDouble(v, 24);
        EXPECT_NEAR(f.reciprocal().toDouble(), 1.0 / v, 1e-4)
            << "v = " << v;
    }
}

TEST(Fixed, DomainErrors)
{
    EXPECT_THROW(Fixed::fromDouble(-1.0, 24).sqrt(), std::domain_error);
    EXPECT_THROW(Fixed::fromDouble(0.0, 24).reciprocal(),
                 std::domain_error);
    EXPECT_THROW(Fixed::fromDouble(1.0, 0), std::invalid_argument);
}

class FixedWidthTest : public ::testing::TestWithParam<int>
{};

TEST_P(FixedWidthTest, ExtremaTrackDoubleReference)
{
    const int frac_bits = GetParam();
    const AnalyticDiscriminationModel model;
    const FixedDatapathConfig config{frac_bits};
    const auto err = compareFixedDatapath(model, 100, config);

    // Wider datapaths are (weakly) more accurate; concrete bounds per
    // width keep the trend honest (measured profile: ~3.8e-3 max at
    // F=24, ~2.7e-4 at F=28, ~1.8e-5 at F=32).
    if (frac_bits >= 28) {
        EXPECT_LT(err.maxAbsError, 1e-3);
    } else if (frac_bits >= 24) {
        EXPECT_LT(err.maxAbsError, 1e-2);
    } else if (frac_bits >= 20) {
        EXPECT_LT(err.maxAbsError, 2e-1);
    }
    EXPECT_LE(err.rmsError, err.maxAbsError);
}

TEST_P(FixedWidthTest, FixedExtremaRemainNearTheSurface)
{
    // Membership > 1 means the quantized datapath left the perceptual
    // constraint; it must stay within a width-dependent epsilon.
    const int frac_bits = GetParam();
    const AnalyticDiscriminationModel model;
    const auto err = compareFixedDatapath(
        model, 100, FixedDatapathConfig{frac_bits});
    if (frac_bits >= 24) {
        EXPECT_LT(err.maxMembership, 1.05);
    } else if (frac_bits >= 20) {
        EXPECT_LT(err.maxMembership, 1.6);
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, FixedWidthTest,
                         ::testing::Values(16, 20, 24, 28, 32));

TEST(FixedDatapath, AccuracyImprovesWithWidth)
{
    const AnalyticDiscriminationModel model;
    double prev = 1e300;
    for (int frac_bits : {14, 20, 26, 32}) {
        const auto err = compareFixedDatapath(
            model, 60, FixedDatapathConfig{frac_bits});
        EXPECT_LE(err.rmsError, prev * 1.5)
            << "frac_bits " << frac_bits;
        prev = err.rmsError;
    }
}

TEST(FixedDatapath, RejectsBadAxis)
{
    const AnalyticDiscriminationModel model;
    const Ellipsoid e = model.ellipsoidFor(Vec3(0.5, 0.5, 0.5), 20.0);
    EXPECT_THROW(extremaAlongAxisFixed(e, 3, FixedDatapathConfig{}),
                 std::invalid_argument);
}

TEST(FixedDatapath, HighAndLowOrderedLikeReference)
{
    const AnalyticDiscriminationModel model;
    Rng rng(9);
    for (int i = 0; i < 50; ++i) {
        const Vec3 rgb(rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                       rng.uniform(0.1, 0.9));
        const Ellipsoid e = model.ellipsoidFor(rgb, 25.0);
        for (int axis : {0, 2}) {
            const auto pair =
                extremaAlongAxisFixed(e, axis, FixedDatapathConfig{});
            EXPECT_GE(pair.high[axis], pair.low[axis]);
        }
    }
}

} // namespace
} // namespace pce
