/**
 * @file
 * Tests for the CAU and DRAM analytical models against the constants the
 * paper reports in Sec. 4, Sec. 6.1 and Fig. 13.
 */

#include <gtest/gtest.h>

#include "hw/cau_model.hh"
#include "hw/dram_model.hh"

namespace pce {
namespace {

TEST(CauModel, FrequencyFromCycleTime)
{
    const CauModel cau;
    // 6 ns -> ~166.7 MHz (Sec. 6.1).
    EXPECT_NEAR(cau.frequencyMhz(), 166.67, 0.01);
}

TEST(CauModel, PaperPeCount)
{
    // Sec. 6.1: 512 cores * 3 pixels per CAU cycle = 96 tiles -> 96 PEs.
    const CauModel cau;
    EXPECT_EQ(cau.pixelsPerCauCycle(), 512 * 3);
    EXPECT_EQ(cau.peCount(), 96);
}

TEST(CauModel, PaperAreaNumbers)
{
    const CauModel cau;
    // 96 PEs * 0.022 mm^2 = 2.112 mm^2 ("total PE size of 2.1 mm^2").
    EXPECT_NEAR(cau.peAreaTotalMm2(), 2.112, 1e-9);
    EXPECT_NEAR(cau.totalAreaMm2(), 2.112 + 0.03, 1e-9);
    // Negligible versus e.g. the 83.54 mm^2 Snapdragon 865 die.
    EXPECT_LT(cau.totalAreaMm2() / 83.54, 0.03);
}

TEST(CauModel, PaperPowerNumber)
{
    const CauModel cau;
    // 96 PEs * 2.1 uW = 201.6 uW (Sec. 6.1).
    EXPECT_NEAR(cau.totalPowerMw(), 0.2016, 1e-9);
}

TEST(CauModel, PaperPendingBufferSize)
{
    const CauModel cau;
    // 16 px * 12 B * 2 tiles * 96 PEs = 36,864 B (Sec. 6.1: "36 KB").
    EXPECT_EQ(cau.pendingBufferBytes(), 36864u);
}

TEST(CauModel, PaperCompressionDelay)
{
    const CauModel cau;
    // Sec. 6.1: 173.4 us at the Quest 2 maximum 5408x2736 resolution.
    EXPECT_NEAR(cau.compressionDelayUs(5408, 2736), 173.4, 0.3);
    // Negligible in a 13.9 ms frame at 72 FPS.
    EXPECT_TRUE(cau.meetsFrameRate(5408, 2736, 72.0));
    EXPECT_LT(cau.compressionDelayUs(5408, 2736) / (1e6 / 72.0), 0.02);
}

TEST(CauModel, DelayScalesLinearlyWithPixels)
{
    const CauModel cau;
    const double d1 = cau.compressionDelayUs(1000, 1000);
    const double d2 = cau.compressionDelayUs(2000, 1000);
    EXPECT_NEAR(d2, 2.0 * d1, 1e-9);
}

TEST(CauModel, ConfigOverridesPropagate)
{
    CauConfig config;
    config.cycleTimeNs = 3.0;   // faster clock
    config.shaderCores = 1024;  // bigger GPU
    const CauModel cau(config);
    EXPECT_NEAR(cau.frequencyMhz(), 333.33, 0.01);
    EXPECT_EQ(cau.pixelsPerCauCycle(), 1024 * 2);  // ceil(441/333.3)=2
    EXPECT_EQ(cau.peCount(), 128);
}

TEST(CauModel, RejectsInvalidConfig)
{
    CauConfig config;
    config.cycleTimeNs = 0.0;
    EXPECT_THROW(CauModel{config}, std::invalid_argument);
}

TEST(DramModel, EnergyPerByteMatchesPaperConstant)
{
    const DramModel dram;
    EXPECT_NEAR(dram.config().energyPerBytePj(), 3477.0 / 3.0, 1e-9);
}

TEST(DramModel, TransferEnergyScalesLinearly)
{
    const DramModel dram;
    EXPECT_NEAR(dram.transferEnergyMj(2e6),
                2.0 * dram.transferEnergyMj(1e6), 1e-12);
}

TEST(DramModel, StreamPowerMatchesManualArithmetic)
{
    const DramModel dram;
    // 1 MB/frame * 72 fps * 1159 pJ/B (round trip) = 83.4 mW.
    const double want = 1e6 * 72 * (3477.0 / 3.0) * 1e-9;
    EXPECT_NEAR(dram.streamPowerMw(1e6, 72.0), want, 1e-9);
}

TEST(DramModel, PowerSavingSubtractsOverhead)
{
    const DramModel dram;
    const double saving =
        dram.powerSavingMw(2e6, 1e6, 72.0, 0.2016);
    const double gross = dram.streamPowerMw(2e6, 72.0) -
                         dram.streamPowerMw(1e6, 72.0);
    EXPECT_NEAR(saving, gross - 0.2016, 1e-12);
}

TEST(DramModel, PaperScalePowerSavingMagnitude)
{
    // Fig. 13 reports hundreds of mW of savings at Quest-2 resolutions.
    // With BD at ~12 bpp and ours at ~8 bpp (Fig. 11 ballpark), the
    // model must land in that regime at 5408x2736@72.
    const DramModel dram;
    const double pixels = 5408.0 * 2736.0;
    const double bd_bytes = pixels * 12.0 / 8.0;
    const double ours_bytes = pixels * 8.0 / 8.0;
    const double saving =
        dram.powerSavingMw(bd_bytes, ours_bytes, 72.0, 0.2016);
    EXPECT_GT(saving, 100.0);
    EXPECT_LT(saving, 2000.0);
}

TEST(DramModel, RejectsInvalidConfig)
{
    DramConfig config;
    config.energyPerPixelPj = -1.0;
    EXPECT_THROW(DramModel{config}, std::invalid_argument);
}

} // namespace
} // namespace pce
