/**
 * @file
 * Tests for the cycle-approximate CAU pipeline simulator (Sec. 4.2).
 */

#include <gtest/gtest.h>

#include "hw/cau_model.hh"
#include "hw/cau_sim.hh"

namespace pce {
namespace {

CauSimConfig
paperConfig()
{
    CauSimConfig config;
    config.peCount = 96;
    config.bufferTilesPerPe = 2;
    config.tilePixels = 16;
    config.gpuPixelsPerCycle = 1536.0;  // peak GPU output
    return config;
}

TEST(CauSim, PaperDesignPointRunsStallFree)
{
    // Sec. 4.2 / 6.1: 96 PEs with double-buffered pending buffers match
    // the GPU's peak tile rate -- no GPU back-pressure.
    const CauPipelineSim sim(paperConfig());
    const auto result = sim.simulateFrame(uint64_t(1536) * 16 * 1000);
    EXPECT_EQ(result.gpuStallCycles, 0u);
    EXPECT_GT(result.peUtilization(), 0.99);
}

TEST(CauSim, TileConservation)
{
    const CauPipelineSim sim(paperConfig());
    const uint64_t pixels = 5408ull * 2736ull;
    const auto result = sim.simulateFrame(pixels);
    EXPECT_EQ(result.tilesProcessed, (pixels + 15) / 16);
}

TEST(CauSim, HalvingPeCountStallsTheGpu)
{
    CauSimConfig config = paperConfig();
    config.peCount = 48;
    const CauPipelineSim sim(config);
    const auto result = sim.simulateFrame(uint64_t(1536) * 16 * 200);
    EXPECT_GT(result.gpuStallFraction(), 0.4);

    // Throughput degrades toward the PE-bound rate: roughly twice the
    // cycles of the balanced design.
    const auto balanced =
        CauPipelineSim(paperConfig())
            .simulateFrame(uint64_t(1536) * 16 * 200);
    EXPECT_GT(result.cycles, balanced.cycles * 3 / 2);
}

TEST(CauSim, OverProvisionedPesStarve)
{
    CauSimConfig config = paperConfig();
    config.peCount = 192;  // twice what the GPU can feed
    const CauPipelineSim sim(config);
    const auto result = sim.simulateFrame(uint64_t(1536) * 16 * 500);
    EXPECT_EQ(result.gpuStallCycles, 0u);
    EXPECT_LT(result.peUtilization(), 0.55);
}

TEST(CauSim, BuffersNeverExceedCapacity)
{
    for (int depth : {1, 2, 4}) {
        CauSimConfig config = paperConfig();
        config.bufferTilesPerPe = depth;
        const auto result = CauPipelineSim(config).simulateFrame(
            uint64_t(1536) * 16 * 100);
        EXPECT_LE(result.maxBufferOccupancy, depth);
    }
}

TEST(CauSim, BurstyTrafficNeedsDeeperBuffers)
{
    // At a 40% duty cycle the GPU bursts above the CAU's consumption
    // rate (120 tiles/cycle vs 96); single-buffering back-pressures
    // during bursts while deeper buffers absorb them.
    CauSimConfig shallow = paperConfig();
    shallow.traffic = GpuTraffic::Bursty;
    shallow.dutyCycle = 0.4;
    shallow.burstCycles = 8;
    shallow.gpuPixelsPerCycle = 768.0;  // average; peak = 1920 px
    shallow.bufferTilesPerPe = 1;

    CauSimConfig deep = shallow;
    deep.bufferTilesPerPe = 4;

    const uint64_t pixels = uint64_t(1536) * 16 * 200;
    const auto r_shallow = CauPipelineSim(shallow).simulateFrame(pixels);
    const auto r_deep = CauPipelineSim(deep).simulateFrame(pixels);
    EXPECT_GT(r_shallow.gpuStallCycles, r_deep.gpuStallCycles);
}

TEST(CauSim, UnderfedCauStarvesWithoutStalling)
{
    CauSimConfig config = paperConfig();
    config.gpuPixelsPerCycle = 768.0;  // GPU at half rate
    const auto result = CauPipelineSim(config).simulateFrame(
        uint64_t(1536) * 16 * 200);
    EXPECT_EQ(result.gpuStallCycles, 0u);
    EXPECT_NEAR(result.peUtilization(), 0.5, 0.05);
}

TEST(CauSim, AgreesWithAnalyticalDelayAtDesignPoint)
{
    // At the balanced design point the simulated frame time should
    // match the analytical sustained-rate delay model within a few
    // percent (pipeline fill/drain overhead).
    const CauModel analytic;
    const CauPipelineSim sim(paperConfig());
    const uint64_t w = 5408;
    const uint64_t h = 2736;

    // The analytic model assumes the *sustained* GPU rate of 1 px per
    // core per CAU cycle (512/cycle); configure the sim to match.
    CauSimConfig sustained = paperConfig();
    sustained.gpuPixelsPerCycle = 512.0;
    const auto result =
        CauPipelineSim(sustained).simulateFrame(w * h);
    const double sim_us =
        static_cast<double>(result.cycles) * 6.0 / 1000.0;
    const double analytic_us =
        analytic.compressionDelayUs(static_cast<int>(w),
                                    static_cast<int>(h));
    EXPECT_NEAR(sim_us, analytic_us, analytic_us * 0.05);
}

TEST(CauSim, RejectsInvalidConfig)
{
    CauSimConfig config = paperConfig();
    config.peCount = 0;
    EXPECT_THROW(CauPipelineSim{config}, std::invalid_argument);

    config = paperConfig();
    config.traffic = GpuTraffic::Bursty;
    config.dutyCycle = 0.0;
    EXPECT_THROW(CauPipelineSim{config}, std::invalid_argument);
}

} // namespace
} // namespace pce
