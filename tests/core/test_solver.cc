/**
 * @file
 * Validation of the analytical solution against the iterative reference
 * solver (paper Sec. 3.2-3.3): the closed form must be optimal for the
 * relaxed convex objective.
 */

#include <gtest/gtest.h>

#include "color/dkl.hh"
#include "common/rng.hh"
#include "core/adjust.hh"
#include "core/reference_solver.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

TEST(ChannelSpread, BasicValues)
{
    const std::vector<Vec3> colors{Vec3(0.1, 0.5, 0.3),
                                   Vec3(0.4, 0.5, 0.9),
                                   Vec3(0.2, 0.5, 0.1)};
    EXPECT_NEAR(channelSpread(colors, 0), 0.3, 1e-12);
    EXPECT_NEAR(channelSpread(colors, 1), 0.0, 1e-12);
    EXPECT_NEAR(channelSpread(colors, 2), 0.8, 1e-12);
    EXPECT_DOUBLE_EQ(channelSpread({}, 0), 0.0);
}

TEST(ReferenceSolver, StaysFeasible)
{
    Rng rng(1);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Vec3> pixels;
        std::vector<Ellipsoid> ellipsoids;
        const double ecc = rng.uniform(8.0, 30.0);
        for (int i = 0; i < 8; ++i) {
            const Vec3 p(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8),
                         rng.uniform(0.2, 0.8));
            pixels.push_back(p);
            ellipsoids.push_back(model().ellipsoidFor(p, ecc));
        }
        const auto result =
            minimizeSpreadSubgradient(pixels, ellipsoids, 2, 200);
        for (std::size_t i = 0; i < pixels.size(); ++i)
            EXPECT_LE(ellipsoids[i].membership(
                          rgbToDkl(result.colors[i])),
                      1.0 + 1e-6);
    }
}

TEST(ReferenceSolver, ImprovesOrMatchesInitialSpread)
{
    Rng rng(2);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Vec3> pixels;
        std::vector<Ellipsoid> ellipsoids;
        for (int i = 0; i < 8; ++i) {
            const Vec3 p(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8),
                         rng.uniform(0.2, 0.8));
            pixels.push_back(p);
            ellipsoids.push_back(model().ellipsoidFor(p, 25.0));
        }
        const auto result =
            minimizeSpreadSubgradient(pixels, ellipsoids, 2, 200);
        EXPECT_LE(result.spread, channelSpread(pixels, 2) + 1e-12);
    }
}

class AnalyticalOptimalityTest : public ::testing::TestWithParam<int>
{};

TEST_P(AnalyticalOptimalityTest, ClosedFormBeatsIterativeSolver)
{
    // The paper's central mathematical claim: the relaxed problem has an
    // analytical solution (no iterative solver needed). We verify the
    // closed form attains a spread no worse than 400 steps of projected
    // subgradient descent, modulo a small tolerance for the solver's
    // own noise.
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(40 + axis);
    for (int trial = 0; trial < 15; ++trial) {
        std::vector<Vec3> pixels;
        std::vector<Ellipsoid> ellipsoids;
        std::vector<double> ecc;
        const double e = rng.uniform(10.0, 30.0);
        for (int i = 0; i < 8; ++i) {
            const Vec3 p(rng.uniform(0.3, 0.7), rng.uniform(0.3, 0.7),
                         rng.uniform(0.3, 0.7));
            pixels.push_back(p);
            ellipsoids.push_back(model().ellipsoidFor(p, e));
            ecc.push_back(e);
        }

        const auto analytic =
            adjuster.adjustAlongAxis(pixels, ecc, axis);
        const auto iterative =
            minimizeSpreadSubgradient(pixels, ellipsoids, axis, 400);

        // Gamut clamping can sacrifice spread for feasibility; only the
        // unclamped case is a pure optimality comparison.
        if (analytic.gamutClampedPixels == 0) {
            EXPECT_LE(channelSpread(analytic.adjusted, axis),
                      iterative.spread + 1e-4)
                << "trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Axes, AnalyticalOptimalityTest,
                         ::testing::Values(0, 2));

TEST(ReferenceSolver, MatchesTheoreticalOptimumInCase1)
{
    // For case-1 tiles the optimal spread is exactly HL - LH (Sec. 3.3);
    // the solver should approach it and never beat it.
    const TileAdjuster adjuster(model());
    Rng rng(50);
    int checked = 0;
    for (int trial = 0; trial < 100 && checked < 5; ++trial) {
        std::vector<Vec3> pixels;
        std::vector<Ellipsoid> ellipsoids;
        std::vector<double> ecc;
        for (int i = 0; i < 6; ++i) {
            const Vec3 p(rng.uniform(0.2, 0.8), rng.uniform(0.2, 0.8),
                         rng.uniform(0.2, 0.8));
            pixels.push_back(p);
            ellipsoids.push_back(model().ellipsoidFor(p, 8.0));
            ecc.push_back(8.0);
        }
        const auto analytic = adjuster.adjustAlongAxis(pixels, ecc, 2);
        if (analytic.adjustCase != AdjustCase::C1)
            continue;
        ++checked;
        const double optimum = analytic.hlPlane - analytic.lhPlane;
        const auto iterative =
            minimizeSpreadSubgradient(pixels, ellipsoids, 2, 600);
        EXPECT_GE(iterative.spread, optimum - 1e-6);
    }
    EXPECT_GT(checked, 0);
}

TEST(ReferenceSolver, RejectsMismatchedInput)
{
    const std::vector<Vec3> pixels(3, Vec3(0.5, 0.5, 0.5));
    const std::vector<Ellipsoid> ellipsoids(2);
    EXPECT_THROW(minimizeSpreadSubgradient(pixels, ellipsoids, 2),
                 std::invalid_argument);
}

} // namespace
} // namespace pce
