/**
 * @file
 * Tests for the per-tile color adjustment (paper Sec. 3.3-3.4, Fig. 6).
 */

#include <gtest/gtest.h>

#include "bd/bd_codec.hh"
#include "color/dkl.hh"
#include "color/srgb.hh"
#include "common/rng.hh"
#include "core/adjust.hh"
#include "core/quadric.hh"
#include "core/reference_solver.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

/** A random tile of colors around a base color (typical tile locality). */
std::vector<Vec3>
randomTile(Rng &rng, std::size_t n, double spread)
{
    const Vec3 base(rng.uniform(0.15, 0.85), rng.uniform(0.15, 0.85),
                    rng.uniform(0.15, 0.85));
    std::vector<Vec3> tile;
    for (std::size_t i = 0; i < n; ++i) {
        Vec3 p = base + Vec3(rng.uniform(-spread, spread),
                             rng.uniform(-spread, spread),
                             rng.uniform(-spread, spread));
        tile.push_back(p.clamped(0.0, 1.0));
    }
    return tile;
}

class AdjustAxisTest : public ::testing::TestWithParam<int>
{};

TEST_P(AdjustAxisTest, AdjustedColorsStayInsideTheirEllipsoids)
{
    // The perceptual constraint Eq. 7d: every adjusted color must stay
    // within its own discrimination ellipsoid.
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(1 + axis);
    for (int trial = 0; trial < 60; ++trial) {
        const auto tile = randomTile(rng, 16, 0.05);
        const std::vector<double> ecc(16, rng.uniform(6.0, 35.0));
        const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
        for (std::size_t i = 0; i < tile.size(); ++i) {
            const Ellipsoid e = model().ellipsoidFor(tile[i], ecc[i]);
            EXPECT_LE(e.membership(rgbToDkl(result.adjusted[i])),
                      1.0 + 1e-6)
                << "trial " << trial << " pixel " << i;
        }
    }
}

TEST_P(AdjustAxisTest, SpreadNeverIncreases)
{
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(4 + axis);
    for (int trial = 0; trial < 60; ++trial) {
        const auto tile = randomTile(rng, 16, 0.08);
        const std::vector<double> ecc(16, rng.uniform(6.0, 35.0));
        const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
        EXPECT_LE(channelSpread(result.adjusted, axis),
                  channelSpread(tile, axis) + 1e-12);
    }
}

TEST_P(AdjustAxisTest, AdjustedColorsStayInGamut)
{
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(7 + axis);
    for (int trial = 0; trial < 60; ++trial) {
        // Tiles near the gamut boundary to exercise the clamping.
        std::vector<Vec3> tile;
        for (int i = 0; i < 16; ++i)
            tile.push_back(Vec3(rng.uniform(), rng.uniform(),
                                rng.uniform(0.9, 1.0)));
        const std::vector<double> ecc(16, 30.0);
        const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
        for (const Vec3 &p : result.adjusted) {
            EXPECT_GE(p.minCoeff(), -1e-12);
            EXPECT_LE(p.maxCoeff(), 1.0 + 1e-12);
        }
    }
}

TEST_P(AdjustAxisTest, Case2CollapsesChannelWithoutGamutPressure)
{
    // Identical pixels trivially admit a common plane: after adjustment
    // the channel spread must be exactly zero and nothing should move
    // (the common plane passes through the original value).
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    const std::vector<Vec3> tile(16, Vec3(0.5, 0.5, 0.5));
    const std::vector<double> ecc(16, 20.0);
    const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
    EXPECT_EQ(result.adjustCase, AdjustCase::C2);
    EXPECT_NEAR(channelSpread(result.adjusted, axis), 0.0, 1e-12);
}

TEST_P(AdjustAxisTest, NearbyColorsCollapseToCommonPlane)
{
    // Colors within a JND of each other fall into case 2 (Fig. 6b): the
    // optimized channel needs zero delta bits.
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(10 + axis);
    for (int trial = 0; trial < 40; ++trial) {
        const auto tile = randomTile(rng, 16, 0.004);
        const std::vector<double> ecc(16, 30.0);
        const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
        if (result.adjustCase == AdjustCase::C2 &&
            result.gamutClampedPixels == 0) {
            EXPECT_NEAR(channelSpread(result.adjusted, axis), 0.0,
                        1e-9);
        }
    }
}

TEST_P(AdjustAxisTest, CaseClassificationMatchesPlanes)
{
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(13 + axis);
    for (int trial = 0; trial < 40; ++trial) {
        const auto tile = randomTile(rng, 16, 0.15);
        const std::vector<double> ecc(16, rng.uniform(6.0, 35.0));
        const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
        if (result.adjustCase == AdjustCase::C1)
            EXPECT_GT(result.hlPlane, result.lhPlane);
        else
            EXPECT_LE(result.hlPlane, result.lhPlane);
    }
}

TEST_P(AdjustAxisTest, Case1SpreadBoundedByPlaneGap)
{
    const int axis = GetParam();
    const TileAdjuster adjuster(model());
    Rng rng(16 + axis);
    int case1_seen = 0;
    for (int trial = 0; trial < 200 && case1_seen < 10; ++trial) {
        const auto tile = randomTile(rng, 16, 0.3);
        const std::vector<double> ecc(16, 8.0);
        const auto result = adjuster.adjustAlongAxis(tile, ecc, axis);
        if (result.adjustCase != AdjustCase::C1 ||
            result.gamutClampedPixels > 0)
            continue;
        ++case1_seen;
        EXPECT_LE(channelSpread(result.adjusted, axis),
                  result.hlPlane - result.lhPlane + 1e-9);
    }
    EXPECT_GT(case1_seen, 0) << "no case-1 tiles sampled";
}

INSTANTIATE_TEST_SUITE_P(Axes, AdjustAxisTest, ::testing::Values(0, 2));

TEST(AdjustTile, PicksTheCheaperAxis)
{
    const TileAdjuster adjuster(model());
    Rng rng(30);
    for (int trial = 0; trial < 40; ++trial) {
        const auto tile = randomTile(rng, 16, 0.05);
        const std::vector<double> ecc(16, rng.uniform(6.0, 35.0));
        const auto result = adjuster.adjustTile(tile, ecc);
        const std::size_t chosen_bits = bdTileBits(result.adjusted);
        EXPECT_EQ(chosen_bits,
                  std::min(result.bitsRed, result.bitsBlue));
        if (result.chosenAxis == 0)
            EXPECT_LT(result.bitsRed, result.bitsBlue);
        else
            EXPECT_LE(result.bitsBlue, result.bitsRed);
    }
}

TEST(AdjustTile, NeverWorseThanUnadjustedBd)
{
    // The whole point (Sec. 3.1): adjustment reduces delta magnitudes,
    // so the BD cost of the adjusted tile is at most the original cost.
    const TileAdjuster adjuster(model());
    Rng rng(31);
    for (int trial = 0; trial < 100; ++trial) {
        const auto tile = randomTile(rng, 16, rng.uniform(0.0, 0.1));
        const std::vector<double> ecc(16, rng.uniform(6.0, 35.0));
        const auto result = adjuster.adjustTile(tile, ecc);
        EXPECT_LE(bdTileBits(result.adjusted), bdTileBits(tile) + 3)
            << "trial " << trial;
        // +3 bits of slack: quantization of moved colors can shift a
        // channel's range across a power-of-two boundary in rare cases.
    }
}

TEST(AdjustAlongAxis, RejectsBadInput)
{
    const TileAdjuster adjuster(model());
    const std::vector<Vec3> tile(4, Vec3(0.5, 0.5, 0.5));
    const std::vector<double> ecc(3, 10.0);
    EXPECT_THROW(adjuster.adjustAlongAxis(tile, ecc, 2),
                 std::invalid_argument);
    const std::vector<double> ecc4(4, 10.0);
    EXPECT_THROW(adjuster.adjustAlongAxis(tile, ecc4, 1),
                 std::invalid_argument);
}

TEST(AdjustAlongAxis, EmptyTileIsNoop)
{
    const TileAdjuster adjuster(model());
    const auto result = adjuster.adjustAlongAxis({}, {}, 2);
    EXPECT_TRUE(result.adjusted.empty());
}

TEST(AdjustTile, ScratchFlowMatchesPerAxisComposition)
{
    // The zero-allocation flow (ellipsoids shared across axes, fused
    // both-axes extrema, LUT quantization) must reproduce the
    // single-axis path bit for bit, metadata included.
    const TileAdjuster adjuster(model());
    Rng rng(40);
    TileScratch scratch;
    for (int trial = 0; trial < 40; ++trial) {
        const auto tile = randomTile(rng, 16, rng.uniform(0.0, 0.15));
        std::vector<double> ecc;
        for (int i = 0; i < 16; ++i)
            ecc.push_back(rng.uniform(6.0, 35.0));

        const AxisAdjustment red =
            adjuster.adjustAlongAxis(tile, ecc, 0);
        const AxisAdjustment blue =
            adjuster.adjustAlongAxis(tile, ecc, 2);
        const std::size_t bits_red = bdTileBits(red.adjusted);
        const std::size_t bits_blue = bdTileBits(blue.adjusted);

        scratch.pixels = tile;
        scratch.ecc = ecc;
        const TileOutcome out = adjuster.adjustTile(scratch);

        EXPECT_EQ(out.caseRed, red.adjustCase);
        EXPECT_EQ(out.caseBlue, blue.adjustCase);
        EXPECT_EQ(out.bitsRed, bits_red);
        EXPECT_EQ(out.bitsBlue, bits_blue);
        const AxisAdjustment &chosen =
            out.chosenAxis == 0 ? red : blue;
        EXPECT_EQ(out.gamutClampedPixels, chosen.gamutClampedPixels);
        ASSERT_EQ(out.adjusted->size(), tile.size());
        for (std::size_t i = 0; i < tile.size(); ++i)
            EXPECT_EQ((*out.adjusted)[i], chosen.adjusted[i])
                << "trial " << trial << " pixel " << i;
    }
}

TEST(AdjustTile, ScratchReuseAcrossTilesLeaksNoState)
{
    // One scratch reused across tiles of varying size (including the
    // ragged edge-tile shapes) must match fresh-scratch results.
    const TileAdjuster adjuster(model());
    Rng rng(41);
    TileScratch reused;
    const std::size_t sizes[] = {16, 4, 16, 12, 8, 16, 2, 1, 16};
    for (const std::size_t n : sizes) {
        const auto tile = randomTile(rng, n, 0.08);
        const std::vector<double> ecc(n, rng.uniform(6.0, 35.0));

        reused.pixels = tile;
        reused.ecc = ecc;
        const TileOutcome a = adjuster.adjustTile(reused);
        const std::vector<Vec3> a_adjusted = *a.adjusted;

        TileScratch fresh;
        fresh.pixels = tile;
        fresh.ecc = ecc;
        const TileOutcome b = adjuster.adjustTile(fresh);

        EXPECT_EQ(a.chosenAxis, b.chosenAxis);
        EXPECT_EQ(a.bitsRed, b.bitsRed);
        EXPECT_EQ(a.bitsBlue, b.bitsBlue);
        ASSERT_EQ(a_adjusted.size(), b.adjusted->size());
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(a_adjusted[i], (*b.adjusted)[i]);
    }
}

TEST(AdjustTile, ScratchFlowRejectsSizeMismatch)
{
    const TileAdjuster adjuster(model());
    TileScratch scratch;
    scratch.pixels.assign(4, Vec3(0.5, 0.5, 0.5));
    scratch.ecc.assign(3, 10.0);
    EXPECT_THROW(adjuster.adjustTile(scratch), std::invalid_argument);
}

TEST(BdTileBits, FromCodesMatchesLinearPath)
{
    Rng rng(42);
    for (int trial = 0; trial < 20; ++trial) {
        const auto tile = randomTile(rng, 16, 0.1);
        std::vector<uint8_t> codes(tile.size() * 3);
        linearToSrgb8(tile.data(), tile.size(), codes.data());
        EXPECT_EQ(bdTileBitsFromCodes(codes.data(), tile.size()),
                  bdTileBits(tile));
    }
}

TEST(BdTileBits, MatchesManualAccounting)
{
    // Two-pixel tile with known sRGB values.
    std::vector<Vec3> tile{Vec3(0.0, 0.0, 0.0), Vec3(0.0, 0.0, 0.0)};
    // Flat tile: every channel has range 0 -> only meta+base per channel.
    EXPECT_EQ(bdTileBits(tile), 3u * (4 + 8));
}

} // namespace
} // namespace pce
