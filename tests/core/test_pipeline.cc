/**
 * @file
 * Tests for the frame-level perceptual encoding pipeline (paper Fig. 7).
 */

#include <gtest/gtest.h>

#include "color/dkl.hh"
#include "core/pipeline.hh"
#include "core/quadric.hh"
#include "render/scenes.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h, double fov = 100.0)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = fov;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

TEST(Pipeline, FovealPixelsAreBitExact)
{
    const int n = 128;
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    PipelineStats stats;
    const ImageF adjusted = enc.adjustFrame(frame, ecc, &stats);

    EXPECT_GT(stats.fovealBypassTiles, 0u);
    for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
            if (ecc.at(x, y) < 5.0) {
                EXPECT_EQ(adjusted.at(x, y), frame.at(x, y))
                    << "foveal pixel (" << x << "," << y << ") moved";
            }
        }
    }
}

TEST(Pipeline, AdjustedPixelsStayWithinEllipsoids)
{
    const int n = 96;
    const ImageF frame =
        renderScene(SceneId::Skyline, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    const ImageF adjusted = enc.adjustFrame(frame, ecc);

    for (int y = 0; y < n; y += 3) {
        for (int x = 0; x < n; x += 3) {
            const Ellipsoid e = model().ellipsoidFor(
                frame.at(x, y).clamped(0.0, 1.0), ecc.at(x, y));
            EXPECT_LE(e.membership(rgbToDkl(adjusted.at(x, y))),
                      1.0 + 1e-6)
                << "pixel (" << x << "," << y << ")";
        }
    }
}

TEST(Pipeline, StatsAccountEveryTile)
{
    const int n = 64;
    const ImageF frame =
        renderScene(SceneId::Thai, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    PipelineParams params;
    params.tileSize = 4;
    const PerceptualEncoder enc(model(), params);
    PipelineStats stats;
    enc.adjustFrame(frame, ecc, &stats);

    EXPECT_EQ(stats.totalTiles, static_cast<std::size_t>((n / 4) *
                                                         (n / 4)));
    EXPECT_EQ(stats.totalTiles,
              stats.fovealBypassTiles + stats.c1Tiles + stats.c2Tiles);
    EXPECT_EQ(stats.c1Tiles + stats.c2Tiles,
              stats.redAxisTiles + stats.blueAxisTiles);
}

TEST(Pipeline, EncodeProducesDecodableStream)
{
    const int n = 64;
    const ImageF frame =
        renderScene(SceneId::Fortnite, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    EncodedFrame encoded = enc.encodeFrame(frame, ecc);

    // Decoding needs only the stock BD decoder (no custom hardware);
    // verifyRoundTrip runs the hardened decodeInto over the frame's
    // own reusable decode buffers.
    EXPECT_TRUE(enc.verifyRoundTrip(encoded));
    EXPECT_EQ(encoded.roundTripSrgb, encoded.adjustedSrgb);
    // analyze() and the materialized stream agree (byte padding only).
    EXPECT_NEAR(static_cast<double>(encoded.bdStats.totalBits()),
                static_cast<double>(encoded.bdStream.size() * 8), 8.0);
}

TEST(Pipeline, CompressesAtLeastAsWellAsPlainBd)
{
    const int n = 128;
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});
    const BdCodec bd(4);
    for (SceneId id : allScenes()) {
        const ImageF frame = renderScene(id, {n, n, 0, 0.0, 0});
        const auto base = bd.analyze(toSrgb8(frame));
        const auto ours = enc.encodeFrame(frame, ecc);
        EXPECT_LE(ours.bdStats.totalBits(), base.totalBits())
            << sceneName(id);
    }
}

TEST(Pipeline, MultiThreadedMatchesSerial)
{
    const int n = 96;
    const ImageF frame =
        renderScene(SceneId::Monkey, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);

    PipelineParams serial;
    serial.threads = 1;
    PipelineParams parallel;
    parallel.threads = 4;
    PipelineStats s1, s2;
    const ImageF a =
        PerceptualEncoder(model(), serial).adjustFrame(frame, ecc, &s1);
    const ImageF b = PerceptualEncoder(model(), parallel)
                         .adjustFrame(frame, ecc, &s2);

    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            EXPECT_EQ(a.at(x, y), b.at(x, y));
    EXPECT_EQ(s1.totalTiles, s2.totalTiles);
    EXPECT_EQ(s1.c1Tiles, s2.c1Tiles);
    EXPECT_EQ(s1.c2Tiles, s2.c2Tiles);
    EXPECT_EQ(s1.gamutClampedPixels, s2.gamutClampedPixels);
}

TEST(Pipeline, ThreadCountInvarianceIsBitExact)
{
    // The dynamic chunk scheduler must never leak into results: 1 vs 8
    // threads (more than this machine may have) produce byte-identical
    // frames, bitstreams, and every PipelineStats field. Repeated
    // frames through the same encoder exercise scratch/pool reuse.
    const int n = 96;
    const EccentricityMap ecc = centeredMap(n, n);
    PipelineParams serial;
    serial.threads = 1;
    PipelineParams parallel;
    parallel.threads = 8;
    const PerceptualEncoder enc1(model(), serial);
    const PerceptualEncoder enc8(model(), parallel);

    for (SceneId id : {SceneId::Office, SceneId::Dumbo}) {
        const ImageF frame = renderScene(id, {n, n, 0, 0.0, 0});
        for (int repeat = 0; repeat < 2; ++repeat) {
            const EncodedFrame a = enc1.encodeFrame(frame, ecc);
            const EncodedFrame b = enc8.encodeFrame(frame, ecc);

            // Adjusted linear frames are double-identical...
            EXPECT_EQ(a.adjustedLinear.pixels(),
                      b.adjustedLinear.pixels())
                << sceneName(id);
            // ...so the quantized frames and streams are byte-equal.
            EXPECT_EQ(a.adjustedSrgb, b.adjustedSrgb) << sceneName(id);
            EXPECT_EQ(a.bdStream, b.bdStream) << sceneName(id);

            EXPECT_EQ(a.stats.totalTiles, b.stats.totalTiles);
            EXPECT_EQ(a.stats.fovealBypassTiles,
                      b.stats.fovealBypassTiles);
            EXPECT_EQ(a.stats.c1Tiles, b.stats.c1Tiles);
            EXPECT_EQ(a.stats.c2Tiles, b.stats.c2Tiles);
            EXPECT_EQ(a.stats.redAxisTiles, b.stats.redAxisTiles);
            EXPECT_EQ(a.stats.blueAxisTiles, b.stats.blueAxisTiles);
            EXPECT_EQ(a.stats.gamutClampedPixels,
                      b.stats.gamutClampedPixels);
            EXPECT_EQ(a.bdStats.totalBits(), b.bdStats.totalBits());
        }
    }
}

TEST(Pipeline, LargerFovealCutoffBypassesMoreTiles)
{
    const int n = 96;
    const ImageF frame =
        renderScene(SceneId::Dumbo, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);

    PipelineParams small;
    small.fovealCutoffDeg = 2.0;
    PipelineParams large;
    large.fovealCutoffDeg = 20.0;
    PipelineStats s_small, s_large;
    PerceptualEncoder(model(), small)
        .adjustFrame(frame, ecc, &s_small);
    PerceptualEncoder(model(), large)
        .adjustFrame(frame, ecc, &s_large);
    EXPECT_GT(s_large.fovealBypassTiles, s_small.fovealBypassTiles);
}

TEST(Pipeline, MismatchedEccMapThrows)
{
    const ImageF frame(32, 32);
    const EccentricityMap ecc = centeredMap(16, 16);
    const PerceptualEncoder enc(model(), {});
    EXPECT_THROW(enc.adjustFrame(frame, ecc), std::invalid_argument);
}

TEST(Pipeline, RejectsBadThreadCount)
{
    PipelineParams params;
    params.threads = 0;
    EXPECT_THROW(PerceptualEncoder(model(), params),
                 std::invalid_argument);
}

TEST(Pipeline, CustomExtremaBackendIsUsed)
{
    // A pathological backend that reports zero mobility (high == low ==
    // center) must leave every pixel untouched -- proof the hook is on
    // the actual datapath.
    const int n = 64;
    const ImageF frame =
        renderScene(SceneId::Thai, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);

    PipelineParams params;
    params.extremaFn = [](const Ellipsoid &e, int axis) {
        (void)axis;
        ExtremaPair pair;
        pair.high = dklToRgb(e.centerDkl);
        pair.low = pair.high;
        return pair;
    };
    const PerceptualEncoder enc(model(), params);
    const ImageF adjusted = enc.adjustFrame(frame, ecc);
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x)
            EXPECT_EQ(adjusted.at(x, y), frame.at(x, y));
}

} // namespace
} // namespace pce
