/**
 * @file
 * Tests for the quadric transform and extrema datapath (paper Sec. 3.4,
 * Eq. 9-13).
 */

#include <gtest/gtest.h>

#include "color/dkl.hh"
#include "common/rng.hh"
#include "core/quadric.hh"
#include "perception/discrimination.hh"

namespace pce {
namespace {

Ellipsoid
randomEllipsoid(Rng &rng)
{
    const AnalyticDiscriminationModel model;
    const Vec3 rgb(rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95),
                   rng.uniform(0.05, 0.95));
    return model.ellipsoidFor(rgb, rng.uniform(0.0, 45.0));
}

TEST(Quadric, CenterIsStrictlyInside)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const Quadric q = Quadric::fromDklEllipsoid(e);
        EXPECT_LT(q.value(dklToRgb(e.centerDkl)), 0.0);
    }
}

TEST(Quadric, DklSurfacePointsLieOnQuadric)
{
    // Sample the DKL ellipsoid surface, map to RGB, evaluate the RGB
    // quadric: the transform (Eq. 10) must preserve the surface.
    Rng rng(2);
    for (int i = 0; i < 100; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const Quadric q = Quadric::fromDklEllipsoid(e);
        for (int s = 0; s < 20; ++s) {
            Vec3 dir(rng.gaussian(), rng.gaussian(), rng.gaussian());
            dir = dir / dir.norm();
            const Vec3 surface_dkl =
                e.centerDkl + dir.cwiseMul(e.semiAxes);
            EXPECT_NEAR(q.value(dklToRgb(surface_dkl)), 0.0, 1e-6);
        }
    }
}

TEST(Quadric, MembershipAgreesWithEllipsoid)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const Quadric q = Quadric::fromDklEllipsoid(e);
        // Points near the surface, inside and outside.
        Vec3 dir(rng.gaussian(), rng.gaussian(), rng.gaussian());
        dir = dir / dir.norm();
        const Vec3 inside =
            e.centerDkl + dir.cwiseMul(e.semiAxes) * 0.9;
        const Vec3 outside =
            e.centerDkl + dir.cwiseMul(e.semiAxes) * 1.1;
        EXPECT_TRUE(q.contains(dklToRgb(inside), 1e-9));
        EXPECT_FALSE(q.contains(dklToRgb(outside), 1e-9));
    }
}

TEST(Quadric, PaperCoefficientFormEvaluatesConsistently)
{
    // Eq. 9: A x^2 + B y^2 + C z^2 + D x + E y + F z + G xy + H yz +
    // I zx + 1 must vanish exactly where the unnormalized quadric does.
    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const Quadric q = Quadric::fromDklEllipsoid(e);
        const auto [A, B, C, D, E, F, G, H, I] = [&q]() {
            const auto c = q.paperCoefficients();
            return std::tuple(c[0], c[1], c[2], c[3], c[4], c[5], c[6],
                              c[7], c[8]);
        }();
        Vec3 dir(rng.gaussian(), rng.gaussian(), rng.gaussian());
        dir = dir / dir.norm();
        const Vec3 p = dklToRgb(e.centerDkl + dir.cwiseMul(e.semiAxes));
        const double paper_value = A * p.x * p.x + B * p.y * p.y +
                                   C * p.z * p.z + D * p.x + E * p.y +
                                   F * p.z + G * p.x * p.y +
                                   H * p.y * p.z + I * p.z * p.x + 1.0;
        EXPECT_NEAR(paper_value, 0.0, 1e-6);
    }
}

class ExtremaAxisTest : public ::testing::TestWithParam<int>
{};

TEST_P(ExtremaAxisTest, PaperDatapathMatchesLagrangeForm)
{
    // The Eq. 11-13 hardware datapath and the independent Lagrangian
    // closed form must produce the same extrema.
    const int axis = GetParam();
    Rng rng(5 + axis);
    for (int i = 0; i < 500; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const ExtremaPair a = extremaAlongAxis(e, axis);
        const ExtremaPair b = extremaAlongAxisLagrange(e, axis);
        EXPECT_LT((a.high - b.high).norm(), 1e-9);
        EXPECT_LT((a.low - b.low).norm(), 1e-9);
    }
}

TEST_P(ExtremaAxisTest, ExtremaLieOnTheEllipsoidSurface)
{
    const int axis = GetParam();
    Rng rng(8 + axis);
    for (int i = 0; i < 300; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const ExtremaPair ex = extremaAlongAxis(e, axis);
        EXPECT_NEAR(e.membership(rgbToDkl(ex.high)), 1.0, 1e-9);
        EXPECT_NEAR(e.membership(rgbToDkl(ex.low)), 1.0, 1e-9);
    }
}

TEST_P(ExtremaAxisTest, NoSampledPointBeatsTheExtrema)
{
    // Optimality: random surface samples must not exceed the computed
    // extrema along the axis.
    const int axis = GetParam();
    Rng rng(11 + axis);
    for (int i = 0; i < 50; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const ExtremaPair ex = extremaAlongAxis(e, axis);
        for (int s = 0; s < 100; ++s) {
            Vec3 dir(rng.gaussian(), rng.gaussian(), rng.gaussian());
            dir = dir / dir.norm();
            const Vec3 p =
                dklToRgb(e.centerDkl + dir.cwiseMul(e.semiAxes));
            EXPECT_LE(p[axis], ex.high[axis] + 1e-9);
            EXPECT_GE(p[axis], ex.low[axis] - 1e-9);
        }
    }
}

TEST_P(ExtremaAxisTest, HighIsAboveCenterAboveLow)
{
    const int axis = GetParam();
    Rng rng(14 + axis);
    for (int i = 0; i < 200; ++i) {
        const Ellipsoid e = randomEllipsoid(rng);
        const ExtremaPair ex = extremaAlongAxis(e, axis);
        const Vec3 center_rgb = dklToRgb(e.centerDkl);
        EXPECT_GT(ex.high[axis], center_rgb[axis]);
        EXPECT_LT(ex.low[axis], center_rgb[axis]);
        // The extrema chord passes through the center: midpoint of the
        // two support points is the center for a symmetric body.
        const Vec3 mid = (ex.high + ex.low) * 0.5;
        EXPECT_LT((mid - center_rgb).norm(), 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Axes, ExtremaAxisTest,
                         ::testing::Values(0, 1, 2));

TEST(Extrema, RejectsBadAxis)
{
    Rng rng(20);
    const Ellipsoid e = randomEllipsoid(rng);
    EXPECT_THROW(extremaAlongAxis(e, 3), std::invalid_argument);
    EXPECT_THROW(extremaAlongAxisLagrange(e, -1), std::invalid_argument);
}

} // namespace
} // namespace pce
