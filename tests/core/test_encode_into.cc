/**
 * @file
 * The caller-owned-output frame APIs (adjustFrameInto /
 * encodeFrameInto): equality with the allocating APIs, buffer reuse in
 * the steady state, and invariance across thread counts and SIMD
 * dispatch levels.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/pipeline.hh"
#include "render/scenes.hh"
#include "simd/tile_kernels.hh"

namespace pce {
namespace {

const AnalyticDiscriminationModel &
model()
{
    static const AnalyticDiscriminationModel m;
    return m;
}

EccentricityMap
centeredMap(int w, int h)
{
    DisplayGeometry g;
    g.width = w;
    g.height = h;
    g.horizontalFovDeg = 100.0;
    g.fixationX = w / 2.0;
    g.fixationY = h / 2.0;
    return EccentricityMap(g);
}

TEST(EncodeInto, MatchesAllocatingApi)
{
    const int n = 96;
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});

    const EncodedFrame a = enc.encodeFrame(frame, ecc);
    EncodedFrame b;
    enc.encodeFrameInto(frame, ecc, b);

    EXPECT_EQ(a.adjustedLinear.pixels(), b.adjustedLinear.pixels());
    EXPECT_EQ(a.adjustedSrgb, b.adjustedSrgb);
    EXPECT_EQ(a.bdStream, b.bdStream);
    EXPECT_EQ(a.bdStats.totalBits(), b.bdStats.totalBits());
    EXPECT_EQ(a.stats.totalTiles, b.stats.totalTiles);
    EXPECT_EQ(a.stats.gamutClampedPixels, b.stats.gamutClampedPixels);

    PipelineStats sa;
    PipelineStats sb;
    const ImageF adj_a = enc.adjustFrame(frame, ecc, &sa);
    ImageF adj_b;
    enc.adjustFrameInto(frame, ecc, adj_b, &sb);
    EXPECT_EQ(adj_a.pixels(), adj_b.pixels());
    EXPECT_EQ(sa.c1Tiles, sb.c1Tiles);
    EXPECT_EQ(sa.fovealBypassTiles, sb.fovealBypassTiles);
}

TEST(EncodeInto, SteadyStateReusesEveryBuffer)
{
    const int n = 64;
    const ImageF frame =
        renderScene(SceneId::Dumbo, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    const PerceptualEncoder enc(model(), {});

    EncodedFrame out;
    enc.encodeFrameInto(frame, ecc, out);
    const std::vector<uint8_t> first_stream = out.bdStream;

    // Second frame of the stream: identical results, same allocations
    // (data pointers and capacities must not move).
    const Vec3 *linear_data = out.adjustedLinear.pixels().data();
    const uint8_t *srgb_data = out.adjustedSrgb.data().data();
    const uint8_t *stream_data = out.bdStream.data();
    const std::size_t stream_cap = out.bdStream.capacity();

    for (int repeat = 0; repeat < 3; ++repeat) {
        enc.encodeFrameInto(frame, ecc, out);
        EXPECT_EQ(out.bdStream, first_stream);
        EXPECT_EQ(out.adjustedLinear.pixels().data(), linear_data);
        EXPECT_EQ(out.adjustedSrgb.data().data(), srgb_data);
        EXPECT_EQ(out.bdStream.data(), stream_data);
        EXPECT_EQ(out.bdStream.capacity(), stream_cap);
    }
}

TEST(EncodeInto, ReusedResultAdaptsToNewGeometry)
{
    const EccentricityMap ecc64 = centeredMap(64, 64);
    const EccentricityMap ecc96 = centeredMap(96, 80);
    const PerceptualEncoder enc(model(), {});
    const ImageF small =
        renderScene(SceneId::Office, {64, 64, 0, 0.0, 0});
    const ImageF large =
        renderScene(SceneId::Office, {96, 80, 0, 0.0, 0});

    EncodedFrame out;
    enc.encodeFrameInto(small, ecc64, out);
    enc.encodeFrameInto(large, ecc96, out);
    EXPECT_EQ(out.adjustedLinear.width(), 96);
    EXPECT_EQ(out.adjustedLinear.height(), 80);
    EXPECT_EQ(out.bdStream, enc.encodeFrame(large, ecc96).bdStream);
    enc.encodeFrameInto(small, ecc64, out);
    EXPECT_EQ(out.bdStream, enc.encodeFrame(small, ecc64).bdStream);
}

TEST(EncodeInto, VerifyRoundTripHoldsAndReusesBuffers)
{
    // The per-frame lossless check: decode-back equals the encoded
    // sRGB frame, serial and parallel, and repeated verification of a
    // frame stream allocates nothing (decode-side pointers pinned).
    const int n = 96;
    const ImageF frame =
        renderScene(SceneId::Office, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);
    for (const int threads : {1, 4}) {
        PipelineParams p;
        p.threads = threads;
        const PerceptualEncoder enc(model(), p);
        EncodedFrame out;
        enc.encodeFrameInto(frame, ecc, out);
        EXPECT_TRUE(enc.verifyRoundTrip(out)) << threads << " threads";
        EXPECT_EQ(out.roundTripSrgb, out.adjustedSrgb);

        const uint8_t *decode_data = out.roundTripSrgb.data().data();
        for (int repeat = 0; repeat < 2; ++repeat) {
            enc.encodeFrameInto(frame, ecc, out);
            EXPECT_TRUE(enc.verifyRoundTrip(out));
            EXPECT_EQ(out.roundTripSrgb.data().data(), decode_data);
        }

        // A post-encode corruption must be caught, by throw (stream
        // structure broken) or by mismatch (payload altered).
        enc.encodeFrameInto(frame, ecc, out);
        out.bdStream[out.bdStream.size() / 2] ^= 0x10;
        bool caught = false;
        try {
            caught = !enc.verifyRoundTrip(out);
        } catch (const std::runtime_error &) {
            caught = true;
        }
        EXPECT_TRUE(caught) << threads << " threads";
    }
}

TEST(EncodeInto, ThreadAndSimdInvariance)
{
    // The Into flow must be bit-identical across thread counts (the
    // parallel BD splice) and across SIMD dispatch levels (the kernel
    // layer), in any combination available on this host.
    const int n = 96;
    const ImageF frame =
        renderScene(SceneId::Skyline, {n, n, 0, 0.0, 0});
    const EccentricityMap ecc = centeredMap(n, n);

    PipelineParams serial;
    serial.threads = 1;
    const PerceptualEncoder enc1(model(), serial);
    EncodedFrame reference;
    enc1.encodeFrameInto(frame, ecc, reference);

    for (const int threads : {2, 4, 8}) {
        PipelineParams p;
        p.threads = threads;
        const PerceptualEncoder enc(model(), p);
        EncodedFrame out;
        for (int repeat = 0; repeat < 2; ++repeat) {
            enc.encodeFrameInto(frame, ecc, out);
            EXPECT_EQ(out.bdStream, reference.bdStream)
                << threads << " threads, repeat " << repeat;
            EXPECT_EQ(out.adjustedSrgb, reference.adjustedSrgb);
        }
    }

    ASSERT_EQ(setenv("FOVE_SIMD", "off", 1), 0);
    PipelineParams p;
    p.threads = 3;
    const PerceptualEncoder scalar_enc(model(), p);
    ASSERT_EQ(unsetenv("FOVE_SIMD"), 0);
    EncodedFrame scalar_out;
    scalar_enc.encodeFrameInto(frame, ecc, scalar_out);
    EXPECT_EQ(scalar_out.bdStream, reference.bdStream);
    EXPECT_EQ(scalar_out.adjustedLinear.pixels(),
              reference.adjustedLinear.pixels());
}

} // namespace
} // namespace pce
