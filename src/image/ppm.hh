/**
 * @file
 * Binary PPM (P6) image I/O.
 *
 * PPM is used by the examples to dump frames for visual inspection
 * (original vs. color-adjusted, mirroring the paper's Fig. 9) without any
 * external dependency. The PNG module (src/png) is a *compression
 * baseline*, not our interchange format.
 */

#ifndef PCE_IMAGE_PPM_HH
#define PCE_IMAGE_PPM_HH

#include <string>

#include "image/image.hh"

namespace pce {

/** Write an 8-bit sRGB image as binary PPM. Throws on I/O failure. */
void writePpm(const std::string &path, const ImageU8 &img);

/** Read a binary PPM (P6, maxval 255). Throws on parse/I/O failure. */
ImageU8 readPpm(const std::string &path);

} // namespace pce

#endif // PCE_IMAGE_PPM_HH
