#include "image/image.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "color/srgb.hh"

namespace pce {

ImageF::ImageF(int width, int height, const Vec3 &fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill)
{
    if (width < 0 || height < 0)
        throw std::invalid_argument("ImageF: negative dimensions");
}

double
ImageF::meanLuminance() const
{
    if (pixels_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : pixels_)
        sum += 0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z;
    return sum / static_cast<double>(pixels_.size());
}

Vec3
ImageF::meanColor() const
{
    Vec3 sum;
    for (const auto &p : pixels_)
        sum += p;
    return pixels_.empty() ? sum : sum / static_cast<double>(pixels_.size());
}

ImageU8::ImageU8(int width, int height)
    : width_(width), height_(height),
      data_(static_cast<std::size_t>(width) * height * 3, 0)
{
    if (width < 0 || height < 0)
        throw std::invalid_argument("ImageU8: negative dimensions");
}

ImageU8
toSrgb8(const ImageF &linear)
{
    ImageU8 out;
    toSrgb8Into(linear, out);
    return out;
}

void
toSrgb8Into(const ImageF &linear, ImageU8 &out)
{
    if (out.width() != linear.width() ||
        out.height() != linear.height())
        out = ImageU8(linear.width(), linear.height());
    // Pixels are contiguous row-major in both images: one batched call.
    linearToSrgb8(linear.pixels().data(), linear.pixelCount(),
                  out.data().data());
}

ImageF
toLinear(const ImageU8 &srgb)
{
    ImageF out(srgb.width(), srgb.height());
    for (int y = 0; y < srgb.height(); ++y) {
        for (int x = 0; x < srgb.width(); ++x)
            out.at(x, y) = srgb8ToLinear(srgb.pixel(x, y));
    }
    return out;
}

std::vector<TileRect>
tileGrid(int width, int height, int tile_size)
{
    if (tile_size <= 0)
        throw std::invalid_argument("tileGrid: tile_size must be positive");
    std::vector<TileRect> tiles;
    for (int y = 0; y < height; y += tile_size) {
        for (int x = 0; x < width; x += tile_size) {
            TileRect t;
            t.x0 = x;
            t.y0 = y;
            t.w = std::min(tile_size, width - x);
            t.h = std::min(tile_size, height - y);
            tiles.push_back(t);
        }
    }
    return tiles;
}

double
meanSquaredError(const ImageU8 &a, const ImageU8 &b)
{
    if (a.width() != b.width() || a.height() != b.height())
        throw std::invalid_argument("meanSquaredError: size mismatch");
    if (a.data().empty())
        return 0.0;
    double sum = 0.0;
    const auto &da = a.data();
    const auto &db = b.data();
    for (std::size_t i = 0; i < da.size(); ++i) {
        const double d = static_cast<double>(da[i]) - db[i];
        sum += d * d;
    }
    return sum / static_cast<double>(da.size());
}

double
psnr(const ImageU8 &a, const ImageU8 &b)
{
    const double mse = meanSquaredError(a, b);
    if (mse == 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace pce
