#include "image/ppm.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pce {

void
writePpm(const std::string &path, const ImageU8 &img)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("writePpm: cannot open " + path);
    f << "P6\n" << img.width() << " " << img.height() << "\n255\n";
    f.write(reinterpret_cast<const char *>(img.data().data()),
            static_cast<std::streamsize>(img.data().size()));
    if (!f)
        throw std::runtime_error("writePpm: write failed for " + path);
}

namespace {

/** Read the next whitespace/comment-delimited token of a PNM header. */
std::string
nextToken(std::istream &in)
{
    std::string tok;
    int c;
    while ((c = in.get()) != EOF) {
        if (c == '#') {
            // Comment runs to end of line.
            while ((c = in.get()) != EOF && c != '\n') {}
            continue;
        }
        if (std::isspace(c)) {
            if (!tok.empty())
                return tok;
            continue;
        }
        tok.push_back(static_cast<char>(c));
    }
    return tok;
}

} // namespace

ImageU8
readPpm(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("readPpm: cannot open " + path);

    if (nextToken(f) != "P6")
        throw std::runtime_error("readPpm: not a binary PPM: " + path);
    const int w = std::stoi(nextToken(f));
    const int h = std::stoi(nextToken(f));
    const int maxval = std::stoi(nextToken(f));
    if (w <= 0 || h <= 0 || maxval != 255)
        throw std::runtime_error("readPpm: unsupported header in " + path);

    ImageU8 img(w, h);
    f.read(reinterpret_cast<char *>(img.data().data()),
           static_cast<std::streamsize>(img.data().size()));
    if (f.gcount() != static_cast<std::streamsize>(img.data().size()))
        throw std::runtime_error("readPpm: truncated pixel data in " + path);
    return img;
}

} // namespace pce
