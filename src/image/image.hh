/**
 * @file
 * Image containers and tile iteration.
 *
 * Two pixel formats are used throughout the pipeline:
 *  - ImageF: linear RGB, 3 doubles per pixel — the rendering/adjustment
 *    domain (paper Sec. 2.1);
 *  - ImageU8: 8-bit sRGB, 3 bytes per pixel — the encoding domain where
 *    BD/PNG/SCC operate.
 *
 * Tiles are the unit of BD compression (default 4x4, paper Sec. 6.4
 * sweeps 4..16). Edge tiles are handled by clamping the tile rectangle to
 * the image bounds; codecs receive the true (possibly ragged) extent.
 */

#ifndef PCE_IMAGE_IMAGE_HH
#define PCE_IMAGE_IMAGE_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/vec3.hh"

namespace pce {

/** Axis-aligned pixel rectangle [x0, x0+w) x [y0, y0+h). */
struct TileRect
{
    int x0 = 0;
    int y0 = 0;
    int w = 0;
    int h = 0;

    int pixelCount() const { return w * h; }
    bool operator==(const TileRect &) const = default;
};

/** Linear-RGB floating point image. */
class ImageF
{
  public:
    ImageF() = default;
    ImageF(int width, int height, const Vec3 &fill = Vec3());

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t pixelCount() const
    { return static_cast<std::size_t>(width_) * height_; }

    const Vec3 &at(int x, int y) const
    { return pixels_[static_cast<std::size_t>(y) * width_ + x]; }
    Vec3 &at(int x, int y)
    { return pixels_[static_cast<std::size_t>(y) * width_ + x]; }

    const std::vector<Vec3> &pixels() const { return pixels_; }
    std::vector<Vec3> &pixels() { return pixels_; }

    /** Mean linear-RGB luminance (Rec.709 weights), for scene stats. */
    double meanLuminance() const;

    /** Mean of each channel. */
    Vec3 meanColor() const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Vec3> pixels_;
};

/** 8-bit sRGB image, 3 interleaved bytes per pixel. */
class ImageU8
{
  public:
    ImageU8() = default;
    ImageU8(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }
    std::size_t pixelCount() const
    { return static_cast<std::size_t>(width_) * height_; }
    std::size_t byteSize() const { return data_.size(); }

    const uint8_t *pixel(int x, int y) const
    { return &data_[(static_cast<std::size_t>(y) * width_ + x) * 3]; }
    uint8_t *pixel(int x, int y)
    { return &data_[(static_cast<std::size_t>(y) * width_ + x) * 3]; }

    uint8_t channel(int x, int y, int c) const { return pixel(x, y)[c]; }
    void setChannel(int x, int y, int c, uint8_t v) { pixel(x, y)[c] = v; }

    const std::vector<uint8_t> &data() const { return data_; }
    std::vector<uint8_t> &data() { return data_; }

    bool operator==(const ImageU8 &) const = default;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<uint8_t> data_;
};

/** Convert a linear-RGB image to quantized 8-bit sRGB (Eq. 1). */
ImageU8 toSrgb8(const ImageF &linear);

/**
 * toSrgb8 into a caller-owned image, reallocating only when the
 * dimensions change — the allocation-free path of a frame stream.
 */
void toSrgb8Into(const ImageF &linear, ImageU8 &out);

/** Convert an 8-bit sRGB image back to linear RGB. */
ImageF toLinear(const ImageU8 &srgb);

/**
 * Enumerate the tile rectangles of a tile_size x tile_size grid over a
 * width x height image, row-major, clamping edge tiles to the image.
 */
std::vector<TileRect> tileGrid(int width, int height, int tile_size);

/** Peak signal-to-noise ratio between two same-size 8-bit images, dB. */
double psnr(const ImageU8 &a, const ImageU8 &b);

/** Mean squared error over all channels of two same-size 8-bit images. */
double meanSquaredError(const ImageU8 &a, const ImageU8 &b);

} // namespace pce

#endif // PCE_IMAGE_IMAGE_HH
