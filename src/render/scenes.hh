/**
 * @file
 * Procedural VR scene renderer (substitute for the paper's six scenes).
 *
 * The paper evaluates on six VR scenes from the color-perception study of
 * Duinkharjav et al. [22]: office, fortnite, skyline, dumbo, thai, and
 * monkey. Those Unity assets are not distributed, so this module renders
 * six procedural scenes that match the *statistical* properties the
 * paper's analysis attributes to each (Sec. 6.3):
 *
 *  - fortnite: bright outdoor scene dominated by greens (no participant
 *    noticed artifacts there — green-hue shifts hide in green content);
 *  - dumbo and monkey: dark scenes (most noticeable artifacts);
 *  - office and thai: indoor midtone scenes;
 *  - skyline: high-contrast outdoor with hard edges.
 *
 * The compression behaviour under test depends on tile-level statistics
 * (flat regions, gradients, texture energy, luminance, hue), not on
 * semantic content, so these stand-ins exercise the identical code paths
 * (DESIGN.md, Substitutions).
 *
 * All scenes are deterministic functions of (pixel, eye, seed): renders
 * are bit-exactly reproducible. Stereo rendering applies a small
 * horizontal parallax shift, giving the two sub-frames per frame used by
 * the paper (Sec. 5.1).
 */

#ifndef PCE_RENDER_SCENES_HH
#define PCE_RENDER_SCENES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gaze/gaze_trace.hh"
#include "image/image.hh"

namespace pce {

/** The six evaluation scenes (paper Sec. 5.1). */
enum class SceneId
{
    Office,
    Fortnite,
    Skyline,
    Dumbo,
    Thai,
    Monkey,
};

/** All scenes in the paper's figure order. */
const std::vector<SceneId> &allScenes();

/** Lower-case scene name as used in the paper's figures. */
const char *sceneName(SceneId id);

/** Rendering options. */
struct RenderOptions
{
    int width = 640;
    int height = 640;
    /** 0 = left eye, 1 = right eye (small parallax shift). */
    int eye = 0;
    /** Animation time in seconds (scenes are 20 s loops, Sec. 5.2). */
    double time = 0.0;
    /** Extra seed, combined with the scene's own. */
    uint64_t seed = 0;
};

/** Render one scene to a linear-RGB frame. */
ImageF renderScene(SceneId id, const RenderOptions &options);

/** A stereo frame: the two per-eye sub-frames (Sec. 5.1). */
struct StereoFrame
{
    ImageF left;
    ImageF right;
};

/** Render both eyes at the given per-eye resolution. */
StereoFrame renderStereo(SceneId id, int width, int height,
                         double time = 0.0);

/**
 * Render an animation clip: @p frame_count stereo pairs sampled at
 * @p dt-second steps from @p start_time along the scene's 20 s loop —
 * the multi-frame workload the encode service (src/service) batches.
 * Deterministic like every render here; dt defaults to a 72 Hz HMD
 * refresh.
 */
std::vector<StereoFrame> renderStereoSequence(SceneId id, int width,
                                              int height,
                                              int frame_count,
                                              double start_time = 0.0,
                                              double dt = 1.0 / 72.0);

/**
 * An animation clip annotated with a synthetic eye-tracked scanpath:
 * one gaze sample per stereo frame (shared by both eyes — vergence is
 * not modelled), sampled at the clip's frame times. The workload of
 * the gaze-dynamics path (src/gaze): per-frame re-fixation with
 * occasional saccade jumps between dwell points, smooth-pursuit drift
 * while dwelling, and Gaussian tracker jitter.
 */
struct GazeAnnotatedClip
{
    std::vector<StereoFrame> frames;
    GazeTrace gaze;  ///< frames.size() samples, same frame times
};

/**
 * renderStereoSequence plus a deterministic scanpath over the display
 * of @p width x @p height: saccade jumps with ~@p mean_fixation_s
 * dwells, pursuit drift, and @p noise_sigma_px tracker jitter, all
 * seeded by @p seed.
 */
GazeAnnotatedClip renderGazeClip(SceneId id, int width, int height,
                                 int frame_count,
                                 double start_time = 0.0,
                                 double dt = 1.0 / 72.0,
                                 double mean_fixation_s = 0.35,
                                 double noise_sigma_px = 0.6,
                                 uint64_t seed = 0x9a2ef17dULL);

} // namespace pce

#endif // PCE_RENDER_SCENES_HH
