#include "render/scenes.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hh"

namespace pce {

namespace {

/** Per-scene base seeds so scenes are mutually decorrelated. */
uint64_t
sceneSeed(SceneId id)
{
    switch (id) {
      case SceneId::Office:   return 0x0ff1ce;
      case SceneId::Fortnite: return 0xf0127172;
      case SceneId::Skyline:  return 0x55711;
      case SceneId::Dumbo:    return 0xd0b0;
      case SceneId::Thai:     return 0x7a41;
      case SceneId::Monkey:   return 0x303437;
    }
    return 0;
}

Vec3
clampColor(const Vec3 &c)
{
    return c.clamped(0.0, 1.0);
}

/**
 * A normalized pixel-space context shared by the scene functions:
 * u in [-aspect, aspect], v in [-1, 1], with a per-eye parallax
 * offset applied at a scene-chosen depth.
 */
struct PixelCtx
{
    double u;       ///< horizontal, aspect-corrected
    double v;       ///< vertical, +1 at the bottom
    double eyeOff;  ///< signed horizontal parallax magnitude
    double time;
    uint64_t seed;
};

/** Parallax: shift u for content at 1/depth (smaller depth = nearer). */
double
shifted(const PixelCtx &ctx, double inv_depth)
{
    return ctx.u + ctx.eyeOff * inv_depth;
}

// ---------------------------------------------------------------------
// office: indoor midtones — walls, a floor grid of desks, soft shading.
// ---------------------------------------------------------------------
Vec3
shadeOffice(const PixelCtx &ctx)
{
    const double u = shifted(ctx, 0.3);
    // Warm wall gradient.
    Vec3 color(0.32 + 0.06 * ctx.v, 0.30 + 0.05 * ctx.v,
               0.27 + 0.04 * ctx.v);

    // Floor below the horizon with a perspective desk grid.
    if (ctx.v > 0.12) {
        const double depth = 0.25 / (ctx.v - 0.1);
        const double fx = shifted(ctx, 1.0 / (1.0 + depth)) * depth * 6.0;
        const double fz = depth * 6.0;
        const double grid =
            (std::fmod(std::abs(fx), 1.0) < 0.08 ||
             std::fmod(std::abs(fz), 1.0) < 0.08)
                ? 0.6
                : 1.0;
        const double carpet =
            0.8 + 0.2 * fbmNoise(fx * 2.0, fz * 2.0, ctx.seed, 3);
        color = Vec3(0.30, 0.26, 0.22) * grid * carpet;
    } else {
        // Window band with daylight on the back wall.
        if (std::abs(u + 0.45) < 0.22 && ctx.v < -0.15 && ctx.v > -0.75) {
            const double sky = 0.55 - 0.25 * (ctx.v + 0.45);
            color = Vec3(0.45 * sky, 0.55 * sky, 0.75 * sky);
        }
        // Poster rectangles.
        if (std::abs(u - 0.5) < 0.15 && std::abs(ctx.v + 0.4) < 0.2) {
            const double t =
                fbmNoise(u * 10.0, ctx.v * 10.0, ctx.seed + 7, 2);
            color = Vec3(0.35 + 0.25 * t, 0.2 + 0.15 * t, 0.15);
        }
    }

    // Gentle office lighting falloff and paper-like texture.
    const double vign =
        1.0 - 0.25 * (ctx.u * ctx.u + ctx.v * ctx.v);
    const double tex =
        0.97 + 0.03 * fbmNoise(ctx.u * 40.0, ctx.v * 40.0, ctx.seed, 2);
    return clampColor(color * vign * tex);
}

// ---------------------------------------------------------------------
// fortnite: bright, saturated green hills under a vivid sky.
// ---------------------------------------------------------------------
Vec3
shadeFortnite(const PixelCtx &ctx)
{
    const double u = shifted(ctx, 0.15);

    // Rolling hill line varies with u and time (slow drift).
    const double hill =
        0.15 + 0.25 * fbmNoise(u * 1.5 + ctx.time * 0.05, 3.7,
                               ctx.seed, 3);
    if (ctx.v < hill) {
        // Sky: bright cyan-blue gradient with puffy clouds.
        const double h = (hill - ctx.v) / (1.0 + hill);
        Vec3 sky(0.35 + 0.2 * h, 0.55 + 0.25 * h, 0.9);
        const double cloud =
            fbmNoise(u * 2.0 + ctx.time * 0.1, ctx.v * 3.0,
                     ctx.seed + 3, 4);
        if (cloud > 0.6) {
            const double c = (cloud - 0.6) / 0.4;
            sky = lerp(sky, Vec3(0.95, 0.95, 0.97), c);
        }
        // Sun disc.
        const double du = u - 0.7;
        const double dv = ctx.v + 0.75;
        if (du * du + dv * dv < 0.012)
            sky = Vec3(1.0, 0.95, 0.75);
        return clampColor(sky);
    }

    // Terrain: layered bright greens with grass texture.
    const double depth = (ctx.v - hill) / (1.0 - hill);
    const double gx = shifted(ctx, 0.6) * (3.0 + depth * 10.0);
    const double gz = depth * 12.0 + ctx.time * 0.2;
    const double grass = fbmNoise(gx, gz, ctx.seed + 11, 4);
    Vec3 green(0.18 + 0.1 * grass, 0.62 + 0.25 * grass,
               0.16 + 0.08 * grass);
    // Light patches of yellow-green.
    const double patch = fbmNoise(gx * 0.3, gz * 0.3, ctx.seed + 13, 2);
    if (patch > 0.55)
        green = lerp(green, Vec3(0.55, 0.78, 0.25),
                     (patch - 0.55) * 1.5);
    return clampColor(green);
}

// ---------------------------------------------------------------------
// skyline: high-contrast city silhouettes with lit window grids.
// ---------------------------------------------------------------------
Vec3
shadeSkyline(const PixelCtx &ctx)
{
    // Dusk sky gradient.
    const double t = (ctx.v + 1.0) / 2.0;  // 0 top .. 1 bottom
    Vec3 color = lerp(Vec3(0.15, 0.25, 0.55), Vec3(0.85, 0.55, 0.35),
                      t * t);

    // Two building layers with different parallax.
    for (int layer = 0; layer < 2; ++layer) {
        const double inv_depth = layer == 0 ? 0.3 : 0.8;
        const double u = shifted(ctx, inv_depth);
        const double cell = layer == 0 ? 0.28 : 0.18;
        const double idx = std::floor(u / cell);
        const double frac = u / cell - idx;
        const double h =
            0.1 + 0.55 * hashNoise(static_cast<int32_t>(idx),
                                   layer * 77, ctx.seed + layer);
        const double skyline_v = 0.65 - h;  // buildings rise from v=0.65
        if (ctx.v > skyline_v && ctx.v < 0.75 && frac > 0.06 &&
            frac < 0.94) {
            const Vec3 facade =
                layer == 0 ? Vec3(0.24, 0.23, 0.26)
                           : Vec3(0.16, 0.15, 0.19);
            color = facade;
            // Window grid; some windows lit. Window pitch is kept to a
            // handful of pixels at typical render resolutions so that
            // window interiors form flat tiles with hard edges between
            // them (the content statistic the codecs care about).
            const int wx = static_cast<int>(frac * 4.0);
            const int wy = static_cast<int>((ctx.v - skyline_v) * 8.0);
            const bool on_window =
                (static_cast<int>(frac * 8.0) % 2 == 0) &&
                (static_cast<int>((ctx.v - skyline_v) * 16.0) % 2 == 0);
            if (on_window) {
                // Glazing reflects the dusk sky; a small fraction of
                // windows are lit from inside.
                const double lit =
                    hashNoise(wx + static_cast<int32_t>(idx) * 31, wy,
                              ctx.seed + 100 + layer);
                if (lit > 0.85)
                    color = Vec3(0.55, 0.48, 0.3);
                else
                    color = lerp(color, Vec3(0.3, 0.32, 0.42), 0.6);
            }
        }
    }

    // Water band at the bottom reflecting the bright dusk sky.
    if (ctx.v > 0.75) {
        const double ripple =
            fbmNoise(ctx.u * 8.0, ctx.v * 40.0 + ctx.time, ctx.seed + 9,
                     3);
        color = Vec3(0.45 + 0.08 * ripple, 0.38 + 0.06 * ripple,
                     0.42 + 0.09 * ripple);
    }
    return clampColor(color);
}

// ---------------------------------------------------------------------
// dumbo: dark night street — the classic DUMBO bridge view at night.
// ---------------------------------------------------------------------
Vec3
shadeDumbo(const PixelCtx &ctx)
{
    // Very dark blue night gradient.
    const double t = (ctx.v + 1.0) / 2.0;
    Vec3 color = lerp(Vec3(0.035, 0.04, 0.08), Vec3(0.08, 0.07, 0.09),
                      t);

    // Bridge tower silhouette framing the view.
    const double u = shifted(ctx, 0.4);
    if (std::abs(u) > 0.55 && ctx.v < 0.55) {
        color = Vec3(0.01, 0.01, 0.015);
        // Brick texture barely visible.
        const double brick =
            fbmNoise(u * 20.0, ctx.v * 20.0, ctx.seed, 2);
        color += Vec3(0.02, 0.015, 0.01) * brick;
    }

    // Street with lamps.
    if (ctx.v > 0.35) {
        const double depth = 0.2 / (ctx.v - 0.3);
        const double road =
            0.02 + 0.02 * fbmNoise(u * 6.0, depth * 8.0, ctx.seed + 5, 3);
        color = Vec3(road * 1.1, road, road * 1.2);
        // Lamp glow pools.
        for (int lamp = -1; lamp <= 1; ++lamp) {
            const double lx = lamp * 0.45;
            const double d2 = (u - lx) * (u - lx) +
                              (ctx.v - 0.55) * (ctx.v - 0.55) * 4.0;
            const double glow = std::exp(-d2 * 40.0);
            color += Vec3(0.5, 0.38, 0.15) * glow;
        }
    }

    // A few bright windows high up.
    const int wx = static_cast<int>((u + 2.0) * 14.0);
    const int wy = static_cast<int>((ctx.v + 2.0) * 14.0);
    if (ctx.v < 0.1 && std::abs(u) > 0.6 &&
        hashNoise(wx, wy, ctx.seed + 21) > 0.93)
        color += Vec3(0.35, 0.28, 0.12);

    // Night-time sensor grain: low-light footage is never clean, and
    // per-pixel grain is what makes dark tiles non-flat for the codecs.
    const double grain =
        hashNoise(static_cast<int32_t>(ctx.u * 4096.0),
                  static_cast<int32_t>(ctx.v * 4096.0), ctx.seed + 33) -
        0.5;
    color += Vec3(1.0, 1.0, 1.1) * (grain * 0.012);

    return clampColor(color);
}

// ---------------------------------------------------------------------
// thai: warm temple interior — gold ornaments on red walls.
// ---------------------------------------------------------------------
Vec3
shadeThai(const PixelCtx &ctx)
{
    const double u = shifted(ctx, 0.35);

    // Warm red wall base with candle-light vertical gradient.
    const double light = 0.55 + 0.25 * std::cos(ctx.v * 1.5);
    Vec3 color = Vec3(0.45, 0.12, 0.08) * light;

    // Repeating ornamental bands (gold).
    const double band = std::abs(std::sin(ctx.v * 9.0));
    if (band > 0.82) {
        const double orn =
            fbmNoise(u * 30.0, ctx.v * 30.0, ctx.seed + 2, 3);
        const double g = (band - 0.82) / 0.18;
        color = lerp(color, Vec3(0.85, 0.62, 0.18) * (0.6 + 0.4 * orn),
                     g);
    }

    // Central Buddha alcove: brighter gold.
    const double d2 = u * u * 2.0 + (ctx.v + 0.1) * (ctx.v + 0.1);
    if (d2 < 0.16) {
        const double glow = 1.0 - d2 / 0.16;
        const double statue =
            fbmNoise(u * 12.0, ctx.v * 12.0, ctx.seed + 4, 3);
        color = lerp(color,
                     Vec3(0.9, 0.7, 0.25) * (0.5 + 0.5 * statue),
                     glow * 0.8);
    }

    // Pillars with parallax.
    const double pu = shifted(ctx, 0.7);
    const double pillar = std::fmod(std::abs(pu * 1.3 + 10.0), 1.0);
    if (pillar < 0.12 && std::abs(ctx.v) < 0.85) {
        const double shade = 0.6 + 0.4 * (pillar / 0.12);
        color = Vec3(0.5, 0.2, 0.1) * shade * light;
    }
    return clampColor(color);
}

// ---------------------------------------------------------------------
// monkey: dark jungle — dense foliage, low luminance, green-brown.
// ---------------------------------------------------------------------
Vec3
shadeMonkey(const PixelCtx &ctx)
{
    const double u = shifted(ctx, 0.5);

    // Dense canopy: layered dark green noise.
    const double canopy =
        fbmNoise(u * 6.0, ctx.v * 6.0 + ctx.time * 0.05, ctx.seed, 5);
    Vec3 color(0.02 + 0.05 * canopy, 0.05 + 0.11 * canopy,
               0.02 + 0.04 * canopy);

    // Moonlight shafts.
    const double shaft =
        std::exp(-std::pow((u - 0.2 + 0.3 * ctx.v) * 4.0, 2.0));
    color += Vec3(0.04, 0.06, 0.05) * shaft *
             (0.5 + 0.5 * fbmNoise(u * 3.0, ctx.v * 9.0, ctx.seed + 8,
                                   2));

    // Tree trunks (near layer, stronger parallax).
    const double tu = shifted(ctx, 0.9);
    const double trunk = std::fmod(std::abs(tu * 0.9 + 5.0), 1.0);
    if (trunk < 0.1) {
        const double bark =
            fbmNoise(tu * 25.0, ctx.v * 25.0, ctx.seed + 6, 3);
        color = Vec3(0.05 + 0.04 * bark, 0.035 + 0.03 * bark,
                     0.02 + 0.015 * bark);
    }

    // Occasional bright eyes/fireflies.
    const int fx = static_cast<int>((u + 4.0) * 30.0);
    const int fy = static_cast<int>((ctx.v + 4.0) * 30.0);
    if (hashNoise(fx, fy, ctx.seed + 17) > 0.995)
        color += Vec3(0.25, 0.28, 0.1);

    return clampColor(color);
}

} // namespace

const std::vector<SceneId> &
allScenes()
{
    static const std::vector<SceneId> scenes{
        SceneId::Office, SceneId::Fortnite, SceneId::Skyline,
        SceneId::Dumbo, SceneId::Thai, SceneId::Monkey};
    return scenes;
}

const char *
sceneName(SceneId id)
{
    switch (id) {
      case SceneId::Office:   return "office";
      case SceneId::Fortnite: return "fortnite";
      case SceneId::Skyline:  return "skyline";
      case SceneId::Dumbo:    return "dumbo";
      case SceneId::Thai:     return "thai";
      case SceneId::Monkey:   return "monkey";
    }
    return "unknown";
}

ImageF
renderScene(SceneId id, const RenderOptions &options)
{
    if (options.width <= 0 || options.height <= 0)
        throw std::invalid_argument("renderScene: bad resolution");
    if (options.eye != 0 && options.eye != 1)
        throw std::invalid_argument("renderScene: eye must be 0 or 1");

    ImageF img(options.width, options.height);
    const double aspect =
        static_cast<double>(options.width) / options.height;
    // +-0.008 of horizontal parallax at unit inverse depth.
    const double eye_off = options.eye == 0 ? -0.008 : 0.008;
    const uint64_t seed = sceneSeed(id) ^ options.seed;

    for (int y = 0; y < options.height; ++y) {
        for (int x = 0; x < options.width; ++x) {
            PixelCtx ctx;
            ctx.u = (2.0 * (x + 0.5) / options.width - 1.0) * aspect;
            ctx.v = 2.0 * (y + 0.5) / options.height - 1.0;
            ctx.eyeOff = eye_off;
            ctx.time = options.time;
            ctx.seed = seed;

            Vec3 c;
            switch (id) {
              case SceneId::Office:   c = shadeOffice(ctx); break;
              case SceneId::Fortnite: c = shadeFortnite(ctx); break;
              case SceneId::Skyline:  c = shadeSkyline(ctx); break;
              case SceneId::Dumbo:    c = shadeDumbo(ctx); break;
              case SceneId::Thai:     c = shadeThai(ctx); break;
              case SceneId::Monkey:   c = shadeMonkey(ctx); break;
            }
            // Sub-quantization dither (~+-1 sRGB code), as real
            // renderers apply against banding. Purely-analytic shading
            // would otherwise hand entropy coders (PNG) long exact
            // matches that real framebuffers never contain.
            const double dither =
                hashNoise(x * 3 + options.eye, y * 3 + 1,
                          seed ^ 0xd17e4) -
                0.5;
            c += Vec3(1.0, 1.0, 1.0) * (dither * 0.006);
            img.at(x, y) = c.clamped(0.0, 1.0);
        }
    }
    return img;
}

StereoFrame
renderStereo(SceneId id, int width, int height, double time)
{
    RenderOptions opts;
    opts.width = width;
    opts.height = height;
    opts.time = time;

    StereoFrame frame;
    opts.eye = 0;
    frame.left = renderScene(id, opts);
    opts.eye = 1;
    frame.right = renderScene(id, opts);
    return frame;
}

std::vector<StereoFrame>
renderStereoSequence(SceneId id, int width, int height, int frame_count,
                     double start_time, double dt)
{
    std::vector<StereoFrame> clip;
    clip.reserve(frame_count > 0 ? static_cast<std::size_t>(frame_count)
                                 : 0);
    for (int i = 0; i < frame_count; ++i)
        clip.push_back(
            renderStereo(id, width, height, start_time + i * dt));
    return clip;
}

GazeAnnotatedClip
renderGazeClip(SceneId id, int width, int height, int frame_count,
               double start_time, double dt, double mean_fixation_s,
               double noise_sigma_px, uint64_t seed)
{
    GazeAnnotatedClip clip;
    clip.frames = renderStereoSequence(id, width, height, frame_count,
                                       start_time, dt);

    DisplayGeometry geom;
    geom.width = width;
    geom.height = height;
    geom.fixationX = width / 2.0;
    geom.fixationY = height / 2.0;

    Rng rng(seed ^ (static_cast<uint64_t>(id) << 32));
    const double hz = 1.0 / dt;
    const double duration =
        frame_count > 0 ? (frame_count - 1) * dt : 0.0;
    clip.gaze = saccadeJumpTrace(geom, duration, hz, mean_fixation_s,
                                 rng, 0.8);
    // Dwells drift like smooth pursuit instead of holding still: a
    // slow circular wander small enough to stay under the I-VT
    // saccade threshold at 72 Hz.
    const double drift_radius = std::min(width, height) * 0.02;
    for (std::size_t i = 0; i < clip.gaze.samples.size(); ++i) {
        const double phase =
            2.0 * M_PI * clip.gaze.samples[i].timeSeconds / 2.1;
        clip.gaze.samples[i].x += drift_radius * std::cos(phase);
        clip.gaze.samples[i].y += drift_radius * std::sin(phase);
    }
    addTrackerNoise(clip.gaze, noise_sigma_px, rng);
    // The render clock starts at start_time; gaze timestamps share it.
    for (GazeSample &s : clip.gaze.samples)
        s.timeSeconds += start_time;
    // saccadeJumpTrace emits floor(duration*hz)+1 samples == frame
    // count for an exact-dt clip; guard the pairing regardless.
    clip.gaze.samples.resize(
        static_cast<std::size_t>(std::max(frame_count, 0)),
        clip.gaze.samples.empty()
            ? GazeSample{start_time, width / 2.0, height / 2.0}
            : clip.gaze.samples.back());
    return clip;
}

} // namespace pce
