/**
 * @file
 * SCC: the Set-Cover-Coding baseline (paper Sec. 5.3).
 *
 * SCC exploits color discrimination globally: find the smallest subset C
 * of sRGB colors whose discrimination ellipsoids cover the whole sRGB
 * cube, then encode every pixel as an index into C using ceil(log2|C|)
 * bits. The paper's greedy construction maps all 2^24 colors onto 32,274
 * representatives (15 bits/pixel), with a 30 MB encode table and a 96 KB
 * decode table — workable as a baseline but far too large for a mobile
 * SoC's DRAM-path hardware, which is the paper's point.
 *
 * Set cover is NP-complete; like the paper we use the classic greedy
 * heuristic (Chvatal), implemented lazily (coverage counts are
 * recomputed only when a candidate reaches the head of the priority
 * queue — valid because coverage is submodular).
 *
 * Substitution note (DESIGN.md): covering all 16.8M colors is feasible
 * offline but not inside a seconds-scale benchmark, so the cover is
 * built on a uniformly subsampled sRGB lattice (default step 8, i.e.
 * 32^3 = 32,768 cells; step 4 gives 262k cells and takes ~10x longer);
 * full-resolution table sizes are derived analytically from |C| for the
 * Sec. 6.2 comparison.
 */

#ifndef PCE_SCC_SCC_CODEC_HH
#define PCE_SCC_SCC_CODEC_HH

#include <cstdint>
#include <cstddef>
#include <vector>

#include "image/image.hh"
#include "perception/discrimination.hh"

namespace pce {

/** Construction parameters for the SCC codebook. */
struct SccParams
{
    /** Lattice step in sRGB code units (256 must be divisible by it). */
    int gridStep = 8;
    /**
     * Eccentricity at which discrimination ellipsoids are evaluated.
     * SCC uses one global table, so a single representative
     * eccentricity must be chosen; the paper does not specify one.
     */
    double eccDeg = 20.0;
};

/** A greedy set-cover codebook over the sRGB lattice. */
class SccCodebook
{
  public:
    SccCodebook(const DiscriminationModel &model,
                const SccParams &params = {});

    /** Number of representative colors |C|. */
    std::size_t size() const { return centers_.size(); }

    /** Bits per pixel: ceil(log2 |C|). */
    unsigned bitsPerPixel() const;

    /** Representative index for an sRGB color. */
    uint32_t encodeColor(uint8_t r, uint8_t g, uint8_t b) const;

    /** Representative sRGB color for an index. */
    void decodeColor(uint32_t index, uint8_t rgb[3]) const;

    /** Encode a frame as a fixed-width index stream with a header. */
    std::vector<uint8_t> encode(const ImageU8 &img) const;

    /** Decode a stream produced by encode() (needs the same codebook). */
    ImageU8 decode(const std::vector<uint8_t> &stream) const;

    /**
     * Size of the full-resolution (2^24-entry) encode table implied by
     * this codebook, in bytes — the Sec. 6.2 "30 MB" figure.
     */
    double encodeTableBytesFullRes() const;

    /** Size of the decode table (3 bytes per representative). */
    std::size_t decodeTableBytes() const { return centers_.size() * 3; }

    /**
     * Verify the cover: every lattice cell's assigned representative
     * must contain the cell in its discrimination ellipsoid. Returns
     * the number of violations (0 for a valid cover).
     */
    std::size_t verifyCover(const DiscriminationModel &model) const;

    const SccParams &params() const { return params_; }

  private:
    std::size_t cellIndex(uint8_t r, uint8_t g, uint8_t b) const;
    Vec3 cellCenterLinear(std::size_t cell) const;
    void cellCenterSrgb(std::size_t cell, uint8_t rgb[3]) const;

    SccParams params_;
    int gridDim_;
    /** Representative colors as lattice cell indices. */
    std::vector<uint32_t> centers_;
    /** Per-lattice-cell representative assignment. */
    std::vector<uint32_t> assignment_;
};

} // namespace pce

#endif // PCE_SCC_SCC_CODEC_HH
