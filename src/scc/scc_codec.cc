#include "scc/scc_codec.hh"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "color/dkl.hh"
#include "color/srgb.hh"
#include "common/bitstream.hh"

namespace pce {

namespace {

constexpr uint32_t kMagic = 0x534343;  // "SCC"
constexpr unsigned kMagicBits = 24;
constexpr unsigned kDimBits = 16;
constexpr unsigned kIndexWidthBits = 5;

} // namespace

std::size_t
SccCodebook::cellIndex(uint8_t r, uint8_t g, uint8_t b) const
{
    const int s = params_.gridStep;
    const int ir = r / s;
    const int ig = g / s;
    const int ib = b / s;
    return (static_cast<std::size_t>(ir) * gridDim_ + ig) * gridDim_ + ib;
}

void
SccCodebook::cellCenterSrgb(std::size_t cell, uint8_t rgb[3]) const
{
    const int s = params_.gridStep;
    const int ib = static_cast<int>(cell % gridDim_);
    const int ig = static_cast<int>((cell / gridDim_) % gridDim_);
    const int ir = static_cast<int>(cell / gridDim_ / gridDim_);
    rgb[0] = static_cast<uint8_t>(std::min(255, ir * s + s / 2));
    rgb[1] = static_cast<uint8_t>(std::min(255, ig * s + s / 2));
    rgb[2] = static_cast<uint8_t>(std::min(255, ib * s + s / 2));
}

Vec3
SccCodebook::cellCenterLinear(std::size_t cell) const
{
    uint8_t rgb[3];
    cellCenterSrgb(cell, rgb);
    return srgb8ToLinear(rgb);
}

SccCodebook::SccCodebook(const DiscriminationModel &model,
                         const SccParams &params)
    : params_(params)
{
    if (params_.gridStep <= 0 || 256 % params_.gridStep != 0)
        throw std::invalid_argument(
            "SccCodebook: gridStep must divide 256");
    gridDim_ = 256 / params_.gridStep;

    const std::size_t n_cells =
        static_cast<std::size_t>(gridDim_) * gridDim_ * gridDim_;
    assignment_.assign(n_cells, UINT32_MAX);

    // Precompute per-cell DKL coordinates once.
    std::vector<Vec3> cell_dkl(n_cells);
    for (std::size_t i = 0; i < n_cells; ++i)
        cell_dkl[i] = rgbToDkl(cellCenterLinear(i));

    // Per-candidate ellipsoid, evaluated at the cell center.
    auto ellipsoid_of = [&](std::size_t cell) {
        Ellipsoid e;
        e.centerDkl = cell_dkl[cell];
        e.semiAxes =
            model.semiAxes(cellCenterLinear(cell), params_.eccDeg);
        return e;
    };

    // Enumerate the lattice cells inside a candidate's ellipsoid via its
    // RGB-space bounding box. The box is derived from the DKL->RGB
    // linear map: extent along RGB axis i = |row_i(M^-1) * diag(axes)|.
    const Mat3 &inv = dkl2rgbMatrix();
    auto covered_cells = [&](std::size_t cell, const Ellipsoid &e,
                             auto &&visit) {
        Vec3 extent;
        for (std::size_t i = 0; i < 3; ++i) {
            const Vec3 row = inv.row(i).cwiseMul(e.semiAxes);
            extent[i] = row.norm();
        }
        uint8_t center_srgb[3];
        cellCenterSrgb(cell, center_srgb);
        const Vec3 center_lin = cellCenterLinear(cell);
        // Convert linear extents to sRGB code ranges conservatively by
        // probing the gamma at the interval ends.
        int lo[3], hi[3];
        for (int i = 0; i < 3; ++i) {
            const double lo_lin =
                std::max(0.0, center_lin[i] - extent[i]);
            const double hi_lin =
                std::min(1.0, center_lin[i] + extent[i]);
            lo[i] = linearToSrgb8(lo_lin) / params_.gridStep;
            hi[i] = linearToSrgb8(hi_lin) / params_.gridStep;
        }
        for (int ir = lo[0]; ir <= hi[0]; ++ir) {
            for (int ig = lo[1]; ig <= hi[1]; ++ig) {
                for (int ib = lo[2]; ib <= hi[2]; ++ib) {
                    const std::size_t c =
                        (static_cast<std::size_t>(ir) * gridDim_ + ig) *
                            gridDim_ +
                        ib;
                    if (e.contains(cell_dkl[c]))
                        visit(c);
                }
            }
        }
    };

    // Lazy greedy set cover. Priority queue of (stale coverage, cell);
    // recompute on pop, re-push if stale (submodularity makes the stale
    // value an upper bound).
    std::vector<Ellipsoid> cand_ellipsoid(n_cells);
    using Entry = std::pair<uint32_t, uint32_t>;  // (coverage, cell)
    std::priority_queue<Entry> queue;

    std::size_t uncovered = n_cells;
    std::vector<uint8_t> is_covered(n_cells, 0);

    auto coverage_now = [&](std::size_t cell) {
        uint32_t count = 0;
        covered_cells(cell, cand_ellipsoid[cell], [&](std::size_t c) {
            if (!is_covered[c])
                ++count;
        });
        return count;
    };

    for (std::size_t cell = 0; cell < n_cells; ++cell) {
        cand_ellipsoid[cell] = ellipsoid_of(cell);
        // Initial upper bound: full ellipsoid population (everything is
        // uncovered at t=0, so this is exact).
        queue.emplace(coverage_now(cell), static_cast<uint32_t>(cell));
    }

    uint32_t epoch = 0;
    std::vector<uint32_t> last_epoch(n_cells, 0);

    while (uncovered > 0 && !queue.empty()) {
        auto [cov, cell] = queue.top();
        queue.pop();
        if (last_epoch[cell] != epoch) {
            // Stale entry: recompute and re-push.
            const uint32_t fresh = coverage_now(cell);
            last_epoch[cell] = epoch;
            if (fresh > 0)
                queue.emplace(fresh, cell);
            continue;
        }
        if (cov == 0)
            continue;

        // Accept this candidate.
        const auto rep = static_cast<uint32_t>(centers_.size());
        centers_.push_back(cell);
        covered_cells(cell, cand_ellipsoid[cell], [&](std::size_t c) {
            if (!is_covered[c]) {
                is_covered[c] = 1;
                assignment_[c] = rep;
                --uncovered;
            }
        });
        ++epoch;
    }

    if (uncovered > 0)
        throw std::logic_error("SccCodebook: cover incomplete");
}

unsigned
SccCodebook::bitsPerPixel() const
{
    unsigned bits = 0;
    while ((std::size_t(1) << bits) < centers_.size())
        ++bits;
    return std::max(1u, bits);
}

uint32_t
SccCodebook::encodeColor(uint8_t r, uint8_t g, uint8_t b) const
{
    return assignment_[cellIndex(r, g, b)];
}

void
SccCodebook::decodeColor(uint32_t index, uint8_t rgb[3]) const
{
    cellCenterSrgb(centers_.at(index), rgb);
}

std::vector<uint8_t>
SccCodebook::encode(const ImageU8 &img) const
{
    BitWriter bw;
    bw.putBits(kMagic, kMagicBits);
    bw.putBits(static_cast<uint32_t>(img.width()), kDimBits);
    bw.putBits(static_cast<uint32_t>(img.height()), kDimBits);
    const unsigned w = bitsPerPixel();
    bw.putBits(w, kIndexWidthBits);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const uint8_t *p = img.pixel(x, y);
            bw.putBits(encodeColor(p[0], p[1], p[2]), w);
        }
    }
    bw.alignToByte();
    return bw.take();
}

ImageU8
SccCodebook::decode(const std::vector<uint8_t> &stream) const
{
    BitReader br(stream);
    if (br.getBits(kMagicBits) != kMagic)
        throw std::runtime_error("SccCodebook::decode: bad magic");
    const int w = static_cast<int>(br.getBits(kDimBits));
    const int h = static_cast<int>(br.getBits(kDimBits));
    const unsigned width = br.getBits(kIndexWidthBits);
    if (w <= 0 || h <= 0 || width == 0 || width > 24)
        throw std::runtime_error("SccCodebook::decode: bad header");
    if (stream.size() * 8 <
        static_cast<std::size_t>(w) * h * width)
        throw std::runtime_error(
            "SccCodebook::decode: stream too short for header");

    ImageU8 img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const uint32_t idx = br.getBits(width);
            decodeColor(idx, img.pixel(x, y));
        }
    }
    if (br.exhausted())
        throw std::runtime_error("SccCodebook::decode: truncated");
    return img;
}

double
SccCodebook::encodeTableBytesFullRes() const
{
    return double(1 << 24) * bitsPerPixel() / 8.0;
}

std::size_t
SccCodebook::verifyCover(const DiscriminationModel &model) const
{
    std::size_t violations = 0;
    const std::size_t n_cells =
        static_cast<std::size_t>(gridDim_) * gridDim_ * gridDim_;
    for (std::size_t cell = 0; cell < n_cells; ++cell) {
        const uint32_t rep = assignment_[cell];
        if (rep == UINT32_MAX) {
            ++violations;
            continue;
        }
        const std::size_t rep_cell = centers_[rep];
        Ellipsoid e;
        e.centerDkl = rgbToDkl(cellCenterLinear(rep_cell));
        e.semiAxes =
            model.semiAxes(cellCenterLinear(rep_cell), params_.eccDeg);
        if (!e.contains(rgbToDkl(cellCenterLinear(cell))))
            ++violations;
    }
    return violations;
}

} // namespace pce
