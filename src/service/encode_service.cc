#include "service/encode_service.hh"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>

#include "common/integrity.hh"
#include "obs/trace.hh"

namespace pce {

namespace detail {

/**
 * Internal per-stream state. Every container here is sized once (at
 * openStream, from ServiceParams) and reused: the free-slot stack, the
 * ready ring, and each slot's input image and
 * EncodedFrame all reach steady-state capacity after the first frames
 * and never reallocate for a same-geometry stream.
 */
struct StreamState
{
    std::string name;
    /** Home shard (shardForName): where submissions are queued. */
    std::size_t shard = 0;
    /** Stable trace id: the `stream` tag on this stream's trace
     *  events (EncodeService::streamTraceId). Open order, from 0. */
    std::uint32_t obsId = 0;
    const EccentricityMap *ecc = nullptr;
    /**
     * Eye-tracked streams own their eccentricity state (one per
     * stream: concurrent streams re-fixate independently). Null for
     * static-fixation streams, where ecc borrows the caller's map.
     * Under sharded dispatch this state is *per-slot* in the lane
     * sense: the queue hands out a stream's requests one at a time in
     * submission order, so whichever dispatcher holds the lane —
     * home or thief — is the sole toucher, sees gaze samples in time
     * order, and hands the state to the next holder through the
     * queue mutex's happens-before edge. The tryBeginExclusive guard
     * enforces the "sole toucher" half at runtime.
     */
    std::unique_ptr<GazeTrackedEccentricity> gaze;

    struct Slot
    {
        ImageF input;          ///< service-owned copy of the submission
        EncodedFrame frame;    ///< reusable encode output
        std::exception_ptr error;  ///< set when this encode failed
        GazeSample gazeSample; ///< rides with the frame (gaze streams)
        bool hasGaze = false;
        /** hash64 of `input` at submit time (hardenIntegrity). */
        std::uint64_t inputHash = 0;
        /** Stream-local frame sequence number (fault hooks). */
        std::uint64_t frameIndex = 0;
    };
    std::vector<Slot> slots;

    mutable std::mutex mutex;
    std::condition_variable slotFree;    ///< submit waits here
    std::condition_variable frameReady;  ///< collect/drain wait here

    std::vector<int> freeSlots;  ///< stack of idle slot indices
    std::vector<int> readyRing;  ///< FIFO of encoded slot indices
    std::size_t readyHead = 0;
    std::size_t readyCount = 0;

    std::uint64_t submitted = 0;
    std::uint64_t encoded = 0;
    std::uint64_t collected = 0;
    /** Frames of this stream encoded by a non-home dispatcher. */
    std::uint64_t framesStolen = 0;

    // Stats, guarded by mutex.
    double megapixels = 0.0;
    double encodeSeconds = 0.0;
    /**
     * Queue-latency histogram ("stream/<name>/queue_latency_ms",
     * owned by the service's MetricsRegistry — the registry outlives
     * the stream). Replaces the old sorted fixed-window ring: full
     * history in fixed memory, percentiles within one bucket of exact
     * (obs/metrics.hh), min/max/count exact. The histogram itself is
     * lock-free; this pointer is set once at open.
     */
    obs::LogHistogram *latencyHist = nullptr;
    std::uint64_t framesVerified = 0;
    std::uint64_t corruptFrames = 0;
    std::uint64_t saccadeFrames = 0;
    // Mirrors of the gaze state's counters, copied under this mutex
    // after each encode (the gaze object itself is only touched by
    // the dispatcher holding the stream's lane, outside any lock).
    std::uint64_t refixations = 0;
    std::uint64_t fullRebuilds = 0;
    std::uint64_t deferredGazeUpdates = 0;
    // hardenIntegrity counters (see StreamStats).
    std::uint64_t faultsDetected = 0;
    std::uint64_t framesQuarantined = 0;
    std::uint64_t gazeRecoveries = 0;
    // Delivery-tier counters (recordDelivery; see StreamStats).
    std::uint64_t framesDelivered = 0;
    std::uint64_t framesAdaptive = 0;
    std::uint64_t framesFovealIntact = 0;
    std::uint64_t framesByteIdentical = 0;
    std::uint64_t deliveryBytesSent = 0;
    std::uint64_t deliveryShedBytes = 0;
    double budgetBytesSum = 0.0;  ///< running sum for the mean
    double lastEstimatedLossRate = 0.0;
    double lastCutoffEccDeg = 0.0;
};

} // namespace detail

using detail::EncodeRequest;
using detail::StreamState;

namespace {

using Clock = std::chrono::steady_clock;

double
secondsBetween(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Copy @p src into @p dst, reallocating only on geometry change. */
void
copyFrameInto(const ImageF &src, ImageF &dst)
{
    if (dst.width() != src.width() || dst.height() != src.height())
        dst = ImageF(src.width(), src.height());
    std::copy(src.pixels().begin(), src.pixels().end(),
              dst.pixels().begin());
}

/** Size the slot/ready rings once, at stream open. */
void
initStreamRings(StreamState &s, const ServiceParams &params)
{
    const int depth = params.streamDepth;
    s.slots.resize(static_cast<std::size_t>(depth));
    s.freeSlots.reserve(static_cast<std::size_t>(depth));
    for (int i = depth - 1; i >= 0; --i)
        s.freeSlots.push_back(i);  // slot 0 served first
    s.readyRing.assign(static_cast<std::size_t>(depth), -1);
}

} // namespace

const std::string &
StreamHandle::name() const
{
    static const std::string empty;
    return state_ ? state_->name : empty;
}

FrameLease::FrameLease(FrameLease &&other) noexcept
    : state_(other.state_), slot_(other.slot_), frame_(other.frame_)
{
    other.state_ = nullptr;
    other.slot_ = -1;
    other.frame_ = nullptr;
}

FrameLease &
FrameLease::operator=(FrameLease &&other) noexcept
{
    if (this != &other) {
        release();
        state_ = other.state_;
        slot_ = other.slot_;
        frame_ = other.frame_;
        other.state_ = nullptr;
        other.slot_ = -1;
        other.frame_ = nullptr;
    }
    return *this;
}

FrameLease::~FrameLease() { release(); }

void
FrameLease::release()
{
    if (state_ == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(state_->mutex);
        state_->freeSlots.push_back(slot_);
    }
    state_->slotFree.notify_one();
    state_ = nullptr;
    slot_ = -1;
    frame_ = nullptr;
}

/**
 * One dispatcher shard: a slice of the thread budget as its own pool,
 * an encoder bound to that slice, the dispatcher thread that drains
 * the shard's ring (and steals), and the shard's dispatch counters.
 * The counters are monotonic relaxed atomics: each is individually
 * exact; ShardStats documents that the set is not one instant's
 * snapshot.
 */
struct EncodeService::ShardRuntime
{
    int participants = 1;
    std::unique_ptr<ThreadPool> pool;  ///< null when participants == 1
    std::unique_ptr<PerceptualEncoder> encoder;
    std::atomic<std::uint64_t> framesEncoded{0};
    std::atomic<std::uint64_t> framesStolen{0};
    std::atomic<std::uint64_t> busyNanos{0};
    /**
     * Queue residency of frames *homed* here, whoever encoded them
     * ("shard/<i>/queue_residency_ms" in the registry; lock-free).
     * Home attribution makes this the rebalancing signal: a hot home
     * shard's residency grows even while thieves keep its throughput
     * level.
     */
    obs::LogHistogram *residency = nullptr;
    std::thread dispatcher;
};

std::size_t
EncodeService::shardForName(const std::string &name, std::size_t shards)
{
    return shards < 2 ? 0 : std::hash<std::string>{}(name) % shards;
}

ThreadPool *
EncodeService::pool(std::size_t shard) const
{
    return shards_.at(shard)->pool.get();
}

EncodeService::EncodeService(const DiscriminationModel &model,
                             const ServiceParams &params)
    : params_(params),
      queue_(params.shards < 1 ? 1 : params.shards,
             params.shards < 1 || params.queueCapacity < 1
                 ? 1
                 : (params.queueCapacity + params.shards - 1) /
                       params.shards),
      startTime_(Clock::now())
{
    if (params_.threads < 1)
        throw std::invalid_argument("EncodeService: threads < 1");
    if (params_.shards < 1)
        throw std::invalid_argument("EncodeService: shards < 1");
    if (params_.streamDepth < 1)
        throw std::invalid_argument("EncodeService: streamDepth < 1");
    if (params_.queueCapacity < 1)
        throw std::invalid_argument("EncodeService: queueCapacity < 1");
    if (params_.latencyWindow < 1)
        throw std::invalid_argument("EncodeService: latencyWindow < 1");

    // Split the thread budget across shards as evenly as possible
    // (earlier shards take the remainder, every shard at least one
    // participant). Each shard gets its own pool and encoder: a
    // shared pool would serialize concurrent dispatchers behind
    // ThreadPool's dispatch lock, re-creating exactly the cross-
    // stream serialization this refactor removes.
    const std::size_t n = params_.shards;
    const int base = params_.threads / static_cast<int>(n);
    const int extra = params_.threads % static_cast<int>(n);
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto rt = std::make_unique<ShardRuntime>();
        rt->participants = std::max(
            1, base + (static_cast<int>(i) < extra ? 1 : 0));
        if (rt->participants > 1)
            rt->pool =
                std::make_unique<ThreadPool>(rt->participants - 1);

        PipelineParams pipeline;
        pipeline.tileSize = params_.tileSize;
        pipeline.fovealCutoffDeg = params_.fovealCutoffDeg;
        pipeline.threads = rt->participants;
        pipeline.extremaFn = params_.extremaFn;
        pipeline.pool = rt->pool.get();
        rt->encoder =
            std::make_unique<PerceptualEncoder>(model, pipeline);
        rt->residency = &metrics_.histogram(
            "shard/" + std::to_string(i) + "/queue_residency_ms");
        shards_.push_back(std::move(rt));
    }
    for (std::size_t i = 0; i < n; ++i)
        shards_[i]->dispatcher =
            std::thread([this, i] { dispatchLoop(i); });
}

EncodeService::~EncodeService() { shutdown(); }

StreamHandle
EncodeService::openStream(std::string name, const EccentricityMap &ecc)
{
    if (!accepting_.load())
        throw std::runtime_error(
            "EncodeService::openStream: service is shut down");
    auto state = std::make_unique<StreamState>();
    state->name = std::move(name);
    state->shard = shardForName(state->name, params_.shards);
    state->ecc = &ecc;
    initStreamRings(*state, params_);
    state->latencyHist = &metrics_.histogram(
        "stream/" + state->name + "/queue_latency_ms");

    StreamState *raw = state.get();
    std::lock_guard<std::mutex> lock(streamsMutex_);
    state->obsId = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back(std::move(state));
    return StreamHandle(raw);
}

StreamHandle
EncodeService::openGazeStream(std::string name,
                              const DisplayGeometry &geom,
                              const GazeStreamParams &gaze_params)
{
    if (!accepting_.load())
        throw std::runtime_error(
            "EncodeService::openGazeStream: service is shut down");
    // Fail at open time, not first submit: the incremental map's
    // exact band must cover this service's foveal cutoff (see
    // PerceptualEncoder::encodeFrameGazeInto).
    if (gaze_params.ecc.exactBandDeg <
        params_.fovealCutoffDeg +
            gaze_params.ecc.maxAccumulatedErrorDeg)
        throw std::invalid_argument(
            "EncodeService::openGazeStream: exactBandDeg < "
            "fovealCutoffDeg + maxAccumulatedErrorDeg");
    auto gaze = std::make_unique<GazeTrackedEccentricity>(
        geom, gaze_params.ecc, gaze_params.saccadeVelocityDegPerSec);
    // Sealed from birth: every refixate re-seals, and the dispatcher
    // verifies (and recovers) before each of this stream's encodes.
    if (params_.hardenIntegrity)
        gaze->sealState();
    auto state = std::make_unique<StreamState>();
    state->name = std::move(name);
    state->shard = shardForName(state->name, params_.shards);
    state->ecc = &gaze->map();
    state->gaze = std::move(gaze);
    initStreamRings(*state, params_);
    state->latencyHist = &metrics_.histogram(
        "stream/" + state->name + "/queue_latency_ms");

    StreamState *raw = state.get();
    std::lock_guard<std::mutex> lock(streamsMutex_);
    state->obsId = static_cast<std::uint32_t>(streams_.size());
    streams_.push_back(std::move(state));
    return StreamHandle(raw);
}

std::uint32_t
EncodeService::streamTraceId(StreamHandle handle) const
{
    if (!handle.valid())
        throw std::invalid_argument(
            "EncodeService::streamTraceId: invalid stream handle");
    return handle.state_->obsId;
}

void
EncodeService::submit(StreamHandle handle, const ImageF &frame)
{
    submitImpl(handle, frame, nullptr);
}

void
EncodeService::submit(StreamHandle handle, const ImageF &frame,
                      const GazeSample &gaze)
{
    submitImpl(handle, frame, &gaze);
}

void
EncodeService::submitImpl(StreamHandle handle, const ImageF &frame,
                          const GazeSample *gaze)
{
    if (!handle.valid())
        throw std::invalid_argument(
            "EncodeService::submit: invalid stream handle");
    StreamState &s = *handle.state_;
    if (gaze != nullptr && s.gaze == nullptr)
        throw std::invalid_argument(
            "EncodeService::submit: gaze sample on a static-fixation "
            "stream (openGazeStream it instead)");
    if (gaze == nullptr && s.gaze != nullptr)
        throw std::invalid_argument(
            "EncodeService::submit: gaze stream needs a gaze sample "
            "per frame");
    if (frame.width() != s.ecc->width() ||
        frame.height() != s.ecc->height())
        throw std::invalid_argument(
            "EncodeService::submit: frame does not match the stream's "
            "eccentricity map");

    // Frame-lifecycle trace, producer side: the submit span covers
    // slot backpressure, the input copy, and ring backpressure; the
    // queue-wait span recorded at dispatch begins inside it (at
    // submitTime), so the timeline stitches producer -> dispatcher.
    const bool tracing = obs::traceEnabled();
    const std::uint64_t submit_begin = tracing ? obs::traceNowNs() : 0;

    int slot = -1;
    std::uint64_t seq = 0;
    {
        std::unique_lock<std::mutex> lock(s.mutex);
        // Per-stream backpressure: wait for a free slot (bounded by
        // streamDepth), bailing out if the service shuts down first.
        s.slotFree.wait(lock, [&] {
            return !s.freeSlots.empty() || !accepting_.load();
        });
        if (!accepting_.load())
            throw std::runtime_error(
                "EncodeService::submit: service is shut down");
        slot = s.freeSlots.back();
        s.freeSlots.pop_back();
        seq = s.submitted;
        ++s.submitted;
    }

    // The slot is exclusively ours until the request is enqueued: copy
    // outside the lock so concurrent producers overlap their copies.
    StreamState::Slot &sl = s.slots[static_cast<std::size_t>(slot)];
    copyFrameInto(frame, sl.input);
    sl.error = nullptr;
    sl.hasGaze = gaze != nullptr;
    sl.frameIndex = seq;
    if (gaze != nullptr)
        sl.gazeSample = *gaze;
    // Checksum the copy we will encode from: anything that flips a bit
    // of it between here and the dispatcher's verify is detected.
    if (params_.hardenIntegrity)
        sl.inputHash = hash64(sl.input.pixels().data(),
                              sl.input.pixels().size() * sizeof(Vec3));

    EncodeRequest req;
    req.stream = &s;
    req.slot = slot;
    req.submitTime = Clock::now();
    // Per-shard backpressure: blocks while the stream's home ring is
    // full. The stream's address is its lane key — unique for the
    // stream's lifetime, and streams live as long as the service.
    // Peak-depth tracking (per shard and aggregate) happens inside
    // the queue, under its mutex, so the report's backlog watermark
    // is exact rather than a sampled race.
    if (!queue_.push(s.shard,
                     reinterpret_cast<std::uintptr_t>(&s), req)) {
        // Shut down while waiting: roll the submission back so drains
        // and collects never wait for a frame that will not arrive.
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            s.freeSlots.push_back(slot);
            --s.submitted;
        }
        s.slotFree.notify_one();
        s.frameReady.notify_all();
        throw std::runtime_error(
            "EncodeService::submit: service shut down while enqueuing");
    }
    if (tracing)
        obs::recordSpan(
            "service/submit", submit_begin, obs::traceNowNs(),
            obs::TraceTag{seq, s.obsId,
                          static_cast<std::int32_t>(s.shard)});
}

void
EncodeService::submitStereo(StreamHandle handle, const StereoFrame &pair)
{
    // With one slot, submit(right) would wait for a slot only this
    // (blocked) caller's collect can free — fail loudly instead.
    if (params_.streamDepth < 2)
        throw std::logic_error(
            "EncodeService::submitStereo: needs streamDepth >= 2 to "
            "pipeline both eyes");
    submit(handle, pair.left);
    submit(handle, pair.right);
}

FrameLease
EncodeService::collect(StreamHandle handle)
{
    return collectImpl(handle, nullptr);
}

FrameLease
EncodeService::collectFor(StreamHandle handle,
                          std::chrono::milliseconds timeout)
{
    return collectImpl(handle, &timeout);
}

FrameLease
EncodeService::tryCollect(StreamHandle handle)
{
    if (!handle.valid())
        throw std::invalid_argument(
            "EncodeService::tryCollect: invalid stream handle");
    {
        StreamState &s = *handle.state_;
        std::lock_guard<std::mutex> lock(s.mutex);
        if (s.collected == s.submitted)
            return FrameLease();
    }
    const std::chrono::milliseconds zero{0};
    return collectImpl(handle, &zero);
}

FrameLease
EncodeService::collectImpl(StreamHandle handle,
                           const std::chrono::milliseconds *timeout)
{
    if (!handle.valid())
        throw std::invalid_argument(
            "EncodeService::collect: invalid stream handle");
    StreamState &s = *handle.state_;
    // Consumer side of the frame timeline: the collect span covers
    // the ready-ring wait and ends when the frame leaves the service.
    const bool tracing = obs::traceEnabled();
    const std::uint64_t collect_begin =
        tracing ? obs::traceNowNs() : 0;
    std::unique_lock<std::mutex> lock(s.mutex);
    if (s.collected == s.submitted)
        throw std::logic_error(
            "EncodeService::collect: no frame outstanding");
    // A rolled-back submit (shutdown race) can retract the frame we
    // are waiting for, so re-check the outstanding count on wake.
    auto ready = [&] {
        return s.readyCount > 0 || s.collected == s.submitted;
    };
    if (timeout) {
        if (!s.frameReady.wait_for(lock, *timeout, ready))
            return FrameLease();  // deadline expired, frame still owed
    } else {
        s.frameReady.wait(lock, ready);
    }
    if (s.readyCount == 0)
        throw std::runtime_error(
            "EncodeService::collect: stream drained by shutdown");
    const int slot = s.readyRing[s.readyHead];
    s.readyHead = (s.readyHead + 1) % s.readyRing.size();
    --s.readyCount;
    ++s.collected;
    StreamState::Slot &sl = s.slots[static_cast<std::size_t>(slot)];
    if (sl.error) {
        std::exception_ptr err = sl.error;
        sl.error = nullptr;
        s.freeSlots.push_back(slot);
        lock.unlock();
        s.slotFree.notify_one();
        std::rethrow_exception(err);
    }
    // Last line of defense: re-verify the seal written at encode time
    // before handing the frame out. A flip while the result sat in
    // its slot (or anywhere between seal and here) quarantines the
    // frame — with hardening on, a corrupt frame never crosses this
    // boundary undetected.
    if (params_.hardenIntegrity && !verifyFrameSeal(sl.frame)) {
        ++s.faultsDetected;
        ++s.framesQuarantined;
        s.freeSlots.push_back(slot);
        lock.unlock();
        s.slotFree.notify_one();
        throw FrameQuarantined(
            "EncodeService::collect: frame seal mismatch (frame "
            "quarantined)");
    }
    if (tracing)
        obs::recordSpan(
            "service/collect", collect_begin, obs::traceNowNs(),
            obs::TraceTag{sl.frameIndex, s.obsId, obs::kNoShard});
    return FrameLease(&s, slot, &sl.frame);
}

void
EncodeService::drain(StreamHandle handle)
{
    if (!handle.valid())
        throw std::invalid_argument(
            "EncodeService::drain: invalid stream handle");
    StreamState &s = *handle.state_;
    std::unique_lock<std::mutex> lock(s.mutex);
    s.frameReady.wait(lock, [&] { return s.encoded == s.submitted; });
}

void
EncodeService::drainAll()
{
    std::vector<StreamState *> states;
    {
        std::lock_guard<std::mutex> lock(streamsMutex_);
        states.reserve(streams_.size());
        for (const auto &s : streams_)
            states.push_back(s.get());
    }
    for (StreamState *s : states)
        drain(StreamHandle(s));
}

void
EncodeService::shutdown()
{
    accepting_.store(false);
    // close() refuses new pushes and wakes every waiter on every
    // shard: producers blocked on any ring's backpressure see the
    // refusal, and each dispatcher drains its remaining (own plus
    // stealable) requests before observing closed-and-empty.
    queue_.close();
    {
        // Wake producers blocked on per-stream backpressure so they
        // observe the shutdown instead of hanging. The accepting_
        // store above happened outside the stream mutexes the waiters
        // evaluate their predicates under, so acquire each mutex
        // (empty critical section) before notifying: any waiter is
        // then either pre-predicate (sees the store) or parked (gets
        // the notify) — never between the two.
        std::lock_guard<std::mutex> lock(streamsMutex_);
        for (const auto &s : streams_) {
            { std::lock_guard<std::mutex> g(s->mutex); }
            s->slotFree.notify_all();
            s->frameReady.notify_all();
        }
    }
    std::lock_guard<std::mutex> lock(streamsMutex_);
    for (const auto &rt : shards_)
        if (rt->dispatcher.joinable())
            rt->dispatcher.join();  // drains queued requests first
}

void
EncodeService::dispatchLoop(std::size_t shard)
{
    // One dispatcher per shard. popForShard serves this shard's ring
    // in FIFO order and steals from loaded shards when it runs dry;
    // the queue's lane exclusivity means that while this loop body
    // runs, no other dispatcher can hold a request of the same
    // stream — the slot, the gaze state, and the stats mirrors below
    // are effectively single-threaded per stream, handed between
    // dispatchers through the queue mutex. finishLane() at the very
    // end of the iteration (after the ready-ring publish) is what
    // releases the stream's next request, so per-stream FIFO holds
    // through the publish, not just the encode.
    ShardRuntime &rt = *shards_[shard];
    // Named lazily on the first traced frame so an untraced run never
    // allocates this thread's ring (~1.3 MB at the default capacity).
    bool traceNamed = false;
    while (auto req = queue_.popForShard(shard)) {
        StreamState &s = *req->value.stream;
        StreamState::Slot &sl =
            s.slots[static_cast<std::size_t>(req->value.slot)];
        const Clock::time_point start = Clock::now();
        const bool tracing = obs::traceEnabled();
        const obs::TraceTag traceTag{
            sl.frameIndex, s.obsId, static_cast<std::int32_t>(shard)};
        const std::uint64_t start_ns =
            tracing ? obs::traceToNs(start) : 0;
        std::optional<obs::TagScope> tagScope;
        if (tracing) {
            if (!traceNamed) {
                obs::Tracer::instance().nameThread(
                    "shard" + std::to_string(shard) + "/dispatcher");
                traceNamed = true;
            }
            // queue_wait ends on the exact timestamp dispatch begins
            // (both use start_ns), so the two spans stitch with no
            // gap; "stolen" marks a cross-shard hand-off.
            obs::recordSpan("service/queue_wait",
                            obs::traceToNs(req->value.submitTime),
                            start_ns, traceTag, "stolen",
                            req->stolen ? 1 : 0);
            // Nested spans (encode passes, seal, verify) inherit the
            // frame/stream/shard tag ambiently for the whole hold.
            tagScope.emplace(traceTag);
        }
        bool saccade = false;
        bool verified = false;
        bool corrupt = false;
        bool quarantined = false;
        bool gazeRecovered = false;
        bool gazeHeld = false;
        try {
            if (params_.preEncodeFaultHook)
                params_.preEncodeFaultHook(s.name, sl.frameIndex,
                                           sl.input);
            // Hardened dispatch: verify the input copy against its
            // submit-time checksum before spending an encode on it —
            // a flip while the request waited in the queue yields a
            // quarantined frame, not silently corrupt output.
            if (params_.hardenIntegrity &&
                hash64(sl.input.pixels().data(),
                       sl.input.pixels().size() * sizeof(Vec3)) !=
                    sl.inputHash)
                throw FrameQuarantined(
                    "EncodeService: input checksum mismatch at "
                    "dispatch (frame quarantined)");
            if (s.gaze != nullptr) {
                // Claim the gaze state for this lane hold. A failure
                // here means two dispatchers hold the same stream —
                // a steal-protocol bug, surfaced as a frame error
                // rather than silent state corruption.
                if (!s.gaze->tryBeginExclusive())
                    throw std::logic_error(
                        "EncodeService: gaze state already in use "
                        "(lane exclusivity violated)");
                gazeHeld = true;
            }
            // Gaze streams: the eccentricity state persisted across
            // frames, so verify (and recover) it before it steers
            // this frame's foveal decisions. Recovery rebuilds the
            // map exactly — the frame is still encoded and delivered.
            if (params_.hardenIntegrity && s.gaze != nullptr &&
                !s.gaze->verifyAndRecoverState())
                gazeRecovered = true;
            if (sl.hasGaze) {
                saccade = rt.encoder->encodeFrameGazeInto(
                              sl.input, *s.gaze, sl.gazeSample,
                              sl.frame) == GazePhase::Saccade;
            } else {
                rt.encoder->encodeFrameInto(sl.input, *s.ecc,
                                            sl.frame);
            }
            if (params_.verifyRoundTrip) {
                obs::TraceSpan span("service/verify_roundtrip");
                verified = true;
                try {
                    corrupt = !rt.encoder->verifyRoundTrip(sl.frame);
                } catch (...) {
                    // The stream failed decode validation outright:
                    // corruption, not an encode error.
                    corrupt = true;
                }
            }
            if (params_.hardenIntegrity) {
                obs::TraceSpan span("service/seal");
                sealFrame(sl.frame);
            }
            if (params_.postEncodeFaultHook)
                params_.postEncodeFaultHook(s.name, sl.frameIndex,
                                            sl.frame);
        } catch (const FrameQuarantined &) {
            sl.error = std::current_exception();
            quarantined = true;
        } catch (...) {
            sl.error = std::current_exception();
        }
        if (gazeHeld)
            s.gaze->endExclusive();
        const Clock::time_point end = Clock::now();
        if (tracing)
            obs::recordSpan("service/dispatch", start_ns,
                            obs::traceToNs(end), traceTag);
        rt.framesEncoded.fetch_add(1, std::memory_order_relaxed);
        if (req->stolen)
            rt.framesStolen.fetch_add(1, std::memory_order_relaxed);
        rt.busyNanos.fetch_add(
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    end - start)
                    .count()),
            std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(s.mutex);
            ++s.encoded;
            if (req->stolen)
                ++s.framesStolen;
            if (!sl.error) {
                s.megapixels +=
                    static_cast<double>(sl.input.pixelCount()) / 1e6;
                s.encodeSeconds += secondsBetween(start, end);
            }
            if (verified) {
                ++s.framesVerified;
                if (corrupt)
                    ++s.corruptFrames;
            }
            if (saccade)
                ++s.saccadeFrames;
            if (quarantined) {
                ++s.faultsDetected;
                ++s.framesQuarantined;
            }
            if (gazeRecovered) {
                ++s.faultsDetected;
                ++s.gazeRecoveries;
            }
            if (s.gaze != nullptr) {
                s.refixations = s.gaze->refixations();
                s.fullRebuilds = s.gaze->fullRebuilds();
                s.deferredGazeUpdates = s.gaze->deferredUpdates();
            }
            const double wait_ms =
                secondsBetween(req->value.submitTime, start) * 1e3;
            // Queue latency: the stream's full-history histogram plus
            // the *home* shard's residency histogram — attributed to
            // the shard the frame was queued on even when a thief
            // encoded it, which is exactly the rebalancing signal.
            s.latencyHist->record(wait_ms);
            shards_[s.shard]->residency->record(wait_ms);
            s.readyRing[(s.readyHead + s.readyCount) %
                        s.readyRing.size()] = req->value.slot;
            ++s.readyCount;
        }
        s.frameReady.notify_all();
        // Only now may the stream's next request be handed out: the
        // result above is fully published, so the next holder (any
        // shard) sees a consistent slot ring and gaze state.
        queue_.finishLane(req->lane);
    }
}

void
EncodeService::recordDelivery(StreamHandle handle,
                              const DeliverySample &sample)
{
    if (!handle.valid())
        throw std::invalid_argument(
            "EncodeService::recordDelivery: invalid stream handle");
    StreamState &s = *handle.state_;
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.framesDelivered;
    if (sample.adaptiveRate)
        ++s.framesAdaptive;
    if (sample.fovealIntact)
        ++s.framesFovealIntact;
    if (sample.byteIdentical)
        ++s.framesByteIdentical;
    s.deliveryBytesSent += sample.bytesSent;
    s.deliveryShedBytes += sample.shedBytes;
    // The budget mean only covers adaptive frames: a non-adaptive
    // policy's SIZE_MAX "uncongested" sentinel is not a budget.
    if (sample.adaptiveRate)
        s.budgetBytesSum +=
            static_cast<double>(sample.budgetBytesPerRound);
    s.lastEstimatedLossRate = sample.estimatedLossRate;
    s.lastCutoffEccDeg = sample.cutoffEccDeg;
}

ServiceReport
EncodeService::report() const
{
    ServiceReport rep;
    rep.wallSeconds = secondsBetween(startTime_, Clock::now());
    rep.queuedRequests = queue_.size();
    rep.queuePeakDepth = queue_.aggregatePeakDepth();
    rep.queueCapacity = queue_.capacity();
    rep.shards.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const ShardRuntime &rt = *shards_[i];
        const auto qc = queue_.counters(i);
        ShardStats sh;
        sh.shard = i;
        sh.framesEncoded =
            rt.framesEncoded.load(std::memory_order_relaxed);
        sh.framesStolen =
            rt.framesStolen.load(std::memory_order_relaxed);
        sh.framesStolenFrom = qc.stolenFrom;
        sh.framesQueued = qc.pushes;
        sh.queueDepth = qc.depth;
        sh.queuePeakDepth = qc.peakDepth;
        sh.queueCapacity = queue_.capacityPerShard();
        sh.busySeconds =
            static_cast<double>(
                rt.busyNanos.load(std::memory_order_relaxed)) /
            1e9;
        sh.occupancy = rep.wallSeconds > 0.0
                           ? sh.busySeconds / rep.wallSeconds
                           : 0.0;
        sh.participants = rt.participants;
        sh.queueResidencyP50Ms = rt.residency->percentile(50.0);
        sh.queueResidencyP90Ms = rt.residency->percentile(90.0);
        sh.queueResidencyP99Ms = rt.residency->percentile(99.0);
        sh.residencySamples = rt.residency->count();
        if (rt.pool != nullptr) {
            sh.poolDispatches = rt.pool->dispatchCalls();
            sh.poolMeanParticipants =
                sh.poolDispatches > 0
                    ? static_cast<double>(rt.pool->participantSum()) /
                          static_cast<double>(sh.poolDispatches)
                    : 0.0;
        }
        rep.stolenFrames += sh.framesStolen;
        rep.shards.push_back(sh);
    }
    std::lock_guard<std::mutex> lock(streamsMutex_);
    rep.streams.reserve(streams_.size());
    for (const auto &sp : streams_) {
        const StreamState &s = *sp;
        StreamStats st;
        {
            // Only the snapshot happens under the stream lock the
            // dispatcher needs; the histogram reads below are
            // lock-free.
            std::lock_guard<std::mutex> slock(s.mutex);
            st.name = s.name;
            st.shard = s.shard;
            st.framesStolen = s.framesStolen;
            st.framesSubmitted = s.submitted;
            st.framesEncoded = s.encoded;
            st.framesCollected = s.collected;
            st.megapixels = s.megapixels;
            st.encodeSeconds = s.encodeSeconds;
            st.framesVerified = s.framesVerified;
            st.corruptFrames = s.corruptFrames;
            st.saccadeFrames = s.saccadeFrames;
            st.refixations = s.refixations;
            st.fullRebuilds = s.fullRebuilds;
            st.deferredGazeUpdates = s.deferredGazeUpdates;
            st.faultsDetected = s.faultsDetected;
            st.framesQuarantined = s.framesQuarantined;
            st.gazeRecoveries = s.gazeRecoveries;
            st.framesDelivered = s.framesDelivered;
            st.framesAdaptive = s.framesAdaptive;
            st.framesFovealIntact = s.framesFovealIntact;
            st.framesByteIdentical = s.framesByteIdentical;
            st.deliveryBytesSent = s.deliveryBytesSent;
            st.deliveryShedBytes = s.deliveryShedBytes;
            st.meanBudgetBytesPerRound =
                s.framesAdaptive > 0
                    ? s.budgetBytesSum /
                          static_cast<double>(s.framesAdaptive)
                    : 0.0;
            st.lastEstimatedLossRate = s.lastEstimatedLossRate;
            st.lastCutoffEccDeg = s.lastCutoffEccDeg;
        }
        st.encodeMps = st.encodeSeconds > 0.0
                           ? st.megapixels / st.encodeSeconds
                           : 0.0;
        // Full-history log-scale histogram (obs/metrics.hh) — within
        // one bucket of the old sorted-window exact values, with the
        // max kept exact.
        st.latencySamples = s.latencyHist->count();
        st.queueLatencyMaxMs = s.latencyHist->max();
        st.queueLatencyP50Ms = s.latencyHist->percentile(50.0);
        st.queueLatencyP90Ms = s.latencyHist->percentile(90.0);
        st.queueLatencyP99Ms = s.latencyHist->percentile(99.0);
        if (st.shard < rep.shards.size())
            ++rep.shards[st.shard].streamsHomed;
        rep.framesEncoded += st.framesEncoded;
        rep.megapixels += st.megapixels;
        rep.corruptFrames += st.corruptFrames;
        rep.faultsDetected += st.faultsDetected;
        rep.framesQuarantined += st.framesQuarantined;
        rep.gazeRecoveries += st.gazeRecoveries;
        rep.framesDelivered += st.framesDelivered;
        rep.framesFovealIntact += st.framesFovealIntact;
        rep.deliveryBytesSent += st.deliveryBytesSent;
        rep.deliveryShedBytes += st.deliveryShedBytes;
        rep.streams.push_back(std::move(st));
    }
    rep.aggregateMps = rep.wallSeconds > 0.0
                           ? rep.megapixels / rep.wallSeconds
                           : 0.0;
    return rep;
}

} // namespace pce
