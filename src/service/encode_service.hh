/**
 * @file
 * Multi-stream encode service: the production front of the perceptual
 * encoder.
 *
 * The paper's encoder sits in a live VR pipeline that delivers stereo
 * pairs every frame; a deployment serves many such pipelines at once.
 * This layer changes the unit of work from one encodeFrameInto call to
 * a *stream of buffered requests*: clients open a StreamHandle per
 * logical frame source (one eye of a headset, an animation sequence),
 * submit frames asynchronously, and collect encoded results in
 * submission order.
 *
 * ## Sharded concurrent dispatch
 *
 * Dispatch is sharded: the service runs ServiceParams::shards
 * dispatcher threads, each owning a bounded request ring
 * (common/sharded_queue.hh), a persistent ThreadPool slice of the
 * configured `threads` budget, and a PerceptualEncoder bound to that
 * slice. Streams are hash-assigned to a home shard at open
 * (shardForName), so unrelated streams ride different rings, different
 * condvars, and different encoders — two small-frame streams on
 * different shards encode truly concurrently instead of serializing
 * behind one dispatcher. An idle shard *steals* whole queued requests
 * from the most-loaded other shard, so a skewed stream->shard
 * assignment degrades to shared work, not idle cores.
 *
 * What makes stealing safe is the queue's **lane exclusivity**
 * contract: each stream is one lane, at most one of a lane's requests
 * is ever handed out at a time, and lanes hand out strictly in push
 * order. Per-stream state that a concurrent design must treat as
 * per-slot — the gaze stream's GazeTrackedEccentricity, the
 * frame-reuse slots, the integrity seals — is touched only by the
 * dispatcher currently holding the stream's lane, with the hand-off's
 * happens-before edge provided by the queue mutex (the gaze state
 * additionally carries a tryBeginExclusive guard that turns any lane
 * protocol violation into a loud error instead of silent corruption).
 * In-order hand-out of one-at-a-time lanes means a stream's frames
 * *finish* in submission order too, whichever shards encoded them:
 * FIFO collect is preserved by construction, and results stay
 * byte-identical to direct encodeFrameInto calls for any shard count,
 * thread count, and steal schedule.
 *
 * ## Ownership and reuse contracts
 *
 * - Each stream owns a fixed ring of `streamDepth` slots; a slot holds
 *   a service-owned input copy (ImageF) and a reusable EncodedFrame.
 *   submit() copies the caller's frame into a free slot and returns —
 *   the caller's buffer can be reused or freed immediately. Encoded
 *   results are handed out as FrameLease RAII objects pointing at the
 *   slot's EncodedFrame; the slot returns to the free ring when the
 *   lease is dropped. Because slots, queue storage, stats windows, and
 *   every EncodedFrame buffer are allocated up front and reused, the
 *   steady state of a same-geometry frame stream allocates nothing
 *   per frame (tests pin the buffer pointers).
 * - The EccentricityMap passed to openStream is borrowed and must
 *   outlive the stream (fixation geometry is per-display and
 *   long-lived; per-frame gaze would rebuild the map anyway).
 * - A FrameLease borrows its slot: the referenced EncodedFrame is
 *   valid and immutable until the lease is destroyed (or release()d),
 *   and must not outlive the service.
 *
 * ## Backpressure
 *
 * Two bounds keep memory proportional to configuration, never to
 * offered load: submit() blocks while all of the stream's slots are in
 * flight (per-stream backpressure, bounded by `streamDepth`), and
 * while the stream's *home shard ring* is full (per-shard
 * backpressure, bounded by ceil(queueCapacity / shards) per shard —
 * the queue's per-shard not-full condvar wakes only that shard's
 * producers, so a backlogged shard never stalls submitters of the
 * others). Producers therefore self-pace to the encode rate.
 *
 * ## Drain and shutdown
 *
 * drain(stream) blocks until everything submitted on the stream has
 * been encoded. shutdown() (also run by the destructor) refuses new
 * submissions, *finishes* every request already queued on every
 * shard, then joins all dispatchers — in-flight work is never
 * dropped, and submitters blocked on any shard's backpressure are
 * woken with an error instead of hanging. Results already encoded
 * remain collectible after shutdown.
 *
 * Results are byte-identical to calling encodeFrameInto directly for
 * the same frames, for any stream count and any thread count (tests
 * assert this): the service adds scheduling, never changes the math.
 */

#ifndef PCE_SERVICE_ENCODE_SERVICE_HH
#define PCE_SERVICE_ENCODE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_queue.hh"
#include "common/thread_pool.hh"
#include "core/pipeline.hh"
#include "gaze/incremental_ecc.hh"
#include "obs/metrics.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "render/scenes.hh"

namespace pce {

class EncodeService;

namespace detail {

struct StreamState;

/** One queued frame request (internal). */
struct EncodeRequest
{
    StreamState *stream = nullptr;
    int slot = -1;
    std::chrono::steady_clock::time_point submitTime{};
};

} // namespace detail

/** Service configuration. */
struct ServiceParams
{
    /**
     * Total parallel encode participants across the service (1 =
     * every encode serial). The budget is split across shards as
     * evenly as possible (earlier shards get the remainder, every
     * shard at least 1): shard i owns a persistent ThreadPool of
     * participants_i - 1 workers and encodes its frames with
     * participants_i parallel slots. With shards == 1 this is exactly
     * the old single-pool behavior.
     */
    int threads = 1;
    /**
     * Dispatcher shards. Each shard runs its own dispatcher thread,
     * request ring, pool slice, and encoder; streams are hash-homed to
     * a shard and idle shards steal queued requests from loaded ones
     * (see the file comment). 1 reproduces the original
     * single-dispatcher service. More shards buy cross-stream
     * concurrency on multi-core hosts at the cost of splitting the
     * `threads` budget per frame.
     */
    std::size_t shards = 1;
    /** BD tile edge for every stream (paper default 4). */
    int tileSize = 4;
    /** Foveal bypass cutoff, degrees (paper Sec. 5.1). */
    double fovealCutoffDeg = 5.0;
    /** Extrema backend override (empty = double precision). */
    ExtremaFn extremaFn;
    /**
     * Service-wide bound on queued (accepted, not yet encoding)
     * requests, split across shards: each shard ring holds
     * ceil(queueCapacity / shards) and submit() blocks while the
     * stream's *home* ring is full. ServiceReport::queueCapacity is
     * the effective total (shards * per-shard bound; equal to this
     * value whenever shards divides it).
     */
    std::size_t queueCapacity = 64;
    /**
     * EncodedFrame slots per stream — the per-stream in-flight bound
     * and reuse ring. 2 gives classic double buffering (submit frame
     * N+1 while collecting frame N); must be >= 1. Stereo submission
     * needs >= 2 to pipeline both eyes.
     */
    int streamDepth = 2;
    /**
     * Retained for compatibility; superseded by the obs migration.
     * Queue-latency percentiles now come from a fixed-bucket
     * LogHistogram per stream (obs/metrics.hh) that retains *every*
     * sample in constant memory, so there is no window to size — the
     * reported percentiles cover the stream's full history, within
     * one histogram bucket of the exact values the old sorted window
     * produced (the documented contract in obs/metrics.hh). Must
     * still be >= 1 (validated as before).
     */
    std::size_t latencyWindow = 4096;
    /**
     * Run PerceptualEncoder::verifyRoundTrip after every encode: the
     * BD stream is decoded back (reusing the slot's round-trip
     * buffers) and compared byte-for-byte against the encoded image —
     * cheap insurance for a service shipping streams to real decoders.
     * Failures (mismatch or a stream that no longer validates) count
     * in StreamStats::corruptFrames; the frame is still delivered.
     */
    bool verifyRoundTrip = false;
    /**
     * Selective integrity hardening (docs/FAULTS.md). When on:
     * submit() checksums the slot's input copy and the dispatcher
     * verifies it before encoding (a flip while the request waited in
     * the queue quarantines the frame instead of encoding garbage);
     * gaze streams verify their checksummed eccentricity state before
     * each encode and recover by exact rebuild on mismatch; every
     * encoded frame is sealed (core/pipeline.hh FrameSeal) and the
     * seal re-verified at collect(), so a corrupt frame is never
     * delivered — collect() throws FrameQuarantined and the stream
     * keeps going. Detections/quarantines count per stream and in the
     * aggregate report; healthy streams are unaffected.
     */
    bool hardenIntegrity = false;
    /**
     * Fault-injection hooks (src/fault campaigns; production leaves
     * them empty). Called by the dispatcher with the stream name and
     * the stream-local frame index: preEncodeFaultHook right after
     * dequeue with the slot's input copy (models a flip while queued,
     * *before* the hardened input-checksum verify), postEncodeFaultHook
     * right after the encode + seal with the slot's output frame
     * (models a flip while the result waits for collect()).
     */
    std::function<void(const std::string &, std::uint64_t, ImageF &)>
        preEncodeFaultHook;
    std::function<void(const std::string &, std::uint64_t,
                       EncodedFrame &)>
        postEncodeFaultHook;
};

/**
 * Thrown by collect() for a frame the hardened service detected as
 * corrupt (input checksum mismatch at dispatch, or seal mismatch at
 * collect). The slot is reclaimed before the throw: the stream stays
 * healthy and later frames collect normally — quarantine drops one
 * frame, never the stream.
 */
class FrameQuarantined : public std::runtime_error
{
  public:
    explicit FrameQuarantined(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Per-stream gaze configuration (openGazeStream). */
struct GazeStreamParams
{
    /** Incremental re-fixation tuning (gaze/incremental_ecc.hh). */
    IncrementalEccParams ecc;
    /** I-VT saccade velocity threshold, deg/s. */
    double saccadeVelocityDegPerSec = kSaccadeVelocityDegPerSec;
};

/**
 * One delivered frame's outcome, reported back into the stream's
 * stats by the delivery tier (DeliverySession in net/delivery.hh via
 * EncodeService::recordDelivery). Plain types only — the service
 * layer stays independent of src/net.
 */
struct DeliverySample
{
    /** The frame ran under an adaptive (RateController) budget. */
    bool adaptiveRate = false;
    /** Congestion budget the frame's rounds spent, bytes per round. */
    std::size_t budgetBytesPerRound = 0;
    /** Controller's loss-rate estimate after the frame (0 when not
     *  adaptive). */
    double estimatedLossRate = 0.0;
    /** Continuous foveal shed radius, degrees (infinity = no shed). */
    double cutoffEccDeg = 0.0;
    /** Wire bytes the delivery spent / shed before transmission. */
    std::size_t bytesSent = 0;
    std::size_t shedBytes = 0;
    /** Foveal region arrived intact from the wire. */
    bool fovealIntact = false;
    /** Frame proven byte-identical end to end (manifest CRC). */
    bool byteIdentical = false;
};

/**
 * Per-stream service statistics (one entry per ServiceReport).
 *
 * Consistency contract: every field of one StreamStats entry is
 * snapshotted atomically under the owning stream's mutex — the same
 * lock dispatchers take to publish results — so an entry is always
 * internally consistent (framesCollected <= framesEncoded <=
 * framesSubmitted, counters match the frames counted). Entries for
 * *different* streams are snapshotted one after another, not at one
 * instant: cross-stream sums can straddle concurrent encodes.
 */
struct StreamStats
{
    std::string name;
    /** Home shard the stream's submissions are queued to. */
    std::size_t shard = 0;
    /** Frames of this stream encoded by a non-home shard's
     *  dispatcher (stolen work; correctness is unaffected). */
    std::uint64_t framesStolen = 0;
    std::uint64_t framesSubmitted = 0;
    std::uint64_t framesEncoded = 0;
    std::uint64_t framesCollected = 0;
    /** Megapixels successfully encoded. */
    double megapixels = 0.0;
    /** Wall time spent encoding this stream's frames (dispatcher). */
    double encodeSeconds = 0.0;
    /** megapixels / encodeSeconds: the stream's encode throughput. */
    double encodeMps = 0.0;
    /**
     * Queue latency (submit to encode start) percentiles,
     * milliseconds — the service-level number a frame-budget SLO
     * cares about. Extracted from the stream's LogHistogram
     * ("stream/<name>/queue_latency_ms" in EncodeService::metrics()),
     * which retains every sample: values are within one histogram
     * bucket (< 1/16 relative) of exact; max is exact.
     */
    double queueLatencyP50Ms = 0.0;
    double queueLatencyP90Ms = 0.0;
    double queueLatencyP99Ms = 0.0;
    double queueLatencyMaxMs = 0.0;
    /** Latency samples recorded (== framesEncoded; the histogram
     *  retains the full history, not a window). */
    std::size_t latencySamples = 0;
    /** Frames checked / failed by per-frame round-trip verification. */
    std::uint64_t framesVerified = 0;
    std::uint64_t corruptFrames = 0;
    /** Gaze streams: frames encoded through the saccade bypass. */
    std::uint64_t saccadeFrames = 0;
    /** Gaze streams: map re-fixations / full-rebuild fallbacks /
     *  mid-saccade deferred updates (gaze/incremental_ecc.hh). */
    std::uint64_t refixations = 0;
    std::uint64_t fullRebuilds = 0;
    std::uint64_t deferredGazeUpdates = 0;
    /**
     * hardenIntegrity counters: integrity checks that fired (input
     * checksum, frame seal, gaze-state checksum), frames withheld
     * from delivery because of one, and gaze states rebuilt in place
     * (recovered, frame still delivered).
     */
    std::uint64_t faultsDetected = 0;
    std::uint64_t framesQuarantined = 0;
    std::uint64_t gazeRecoveries = 0;
    /**
     * Delivery-tier counters, fed by recordDelivery (the net tier's
     * DeliverySession reports each delivered frame back). Zero until
     * a delivery session runs on the stream.
     */
    std::uint64_t framesDelivered = 0;
    /** Of those, frames delivered under an adaptive rate budget. */
    std::uint64_t framesAdaptive = 0;
    /** Frames whose foveal region arrived intact from the wire. */
    std::uint64_t framesFovealIntact = 0;
    /** Frames proven byte-identical end to end (manifest CRC). */
    std::uint64_t framesByteIdentical = 0;
    /** Wire bytes sent / shed across the stream's deliveries. */
    std::uint64_t deliveryBytesSent = 0;
    std::uint64_t deliveryShedBytes = 0;
    /** Mean adaptive budget (bytes/round) over adaptive frames; 0
     *  when none ran (a constant policy's budget is not averaged). */
    double meanBudgetBytesPerRound = 0.0;
    /** Latest controller loss estimate / cutoff radius reported. */
    double lastEstimatedLossRate = 0.0;
    double lastCutoffEccDeg = 0.0;
};

/**
 * Per-shard dispatch statistics (ServiceReport::shards).
 *
 * Consistency contract: queue fields (depth, peak, steal counters)
 * are snapshotted together under the queue mutex and are exact;
 * dispatch fields (framesEncoded, framesStolen, busySeconds, pool
 * accounting) are monotonic relaxed atomics read individually —
 * each is exact on its own, but the set is not one instant's
 * snapshot, so e.g. framesEncoded can be one ahead of busySeconds
 * mid-encode. After drain()/shutdown() everything is quiescent and
 * mutually consistent.
 */
struct ShardStats
{
    std::size_t shard = 0;
    /** Streams whose home shard this is. */
    std::size_t streamsHomed = 0;
    /** Frames this shard's dispatcher encoded (own + stolen). */
    std::uint64_t framesEncoded = 0;
    /** ...of which it stole from other shards' rings. */
    std::uint64_t framesStolen = 0;
    /** Frames pushed to this ring but encoded by another shard. */
    std::uint64_t framesStolenFrom = 0;
    /** Requests pushed to this shard's ring, total. */
    std::uint64_t framesQueued = 0;
    /** Requests sitting in this shard's ring right now. */
    std::size_t queueDepth = 0;
    /** Deepest this shard's ring has been. */
    std::size_t queuePeakDepth = 0;
    /** This shard's ring bound (ceil(queueCapacity / shards)). */
    std::size_t queueCapacity = 0;
    /** Wall time this shard's dispatcher spent encoding. */
    double busySeconds = 0.0;
    /** busySeconds / report wallSeconds: 1.0 = never idle. The
     *  serialization tell: with one dispatcher, N busy streams show
     *  one shard pinned at ~1.0; sharded, occupancy spreads. */
    double occupancy = 0.0;
    /**
     * Queue residency (submit to encode start) percentiles for
     * frames *homed* to this shard, milliseconds, from the shard's
     * "shard/<i>/queue_residency_ms" LogHistogram. Attribution is by
     * home shard regardless of which dispatcher ultimately encoded
     * the frame, so a persistently hot shard shows up here even when
     * stealing hides it from the throughput numbers — the signal a
     * home-shard rebalancer would act on (ROADMAP).
     */
    double queueResidencyP50Ms = 0.0;
    double queueResidencyP90Ms = 0.0;
    double queueResidencyP99Ms = 0.0;
    std::uint64_t residencySamples = 0;
    /** Parallel encode participants this shard's slice runs. */
    int participants = 1;
    /** Pool participation accounting (ThreadPool::dispatchCalls /
     *  participantSum for this shard's pool slice): how much
     *  parallelism the shard's encodes actually used. */
    std::uint64_t poolDispatches = 0;
    double poolMeanParticipants = 0.0;
};

/** Aggregate service statistics. */
struct ServiceReport
{
    std::vector<StreamStats> streams;
    /** One entry per dispatcher shard, indexed by shard id. */
    std::vector<ShardStats> shards;
    std::uint64_t framesEncoded = 0;
    double megapixels = 0.0;
    /** Wall seconds since the service was constructed. */
    double wallSeconds = 0.0;
    /** megapixels / wallSeconds across all streams. */
    double aggregateMps = 0.0;
    /** Requests sitting in the service queues right now (all shards). */
    std::size_t queuedRequests = 0;
    /**
     * Deepest the *aggregate* backlog (summed across shard rings) has
     * ever been — tracked inside the queue mutex at push, so it is
     * exact and directly comparable to the single-queue peak this
     * metric baselined before sharding. A peak approaching
     * queueCapacity means producers outrun the dispatchers; per-shard
     * peaks in `shards` localize which ring backs up.
     */
    std::size_t queuePeakDepth = 0;
    /** Effective total bound the peak is measured against
     *  (shards * per-shard ring bound). */
    std::size_t queueCapacity = 0;
    /** Frames encoded by a non-home shard, service-wide: zero means
     *  the hash assignment balanced on its own; high counts mean
     *  stealing is what kept shards busy. */
    std::uint64_t stolenFrames = 0;
    /**
     * Deployment-health aggregates, summed across streams: round-trip
     * verification failures (verifyRoundTrip) and the hardenIntegrity
     * counters. A healthy deployment shows all four at zero; any
     * nonzero value localizes to its stream in `streams`.
     */
    std::uint64_t corruptFrames = 0;
    std::uint64_t faultsDetected = 0;
    std::uint64_t framesQuarantined = 0;
    std::uint64_t gazeRecoveries = 0;
    /** Delivery-tier aggregates, summed across streams (zero until a
     *  delivery session reports; see StreamStats). */
    std::uint64_t framesDelivered = 0;
    std::uint64_t framesFovealIntact = 0;
    std::uint64_t deliveryBytesSent = 0;
    std::uint64_t deliveryShedBytes = 0;
};

/**
 * Client-side reference to one open stream. Cheap to copy (it is a
 * tagged pointer into service-owned state); all operations go through
 * the owning EncodeService. Valid until the service is destroyed.
 */
class StreamHandle
{
  public:
    StreamHandle() = default;

    bool valid() const { return state_ != nullptr; }
    const std::string &name() const;

  private:
    friend class EncodeService;
    explicit StreamHandle(detail::StreamState *state) : state_(state) {}

    detail::StreamState *state_ = nullptr;
};

/**
 * RAII borrow of one encoded result. The referenced EncodedFrame (the
 * stream slot's reusable output) is valid until the lease is
 * destroyed or release()d, at which point the slot re-enters the
 * stream's free ring and may be overwritten by a later submit.
 * Move-only.
 */
class FrameLease
{
  public:
    FrameLease() = default;
    FrameLease(FrameLease &&other) noexcept;
    FrameLease &operator=(FrameLease &&other) noexcept;
    FrameLease(const FrameLease &) = delete;
    FrameLease &operator=(const FrameLease &) = delete;
    ~FrameLease();

    bool valid() const { return frame_ != nullptr; }
    const EncodedFrame &frame() const { return *frame_; }
    const EncodedFrame *operator->() const { return frame_; }

    /** Return the slot early (idempotent; the reference dies here). */
    void release();

  private:
    friend class EncodeService;
    FrameLease(detail::StreamState *state, int slot,
               const EncodedFrame *frame)
        : state_(state), slot_(slot), frame_(frame)
    {}

    detail::StreamState *state_ = nullptr;
    int slot_ = -1;
    const EncodedFrame *frame_ = nullptr;
};

/**
 * The multi-stream encode service (see the file comment for the
 * request model and contracts). Thread-safe: any number of producer
 * threads may submit/collect on their own streams concurrently;
 * operations on one stream should come from one producer at a time
 * (per-stream FIFO semantics assume an ordered caller).
 */
class EncodeService
{
  public:
    /**
     * @param model Discrimination model; must outlive the service.
     * @param params Service configuration (validated here; throws
     *        std::invalid_argument on nonsense).
     */
    explicit EncodeService(const DiscriminationModel &model,
                           const ServiceParams &params = {});

    /** Runs shutdown(): finishes queued work, joins the dispatcher. */
    ~EncodeService();

    EncodeService(const EncodeService &) = delete;
    EncodeService &operator=(const EncodeService &) = delete;

    /**
     * Open a stream. @p ecc is borrowed and must outlive the stream;
     * every submitted frame must match its dimensions. Throws
     * std::runtime_error after shutdown().
     */
    StreamHandle openStream(std::string name,
                            const EccentricityMap &ecc);

    /**
     * Open an eye-tracked stream: the service owns this stream's
     * eccentricity state (map + incremental updater + I-VT classifier,
     * one per stream so concurrent streams re-fixate independently)
     * and every frame must be submitted with a gaze sample. @p geom's
     * fixation fields give the initial fixation. Frames are encoded
     * through PerceptualEncoder::encodeFrameGazeInto: per-frame
     * incremental re-fixation, saccade frames through the cheap
     * bypass path. Throws std::runtime_error after shutdown() and
     * std::invalid_argument when @p params cannot honor the service's
     * foveal cutoff (see encodeFrameGazeInto).
     */
    StreamHandle openGazeStream(std::string name,
                                const DisplayGeometry &geom,
                                const GazeStreamParams &params = {});

    /**
     * Submit one frame with its gaze sample (gaze streams only;
     * std::invalid_argument on a static stream). Samples must carry
     * the stream's time order. Otherwise behaves like submit().
     */
    void submit(StreamHandle handle, const ImageF &frame,
                const GazeSample &gaze);

    /**
     * Submit one frame for encoding. Copies @p frame into the next
     * free stream slot (the caller's buffer is free on return), blocks
     * under backpressure (all slots in flight, or the service queue
     * full). Throws std::invalid_argument on a geometry mismatch with
     * the stream's EccentricityMap and std::runtime_error when the
     * service is shut down before the request could be accepted.
     */
    void submit(StreamHandle handle, const ImageF &frame);

    /**
     * Submit a stereo pair: left then right, two consecutive frames
     * of the stream. Throws std::logic_error when streamDepth < 2 —
     * with a single slot the right-eye submit would deadlock waiting
     * for a slot only this caller's collect can free.
     */
    void submitStereo(StreamHandle handle, const StereoFrame &pair);

    /**
     * Block until the stream's oldest un-collected frame is encoded
     * and lease it (FIFO: frames come back in submission order).
     * Throws std::logic_error when nothing is outstanding, and
     * rethrows the encode error if that frame's encode failed (its
     * slot is reclaimed first).
     */
    FrameLease collect(StreamHandle handle);

    /**
     * collect() with a deadline: wait at most @p timeout for the
     * stream's oldest un-collected frame and return an *invalid*
     * (default-constructed) FrameLease when the timeout expires first.
     * The frame stays outstanding — a later collect/collectFor/
     * tryCollect picks it up in FIFO order, so a result that arrives
     * late is delayed, never lost. Same exceptions as collect()
     * (std::logic_error when nothing is outstanding, the rethrown
     * encode error, FrameQuarantined) when a result *is* ready. This
     * is the delivery tier's entry point: a per-frame deadline loop
     * (src/net) must never wedge behind an indefinitely blocking
     * collect when an encode stalls.
     */
    FrameLease collectFor(StreamHandle handle,
                          std::chrono::milliseconds timeout);

    /**
     * Non-blocking poll: the oldest encoded frame if one is ready
     * right now, an invalid lease otherwise — including when nothing
     * is outstanding at all (unlike collect/collectFor this never
     * throws std::logic_error, so a poll loop needs no bookkeeping of
     * its own submissions).
     */
    FrameLease tryCollect(StreamHandle handle);

    /** Block until everything submitted on the stream is encoded. */
    void drain(StreamHandle handle);

    /** drain() every open stream. */
    void drainAll();

    /**
     * Stop accepting submissions, finish every queued request, join
     * the dispatcher. Blocked submitters are woken with an error;
     * already-encoded results stay collectible. Idempotent; also run
     * by the destructor.
     */
    void shutdown();

    /**
     * Fold one delivered frame's outcome into the stream's stats (the
     * delivery tier calls this once per deliverFrame; see
     * DeliverySample). Thread-safe per the stream's mutex; callable
     * after shutdown() — stats outlive the dispatchers.
     */
    void recordDelivery(StreamHandle handle,
                        const DeliverySample &sample);

    /** Point-in-time statistics (safe to call at any time; see the
     *  StreamStats/ShardStats consistency contracts). */
    ServiceReport report() const;

    const ServiceParams &params() const { return params_; }

    /**
     * The service's metric registry (obs/metrics.hh): per-stream
     * "stream/<name>/queue_latency_ms" and per-home-shard
     * "shard/<i>/queue_residency_ms" histograms live here, and the
     * report's percentiles are read from them. Exposed so exporters
     * and tests can snapshot the full registry; safe to call from any
     * thread at any time.
     */
    obs::MetricsRegistry &metrics() { return metrics_; }
    const obs::MetricsRegistry &metrics() const { return metrics_; }

    /**
     * The stream's stable trace id: the `stream` tag on every trace
     * event the service records for this stream (obs/trace.hh).
     * Sequential from 0 in open order. A delivery session that wants
     * its net-tier spans to stitch onto the same timeline sets
     * SenderPolicy::streamId to this value.
     */
    std::uint32_t streamTraceId(StreamHandle handle) const;

    /**
     * The home shard a stream named @p name is assigned to under
     * @p shards dispatcher shards. Exposed so tests and load planners
     * can reason about (or deliberately collide) stream homing; the
     * hash is stable for the life of the process, not across builds.
     */
    static std::size_t shardForName(const std::string &name,
                                    std::size_t shards);

    /** Shard @p shard's worker pool (nullptr when that shard's slice
     *  is a single participant). */
    ThreadPool *pool(std::size_t shard = 0) const;

  private:
    struct ShardRuntime;  ///< pool slice + encoder + dispatcher (.cc)

    void dispatchLoop(std::size_t shard);
    void submitImpl(StreamHandle handle, const ImageF &frame,
                    const GazeSample *gaze);
    FrameLease collectImpl(StreamHandle handle,
                           const std::chrono::milliseconds *timeout);

    const ServiceParams params_;
    ShardedStealQueue<detail::EncodeRequest> queue_;
    std::atomic<bool> accepting_{true};

    mutable std::mutex streamsMutex_;  ///< guards streams_
    std::vector<std::unique_ptr<detail::StreamState>> streams_;

    /** Owns every stream/shard histogram; outlives their recorders. */
    obs::MetricsRegistry metrics_;

    std::chrono::steady_clock::time_point startTime_;
    /** Last member: shutdown() joins every dispatcher before the
     *  queue or stream state can go away. */
    std::vector<std::unique_ptr<ShardRuntime>> shards_;
};

} // namespace pce

#endif // PCE_SERVICE_ENCODE_SERVICE_HH
