/**
 * @file
 * Chrome trace-event JSON export for the span tracer (obs/trace.hh):
 * the merge path that turns per-thread rings into one file Perfetto
 * (https://ui.perfetto.dev) or chrome://tracing loads directly.
 *
 * Emitted document shape (the "JSON object format" of the trace-event
 * spec):
 *
 *   { "displayTimeUnit": "ms",
 *     "traceEvents": [
 *       {"ph":"M","pid":1,"tid":2,"name":"thread_name",
 *        "args":{"name":"shard0/dispatcher"}},
 *       {"ph":"X","pid":1,"tid":2,"name":"service/dispatch",
 *        "cat":"pce","ts":123.456,"dur":14.250,
 *        "args":{"frame":7,"stream":1,"shard":0}},
 *       {"ph":"i","pid":1,"tid":3,"name":"net/nack","cat":"pce",
 *        "ts":150.000,"s":"t","args":{"missing":3}} ] }
 *
 * - Spans are ph "X" complete events, instants ph "i" (thread scope).
 * - ts/dur are microseconds (3 decimal places — the underlying
 *   timebase is steady-clock ns) relative to the process trace epoch.
 * - pid is always 1 (one process); tid is the recorder's thread id,
 *   with one ph "M" thread_name metadata event per named thread.
 * - Tag fields {frame, stream, shard} appear in args only when set,
 *   plus the span's optional named payload.
 *
 * Determinism: under a seeded workload the exported event multiset is
 * a pure function of the workload (tests/obs/test_frame_trace.cc pins
 * counts), and events are ordered by begin time, parents first —
 * wall-clock values vary run to run, structure does not.
 */

#ifndef PCE_OBS_TRACE_EXPORT_HH
#define PCE_OBS_TRACE_EXPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace pce::obs {

/** Write @p events (with optional thread names) as a Chrome trace. */
void writeChromeTrace(
    std::ostream &os, const std::vector<TraceEvent> &events,
    const std::vector<std::pair<std::uint32_t, std::string>>
        &thread_names = {});

/** Collect from the global Tracer and write (merge + export). */
void writeChromeTrace(std::ostream &os);

/**
 * Collect from the global Tracer into @p path. Returns false (after
 * printing nothing — callers own diagnostics) when the file cannot be
 * written.
 */
bool saveChromeTrace(const std::string &path);

} // namespace pce::obs

#endif // PCE_OBS_TRACE_EXPORT_HH
