#include "obs/trace_export.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace pce::obs {

namespace {

/** JSON string escape (control chars, quote, backslash). */
void
writeJsonString(std::ostream &os, const char *s)
{
    os << '"';
    for (; *s != '\0'; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\b': os << "\\b"; break;
        case '\f': os << "\\f"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                os << buf;
            } else {
                os << static_cast<char>(c);
            }
        }
    }
    os << '"';
}

/** Microseconds with ns precision, fixed three decimals. */
void
writeMicros(std::ostream &os, std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    os << buf;
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceEvent> &events,
                 const std::vector<std::pair<std::uint32_t,
                                             std::string>> &thread_names)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[tid, name] : thread_names) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"ts\":0.000"
              ",\"name\":\"thread_name\",\"args\":{\"name\":";
        writeJsonString(os, name.c_str());
        os << "}}";
    }
    for (const TraceEvent &e : events) {
        if (e.name == nullptr)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"ph\":\"" << (e.instant ? 'i' : 'X')
           << "\",\"pid\":1,\"tid\":" << e.tid << ",\"name\":";
        writeJsonString(os, e.name);
        os << ",\"cat\":\"pce\",\"ts\":";
        writeMicros(os, e.beginNs);
        if (!e.instant) {
            os << ",\"dur\":";
            writeMicros(os, e.endNs - e.beginNs);
        } else {
            os << ",\"s\":\"t\"";
        }
        os << ",\"args\":{";
        bool first_arg = true;
        auto arg_sep = [&] {
            if (!first_arg)
                os << ",";
            first_arg = false;
        };
        if (e.frame != kNoFrame) {
            arg_sep();
            os << "\"frame\":" << e.frame;
        }
        if (e.stream != kNoStream) {
            arg_sep();
            os << "\"stream\":" << e.stream;
        }
        if (e.shard != kNoShard) {
            arg_sep();
            os << "\"shard\":" << e.shard;
        }
        if (e.argName != nullptr) {
            arg_sep();
            writeJsonString(os, e.argName);
            os << ":" << e.arg;
        }
        os << "}}";
    }
    os << "\n]}\n";
}

void
writeChromeTrace(std::ostream &os)
{
    const Tracer &tracer = Tracer::instance();
    writeChromeTrace(os, tracer.collect(), tracer.threadNames());
}

bool
saveChromeTrace(const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    writeChromeTrace(out);
    out.flush();
    return static_cast<bool>(out);
}

} // namespace pce::obs
