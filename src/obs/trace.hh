/**
 * @file
 * Allocation-free frame-lifecycle tracing: per-thread fixed-capacity
 * span rings with a steady-clock timebase and frame/stream/shard
 * tagging.
 *
 * The pipeline spans five concurrent layers — submit -> sharded
 * dispatch (with stealing) -> parallel encode passes -> packetize ->
 * round-based delivery — and aggregate counters cannot answer "where
 * did frame N of stream S spend its 14 ms". This layer records *spans*
 * (named begin/end intervals) and *instants* into per-thread ring
 * buffers so one frame's timeline stitches across the producer thread,
 * whichever dispatcher encoded it, and the delivery loop, at a cost
 * low enough to leave compiled in.
 *
 * ## Cost model
 *
 * - Disabled (the default): every instrumentation point is one relaxed
 *   atomic load and a branch. No time is read, nothing is written.
 * - Enabled: one steady_clock read per span edge plus one ring store
 *   under the recording thread's own (uncontended) mutex. The record
 *   path allocates nothing: rings are preallocated at each thread's
 *   first event, and names are string literals (`const char *` is
 *   stored, not copied — callers must pass literals or otherwise
 *   immortal strings).
 * - The per-recorder mutex exists for the cross-thread collect()/
 *   reset() merge, which makes the whole subsystem clean under
 *   ThreadSanitizer; in steady state only the owning thread takes it.
 *
 * ## Ring semantics
 *
 * Each thread's recorder holds a fixed ring of capacityPerThread()
 * events. Overflow overwrites the oldest events and *counts* the loss:
 * recorded() is the lifetime total, dropped() == max(0, recorded() -
 * capacity) — wraparound-safe, so a trace that lost its head says so
 * instead of silently lying. collect() merges every thread's retained
 * events sorted by begin time (ties: longer span first, so parents
 * precede their children; then record order).
 *
 * ## Tagging
 *
 * Events carry {frame, stream, shard} so a cross-thread timeline can
 * be filtered to one frame of one stream. The tag is either explicit
 * (per span) or ambient: TagScope pins a thread-local tag that every
 * span/instant recorded inside it inherits — the dispatcher sets it
 * once per request and the nested encode-pass spans tag themselves.
 *
 * Exporting: obs/trace_export.hh turns collect() into Chrome
 * trace-event JSON loadable in Perfetto (docs/OBSERVABILITY.md).
 */

#ifndef PCE_OBS_TRACE_HH
#define PCE_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pce::obs {

/** Tag sentinels: "this event is not frame/stream/shard-scoped". */
constexpr std::uint64_t kNoFrame = ~static_cast<std::uint64_t>(0);
constexpr std::uint32_t kNoStream = ~static_cast<std::uint32_t>(0);
constexpr std::int32_t kNoShard = -1;

/** Frame/stream/shard attribution carried by every event. */
struct TraceTag
{
    std::uint64_t frame = kNoFrame;   ///< stream-local frame index
    std::uint32_t stream = kNoStream; ///< EncodeService::streamTraceId
    std::int32_t shard = kNoShard;    ///< dispatcher shard (or none)
};

/** One recorded span or instant (see the file comment). */
struct TraceEvent
{
    const char *name = nullptr;     ///< literal; never owned
    const char *argName = nullptr;  ///< optional payload name (literal)
    std::uint64_t beginNs = 0;      ///< steady-clock ns since epoch
    std::uint64_t endNs = 0;        ///< == beginNs for instants
    std::uint64_t frame = kNoFrame;
    std::uint64_t arg = 0;          ///< payload (valid iff argName)
    std::uint64_t seq = 0;          ///< global record order (tiebreak)
    std::uint32_t stream = kNoStream;
    std::uint32_t tid = 0;          ///< recorder-assigned thread id
    std::int32_t shard = kNoShard;
    bool instant = false;
};

namespace detail {
/** The runtime switch; read via traceEnabled() (one relaxed load). */
extern std::atomic<bool> g_traceEnabled;
} // namespace detail

/** The disabled fast path every instrumentation point starts with. */
inline bool
traceEnabled()
{
    return detail::g_traceEnabled.load(std::memory_order_relaxed);
}

/** Flip tracing at runtime (any thread, any time). */
void setTraceEnabled(bool on);

/** Steady-clock ns since the process-wide trace epoch (static init,
 *  so it precedes any timestamp the service can capture). */
std::uint64_t traceNowNs();

/** Convert an already-captured steady_clock time to the trace
 *  timebase (e.g. a request's submitTime). */
std::uint64_t traceToNs(std::chrono::steady_clock::time_point tp);

/**
 * One thread's fixed-capacity event ring. Owned by the Tracer registry
 * (recorders outlive their threads so collect() after a producer
 * exits still sees its events); threads reach theirs through
 * Tracer::recorder(), cached in a thread_local.
 */
class TraceRecorder
{
  public:
    explicit TraceRecorder(std::uint32_t tid, std::size_t capacity);

    /** Append one event (ring overwrite on overflow; counted). */
    void record(TraceEvent e);

    std::uint32_t tid() const { return tid_; }
    /** Lifetime events recorded (including since-overwritten ones). */
    std::uint64_t recorded() const;
    /** Events lost to ring wraparound. */
    std::uint64_t dropped() const;

  private:
    friend class Tracer;

    mutable std::mutex mutex_;
    std::vector<TraceEvent> ring_;  ///< fixed capacity, never resized
    std::uint64_t total_ = 0;       ///< ring[total_ % cap] is next
    std::uint32_t tid_ = 0;
    std::string threadName_;        ///< optional (nameThread)
};

/**
 * Process-wide recorder registry and merge point. A singleton: the
 * instrumentation macros-without-macros (TraceSpan, traceInstant)
 * need a zero-argument path to the current thread's ring.
 */
class Tracer
{
  public:
    static Tracer &instance();

    /** The calling thread's recorder (created on first use). */
    TraceRecorder &recorder();

    /** Name the calling thread for the exported trace ("shard0/
     *  dispatcher" beats "thread 3" in Perfetto). */
    void nameThread(std::string name);

    /**
     * Every thread's retained events, merged and sorted by begin time
     * (ties: longer span first so parents precede children, then
     * record order). Safe while recording continues — each ring is
     * snapshotted under its own mutex.
     */
    std::vector<TraceEvent> collect() const;

    /** {tid, name} for every thread that named itself. */
    std::vector<std::pair<std::uint32_t, std::string>>
    threadNames() const;

    /** Sum of recorded() / dropped() over all recorders. */
    std::uint64_t recordedEvents() const;
    std::uint64_t droppedEvents() const;

    /** Threads that have recorded (or been named) so far. */
    std::size_t threadCount() const;

    /**
     * Clear every recorder's ring and counters (recorders and their
     * tids survive — live threads keep their cached recorder). Not a
     * barrier: events recorded concurrently with reset() land in
     * either the old or the new trace.
     */
    void reset();

    /**
     * Resize every ring (existing recorders are cleared, future ones
     * created at the new capacity). Events, not bytes: one TraceEvent
     * is ~80 B, the 16384 default ~1.3 MB per recording thread.
     */
    void setCapacityPerThread(std::size_t capacity);
    std::size_t capacityPerThread() const;

  private:
    Tracer() = default;

    mutable std::mutex mutex_;  ///< guards recorders_ and capacity_
    std::vector<std::unique_ptr<TraceRecorder>> recorders_;
    std::size_t capacity_ = 16384;
};

/**
 * Ambient-tag scope: spans and instants recorded by this thread while
 * the scope lives inherit @p tag unless they carry an explicit one.
 * Nests (the previous tag is restored); cheap enough to leave
 * unconditional on paths that run once per frame.
 */
class TagScope
{
  public:
    explicit TagScope(const TraceTag &tag);
    ~TagScope();

    TagScope(const TagScope &) = delete;
    TagScope &operator=(const TagScope &) = delete;

    /** The calling thread's current ambient tag. */
    static const TraceTag &current();

  private:
    TraceTag saved_;
};

/**
 * RAII span: begins at construction, records at destruction (or an
 * explicit end()). When tracing is disabled at construction the span
 * is inert — one relaxed load, no clock read, nothing recorded.
 */
class TraceSpan
{
  public:
    /** Span with the thread's ambient tag (TagScope). */
    explicit TraceSpan(const char *name)
        : TraceSpan(name, TagScope::current())
    {}

    /** Span with an explicit tag. */
    TraceSpan(const char *name, const TraceTag &tag)
    {
        if (traceEnabled())
            begin(name, tag, traceNowNs());
    }

    /**
     * Span whose begin time was captured elsewhere — how the
     * queue-wait span ends exactly where the dispatch span begins
     * (both use the same captured now).
     */
    TraceSpan(const char *name, const TraceTag &tag,
              std::uint64_t beginNs)
    {
        if (traceEnabled())
            begin(name, tag, beginNs);
    }

    ~TraceSpan() { end(); }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric payload (latched; recorded at end()). */
    void arg(const char *name, std::uint64_t value)
    {
        argName_ = name;
        arg_ = value;
    }

    /** Close the span now (idempotent; the destructor is then inert). */
    void end();

    /** The span is live and will record (tracing was on at begin). */
    bool active() const { return name_ != nullptr; }
    std::uint64_t beginNs() const { return beginNs_; }

  private:
    void begin(const char *name, const TraceTag &tag,
               std::uint64_t beginNs);

    const char *name_ = nullptr;
    const char *argName_ = nullptr;
    std::uint64_t arg_ = 0;
    std::uint64_t beginNs_ = 0;
    TraceTag tag_;
};

/** Record a completed span from explicitly captured begin/end times. */
void recordSpan(const char *name, std::uint64_t beginNs,
                std::uint64_t endNs, const TraceTag &tag,
                const char *argName = nullptr, std::uint64_t arg = 0);

/** Record an instant with the thread's ambient tag. */
void traceInstant(const char *name, const char *argName = nullptr,
                  std::uint64_t arg = 0);

/** Record an instant with an explicit tag. */
void traceInstant(const char *name, const TraceTag &tag,
                  const char *argName, std::uint64_t arg);

} // namespace pce::obs

#endif // PCE_OBS_TRACE_HH
