#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pce::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** fetch_add for atomic<double> via CAS (portable pre-C++20-TS). */
void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed))
        ;
}

void
atomicMin(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed))
        ;
}

void
atomicMax(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed))
        ;
}

} // namespace

LogHistogram::LogHistogram(Params params) : params_(params)
{
    if (!(params_.minValue > 0.0))
        params_.minValue = 1e-3;
    params_.subBucketsPerOctave =
        std::max(1, params_.subBucketsPerOctave);
    params_.octaves = std::max(1, params_.octaves);
    nBuckets_ = 2 + static_cast<std::size_t>(params_.octaves) *
                        static_cast<std::size_t>(
                            params_.subBucketsPerOctave);
    buckets_ =
        std::make_unique<std::atomic<std::uint64_t>[]>(nBuckets_);
    for (std::size_t i = 0; i < nBuckets_; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    min_.store(kInf, std::memory_order_relaxed);
    max_.store(-kInf, std::memory_order_relaxed);
}

std::size_t
LogHistogram::bucketIndexFor(double v) const
{
    if (!(v >= params_.minValue))  // includes NaN and negatives
        return 0;
    const double r = v / params_.minValue;
    // frexp gives the octave exactly (no log2 rounding at powers of
    // two): r = m * 2^e with m in [0.5, 1), so floor(log2 r) = e - 1.
    int e = 0;
    std::frexp(r, &e);
    const int octave = e - 1;
    if (octave >= params_.octaves)
        return nBuckets_ - 1;  // overflow
    const int sub_n = params_.subBucketsPerOctave;
    // Position within the octave, [0, 1); division by a power of two
    // is exact, so the sub-bucket edge arithmetic cannot misplace a
    // boundary value.
    const double frac = std::ldexp(r, -octave) - 1.0;
    const int sub = std::min(
        sub_n - 1, static_cast<int>(frac * static_cast<double>(sub_n)));
    return 1 +
           static_cast<std::size_t>(octave) *
               static_cast<std::size_t>(sub_n) +
           static_cast<std::size_t>(sub);
}

double
LogHistogram::bucketLowerBound(std::size_t i) const
{
    if (i == 0)
        return 0.0;
    const std::size_t sub_n =
        static_cast<std::size_t>(params_.subBucketsPerOctave);
    const std::size_t k = i - 1;
    if (k >= static_cast<std::size_t>(params_.octaves) * sub_n)
        return params_.minValue *
               std::ldexp(1.0, params_.octaves);  // overflow bucket
    const std::size_t octave = k / sub_n;
    const std::size_t sub = k % sub_n;
    return params_.minValue *
           std::ldexp(1.0 + static_cast<double>(sub) /
                                static_cast<double>(sub_n),
                      static_cast<int>(octave));
}

double
LogHistogram::bucketUpperBound(std::size_t i) const
{
    if (i + 1 >= nBuckets_)
        return kInf;
    return bucketLowerBound(i + 1);
}

void
LogHistogram::record(double v)
{
    if (v < 0.0 || std::isnan(v))
        v = 0.0;
    buckets_[bucketIndexFor(v)].fetch_add(1,
                                          std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
    atomicMin(min_, v);
    atomicMax(max_, v);
}

double
LogHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
LogHistogram::min() const
{
    const double v = min_.load(std::memory_order_relaxed);
    return v == kInf ? 0.0 : v;
}

double
LogHistogram::max() const
{
    const double v = max_.load(std::memory_order_relaxed);
    return v == -kInf ? 0.0 : v;
}

double
LogHistogram::percentile(double p) const
{
    const std::uint64_t n = count();
    if (n == 0)
        return 0.0;
    // The same nearest-rank rule the service's old sorted fixed
    // window used (percentileOf): this shared formula is what makes
    // the within-one-bucket migration contract hold — both pick the
    // *same* sample, the histogram just reports its bucket.
    const double rank = p / 100.0 * static_cast<double>(n);
    std::uint64_t idx =
        rank <= 1.0 ? 0 : static_cast<std::uint64_t>(rank + 0.5) - 1;
    idx = std::min(idx, n - 1);

    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < nBuckets_; ++b) {
        cum += buckets_[b].load(std::memory_order_relaxed);
        if (cum > idx)
            return std::min(bucketUpperBound(b), max());
    }
    return max();  // racing recorders: fall back to the exact max
}

void
LogHistogram::reset()
{
    for (std::size_t i = 0; i < nBuckets_; ++i)
        buckets_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(kInf, std::memory_order_relaxed);
    max_.store(-kInf, std::memory_order_relaxed);
}

// --------------------------------------------------- MetricsRegistry

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (slot == nullptr)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (slot == nullptr)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LogHistogram &
MetricsRegistry::histogram(const std::string &name,
                           LogHistogram::Params params)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (slot == nullptr)
        slot = std::make_unique<LogHistogram>(params);
    return *slot;
}

std::vector<MetricsRegistry::Reading>
MetricsRegistry::snapshot() const
{
    std::vector<Reading> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_) {
        Reading r;
        r.name = name;
        r.kind = Reading::Kind::Counter;
        r.value = static_cast<double>(c->value());
        out.push_back(std::move(r));
    }
    for (const auto &[name, g] : gauges_) {
        Reading r;
        r.name = name;
        r.kind = Reading::Kind::Gauge;
        r.value = g->value();
        out.push_back(std::move(r));
    }
    for (const auto &[name, h] : histograms_) {
        Reading r;
        r.name = name;
        r.kind = Reading::Kind::Histogram;
        r.count = h->count();
        r.p50 = h->percentile(50.0);
        r.p90 = h->percentile(90.0);
        r.p99 = h->percentile(99.0);
        r.minValue = h->min();
        r.maxValue = h->max();
        r.sumValue = h->sum();
        out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end(),
              [](const Reading &a, const Reading &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace pce::obs
