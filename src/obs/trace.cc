#include "obs/trace.hh"

#include <algorithm>

namespace pce::obs {

namespace detail {
std::atomic<bool> g_traceEnabled{false};
} // namespace detail

namespace {

using SteadyClock = std::chrono::steady_clock;

/**
 * The trace epoch. Captured at static initialization so it precedes
 * every steady_clock timestamp the pipeline can hand to traceToNs
 * (e.g. a request's submitTime captured before tracing was enabled).
 */
const SteadyClock::time_point g_epoch = SteadyClock::now();

/** Global record-order counter (sort tiebreak; see TraceEvent::seq). */
std::atomic<std::uint64_t> g_seq{0};

thread_local TraceTag t_ambientTag;

thread_local TraceRecorder *t_recorder = nullptr;

} // namespace

void
setTraceEnabled(bool on)
{
    detail::g_traceEnabled.store(on, std::memory_order_relaxed);
}

std::uint64_t
traceNowNs()
{
    return traceToNs(SteadyClock::now());
}

std::uint64_t
traceToNs(SteadyClock::time_point tp)
{
    const auto d =
        std::chrono::duration_cast<std::chrono::nanoseconds>(tp -
                                                             g_epoch)
            .count();
    return d < 0 ? 0 : static_cast<std::uint64_t>(d);
}

// ----------------------------------------------------- TraceRecorder

TraceRecorder::TraceRecorder(std::uint32_t tid, std::size_t capacity)
    : tid_(tid)
{
    ring_.resize(capacity == 0 ? 1 : capacity);
}

void
TraceRecorder::record(TraceEvent e)
{
    e.tid = tid_;
    e.seq = g_seq.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    ring_[total_ % ring_.size()] = e;
    ++total_;
}

std::uint64_t
TraceRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::uint64_t
TraceRecorder::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

// ------------------------------------------------------------ Tracer

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

TraceRecorder &
Tracer::recorder()
{
    if (t_recorder != nullptr)
        return *t_recorder;
    std::lock_guard<std::mutex> lock(mutex_);
    recorders_.push_back(std::make_unique<TraceRecorder>(
        static_cast<std::uint32_t>(recorders_.size()), capacity_));
    t_recorder = recorders_.back().get();
    return *t_recorder;
}

void
Tracer::nameThread(std::string name)
{
    TraceRecorder &rec = recorder();
    std::lock_guard<std::mutex> lock(rec.mutex_);
    rec.threadName_ = std::move(name);
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &rp : recorders_) {
            const TraceRecorder &rec = *rp;
            std::lock_guard<std::mutex> rlock(rec.mutex_);
            const std::size_t cap = rec.ring_.size();
            const std::size_t kept =
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    rec.total_, static_cast<std::uint64_t>(cap)));
            // Unroll the ring oldest-first: the oldest retained event
            // sits at total_ % cap once the ring has wrapped.
            const std::uint64_t first = rec.total_ - kept;
            for (std::size_t i = 0; i < kept; ++i)
                out.push_back(rec.ring_[(first + i) % cap]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.beginNs != b.beginNs)
                      return a.beginNs < b.beginNs;
                  if (a.endNs != b.endNs)
                      return a.endNs > b.endNs;  // parent before child
                  return a.seq < b.seq;
              });
    return out;
}

std::vector<std::pair<std::uint32_t, std::string>>
Tracer::threadNames() const
{
    std::vector<std::pair<std::uint32_t, std::string>> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &rp : recorders_) {
        std::lock_guard<std::mutex> rlock(rp->mutex_);
        if (!rp->threadName_.empty())
            out.emplace_back(rp->tid_, rp->threadName_);
    }
    return out;
}

std::uint64_t
Tracer::recordedEvents() const
{
    std::uint64_t sum = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &rp : recorders_)
        sum += rp->recorded();
    return sum;
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::uint64_t sum = 0;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &rp : recorders_)
        sum += rp->dropped();
    return sum;
}

std::size_t
Tracer::threadCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorders_.size();
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &rp : recorders_) {
        std::lock_guard<std::mutex> rlock(rp->mutex_);
        rp->total_ = 0;
    }
}

void
Tracer::setCapacityPerThread(std::size_t capacity)
{
    if (capacity == 0)
        capacity = 1;
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    for (const auto &rp : recorders_) {
        std::lock_guard<std::mutex> rlock(rp->mutex_);
        rp->ring_.assign(capacity, TraceEvent{});
        rp->total_ = 0;
    }
}

std::size_t
Tracer::capacityPerThread() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

// ---------------------------------------------------------- TagScope

TagScope::TagScope(const TraceTag &tag) : saved_(t_ambientTag)
{
    t_ambientTag = tag;
}

TagScope::~TagScope() { t_ambientTag = saved_; }

const TraceTag &
TagScope::current()
{
    return t_ambientTag;
}

// --------------------------------------------------------- TraceSpan

void
TraceSpan::begin(const char *name, const TraceTag &tag,
                 std::uint64_t beginNs)
{
    name_ = name;
    tag_ = tag;
    beginNs_ = beginNs;
}

void
TraceSpan::end()
{
    if (name_ == nullptr)
        return;
    recordSpan(name_, beginNs_, traceNowNs(), tag_, argName_, arg_);
    name_ = nullptr;
}

// ----------------------------------------------------- free functions

void
recordSpan(const char *name, std::uint64_t beginNs,
           std::uint64_t endNs, const TraceTag &tag,
           const char *argName, std::uint64_t arg)
{
    TraceEvent e;
    e.name = name;
    e.argName = argName;
    e.beginNs = beginNs;
    e.endNs = endNs < beginNs ? beginNs : endNs;
    e.frame = tag.frame;
    e.stream = tag.stream;
    e.shard = tag.shard;
    e.arg = arg;
    Tracer::instance().recorder().record(e);
}

void
traceInstant(const char *name, const char *argName, std::uint64_t arg)
{
    traceInstant(name, TagScope::current(), argName, arg);
}

void
traceInstant(const char *name, const TraceTag &tag,
             const char *argName, std::uint64_t arg)
{
    if (!traceEnabled())
        return;
    TraceEvent e;
    e.name = name;
    e.argName = argName;
    e.beginNs = traceNowNs();
    e.endNs = e.beginNs;
    e.frame = tag.frame;
    e.stream = tag.stream;
    e.shard = tag.shard;
    e.arg = arg;
    e.instant = true;
    Tracer::instance().recorder().record(e);
}

} // namespace pce::obs
