/**
 * @file
 * Unified metrics: counters, gauges, and fixed-bucket log-scale
 * histograms with percentile extraction, behind a name-keyed registry.
 *
 * The service layers each grew bespoke aggregate stats (StreamStats'
 * fixed-window queue-latency percentiles being the largest); this
 * header is the one primitive they migrate onto. Design constraints,
 * in order:
 *
 * - **Record is wait-free and allocation-free.** Counter/Gauge are one
 *   relaxed atomic op; LogHistogram::record is a handful of arithmetic
 *   ops plus three relaxed atomic increments and two CAS min/max
 *   updates, on storage allocated once at construction. Any thread may
 *   record while any other reads — no locks, TSan-clean.
 * - **Fixed memory, unbounded history.** A histogram retains *every*
 *   sample in O(buckets) memory, so percentiles cover the stream's
 *   full history instead of a sliding window, and recording can never
 *   reallocate mid-stream.
 *
 * ## The percentile accuracy contract (LogHistogram)
 *
 * Buckets are HdrHistogram-style: each power-of-two octave above
 * `minValue` is split into `subBucketsPerOctave` linear sub-buckets,
 * so relative bucket width is bounded by 1/subBucketsPerOctave (6.25%
 * at the default 16) at every magnitude. percentile(p) locates the
 * exact p-th sample (by the same nearest-rank rule the old
 * fixed-window sort used) in the cumulative bucket counts and reports
 * that bucket's upper bound, clamped to the exact observed maximum.
 * The reported value is therefore always **within one bucket of the
 * exact sample**: exact <= reported <= bucketUpperBound(exact's
 * bucket), i.e. relative error < 1/subBucketsPerOctave. min(), max(),
 * count(), and sum() are exact. tests/obs/test_metrics.cc pins this
 * contract against a sorted-window reference.
 */

#ifndef PCE_OBS_METRICS_HH
#define PCE_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pce::obs {

/** Monotonic event counter (relaxed; sum-consistent, not fenced). */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-writer-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** LogHistogram shape (a namespace-scope struct so its defaults are
 *  usable in default arguments — nested-class NSDMIs are not until
 *  the enclosing class completes). */
struct LogHistogramParams
{
    /** Lower edge of the first octave; values below it land in
     *  the underflow bucket (reported as <= minValue). The
     *  default resolves queue latencies down to a microsecond. */
    double minValue = 1e-3;
    /** Linear sub-buckets per power-of-two octave: the accuracy
     *  knob (relative error < 1/subBucketsPerOctave). */
    int subBucketsPerOctave = 16;
    /** Octaves covered before overflow: 40 octaves above 1e-3
     *  spans ~12 orders of magnitude. */
    int octaves = 40;
};

/**
 * Fixed-bucket log-scale histogram (see the file comment for the
 * accuracy contract). Thread-safe for concurrent record() and reads.
 */
class LogHistogram
{
  public:
    using Params = LogHistogramParams;

    explicit LogHistogram(Params params = {});

    LogHistogram(const LogHistogram &) = delete;
    LogHistogram &operator=(const LogHistogram &) = delete;

    /** Record one sample (negative values clamp to 0). */
    void record(double v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const;
    /** Exact observed extrema (0 when empty). */
    double min() const;
    double max() const;

    /**
     * The p-th percentile (0..100) under the contract above: the
     * upper bound of the bucket holding the exact nearest-rank
     * sample, clamped to [min(), max()]. 0 when empty.
     */
    double percentile(double p) const;

    /** Bucket index a value lands in (0 = underflow). */
    std::size_t bucketIndexFor(double v) const;
    /** Value range covered by bucket @p i: [lower, upper). */
    double bucketLowerBound(std::size_t i) const;
    double bucketUpperBound(std::size_t i) const;
    std::size_t bucketCount() const { return nBuckets_; }

    const Params &params() const { return params_; }

    /** Zero every bucket and the count/sum/extrema. Not a barrier:
     *  concurrent record()s land before or after, never torn. */
    void reset();

  private:
    Params params_;
    std::size_t nBuckets_ = 0;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0};
    std::atomic<double> max_{0.0};
};

/**
 * Name-keyed metric registry. Lookup is mutex-guarded (do it once,
 * outside the hot path — the returned references are stable for the
 * registry's lifetime); the metrics themselves are lock-free.
 * Re-requesting a name returns the same instance, so independent
 * layers can share a metric by agreeing on its name. Naming
 * convention: "layer/instance/quantity_unit" (e.g.
 * "stream/left-eye/queue_latency_ms", "shard/0/queue_residency_ms").
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    /** @p params applies on first creation only. */
    LogHistogram &histogram(const std::string &name,
                            LogHistogram::Params params = {});

    /** One metric's point-in-time reading (snapshot()). */
    struct Reading
    {
        std::string name;
        enum class Kind { Counter, Gauge, Histogram } kind;
        double value = 0.0;          ///< counter/gauge value
        std::uint64_t count = 0;     ///< histogram samples
        double p50 = 0.0, p90 = 0.0, p99 = 0.0;
        double minValue = 0.0, maxValue = 0.0, sumValue = 0.0;
    };

    /** Every registered metric, name-sorted. */
    std::vector<Reading> snapshot() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
};

} // namespace pce::obs

#endif // PCE_OBS_METRICS_HH
