#include "bd/bd_codec.hh"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "common/bitstream.hh"
#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "simd/tile_kernels.hh"

namespace pce {

namespace {

/** Stream magic ("BD1"), for defensive decode. */
constexpr uint32_t kMagic = 0x424431;
constexpr unsigned kMagicBits = 24;
constexpr unsigned kDimBits = 16;
constexpr unsigned kTileBits = 8;
constexpr unsigned kWidthFieldBits = kBdWidthFieldBits;
constexpr unsigned kBaseBits = kBdBaseBits;

static_assert(kMagicBits + 2 * kDimBits + kTileBits ==
                  kBdStreamHeaderBits,
              "header constant out of sync with the field widths");

} // namespace

void
bdWriteStreamHeader(std::uint8_t *out8, int width, int height,
                    int tile_size)
{
    if (width < 1 || width > 0xFFFF || height < 1 || height > 0xFFFF)
        throw std::invalid_argument(
            "bdWriteStreamHeader: dimensions out of header range");
    if (tile_size < 1 || tile_size > 255)
        throw std::invalid_argument(
            "bdWriteStreamHeader: tile size out of range");
    BitWriter bw;
    bw.putBits(kMagic, kMagicBits);
    bw.putBits(static_cast<uint32_t>(width), kDimBits);
    bw.putBits(static_cast<uint32_t>(height), kDimBits);
    bw.putBits(static_cast<uint32_t>(tile_size), kTileBits);
    bw.alignToByte();
    const std::vector<uint8_t> bytes = bw.take();
    std::copy(bytes.begin(), bytes.end(), out8);
}

unsigned
bdDeltaWidth(uint8_t min_value, uint8_t max_value)
{
    const unsigned range = static_cast<unsigned>(max_value) - min_value;
    unsigned w = 0;
    while ((1u << w) < range + 1u)
        ++w;
    return w;
}

std::size_t
bdTileBitsFromCodes(const uint8_t *codes, std::size_t n)
{
    std::size_t bits = 3 * (kWidthFieldBits + kBaseBits);
    if (n == 0)
        return bits;
    uint8_t lo[3] = {255, 255, 255};
    uint8_t hi[3] = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
        for (int c = 0; c < 3; ++c) {
            const uint8_t v = codes[3 * i + c];
            lo[c] = std::min(lo[c], v);
            hi[c] = std::max(hi[c], v);
        }
    }
    for (int c = 0; c < 3; ++c)
        bits += n * bdDeltaWidth(lo[c], hi[c]);
    return bits;
}

BdCodec::BdCodec(int tile_size) : tileSize_(tile_size)
{
    if (tile_size < 1 || tile_size > 255)
        throw std::invalid_argument("BdCodec: tile size out of range");
}

BdChannelStats
BdCodec::analyzeTileChannel(const ImageU8 &img, const TileRect &rect,
                            int channel)
{
    uint8_t lo = 255;
    uint8_t hi = 0;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
            const uint8_t v = img.channel(x, y, channel);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    BdChannelStats s;
    s.deltaWidth = bdDeltaWidth(lo, hi);
    s.metaBits = kWidthFieldBits;
    s.baseBits = kBaseBits;
    s.deltaBits =
        static_cast<std::size_t>(rect.pixelCount()) * s.deltaWidth;
    return s;
}

std::vector<uint8_t>
BdCodec::encode(const ImageU8 &img, BdFrameStats *stats_out) const
{
    std::vector<uint8_t> out;
    encodeInto(img, stats_out, out);
    return out;
}

namespace {

/**
 * Emit the bitstream of tiles [begin, end) into @p bw from the
 * precomputed per-tile-channel base/width stats. The emission order is
 * exactly the serial encoder's, so concatenating ranges in tile order
 * reproduces its stream bit for bit.
 */
void
emitTileRange(const ImageU8 &img, const std::vector<TileRect> &tiles,
              const std::vector<uint8_t> &base,
              const std::vector<uint8_t> &width, std::size_t begin,
              std::size_t end, BitWriter &bw)
{
    for (std::size_t t = begin; t < end; ++t) {
        const TileRect &rect = tiles[t];
        for (int c = 0; c < 3; ++c) {
            const uint8_t lo = base[3 * t + c];
            const unsigned w = width[3 * t + c];
            bw.putBits(w, kWidthFieldBits);
            bw.putBits(lo, kBaseBits);
            if (w == 0)
                continue;
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
                    const unsigned delta =
                        static_cast<unsigned>(img.channel(x, y, c)) -
                        lo;
                    bw.putBits(delta, w);
                }
            }
        }
    }
}

} // namespace

void
BdCodec::encodeInto(const ImageU8 &img, BdFrameStats *stats_out,
                    std::vector<uint8_t> &out, BdEncodeScratch *scratch,
                    ThreadPool *pool, int participants) const
{
    BdEncodeScratch local;
    BdEncodeScratch &s = scratch ? *scratch : local;
    if (s.tilesWidth != img.width() || s.tilesHeight != img.height() ||
        s.tilesSize != tileSize_) {
        s.tiles = tileGrid(img.width(), img.height(), tileSize_);
        s.tilesWidth = img.width();
        s.tilesHeight = img.height();
        s.tilesSize = tileSize_;
    }
    const std::vector<TileRect> &tiles = s.tiles;
    const std::size_t n_tiles = tiles.size();
    const bool parallel = pool != nullptr && participants > 1 &&
                          n_tiles > 1;

    // Pass 1: per-tile-channel minimum and delta width, through the
    // dispatched min/max kernel (32 bytes per op under AVX2; the scalar
    // table is the byte-wise reference — identical results either way,
    // min/max over integers is order-independent).
    s.base.resize(n_tiles * 3);
    s.width.resize(n_tiles * 3);
    const simd::TileKernels &kernels = simd::activeTileKernels();
    const std::size_t row_stride =
        static_cast<std::size_t>(img.width()) * 3;
    const uint8_t *buf_end = img.data().data() + img.data().size();
    auto statsRange = [&](std::size_t begin, std::size_t end, int) {
        for (std::size_t t = begin; t < end; ++t) {
            const TileRect &rect = tiles[t];
            uint8_t lo[3];
            uint8_t hi[3];
            kernels.bdTileMinMax(img.pixel(rect.x0, rect.y0),
                                 row_stride, rect.w, rect.h, buf_end,
                                 lo, hi);
            for (int c = 0; c < 3; ++c) {
                s.base[3 * t + c] = lo[c];
                s.width[3 * t + c] =
                    static_cast<uint8_t>(bdDeltaWidth(lo[c], hi[c]));
            }
        }
    };
    {
        // Pass spans record on the dispatching thread only — worker
        // time inside parallelFor is inside the span's wall time.
        obs::TraceSpan span("bd/stats");
        if (parallel)
            pool->parallelFor(n_tiles, 16, participants, statsRange);
        else
            statsRange(0, n_tiles, 0);
    }

    // Pass 2 (serial): exact per-tile bit offsets by prefix sum.
    BdFrameStats stats;
    stats.pixels = img.pixelCount();
    stats.headerBits = kMagicBits + 2 * kDimBits + kTileBits;
    s.bitOffsets.resize(n_tiles + 1);
    std::size_t payload_bits = 0;
    {
        obs::TraceSpan span("bd/prefix");
        for (std::size_t t = 0; t < n_tiles; ++t) {
            s.bitOffsets[t] = payload_bits;
            const std::size_t pixels =
                static_cast<std::size_t>(tiles[t].pixelCount());
            std::size_t tile_bits = 3 * (kWidthFieldBits + kBaseBits);
            for (int c = 0; c < 3; ++c)
                tile_bits += pixels * s.width[3 * t + c];
            stats.deltaBits +=
                tile_bits - 3 * (kWidthFieldBits + kBaseBits);
            payload_bits += tile_bits;
        }
    }
    s.bitOffsets[n_tiles] = payload_bits;
    stats.metaBits = n_tiles * 3 * kWidthFieldBits;
    stats.baseBits = n_tiles * 3 * kBaseBits;

    // Pass 3: emission. The writer adopts (and returns) the caller's
    // buffer and reserves the exact final size up front.
    obs::TraceSpan emitSpan("bd/emit");
    BitWriter bw;
    bw.reset(std::move(out));
    bw.reserve(stats.headerBits + payload_bits + 7);
    bw.putBits(kMagic, kMagicBits);
    bw.putBits(static_cast<uint32_t>(img.width()), kDimBits);
    bw.putBits(static_cast<uint32_t>(img.height()), kDimBits);
    bw.putBits(static_cast<uint32_t>(tileSize_), kTileBits);

    if (!parallel) {
        emitTileRange(img, tiles, s.base, s.width, 0, n_tiles, bw);
    } else {
        // Contiguous tile chunks, emitted into independent writers and
        // spliced in order. More chunks than slots so the dynamic
        // scheduler can rebalance around cheap (flat/foveal) runs.
        const std::size_t n_chunks = std::min<std::size_t>(
            n_tiles, static_cast<std::size_t>(participants) * 4);
        s.chunks.resize(n_chunks);
        pool->parallelFor(
            n_chunks, 1, participants,
            [&](std::size_t begin, std::size_t end, int) {
                for (std::size_t k = begin; k < end; ++k) {
                    const std::size_t t0 = n_tiles * k / n_chunks;
                    const std::size_t t1 =
                        n_tiles * (k + 1) / n_chunks;
                    BitWriter &cw = s.chunks[k];
                    cw.clear();
                    cw.reserve(s.bitOffsets[t1] - s.bitOffsets[t0]);
                    emitTileRange(img, tiles, s.base, s.width, t0, t1,
                                  cw);
                }
            });
        for (std::size_t k = 0; k < n_chunks; ++k)
            bw.appendBits(s.chunks[k].bytes().data(),
                          s.chunks[k].bitCount());
    }

    bw.alignToByte();
    emitSpan.end();
    if (stats_out)
        *stats_out = stats;
    out = bw.take();
}

ImageU8
BdCodec::decode(const std::vector<uint8_t> &stream)
{
    ImageU8 img;
    decodeInto(stream, img);
    return img;
}

std::uint64_t
BdCodec::walkTileRange(const std::uint8_t *data, std::size_t size_bytes,
                       const std::vector<TileRect> &tiles,
                       std::size_t tile_begin, std::size_t tile_end,
                       std::uint64_t payload_bit_begin,
                       std::size_t *offsets_out)
{
    const std::uint64_t stream_bits =
        static_cast<std::uint64_t>(size_bytes) * 8;
    BitReader hdr(data, size_bytes);
    std::uint64_t offset = payload_bit_begin;
    for (std::size_t t = tile_begin; t < tile_end; ++t) {
        if (offsets_out)
            offsets_out[t - tile_begin] =
                static_cast<std::size_t>(offset);
        const std::uint64_t pixels =
            static_cast<std::uint64_t>(tiles[t].pixelCount());
        for (int c = 0; c < 3; ++c) {
            const std::uint64_t field_pos =
                kBdStreamHeaderBits + offset;
            if (field_pos + kWidthFieldBits + kBaseBits > stream_bits)
                throw std::runtime_error(
                    "BdCodec::decode: stream truncated mid-tile");
            // Only the 4-bit width field is read (getBits' two-byte
            // fast path); bases and deltas are stepped over
            // arithmetically.
            hdr.seek(static_cast<std::size_t>(field_pos));
            const unsigned width = hdr.getBits(kWidthFieldBits);
            if (width > 8)
                throw std::runtime_error(
                    "BdCodec::decode: delta width field exceeds 8 "
                    "bits");
            offset += kWidthFieldBits + kBaseBits + pixels * width;
            if (kBdStreamHeaderBits + offset > stream_bits)
                throw std::runtime_error(
                    "BdCodec::decode: stream truncated mid-tile");
        }
    }
    if (offsets_out)
        offsets_out[tile_end - tile_begin] =
            static_cast<std::size_t>(offset);
    return offset;
}

void
BdCodec::decodeTileRangeInto(const std::uint8_t *data,
                             std::size_t size_bytes,
                             const std::vector<TileRect> &tiles,
                             std::size_t tile_begin,
                             std::size_t tile_end,
                             std::uint64_t payload_bit_begin,
                             ImageU8 &out)
{
    BitReader br(data, size_bytes);
    br.seek(static_cast<std::size_t>(kBdStreamHeaderBits +
                                     payload_bit_begin));
    for (std::size_t t = tile_begin; t < tile_end; ++t) {
        const TileRect &rect = tiles[t];
        for (int c = 0; c < 3; ++c) {
            const unsigned width = br.getBits(kWidthFieldBits);
            const unsigned base = br.getBits(kBaseBits);
            if (width == 0) {
                // Flat channel (the cheap "case 2" tiles): no delta
                // bits to read, just splat the base.
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                    uint8_t *row = out.pixel(rect.x0, y);
                    for (int x = 0; x < rect.w; ++x)
                        row[3 * x + c] = static_cast<uint8_t>(base);
                }
                continue;
            }
            for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                uint8_t *row = out.pixel(rect.x0, y);
                for (int x = 0; x < rect.w; ++x)
                    row[3 * x + c] = static_cast<uint8_t>(
                        base + br.getBits(width));
            }
        }
    }
}

void
BdCodec::decodeInto(const std::vector<uint8_t> &stream, ImageU8 &out,
                    BdDecodeScratch *scratch, ThreadPool *pool,
                    int participants, std::uint64_t max_pixels,
                    bool duplicate_validate)
{
    constexpr std::size_t kHeaderBits =
        kMagicBits + 2 * kDimBits + kTileBits;
    const std::uint64_t stream_bits =
        static_cast<std::uint64_t>(stream.size()) * 8;
    if (stream_bits < kHeaderBits)
        throw std::runtime_error(
            "BdCodec::decode: stream shorter than header");
    BitReader hdr(stream);
    if (hdr.getBits(kMagicBits) != kMagic)
        throw std::runtime_error("BdCodec::decode: bad magic");
    const uint32_t w = hdr.getBits(kDimBits);
    const uint32_t h = hdr.getBits(kDimBits);
    const uint32_t tile = hdr.getBits(kTileBits);
    if (w == 0 || h == 0 || tile == 0)
        throw std::runtime_error("BdCodec::decode: bad header");
    // Decompression-bomb guard: flat tiles compress so well that a
    // huge frame can be *honestly* described by a tiny stream, so no
    // consistency check below bounds the output size — only this cap
    // does.
    if (static_cast<std::uint64_t>(w) * h > max_pixels)
        throw std::runtime_error(
            "BdCodec::decode: frame exceeds the decode pixel cap");

    // All tile/pixel arithmetic below is 64-bit: an adversarial
    // 0xFFFF x 0xFFFF header yields ~2^32 tiles and ~2^34 payload
    // bits, which must be *counted* correctly (no 32-bit wrap) so the
    // floor check rejects the stream before any allocation scales with
    // the claimed dimensions.
    const std::uint64_t tiles_x = (w + tile - 1) / tile;
    const std::uint64_t tiles_y = (h + tile - 1) / tile;
    const std::uint64_t n_tiles64 = tiles_x * tiles_y;
    // Every tile-channel costs at least its meta+base bits; a stream
    // below that floor cannot describe the claimed frame. This bounds
    // n_tiles by the actual stream size, so the tile grid and offset
    // arrays built next are O(stream), never O(claimed dimensions).
    if (n_tiles64 * 3 * (kWidthFieldBits + kBaseBits) >
        stream_bits - kHeaderBits)
        throw std::runtime_error(
            "BdCodec::decode: stream too short for header dimensions");

    BdDecodeScratch local;
    BdDecodeScratch &s = scratch ? *scratch : local;
    if (s.tilesWidth != static_cast<int>(w) ||
        s.tilesHeight != static_cast<int>(h) ||
        s.tilesSize != static_cast<int>(tile)) {
        s.tiles = tileGrid(static_cast<int>(w), static_cast<int>(h),
                           static_cast<int>(tile));
        s.tilesWidth = static_cast<int>(w);
        s.tilesHeight = static_cast<int>(h);
        s.tilesSize = static_cast<int>(tile);
    }
    const std::size_t n_tiles = s.tiles.size();

    // Pass 1 (serial): validate every per-tile-channel record and turn
    // the width fields into the exclusive prefix of per-tile payload
    // bit offsets — the exact dual of the encoder's prefix pass. Only
    // the 12-bit meta fields are read; delta blocks are stepped over
    // arithmetically.
    auto walkPrefix =
        [&](std::vector<std::size_t> &offsets) -> std::uint64_t {
        offsets.resize(n_tiles + 1);
        return walkTileRange(stream.data(), stream.size(), s.tiles, 0,
                             n_tiles, 0, offsets.data());
    };
    const std::uint64_t offset = walkPrefix(s.bitOffsets);

    if (duplicate_validate) {
        // Selective-EDDI: the walk above is the one serial stage whose
        // output (the offset table) every later tile read trusts
        // blindly. Re-run it into an independent buffer and compare;
        // any disagreement — an SEU in the accumulator, the table, or
        // the stream bytes between walks — is a detected error instead
        // of a silently shifted decode.
        if (s.prefixFaultHook)
            s.prefixFaultHook(s.bitOffsets);
        const std::uint64_t dup_offset = walkPrefix(s.dupOffsets);
        if (dup_offset != offset || s.dupOffsets != s.bitOffsets)
            throw std::runtime_error(
                "BdCodec::decode: duplicated validate pass disagrees "
                "(prefix fault detected)");
    }

    // The stream must be exactly the header + payload padded to a byte
    // boundary with zero bits: a longer buffer is trailing garbage, and
    // nonzero padding is garbage smuggled below the byte count.
    const std::uint64_t total_bits = kHeaderBits + offset;
    if ((total_bits + 7) / 8 != stream.size())
        throw std::runtime_error(
            "BdCodec::decode: stream length disagrees with payload "
            "(trailing garbage)");
    if (total_bits % 8 != 0) {
        const unsigned pad = 8 - static_cast<unsigned>(total_bits % 8);
        if (stream.back() & ((1u << pad) - 1u))
            throw std::runtime_error(
                "BdCodec::decode: nonzero padding bits");
    }

    // Pass 2: tile decode, parallel over the validated offsets. Tiles
    // are disjoint pixel ranges, so the output is byte-identical for
    // any participant count. Reallocate only on geometry change; every
    // byte of the image is overwritten below.
    if (out.width() != static_cast<int>(w) ||
        out.height() != static_cast<int>(h))
        out = ImageU8(static_cast<int>(w), static_cast<int>(h));
    const uint8_t *data = stream.data();
    const std::size_t size = stream.size();
    auto decodeRange = [&](std::size_t begin, std::size_t end, int) {
        decodeTileRangeInto(data, size, s.tiles, begin, end,
                            s.bitOffsets[begin], out);
    };
    const bool parallel =
        pool != nullptr && participants > 1 && n_tiles > 1;
    if (parallel)
        pool->parallelFor(n_tiles, 16, participants, decodeRange);
    else
        decodeRange(0, n_tiles, 0);
}

BdFrameStats
BdCodec::analyze(const ImageU8 &img) const
{
    BdFrameStats stats;
    stats.pixels = img.pixelCount();
    stats.headerBits = kMagicBits + 2 * kDimBits + kTileBits;
    for (const TileRect &rect :
         tileGrid(img.width(), img.height(), tileSize_)) {
        for (int c = 0; c < 3; ++c) {
            const BdChannelStats s = analyzeTileChannel(img, rect, c);
            stats.baseBits += s.baseBits;
            stats.metaBits += s.metaBits;
            stats.deltaBits += s.deltaBits;
        }
    }
    return stats;
}

} // namespace pce
