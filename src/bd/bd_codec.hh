/**
 * @file
 * Base+Delta (BD) framebuffer codec (paper Sec. 2.2, baseline of Sec. 5.3).
 *
 * BD compresses each color channel of each pixel tile independently: a
 * tile stores one 8-bit base value plus a fixed-width unsigned delta per
 * pixel. The paper follows Zhang et al. [76]; since that bitstream is not
 * fully specified, we define a concrete, self-describing format with the
 * same structure and cost model as the paper's Eq. 5-6:
 *
 *   per tile, per channel:
 *     [4-bit delta width w][8-bit base = tile minimum][N x w-bit deltas]
 *
 * where N is the number of pixels in the tile and
 * w = ceil(log2(max - min + 1)). The paper prints floor(...) in Eq. 6,
 * which under-allocates for non-power-of-two ranges; ceil is what a
 * lossless coder needs (see DESIGN.md). When w = 0 (flat tile) no delta
 * bits are stored at all — this is what makes the perceptual adjustment's
 * "case 2" tiles (Fig. 6b) so cheap.
 *
 * A small frame header records image dimensions and tile size so the
 * decoder is self-contained. The codec is numerically lossless; the
 * perceptual encoder (src/core) changes only its *input*, never this
 * codec (paper Sec. 3.4, "Remarks on Decoding").
 *
 * ## Ownership and reuse contracts
 *
 * The `*Into` entry points (encodeInto / decodeInto) write into
 * caller-owned outputs and accept optional caller-owned scratch
 * (BdEncodeScratch / BdDecodeScratch). The codec never retains a
 * pointer past the call: outputs and scratch belong to the caller
 * before and after, and one scratch may serve any number of codecs
 * (its geometry-keyed caches re-key themselves). Reusing the same
 * output + scratch across a stream of same-geometry frames makes the
 * steady state allocation-free — buffers grow once, then only their
 * contents change (tests pin the data pointers). A scratch must not
 * be used from two concurrent calls; distinct scratches make
 * concurrent encodes/decodes on one codec safe (BdCodec itself is
 * immutable after construction). The convenience wrappers
 * encode()/decode() allocate per call and are for one-shot use.
 */

#ifndef PCE_BD_BD_CODEC_HH
#define PCE_BD_BD_CODEC_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitstream.hh"
#include "image/image.hh"

namespace pce {

class ThreadPool;

/**
 * Default cap on the pixel count decodeInto will materialize. BD
 * compresses flat content so well that a ~300 KB stream can honestly
 * describe a flat 0xFFFF x 0xFFFF frame (~13 GB decoded) — a
 * decompression bomb on a service decoding untrusted streams. 2^26
 * pixels (~192 MB of sRGB) covers stereo 8K and every paper workload
 * with headroom; callers that really decode larger frames pass their
 * own limit explicitly.
 */
inline constexpr std::uint64_t kBdDefaultMaxDecodePixels =
    std::uint64_t(1) << 26;

/**
 * Field widths of the per-tile-channel BD record
 * ([width][base][deltas...]), shared by the encoder/decoder, the
 * analyze paths, and the SIMD cost kernels (src/simd) so the
 * axis-selection cost model can never silently diverge from the
 * emitted stream.
 */
inline constexpr unsigned kBdWidthFieldBits = 4;
inline constexpr unsigned kBdBaseBits = 8;

/**
 * Bit length of the self-describing stream header
 * ([24-bit magic][16-bit width][16-bit height][8-bit tile size]) — one
 * byte-aligned 8-byte block. Payload bit offsets (BdEncodeScratch /
 * BdDecodeScratch::bitOffsets, the tile-range entry points below, and
 * the network packetizer in src/net) are all relative to the end of
 * this header.
 */
inline constexpr unsigned kBdStreamHeaderBits = 64;

/**
 * Serialize the 8-byte BD stream header for the given geometry into
 * @p out8 (exactly kBdStreamHeaderBits / 8 bytes). Lets a receiver
 * that knows the frame geometry from side-channel metadata (the
 * delivery tier's manifest packet) rebuild the header bit-exactly
 * without having received the stream's first packet.
 * @throws std::invalid_argument when the geometry does not fit the
 *         header fields (dimensions over 16 bits, tile outside 1..255).
 */
void bdWriteStreamHeader(std::uint8_t *out8, int width, int height,
                         int tile_size);

/** Per-tile, per-channel bit accounting (drives Fig. 11). */
struct BdChannelStats
{
    unsigned deltaWidth = 0;  ///< bits per delta (w)
    std::size_t baseBits = 0;
    std::size_t metaBits = 0;
    std::size_t deltaBits = 0;

    std::size_t totalBits() const
    { return baseBits + metaBits + deltaBits; }
};

/** Aggregated accounting for a whole frame. */
struct BdFrameStats
{
    std::size_t pixels = 0;
    std::size_t headerBits = 0;
    std::size_t baseBits = 0;
    std::size_t metaBits = 0;
    std::size_t deltaBits = 0;

    std::size_t totalBits() const
    { return headerBits + baseBits + metaBits + deltaBits; }

    /** Average bits per pixel (all three channels). */
    double bitsPerPixel() const
    {
        return pixels == 0 ? 0.0
                           : static_cast<double>(totalBits()) /
                                 static_cast<double>(pixels);
    }

    /** Bandwidth reduction vs. uncompressed 24bpp, in percent. */
    double reductionVsRawPercent() const
    { return 100.0 * (1.0 - bitsPerPixel() / 24.0); }
};

/**
 * Reusable working storage of BdCodec::encodeInto. A caller that keeps
 * one scratch across a stream of frames (EncodedFrame owns one) makes
 * the encode allocation-free in the steady state: the tile grid, the
 * per-tile stats, the prefix offsets, and the per-chunk bit buffers all
 * grow once and are reused.
 */
struct BdEncodeScratch
{
    /** Cached tileGrid() result, keyed by the geometry below. */
    std::vector<TileRect> tiles;
    int tilesWidth = -1;
    int tilesHeight = -1;
    int tilesSize = -1;

    /** Per tile-channel base (minimum) and delta width, 3 per tile. */
    std::vector<uint8_t> base;
    std::vector<uint8_t> width;
    /** Exclusive prefix of per-tile payload bits (tiles + 1 entries). */
    std::vector<std::size_t> bitOffsets;
    /** Independent per-chunk emitters of the parallel encode. */
    std::vector<BitWriter> chunks;
};

/**
 * Reusable working storage of BdCodec::decodeInto, mirroring
 * BdEncodeScratch: the tile grid and the per-tile bit-offset prefix
 * grow once and are reused, so steady-state decode of a frame stream
 * allocates nothing.
 */
struct BdDecodeScratch
{
    /** Cached tileGrid() result, keyed by the geometry below. */
    std::vector<TileRect> tiles;
    int tilesWidth = -1;
    int tilesHeight = -1;
    int tilesSize = -1;

    /** Exclusive prefix of per-tile payload bits (tiles + 1 entries). */
    std::vector<std::size_t> bitOffsets;

    /**
     * Second prefix filled by the duplicated validate pass
     * (decodeInto with duplicate_validate = true); compared against
     * bitOffsets before any tile is decoded.
     */
    std::vector<std::size_t> dupOffsets;

    /**
     * Fault-injection hook (src/fault): when duplicate validation is
     * on, called with the *first* walk's offsets after that walk
     * completes and before the duplicate walk runs, modeling an SEU in
     * the prefix table between computation and use. Never invoked on
     * the normal path (duplicate_validate = false leaves it untouched).
     */
    std::function<void(std::vector<std::size_t> &)> prefixFaultHook;
};

/** Base+Delta encoder/decoder with a configurable square tile size. */
class BdCodec
{
  public:
    /** @param tile_size Edge of the square tile (paper default 4). */
    explicit BdCodec(int tile_size = 4);

    int tileSize() const { return tileSize_; }

    /**
     * Encode a frame to a self-describing BD bitstream.
     *
     * @param stats_out Optional bit accounting, filled in the same
     *        pass; identical to a separate analyze() call (tests
     *        assert this) without re-traversing the frame.
     */
    std::vector<uint8_t> encode(const ImageU8 &img,
                                BdFrameStats *stats_out = nullptr) const;

    /**
     * encode() into a caller-owned stream with optional parallelism.
     *
     * Three passes: (1) per-tile-channel min/width stats, parallel over
     * tiles; (2) a serial prefix pass turning the stats into exact
     * per-tile bit offsets (and the frame's total size, reserved up
     * front); (3) emission — tiles are split into contiguous chunks,
     * workers emit each chunk's bitstream into an independent
     * exactly-reserved BitWriter, and a splice pass concatenates them
     * in tile order. The output is byte-identical to the serial
     * encoder for any thread count and any chunking (the spliced
     * stream is the per-tile streams in tile order either way; tests
     * sweep thread counts and assert equality).
     *
     * @param out Overwritten with the stream; its capacity is reused.
     * @param scratch Optional reusable working storage (see
     *        BdEncodeScratch); nullptr uses call-local buffers.
     * @param pool Optional worker pool; nullptr encodes serially.
     * @param participants Parallel slots when @p pool is given
     *        (clamped to the pool size, 0/1 = serial).
     */
    void encodeInto(const ImageU8 &img, BdFrameStats *stats_out,
                    std::vector<uint8_t> &out,
                    BdEncodeScratch *scratch = nullptr,
                    ThreadPool *pool = nullptr,
                    int participants = 1) const;

    /**
     * Decode a BD bitstream produced by encode(). Thin wrapper over
     * decodeInto, so every caller gets the hardened validation.
     */
    static ImageU8 decode(const std::vector<uint8_t> &stream);

    /**
     * decode() into a caller-owned image with optional parallelism —
     * the hardened, allocation-free sibling of encodeInto.
     *
     * Two passes. Pass 1 (serial) validates the stream *before any
     * pixel is touched or any frame-sized buffer allocated*: the full
     * header (magic, non-zero 16-bit dimensions, non-zero tile size,
     * with all tile/pixel arithmetic in 64 bits so adversarial
     * 0xFFFF x 0xFFFF headers cannot overflow or trigger a huge
     * allocation), then every per-tile-channel record — a delta width
     * field above 8 bits, a delta payload running past the end of the
     * stream (truncated mid-tile), a stream whose byte count disagrees
     * with the computed total bit length (trailing garbage), or nonzero
     * padding bits in the final byte all throw std::runtime_error. The
     * walk only reads the 12-bit meta fields and seeks across delta
     * blocks, producing the exclusive prefix of per-tile bit offsets —
     * the exact dual of the encoder's prefix pass. Pass 2 decodes tiles
     * in parallel on the pool, each chunk's reader seeked to its tile's
     * offset, writing rows directly into @p out.
     *
     * The output is byte-identical to the serial decoder for any
     * participant count (tiles are disjoint), and a caller that reuses
     * @p out and @p scratch across same-geometry frames allocates
     * nothing in the steady state (tests pin the data pointers).
     *
     * @param out Overwritten with the decoded frame; reallocated only
     *        when the stream's dimensions differ from its own.
     * @param scratch Optional reusable working storage; nullptr uses
     *        call-local buffers.
     * @param pool Optional worker pool; nullptr decodes serially.
     * @param participants Parallel slots when @p pool is given
     *        (clamped to the pool size, 0/1 = serial).
     * @param max_pixels Decompression-bomb guard: a header claiming
     *        more pixels than this throws before anything is
     *        allocated, even when the stream is otherwise well-formed
     *        (flat tiles make multi-GB frames honestly encodable in a
     *        few hundred KB).
     * @param duplicate_validate Selective-EDDI hardening (ASPIS-style,
     *        see docs/FAULTS.md): run the serial validate+prefix pass
     *        twice into independent buffers and compare before
     *        decoding any tile. The walk is the one serial,
     *        unchecked-by-construction stage of the decode — a bit
     *        flip in its accumulator or offset table silently shifts
     *        every later tile's read position; duplication converts
     *        that into a detected error at ~2x walk cost (the walk is
     *        a small fraction of total decode time).
     * @throws std::runtime_error on any malformed or over-cap stream,
     *         before @p out is modified, and on duplicate-validate
     *         disagreement.
     */
    static void decodeInto(
        const std::vector<uint8_t> &stream, ImageU8 &out,
        BdDecodeScratch *scratch = nullptr, ThreadPool *pool = nullptr,
        int participants = 1,
        std::uint64_t max_pixels = kBdDefaultMaxDecodePixels,
        bool duplicate_validate = false);

    /**
     * Walk the per-tile-channel records of tiles [tile_begin, tile_end)
     * starting at payload bit @p payload_bit_begin, validating each
     * record against the buffer bounds exactly as decodeInto's pass 1
     * does (width field above 8 bits or a record running past the end
     * of @p data throws), and return the exclusive end payload bit
     * offset. This is the tile-range dual of the full-stream validate
     * walk: a receiver holding only a *slice* of a frame's stream (the
     * delivery tier's packets) can validate and locate its own tile
     * range without the rest of the frame, provided the slice's bytes
     * sit at their original positions in @p data.
     *
     * @param data Stream buffer (header at byte 0); bytes outside the
     *        walked range are never read.
     * @param tiles Full tile grid of the frame (tileGrid order).
     * @param offsets_out Optional array of tile_end - tile_begin + 1
     *        entries, filled with the exclusive prefix of payload bit
     *        offsets (offsets_out[0] == payload_bit_begin).
     * @throws std::runtime_error on a malformed or out-of-bounds record.
     */
    static std::uint64_t walkTileRange(const std::uint8_t *data,
                                       std::size_t size_bytes,
                                       const std::vector<TileRect> &tiles,
                                       std::size_t tile_begin,
                                       std::size_t tile_end,
                                       std::uint64_t payload_bit_begin,
                                       std::size_t *offsets_out = nullptr);

    /**
     * Decode tiles [tile_begin, tile_end) of a stream buffer into
     * @p out, seeking straight to @p payload_bit_begin — the prefix
     * seek path of decodeInto's pass 2, exposed for partial-frame
     * decode. The caller must have validated the range first (
     * walkTileRange) and sized @p out to the frame geometry; bytes of
     * @p data outside the range's bit span are never read, so a
     * partially reassembled frame buffer with holes decodes every
     * *present* tile range correctly regardless of what the holes
     * contain.
     */
    static void decodeTileRangeInto(const std::uint8_t *data,
                                    std::size_t size_bytes,
                                    const std::vector<TileRect> &tiles,
                                    std::size_t tile_begin,
                                    std::size_t tile_end,
                                    std::uint64_t payload_bit_begin,
                                    ImageU8 &out);

    /**
     * Bit accounting without materializing a stream. Exactly matches
     * the bit count of encode() (tests assert this).
     */
    BdFrameStats analyze(const ImageU8 &img) const;

    /**
     * Per-channel stats of a single tile of @p img.
     * @param rect Tile rectangle, clamped to the image by the caller.
     * @param channel 0=R, 1=G, 2=B.
     */
    static BdChannelStats analyzeTileChannel(const ImageU8 &img,
                                             const TileRect &rect,
                                             int channel);

  private:
    int tileSize_;
};

/** Number of delta bits for a [min, max] range: ceil(log2(range+1)). */
unsigned bdDeltaWidth(uint8_t min_value, uint8_t max_value);

/**
 * BD bit cost of one tile given its pixels' already-quantized sRGB
 * codes, @p n pixels of 3 interleaved channel bytes: per channel,
 * meta(4) + base(8) + n * ceil(log2(range+1)) bits. This is the tile
 * adjuster's axis-selection fast path — it quantizes each candidate
 * tile exactly once and feeds the codes straight in, instead of
 * re-deriving sRGB per channel from linear RGB.
 */
std::size_t bdTileBitsFromCodes(const uint8_t *codes, std::size_t n);

} // namespace pce

#endif // PCE_BD_BD_CODEC_HH
