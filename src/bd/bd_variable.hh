/**
 * @file
 * Variable bit-length Base+Delta codec (paper Sec. 3.1, footnote 1).
 *
 * The paper assumes one delta width per tile ("It is possible, but
 * uncommon, to vary the number of bits to encode the deltas in a tile
 * with more hardware overhead... We consider variable bit-length an
 * orthogonal idea") and leaves it as an extension. This codec implements
 * that extension so the repository can quantify the trade:
 *
 *   per tile, per channel: [1-bit mode]
 *     mode 0 (uniform):  [4-bit w][8-bit base][N x w deltas]
 *     mode 1 (per-row):  [8-bit base][per row: 4-bit w_r][w_r deltas]
 *
 * The base is the tile minimum in both modes; mode 1 lets rows that are
 * locally flat spend zero delta bits while a single busy row pays for
 * itself only. The encoder picks the cheaper mode per channel, so the
 * stream costs at most one extra bit per tile-channel over BdCodec.
 */

#ifndef PCE_BD_BD_VARIABLE_HH
#define PCE_BD_BD_VARIABLE_HH

#include <cstdint>
#include <vector>

#include "bd/bd_codec.hh"
#include "image/image.hh"

namespace pce {

/** Frame accounting for the variable codec. */
struct BdVariableFrameStats
{
    std::size_t pixels = 0;
    std::size_t totalBits = 0;
    std::size_t uniformChannels = 0;  ///< tile-channels using mode 0
    std::size_t perRowChannels = 0;   ///< tile-channels using mode 1

    double bitsPerPixel() const
    {
        return pixels == 0 ? 0.0
                           : static_cast<double>(totalBits) /
                                 static_cast<double>(pixels);
    }
};

/** The footnote-1 extension codec. */
class BdVariableCodec
{
  public:
    explicit BdVariableCodec(int tile_size = 4);

    int tileSize() const { return tileSize_; }

    /** Encode to a self-describing stream (distinct magic from BD). */
    std::vector<uint8_t> encode(const ImageU8 &img) const;

    /**
     * Decode a stream produced by encode(). Thin wrapper over
     * decodeInto, so every caller gets the hardened validation.
     */
    static ImageU8 decode(const std::vector<uint8_t> &stream);

    /**
     * decode() into a caller-owned image — the hardened,
     * allocation-free sibling, with the same walk-validate-then-decode
     * structure as BdCodec::decodeInto.
     *
     * Pass 1 (serial) validates the stream before any pixel is touched
     * or any frame-sized buffer allocated: header sanity with all
     * tile/pixel arithmetic in 64 bits, the decompression-bomb pixel
     * cap, then a walk over every per-tile-channel record reading only
     * the mode bits and 4-bit width fields (delta blocks are stepped
     * over arithmetically). A width field above 8 bits, a record
     * running past the end of the stream (truncated mid-tile), a byte
     * count that disagrees with the computed total bit length
     * (trailing garbage), or nonzero padding bits all throw
     * std::runtime_error — the old decoder zero-filled truncations and
     * accepted trailing bytes. The walk yields the exclusive prefix of
     * per-tile bit offsets; pass 2 decodes tiles in parallel on the
     * pool from those offsets, byte-identical to the serial decode for
     * any participant count.
     *
     * @param out Overwritten with the decoded frame; reallocated only
     *        when the stream's dimensions differ from its own.
     * @param scratch Optional reusable working storage (shared
     *        BdDecodeScratch type; a caller may reuse one across both
     *        codecs, the grid cache re-keys itself); nullptr uses
     *        call-local buffers.
     * @param pool Optional worker pool; nullptr decodes serially.
     * @param participants Parallel slots when @p pool is given
     *        (clamped to the pool size, 0/1 = serial).
     * @param max_pixels Decompression-bomb guard, as in
     *        BdCodec::decodeInto.
     * @throws std::runtime_error on any malformed or over-cap stream,
     *         before @p out is modified.
     */
    static void decodeInto(
        const std::vector<uint8_t> &stream, ImageU8 &out,
        BdDecodeScratch *scratch = nullptr, ThreadPool *pool = nullptr,
        int participants = 1,
        std::uint64_t max_pixels = kBdDefaultMaxDecodePixels);

    /** Bit accounting; matches encode()'s length to byte padding. */
    BdVariableFrameStats analyze(const ImageU8 &img) const;

  private:
    int tileSize_;
};

} // namespace pce

#endif // PCE_BD_BD_VARIABLE_HH
