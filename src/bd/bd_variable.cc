#include "bd/bd_variable.hh"

#include <algorithm>
#include <stdexcept>

#include "common/bitstream.hh"

namespace pce {

namespace {

constexpr uint32_t kMagic = 0x424456;  // "BDV"
constexpr unsigned kMagicBits = 24;
constexpr unsigned kDimBits = 16;
constexpr unsigned kTileBits = 8;
constexpr unsigned kWidthFieldBits = kBdWidthFieldBits;
constexpr unsigned kBaseBits = kBdBaseBits;

/** Channel minimum over a tile. */
uint8_t
tileMin(const ImageU8 &img, const TileRect &rect, int c)
{
    uint8_t lo = 255;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
            lo = std::min(lo, img.channel(x, y, c));
    return lo;
}

/** Uniform-mode cost in bits (excluding the mode bit). */
std::size_t
uniformCost(const ImageU8 &img, const TileRect &rect, int c,
            unsigned &width_out)
{
    uint8_t lo = 255;
    uint8_t hi = 0;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
            const uint8_t v = img.channel(x, y, c);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    width_out = bdDeltaWidth(lo, hi);
    return kWidthFieldBits + kBaseBits +
           static_cast<std::size_t>(rect.pixelCount()) * width_out;
}

/** Per-row-mode cost in bits (excluding the mode bit). */
std::size_t
perRowCost(const ImageU8 &img, const TileRect &rect, int c,
           std::vector<unsigned> &row_widths_out)
{
    const uint8_t base = tileMin(img, rect, c);
    row_widths_out.clear();
    std::size_t bits = kBaseBits;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
        uint8_t hi = 0;
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
            hi = std::max(hi,
                          static_cast<uint8_t>(
                              img.channel(x, y, c) - base));
        const unsigned w = bdDeltaWidth(0, hi);
        row_widths_out.push_back(w);
        bits += kWidthFieldBits + static_cast<std::size_t>(rect.w) * w;
    }
    return bits;
}

} // namespace

BdVariableCodec::BdVariableCodec(int tile_size) : tileSize_(tile_size)
{
    if (tile_size < 1 || tile_size > 255)
        throw std::invalid_argument(
            "BdVariableCodec: tile size out of range");
}

std::vector<uint8_t>
BdVariableCodec::encode(const ImageU8 &img) const
{
    const auto tiles =
        tileGrid(img.width(), img.height(), tileSize_);

    BitWriter bw;
    // One upfront worst-case reserve (every channel in 8-bit uniform
    // mode) so putBits never grows mid-stream — a per-channel exact
    // reserve would defeat the vector's geometric growth and go
    // quadratic (same audit as the parallel BD tile emitters, which
    // know their chunk sizes exactly from the prefix pass).
    bw.reserve(kMagicBits + 2 * kDimBits + kTileBits +
               tiles.size() * 3 * (1 + kWidthFieldBits + kBaseBits) +
               img.pixelCount() * 3 * 8);
    bw.putBits(kMagic, kMagicBits);
    bw.putBits(static_cast<uint32_t>(img.width()), kDimBits);
    bw.putBits(static_cast<uint32_t>(img.height()), kDimBits);
    bw.putBits(static_cast<uint32_t>(tileSize_), kTileBits);

    std::vector<unsigned> row_widths;
    for (const TileRect &rect : tiles) {
        for (int c = 0; c < 3; ++c) {
            unsigned uniform_width = 0;
            const std::size_t cost_uniform =
                uniformCost(img, rect, c, uniform_width);
            const std::size_t cost_rows =
                perRowCost(img, rect, c, row_widths);
            const uint8_t base = tileMin(img, rect, c);

            if (cost_uniform <= cost_rows) {
                bw.putBits(0, 1);
                bw.putBits(uniform_width, kWidthFieldBits);
                bw.putBits(base, kBaseBits);
                if (uniform_width > 0) {
                    for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
                        for (int x = rect.x0; x < rect.x0 + rect.w;
                             ++x)
                            bw.putBits(
                                static_cast<unsigned>(
                                    img.channel(x, y, c)) -
                                    base,
                                uniform_width);
                }
            } else {
                bw.putBits(1, 1);
                bw.putBits(base, kBaseBits);
                for (int r = 0; r < rect.h; ++r) {
                    const int y = rect.y0 + r;
                    const unsigned w = row_widths[r];
                    bw.putBits(w, kWidthFieldBits);
                    if (w == 0)
                        continue;
                    for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
                        bw.putBits(static_cast<unsigned>(
                                       img.channel(x, y, c)) -
                                       base,
                                   w);
                }
            }
        }
    }
    bw.alignToByte();
    return bw.take();
}

ImageU8
BdVariableCodec::decode(const std::vector<uint8_t> &stream)
{
    BitReader br(stream);
    if (br.getBits(kMagicBits) != kMagic)
        throw std::runtime_error("BdVariableCodec::decode: bad magic");
    const int w = static_cast<int>(br.getBits(kDimBits));
    const int h = static_cast<int>(br.getBits(kDimBits));
    const int tile = static_cast<int>(br.getBits(kTileBits));
    if (w <= 0 || h <= 0 || tile <= 0)
        throw std::runtime_error("BdVariableCodec::decode: bad header");

    // Dimension sanity before allocating (see BdCodec::decode).
    const std::size_t tiles =
        (static_cast<std::size_t>(w) + tile - 1) / tile *
        ((static_cast<std::size_t>(h) + tile - 1) / tile);
    if (stream.size() * 8 < tiles * 3 * (1 + kBaseBits))
        throw std::runtime_error(
            "BdVariableCodec::decode: stream too short for header");

    ImageU8 img(w, h);
    for (const TileRect &rect : tileGrid(w, h, tile)) {
        for (int c = 0; c < 3; ++c) {
            const unsigned mode = br.getBits(1);
            if (mode == 0) {
                const unsigned width = br.getBits(kWidthFieldBits);
                const unsigned base = br.getBits(kBaseBits);
                for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
                    for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
                        const unsigned delta =
                            width ? br.getBits(width) : 0u;
                        img.setChannel(
                            x, y, c,
                            static_cast<uint8_t>(base + delta));
                    }
            } else {
                const unsigned base = br.getBits(kBaseBits);
                for (int r = 0; r < rect.h; ++r) {
                    const int y = rect.y0 + r;
                    const unsigned width = br.getBits(kWidthFieldBits);
                    for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
                        const unsigned delta =
                            width ? br.getBits(width) : 0u;
                        img.setChannel(
                            x, y, c,
                            static_cast<uint8_t>(base + delta));
                    }
                }
            }
        }
    }
    if (br.exhausted())
        throw std::runtime_error("BdVariableCodec::decode: truncated");
    return img;
}

BdVariableFrameStats
BdVariableCodec::analyze(const ImageU8 &img) const
{
    BdVariableFrameStats stats;
    stats.pixels = img.pixelCount();
    stats.totalBits = kMagicBits + 2 * kDimBits + kTileBits;
    std::vector<unsigned> row_widths;
    for (const TileRect &rect :
         tileGrid(img.width(), img.height(), tileSize_)) {
        for (int c = 0; c < 3; ++c) {
            unsigned uniform_width = 0;
            const std::size_t cost_uniform =
                uniformCost(img, rect, c, uniform_width);
            const std::size_t cost_rows =
                perRowCost(img, rect, c, row_widths);
            if (cost_uniform <= cost_rows) {
                stats.totalBits += 1 + cost_uniform;
                ++stats.uniformChannels;
            } else {
                stats.totalBits += 1 + cost_rows;
                ++stats.perRowChannels;
            }
        }
    }
    return stats;
}

} // namespace pce
