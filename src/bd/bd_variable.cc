#include "bd/bd_variable.hh"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "common/bitstream.hh"
#include "common/thread_pool.hh"

namespace pce {

namespace {

constexpr uint32_t kMagic = 0x424456;  // "BDV"
constexpr unsigned kMagicBits = 24;
constexpr unsigned kDimBits = 16;
constexpr unsigned kTileBits = 8;
constexpr unsigned kWidthFieldBits = kBdWidthFieldBits;
constexpr unsigned kBaseBits = kBdBaseBits;

/** Channel minimum over a tile. */
uint8_t
tileMin(const ImageU8 &img, const TileRect &rect, int c)
{
    uint8_t lo = 255;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
            lo = std::min(lo, img.channel(x, y, c));
    return lo;
}

/** Uniform-mode cost in bits (excluding the mode bit). */
std::size_t
uniformCost(const ImageU8 &img, const TileRect &rect, int c,
            unsigned &width_out)
{
    uint8_t lo = 255;
    uint8_t hi = 0;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x) {
            const uint8_t v = img.channel(x, y, c);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
    }
    width_out = bdDeltaWidth(lo, hi);
    return kWidthFieldBits + kBaseBits +
           static_cast<std::size_t>(rect.pixelCount()) * width_out;
}

/** Per-row-mode cost in bits (excluding the mode bit). */
std::size_t
perRowCost(const ImageU8 &img, const TileRect &rect, int c,
           std::vector<unsigned> &row_widths_out)
{
    const uint8_t base = tileMin(img, rect, c);
    row_widths_out.clear();
    std::size_t bits = kBaseBits;
    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
        uint8_t hi = 0;
        for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
            hi = std::max(hi,
                          static_cast<uint8_t>(
                              img.channel(x, y, c) - base));
        const unsigned w = bdDeltaWidth(0, hi);
        row_widths_out.push_back(w);
        bits += kWidthFieldBits + static_cast<std::size_t>(rect.w) * w;
    }
    return bits;
}

} // namespace

BdVariableCodec::BdVariableCodec(int tile_size) : tileSize_(tile_size)
{
    if (tile_size < 1 || tile_size > 255)
        throw std::invalid_argument(
            "BdVariableCodec: tile size out of range");
}

std::vector<uint8_t>
BdVariableCodec::encode(const ImageU8 &img) const
{
    const auto tiles =
        tileGrid(img.width(), img.height(), tileSize_);

    BitWriter bw;
    // One upfront worst-case reserve (every channel in 8-bit uniform
    // mode) so putBits never grows mid-stream — a per-channel exact
    // reserve would defeat the vector's geometric growth and go
    // quadratic (same audit as the parallel BD tile emitters, which
    // know their chunk sizes exactly from the prefix pass).
    bw.reserve(kMagicBits + 2 * kDimBits + kTileBits +
               tiles.size() * 3 * (1 + kWidthFieldBits + kBaseBits) +
               img.pixelCount() * 3 * 8);
    bw.putBits(kMagic, kMagicBits);
    bw.putBits(static_cast<uint32_t>(img.width()), kDimBits);
    bw.putBits(static_cast<uint32_t>(img.height()), kDimBits);
    bw.putBits(static_cast<uint32_t>(tileSize_), kTileBits);

    std::vector<unsigned> row_widths;
    for (const TileRect &rect : tiles) {
        for (int c = 0; c < 3; ++c) {
            unsigned uniform_width = 0;
            const std::size_t cost_uniform =
                uniformCost(img, rect, c, uniform_width);
            const std::size_t cost_rows =
                perRowCost(img, rect, c, row_widths);
            const uint8_t base = tileMin(img, rect, c);

            if (cost_uniform <= cost_rows) {
                bw.putBits(0, 1);
                bw.putBits(uniform_width, kWidthFieldBits);
                bw.putBits(base, kBaseBits);
                if (uniform_width > 0) {
                    for (int y = rect.y0; y < rect.y0 + rect.h; ++y)
                        for (int x = rect.x0; x < rect.x0 + rect.w;
                             ++x)
                            bw.putBits(
                                static_cast<unsigned>(
                                    img.channel(x, y, c)) -
                                    base,
                                uniform_width);
                }
            } else {
                bw.putBits(1, 1);
                bw.putBits(base, kBaseBits);
                for (int r = 0; r < rect.h; ++r) {
                    const int y = rect.y0 + r;
                    const unsigned w = row_widths[r];
                    bw.putBits(w, kWidthFieldBits);
                    if (w == 0)
                        continue;
                    for (int x = rect.x0; x < rect.x0 + rect.w; ++x)
                        bw.putBits(static_cast<unsigned>(
                                       img.channel(x, y, c)) -
                                       base,
                                   w);
                }
            }
        }
    }
    bw.alignToByte();
    return bw.take();
}

ImageU8
BdVariableCodec::decode(const std::vector<uint8_t> &stream)
{
    ImageU8 img;
    decodeInto(stream, img);
    return img;
}

void
BdVariableCodec::decodeInto(const std::vector<uint8_t> &stream,
                            ImageU8 &out, BdDecodeScratch *scratch,
                            ThreadPool *pool, int participants,
                            std::uint64_t max_pixels)
{
    constexpr std::size_t kHeaderBits =
        kMagicBits + 2 * kDimBits + kTileBits;
    const std::uint64_t stream_bits =
        static_cast<std::uint64_t>(stream.size()) * 8;
    if (stream_bits < kHeaderBits)
        throw std::runtime_error(
            "BdVariableCodec::decode: stream shorter than header");
    BitReader hdr(stream);
    if (hdr.getBits(kMagicBits) != kMagic)
        throw std::runtime_error("BdVariableCodec::decode: bad magic");
    const uint32_t w = hdr.getBits(kDimBits);
    const uint32_t h = hdr.getBits(kDimBits);
    const uint32_t tile = hdr.getBits(kTileBits);
    if (w == 0 || h == 0 || tile == 0)
        throw std::runtime_error("BdVariableCodec::decode: bad header");
    // Decompression-bomb guard (see BdCodec::decodeInto): flat content
    // honestly encodes huge frames in tiny streams, so only this cap
    // bounds the output size.
    if (static_cast<std::uint64_t>(w) * h > max_pixels)
        throw std::runtime_error(
            "BdVariableCodec::decode: frame exceeds the decode pixel "
            "cap");

    // 64-bit tile arithmetic: an adversarial 0xFFFF x 0xFFFF header
    // must be *counted* correctly so the floor check rejects it before
    // any allocation scales with the claimed dimensions. The cheapest
    // well-formed tile-channel is 1 mode + 4 width + 8 base bits in
    // either mode (mode 1 pays >= one 4-bit row width), so a stream
    // below that floor cannot describe the claimed frame — bounding
    // the walk and the offset arrays by the actual stream size.
    const std::uint64_t tiles_x = (w + tile - 1) / tile;
    const std::uint64_t tiles_y = (h + tile - 1) / tile;
    const std::uint64_t n_tiles64 = tiles_x * tiles_y;
    if (n_tiles64 * 3 * (1 + kWidthFieldBits + kBaseBits) >
        stream_bits - kHeaderBits)
        throw std::runtime_error(
            "BdVariableCodec::decode: stream too short for header "
            "dimensions");

    BdDecodeScratch local;
    BdDecodeScratch &s = scratch ? *scratch : local;
    if (s.tilesWidth != static_cast<int>(w) ||
        s.tilesHeight != static_cast<int>(h) ||
        s.tilesSize != static_cast<int>(tile)) {
        s.tiles = tileGrid(static_cast<int>(w), static_cast<int>(h),
                           static_cast<int>(tile));
        s.tilesWidth = static_cast<int>(w);
        s.tilesHeight = static_cast<int>(h);
        s.tilesSize = static_cast<int>(tile);
    }
    const std::size_t n_tiles = s.tiles.size();

    // Pass 1 (serial): validate every per-tile-channel record and turn
    // the mode/width fields into the exclusive prefix of per-tile
    // payload bit offsets. Only the meta fields are read; delta blocks
    // are stepped over arithmetically. Unlike uniform BD the meta is
    // mode-dependent (per-row widths), so the walk follows the same
    // branch structure as the decoder below.
    s.bitOffsets.resize(n_tiles + 1);
    std::uint64_t offset = 0;  // payload bits before the current field
    const auto readField = [&](unsigned bits) -> unsigned {
        const std::uint64_t pos = kHeaderBits + offset;
        if (pos + bits > stream_bits)
            throw std::runtime_error(
                "BdVariableCodec::decode: stream truncated mid-tile");
        hdr.seek(static_cast<std::size_t>(pos));
        offset += bits;
        return hdr.getBits(bits);
    };
    for (std::size_t t = 0; t < n_tiles; ++t) {
        s.bitOffsets[t] = static_cast<std::size_t>(offset);
        const TileRect &rect = s.tiles[t];
        for (int c = 0; c < 3; ++c) {
            const unsigned mode = readField(1);
            if (mode == 0) {
                const unsigned width = readField(kWidthFieldBits);
                if (width > 8)
                    throw std::runtime_error(
                        "BdVariableCodec::decode: delta width field "
                        "exceeds 8 bits");
                offset += kBaseBits +
                          static_cast<std::uint64_t>(
                              rect.pixelCount()) *
                              width;
            } else {
                offset += kBaseBits;
                for (int r = 0; r < rect.h; ++r) {
                    const unsigned width = readField(kWidthFieldBits);
                    if (width > 8)
                        throw std::runtime_error(
                            "BdVariableCodec::decode: row width field "
                            "exceeds 8 bits");
                    offset += static_cast<std::uint64_t>(rect.w) *
                              width;
                }
            }
            if (kHeaderBits + offset > stream_bits)
                throw std::runtime_error(
                    "BdVariableCodec::decode: stream truncated "
                    "mid-tile");
        }
    }
    s.bitOffsets[n_tiles] = static_cast<std::size_t>(offset);

    // The stream must be exactly header + payload padded to a byte
    // boundary with zero bits: a longer buffer is trailing garbage,
    // and nonzero padding is garbage smuggled below the byte count.
    const std::uint64_t total_bits = kHeaderBits + offset;
    if ((total_bits + 7) / 8 != stream.size())
        throw std::runtime_error(
            "BdVariableCodec::decode: stream length disagrees with "
            "payload (trailing garbage)");
    if (total_bits % 8 != 0) {
        const unsigned pad = 8 - static_cast<unsigned>(total_bits % 8);
        if (stream.back() & ((1u << pad) - 1u))
            throw std::runtime_error(
                "BdVariableCodec::decode: nonzero padding bits");
    }

    // Pass 2: tile decode, parallel over the validated offsets (tiles
    // are disjoint, so output is byte-identical for any participant
    // count). Reallocate only on geometry change; every byte of the
    // image is overwritten below.
    if (out.width() != static_cast<int>(w) ||
        out.height() != static_cast<int>(h))
        out = ImageU8(static_cast<int>(w), static_cast<int>(h));
    const uint8_t *data = stream.data();
    const std::size_t size = stream.size();
    auto decodeRange = [&](std::size_t begin, std::size_t end, int) {
        BitReader br(data, size);
        br.seek(kHeaderBits + s.bitOffsets[begin]);
        for (std::size_t t = begin; t < end; ++t) {
            const TileRect &rect = s.tiles[t];
            for (int c = 0; c < 3; ++c) {
                const unsigned mode = br.getBits(1);
                if (mode == 0) {
                    const unsigned width = br.getBits(kWidthFieldBits);
                    const unsigned base = br.getBits(kBaseBits);
                    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                        uint8_t *row = out.pixel(rect.x0, y);
                        for (int x = 0; x < rect.w; ++x)
                            row[3 * x + c] = static_cast<uint8_t>(
                                base +
                                (width ? br.getBits(width) : 0u));
                    }
                } else {
                    const unsigned base = br.getBits(kBaseBits);
                    for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
                        const unsigned width =
                            br.getBits(kWidthFieldBits);
                        uint8_t *row = out.pixel(rect.x0, y);
                        for (int x = 0; x < rect.w; ++x)
                            row[3 * x + c] = static_cast<uint8_t>(
                                base +
                                (width ? br.getBits(width) : 0u));
                    }
                }
            }
        }
    };
    const bool parallel =
        pool != nullptr && participants > 1 && n_tiles > 1;
    if (parallel)
        pool->parallelFor(n_tiles, 16, participants, decodeRange);
    else
        decodeRange(0, n_tiles, 0);
}

BdVariableFrameStats
BdVariableCodec::analyze(const ImageU8 &img) const
{
    BdVariableFrameStats stats;
    stats.pixels = img.pixelCount();
    stats.totalBits = kMagicBits + 2 * kDimBits + kTileBits;
    std::vector<unsigned> row_widths;
    for (const TileRect &rect :
         tileGrid(img.width(), img.height(), tileSize_)) {
        for (int c = 0; c < 3; ++c) {
            unsigned uniform_width = 0;
            const std::size_t cost_uniform =
                uniformCost(img, rect, c, uniform_width);
            const std::size_t cost_rows =
                perRowCost(img, rect, c, row_widths);
            if (cost_uniform <= cost_rows) {
                stats.totalBits += 1 + cost_uniform;
                ++stats.uniformChannels;
            } else {
                stats.totalBits += 1 + cost_rows;
                ++stats.perRowChannels;
            }
        }
    }
    return stats;
}

} // namespace pce
