#include "common/integrity.hh"

#include <array>
#include <cstring>

namespace pce {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t n = 0; n < 256; ++n) {
        uint32_t c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

const std::array<uint32_t, 256> &
crcTable()
{
    static const auto table = makeCrcTable();
    return table;
}

constexpr uint32_t kAdlerMod = 65521;

/** SplitMix64 finalizer: a bijective 64-bit mix with full avalanche. */
uint64_t
mix64(uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

void
Crc32::update(const uint8_t *data, std::size_t n)
{
    const auto &table = crcTable();
    for (std::size_t i = 0; i < n; ++i)
        state_ = table[(state_ ^ data[i]) & 0xffu] ^ (state_ >> 8);
}

uint32_t
crc32(const uint8_t *data, std::size_t n)
{
    Crc32 c;
    c.update(data, n);
    return c.value();
}

void
Adler32::update(const uint8_t *data, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        a_ = (a_ + data[i]) % kAdlerMod;
        b_ = (b_ + a_) % kAdlerMod;
    }
}

uint32_t
adler32(const uint8_t *data, std::size_t n)
{
    Adler32 a;
    a.update(data, n);
    return a.value();
}

uint64_t
hash64(const void *data, std::size_t n)
{
    // XOR of independently mixed words, each salted with its position,
    // so the sum is order-sensitive without a sequential dependency
    // chain (the compiler is free to vectorize/unroll the loop).
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t acc = mix64(0x9e3779b97f4a7c15ull ^ n);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        uint64_t word;
        std::memcpy(&word, bytes + i, 8);
        acc ^= mix64(word + 0x9e3779b97f4a7c15ull * (i / 8 + 1));
    }
    if (i < n) {
        uint64_t word = 0;
        std::memcpy(&word, bytes + i, n - i);
        acc ^= mix64(word + 0x9e3779b97f4a7c15ull * (i / 8 + 1));
    }
    return acc;
}

} // namespace pce
