/**
 * @file
 * Environment-variable configuration helpers.
 *
 * The benchmark harness renders frames whose resolution dominates run
 * time. To let users scale experiments (e.g. CI vs. full reproduction),
 * benches read sizes from PCE_* environment variables with sensible
 * defaults via these helpers.
 */

#ifndef PCE_COMMON_ENV_HH
#define PCE_COMMON_ENV_HH

#include <string>

namespace pce {

/** Read an integer environment variable, falling back to @p def. */
long envInt(const char *name, long def);

/** Read a floating-point environment variable, falling back to @p def. */
double envDouble(const char *name, double def);

/** Read a string environment variable, falling back to @p def. */
std::string envString(const char *name, const std::string &def);

} // namespace pce

#endif // PCE_COMMON_ENV_HH
