/**
 * @file
 * Persistent worker pool with a dynamic chunk scheduler.
 *
 * The frame encoder's tile loop is badly load-imbalanced: foveal-bypass
 * tiles cost O(tile border) while adjusted tiles run the full Fig. 7
 * flow, so static striding leaves threads idle behind whichever stripe
 * caught the peripheral tiles. This pool keeps its workers alive across
 * frames (no per-frame std::thread spawn/join, which costs more than a
 * whole tile) and schedules ranges dynamically off a shared atomic
 * counter: each participant repeatedly claims the next chunk of indices
 * until the range is exhausted.
 *
 * Every participant has a stable slot id (0 = the calling thread), so
 * callers can keep per-slot scratch state and accumulate per-slot
 * results deterministically. The scheduler only affects *which* slot
 * processes an index, never the result: tiles are independent, so
 * output is bit-identical for any worker count (tests assert this).
 */

#ifndef PCE_COMMON_THREAD_POOL_HH
#define PCE_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pce {

/** A fixed set of persistent worker threads. */
class ThreadPool
{
  public:
    /**
     * @param workers Number of pool threads to spawn; the calling
     *        thread of dispatch() always participates on top of these,
     *        so a pool of N workers can run N+1 parallel slots.
     */
    explicit ThreadPool(int workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int workerCount() const
    { return static_cast<int>(threads_.size()); }

    /**
     * Run @p fn(slot) on min(participants, workerCount()+1) threads:
     * slot 0 on the calling thread, slots 1..k on pool workers. Blocks
     * until every participant returns — including when @p fn throws:
     * the first exception (caller's slot preferred) is rethrown here
     * only after all participants have finished, so captured state
     * never outlives its users. Serialized: concurrent dispatch calls
     * from different threads queue behind one another.
     */
    void dispatch(int participants,
                  const std::function<void(int)> &fn);

    /**
     * Dynamic parallel-for: participants repeatedly claim chunks of
     * @p grain indices from [0, n) off a shared atomic counter and call
     * @p body(begin, end, slot) for each claimed range. Blocks until
     * the whole range is processed.
     */
    void parallelFor(
        std::size_t n, std::size_t grain, int participants,
        const std::function<void(std::size_t, std::size_t, int)> &body);

    /**
     * Participation accounting: dispatch() calls completed and the
     * summed participant count across them. Monotonic relaxed
     * atomics — individually exact, not a mutual snapshot. The sharded
     * service reports these per shard to show how much parallelism
     * each shard's encodes actually used (participants/call =
     * meanParticipants).
     */
    std::uint64_t dispatchCalls() const
    { return dispatchCalls_.load(std::memory_order_relaxed); }
    std::uint64_t participantSum() const
    { return participantSum_.load(std::memory_order_relaxed); }

  private:
    void workerLoop(int worker_index);

    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(int)> *job_ = nullptr;
    int jobWorkers_ = 0;      ///< pool workers active in the current job
    std::uint64_t generation_ = 0;
    int remaining_ = 0;       ///< workers yet to finish the current job
    std::exception_ptr jobError_;  ///< first worker exception, if any
    bool stop_ = false;

    std::mutex dispatchMutex_;  ///< serializes dispatch() callers

    std::atomic<std::uint64_t> dispatchCalls_{0};
    std::atomic<std::uint64_t> participantSum_{0};
};

} // namespace pce

#endif // PCE_COMMON_THREAD_POOL_HH
