/**
 * @file
 * Bounded blocking MPSC/MPMC queue — the request spine of the encode
 * service (src/service).
 *
 * The service's unit of work is a stream of buffered frame requests,
 * not a single call (the exposed-datapath scheduling argument: batching
 * requests in front of a shared datapath is what lets one persistent
 * pool serve many concurrent streams). This queue provides the two
 * properties that design needs:
 *
 *  - bounded capacity with *blocking* push — producers feel
 *    backpressure instead of growing an unbounded backlog, so memory
 *    stays proportional to configured queue depth, never to offered
 *    load;
 *  - a close() drain protocol — after close, pushes are refused but
 *    every element already enqueued is still popped, so shutdown
 *    finishes in-flight work instead of dropping it.
 *
 * Plain mutex + two condition variables: the consumer side of the
 * service is one dispatcher thread whose per-item work is a full frame
 * encode (milliseconds), so lock-free cleverness would be noise. All
 * operations are safe from any number of producer and consumer
 * threads.
 *
 * Storage is a fixed ring of @c capacity default-constructed elements
 * allocated once at construction (T must be default-constructible and
 * move-assignable): pushing and popping never touches the heap, which
 * keeps the service's steady-state request flow allocation-free.
 */

#ifndef PCE_COMMON_BOUNDED_QUEUE_HH
#define PCE_COMMON_BOUNDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace pce {

/** Bounded blocking FIFO queue with a close/drain protocol. */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity Maximum queued elements; must be >= 1. */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity), ring_(capacity_)
    {}

    BoundedQueue(const BoundedQueue &) = delete;
    BoundedQueue &operator=(const BoundedQueue &) = delete;

    std::size_t capacity() const { return capacity_; }

    /** Queued elements right now (racy by nature; for stats only). */
    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return count_;
    }

    /**
     * Block until there is room, then enqueue.
     *
     * @return false when the queue was closed (before or while
     *         waiting); the element is not enqueued in that case.
     */
    bool push(T value)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock,
                      [&] { return closed_ || count_ < capacity_; });
        if (closed_)
            return false;
        ring_[(head_ + count_) % capacity_] = std::move(value);
        ++count_;
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /** Enqueue only if room is available right now (never blocks). */
    bool tryPush(T value)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || count_ >= capacity_)
                return false;
            ring_[(head_ + count_) % capacity_] = std::move(value);
            ++count_;
        }
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Block until an element is available or the queue is closed and
     * drained.
     *
     * @return The front element, or std::nullopt once the queue is
     *         closed *and* empty — the consumer's signal to exit after
     *         finishing all in-flight work.
     */
    std::optional<T> pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notEmpty_.wait(lock, [&] { return closed_ || count_ > 0; });
        if (count_ == 0)
            return std::nullopt;  // closed and drained
        T value = std::move(ring_[head_]);
        head_ = (head_ + 1) % capacity_;
        --count_;
        lock.unlock();
        notFull_.notify_one();
        return value;
    }

    /**
     * Refuse all future pushes and wake every waiter. Elements already
     * enqueued remain poppable (the drain half of the protocol).
     * Idempotent.
     */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::vector<T> ring_;     ///< fixed storage, allocated once
    std::size_t head_ = 0;    ///< index of the front element
    std::size_t count_ = 0;   ///< live elements in the ring
    bool closed_ = false;
};

} // namespace pce

#endif // PCE_COMMON_BOUNDED_QUEUE_HH
