#include "common/env.hh"

#include <cstdlib>

namespace pce {

long
envInt(const char *name, long def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    const long parsed = std::strtol(v, &end, 10);
    return end && *end == '\0' ? parsed : def;
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    const double parsed = std::strtod(v, &end);
    return end && *end == '\0' ? parsed : def;
}

std::string
envString(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return v && *v ? std::string(v) : def;
}

} // namespace pce
