#include "common/rng.hh"

#include <cmath>

namespace pce {

namespace {

uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    haveSpare_ = false;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spare_ = r * std::sin(theta);
    haveSpare_ = true;
    return r * std::cos(theta);
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(gaussian(mu, sigma));
}

double
hashNoise(int32_t x, int32_t y, uint64_t seed)
{
    uint64_t h = seed;
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(x)) * 0x8da6b343ULL;
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(y)) * 0xd8163841ULL;
    h = (h ^ (h >> 13)) * 0xff51afd7ed558ccdULL;
    h = (h ^ (h >> 33)) * 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

namespace {

double
smoothstep(double t)
{
    return t * t * (3.0 - 2.0 * t);
}

} // namespace

double
valueNoise(double x, double y, uint64_t seed)
{
    const double fx = std::floor(x);
    const double fy = std::floor(y);
    const auto ix = static_cast<int32_t>(fx);
    const auto iy = static_cast<int32_t>(fy);
    const double tx = smoothstep(x - fx);
    const double ty = smoothstep(y - fy);

    const double v00 = hashNoise(ix, iy, seed);
    const double v10 = hashNoise(ix + 1, iy, seed);
    const double v01 = hashNoise(ix, iy + 1, seed);
    const double v11 = hashNoise(ix + 1, iy + 1, seed);

    const double a = v00 + (v10 - v00) * tx;
    const double b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

double
fbmNoise(double x, double y, uint64_t seed, int octaves)
{
    double sum = 0.0;
    double amp = 0.5;
    double freq = 1.0;
    double norm = 0.0;
    for (int i = 0; i < octaves; ++i) {
        sum += amp * valueNoise(x * freq, y * freq, seed + i * 1013ULL);
        norm += amp;
        amp *= 0.5;
        freq *= 2.0;
    }
    return norm > 0.0 ? sum / norm : 0.0;
}

} // namespace pce
