/**
 * @file
 * Minimal 3x3 matrix supporting the RGB<->DKL transforms (Eq. 2 of the
 * paper) and the quadric algebra of Sec. 3.4.
 */

#ifndef PCE_COMMON_MAT3_HH
#define PCE_COMMON_MAT3_HH

#include <array>
#include <cstddef>
#include <ostream>
#include <stdexcept>

#include "common/vec3.hh"

namespace pce {

/** A row-major 3x3 double matrix. */
struct Mat3
{
    /** Rows-then-columns storage: m[r][c]. */
    std::array<std::array<double, 3>, 3> m{};

    constexpr Mat3() = default;

    /** Construct from 9 row-major coefficients. */
    constexpr Mat3(double a00, double a01, double a02,
                   double a10, double a11, double a12,
                   double a20, double a21, double a22)
    {
        m[0] = {a00, a01, a02};
        m[1] = {a10, a11, a12};
        m[2] = {a20, a21, a22};
    }

    static constexpr Mat3
    identity()
    {
        return Mat3(1, 0, 0,
                    0, 1, 0,
                    0, 0, 1);
    }

    /** Diagonal matrix with the given entries. */
    static constexpr Mat3
    diagonal(const Vec3 &d)
    {
        return Mat3(d.x, 0, 0,
                    0, d.y, 0,
                    0, 0, d.z);
    }

    constexpr double operator()(std::size_t r, std::size_t c) const
    { return m[r][c]; }
    constexpr double &operator()(std::size_t r, std::size_t c)
    { return m[r][c]; }

    constexpr Vec3 row(std::size_t r) const
    { return {m[r][0], m[r][1], m[r][2]}; }
    constexpr Vec3 col(std::size_t c) const
    { return {m[0][c], m[1][c], m[2][c]}; }

    /** Matrix-vector product. */
    constexpr Vec3
    operator*(const Vec3 &v) const
    {
        return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
    }

    /** Matrix-matrix product. */
    constexpr Mat3
    operator*(const Mat3 &o) const
    {
        Mat3 r;
        for (std::size_t i = 0; i < 3; ++i)
            for (std::size_t j = 0; j < 3; ++j)
                r(i, j) = m[i][0] * o(0, j) + m[i][1] * o(1, j) +
                          m[i][2] * o(2, j);
        return r;
    }

    constexpr Mat3
    operator+(const Mat3 &o) const
    {
        Mat3 r;
        for (std::size_t i = 0; i < 3; ++i)
            for (std::size_t j = 0; j < 3; ++j)
                r(i, j) = m[i][j] + o(i, j);
        return r;
    }

    constexpr Mat3
    operator*(double s) const
    {
        Mat3 r;
        for (std::size_t i = 0; i < 3; ++i)
            for (std::size_t j = 0; j < 3; ++j)
                r(i, j) = m[i][j] * s;
        return r;
    }

    constexpr Mat3
    transpose() const
    {
        return Mat3(m[0][0], m[1][0], m[2][0],
                    m[0][1], m[1][1], m[2][1],
                    m[0][2], m[1][2], m[2][2]);
    }

    constexpr double
    determinant() const
    {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    }

    /**
     * Matrix inverse via the adjugate. constexpr so the constant
     * RGB<->DKL pair can be folded into the per-pixel datapaths.
     *
     * @throws std::domain_error if the matrix is (numerically) singular.
     */
    constexpr Mat3
    inverse() const
    {
        const double det = determinant();
        if (det == 0.0)
            throw std::domain_error("Mat3::inverse: singular matrix");
        const double inv_det = 1.0 / det;
        Mat3 r;
        r(0, 0) =  (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det;
        r(0, 1) = -(m[0][1] * m[2][2] - m[0][2] * m[2][1]) * inv_det;
        r(0, 2) =  (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det;
        r(1, 0) = -(m[1][0] * m[2][2] - m[1][2] * m[2][0]) * inv_det;
        r(1, 1) =  (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det;
        r(1, 2) = -(m[0][0] * m[1][2] - m[0][2] * m[1][0]) * inv_det;
        r(2, 0) =  (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det;
        r(2, 1) = -(m[0][0] * m[2][1] - m[0][1] * m[2][0]) * inv_det;
        r(2, 2) =  (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det;
        return r;
    }
};

inline std::ostream &
operator<<(std::ostream &os, const Mat3 &a)
{
    for (std::size_t r = 0; r < 3; ++r)
        os << "[" << a(r, 0) << ", " << a(r, 1) << ", " << a(r, 2) << "]\n";
    return os;
}

} // namespace pce

#endif // PCE_COMMON_MAT3_HH
