/**
 * @file
 * Data-integrity checksums shared across the pipeline.
 *
 * Grown out of src/png (where CRC-32 and Adler-32 guarded PNG chunks
 * and zlib containers) into a common utility once the fault-injection
 * campaign (src/fault, docs/FAULTS.md) showed the rest of the pipeline
 * needed the same defenses: sealed BD bitstreams, checksummed
 * eccentricity state, and verified service queue slots all detect
 * silent bit flips with the primitives below.
 *
 * Three checksums, chosen by surface:
 *  - Crc32 / crc32: CRC-32 (ISO 3309, the PNG chunk polynomial).
 *    Guaranteed detection of any burst shorter than 32 bits and of all
 *    1-3 bit flips at the stream sizes this repo seals (Hamming
 *    distance >= 4 below ~11 KB, >= 3 far beyond); the right choice
 *    for compact delivered artifacts (BD bitstreams, PNG chunks).
 *  - Adler32 / adler32: the zlib checksum (RFC 1950), kept for the
 *    PNG/zlib container format which mandates it.
 *  - hash64: a fast 64-bit mixing checksum for *large in-memory*
 *    surfaces (eccentricity maps, frame buffers, queue-slot input
 *    copies) where CRC table lookups would cost real per-frame time.
 *    Word-parallel (no sequential carry chain), position-dependent,
 *    and guaranteed to change when any bits within one aligned 8-byte
 *    word flip (the per-word mix is bijective); flips spread across
 *    words collide with probability ~2^-64.
 */

#ifndef PCE_COMMON_INTEGRITY_HH
#define PCE_COMMON_INTEGRITY_HH

#include <cstdint>
#include <cstddef>

namespace pce {

/** Incrementally updatable CRC-32 as used by PNG. */
class Crc32
{
  public:
    /** Feed @p n bytes. */
    void update(const uint8_t *data, std::size_t n);

    /** Final checksum value. */
    uint32_t value() const { return state_ ^ 0xffffffffu; }

  private:
    uint32_t state_ = 0xffffffffu;
};

/** One-shot CRC-32 of a buffer. */
uint32_t crc32(const uint8_t *data, std::size_t n);

/** Incrementally updatable Adler-32 as used by zlib (RFC 1950). */
class Adler32
{
  public:
    void update(const uint8_t *data, std::size_t n);
    uint32_t value() const { return (b_ << 16) | a_; }

  private:
    uint32_t a_ = 1;
    uint32_t b_ = 0;
};

/** One-shot Adler-32 of a buffer. */
uint32_t adler32(const uint8_t *data, std::size_t n);

/**
 * Fast 64-bit checksum of an arbitrary memory range (see the file
 * comment for the detection guarantees). Deterministic across runs
 * and platforms of the same endianness; @p data needs no alignment.
 */
uint64_t hash64(const void *data, std::size_t n);

} // namespace pce

#endif // PCE_COMMON_INTEGRITY_HH
