/**
 * @file
 * Minimal 3-vector used throughout the library for colors and geometry.
 *
 * Colors are carried as Vec3 in whichever space the surrounding code
 * documents (linear RGB, DKL, ...). We deliberately keep this type tiny
 * and header-only: the perceptual encoder's inner loop manipulates
 * millions of Vec3 per frame.
 */

#ifndef PCE_COMMON_VEC3_HH
#define PCE_COMMON_VEC3_HH

#include <array>
#include <cmath>
#include <cstddef>
#include <ostream>

namespace pce {

/** A 3-component double-precision vector. */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;
    constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

    /** Component access by index: 0->x, 1->y, 2->z. */
    constexpr double
    operator[](std::size_t i) const
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    /** Mutable component access by index. */
    constexpr double &
    operator[](std::size_t i)
    {
        return i == 0 ? x : (i == 1 ? y : z);
    }

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }
    constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }

    /** Element-wise (Hadamard) product. */
    constexpr Vec3 cwiseMul(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }

    /** Element-wise quotient. */
    constexpr Vec3 cwiseDiv(const Vec3 &o) const
    { return {x / o.x, y / o.y, z / o.z}; }

    constexpr Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x; y += o.y; z += o.z;
        return *this;
    }

    constexpr Vec3 &
    operator-=(const Vec3 &o)
    {
        x -= o.x; y -= o.y; z -= o.z;
        return *this;
    }

    constexpr Vec3 &
    operator*=(double s)
    {
        x *= s; y *= s; z *= s;
        return *this;
    }

    constexpr bool operator==(const Vec3 &o) const = default;

    constexpr double dot(const Vec3 &o) const
    { return x * o.x + y * o.y + z * o.z; }

    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    double norm() const { return std::sqrt(dot(*this)); }
    constexpr double squaredNorm() const { return dot(*this); }

    /** Unit vector in the same direction; undefined for the zero vector. */
    Vec3 normalized() const { return *this / norm(); }

    /** Component-wise clamp into [lo, hi]. */
    constexpr Vec3
    clamped(double lo, double hi) const
    {
        auto c = [lo, hi](double v) {
            return v < lo ? lo : (v > hi ? hi : v);
        };
        return {c(x), c(y), c(z)};
    }

    /** Largest component. */
    constexpr double maxCoeff() const
    { return x > y ? (x > z ? x : z) : (y > z ? y : z); }

    /** Smallest component. */
    constexpr double minCoeff() const
    { return x < y ? (x < z ? x : z) : (y < z ? y : z); }
};

constexpr Vec3 operator*(double s, const Vec3 &v) { return v * s; }

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/** Linear interpolation between a and b by t in [0,1]. */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, double t)
{
    return a + (b - a) * t;
}

} // namespace pce

#endif // PCE_COMMON_VEC3_HH
