#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <stdexcept>

namespace pce {

ThreadPool::ThreadPool(int workers)
{
    if (workers < 0)
        throw std::invalid_argument("ThreadPool: negative worker count");
    threads_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
        threads_.emplace_back(&ThreadPool::workerLoop, this, i);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::workerLoop(int worker_index)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(int)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            if (worker_index < jobWorkers_)
                job = job_;
        }
        if (!job)
            continue;
        std::exception_ptr error;
        try {
            (*job)(worker_index + 1);
        } catch (...) {
            error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error && !jobError_)
                jobError_ = error;
            if (--remaining_ == 0)
                done_.notify_all();
        }
    }
}

void
ThreadPool::dispatch(int participants, const std::function<void(int)> &fn)
{
    participants = std::clamp(participants, 1, workerCount() + 1);
    dispatchCalls_.fetch_add(1, std::memory_order_relaxed);
    participantSum_.fetch_add(static_cast<std::uint64_t>(participants),
                              std::memory_order_relaxed);
    if (participants == 1) {
        fn(0);
        return;
    }

    std::lock_guard<std::mutex> serialize(dispatchMutex_);
    const int pool_workers = participants - 1;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        jobWorkers_ = pool_workers;
        remaining_ = pool_workers;
        ++generation_;
    }
    wake_.notify_all();

    // The caller participates too. If its slot throws, the workers are
    // still running the job lambda, whose captured state lives in the
    // caller's stack frames — always wait for them before unwinding.
    std::exception_ptr caller_error;
    try {
        fn(0);
    } catch (...) {
        caller_error = std::current_exception();
    }

    std::exception_ptr worker_error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return remaining_ == 0; });
        job_ = nullptr;
        jobWorkers_ = 0;
        worker_error = jobError_;
        jobError_ = nullptr;
    }
    if (caller_error)
        std::rethrow_exception(caller_error);
    if (worker_error)
        std::rethrow_exception(worker_error);
}

void
ThreadPool::parallelFor(
    std::size_t n, std::size_t grain, int participants,
    const std::function<void(std::size_t, std::size_t, int)> &body)
{
    if (n == 0)
        return;
    grain = std::max<std::size_t>(1, grain);
    std::atomic<std::size_t> next{0};
    dispatch(participants, [&](int slot) {
        for (;;) {
            const std::size_t begin =
                next.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= n)
                break;
            body(begin, std::min(n, begin + grain), slot);
        }
    });
}

} // namespace pce
