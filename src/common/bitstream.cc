#include "common/bitstream.hh"

namespace pce {

void
BitWriter::putBits(uint32_t value, unsigned width)
{
    // Byte-chunked writes: the BD encoder calls this once per pixel per
    // channel, and the original bit-at-a-time loop (with its per-bit
    // buffer-growth check) dominated the encode profile.
    if (width == 0)
        return;
    if (width < 32)
        value &= (1u << width) - 1u;
    const std::size_t end_bits = bitCount_ + width;
    if (bytes_.size() * 8 < end_bits)
        bytes_.resize((end_bits + 7) / 8, 0);
    unsigned remaining = width;
    while (remaining > 0) {
        const std::size_t byte_idx = bitCount_ / 8;
        const unsigned used = bitCount_ % 8;
        const unsigned space = 8 - used;
        const unsigned chunk = remaining < space ? remaining : space;
        const uint32_t top =
            (value >> (remaining - chunk)) & ((1u << chunk) - 1u);
        bytes_[byte_idx] |=
            static_cast<uint8_t>(top << (space - chunk));
        bitCount_ += chunk;
        remaining -= chunk;
    }
}

void
BitWriter::appendBits(const uint8_t *bytes, std::size_t bit_count)
{
    if (bit_count == 0)
        return;
    const std::size_t total_bytes = (bit_count + 7) / 8;
    const unsigned shift = static_cast<unsigned>(bitCount_ % 8);
    if (shift == 0) {
        // Byte-aligned destination: bulk-copy the whole source.
        bytes_.resize(bitCount_ / 8);  // drop the (empty) tail slot
        bytes_.insert(bytes_.end(), bytes, bytes + total_bytes);
        bitCount_ += bit_count;
        return;
    }
    // Unaligned seam: each source byte splits across two destination
    // bytes with one shift each — this splice is the serial section of
    // the parallel BD encode, so it must stay near memcpy speed. Both
    // the destination tail byte and any source bits beyond bit_count
    // are zero (putBits/resize invariants), so plain ORs compose.
    const std::size_t end_bits = bitCount_ + bit_count;
    bytes_.resize((end_bits + 7) / 8, 0);
    std::size_t idx = bitCount_ / 8;
    for (std::size_t i = 0; i < total_bytes; ++i) {
        const uint8_t b = bytes[i];
        bytes_[idx + i] |= static_cast<uint8_t>(b >> shift);
        if (idx + i + 1 < bytes_.size())
            bytes_[idx + i + 1] |=
                static_cast<uint8_t>(b << (8 - shift));
    }
    bitCount_ = end_bits;
}

void
BitWriter::alignToByte()
{
    while (bitCount_ % 8 != 0)
        putBits(0, 1);
}

std::vector<uint8_t>
BitWriter::take()
{
    bitCount_ = 0;
    return std::move(bytes_);
}

uint32_t
BitReader::getBits(unsigned width)
{
    // Byte-chunked reads, mirroring BitWriter::putBits: the BD decoder
    // calls this once per pixel per channel, and the original
    // bit-at-a-time loop dominated the decode profile. Semantics are
    // unchanged: reading past the end yields the available bits shifted
    // up with zeros filling the missing low bits, and sets exhausted().
    if (width == 0)
        return 0;
    unsigned avail = width;
    const std::size_t left = sizeBits_ - pos_;  // pos_ <= sizeBits_
    if (width <= 8 && width <= left) {
        // Fast path for the per-pixel BD fields (4-bit widths, 8-bit
        // bases, 1..8-bit deltas): the field spans at most two bytes,
        // extracted from one 16-bit window.
        const std::size_t byte = pos_ / 8;
        const unsigned used = pos_ % 8;
        pos_ += width;
        unsigned win = static_cast<unsigned>(data_[byte]) << 8;
        if (used + width > 8)
            win |= data_[byte + 1];
        return (win >> (16 - used - width)) & ((1u << width) - 1u);
    }
    if (width > left) {
        exhausted_ = true;
        avail = static_cast<unsigned>(left);
        if (avail == 0)
            return 0;
    }
    uint32_t v = 0;
    unsigned remaining = avail;
    while (remaining > 0) {
        const unsigned used = pos_ % 8;
        const unsigned space = 8 - used;
        const unsigned chunk = remaining < space ? remaining : space;
        const unsigned bits =
            (static_cast<unsigned>(data_[pos_ / 8]) >>
             (space - chunk)) &
            ((1u << chunk) - 1u);
        v = (v << chunk) | bits;
        pos_ += chunk;
        remaining -= chunk;
    }
    return v << (width - avail);
}

void
BitReader::alignToByte()
{
    pos_ = (pos_ + 7) / 8 * 8;
}

void
BitReader::seek(std::size_t bit_pos)
{
    pos_ = bit_pos < sizeBits_ ? bit_pos : sizeBits_;
}

void
LsbBitWriter::putBits(uint32_t value, unsigned width)
{
    for (unsigned i = 0; i < width; ++i) {
        const unsigned bit = (value >> i) & 1u;
        const std::size_t byte_idx = bitCount_ / 8;
        if (byte_idx == bytes_.size())
            bytes_.push_back(0);
        if (bit)
            bytes_[byte_idx] |= static_cast<uint8_t>(1u << (bitCount_ % 8));
        ++bitCount_;
    }
}

void
LsbBitWriter::alignToByte()
{
    while (bitCount_ % 8 != 0)
        putBits(0, 1);
}

void
LsbBitWriter::putAlignedByte(uint8_t b)
{
    // Callers must align first; falling through putBits keeps the
    // invariant even if they have not.
    putBits(b, 8);
}

std::vector<uint8_t>
LsbBitWriter::take()
{
    bitCount_ = 0;
    return std::move(bytes_);
}

uint32_t
LsbBitReader::getBits(unsigned width)
{
    uint32_t v = 0;
    for (unsigned i = 0; i < width; ++i) {
        if (pos_ >= sizeBits_) {
            exhausted_ = true;
            continue;
        }
        const unsigned bit = (data_[pos_ / 8] >> (pos_ % 8)) & 1u;
        v |= bit << i;
        ++pos_;
    }
    return v;
}

void
LsbBitReader::alignToByte()
{
    pos_ = (pos_ + 7) / 8 * 8;
}

uint8_t
LsbBitReader::getAlignedByte()
{
    alignToByte();
    return static_cast<uint8_t>(getBits(8));
}

} // namespace pce
