#include "common/linsolve.hh"

#include <cmath>
#include <stdexcept>

namespace pce {

DenseMatrix
DenseMatrix::gram() const
{
    DenseMatrix g(cols_, cols_);
    for (std::size_t i = 0; i < cols_; ++i) {
        for (std::size_t j = i; j < cols_; ++j) {
            double sum = 0.0;
            for (std::size_t r = 0; r < rows_; ++r)
                sum += (*this)(r, i) * (*this)(r, j);
            g(i, j) = sum;
            g(j, i) = sum;
        }
    }
    return g;
}

std::vector<double>
DenseMatrix::transposeTimes(const std::vector<double> &v) const
{
    std::vector<double> out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out[c] += (*this)(r, c) * v[r];
    return out;
}

std::vector<double>
DenseMatrix::times(const std::vector<double> &v) const
{
    std::vector<double> out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            sum += (*this)(r, c) * v[c];
        out[r] = sum;
    }
    return out;
}

std::vector<double>
choleskySolve(const DenseMatrix &a, const std::vector<double> &b)
{
    const std::size_t n = a.rows();
    if (a.cols() != n || b.size() != n)
        throw std::invalid_argument("choleskySolve: shape mismatch");

    // Factor A = L L^T, storing L in a dense lower triangle.
    DenseMatrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k)
            diag -= l(j, k) * l(j, k);
        if (diag <= 0.0)
            throw std::domain_error("choleskySolve: not positive definite");
        l(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double sum = a(i, j);
            for (std::size_t k = 0; k < j; ++k)
                sum -= l(i, k) * l(j, k);
            l(i, j) = sum / l(j, j);
        }
    }

    // Forward substitution: L y = b.
    std::vector<double> y(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        double sum = b[i];
        for (std::size_t k = 0; k < i; ++k)
            sum -= l(i, k) * y[k];
        y[i] = sum / l(i, i);
    }

    // Back substitution: L^T x = y.
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double sum = y[i];
        for (std::size_t k = i + 1; k < n; ++k)
            sum -= l(k, i) * x[k];
        x[i] = sum / l(i, i);
    }
    return x;
}

std::vector<double>
ridgeLeastSquares(const DenseMatrix &a, const std::vector<double> &b,
                  double lambda)
{
    DenseMatrix g = a.gram();
    for (std::size_t i = 0; i < g.rows(); ++i)
        g(i, i) += lambda;
    return choleskySolve(g, a.transposeTimes(b));
}

} // namespace pce
