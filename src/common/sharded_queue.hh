/**
 * @file
 * Sharded bounded MPMC queue with lane exclusivity and cross-shard
 * work stealing — the request spine of the *sharded* encode service
 * (src/service).
 *
 * The single-ring BoundedQueue (bounded_queue.hh) serves one consumer
 * draining serially; scaling the service across cores needs N
 * consumers that stay busy without violating per-stream ordering. This
 * queue restructures who owns the requests:
 *
 *  - **Shards.** Storage is N bounded rings, one per shard, each with
 *    its own fixed preallocated storage and its own not-full condition
 *    variable, so producer backpressure is per shard (pushes to a
 *    loaded shard block; other shards keep accepting).
 *  - **Lanes.** Every element carries a lane id (the service maps one
 *    stream to one lane). The queue guarantees *lane exclusivity with
 *    FIFO hand-out*: at any moment at most one popped-but-unfinished
 *    element per lane exists, and elements of a lane are handed out in
 *    push order. A consumer signals completion with finishLane(),
 *    which is what makes the next element of that lane eligible.
 *    Combined, these give the service per-stream FIFO *completion*
 *    order even when different shards encode a stream's consecutive
 *    frames: one at a time, started in order.
 *  - **Stealing.** popForShard(s) serves shard s's own ring first;
 *    when it is empty, the consumer steals the oldest *eligible*
 *    element from the most-loaded other shard (whole requests change
 *    hands, in the exposed-datapath spirit: keep every execution unit
 *    busy by letting idle owners drain loaded queues, not by adding
 *    threads behind a serial drain). An element is eligible when its
 *    lane is not currently held. Steals are counted per shard, both
 *    directions.
 *
 * Locking: one queue-wide mutex guards all ring metadata, the busy-
 * lane set, and the counters. This is deliberate — a steal needs a
 * consistent view across rings, and every critical section is an
 * O(capacity) scan over pointer-sized entries (nanoseconds) while the
 * work items the service queues behind it are millisecond-scale frame
 * encodes; fine-grained per-ring locks would buy nothing and cost a
 * lock-ordering protocol. The structural per-shard properties —
 * bounded per-shard storage, per-shard producer wakeups — are
 * preserved. Consumers share one not-empty condition variable because
 * stealing makes them interchangeable: any consumer can serve any
 * eligible element, so a wakeup is never wasted on the "wrong" shard.
 *
 * Close/drain protocol matches BoundedQueue: after close(), pushes are
 * refused but every queued element is still handed out (a consumer
 * blocked on an ineligible element waits for the lane holder's
 * finishLane, then drains it), and popForShard returns std::nullopt
 * only once the queue is closed *and* empty.
 *
 * Steady state allocates nothing: rings are fixed storage sized at
 * construction, and the busy-lane set is a fixed array of
 * `shards` entries (one per consumer — a consumer holds at most one
 * lane, and the service runs one consumer per shard).
 */

#ifndef PCE_COMMON_SHARDED_QUEUE_HH
#define PCE_COMMON_SHARDED_QUEUE_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pce {

/** Sharded bounded FIFO with lane exclusivity and work stealing. */
template <typename T>
class ShardedStealQueue
{
  public:
    /** One handed-out element plus its routing provenance. */
    struct Popped
    {
        T value{};
        std::uint64_t lane = 0;   ///< pass to finishLane() when done
        std::size_t homeShard = 0;  ///< shard the element was pushed to
        bool stolen = false;        ///< served to a non-home consumer
    };

    /** Point-in-time per-shard statistics (see the accessors). */
    struct ShardCounters
    {
        std::size_t depth = 0;      ///< queued elements right now
        std::size_t peakDepth = 0;  ///< deepest this ring has been
        std::uint64_t pushes = 0;   ///< elements pushed to this shard
        /** Elements this shard's consumers took from other shards. */
        std::uint64_t stealsBy = 0;
        /** Elements pushed here but served by another shard. */
        std::uint64_t stolenFrom = 0;
    };

    /**
     * @param shards Ring count (and expected consumer count); >= 1.
     * @param capacity_per_shard Bound of each ring; >= 1.
     */
    ShardedStealQueue(std::size_t shards, std::size_t capacity_per_shard)
        : capacity_(capacity_per_shard < 1 ? 1 : capacity_per_shard)
    {
        if (shards < 1)
            throw std::invalid_argument(
                "ShardedStealQueue: shards < 1");
        shards_.reserve(shards);
        for (std::size_t s = 0; s < shards; ++s)
            shards_.push_back(std::make_unique<Shard>(capacity_));
        busyLanes_.assign(shards, 0);
        busyUsed_.assign(shards, false);
    }

    ShardedStealQueue(const ShardedStealQueue &) = delete;
    ShardedStealQueue &operator=(const ShardedStealQueue &) = delete;

    std::size_t shardCount() const { return shards_.size(); }
    std::size_t capacityPerShard() const { return capacity_; }
    /** Total bound across all rings. */
    std::size_t capacity() const { return capacity_ * shards_.size(); }

    /**
     * Block until shard @p shard has room, then enqueue @p value on
     * its ring under @p lane.
     *
     * @return false when the queue was closed (before or while
     *         waiting); the element is not enqueued in that case.
     */
    bool push(std::size_t shard, std::uint64_t lane, T value)
    {
        Shard &sh = *shards_.at(shard);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            sh.notFull.wait(lock, [&] {
                return closed_ || sh.count < capacity_;
            });
            if (closed_)
                return false;
            Entry &e = sh.ring[(sh.head + sh.count) % capacity_];
            e.value = std::move(value);
            e.lane = lane;
            ++sh.count;
            ++sh.pushes;
            ++totalCount_;
            if (sh.count > sh.peak)
                sh.peak = sh.count;
            if (totalCount_ > aggregatePeak_)
                aggregatePeak_ = totalCount_;
        }
        // All consumers are interchangeable (stealing), so wake them
        // all: whoever is idle picks the element up, the rest re-park.
        notEmpty_.notify_all();
        return true;
    }

    /**
     * Block until an eligible element is available — shard @p shard's
     * ring first, then a steal from the most-loaded other shard — or
     * the queue is closed and drained. The returned element's lane is
     * held by the caller until finishLane(); elements of a held lane
     * are not handed out to anyone.
     *
     * @return The element, or std::nullopt once closed *and* empty.
     */
    std::optional<Popped> popForShard(std::size_t shard)
    {
        if (shard >= shards_.size())
            throw std::invalid_argument(
                "ShardedStealQueue: bad shard index");
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (std::optional<Popped> p = takeLocked(shard)) {
                lock.unlock();
                // Space freed on the home ring: wake its producers.
                shards_[p->homeShard]->notFull.notify_one();
                return p;
            }
            if (closed_ && totalCount_ == 0)
                return std::nullopt;
            // Nothing eligible: either every ring is empty, or every
            // queued element's lane is held. finishLane() and push()
            // both notify, so this wait cannot be missed.
            notEmpty_.wait(lock);
        }
    }

    /**
     * Release the exclusivity of @p lane (taken by popForShard) and
     * wake consumers: the lane's next queued element, if any, just
     * became eligible.
     */
    void finishLane(std::uint64_t lane)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            for (std::size_t i = 0; i < busyUsed_.size(); ++i) {
                if (busyUsed_[i] && busyLanes_[i] == lane) {
                    busyUsed_[i] = false;
                    notEmpty_.notify_all();
                    return;
                }
            }
        }
        throw std::logic_error(
            "ShardedStealQueue::finishLane: lane not held");
    }

    /**
     * Refuse all future pushes and wake every waiter. Queued elements
     * remain poppable (the drain half of the protocol). Idempotent.
     */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        for (const auto &sh : shards_)
            sh->notFull.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Queued elements across all shards (stats only). */
    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return totalCount_;
    }

    /**
     * Deepest the *aggregate* backlog has ever been — the
     * single-queue-comparable backlog metric (sampled inside push, so
     * it is exact, not racy).
     */
    std::size_t aggregatePeakDepth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return aggregatePeak_;
    }

    /** Consistent snapshot of one shard's counters. */
    ShardCounters counters(std::size_t shard) const
    {
        const Shard &sh = *shards_.at(shard);
        std::lock_guard<std::mutex> lock(mutex_);
        ShardCounters c;
        c.depth = sh.count;
        c.peakDepth = sh.peak;
        c.pushes = sh.pushes;
        c.stealsBy = sh.stealsBy;
        c.stolenFrom = sh.stolenFrom;
        return c;
    }

  private:
    struct Entry
    {
        T value{};
        std::uint64_t lane = 0;
    };

    /** One bounded ring. Metadata is guarded by the queue mutex. */
    struct Shard
    {
        explicit Shard(std::size_t capacity) : ring(capacity) {}
        std::vector<Entry> ring;  ///< fixed storage, allocated once
        std::size_t head = 0;
        std::size_t count = 0;
        std::condition_variable notFull;  ///< per-shard backpressure
        std::size_t peak = 0;
        std::uint64_t pushes = 0;
        std::uint64_t stealsBy = 0;
        std::uint64_t stolenFrom = 0;
        /** Steal-scan scratch: victim already tried this round. */
        bool tried = false;
    };

    bool laneHeldLocked(std::uint64_t lane) const
    {
        for (std::size_t i = 0; i < busyUsed_.size(); ++i)
            if (busyUsed_[i] && busyLanes_[i] == lane)
                return true;
        return false;
    }

    void holdLaneLocked(std::uint64_t lane)
    {
        for (std::size_t i = 0; i < busyUsed_.size(); ++i) {
            if (!busyUsed_[i]) {
                busyUsed_[i] = true;
                busyLanes_[i] = lane;
                return;
            }
        }
        // More concurrent consumers than shards: unexpected in the
        // service (one dispatcher per shard) but kept correct.
        busyUsed_.push_back(true);
        busyLanes_.push_back(lane);
    }

    /**
     * Oldest eligible element of @p from's ring, removed in place
     * (later elements keep their relative order). All elements of a
     * lane live on one ring in push order, so the first non-held
     * occurrence scanned from the head is that lane's global oldest —
     * the FIFO half of the lane contract.
     */
    std::optional<Popped> takeFromLocked(std::size_t from,
                                         std::size_t consumer)
    {
        Shard &sh = *shards_[from];
        for (std::size_t i = 0; i < sh.count; ++i) {
            Entry &e = sh.ring[(sh.head + i) % capacity_];
            if (laneHeldLocked(e.lane))
                continue;  // held lane: its whole run is ineligible
            Popped p;
            p.value = std::move(e.value);
            p.lane = e.lane;
            p.homeShard = from;
            p.stolen = from != consumer;
            holdLaneLocked(p.lane);
            // Close the gap by shifting the front of the ring back one
            // slot (O(i) moves of small entries, i < capacity).
            for (std::size_t j = i; j > 0; --j)
                sh.ring[(sh.head + j) % capacity_] =
                    std::move(sh.ring[(sh.head + j - 1) % capacity_]);
            sh.head = (sh.head + 1) % capacity_;
            --sh.count;
            --totalCount_;
            if (p.stolen) {
                ++shards_[consumer]->stealsBy;
                ++sh.stolenFrom;
            }
            return p;
        }
        return std::nullopt;
    }

    /** Own ring first, then steal from the most-loaded other shard. */
    std::optional<Popped> takeLocked(std::size_t consumer)
    {
        if (std::optional<Popped> p =
                takeFromLocked(consumer, consumer))
            return p;
        // Steal scan: prefer the deepest backlog; ties go to the
        // lowest index (deterministic given a fixed queue state).
        for (;;) {
            std::size_t victim = shards_.size();
            std::size_t depth = 0;
            for (std::size_t s = 0; s < shards_.size(); ++s) {
                if (s == consumer || shards_[s]->tried)
                    continue;
                if (shards_[s]->count > depth) {
                    depth = shards_[s]->count;
                    victim = s;
                }
            }
            if (victim == shards_.size())
                break;
            shards_[victim]->tried = true;
            if (std::optional<Popped> p =
                    takeFromLocked(victim, consumer)) {
                clearTriedLocked();
                return p;
            }
        }
        clearTriedLocked();
        return std::nullopt;
    }

    void clearTriedLocked()
    {
        for (const auto &sh : shards_)
            sh->tried = false;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;  ///< shared consumer wakeup
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Held lanes: fixed parallel arrays, one slot per consumer. */
    std::vector<std::uint64_t> busyLanes_;
    std::vector<bool> busyUsed_;
    std::size_t totalCount_ = 0;
    std::size_t aggregatePeak_ = 0;
    bool closed_ = false;
};

} // namespace pce

#endif // PCE_COMMON_SHARDED_QUEUE_HH
