/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything stochastic in this repository (procedural scenes, simulated
 * observers, property-test inputs) draws from this generator so that every
 * benchmark row and every test is exactly reproducible across runs and
 * platforms. The engine is SplitMix64 followed by xoshiro256**, seeded
 * from a 64-bit value.
 */

#ifndef PCE_COMMON_RNG_HH
#define PCE_COMMON_RNG_HH

#include <cstdint>

namespace pce {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void reseed(uint64_t seed);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    { return lo + (hi - lo) * uniform(); }

    /** Uniform integer in [0, n). n must be > 0. */
    uint64_t uniformInt(uint64_t n) { return next() % n; }

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev)
    { return mean + stddev * gaussian(); }

    /** Lognormal: exp(N(mu, sigma)). */
    double lognormal(double mu, double sigma);

  private:
    uint64_t s_[4] = {};
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

/**
 * Stateless 2D hash noise in [0,1), used by the procedural scenes for
 * per-pixel texture that must not depend on evaluation order.
 */
double hashNoise(int32_t x, int32_t y, uint64_t seed);

/** Smooth value noise in [0,1) at the given coordinates. */
double valueNoise(double x, double y, uint64_t seed);

/**
 * Fractal Brownian motion: @p octaves layers of value noise, each at
 * double the frequency and half the amplitude. Output in [0,1).
 */
double fbmNoise(double x, double y, uint64_t seed, int octaves);

} // namespace pce

#endif // PCE_COMMON_RNG_HH
