/**
 * @file
 * Bit-granular writer/reader used by every codec in the library.
 *
 * The BD codec (src/bd) packs per-tile fields of 0..16 bits; the DEFLATE
 * implementation (src/png) needs LSB-first bit order per RFC 1951. Both
 * orders are provided. All sizes are tracked in bits so the benchmark
 * harness can report exact bandwidth numbers rather than byte-rounded
 * approximations.
 */

#ifndef PCE_COMMON_BITSTREAM_HH
#define PCE_COMMON_BITSTREAM_HH

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pce {

/**
 * MSB-first bit writer.
 *
 * Bits are appended most-significant-first within each byte, which is the
 * natural order for fixed-width fields (the BD bitstream). The writer can
 * report its exact length in bits at any time.
 */
class BitWriter
{
  public:
    BitWriter() = default;

    /**
     * Append the low @p width bits of @p value, MSB first.
     *
     * @param value Field value; bits above @p width are ignored.
     * @param width Number of bits, 0..32. Width 0 writes nothing.
     */
    void putBits(uint32_t value, unsigned width);

    /** Append a full byte (8 bits). */
    void putByte(uint8_t b) { putBits(b, 8); }

    /**
     * Splice the first @p bit_count bits of another MSB-first stream
     * onto this one. The source's final partial byte must be
     * zero-padded below its last valid bit (true of any BitWriter
     * buffer). Used by the parallel BD encoder to concatenate
     * independently emitted per-chunk bitstreams; byte-aligned
     * destinations take a bulk-copy fast path.
     */
    void appendBits(const uint8_t *bytes, std::size_t bit_count);

    /**
     * Pre-allocate capacity for @p bits more bits so subsequent writes
     * never reallocate — the parallel BD tile emitters size each chunk
     * writer exactly from the prefix bit-offset pass.
     */
    void reserve(std::size_t bits)
    { bytes_.reserve((bitCount_ + bits + 7) / 8); }

    /** Drop all content, keeping the buffer's capacity for reuse. */
    void clear()
    {
        bytes_.clear();
        bitCount_ = 0;
    }

    /**
     * Adopt @p buf as the (cleared) output buffer, reusing its
     * capacity. Together with take(), lets a frame loop recycle one
     * bitstream allocation across frames.
     */
    void reset(std::vector<uint8_t> buf)
    {
        buf.clear();
        bytes_ = std::move(buf);
        bitCount_ = 0;
    }

    /** Pad with zero bits up to the next byte boundary. */
    void alignToByte();

    /** Exact number of bits written so far. */
    std::size_t bitCount() const { return bitCount_; }

    /** Bytes written (the final partial byte counts as one). */
    std::size_t byteCount() const { return (bitCount_ + 7) / 8; }

    /** The underlying buffer; the final byte may be partially filled. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Move the buffer out, leaving the writer empty. */
    std::vector<uint8_t> take();

  private:
    std::vector<uint8_t> bytes_;
    std::size_t bitCount_ = 0;
};

/**
 * MSB-first bit reader over an external byte buffer.
 *
 * Reading past the end is reported via exhausted() and yields zero bits,
 * so malformed streams fail loudly in tests rather than crashing.
 */
class BitReader
{
  public:
    BitReader(const uint8_t *data, std::size_t size_bytes)
        : data_(data), sizeBits_(size_bytes * 8)
    {}

    explicit BitReader(const std::vector<uint8_t> &buf)
        : BitReader(buf.data(), buf.size())
    {}

    /** Read @p width bits (0..32), MSB first. */
    uint32_t getBits(unsigned width);

    /** Read one full byte. */
    uint8_t getByte() { return static_cast<uint8_t>(getBits(8)); }

    /** Skip forward to the next byte boundary. */
    void alignToByte();

    /**
     * Jump to an absolute bit position (clamped to the end of the
     * buffer). The parallel BD decoder positions one reader per tile
     * chunk from the serial prefix of per-tile bit offsets; exhausted()
     * is left untouched.
     */
    void seek(std::size_t bit_pos);

    /** Bits consumed so far. */
    std::size_t bitPosition() const { return pos_; }

    /** True once a read has gone past the end of the buffer. */
    bool exhausted() const { return exhausted_; }

    /** Bits remaining. */
    std::size_t bitsLeft() const
    { return pos_ >= sizeBits_ ? 0 : sizeBits_ - pos_; }

  private:
    const uint8_t *data_;
    std::size_t sizeBits_;
    std::size_t pos_ = 0;
    bool exhausted_ = false;
};

/**
 * LSB-first bit writer for RFC 1951 (DEFLATE) streams.
 *
 * Within each byte, bits are filled starting at the least-significant
 * position. Huffman codes are written with their own bit reversal as
 * required by the spec (handled by the caller).
 */
class LsbBitWriter
{
  public:
    /** Append the low @p width bits of @p value, LSB first. */
    void putBits(uint32_t value, unsigned width);

    /** Pad with zero bits to a byte boundary. */
    void alignToByte();

    /** Append a raw byte; requires byte alignment. */
    void putAlignedByte(uint8_t b);

    std::size_t bitCount() const { return bitCount_; }
    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take();

  private:
    std::vector<uint8_t> bytes_;
    std::size_t bitCount_ = 0;
};

/** LSB-first bit reader for RFC 1951 streams. */
class LsbBitReader
{
  public:
    LsbBitReader(const uint8_t *data, std::size_t size_bytes)
        : data_(data), sizeBits_(size_bytes * 8)
    {}

    explicit LsbBitReader(const std::vector<uint8_t> &buf)
        : LsbBitReader(buf.data(), buf.size())
    {}

    /** Read @p width bits, LSB first. */
    uint32_t getBits(unsigned width);

    /** Read a single bit. */
    uint32_t getBit() { return getBits(1); }

    /** Skip to the next byte boundary. */
    void alignToByte();

    /** Read a byte; requires byte alignment. */
    uint8_t getAlignedByte();

    std::size_t bitPosition() const { return pos_; }
    bool exhausted() const { return exhausted_; }

  private:
    const uint8_t *data_;
    std::size_t sizeBits_;
    std::size_t pos_ = 0;
    bool exhausted_ = false;
};

} // namespace pce

#endif // PCE_COMMON_BITSTREAM_HH
