/**
 * @file
 * Small dense linear-algebra helpers.
 *
 * Used by the RBF-network fit (src/perception/rbf.cc): the network
 * weights solve a regularized least-squares problem whose normal
 * equations are a symmetric positive-definite system of a few hundred
 * unknowns. A Cholesky factorization is ample at that scale.
 */

#ifndef PCE_COMMON_LINSOLVE_HH
#define PCE_COMMON_LINSOLVE_HH

#include <cstddef>
#include <vector>

namespace pce {

/** Dense row-major matrix of doubles. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;
    DenseMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double operator()(std::size_t r, std::size_t c) const
    { return data_[r * cols_ + c]; }
    double &operator()(std::size_t r, std::size_t c)
    { return data_[r * cols_ + c]; }

    /** this^T * this (Gram matrix), cols x cols. */
    DenseMatrix gram() const;

    /** this^T * v where v has rows() entries. */
    std::vector<double> transposeTimes(const std::vector<double> &v) const;

    /** this * v where v has cols() entries. */
    std::vector<double> times(const std::vector<double> &v) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solve A x = b for symmetric positive-definite A via Cholesky.
 *
 * @param a SPD matrix (only its lower triangle is read).
 * @param b Right-hand side.
 * @return Solution vector.
 * @throws std::domain_error if A is not positive definite.
 */
std::vector<double> choleskySolve(const DenseMatrix &a,
                                  const std::vector<double> &b);

/**
 * Regularized least squares: minimize ||A x - b||^2 + lambda ||x||^2.
 * Solved through the normal equations (A^T A + lambda I) x = A^T b.
 */
std::vector<double> ridgeLeastSquares(const DenseMatrix &a,
                                      const std::vector<double> &b,
                                      double lambda);

} // namespace pce

#endif // PCE_COMMON_LINSOLVE_HH
