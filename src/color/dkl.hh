/**
 * @file
 * Linear RGB <-> DKL color space transforms (paper Sec. 2.1, Eq. 2).
 *
 * The DKL (Derrington-Krauskopf-Lennie) space models the opponent process
 * of the human visual system; color-discrimination thresholds are
 * axis-aligned ellipsoids there. The transform is the constant 3x3 matrix
 * with the coefficients given in the paper (same as Duinkharjav et al.):
 *
 *   [[ 0.14,  0.17,  0.00],
 *    [-0.21, -0.71, -0.07],
 *    [ 0.21,  0.72,  0.07]]
 *
 * The paper's Eq. 2 prints RGB = M * DKL while naming the matrix
 * M_RGB2DKL and then uses M for RGB->DKL in Eq. 13a and its inverse for
 * DKL->RGB in Eq. 13c. We follow the *usage* (and the name): M maps
 * RGB -> DKL. See DESIGN.md, "Known paper ambiguities".
 */

#ifndef PCE_COLOR_DKL_HH
#define PCE_COLOR_DKL_HH

#include "common/mat3.hh"
#include "common/vec3.hh"

namespace pce {

/**
 * The constant RGB->DKL matrix from the paper and its inverse, as
 * compile-time constants: the encoder's per-pixel datapaths (ellipsoid
 * centers, quadric rows, extrema back-projection) are built from these
 * coefficients, and exposing them as constexpr lets the optimizer fold
 * them instead of reloading a guarded function-local static per pixel.
 */
inline constexpr Mat3 kRgb2Dkl{0.14, 0.17, 0.00,
                               -0.21, -0.71, -0.07,
                               0.21, 0.72, 0.07};
inline constexpr Mat3 kDkl2Rgb = kRgb2Dkl.inverse();

/** The constant RGB->DKL matrix from the paper. */
inline const Mat3 &
rgb2dklMatrix()
{
    return kRgb2Dkl;
}

/** Its inverse (DKL->RGB). */
inline const Mat3 &
dkl2rgbMatrix()
{
    return kDkl2Rgb;
}

/** Transform a linear-RGB color to DKL. */
inline Vec3
rgbToDkl(const Vec3 &rgb)
{
    return kRgb2Dkl * rgb;
}

/** Transform a DKL color to linear RGB. */
inline Vec3
dklToRgb(const Vec3 &dkl)
{
    return kDkl2Rgb * dkl;
}

} // namespace pce

#endif // PCE_COLOR_DKL_HH
