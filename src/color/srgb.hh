/**
 * @file
 * Linear RGB <-> sRGB gamma transforms (paper Eq. 1).
 *
 * Rendering operates in linear RGB with each channel in [0,1]. Output
 * encoding (and therefore BD compression) operates in 8-bit sRGB. The
 * forward transform f_s2r follows Eq. 1 of the paper: a linear segment
 * near black and a 1/2.4 power segment elsewhere, scaled to [0,255].
 *
 * The quantizing forward map linearToSrgb8() and the inverse
 * srgb8ToLinear() are table-driven: the encoder evaluates them three
 * times per pixel per candidate axis inside the tile loop, and the pow
 * calls of the continuous forms dominated the profile. The forward
 * table is a 4096-bucket code index plus per-code exact double
 * thresholds (found by bisection over the reference), which makes the
 * fast path bit-exact with linearToSrgb8Reference() for every input —
 * tests/color sweeps this exhaustively.
 */

#ifndef PCE_COLOR_SRGB_HH
#define PCE_COLOR_SRGB_HH

#include <cstddef>
#include <cstdint>

#include "common/vec3.hh"

namespace pce {

/**
 * Forward gamma: linear RGB channel in [0,1] -> continuous sRGB value in
 * [0,255] *before* quantization. Split out so the optimizer can reason
 * about the continuous map (Sec. 3.2 uses f_s2r inside the objective).
 */
double linearToSrgbContinuous(double x);

/**
 * Eq. 1: linear RGB channel in [0,1] -> quantized 8-bit sRGB code.
 * Values outside [0,1] are clamped first. Table-driven; bit-exact with
 * linearToSrgb8Reference().
 */
uint8_t linearToSrgb8(double x);

/**
 * The direct pow-based evaluation of the quantizing forward map; the
 * ground truth the LUT path is validated against. Not for hot paths.
 */
uint8_t linearToSrgb8Reference(double x);

/**
 * Inverse gamma: 8-bit sRGB code -> linear RGB channel in [0,1].
 * Table-driven (256 entries); bit-exact with srgbToLinearContinuous.
 */
double srgb8ToLinear(uint8_t code);

/** Continuous inverse gamma on a [0,255] sRGB value. */
double srgbToLinearContinuous(double s);

/** Apply linearToSrgb8 per channel. */
void linearToSrgb8(const Vec3 &rgb, uint8_t out[3]);

/**
 * Quantize @p n linear-RGB pixels to interleaved 8-bit sRGB codes
 * (3 bytes per pixel). One call per tile/row amortizes the call and
 * table-lookup setup that a per-channel loop pays 3n times; the tile
 * adjuster's axis costing and toSrgb8 both run through this.
 */
void linearToSrgb8(const Vec3 *pixels, std::size_t n, uint8_t *codes);

/**
 * Planar variant of the batched quantizer: channels arrive as separate
 * x/y/z arrays (the TileSoA lane layout of src/simd) and leave as the
 * same interleaved 3-byte codes. Bit-identical to the Vec3 overload on
 * the same values. The production kernels quantize inline through
 * srgbForwardTable() with the costing fused in; this materializing
 * form is their reference oracle (tests/simd) and the general planar
 * entry point.
 */
void linearToSrgb8Planar(const double *x, const double *y,
                         const double *z, std::size_t n, uint8_t *codes);

/** Apply srgb8ToLinear per channel. */
Vec3 srgb8ToLinear(const uint8_t in[3]);

/**
 * Read-only view of the forward-quantization tables backing
 * linearToSrgb8, for kernels (src/simd) that inline the lookup:
 * code(x) = bucketCode[int(x * buckets)], +1 if x >= codeMin[code+1],
 * with x <= 0 -> 0 and x >= 1 -> 255. Sharing the exact tables keeps
 * any reimplementation bit-identical with linearToSrgb8 by
 * construction.
 */
struct SrgbForwardTableView
{
    const uint8_t *bucketCode;  ///< per-bucket base code
    const double *codeMin;      ///< smallest double mapping to >= code
    int buckets;                ///< bucket count (input scale factor)
};

/** The view of the process-wide tables (initialized on first use). */
SrgbForwardTableView srgbForwardTable();

} // namespace pce

#endif // PCE_COLOR_SRGB_HH
