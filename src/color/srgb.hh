/**
 * @file
 * Linear RGB <-> sRGB gamma transforms (paper Eq. 1).
 *
 * Rendering operates in linear RGB with each channel in [0,1]. Output
 * encoding (and therefore BD compression) operates in 8-bit sRGB. The
 * forward transform f_s2r follows Eq. 1 of the paper: a linear segment
 * near black and a 1/2.4 power segment elsewhere, scaled to [0,255].
 */

#ifndef PCE_COLOR_SRGB_HH
#define PCE_COLOR_SRGB_HH

#include <cstdint>

#include "common/vec3.hh"

namespace pce {

/**
 * Forward gamma: linear RGB channel in [0,1] -> continuous sRGB value in
 * [0,255] *before* quantization. Split out so the optimizer can reason
 * about the continuous map (Sec. 3.2 uses f_s2r inside the objective).
 */
double linearToSrgbContinuous(double x);

/**
 * Eq. 1: linear RGB channel in [0,1] -> quantized 8-bit sRGB code.
 * Values outside [0,1] are clamped first.
 */
uint8_t linearToSrgb8(double x);

/** Inverse gamma: 8-bit sRGB code -> linear RGB channel in [0,1]. */
double srgb8ToLinear(uint8_t code);

/** Continuous inverse gamma on a [0,255] sRGB value. */
double srgbToLinearContinuous(double s);

/** Apply linearToSrgb8 per channel. */
void linearToSrgb8(const Vec3 &rgb, uint8_t out[3]);

/** Apply srgb8ToLinear per channel. */
Vec3 srgb8ToLinear(const uint8_t in[3]);

} // namespace pce

#endif // PCE_COLOR_SRGB_HH
