#include "color/dkl.hh"

namespace pce {

const Mat3 &
rgb2dklMatrix()
{
    static const Mat3 m(0.14, 0.17, 0.00,
                        -0.21, -0.71, -0.07,
                        0.21, 0.72, 0.07);
    return m;
}

const Mat3 &
dkl2rgbMatrix()
{
    static const Mat3 inv = rgb2dklMatrix().inverse();
    return inv;
}

Vec3
rgbToDkl(const Vec3 &rgb)
{
    return rgb2dklMatrix() * rgb;
}

Vec3
dklToRgb(const Vec3 &dkl)
{
    return dkl2rgbMatrix() * dkl;
}

} // namespace pce
