#include "color/srgb.hh"

#include <algorithm>
#include <cmath>

namespace pce {

namespace {

constexpr double kLinearCutoff = 0.0031308;
constexpr double kLinearSlope = 12.92;
constexpr double kGamma = 2.4;
constexpr double kA = 0.055;

// Inverse-direction cutoff: kLinearSlope * kLinearCutoff.
constexpr double kSrgbCutoff = kLinearSlope * kLinearCutoff;

} // namespace

double
linearToSrgbContinuous(double x)
{
    x = std::clamp(x, 0.0, 1.0);
    double s;
    if (x <= kLinearCutoff)
        s = kLinearSlope * x;
    else
        s = (1.0 + kA) * std::pow(x, 1.0 / kGamma) - kA;
    return s * 255.0;
}

uint8_t
linearToSrgb8(double x)
{
    // Round-to-nearest quantization of the continuous map. The paper's
    // Eq. 1 writes a floor over the normalized value; rounding is what
    // 8-bit framebuffer encodes actually do and keeps the inverse map
    // within half a code of the identity.
    const double s = linearToSrgbContinuous(x);
    const double q = std::floor(s + 0.5);
    return static_cast<uint8_t>(std::clamp(q, 0.0, 255.0));
}

double
srgbToLinearContinuous(double s)
{
    s = std::clamp(s, 0.0, 255.0) / 255.0;
    if (s <= kSrgbCutoff)
        return s / kLinearSlope;
    return std::pow((s + kA) / (1.0 + kA), kGamma);
}

double
srgb8ToLinear(uint8_t code)
{
    return srgbToLinearContinuous(static_cast<double>(code));
}

void
linearToSrgb8(const Vec3 &rgb, uint8_t out[3])
{
    out[0] = linearToSrgb8(rgb.x);
    out[1] = linearToSrgb8(rgb.y);
    out[2] = linearToSrgb8(rgb.z);
}

Vec3
srgb8ToLinear(const uint8_t in[3])
{
    return {srgb8ToLinear(in[0]), srgb8ToLinear(in[1]), srgb8ToLinear(in[2])};
}

} // namespace pce
