#include "color/srgb.hh"

#include <algorithm>
#include <cmath>

namespace pce {

namespace {

constexpr double kLinearCutoff = 0.0031308;
constexpr double kLinearSlope = 12.92;
constexpr double kGamma = 2.4;
constexpr double kA = 0.055;

// Inverse-direction cutoff: kLinearSlope * kLinearCutoff.
constexpr double kSrgbCutoff = kLinearSlope * kLinearCutoff;

/**
 * Bucket count of the forward LUT. The steepest slope of the forward
 * map is 12.92 * 255 ~= 3295 codes per unit input (the linear segment),
 * so with 4096 buckets over [0,1) a bucket spans < 1 code and the code
 * of any x is either the bucket's base code or the next one.
 */
constexpr int kFwdBuckets = 4096;

struct SrgbTables
{
    /** srgbToLinearContinuous(c) for every 8-bit code c. */
    double toLinear[256];
    /** Code of the bucket's lower edge: reference(b / kFwdBuckets). */
    uint8_t bucketCode[kFwdBuckets];
    /**
     * codeMin[c] is the smallest double in [0,1] whose reference code
     * is >= c (bisection over reference doubles — exact, not analytic).
     * codeMin[256] is an unreachable sentinel.
     */
    double codeMin[257];

    SrgbTables()
    {
        for (int c = 0; c < 256; ++c)
            toLinear[c] =
                srgbToLinearContinuous(static_cast<double>(c));

        codeMin[0] = 0.0;
        for (int c = 1; c < 256; ++c) {
            double lo = 0.0;   // reference(lo) < c
            double hi = 1.0;   // reference(hi) >= c
            while (hi > std::nextafter(lo, 2.0)) {
                const double mid = 0.5 * (lo + hi);
                if (linearToSrgb8Reference(mid) >=
                    static_cast<int>(c))
                    hi = mid;
                else
                    lo = mid;
            }
            codeMin[c] = hi;
        }
        codeMin[256] = 2.0;

        for (int b = 0; b < kFwdBuckets; ++b)
            bucketCode[b] = linearToSrgb8Reference(
                static_cast<double>(b) / kFwdBuckets);
    }
};

const SrgbTables &
tables()
{
    static const SrgbTables t;
    return t;
}

} // namespace

double
linearToSrgbContinuous(double x)
{
    x = std::clamp(x, 0.0, 1.0);
    double s;
    if (x <= kLinearCutoff)
        s = kLinearSlope * x;
    else
        s = (1.0 + kA) * std::pow(x, 1.0 / kGamma) - kA;
    return s * 255.0;
}

uint8_t
linearToSrgb8Reference(double x)
{
    // Round-to-nearest quantization of the continuous map. The paper's
    // Eq. 1 writes a floor over the normalized value; rounding is what
    // 8-bit framebuffer encodes actually do and keeps the inverse map
    // within half a code of the identity.
    const double s = linearToSrgbContinuous(x);
    const double q = std::floor(s + 0.5);
    return static_cast<uint8_t>(std::clamp(q, 0.0, 255.0));
}

namespace {

inline uint8_t
lutForward(const SrgbTables &t, double x)
{
    if (!(x > 0.0))
        return 0;
    if (x >= 1.0)
        return 255;
    const int b = static_cast<int>(x * kFwdBuckets);
    uint8_t c = t.bucketCode[b];
    // A bucket spans at most one code boundary (see kFwdBuckets).
    if (x >= t.codeMin[c + 1])
        ++c;
    return c;
}

} // namespace

uint8_t
linearToSrgb8(double x)
{
    return lutForward(tables(), x);
}

double
srgbToLinearContinuous(double s)
{
    s = std::clamp(s, 0.0, 255.0) / 255.0;
    if (s <= kSrgbCutoff)
        return s / kLinearSlope;
    return std::pow((s + kA) / (1.0 + kA), kGamma);
}

double
srgb8ToLinear(uint8_t code)
{
    return tables().toLinear[code];
}

void
linearToSrgb8(const Vec3 &rgb, uint8_t out[3])
{
    const SrgbTables &t = tables();
    out[0] = lutForward(t, rgb.x);
    out[1] = lutForward(t, rgb.y);
    out[2] = lutForward(t, rgb.z);
}

void
linearToSrgb8(const Vec3 *pixels, std::size_t n, uint8_t *codes)
{
    const SrgbTables &t = tables();
    for (std::size_t i = 0; i < n; ++i) {
        codes[3 * i + 0] = lutForward(t, pixels[i].x);
        codes[3 * i + 1] = lutForward(t, pixels[i].y);
        codes[3 * i + 2] = lutForward(t, pixels[i].z);
    }
}

SrgbForwardTableView
srgbForwardTable()
{
    const SrgbTables &t = tables();
    return {t.bucketCode, t.codeMin, kFwdBuckets};
}

void
linearToSrgb8Planar(const double *x, const double *y, const double *z,
                    std::size_t n, uint8_t *codes)
{
    const SrgbTables &t = tables();
    for (std::size_t i = 0; i < n; ++i) {
        codes[3 * i + 0] = lutForward(t, x[i]);
        codes[3 * i + 1] = lutForward(t, y[i]);
        codes[3 * i + 2] = lutForward(t, z[i]);
    }
}

Vec3
srgb8ToLinear(const uint8_t in[3])
{
    return {srgb8ToLinear(in[0]), srgb8ToLinear(in[1]), srgb8ToLinear(in[2])};
}

} // namespace pce
