/**
 * @file
 * Planar (structure-of-arrays) tile storage for the SIMD kernel layer.
 *
 * The scalar hot path of PR 1 gathers each tile into flat per-tile
 * vectors (TileScratch), but the per-pixel records are still AoS:
 * Vec3 pixels, Ellipsoid centers/axes, ExtremaPair endpoints. A 4-wide
 * AVX2 lane wants one contiguous array per *component* instead, so the
 * kernels can load four pixels' worth of one coordinate with a single
 * unaligned vector load and never shuffle.
 *
 * TileSoA is one reusable arena holding every planar lane of the tile
 * datapath. All lanes share a common stride (the pixel count rounded up
 * to the vector width), so kernels may process ceil(n / 4) full vectors
 * per lane without tail code: resize() zero-fills the padding of the
 * *input* lanes, which keeps the padded math benign (no spurious
 * division-by-zero or negative sqrt in the unused slots), and the
 * padded slots of output lanes are simply never read back.
 */

#ifndef PCE_SIMD_TILE_SOA_HH
#define PCE_SIMD_TILE_SOA_HH

#include <cstddef>
#include <vector>

namespace pce::simd {

/** Vector width (doubles) the lane stride is padded to. */
inline constexpr std::size_t kLaneWidth = 4;

/** Planar lanes of the per-tile datapath. */
enum Lane : int
{
    // Inputs (caller-filled; padding zeroed by resize()).
    kPx, kPy, kPz,              ///< raw linear-RGB pixels
    kEcc,                       ///< per-pixel eccentricity, degrees

    // Stage 1 outputs: per-pixel discrimination ellipsoids.
    kCx, kCy, kCz,              ///< DKL center (= DKL of clamped pixel)
    kAx, kAy, kAz,              ///< DKL semi-axes

    // Stage 2 outputs: extrema along the Red / Blue optimization axes.
    kRedHighX, kRedHighY, kRedHighZ,
    kRedLowX, kRedLowY, kRedLowZ,
    kBlueHighX, kBlueHighY, kBlueHighZ,
    kBlueLowX, kBlueLowY, kBlueLowZ,

    // Stage 3 outputs: the two candidate adjusted tiles.
    kOutRedX, kOutRedY, kOutRedZ,
    kOutBlueX, kOutBlueY, kOutBlueZ,

    kLaneCount
};

/** One grow-once arena of every planar lane. */
struct TileSoA
{
    std::size_t n = 0;       ///< valid pixels per lane
    std::size_t stride = 0;  ///< doubles per lane (n padded to kLaneWidth)
    std::vector<double> buf; ///< kLaneCount lanes of `stride` doubles

    /**
     * Set the pixel count and (re)provision the arena. The buffer only
     * ever grows, so a scratch reused across tiles allocates once.
     * Padding slots of the input lanes are zeroed every call — stale
     * values from a larger previous tile must not leak into the padded
     * vector math of the current one.
     */
    void
    resize(std::size_t count)
    {
        n = count;
        stride = (count + kLaneWidth - 1) / kLaneWidth * kLaneWidth;
        if (buf.size() < stride * kLaneCount)
            buf.resize(stride * kLaneCount);
        for (int l = kPx; l <= kEcc; ++l)
            for (std::size_t i = n; i < stride; ++i)
                lane(l)[i] = 0.0;
    }

    double *lane(int l) { return buf.data() + stride * l; }
    const double *lane(int l) const { return buf.data() + stride * l; }
};

} // namespace pce::simd

#endif // PCE_SIMD_TILE_SOA_HH
