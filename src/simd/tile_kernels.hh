/**
 * @file
 * SIMD kernel layer of the tile adjust datapath, with runtime dispatch.
 *
 * The three hot per-pixel stages of the Fig. 7 tile flow —
 *
 *  1. ellipsoid construction (clamp, RGB->DKL, analytic semi-axes),
 *  2. fused both-axes quadric extrema (Eq. 11-13),
 *  3. movement clamping/apply along one optimization axis —
 *
 * are exposed as data-parallel kernels over the planar TileSoA lanes.
 * Two implementations exist behind one function table: a portable
 * scalar build (always present; it *is* the reference datapath, calling
 * the same model/quadric code as the pre-SIMD scalar flow) and an AVX2
 * build processing 4 pixels per instruction, compiled into its own TU
 * with -mavx2 and selected at runtime by CPUID.
 *
 * Bit-identity contract: every level produces bit-identical doubles for
 * every input. The AVX2 kernels replicate the scalar code's exact
 * operation sequence (same association, no FMA contraction — the AVX2
 * TU is built with -ffp-contract=off, and vector mul/add/div/sqrt are
 * IEEE-exact per element), and min/max/clamp are implemented as
 * compare+blend with the precise semantics of the std:: forms they
 * mirror. tests/simd sweeps every available level against the scalar
 * reference and asserts equality, not tolerance.
 *
 * Dispatch override: set FOVE_SIMD=off (or =scalar) to force the
 * portable kernels, FOVE_SIMD=avx2 to request AVX2 (clamped to what the
 * CPU supports), FOVE_SIMD=auto / unset for CPUID detection.
 */

#ifndef PCE_SIMD_TILE_KERNELS_HH
#define PCE_SIMD_TILE_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "perception/discrimination.hh"
#include "simd/tile_soa.hh"

namespace pce::simd {

/** Instruction-set level of a kernel table. */
enum class SimdLevel
{
    Scalar,  ///< portable reference kernels
    Avx2,    ///< 4-wide AVX2 kernels
};

/** Human-readable level name ("scalar" / "avx2"). */
const char *simdLevelName(SimdLevel level);

/**
 * Highest level this CPU supports (CPUID; Scalar when the AVX2 TU was
 * not built for this target).
 */
SimdLevel detectedSimdLevel();

/**
 * detectedSimdLevel() clamped by the FOVE_SIMD environment override.
 * Reads the environment on every call (construction-time cost only:
 * the TileAdjuster resolves its kernel table once), so tests can flip
 * the override in-process.
 */
SimdLevel activeSimdLevel();

/**
 * The level tileKernels(requested) actually resolves to: a request for
 * a level the CPU/build cannot run is clamped to Scalar. Callers that
 * report or record their dispatch level must use this, never the raw
 * request.
 */
SimdLevel effectiveSimdLevel(SimdLevel requested);

/**
 * The per-stage kernel table. All kernels read/write the planar lanes
 * of a TileSoA (see tile_soa.hh for the lane map) and may touch the
 * full padded stride of any lane.
 */
struct TileKernels
{
    /**
     * Stage 1: per-pixel discrimination ellipsoids of the analytic
     * model. Reads kPx..kPz (raw pixels; clamped to [0,1] internally,
     * matching the scalar flow) and kEcc; writes the DKL centers
     * kCx..kCz and semi-axes kAx..kAz.
     */
    void (*ellipsoids)(TileSoA &soa, const AnalyticModelParams &params);

    /**
     * Stage 2: extrema along both optimization axes from one shared
     * quadric transform (Eq. 11-13, both halves of extremaBothAxes).
     * Reads kCx..kCz / kAx..kAz; writes the four extrema endpoint
     * groups kRedHigh* / kRedLow* / kBlueHigh* / kBlueLow*.
     *
     * @throws std::domain_error on a degenerate ellipsoid (zero Eq. 13
     *         denominator), exactly like extremaAlongAxis.
     */
    void (*extremaBoth)(TileSoA &soa);

    /**
     * Stage 3: move every pixel along its extrema vector toward the
     * per-tile target (Fig. 6), clamping to the RGB gamut. Reads the
     * raw pixels and the extrema lanes of @p axis; writes the adjusted
     * candidate lanes of @p axis (kOutRed* for axis 0, kOutBlue* for
     * axis 2).
     *
     * @param axis     Optimization axis, 0 (Red) or 2 (Blue).
     * @param collapse True for the Fig. 6b common-plane case (C2).
     * @param target   Collapse plane 0.5 * (hl + lh); ignored unless
     *                 @p collapse.
     * @param lh,hl    The LH / HL planes (Fig. 6a clamp interval).
     * @return Number of pixels whose movement was shortened by the
     *         gamut clamp.
     */
    int (*moveAxis)(TileSoA &soa, int axis, bool collapse, double target,
                    double lh, double hl);

    /**
     * Stage 4: BD bit cost of one adjusted candidate straight from its
     * planar lanes (kOutRed* for axis 0, kOutBlue* for axis 2). sRGB-
     * quantizes each channel (bit-identical with linearToSrgb8; the
     * same process-wide tables back every level) and folds the per-
     * channel min/max reduction in, so the interleaved code buffer the
     * scalar flow materialized for bdTileBitsFromCodes never exists.
     * Returns meta(4) + base(8) + n * ceil(log2(range+1)) bits per
     * channel, exactly bdTileBitsFromCodes' accounting.
     */
    std::size_t (*tileCost)(const TileSoA &soa, int axis);

    /**
     * BD stats kernel: per-channel min/max over one tile of interleaved
     * 8-bit sRGB pixels (the pass-1 scan of BdCodec::encodeInto). Unlike
     * the TileSoA kernels this one runs in the byte domain, directly on
     * the image's interleaved rows — min/max over integers is
     * order-independent, so every level is trivially bit-identical.
     *
     * @param rows   First pixel of the tile, 3 bytes per pixel.
     * @param stride Byte distance between successive tile rows (the
     *               image row pitch).
     * @param width  Pixels per tile row (>= 1).
     * @param height Tile rows (>= 1).
     * @param end    One past the last readable byte of the image
     *               buffer; vector loads never touch [end, ...). Rows
     *               whose 32-byte window would cross it fall back to a
     *               scalar tail.
     * @param lo,hi  Outputs: per-channel minimum / maximum.
     */
    void (*bdTileMinMax)(const uint8_t *rows, std::size_t stride,
                         int width, int height, const uint8_t *end,
                         uint8_t lo[3], uint8_t hi[3]);
};

/** Kernel table of a specific level (Scalar is always available). */
const TileKernels &tileKernels(SimdLevel level);

/** Kernel table of activeSimdLevel(). */
inline const TileKernels &
activeTileKernels()
{
    return tileKernels(activeSimdLevel());
}

} // namespace pce::simd

#endif // PCE_SIMD_TILE_KERNELS_HH
