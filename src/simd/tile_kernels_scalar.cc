/**
 * @file
 * Portable scalar kernels of the tile adjust datapath.
 *
 * This TU is the reference: stages 1 and 2 are thin planar wrappers
 * over the *same* model/quadric code the pre-SIMD scalar flow executed
 * (AnalyticDiscriminationModel::ellipsoidFor, extremaBothAxes), and
 * stage 3's gamut clamp is the shared clampMovementToGamut
 * (core/adjust.hh), so their results are bit-identical to it by
 * construction. The rest of stage 3 transcribes
 * TileAdjuster::moveAlongAxis statement for statement (the original
 * operates on Vec3/ExtremaPair AoS buffers and cannot consume planar
 * lanes directly); tests/core and tests/simd pin the transcription to
 * the legacy path bit for bit.
 *
 * The AVX2 TU (tile_kernels_avx2.cc) mirrors the exact operation
 * sequence of these kernels four pixels at a time.
 */

#include "simd/tile_kernels.hh"

#include <algorithm>

#include "bd/bd_codec.hh"
#include "color/srgb.hh"
#include "common/vec3.hh"
#include "core/adjust.hh"
#include "core/quadric.hh"
#include "perception/discrimination.hh"

namespace pce::simd {

namespace {

void
ellipsoidsScalar(TileSoA &soa, const AnalyticModelParams &params)
{
    const AnalyticDiscriminationModel model(params);
    const double *px = soa.lane(kPx);
    const double *py = soa.lane(kPy);
    const double *pz = soa.lane(kPz);
    const double *ecc = soa.lane(kEcc);
    double *cx = soa.lane(kCx);
    double *cy = soa.lane(kCy);
    double *cz = soa.lane(kCz);
    double *ax = soa.lane(kAx);
    double *ay = soa.lane(kAy);
    double *az = soa.lane(kAz);
    for (std::size_t i = 0; i < soa.n; ++i) {
        // Same call the legacy computeEllipsoids makes: the pixel is
        // clamped before entering the model, which puts ellipsoidFor on
        // its single-DKL-transform branch.
        const Ellipsoid e = model.ellipsoidFor(
            Vec3(px[i], py[i], pz[i]).clamped(0.0, 1.0), ecc[i]);
        cx[i] = e.centerDkl.x;
        cy[i] = e.centerDkl.y;
        cz[i] = e.centerDkl.z;
        ax[i] = e.semiAxes.x;
        ay[i] = e.semiAxes.y;
        az[i] = e.semiAxes.z;
    }
}

void
extremaBothScalar(TileSoA &soa)
{
    const double *cx = soa.lane(kCx);
    const double *cy = soa.lane(kCy);
    const double *cz = soa.lane(kCz);
    const double *ax = soa.lane(kAx);
    const double *ay = soa.lane(kAy);
    const double *az = soa.lane(kAz);
    double *rhx = soa.lane(kRedHighX);
    double *rhy = soa.lane(kRedHighY);
    double *rhz = soa.lane(kRedHighZ);
    double *rlx = soa.lane(kRedLowX);
    double *rly = soa.lane(kRedLowY);
    double *rlz = soa.lane(kRedLowZ);
    double *bhx = soa.lane(kBlueHighX);
    double *bhy = soa.lane(kBlueHighY);
    double *bhz = soa.lane(kBlueHighZ);
    double *blx = soa.lane(kBlueLowX);
    double *bly = soa.lane(kBlueLowY);
    double *blz = soa.lane(kBlueLowZ);
    for (std::size_t i = 0; i < soa.n; ++i) {
        Ellipsoid e;
        e.centerDkl = Vec3(cx[i], cy[i], cz[i]);
        e.semiAxes = Vec3(ax[i], ay[i], az[i]);
        ExtremaPair red;
        ExtremaPair blue;
        extremaBothAxes(e, red, blue);
        rhx[i] = red.high.x;
        rhy[i] = red.high.y;
        rhz[i] = red.high.z;
        rlx[i] = red.low.x;
        rly[i] = red.low.y;
        rlz[i] = red.low.z;
        bhx[i] = blue.high.x;
        bhy[i] = blue.high.y;
        bhz[i] = blue.high.z;
        blx[i] = blue.low.x;
        bly[i] = blue.low.y;
        blz[i] = blue.low.z;
    }
}

int
moveAxisScalar(TileSoA &soa, int axis, bool collapse, double target_c2,
               double lh, double hl)
{
    const bool red = axis == 0;
    const double *px = soa.lane(kPx);
    const double *py = soa.lane(kPy);
    const double *pz = soa.lane(kPz);
    const double *hx = soa.lane(red ? kRedHighX : kBlueHighX);
    const double *hy = soa.lane(red ? kRedHighY : kBlueHighY);
    const double *hz = soa.lane(red ? kRedHighZ : kBlueHighZ);
    const double *lx = soa.lane(red ? kRedLowX : kBlueLowX);
    const double *ly = soa.lane(red ? kRedLowY : kBlueLowY);
    const double *lz = soa.lane(red ? kRedLowZ : kBlueLowZ);
    double *ox = soa.lane(red ? kOutRedX : kOutBlueX);
    double *oy = soa.lane(red ? kOutRedY : kOutBlueY);
    double *oz = soa.lane(red ? kOutRedZ : kOutBlueZ);

    int gamut_clamped = 0;
    for (std::size_t i = 0; i < soa.n; ++i) {
        const Vec3 p(px[i], py[i], pz[i]);
        const double target =
            collapse ? target_c2 : std::clamp(p[axis], lh, hl);

        const Vec3 v = Vec3(hx[i], hy[i], hz[i]) -
                       Vec3(lx[i], ly[i], lz[i]);
        Vec3 adjusted;
        if (v[axis] == 0.0) {
            adjusted = p;  // degenerate: no mobility along this axis
        } else {
            const double t = (target - p[axis]) / v[axis];
            const Vec3 cand = p + v * t;
            if (cand.x > 0.0 && cand.x < 1.0 && cand.y > 0.0 &&
                cand.y < 1.0 && cand.z > 0.0 && cand.z < 1.0) {
                adjusted = cand;
            } else {
                const double t_gamut = clampMovementToGamut(p, v, t);
                if (t_gamut != t)
                    ++gamut_clamped;
                adjusted = p + v * t_gamut;
            }
        }
        ox[i] = adjusted.x;
        oy[i] = adjusted.y;
        oz[i] = adjusted.z;
    }
    return gamut_clamped;
}

} // namespace

std::size_t
tileCostScalar(const TileSoA &soa, int axis)
{
    const bool red = axis == 0;
    const double *ox = soa.lane(red ? kOutRedX : kOutBlueX);
    const double *oy = soa.lane(red ? kOutRedY : kOutBlueY);
    const double *oz = soa.lane(red ? kOutRedZ : kOutBlueZ);

    // bdTileBitsFromCodes over linearToSrgb8 of each channel, with the
    // min/max reduction fused in instead of a materialized code buffer.
    std::size_t bits = 3 * (kBdWidthFieldBits + kBdBaseBits);
    if (soa.n == 0)
        return bits;
    uint8_t lo[3] = {255, 255, 255};
    uint8_t hi[3] = {0, 0, 0};
    for (std::size_t i = 0; i < soa.n; ++i) {
        const uint8_t c[3] = {linearToSrgb8(ox[i]),
                              linearToSrgb8(oy[i]),
                              linearToSrgb8(oz[i])};
        for (int k = 0; k < 3; ++k) {
            lo[k] = std::min(lo[k], c[k]);
            hi[k] = std::max(hi[k], c[k]);
        }
    }
    for (int k = 0; k < 3; ++k)
        bits += soa.n * bdDeltaWidth(lo[k], hi[k]);
    return bits;
}

void
bdTileMinMaxScalar(const uint8_t *rows, std::size_t stride, int width,
                   int height, const uint8_t *, uint8_t lo[3],
                   uint8_t hi[3])
{
    lo[0] = lo[1] = lo[2] = 255;
    hi[0] = hi[1] = hi[2] = 0;
    for (int y = 0; y < height; ++y) {
        const uint8_t *p = rows + static_cast<std::size_t>(y) * stride;
        for (int x = 0; x < width; ++x) {
            for (int c = 0; c < 3; ++c) {
                const uint8_t v = p[3 * x + c];
                lo[c] = std::min(lo[c], v);
                hi[c] = std::max(hi[c], v);
            }
        }
    }
}

const TileKernels &
scalarTileKernels()
{
    static const TileKernels k{ellipsoidsScalar, extremaBothScalar,
                               moveAxisScalar, tileCostScalar,
                               bdTileMinMaxScalar};
    return k;
}

} // namespace pce::simd
