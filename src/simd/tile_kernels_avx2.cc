/**
 * @file
 * AVX2 kernels of the tile adjust datapath: 4 pixels per instruction.
 *
 * Bit-identity with the scalar reference (tile_kernels_scalar.cc) is a
 * hard contract, enforced by tests/simd with exact equality. The rules
 * that make it hold:
 *
 *  - Every arithmetic step mirrors the scalar code's exact operation
 *    sequence and association. Vector add/sub/mul/div/sqrt are
 *    IEEE-754-exact per element, so identical sequences give identical
 *    bits. This TU is compiled with -ffp-contract=off (and intrinsics
 *    are never contracted anyway), so no FMA can reassociate a rounding
 *    step the scalar build performed in two.
 *  - min/max/clamp are NOT the minpd/maxpd instructions (whose NaN and
 *    +/-0 semantics differ from std::min/std::max): they are
 *    compare+blend sequences mirroring the exact ternaries of the
 *    scalar code, including NaN fall-through.
 *  - Branches become masks: each lane computes every path and blends in
 *    the scalar code's priority order (degenerate overrides in-gamut
 *    overrides the gamut-clamped path).
 *
 * The kernels run over the full padded stride of each lane (TileSoA
 * zero-fills input padding, which keeps the spare slots' math benign);
 * anything *observable* — the degenerate-ellipsoid check and the
 * gamut-clamp count — is masked to the valid n lanes.
 */

#include "simd/tile_kernels.hh"

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "bd/bd_codec.hh"
#include "color/dkl.hh"
#include "color/srgb.hh"
#include "perception/discrimination.hh"

namespace pce::simd {

namespace {

using d4 = __m256d;

inline d4
load(const double *p)
{
    return _mm256_loadu_pd(p);
}

inline void
store(double *p, d4 v)
{
    _mm256_storeu_pd(p, v);
}

inline d4
bc(double v)
{
    return _mm256_set1_pd(v);
}

/** mask ? b : a (blendv selects b where the mask lane is all-ones). */
inline d4
sel(d4 a, d4 b, d4 mask)
{
    return _mm256_blendv_pd(a, b, mask);
}

/** Mirror of std::min(a, b) = (b < a) ? b : a. */
inline d4
minStd(d4 a, d4 b)
{
    return sel(a, b, _mm256_cmp_pd(b, a, _CMP_LT_OQ));
}

/** Mirror of std::max(a, b) = (a < b) ? b : a. */
inline d4
maxStd(d4 a, d4 b)
{
    return sel(a, b, _mm256_cmp_pd(a, b, _CMP_LT_OQ));
}

/** Mirror of v < lo ? lo : (v > hi ? hi : v), NaN passing through. */
inline d4
clampStd(d4 v, d4 lo, d4 hi)
{
    const d4 r = sel(v, hi, _mm256_cmp_pd(v, hi, _CMP_GT_OQ));
    return sel(r, lo, _mm256_cmp_pd(v, lo, _CMP_LT_OQ));
}

/** Mirror of std::abs (clear the sign bit). */
inline d4
absStd(d4 v)
{
    return _mm256_andnot_pd(bc(-0.0), v);
}

/**
 * Row r of the RGB->DKL matvec: ((m_r0 * x + m_r1 * y) + m_r2 * z),
 * the exact association of Vec3::dot.
 */
template <const Mat3 &M>
inline d4
matRow(int r, d4 x, d4 y, d4 z)
{
    return _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(bc(M(r, 0)), x),
                      _mm256_mul_pd(bc(M(r, 1)), y)),
        _mm256_mul_pd(bc(M(r, 2)), z));
}

void
ellipsoidsAvx2(TileSoA &soa, const AnalyticModelParams &params)
{
    const double *px = soa.lane(kPx);
    const double *py = soa.lane(kPy);
    const double *pz = soa.lane(kPz);
    const double *ec = soa.lane(kEcc);
    double *cx = soa.lane(kCx);
    double *cy = soa.lane(kCy);
    double *cz = soa.lane(kCz);
    double *ax = soa.lane(kAx);
    double *ay = soa.lane(kAy);
    double *az = soa.lane(kAz);

    const d4 zero = bc(0.0);
    const d4 one = bc(1.0);
    const d4 ecc_gain = bc(params.eccGain);
    const d4 weber_gain = bc(params.weberGain);
    const d4 lum_bias = bc(params.lumBias);
    const d4 lum_gain = bc(params.lumGain);
    const d4 global_scale = bc(params.globalScale);
    const d4 base[3] = {bc(params.base.x), bc(params.base.y),
                        bc(params.base.z)};
    const d4 inv_range[3] = {bc(kDklInvAxisRange[0]),
                             bc(kDklInvAxisRange[1]),
                             bc(kDklInvAxisRange[2])};

    for (std::size_t i = 0; i < soa.stride; i += kLaneWidth) {
        // Vec3::clamped(0, 1) on the raw pixel.
        const d4 r = clampStd(load(px + i), zero, one);
        const d4 g = clampStd(load(py + i), zero, one);
        const d4 b = clampStd(load(pz + i), zero, one);

        // rgbToDkl: the DKL center of the (in-gamut) pixel.
        const d4 dkl[3] = {matRow<kRgb2Dkl>(0, r, g, b),
                           matRow<kRgb2Dkl>(1, r, g, b),
                           matRow<kRgb2Dkl>(2, r, g, b)};

        // semiAxesWithDkl: std::max(0.0, ecc) = (0 < ecc) ? ecc : 0.
        const d4 e = load(ec + i);
        const d4 ecc = sel(zero, e, _mm256_cmp_pd(zero, e, _CMP_LT_OQ));
        const d4 ecc_scale =
            _mm256_add_pd(one, _mm256_mul_pd(ecc_gain, ecc));
        const d4 lum = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(bc(0.2126), r),
                          _mm256_mul_pd(bc(0.7152), g)),
            _mm256_mul_pd(bc(0.0722), b));
        const d4 lum_scale =
            _mm256_add_pd(lum_bias, _mm256_mul_pd(lum_gain, lum));
        const d4 common = _mm256_mul_pd(
            _mm256_mul_pd(lum_scale, ecc_scale), global_scale);

        double *out_c[3] = {cx + i, cy + i, cz + i};
        double *out_a[3] = {ax + i, ay + i, az + i};
        for (int k = 0; k < 3; ++k) {
            const d4 chroma =
                _mm256_mul_pd(absStd(dkl[k]), inv_range[k]);
            const d4 weber =
                _mm256_add_pd(one, _mm256_mul_pd(weber_gain, chroma));
            store(out_a[k],
                  _mm256_mul_pd(_mm256_mul_pd(base[k], weber), common));
            store(out_c[k], dkl[k]);
        }
    }
}

void
extremaBothAvx2(TileSoA &soa)
{
    const double *cx = soa.lane(kCx);
    const double *cy = soa.lane(kCy);
    const double *cz = soa.lane(kCz);
    const double *axp = soa.lane(kAx);
    const double *ayp = soa.lane(kAy);
    const double *azp = soa.lane(kAz);

    const d4 one = bc(1.0);
    const d4 zero = bc(0.0);

    for (std::size_t i = 0; i < soa.stride; i += kLaneWidth) {
        // buildExtremaFrame: sInv2 = 1 / s_k^2.
        const d4 sa[3] = {load(axp + i), load(ayp + i), load(azp + i)};
        d4 s_inv2[3];
        for (int k = 0; k < 3; ++k)
            s_inv2[k] = _mm256_div_pd(one, _mm256_mul_pd(sa[k], sa[k]));

        // q3 = M^T S M by its 6 unique entries, each
        // ((m0a*s0)*m0b + (m1a*s1)*m1b) + (m2a*s2)*m2b.
        d4 q[3][3];
        for (int a = 0; a < 3; ++a) {
            for (int b = a; b < 3; ++b) {
                const d4 t0 = _mm256_mul_pd(
                    _mm256_mul_pd(bc(kRgb2Dkl(0, a)), s_inv2[0]),
                    bc(kRgb2Dkl(0, b)));
                const d4 t1 = _mm256_mul_pd(
                    _mm256_mul_pd(bc(kRgb2Dkl(1, a)), s_inv2[1]),
                    bc(kRgb2Dkl(1, b)));
                const d4 t2 = _mm256_mul_pd(
                    _mm256_mul_pd(bc(kRgb2Dkl(2, a)), s_inv2[2]),
                    bc(kRgb2Dkl(2, b)));
                q[a][b] = _mm256_add_pd(_mm256_add_pd(t0, t1), t2);
                q[b][a] = q[a][b];
            }
        }

        // rgbCenter = M^-1 * centerDkl.
        const d4 c[3] = {load(cx + i), load(cy + i), load(cz + i)};
        const d4 rc[3] = {matRow<kDkl2Rgb>(0, c[0], c[1], c[2]),
                          matRow<kDkl2Rgb>(1, c[0], c[1], c[2]),
                          matRow<kDkl2Rgb>(2, c[0], c[1], c[2])};

        // extremaFromFrame for axis 0 (rows 1,2) and axis 2 (rows 0,1).
        const struct
        {
            int axis, a1, a2;
            Lane hx, hy, hz, lx, ly, lz;
        } passes[2] = {
            {0, 1, 2, kRedHighX, kRedHighY, kRedHighZ, kRedLowX,
             kRedLowY, kRedLowZ},
            {2, 0, 1, kBlueHighX, kBlueHighY, kBlueHighZ, kBlueLowX,
             kBlueLowY, kBlueLowZ},
        };
        for (const auto &p : passes) {
            // v = row(a1) x row(a2): each component (u*w' - w*u').
            const d4 *ra = q[p.a1];
            const d4 *rb = q[p.a2];
            const d4 v[3] = {
                _mm256_sub_pd(_mm256_mul_pd(ra[1], rb[2]),
                              _mm256_mul_pd(ra[2], rb[1])),
                _mm256_sub_pd(_mm256_mul_pd(ra[2], rb[0]),
                              _mm256_mul_pd(ra[0], rb[2])),
                _mm256_sub_pd(_mm256_mul_pd(ra[0], rb[1]),
                              _mm256_mul_pd(ra[1], rb[0])),
            };

            const d4 x[3] = {matRow<kRgb2Dkl>(0, v[0], v[1], v[2]),
                             matRow<kRgb2Dkl>(1, v[0], v[1], v[2]),
                             matRow<kRgb2Dkl>(2, v[0], v[1], v[2])};

            // denom = sqrt(((x0^2*s0 + x1^2*s1) + x2^2*s2)).
            const d4 denom = _mm256_sqrt_pd(_mm256_add_pd(
                _mm256_add_pd(
                    _mm256_mul_pd(_mm256_mul_pd(x[0], x[0]), s_inv2[0]),
                    _mm256_mul_pd(_mm256_mul_pd(x[1], x[1]),
                                  s_inv2[1])),
                _mm256_mul_pd(_mm256_mul_pd(x[2], x[2]), s_inv2[2])));

            // Degenerate check, masked to the valid lanes of this
            // block (padding lanes hold benign but meaningless data).
            int zero_mask = _mm256_movemask_pd(
                _mm256_cmp_pd(denom, zero, _CMP_EQ_OQ));
            if (i + kLaneWidth > soa.n)
                zero_mask &= (1 << (soa.n - i)) - 1;
            if (zero_mask != 0)
                throw std::domain_error(
                    "extremaAlongAxis: degenerate ellipsoid");

            const d4 inv = _mm256_div_pd(one, denom);
            const d4 xs[3] = {_mm256_mul_pd(x[0], inv),
                              _mm256_mul_pd(x[1], inv),
                              _mm256_mul_pd(x[2], inv)};
            const d4 step[3] = {matRow<kDkl2Rgb>(0, xs[0], xs[1], xs[2]),
                                matRow<kDkl2Rgb>(1, xs[0], xs[1], xs[2]),
                                matRow<kDkl2Rgb>(2, xs[0], xs[1],
                                                 xs[2])};

            d4 pp[3];
            d4 pm[3];
            for (int k = 0; k < 3; ++k) {
                pp[k] = _mm256_add_pd(rc[k], step[k]);
                pm[k] = _mm256_sub_pd(rc[k], step[k]);
            }
            // if (p_plus[axis] >= p_minus[axis]) high = p_plus; ...
            const d4 up =
                _mm256_cmp_pd(pp[p.axis], pm[p.axis], _CMP_GE_OQ);
            double *hi[3] = {soa.lane(p.hx) + i, soa.lane(p.hy) + i,
                             soa.lane(p.hz) + i};
            double *lo[3] = {soa.lane(p.lx) + i, soa.lane(p.ly) + i,
                             soa.lane(p.lz) + i};
            for (int k = 0; k < 3; ++k) {
                store(hi[k], sel(pm[k], pp[k], up));
                store(lo[k], sel(pp[k], pm[k], up));
            }
        }
    }
}

int
moveAxisAvx2(TileSoA &soa, int axis, bool collapse, double target_c2,
             double lh, double hl)
{
    const bool red = axis == 0;
    const double *pl[3] = {soa.lane(kPx), soa.lane(kPy), soa.lane(kPz)};
    const double *hx = soa.lane(red ? kRedHighX : kBlueHighX);
    const double *hy = soa.lane(red ? kRedHighY : kBlueHighY);
    const double *hz = soa.lane(red ? kRedHighZ : kBlueHighZ);
    const double *lx = soa.lane(red ? kRedLowX : kBlueLowX);
    const double *ly = soa.lane(red ? kRedLowY : kBlueLowY);
    const double *lz = soa.lane(red ? kRedLowZ : kBlueLowZ);
    double *ox = soa.lane(red ? kOutRedX : kOutBlueX);
    double *oy = soa.lane(red ? kOutRedY : kOutBlueY);
    double *oz = soa.lane(red ? kOutRedZ : kOutBlueZ);

    const d4 zero = bc(0.0);
    const d4 one = bc(1.0);
    const d4 vlh = bc(lh);
    const d4 vhl = bc(hl);
    const d4 vtarget = bc(target_c2);

    int gamut_clamped = 0;
    for (std::size_t i = 0; i < soa.stride; i += kLaneWidth) {
        const d4 p[3] = {load(pl[0] + i), load(pl[1] + i),
                         load(pl[2] + i)};
        const d4 v[3] = {_mm256_sub_pd(load(hx + i), load(lx + i)),
                         _mm256_sub_pd(load(hy + i), load(ly + i)),
                         _mm256_sub_pd(load(hz + i), load(lz + i))};
        const d4 pax = p[axis];
        const d4 vax = v[axis];

        const d4 target =
            collapse ? vtarget : clampStd(pax, vlh, vhl);

        const d4 degenerate = _mm256_cmp_pd(vax, zero, _CMP_EQ_OQ);
        const d4 t = _mm256_div_pd(_mm256_sub_pd(target, pax), vax);

        // Division-free fast path: strictly in-gamut candidate.
        d4 cand[3];
        d4 in_gamut = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        for (int k = 0; k < 3; ++k) {
            cand[k] = _mm256_add_pd(p[k], _mm256_mul_pd(v[k], t));
            in_gamut = _mm256_and_pd(
                in_gamut, _mm256_cmp_pd(cand[k], zero, _CMP_GT_OQ));
            in_gamut = _mm256_and_pd(
                in_gamut, _mm256_cmp_pd(cand[k], one, _CMP_LT_OQ));
        }

        // Division-free fast path for the whole block: when every
        // valid lane is in-gamut or degenerate, the gamut clamp below
        // (6 divisions) is dead — exactly the per-pixel short-circuit
        // of the scalar code, taken 4 lanes at a time.
        const unsigned live =
            i + kLaneWidth > soa.n
                ? (1u << (soa.n - i)) - 1u
                : (1u << kLaneWidth) - 1u;
        const unsigned skip = static_cast<unsigned>(_mm256_movemask_pd(
            _mm256_or_pd(in_gamut, degenerate)));
        if ((skip & live) == live) {
            double *out_fast[3] = {ox + i, oy + i, oz + i};
            for (int k = 0; k < 3; ++k)
                store(out_fast[k], sel(cand[k], p[k], degenerate));
            continue;
        }

        // clampToGamut on every lane (blended away where unused).
        d4 tg = t;
        for (int k = 0; k < 3; ++k) {
            const d4 d = v[k];
            const d4 active = _mm256_cmp_pd(d, zero, _CMP_NEQ_OQ);
            const d4 t0 = _mm256_div_pd(_mm256_sub_pd(zero, p[k]), d);
            const d4 t1 = _mm256_div_pd(_mm256_sub_pd(one, p[k]), d);
            const d4 t_min = minStd(t0, t1);
            const d4 t_max = maxStd(t0, t1);
            tg = sel(tg, clampStd(tg, t_min, t_max), active);
        }

        // Count (valid, non-degenerate, out-of-gamut) lanes whose t
        // moved, exactly the scalar ++gamutClampedPixels condition.
        // NEQ_UQ, not NEQ_OQ: C++ `t_gamut != t` is true for NaN
        // operands (unordered compares are not-equal), and a NaN input
        // pixel must count identically at every dispatch level.
        const d4 moved = _mm256_cmp_pd(tg, t, _CMP_NEQ_UQ);
        int count_mask = _mm256_movemask_pd(_mm256_andnot_pd(
            degenerate,
            _mm256_andnot_pd(in_gamut, moved)));
        if (i + kLaneWidth > soa.n)
            count_mask &= (1 << (soa.n - i)) - 1;
        gamut_clamped += __builtin_popcount(
            static_cast<unsigned>(count_mask));

        double *out[3] = {ox + i, oy + i, oz + i};
        for (int k = 0; k < 3; ++k) {
            const d4 adj =
                _mm256_add_pd(p[k], _mm256_mul_pd(v[k], tg));
            d4 res = sel(adj, cand[k], in_gamut);
            res = sel(res, p[k], degenerate);
            store(out[k], res);
        }
    }
    return gamut_clamped;
}

/**
 * sRGB-quantize 4 lanes of one channel and fold them into the
 * channel's running min/max. Inlines the linearToSrgb8 lookup over the
 * same process-wide tables (bucket index, base code, one exact
 * threshold compare), so the codes are bit-identical by construction;
 * the bucket scaling and boundary tests run vectorized, the two
 * byte/double table reads per lane stay scalar. @p valid masks the
 * padded lanes of the last block out of the reduction.
 */
inline void
quantizeBlock(const SrgbForwardTableView &t, const double *src,
              std::size_t i, unsigned valid, int &lo, int &hi)
{
    const d4 x = load(src + i);
    const d4 gt0 = _mm256_cmp_pd(x, bc(0.0), _CMP_GT_OQ);
    const d4 lt1 = _mm256_cmp_pd(x, bc(1.0), _CMP_LT_OQ);
    const d4 in01 = _mm256_and_pd(gt0, lt1);
    // Safe in-range stand-in for out-of-range/NaN lanes so the bucket
    // index never leaves the table; those lanes are overridden below.
    const d4 safe = sel(bc(0.5), x, in01);
    const __m128i idx = _mm256_cvttpd_epi32(
        _mm256_mul_pd(safe, bc(static_cast<double>(t.buckets))));

    alignas(16) int32_t idx_s[4];
    _mm_store_si128(reinterpret_cast<__m128i *>(idx_s), idx);
    alignas(32) double x_s[4];
    _mm256_store_pd(x_s, x);
    const unsigned m_gt0 =
        static_cast<unsigned>(_mm256_movemask_pd(gt0));
    const unsigned m_lt1 =
        static_cast<unsigned>(_mm256_movemask_pd(lt1));

    for (unsigned k = 0; k < valid; ++k) {
        int c;
        if (!((m_gt0 >> k) & 1u)) {
            c = 0;          // !(x > 0), NaN included
        } else if (!((m_lt1 >> k) & 1u)) {
            c = 255;        // x >= 1
        } else {
            c = t.bucketCode[idx_s[k]];
            c += x_s[k] >= t.codeMin[c + 1];
        }
        lo = std::min(lo, c);
        hi = std::max(hi, c);
    }
}

std::size_t
tileCostAvx2(const TileSoA &soa, int axis)
{
    std::size_t bits = 3 * (kBdWidthFieldBits + kBdBaseBits);
    if (soa.n == 0)
        return bits;
    const bool red = axis == 0;
    const double *src[3] = {
        soa.lane(red ? kOutRedX : kOutBlueX),
        soa.lane(red ? kOutRedY : kOutBlueY),
        soa.lane(red ? kOutRedZ : kOutBlueZ),
    };
    const SrgbForwardTableView t = srgbForwardTable();
    for (int ch = 0; ch < 3; ++ch) {
        int lo = 255;
        int hi = 0;
        for (std::size_t i = 0; i < soa.stride; i += kLaneWidth) {
            const unsigned valid =
                i + kLaneWidth > soa.n
                    ? static_cast<unsigned>(soa.n - i)
                    : static_cast<unsigned>(kLaneWidth);
            quantizeBlock(t, src[ch], i, valid, lo, hi);
        }
        bits += soa.n * bdDeltaWidth(static_cast<uint8_t>(lo),
                                     static_cast<uint8_t>(hi));
    }
    return bits;
}

/**
 * BD stats pass: per-channel min/max over one tile's interleaved RGB
 * rows, 32 bytes per op. Channel separation without a deinterleave:
 * every vector load starts at a byte offset that is a multiple of 3
 * within its row (full loads advance by 30, not 32), so byte lane j of
 * every accumulated vector always holds channel j % 3 — the overlap
 * bytes are re-accumulated, which min/max absorbs. Every row has the
 * same split into full loads plus one sub-32-byte tail, so the tail's
 * byte mask is built once per tile; tail lanes outside the tile are
 * forced to the reduction's neutral element with one OR/AND. The tail
 * load reads a full 32-byte window, so rows where that window would
 * cross the end of the image buffer fall back to a scalar tail (only
 * ever the buffer's last rows). The accumulated vector collapses to
 * the three channels with a period-3 alignr fold instead of 32 scalar
 * steps. Min/max over integers is order-independent, so the result is
 * trivially bit-identical to the scalar kernel.
 */
void
bdTileMinMaxAvx2(const uint8_t *rows, std::size_t stride, int width,
                 int height, const uint8_t *end, uint8_t lo[3],
                 uint8_t hi[3])
{
    lo[0] = lo[1] = lo[2] = 255;
    hi[0] = hi[1] = hi[2] = 0;
    const std::size_t row_bytes = static_cast<std::size_t>(width) * 3;
    const __m256i ones = _mm256_set1_epi8(static_cast<char>(0xff));
    const __m256i zero = _mm256_setzero_si256();
    // Rows split identically: full loads at 0, 30, ... then one tail
    // of rem in [2, 32) bytes (row_bytes is a positive multiple of 3).
    const std::size_t tail_off =
        row_bytes >= 32 ? ((row_bytes - 32) / 30 + 1) * 30 : 0;
    const std::size_t rem = row_bytes - tail_off;
    const __m256i idx = _mm256_setr_epi8(
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17,
        18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31);
    const __m256i msk = _mm256_cmpgt_epi8(
        _mm256_set1_epi8(static_cast<char>(rem)), idx);
    const __m256i inv = _mm256_xor_si256(msk, ones);
    __m256i vmin = ones;
    __m256i vmax = zero;
    bool used_vec = false;
    for (int y = 0; y < height; ++y) {
        const uint8_t *p = rows + static_cast<std::size_t>(y) * stride;
        for (std::size_t off = 0; off < tail_off; off += 30) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + off));
            vmin = _mm256_min_epu8(vmin, v);
            vmax = _mm256_max_epu8(vmax, v);
        }
        if (p + tail_off + 32 <= end) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(p + tail_off));
            vmin = _mm256_min_epu8(vmin, _mm256_or_si256(v, inv));
            vmax = _mm256_max_epu8(vmax, _mm256_and_si256(v, msk));
        } else {
            for (std::size_t off = tail_off; off < row_bytes; ++off) {
                const uint8_t v = p[off];
                const int c = static_cast<int>(off % 3);
                lo[c] = std::min(lo[c], v);
                hi[c] = std::max(hi[c], v);
            }
        }
        used_vec = used_vec || tail_off > 0;
    }
    used_vec = used_vec ||
               rows + tail_off + 32 <= end;  // any row took the tail?
    if (height > 0 && used_vec) {
        // Collapse 32 period-3 lanes to 3 channels. The high half's
        // lane j holds channel (j + 1) % 3; shifting it up one byte
        // (neutral element entering at lane 0) realigns it with the
        // low half, dropping byte 31 — folded back scalar below. Three
        // period-3 shift+combine steps then pull every lane j = c + 3k
        // into lane c.
        const __m128i ones128 = _mm_set1_epi8(static_cast<char>(0xff));
        const __m128i zero128 = _mm_setzero_si128();
        __m128i mn = _mm_min_epu8(
            _mm256_castsi256_si128(vmin),
            _mm_alignr_epi8(_mm256_extracti128_si256(vmin, 1), ones128,
                            15));
        __m128i mx = _mm_max_epu8(
            _mm256_castsi256_si128(vmax),
            _mm_alignr_epi8(_mm256_extracti128_si256(vmax, 1), zero128,
                            15));
        mn = _mm_min_epu8(mn, _mm_alignr_epi8(ones128, mn, 3));
        mn = _mm_min_epu8(mn, _mm_alignr_epi8(ones128, mn, 6));
        mn = _mm_min_epu8(mn, _mm_alignr_epi8(ones128, mn, 12));
        mx = _mm_max_epu8(mx, _mm_alignr_epi8(zero128, mx, 3));
        mx = _mm_max_epu8(mx, _mm_alignr_epi8(zero128, mx, 6));
        mx = _mm_max_epu8(mx, _mm_alignr_epi8(zero128, mx, 12));
        alignas(16) uint8_t amin[16];
        alignas(16) uint8_t amax[16];
        _mm_store_si128(reinterpret_cast<__m128i *>(amin), mn);
        _mm_store_si128(reinterpret_cast<__m128i *>(amax), mx);
        for (int c = 0; c < 3; ++c) {
            lo[c] = std::min(lo[c], amin[c]);
            hi[c] = std::max(hi[c], amax[c]);
        }
        // Byte 31 (channel 31 % 3 == 1) fell off the realigning shift.
        const uint8_t b31min = static_cast<uint8_t>(
            _mm256_extract_epi8(vmin, 31));
        const uint8_t b31max = static_cast<uint8_t>(
            _mm256_extract_epi8(vmax, 31));
        lo[1] = std::min(lo[1], b31min);
        hi[1] = std::max(hi[1], b31max);
    }
}

} // namespace

const TileKernels &
avx2TileKernels()
{
    static const TileKernels k{ellipsoidsAvx2, extremaBothAvx2,
                               moveAxisAvx2, tileCostAvx2,
                               bdTileMinMaxAvx2};
    return k;
}

} // namespace pce::simd
