/**
 * @file
 * Runtime SIMD dispatch: CPUID detection plus the FOVE_SIMD override.
 *
 * The AVX2 TU is compiled with -mavx2 and therefore must never execute
 * on a CPU without AVX2; this TU (compiled for the baseline target)
 * owns the decision. PCE_HAVE_AVX2_KERNELS is defined by CMake when the
 * toolchain/target could build the AVX2 TU at all.
 */

#include "simd/tile_kernels.hh"

#include <string>

#include "common/env.hh"

namespace pce::simd {

const TileKernels &scalarTileKernels();
#ifdef PCE_HAVE_AVX2_KERNELS
const TileKernels &avx2TileKernels();
#endif

const char *
simdLevelName(SimdLevel level)
{
    return level == SimdLevel::Avx2 ? "avx2" : "scalar";
}

SimdLevel
detectedSimdLevel()
{
#ifdef PCE_HAVE_AVX2_KERNELS
    static const bool has_avx2 = __builtin_cpu_supports("avx2");
    if (has_avx2)
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

SimdLevel
activeSimdLevel()
{
    const std::string v = envString("FOVE_SIMD", "auto");
    if (v == "off" || v == "scalar" || v == "0")
        return SimdLevel::Scalar;
    // "avx2" and "auto" both resolve to the best detected level: an
    // explicit request is clamped to what the CPU supports rather than
    // crashing on an unsupported instruction.
    return detectedSimdLevel();
}

SimdLevel
effectiveSimdLevel(SimdLevel requested)
{
    if (requested == SimdLevel::Avx2 &&
        detectedSimdLevel() == SimdLevel::Avx2)
        return SimdLevel::Avx2;
    return SimdLevel::Scalar;
}

const TileKernels &
tileKernels(SimdLevel level)
{
#ifdef PCE_HAVE_AVX2_KERNELS
    if (effectiveSimdLevel(level) == SimdLevel::Avx2)
        return avx2TileKernels();
#else
    (void)level;
#endif
    return scalarTileKernels();
}

} // namespace pce::simd
