/**
 * @file
 * Deadline-driven frame reassembly with graceful foveal-priority
 * degradation.
 *
 * FrameReassembler is the receiver half of the delivery tier: packets
 * arrive in any order, duplicated, corrupted, or not at all, and at
 * the frame's deadline the caller takes whatever frame can be proven
 * correct. The acceptance ladder per datagram:
 *
 *   1. structural header parse (magic/version/length)  -> rejected
 *   2. CRC-32 over the whole datagram                  -> rejected
 *   3. session id check                                -> rejected
 *   4. already-finalized frame                         -> stale
 *   5. duplicate sequence / duplicate manifest         -> ignored
 *   6. per-packet prefix walk (BdCodec::walkTileRange) -> rejected,
 *      buffer bytes restored — a CRC-valid packet whose tile records
 *      are structurally inconsistent never marks tiles present
 *
 * Only step-6 survivors contribute tiles. Tile-data that outruns its
 * manifest is parked and replayed when the manifest lands (reorder
 * tolerance); a frame finalized without a manifest degrades whole.
 *
 * finalizeFrame is the deadline: present tile runs decode via the
 * prefix seek path (BdCodec::decodeTileRangeInto) straight into the
 * output image; each missing tile falls back to the previous finalized
 * frame's pixels (temporal hold) or, with no usable previous frame, a
 * flagged flat fill — and the FrameDeliveryReport says exactly which
 * tiles took which path, so a caller can distinguish "perfect", "stale
 * periphery", and "hole". Byte identity of a complete frame is proven
 * end-to-end by the manifest's whole-stream CRC-32, not assumed.
 *
 * Determinism: the reassembler is a pure function of the packet
 * sequence; no timers, no threads. Deadlines belong to the caller's
 * round loop (delivery.hh).
 */

#ifndef PCE_NET_REASSEMBLER_HH
#define PCE_NET_REASSEMBLER_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "bd/bd_codec.hh"
#include "image/image.hh"
#include "net/wire_format.hh"

namespace pce::net {

struct ReassemblerParams
{
    /** Expected session; datagrams for any other are rejected. */
    std::uint64_t sessionId = 0;
    /**
     * Verify the per-packet CRC-32 before anything else. On is the
     * product configuration; off exists solely as the baseline arm of
     * the fault-injection campaign (src/fault, net_packet surface),
     * which measures exactly what the CRC buys.
     */
    bool verifyCrc = true;
    /** Decompression-bomb guard on manifest geometry (see src/bd). */
    std::uint64_t maxPixels = kBdDefaultMaxDecodePixels;
};

/** Outcome of feeding one datagram to accept(). */
enum class AcceptResult : std::uint8_t
{
    Accepted,           ///< new data, tiles (or manifest) recorded
    Duplicate,          ///< already had this sequence; ignored
    Stale,              ///< frame already finalized; ignored
    RejectedCrc,        ///< CRC mismatch (bit flips in transit)
    RejectedSession,    ///< wrong session id
    RejectedMalformed,  ///< structural parse or prefix-walk failure
};

/** What finalizeFrame delivered, tile by tile. */
struct FrameDeliveryReport
{
    std::uint32_t streamId = 0;
    std::uint64_t frameId = 0;
    bool manifestReceived = false;
    std::size_t totalTiles = 0;
    /** Tiles decoded from received packets. */
    std::size_t deliveredTiles = 0;
    /** Missing tiles substituted from the previous finalized frame. */
    std::size_t fallbackTiles = 0;
    /** Missing tiles flat-filled (no usable previous frame). */
    std::size_t filledTiles = 0;
    /** Data packets the manifest promised (sequences 1..N). */
    std::size_t packetsExpected = 0;
    /** Distinct data packets accepted for this frame. */
    std::size_t packetsAccepted = 0;
    /** Duplicate datagrams observed for this frame. */
    std::size_t duplicatePackets = 0;
    /** Every promised packet arrived. */
    bool complete = false;
    /** complete and the reassembled stream's CRC-32 matches the
     *  manifest's — the end-to-end proof of lossless delivery. */
    bool byteIdentical = false;
    /** Per-tile delivery mask (totalTiles entries, 1 = from wire). */
    std::vector<std::uint8_t> tileDelivered;

    // ---- Sender-side rate-control state for the frame. Filled by
    //      deliverFrame (net/delivery.cc) after finalization, not by
    //      the reassembler; defaults describe a non-adaptive sender.
    /** The frame ran under a RateController-derived budget. */
    bool adaptiveRate = false;
    /** Congestion budget the frame's rounds spent, bytes per round
     *  (the policy constant when not adaptive). */
    std::size_t budgetBytesPerRound = 0;
    /** Controller's EWMA loss-rate estimate after this frame. */
    double estimatedLossRate = 0.0;
    /** Controller's EWMA delivery-RTT estimate, rounds. */
    double estimatedRttRounds = 0.0;
    /** Continuous foveal shed radius: tiles at eccentricities above
     *  this were shed before transmission. Infinity = nothing shed
     *  proactively (every packet admitted). */
    double cutoffEccDeg = std::numeric_limits<double>::infinity();
    /** Wire bytes of packets never transmitted (congestion shed). */
    std::size_t shedBytes = 0;
};

class FrameReassembler
{
  public:
    explicit FrameReassembler(const ReassemblerParams &params = {});

    /** Feed one datagram (see the acceptance ladder above). */
    AcceptResult accept(const std::uint8_t *data, std::size_t n);
    AcceptResult accept(const std::vector<std::uint8_t> &packet)
    { return accept(packet.data(), packet.size()); }

    /**
     * Sequence numbers the frame still needs — the NACK list. {0}
     * (the manifest) for a frame we know nothing about, empty for a
     * finalized frame. Without a manifest the data sequences cannot be
     * enumerated yet, so the list grows once the manifest lands.
     */
    std::vector<std::uint32_t> missingSequences(
        std::uint32_t stream_id, std::uint64_t frame_id) const;

    /** True when every promised packet of the frame has arrived. */
    bool frameComplete(std::uint32_t stream_id,
                       std::uint64_t frame_id) const;

    /**
     * Deadline: decode what is present, degrade what is not (see the
     * file comment), retire the frame (later packets are Stale), and
     * remember the output as the stream's fallback source. @p out is
     * sized to the frame geometry; a frame with no manifest leaves
     * @p out holding the previous finalized frame (whole-frame hold)
     * or untouched when there is none.
     */
    FrameDeliveryReport finalizeFrame(std::uint32_t stream_id,
                                      std::uint64_t frame_id,
                                      ImageU8 &out);

    // Receiver-lifetime accounting, across all frames and streams.
    std::size_t packetsAccepted() const { return accepted_; }
    std::size_t duplicatePackets() const { return duplicates_; }
    std::size_t rejectedCrc() const { return rejectedCrc_; }
    std::size_t rejectedSession() const { return rejectedSession_; }
    std::size_t rejectedMalformed() const { return rejectedMalformed_; }
    std::size_t stalePackets() const { return stale_; }
    /** Sum of every rejection class. */
    std::size_t rejectedPackets() const
    { return rejectedCrc_ + rejectedSession_ + rejectedMalformed_; }

  private:
    /** Per-in-flight-frame reassembly state. */
    struct FrameState
    {
        bool haveManifest = false;
        FrameManifest manifest;
        std::vector<std::uint8_t> buffer;  ///< full-stream bytes
        std::vector<TileRect> tiles;
        std::vector<std::uint8_t> tileHave;
        std::vector<std::uint8_t> seqHave;  ///< packetCount + 1 entries
        /** Accepted ranges: {tileBegin, tileCount, payloadBitBegin}. */
        struct Range
        {
            std::uint32_t tileBegin;
            std::uint32_t tileCount;
            std::uint64_t bitBegin;
        };
        std::vector<Range> ranges;
        std::size_t accepted = 0;
        std::size_t duplicates = 0;
        /** Tile-data parked until the manifest arrives. */
        std::vector<std::vector<std::uint8_t>> pending;
    };

    using FrameKey = std::pair<std::uint32_t, std::uint64_t>;

    AcceptResult processManifest(FrameState &st,
                                 const PacketHeader &header,
                                 const std::uint8_t *payload);
    AcceptResult processTileData(FrameState &st,
                                 const PacketHeader &header,
                                 const std::uint8_t *payload);

    ReassemblerParams params_;
    std::map<FrameKey, FrameState> frames_;
    std::map<std::uint32_t, std::set<std::uint64_t>> finalized_;
    /** Last finalized output per stream: the degradation source. */
    std::map<std::uint32_t, ImageU8> lastFinalized_;
    std::size_t accepted_ = 0;
    std::size_t duplicates_ = 0;
    std::size_t rejectedCrc_ = 0;
    std::size_t rejectedSession_ = 0;
    std::size_t rejectedMalformed_ = 0;
    std::size_t stale_ = 0;
};

} // namespace pce::net

#endif // PCE_NET_REASSEMBLER_HH
