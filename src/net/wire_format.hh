/**
 * @file
 * Wire format of the lossy-transport delivery tier.
 *
 * A BD frame crosses the network as one *manifest* packet plus a run
 * of *tile-data* packets, each a self-contained datagram: fixed
 * little-endian header, payload, and a CRC-32 (src/common/integrity)
 * over both. Tile-data payloads are byte slices of the frame's BD
 * bitstream cut on per-tile bit-offset prefix boundaries (src/bd's
 * walk), so every packet decodes independently of every other via the
 * prefix seek path — a lost packet degrades its tile range, never the
 * frame. The manifest carries the frame geometry and whole-stream
 * accounting (packet count, payload bits, stream bytes + CRC) the
 * receiver needs to size its reassembly buffer, rebuild the 8-byte BD
 * header, enumerate missing sequences for NACKs, and prove
 * byte-identical reassembly end to end.
 *
 * Integrity layering: the per-packet CRC-32 rejects transport bit
 * flips (guaranteed for 1-3 flips at MTU sizes — Hamming distance >= 4
 * below ~11 KB); the per-packet prefix walk rejects structurally
 * inconsistent tile ranges that a forged-but-CRC-valid packet could
 * smuggle; the manifest's whole-stream CRC-32 is the end-to-end
 * byte-identity proof once every packet has landed. Parsing never
 * trusts a length field before bounding it against the datagram.
 */

#ifndef PCE_NET_WIRE_FORMAT_HH
#define PCE_NET_WIRE_FORMAT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pce::net {

/** Datagram magic ("PCEP"), first field of every packet. */
inline constexpr std::uint32_t kPacketMagic = 0x50434550u;
/** Wire format version; receivers reject anything else. */
inline constexpr std::uint8_t kWireVersion = 1;
/** Serialized PacketHeader size, bytes (fixed, little-endian). */
inline constexpr std::size_t kPacketHeaderBytes = 56;
/** Serialized FrameManifest payload size, bytes. */
inline constexpr std::size_t kManifestPayloadBytes = 36;
/** PacketHeader::flags bit: this transmission is a retransmit. */
inline constexpr std::uint8_t kFlagRetransmit = 0x01;

enum class PacketType : std::uint8_t {
    Manifest = 0,  ///< per-frame metadata, always sequence 0
    TileData = 1,  ///< a tile-aligned slice of the BD bitstream
};

/**
 * Fixed per-packet header. Sequence 0 is the manifest; tile-data
 * packets number 1..packetCount in tile order, so a receiver holding
 * the manifest can enumerate exactly which sequences it is missing.
 */
struct PacketHeader
{
    std::uint64_t sessionId = 0;  ///< delivery session (rx rejects others)
    std::uint32_t streamId = 0;   ///< stream within the session
    std::uint64_t frameId = 0;    ///< frame within the stream
    std::uint32_t sequence = 0;   ///< packet within the frame (0 = manifest)
    PacketType type = PacketType::TileData;
    std::uint8_t flags = 0;       ///< kFlagRetransmit
    std::uint32_t tileBegin = 0;  ///< first tile covered (tile order)
    std::uint32_t tileCount = 0;  ///< tiles covered, contiguous
    /** BD payload bit offset of tileBegin's record (header-relative,
     *  i.e. excluding the 8-byte BD stream header). */
    std::uint64_t payloadBitBegin = 0;
    std::uint32_t payloadBytes = 0;  ///< payload length after the header
    /** CRC-32 over the whole datagram with this field zeroed. */
    std::uint32_t crc = 0;
};

/** Manifest payload: what the receiver needs to reassemble a frame. */
struct FrameManifest
{
    std::uint32_t width = 0;        ///< frame width, pixels
    std::uint32_t height = 0;       ///< frame height, pixels
    std::uint32_t tileSize = 0;     ///< BD tile edge
    std::uint32_t tileCount = 0;    ///< tiles in the frame's grid
    std::uint32_t packetCount = 0;  ///< tile-data packets (seq 1..N)
    std::uint64_t payloadBits = 0;  ///< total BD payload bits
    std::uint32_t streamBytes = 0;  ///< full BD stream size, bytes
    std::uint32_t streamCrc = 0;    ///< CRC-32 of the complete stream
};

/**
 * Serialize @p header + @p payload into one datagram, computing and
 * filling the CRC. @p header.payloadBytes is overwritten with
 * @p payload_bytes.
 */
std::vector<std::uint8_t> buildPacket(PacketHeader header,
                                      const std::uint8_t *payload,
                                      std::size_t payload_bytes);

/** buildPacket with a serialized FrameManifest as the payload. */
std::vector<std::uint8_t> buildManifestPacket(PacketHeader header,
                                              const FrameManifest &m);

/**
 * Parse and structurally validate a datagram's header: magic, version,
 * a known type, and a payloadBytes field that exactly matches the
 * datagram length. Returns false (out untouched on failure paths is
 * not guaranteed) instead of throwing — corrupt datagrams are routine
 * input for a receiver, not exceptional.
 */
bool parsePacketHeader(const std::uint8_t *data, std::size_t n,
                       PacketHeader &out);

/** Recompute the datagram CRC (header with crc zeroed + payload). */
std::uint32_t packetCrc(const std::uint8_t *data, std::size_t n);

/** True when the stored CRC matches the recomputed one. */
bool verifyPacketCrc(const std::uint8_t *data, std::size_t n);

/** Serialize a manifest into kManifestPayloadBytes at @p out. */
void serializeManifest(const FrameManifest &m, std::uint8_t *out);

/** Parse a manifest payload; false when @p n is not the exact size. */
bool parseManifestPayload(const std::uint8_t *payload, std::size_t n,
                          FrameManifest &out);

} // namespace pce::net

#endif // PCE_NET_WIRE_FORMAT_HH
