/**
 * @file
 * Deadline-driven delivery loop: the sender policy that ties the
 * packetizer, the lossy channel, and the reassembler together.
 *
 * deliverFrame runs one frame through a fixed number of NACK rounds:
 *
 *   round r:  transmit every eligible packet in foveal-priority order
 *             under the round's congestion budget
 *             -> channel.ready() delivers this round's arrivals
 *             -> receiver NACKs the still-missing sequences (the
 *                back-channel is modeled reliable)
 *             -> lost packets become eligible again after an
 *                exponential backoff (1, 2, 4, ... rounds)
 *
 * until either nothing is missing or the frame deadline
 * (deadlineRounds) expires — at which point the receiver finalizes
 * whatever it can prove and degrades the rest (reassembler.hh). The
 * QoS invariant this loop exists for: when bandwidth or the deadline
 * forces a choice, peripheral tiles are shed first, because the
 * foveal-first send order means foveal packets get their initial
 * transmission *and* every retransmission attempt before peripheral
 * packets see the budget.
 *
 * Determinism: rounds, not wall clock. The same stream, seed, and
 * policy replay the same delivery bit-for-bit, which is what makes
 * loss scenarios testable (lossy_channel.hh).
 *
 * DeliverySession composes this with the encode service: collectFor
 * bounds the wait for the encoder, so a stalled encode degrades that
 * frame (whole-frame temporal hold) instead of wedging the delivery
 * loop.
 */

#ifndef PCE_NET_DELIVERY_HH
#define PCE_NET_DELIVERY_HH

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include <optional>

#include "net/lossy_channel.hh"
#include "net/packetizer.hh"
#include "net/rate_control.hh"
#include "net/reassembler.hh"
#include "service/encode_service.hh"

namespace pce {
class EccentricityMap;
class ImageU8;
} // namespace pce

namespace pce::net {

/** Per-frame sender policy. */
struct SenderPolicy
{
    /** Datagram budget per packet, header included. */
    std::size_t mtuBytes = 1200;
    /**
     * Congestion budget: bytes the sender may put on the wire per
     * round. Foveal packets spend it first; what does not fit waits,
     * and what never fits before the deadline is shed. SIZE_MAX =
     * uncongested.
     */
    std::size_t budgetBytesPerRound = static_cast<std::size_t>(-1);
    /** Tiles at or below this eccentricity are the foveal region. */
    double fovealCutoffDeg = 5.0;
    /** NACK rounds before the frame is finalized as-is. */
    int deadlineRounds = 8;
    /** Retransmissions per packet beyond the initial send. */
    int maxRetransmitAttempts = 4;
    std::uint64_t sessionId = 0;
    std::uint32_t streamId = 0;
    /**
     * Adaptive rate control (net/rate_control.hh): DeliverySession
     * owns a persistent RateController tuned by `rateControl`, the
     * per-round budget is derived from delivery feedback instead of
     * `budgetBytesPerRound`, and shedding becomes the continuous
     * foveal cutoff. Free-standing deliverFrame callers opt in by
     * passing their own controller.
     */
    bool adaptiveRate = false;
    RateControlParams rateControl;
};

/** Everything one frame's delivery did, sender and receiver side. */
struct DeliveryReport
{
    /** Receiver-side outcome (finalizeFrame). */
    FrameDeliveryReport frame;
    /** Datagrams put on the wire, retransmissions included. */
    std::size_t packetsSent = 0;
    std::size_t bytesSent = 0;
    /** Of those, NACK-driven retransmissions. */
    std::size_t retransmittedPackets = 0;
    std::size_t retransmittedBytes = 0;
    /** Packets never transmitted at all (congestion shed). */
    std::size_t shedPackets = 0;
    /** Tiles those shed packets carried. */
    std::size_t shedTiles = 0;
    /** Wire bytes those shed packets would have cost. */
    std::size_t shedBytes = 0;
    /**
     * Smallest tile eccentricity among shed packets, degrees;
     * infinity when nothing was shed. Planned shedding starts at
     * frame.cutoffEccDeg and moves outward; when the loss estimate
     * underruns the channel, admitted packets can additionally
     * starve on retransmission pressure and shed *inside* the
     * cutoff. The invariants the soak harness holds this to: the
     * foveal region is never shed (foveal-first transmit order
     * spends the budget there first), and on frames without
     * retransmission pressure nothing inside the cutoff is shed.
     */
    double minShedEccDeg = std::numeric_limits<double>::infinity();
    /** NACK rounds the delivery used (<= deadlineRounds). */
    int roundsUsed = 0;
    /** Tiles within fovealCutoffDeg (0 without an eccentricity map). */
    std::size_t fovealTiles = 0;
    /** Of those, delivered from the wire. */
    std::size_t fovealDelivered = 0;
    /**
     * The QoS headline: the manifest arrived and every foveal tile was
     * delivered from the wire (vacuously requires manifestReceived;
     * with no eccentricity map there are no foveal tiles and this just
     * reports manifest arrival).
     */
    bool fovealIntact = false;
    /** DeliverySession only: the encoder missed its collect deadline. */
    bool encodeTimedOut = false;
};

/**
 * Deliver one encoded frame over @p channel into @p receiver (see the
 * file comment for the round loop), finalize it at the deadline, and
 * leave the degraded-or-perfect result in @p out. @p ecc (borrowed,
 * may be null) drives both the send priority and the foveal
 * accounting; its dimensions must match the encoded frame's.
 *
 * @p rate (borrowed, may be null) switches the frame to adaptive
 * rate control: the round budget comes from the controller, packets
 * beyond the continuous foveal cutoff are shed before transmission,
 * and the frame's feedback is folded back into the controller so the
 * next frame adapts. The controller's fields of the returned
 * report's `frame` record exactly what the frame ran under.
 */
DeliveryReport deliverFrame(const std::vector<std::uint8_t> &bd_stream,
                            std::uint64_t frame_id,
                            const EccentricityMap *ecc,
                            LossyChannel &channel,
                            FrameReassembler &receiver, ImageU8 &out,
                            const SenderPolicy &policy = {},
                            RateController *rate = nullptr);

/**
 * Per-stream delivery loop over an EncodeService stream: collect each
 * encoded frame with a deadline (collectFor) and deliver it through
 * one shared channel/receiver pair. An encode that misses its
 * deadline finalizes the frame id anyway — whole-frame temporal hold,
 * encodeTimedOut set — and the late result, collected on a later
 * call, delivers under the *next* frame id (late content, never a
 * wedged loop, never a dropped result). Frame ids are assigned here,
 * consecutively from 0.
 */
class DeliverySession
{
  public:
    /**
     * @p service and @p channel are borrowed and must outlive the
     * session; @p ecc may be null (no foveal prioritization). The
     * receiver is owned and configured from @p policy's session id.
     */
    DeliverySession(EncodeService &service, StreamHandle handle,
                    LossyChannel &channel,
                    const SenderPolicy &policy = {},
                    const EccentricityMap *ecc = nullptr);

    /** Submit a frame to the underlying encode stream. */
    void submit(const ImageF &frame)
    { service_.submit(handle_, frame); }

    /**
     * Collect the next encoded frame (waiting at most
     * @p encode_timeout) and deliver it. Rethrows what collectFor
     * throws for a ready-but-bad frame (encode error,
     * FrameQuarantined).
     */
    DeliveryReport deliverNext(ImageU8 &out,
                               std::chrono::milliseconds encode_timeout);

    /** Receiver-side lifetime counters. */
    const FrameReassembler &receiver() const { return receiver_; }
    /** Frame ids consumed so far (delivered or timed out). */
    std::uint64_t framesDelivered() const { return nextFrame_; }
    /** The session's persistent controller (null without
     *  SenderPolicy::adaptiveRate). */
    const RateController *rateController() const
    { return rate_ ? &*rate_ : nullptr; }

  private:
    EncodeService &service_;
    StreamHandle handle_;
    LossyChannel &channel_;
    SenderPolicy policy_;
    const EccentricityMap *ecc_;
    FrameReassembler receiver_;
    /** Persistent per-session AIMD state (adaptiveRate only). */
    std::optional<RateController> rate_;
    std::uint64_t nextFrame_ = 0;
};

} // namespace pce::net

#endif // PCE_NET_DELIVERY_HH
