#include "net/reassembler.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/integrity.hh"

namespace pce::net {

namespace {

/**
 * Parked tile-data packets per frame awaiting their manifest. Bounds
 * receiver memory against a sender (or attacker) that streams data
 * for a manifest that never comes; overflow rejects the newest packet
 * rather than evicting validated state.
 */
constexpr std::size_t kMaxPendingPackets = 4096;

/** Flat fill value for tiles with no fallback source (mid-gray). */
constexpr std::uint8_t kFillValue = 128;

} // namespace

FrameReassembler::FrameReassembler(const ReassemblerParams &params)
    : params_(params)
{}

AcceptResult
FrameReassembler::accept(const std::uint8_t *data, std::size_t n)
{
    PacketHeader header;
    if (!parsePacketHeader(data, n, header)) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    if (params_.verifyCrc && !verifyPacketCrc(data, n)) {
        ++rejectedCrc_;
        return AcceptResult::RejectedCrc;
    }
    if (header.sessionId != params_.sessionId) {
        ++rejectedSession_;
        return AcceptResult::RejectedSession;
    }
    const auto fin = finalized_.find(header.streamId);
    if (fin != finalized_.end() && fin->second.count(header.frameId)) {
        ++stale_;
        return AcceptResult::Stale;
    }
    FrameState &st = frames_[FrameKey{header.streamId, header.frameId}];
    const std::uint8_t *payload = data + kPacketHeaderBytes;
    if (header.type == PacketType::Manifest)
        return processManifest(st, header, payload);
    if (!st.haveManifest) {
        // Reorder tolerance: data outran its manifest. Park the raw
        // datagram (it already passed CRC + session) and replay it
        // when the manifest lands.
        if (st.pending.size() >= kMaxPendingPackets) {
            ++rejectedMalformed_;
            return AcceptResult::RejectedMalformed;
        }
        st.pending.emplace_back(data, data + n);
        return AcceptResult::Accepted;
    }
    return processTileData(st, header, payload);
}

AcceptResult
FrameReassembler::processManifest(FrameState &st,
                                  const PacketHeader &header,
                                  const std::uint8_t *payload)
{
    FrameManifest m;
    if (!parseManifestPayload(payload, header.payloadBytes, m)) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    if (st.haveManifest) {
        ++st.duplicates;
        ++duplicates_;
        return AcceptResult::Duplicate;
    }
    if (m.tileCount == 0) {
        // Zero-tile frame: legal but empty — nothing follows it.
        if (m.packetCount != 0 || m.payloadBits != 0) {
            ++rejectedMalformed_;
            return AcceptResult::RejectedMalformed;
        }
        st.manifest = m;
        st.haveManifest = true;
        st.seqHave.assign(1, 1);
        st.pending.clear();
        ++accepted_;
        return AcceptResult::Accepted;
    }
    // Geometry and accounting must be self-consistent before a single
    // buffer byte is allocated from attacker-influenced fields.
    if (m.width == 0 || m.width > 0xFFFF || m.height == 0 ||
        m.height > 0xFFFF || m.tileSize == 0 || m.tileSize > 255) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    if (static_cast<std::uint64_t>(m.width) * m.height >
        params_.maxPixels) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    if (m.packetCount < 1 || m.packetCount > m.tileCount) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    if (m.streamBytes !=
        (kBdStreamHeaderBits + m.payloadBits + 7) / 8) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    std::vector<TileRect> tiles =
        tileGrid(static_cast<int>(m.width), static_cast<int>(m.height),
                 static_cast<int>(m.tileSize));
    if (tiles.size() != m.tileCount) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    st.manifest = m;
    st.haveManifest = true;
    st.tiles = std::move(tiles);
    st.buffer.assign(m.streamBytes, 0);
    bdWriteStreamHeader(st.buffer.data(), static_cast<int>(m.width),
                        static_cast<int>(m.height),
                        static_cast<int>(m.tileSize));
    st.tileHave.assign(m.tileCount, 0);
    st.seqHave.assign(m.packetCount + 1, 0);
    st.seqHave[0] = 1;
    ++accepted_;

    // Replay everything that was parked waiting for this manifest.
    std::vector<std::vector<std::uint8_t>> pending =
        std::move(st.pending);
    st.pending.clear();
    for (const std::vector<std::uint8_t> &pkt : pending) {
        PacketHeader ph;
        if (parsePacketHeader(pkt.data(), pkt.size(), ph))
            processTileData(st, ph, pkt.data() + kPacketHeaderBytes);
    }
    return AcceptResult::Accepted;
}

AcceptResult
FrameReassembler::processTileData(FrameState &st,
                                  const PacketHeader &header,
                                  const std::uint8_t *payload)
{
    const FrameManifest &m = st.manifest;
    if (header.sequence == 0 || header.sequence > m.packetCount) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    if (st.seqHave[header.sequence]) {
        ++st.duplicates;
        ++duplicates_;
        return AcceptResult::Duplicate;
    }
    if (header.tileCount < 1 ||
        static_cast<std::uint64_t>(header.tileBegin) +
                header.tileCount >
            m.tileCount ||
        header.payloadBitBegin > m.payloadBits ||
        header.payloadBytes < 1) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    const std::size_t start_byte = static_cast<std::size_t>(
        (kBdStreamHeaderBits + header.payloadBitBegin) / 8);
    if (start_byte + header.payloadBytes > st.buffer.size()) {
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    // Splice the slice in, then prove it: the per-packet prefix walk
    // must validate every covered record and land the range's end bit
    // exactly on the packet's byte span. Failure restores the previous
    // bytes — a bad packet must not damage a neighbor's shared
    // boundary byte.
    std::vector<std::uint8_t> saved(
        st.buffer.begin() + static_cast<std::ptrdiff_t>(start_byte),
        st.buffer.begin() +
            static_cast<std::ptrdiff_t>(start_byte +
                                        header.payloadBytes));
    std::copy(payload, payload + header.payloadBytes,
              st.buffer.begin() +
                  static_cast<std::ptrdiff_t>(start_byte));
    bool ok = false;
    std::uint64_t end_bit = 0;
    try {
        end_bit = BdCodec::walkTileRange(
            st.buffer.data(), st.buffer.size(), st.tiles,
            header.tileBegin, header.tileBegin + header.tileCount,
            header.payloadBitBegin);
        const std::size_t end_byte = static_cast<std::size_t>(
            (kBdStreamHeaderBits + end_bit + 7) / 8);
        ok = end_bit <= m.payloadBits &&
             end_byte - start_byte == header.payloadBytes;
    } catch (const std::runtime_error &) {
        ok = false;
    }
    if (!ok) {
        std::copy(saved.begin(), saved.end(),
                  st.buffer.begin() +
                      static_cast<std::ptrdiff_t>(start_byte));
        ++rejectedMalformed_;
        return AcceptResult::RejectedMalformed;
    }
    st.seqHave[header.sequence] = 1;
    std::fill(st.tileHave.begin() + header.tileBegin,
              st.tileHave.begin() + header.tileBegin + header.tileCount,
              std::uint8_t(1));
    st.ranges.push_back(FrameState::Range{header.tileBegin,
                                          header.tileCount,
                                          header.payloadBitBegin});
    ++st.accepted;
    ++accepted_;
    return AcceptResult::Accepted;
}

std::vector<std::uint32_t>
FrameReassembler::missingSequences(std::uint32_t stream_id,
                                   std::uint64_t frame_id) const
{
    const auto fin = finalized_.find(stream_id);
    if (fin != finalized_.end() && fin->second.count(frame_id))
        return {};
    const auto it = frames_.find(FrameKey{stream_id, frame_id});
    if (it == frames_.end() || !it->second.haveManifest)
        return {0};  // everything starts with the manifest
    const FrameState &st = it->second;
    std::vector<std::uint32_t> missing;
    for (std::uint32_t seq = 1; seq <= st.manifest.packetCount; ++seq)
        if (!st.seqHave[seq])
            missing.push_back(seq);
    return missing;
}

bool
FrameReassembler::frameComplete(std::uint32_t stream_id,
                                std::uint64_t frame_id) const
{
    const auto it = frames_.find(FrameKey{stream_id, frame_id});
    if (it == frames_.end() || !it->second.haveManifest)
        return false;
    return it->second.accepted == it->second.manifest.packetCount;
}

FrameDeliveryReport
FrameReassembler::finalizeFrame(std::uint32_t stream_id,
                                std::uint64_t frame_id, ImageU8 &out)
{
    FrameDeliveryReport rep;
    rep.streamId = stream_id;
    rep.frameId = frame_id;
    finalized_[stream_id].insert(frame_id);

    const auto it = frames_.find(FrameKey{stream_id, frame_id});
    if (it == frames_.end() || !it->second.haveManifest) {
        // Nothing decodable arrived: whole-frame temporal hold.
        const auto prev = lastFinalized_.find(stream_id);
        if (prev != lastFinalized_.end() &&
            prev->second.width() > 0)
            out = prev->second;
        if (it != frames_.end())
            frames_.erase(it);
        return rep;
    }

    FrameState &st = it->second;
    const FrameManifest &m = st.manifest;
    rep.manifestReceived = true;
    rep.totalTiles = m.tileCount;
    rep.packetsExpected = m.packetCount;
    rep.packetsAccepted = st.accepted;
    rep.duplicatePackets = st.duplicates;
    rep.complete = st.accepted == m.packetCount;

    if (m.tileCount == 0) {
        out = ImageU8();
        rep.byteIdentical = rep.complete;
        frames_.erase(it);
        return rep;
    }

    if (out.width() != static_cast<int>(m.width) ||
        out.height() != static_cast<int>(m.height))
        out = ImageU8(static_cast<int>(m.width),
                      static_cast<int>(m.height));

    // Present tiles: prefix-seek decode per accepted range.
    for (const FrameState::Range &r : st.ranges)
        BdCodec::decodeTileRangeInto(st.buffer.data(),
                                     st.buffer.size(), st.tiles,
                                     r.tileBegin,
                                     r.tileBegin + r.tileCount,
                                     r.bitBegin, out);

    // Missing tiles: previous finalized frame if the geometry still
    // matches (temporal hold), else the flagged flat fill.
    const auto prev = lastFinalized_.find(stream_id);
    const ImageU8 *hold = nullptr;
    if (prev != lastFinalized_.end() &&
        prev->second.width() == out.width() &&
        prev->second.height() == out.height())
        hold = &prev->second;
    for (std::size_t t = 0; t < st.tiles.size(); ++t) {
        if (st.tileHave[t]) {
            ++rep.deliveredTiles;
            continue;
        }
        const TileRect &rect = st.tiles[t];
        for (int y = rect.y0; y < rect.y0 + rect.h; ++y) {
            std::uint8_t *row = out.pixel(rect.x0, y);
            if (hold) {
                const std::uint8_t *src = hold->pixel(rect.x0, y);
                std::copy(src, src + 3 * rect.w, row);
            } else {
                std::fill(row, row + 3 * rect.w, kFillValue);
            }
        }
        if (hold)
            ++rep.fallbackTiles;
        else
            ++rep.filledTiles;
    }
    rep.byteIdentical =
        rep.complete &&
        crc32(st.buffer.data(), st.buffer.size()) == m.streamCrc;
    rep.tileDelivered.assign(st.tileHave.begin(), st.tileHave.end());

    lastFinalized_[stream_id] = out;
    frames_.erase(it);
    return rep;
}

} // namespace pce::net
