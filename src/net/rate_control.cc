#include "net/rate_control.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pce::net {

namespace {

void
validateParams(const RateControlParams &p)
{
    if (p.minBudgetBytesPerRound == 0)
        throw std::invalid_argument(
            "RateControlParams: minBudgetBytesPerRound must be > 0");
    if (p.maxBudgetBytesPerRound < p.minBudgetBytesPerRound)
        throw std::invalid_argument(
            "RateControlParams: maxBudgetBytesPerRound < "
            "minBudgetBytesPerRound");
    if (!(p.multiplicativeDecrease > 0.0) ||
        !(p.multiplicativeDecrease < 1.0))
        throw std::invalid_argument(
            "RateControlParams: multiplicativeDecrease must be in "
            "(0, 1)");
    if (!(p.lossAlpha > 0.0) || p.lossAlpha > 1.0 ||
        !(p.rttAlpha > 0.0) || p.rttAlpha > 1.0)
        throw std::invalid_argument(
            "RateControlParams: EWMA alphas must be in (0, 1]");
    if (p.idleResetFrames < 1)
        throw std::invalid_argument(
            "RateControlParams: idleResetFrames must be >= 1");
    if (!(p.minCapacityDerate > 0.0) || p.minCapacityDerate > 1.0)
        throw std::invalid_argument(
            "RateControlParams: minCapacityDerate must be in (0, 1]");
}

/** Per-frame loss sample: losses the NACK loop observed (every
 *  retransmission answers a loss) plus the losses it never recovered,
 *  over everything put on the wire. */
double
lossSampleOf(const DeliveryFeedback &fb)
{
    if (fb.packetsSent == 0)
        return 0.0;
    const double losses =
        static_cast<double>(fb.retransmittedPackets +
                            fb.undeliveredAdmitted);
    return std::min(1.0, losses / static_cast<double>(fb.packetsSent));
}

} // namespace

RateEstimator::RateEstimator(const RateControlParams &params)
    : params_(params)
{
    validateParams(params_);
}

void
RateEstimator::onFrame(const DeliveryFeedback &feedback)
{
    idleStreak_ = 0;
    const double loss = lossSampleOf(feedback);
    const double rtt =
        static_cast<double>(std::max(feedback.roundsUsed, 1));
    if (!warm_) {
        // First sample since reset: adopt it outright instead of
        // blending with the cold prior (faster convergence, and the
        // EWMA convergence tests get an exact geometric series).
        lossRate_ = loss;
        rttRounds_ = rtt;
        warm_ = true;
        return;
    }
    lossRate_ += params_.lossAlpha * (loss - lossRate_);
    rttRounds_ += params_.rttAlpha * (rtt - rttRounds_);
}

void
RateEstimator::onIdleFrame()
{
    if (++idleStreak_ >= params_.idleResetFrames)
        reset();
}

void
RateEstimator::reset()
{
    lossRate_ = 0.0;
    rttRounds_ = 1.0;
    warm_ = false;
    idleStreak_ = 0;
}

RateController::RateController(const RateControlParams &params)
    : params_(params), estimator_(params)
{
    initialBudget_ = params_.initialBudgetBytesPerRound == 0
                         ? params_.minBudgetBytesPerRound
                         : std::clamp(params_.initialBudgetBytesPerRound,
                                      params_.minBudgetBytesPerRound,
                                      params_.maxBudgetBytesPerRound);
    budget_ = initialBudget_;
}

void
RateController::onFrame(const DeliveryFeedback &feedback)
{
    estimator_.onFrame(feedback);
    const bool lossy =
        lossSampleOf(feedback) > params_.cleanLossThreshold;
    if (lossy) {
        const double shrunk = static_cast<double>(budget_) *
                              params_.multiplicativeDecrease;
        budget_ = std::max(params_.minBudgetBytesPerRound,
                           static_cast<std::size_t>(shrunk));
    } else {
        budget_ = std::min(params_.maxBudgetBytesPerRound,
                           budget_ + params_.additiveIncreaseBytes);
    }
}

void
RateController::onIdleFrame()
{
    const bool was_warm = estimator_.warm();
    estimator_.onIdleFrame();
    if (was_warm && !estimator_.warm())
        budget_ = initialBudget_;  // channel knowledge expired
}

void
RateController::reset()
{
    estimator_.reset();
    budget_ = initialBudget_;
}

FovealCutoff
continuousFovealCutoff(const PacketizedFrame &frame,
                       std::size_t budget_bytes_per_round,
                       int deadline_rounds,
                       double estimated_loss_rate,
                       const RateControlParams &params)
{
    const double derate =
        std::max(params.minCapacityDerate,
                 1.0 - std::clamp(estimated_loss_rate, 0.0, 1.0));
    const double rounds =
        static_cast<double>(std::max(deadline_rounds, 1));
    const double capacity =
        static_cast<double>(budget_bytes_per_round) * rounds * derate;

    FovealCutoff cut;
    double last_admitted_ecc = 0.0;
    for (std::size_t i = 0; i < frame.sendOrder.size(); ++i) {
        const Packet &pkt = frame.packets[frame.sendOrder[i]];
        const std::size_t bytes = pkt.bytes.size();
        // The manifest (i == 0) and the innermost data packet are
        // always admitted: a frame that ships nothing reassembles
        // nothing, which no budget is small enough to want.
        const bool floor_admit = i < 2;
        if (!floor_admit &&
            static_cast<double>(cut.admittedBytes + bytes) > capacity)
            break;
        ++cut.admittedPackets;
        cut.admittedBytes += bytes;
        last_admitted_ecc = std::max(last_admitted_ecc, pkt.minEccDeg);
    }
    cut.cutoffEccDeg =
        cut.admittedPackets == frame.sendOrder.size()
            ? std::numeric_limits<double>::infinity()
            : last_admitted_ecc;
    return cut;
}

const char *
lossScheduleName(LossScheduleId id)
{
    switch (id) {
    case LossScheduleId::Clean: return "clean";
    case LossScheduleId::Constant10: return "c10";
    case LossScheduleId::Constant25: return "c25";
    case LossScheduleId::Step: return "step";
    case LossScheduleId::Burst: return "burst";
    }
    return "unknown";
}

double
scheduledDropRate(LossScheduleId id, int frame, int total_frames)
{
    const int n = std::max(total_frames, 1);
    const int f = std::clamp(frame, 0, n - 1);
    switch (id) {
    case LossScheduleId::Clean:
        return 0.0;
    case LossScheduleId::Constant10:
        return 0.10;
    case LossScheduleId::Constant25:
        return 0.25;
    case LossScheduleId::Step:
        // Clean head, a 25% middle third, clean tail: the recovery
        // benchmark (how fast the controller re-opens after the step
        // ends).
        return (f >= n / 3 && f < 2 * n / 3) ? 0.25 : 0.0;
    case LossScheduleId::Burst:
        // Two-frame 50% bursts every 8 frames, first burst at frame
        // 4: repeated shock-and-recover cycles.
        return ((f + 4) % 8) < 2 ? 0.50 : 0.0;
    }
    return 0.0;
}

} // namespace pce::net
