#include "net/packetizer.hh"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "bd/bd_codec.hh"
#include "common/bitstream.hh"
#include "common/integrity.hh"
#include "image/image.hh"
#include "perception/display.hh"

namespace pce::net {

PacketizedFrame
packetizeFrame(const std::vector<std::uint8_t> &bd_stream,
               std::uint64_t frame_id, const EccentricityMap *ecc,
               const PacketizerParams &params)
{
    if (params.mtuBytes <= kPacketHeaderBytes)
        throw std::invalid_argument(
            "packetizeFrame: MTU does not fit the packet header");
    if (bd_stream.size() < kBdStreamHeaderBits / 8)
        throw std::runtime_error(
            "packetizeFrame: stream shorter than the BD header");

    // Read the geometry fields, then validate the whole header by
    // re-serializing it — one source of truth for the header layout
    // (bdWriteStreamHeader) instead of a duplicated magic constant.
    BitReader hdr(bd_stream);
    hdr.seek(24);  // past the magic, checked bit-exactly below
    const std::uint32_t w = hdr.getBits(16);
    const std::uint32_t h = hdr.getBits(16);
    const std::uint32_t tile = hdr.getBits(8);
    std::uint8_t expect[kBdStreamHeaderBits / 8];
    try {
        bdWriteStreamHeader(expect, static_cast<int>(w),
                            static_cast<int>(h),
                            static_cast<int>(tile));
    } catch (const std::invalid_argument &) {
        throw std::runtime_error("packetizeFrame: bad BD header");
    }
    if (!std::equal(expect, expect + sizeof(expect), bd_stream.data()))
        throw std::runtime_error("packetizeFrame: bad BD magic");

    const std::vector<TileRect> tiles = tileGrid(
        static_cast<int>(w), static_cast<int>(h),
        static_cast<int>(tile));
    const std::size_t n_tiles = tiles.size();
    std::vector<std::size_t> offsets(n_tiles + 1);
    BdCodec::walkTileRange(bd_stream.data(), bd_stream.size(), tiles, 0,
                           n_tiles, 0, offsets.data());
    const std::uint64_t total_bits =
        kBdStreamHeaderBits + offsets[n_tiles];
    if ((total_bits + 7) / 8 != bd_stream.size())
        throw std::runtime_error(
            "packetizeFrame: stream length disagrees with payload");

    // Byte span of the stream containing payload bits [0, offsets[t]).
    auto startByteOf = [&](std::size_t t) {
        return (kBdStreamHeaderBits + offsets[t]) / 8;
    };
    auto endByteOf = [&](std::size_t t) {
        return (kBdStreamHeaderBits + offsets[t] + 7) / 8;
    };

    // Greedy tile-aligned split under the MTU payload budget.
    const std::size_t max_payload =
        params.mtuBytes - kPacketHeaderBytes;
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    for (std::size_t t0 = 0; t0 < n_tiles;) {
        std::size_t t1 = t0 + 1;
        while (t1 < n_tiles &&
               endByteOf(t1 + 1) - startByteOf(t0) <= max_payload)
            ++t1;
        ranges.emplace_back(t0, t1);
        t0 = t1;
    }

    PacketizedFrame pf;
    pf.manifest.width = w;
    pf.manifest.height = h;
    pf.manifest.tileSize = tile;
    pf.manifest.tileCount = static_cast<std::uint32_t>(n_tiles);
    pf.manifest.packetCount = static_cast<std::uint32_t>(ranges.size());
    pf.manifest.payloadBits = offsets[n_tiles];
    pf.manifest.streamBytes =
        static_cast<std::uint32_t>(bd_stream.size());
    pf.manifest.streamCrc = crc32(bd_stream.data(), bd_stream.size());

    PacketHeader base;
    base.sessionId = params.sessionId;
    base.streamId = params.streamId;
    base.frameId = frame_id;

    pf.packets.reserve(ranges.size() + 1);
    Packet manifest_pkt;
    manifest_pkt.header = base;
    manifest_pkt.header.type = PacketType::Manifest;
    manifest_pkt.header.sequence = 0;
    manifest_pkt.header.payloadBytes = kManifestPayloadBytes;
    manifest_pkt.bytes =
        buildManifestPacket(manifest_pkt.header, pf.manifest);
    pf.wireBytes += manifest_pkt.bytes.size();
    pf.packets.push_back(std::move(manifest_pkt));

    std::uint32_t seq = 1;
    for (const auto &[t0, t1] : ranges) {
        Packet pkt;
        pkt.header = base;
        pkt.header.type = PacketType::TileData;
        pkt.header.sequence = seq++;
        pkt.header.tileBegin = static_cast<std::uint32_t>(t0);
        pkt.header.tileCount = static_cast<std::uint32_t>(t1 - t0);
        pkt.header.payloadBitBegin = offsets[t0];
        const std::size_t sb = startByteOf(t0);
        const std::size_t eb = endByteOf(t1);
        pkt.header.payloadBytes =
            static_cast<std::uint32_t>(eb - sb);
        pkt.bytes =
            buildPacket(pkt.header, bd_stream.data() + sb, eb - sb);
        if (ecc) {
            double min_ecc = std::numeric_limits<double>::infinity();
            for (std::size_t t = t0; t < t1; ++t)
                min_ecc =
                    std::min(min_ecc, ecc->minInRect(tiles[t]));
            pkt.minEccDeg = min_ecc;
        }
        pf.wireBytes += pkt.bytes.size();
        pf.packets.push_back(std::move(pkt));
    }

    // Priority order: manifest, then foveal-out (stable: equal
    // eccentricities keep tile order, so the no-map schedule is plain
    // tile order).
    pf.sendOrder.resize(pf.packets.size());
    std::iota(pf.sendOrder.begin(), pf.sendOrder.end(), 0u);
    std::stable_sort(pf.sendOrder.begin() + 1, pf.sendOrder.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return pf.packets[a].minEccDeg <
                                pf.packets[b].minEccDeg;
                     });
    return pf;
}

} // namespace pce::net
