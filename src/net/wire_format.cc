#include "net/wire_format.hh"

#include <algorithm>

#include "common/integrity.hh"

namespace pce::net {

namespace {

/** Little-endian field emitters/parsers over a raw byte cursor. */
void
put32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
put64(std::uint8_t *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
get32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

std::uint64_t
get64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

/** Byte offsets of the serialized header fields. */
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffType = 5;
constexpr std::size_t kOffFlags = 6;
// byte 7 reserved, written as zero
constexpr std::size_t kOffSession = 8;
constexpr std::size_t kOffStream = 16;
constexpr std::size_t kOffFrame = 20;
constexpr std::size_t kOffSequence = 28;
constexpr std::size_t kOffTileBegin = 32;
constexpr std::size_t kOffTileCount = 36;
constexpr std::size_t kOffBitBegin = 40;
constexpr std::size_t kOffPayloadBytes = 48;
constexpr std::size_t kOffCrc = 52;

static_assert(kOffCrc + 4 == kPacketHeaderBytes,
              "header layout out of sync with kPacketHeaderBytes");

} // namespace

std::vector<std::uint8_t>
buildPacket(PacketHeader header, const std::uint8_t *payload,
            std::size_t payload_bytes)
{
    header.payloadBytes = static_cast<std::uint32_t>(payload_bytes);
    std::vector<std::uint8_t> pkt(kPacketHeaderBytes + payload_bytes,
                                  0);
    std::uint8_t *p = pkt.data();
    put32(p + kOffMagic, kPacketMagic);
    p[kOffVersion] = kWireVersion;
    p[kOffType] = static_cast<std::uint8_t>(header.type);
    p[kOffFlags] = header.flags;
    put64(p + kOffSession, header.sessionId);
    put32(p + kOffStream, header.streamId);
    put64(p + kOffFrame, header.frameId);
    put32(p + kOffSequence, header.sequence);
    put32(p + kOffTileBegin, header.tileBegin);
    put32(p + kOffTileCount, header.tileCount);
    put64(p + kOffBitBegin, header.payloadBitBegin);
    put32(p + kOffPayloadBytes, header.payloadBytes);
    if (payload_bytes > 0)
        std::copy(payload, payload + payload_bytes,
                  p + kPacketHeaderBytes);
    put32(p + kOffCrc, packetCrc(p, pkt.size()));
    return pkt;
}

std::vector<std::uint8_t>
buildManifestPacket(PacketHeader header, const FrameManifest &m)
{
    std::uint8_t payload[kManifestPayloadBytes];
    serializeManifest(m, payload);
    header.type = PacketType::Manifest;
    header.sequence = 0;
    return buildPacket(header, payload, kManifestPayloadBytes);
}

bool
parsePacketHeader(const std::uint8_t *data, std::size_t n,
                  PacketHeader &out)
{
    if (n < kPacketHeaderBytes)
        return false;
    if (get32(data + kOffMagic) != kPacketMagic)
        return false;
    if (data[kOffVersion] != kWireVersion)
        return false;
    const std::uint8_t type = data[kOffType];
    if (type != static_cast<std::uint8_t>(PacketType::Manifest) &&
        type != static_cast<std::uint8_t>(PacketType::TileData))
        return false;
    out.type = static_cast<PacketType>(type);
    out.flags = data[kOffFlags];
    out.sessionId = get64(data + kOffSession);
    out.streamId = get32(data + kOffStream);
    out.frameId = get64(data + kOffFrame);
    out.sequence = get32(data + kOffSequence);
    out.tileBegin = get32(data + kOffTileBegin);
    out.tileCount = get32(data + kOffTileCount);
    out.payloadBitBegin = get64(data + kOffBitBegin);
    out.payloadBytes = get32(data + kOffPayloadBytes);
    // The length field must agree with the datagram exactly: transport
    // truncation and trailing garbage both fail structurally, before
    // any payload byte is interpreted.
    if (out.payloadBytes != n - kPacketHeaderBytes)
        return false;
    return true;
}

std::uint32_t
packetCrc(const std::uint8_t *data, std::size_t n)
{
    // CRC over the datagram with the crc field zeroed: feed the bytes
    // around the field instead of copying the packet.
    Crc32 crc;
    crc.update(data, kOffCrc);
    const std::uint8_t zeros[4] = {0, 0, 0, 0};
    crc.update(zeros, 4);
    if (n > kPacketHeaderBytes)
        crc.update(data + kPacketHeaderBytes, n - kPacketHeaderBytes);
    return crc.value();
}

bool
verifyPacketCrc(const std::uint8_t *data, std::size_t n)
{
    if (n < kPacketHeaderBytes)
        return false;
    return get32(data + kOffCrc) == packetCrc(data, n);
}

void
serializeManifest(const FrameManifest &m, std::uint8_t *out)
{
    put32(out + 0, m.width);
    put32(out + 4, m.height);
    put32(out + 8, m.tileSize);
    put32(out + 12, m.tileCount);
    put32(out + 16, m.packetCount);
    put64(out + 20, m.payloadBits);
    put32(out + 28, m.streamBytes);
    put32(out + 32, m.streamCrc);
}

bool
parseManifestPayload(const std::uint8_t *payload, std::size_t n,
                     FrameManifest &out)
{
    if (n != kManifestPayloadBytes)
        return false;
    out.width = get32(payload + 0);
    out.height = get32(payload + 4);
    out.tileSize = get32(payload + 8);
    out.tileCount = get32(payload + 12);
    out.packetCount = get32(payload + 16);
    out.payloadBits = get64(payload + 20);
    out.streamBytes = get32(payload + 28);
    out.streamCrc = get32(payload + 32);
    return true;
}

} // namespace pce::net
