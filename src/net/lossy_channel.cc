#include "net/lossy_channel.hh"

#include <algorithm>
#include <utility>

namespace pce::net {

LossyChannel::LossyChannel(const LossyChannelConfig &config)
    : config_(config), rng_(config.seed)
{}

void
LossyChannel::enqueueCopy(std::vector<std::uint8_t> bytes)
{
    InFlight f;
    f.arriveRound = round_;
    f.order = nextOrder_++;
    if (config_.reorderRate > 0.0 &&
        rng_.uniform() < config_.reorderRate &&
        config_.maxDelayRounds > 0) {
        f.arriveRound +=
            1 + static_cast<int>(rng_.uniformInt(
                    static_cast<std::uint64_t>(
                        config_.maxDelayRounds)));
        // A delayed copy also loses its place among that round's
        // arrivals — this is where receiver-visible reordering comes
        // from.
        f.order = rng_.next();
        ++delayed_;
    }
    f.bytes = std::move(bytes);
    pending_.push_back(std::move(f));
}

void
LossyChannel::send(const std::vector<std::uint8_t> &packet)
{
    ++sent_;
    if (config_.dropRate > 0.0 && rng_.uniform() < config_.dropRate) {
        ++dropped_;
        return;
    }
    std::vector<std::uint8_t> bytes = packet;
    if (config_.corruptRate > 0.0 && !bytes.empty() &&
        rng_.uniform() < config_.corruptRate) {
        const int flips = 1 + static_cast<int>(rng_.uniformInt(3));
        for (int i = 0; i < flips; ++i) {
            const std::uint64_t bit =
                rng_.uniformInt(bytes.size() * 8);
            bytes[bit / 8] ^=
                static_cast<std::uint8_t>(1u << (bit % 8));
        }
        ++corrupted_;
    }
    const bool duplicate = config_.duplicateRate > 0.0 &&
                           rng_.uniform() < config_.duplicateRate;
    if (duplicate) {
        ++duplicated_;
        enqueueCopy(bytes);  // second copy, independent delay draw
    }
    enqueueCopy(std::move(bytes));
}

std::vector<std::vector<std::uint8_t>>
LossyChannel::ready()
{
    std::vector<InFlight> due;
    std::vector<InFlight> keep;
    keep.reserve(pending_.size());
    for (InFlight &f : pending_) {
        if (f.arriveRound <= round_)
            due.push_back(std::move(f));
        else
            keep.push_back(std::move(f));
    }
    pending_ = std::move(keep);
    std::sort(due.begin(), due.end(),
              [](const InFlight &a, const InFlight &b) {
                  return a.arriveRound != b.arriveRound
                             ? a.arriveRound < b.arriveRound
                             : a.order < b.order;
              });
    ++round_;
    std::vector<std::vector<std::uint8_t>> out;
    out.reserve(due.size());
    for (InFlight &f : due)
        out.push_back(std::move(f.bytes));
    return out;
}

} // namespace pce::net
