/**
 * @file
 * Adaptive rate control for the delivery tier: per-session channel
 * estimation, an AIMD congestion budget, and a continuous foveal
 * cutoff.
 *
 * PR 7 shipped deliverFrame with a *constant* congestion budget
 * (SenderPolicy::budgetBytesPerRound) and an all-or-nothing shed
 * policy: packets that never fit before the deadline were dropped,
 * wherever the foveal-priority tail happened to land. This module
 * derives the budget from delivery feedback instead, and turns the
 * shed decision into an explicit, continuous eccentricity radius:
 *
 *  - RateEstimator keeps EWMA estimates of the channel's loss rate
 *    (retransmissions + never-delivered packets over transmissions)
 *    and the delivery RTT in rounds (roundsUsed per frame), fed by
 *    each frame's DeliveryFeedback. An idle gap (encode deadline
 *    misses, paused stream) of idleResetFrames resets the estimator:
 *    stale channel knowledge is worse than none.
 *
 *  - RateController is the AIMD law on top: a frame with loss
 *    evidence multiplies the budget by multiplicativeDecrease, a
 *    clean frame adds additiveIncreaseBytes, and the result is always
 *    clamped to [minBudgetBytesPerRound, maxBudgetBytesPerRound].
 *    The floor is the statically provisioned budget a constant-policy
 *    deployment would run: adaptation can only spend *more* than the
 *    conservative configuration, never less, which is what makes the
 *    adaptive controller dominate the constant baseline.
 *
 *  - continuousFovealCutoff converts the budget into the largest
 *    eccentricity radius whose packets fit the frame's deliverable
 *    capacity. Capacity is budget x deadline rounds, derated by the
 *    estimated loss rate (lost transmissions consume budget too);
 *    packets are admitted along the packetizer's foveal-first
 *    sendOrder until capacity runs out, so the cutoff moves smoothly
 *    with channel quality instead of shedding a fixed periphery. The
 *    manifest and the innermost data packet are always admitted.
 *
 * Everything here is pure arithmetic on feedback counters — no
 * clocks, no randomness — so the same seeds and loss schedule replay
 * bit-identical budgets, cutoffs, and sheds (the property the soak
 * harness in tests/net/test_delivery_soak.cc asserts).
 */

#ifndef PCE_NET_RATE_CONTROL_HH
#define PCE_NET_RATE_CONTROL_HH

#include <cstddef>
#include <cstdint>

#include "net/packetizer.hh"

namespace pce::net {

/** AIMD + estimator tuning. Defaults suit a 1200-byte-MTU stream. */
struct RateControlParams
{
    /**
     * Budget floor, bytes per round — the statically provisioned
     * constant budget the controller may never undercut. Adaptation
     * only ever *adds* capacity on top of this.
     */
    std::size_t minBudgetBytesPerRound = 2 * 1200;
    /** Budget ceiling, bytes per round (additive increase clamps
     *  here; also bounds the cutoff capacity model). */
    std::size_t maxBudgetBytesPerRound = 256 * 1024;
    /** Starting budget; clamped into [min, max] at construction.
     *  0 = start at the floor. */
    std::size_t initialBudgetBytesPerRound = 0;
    /** Additive increase per clean (loss-free) frame, bytes. */
    std::size_t additiveIncreaseBytes = 1200;
    /** Multiplicative decrease applied once per frame with loss
     *  evidence; must be in (0, 1). */
    double multiplicativeDecrease = 0.7;
    /** EWMA weight of the newest per-frame loss sample, in (0, 1]. */
    double lossAlpha = 0.25;
    /** EWMA weight of the newest per-frame RTT sample, in (0, 1]. */
    double rttAlpha = 0.25;
    /** Loss-rate estimate at or below this counts as a clean frame
     *  for the AIMD law even when the frame saw one retransmit. */
    double cleanLossThreshold = 0.0;
    /** Consecutive idle frames (no delivery feedback) after which the
     *  estimator forgets the channel and the budget re-anchors at the
     *  initial value. */
    int idleResetFrames = 8;
    /** Floor on the capacity derate factor (1 - estimated loss):
     *  guards the cutoff against a transient 100%-loss estimate
     *  admitting nothing at all. */
    double minCapacityDerate = 0.25;
};

/** One frame's delivery feedback, distilled from a DeliveryReport. */
struct DeliveryFeedback
{
    /** Datagrams put on the wire (retransmissions included). */
    std::size_t packetsSent = 0;
    /** Of those, NACK-driven retransmissions. */
    std::size_t retransmittedPackets = 0;
    /** Packets the cutoff admitted for this frame. */
    std::size_t admittedPackets = 0;
    /** Admitted packets that never made it (gave up / deadline). */
    std::size_t undeliveredAdmitted = 0;
    /** NACK rounds the frame's delivery used. */
    int roundsUsed = 0;
};

/**
 * EWMA estimator over per-frame delivery feedback. Cold (unwarmed)
 * estimates read as a clean channel: loss 0, RTT 1 round.
 */
class RateEstimator
{
  public:
    explicit RateEstimator(const RateControlParams &params = {});

    /** Fold one frame's feedback into the estimates. */
    void onFrame(const DeliveryFeedback &feedback);
    /**
     * One frame elapsed with no delivery feedback (encode deadline
     * miss, paused sender). After idleResetFrames in a row the
     * estimator resets — see reset().
     */
    void onIdleFrame();
    /** Forget the channel: loss 0, RTT 1, cold. */
    void reset();

    /** Estimated packet-loss rate in [0, 1]. */
    double lossRate() const { return lossRate_; }
    /** Estimated delivery RTT, in NACK rounds (>= 1). */
    double rttRounds() const { return rttRounds_; }
    /** At least one feedback frame since the last reset. */
    bool warm() const { return warm_; }

  private:
    RateControlParams params_;
    double lossRate_ = 0.0;
    double rttRounds_ = 1.0;
    bool warm_ = false;
    int idleStreak_ = 0;
};

/**
 * AIMD congestion controller: RateEstimator plus the budget law (see
 * the file comment). One instance per delivery session — the state
 * that persists across frames.
 */
class RateController
{
  public:
    /** Throws std::invalid_argument on nonsense parameters (min >
     *  max, decrease outside (0,1), alphas outside (0,1]). */
    explicit RateController(const RateControlParams &params = {});

    /** Budget the next frame should spend, bytes per round. */
    std::size_t budgetBytesPerRound() const { return budget_; }
    const RateEstimator &estimator() const { return estimator_; }
    const RateControlParams &params() const { return params_; }

    /** Fold one delivered frame's feedback: estimator update, then
     *  the AIMD step. */
    void onFrame(const DeliveryFeedback &feedback);
    /** One frame with no delivery (see RateEstimator::onIdleFrame);
     *  an estimator reset re-anchors the budget at its initial
     *  value. */
    void onIdleFrame();
    /** Estimator reset + budget back to the initial value. */
    void reset();

  private:
    RateControlParams params_;
    RateEstimator estimator_;
    std::size_t initialBudget_ = 0;
    std::size_t budget_ = 0;
};

/** What continuousFovealCutoff admitted for one frame. */
struct FovealCutoff
{
    /** Longest sendOrder prefix the capacity admits (manifest
     *  included; >= 2 whenever the frame has data packets). */
    std::size_t admittedPackets = 0;
    /** Wire bytes of the admitted prefix (single transmission). */
    std::size_t admittedBytes = 0;
    /**
     * The continuous shed radius: the largest tile eccentricity
     * (degrees) the budget admits. Infinity when every packet is
     * admitted — nothing is shed.
     */
    double cutoffEccDeg = 0.0;
};

/**
 * Compute the admitted sendOrder prefix for one packetized frame
 * under @p budget_bytes_per_round with @p deadline_rounds to spend it
 * in, derating capacity by @p estimated_loss_rate (clamped by
 * @p params.minCapacityDerate). Monotone: a larger budget never
 * admits fewer packets or a smaller radius.
 */
FovealCutoff continuousFovealCutoff(const PacketizedFrame &frame,
                                    std::size_t budget_bytes_per_round,
                                    int deadline_rounds,
                                    double estimated_loss_rate,
                                    const RateControlParams &params = {});

/**
 * Deterministic time-varying loss schedules, shared by the soak
 * harness (tests/net/test_delivery_soak.cc) and the bench sweep
 * (bench/net_runner.cc) so both exercise the identical channel
 * histories.
 */
enum class LossScheduleId : std::uint8_t
{
    Clean,       ///< 0% every frame
    Constant10,  ///< 10% every frame
    Constant25,  ///< 25% every frame
    Step,        ///< 0% -> 25% (middle third) -> 0%
    Burst,       ///< 0% with periodic 2-frame 50% bursts
};

/** Stable record/logging id ("clean", "c10", "c25", "step",
 *  "burst"). */
const char *lossScheduleName(LossScheduleId id);

/** Drop rate the schedule prescribes for @p frame of
 *  @p total_frames. Pure function: same inputs, same rate. */
double scheduledDropRate(LossScheduleId id, int frame,
                         int total_frames);

} // namespace pce::net

#endif // PCE_NET_RATE_CONTROL_HH
