#include "net/delivery.hh"

#include <algorithm>
#include <limits>
#include <set>

#include "image/image.hh"
#include "obs/trace.hh"
#include "perception/display.hh"

namespace pce::net {

namespace {

/** Per-packet transmission state for the round loop. */
struct TxState
{
    int transmissions = 0;
    int eligibleRound = 0;
    bool delivered = false;
    bool gaveUp = false;
};

} // namespace

DeliveryReport
deliverFrame(const std::vector<std::uint8_t> &bd_stream,
             std::uint64_t frame_id, const EccentricityMap *ecc,
             LossyChannel &channel, FrameReassembler &receiver,
             ImageU8 &out, const SenderPolicy &policy,
             RateController *rate)
{
    // Every span and instant below inherits this frame's tag, so the
    // delivery rounds stitch onto the encode-side timeline when
    // policy.streamId is EncodeService::streamTraceId(handle).
    const obs::TraceTag traceTag{frame_id, policy.streamId,
                                 obs::kNoShard};
    obs::TagScope tagScope(traceTag);
    obs::TraceSpan deliverSpan("net/deliver_frame");

    PacketizerParams pp;
    pp.mtuBytes = policy.mtuBytes;
    pp.sessionId = policy.sessionId;
    pp.streamId = policy.streamId;
    obs::TraceSpan packSpan("net/packetize");
    const PacketizedFrame pf =
        packetizeFrame(bd_stream, frame_id, ecc, pp);
    packSpan.end();

    DeliveryReport rep;
    std::vector<TxState> tx(pf.packets.size());
    const int deadline = std::max(policy.deadlineRounds, 1);

    // Adaptive rate control: the controller supplies the round
    // budget, and the continuous foveal cutoff decides up front which
    // sendOrder prefix this frame attempts at all — everything past
    // the cutoff radius is shed before its first transmission, so
    // retransmission budget is never wasted on packets that cannot
    // complete before the deadline anyway.
    std::size_t round_budget = policy.budgetBytesPerRound;
    FovealCutoff cut;
    cut.admittedPackets = pf.packets.size();
    cut.admittedBytes = pf.wireBytes;
    cut.cutoffEccDeg = std::numeric_limits<double>::infinity();
    if (rate != nullptr) {
        round_budget = rate->budgetBytesPerRound();
        cut = continuousFovealCutoff(pf, round_budget, deadline,
                                     rate->estimator().lossRate(),
                                     rate->params());
        for (std::size_t i = cut.admittedPackets;
             i < pf.sendOrder.size(); ++i)
            tx[pf.sendOrder[i]].gaveUp = true;
    }

    for (int round = 0; round < deadline; ++round) {
        obs::TraceSpan roundSpan("net/round");
        const std::uint64_t round_bytes_before = rep.bytesSent;
        std::uint64_t backed_off = 0;
        rep.roundsUsed = round + 1;
        // Transmit in foveal-priority order under the round budget:
        // a foveal retransmission outranks a peripheral first send.
        std::size_t budget = round_budget;
        for (const std::uint32_t idx : pf.sendOrder) {
            TxState &t = tx[idx];
            if (t.delivered || t.gaveUp)
                continue;
            if (t.eligibleRound > round) {
                ++backed_off;
                continue;
            }
            const std::vector<std::uint8_t> &bytes =
                pf.packets[idx].bytes;
            if (bytes.size() > budget)
                continue;  // over budget this round; waits, then sheds
            budget -= bytes.size();
            channel.send(bytes);
            ++rep.packetsSent;
            rep.bytesSent += bytes.size();
            if (t.transmissions > 0) {
                ++rep.retransmittedPackets;
                rep.retransmittedBytes += bytes.size();
            }
            ++t.transmissions;
            // Exponential backoff before the next attempt: 1, 2, 4,
            // ... rounds (the deadline is the hard cutoff).
            t.eligibleRound =
                round +
                (1 << std::min(t.transmissions - 1, 8));
        }
        roundSpan.arg("bytes", rep.bytesSent - round_bytes_before);
        if (backed_off > 0)
            obs::traceInstant("net/backoff", "deferred", backed_off);

        // This round's arrivals, then the (reliable) NACK.
        for (const std::vector<std::uint8_t> &pkt : channel.ready())
            receiver.accept(pkt);
        const std::vector<std::uint32_t> missing =
            receiver.missingSequences(policy.streamId, frame_id);
        const std::set<std::uint32_t> missing_set(missing.begin(),
                                                  missing.end());
        // A NACK that still lists the manifest is incomplete: without
        // it the receiver cannot enumerate missing data sequences, so
        // absence from the list is no acknowledgment — treating it as
        // one would strand every dropped data packet unretransmitted.
        if (!missing_set.count(0))
            for (std::size_t i = 0; i < pf.packets.size(); ++i)
                if (!missing_set.count(pf.packets[i].header.sequence))
                    tx[i].delivered = true;
        if (missing.empty())
            break;
        obs::traceInstant("net/nack", "missing", missing.size());
        for (TxState &t : tx)
            if (!t.delivered && !t.gaveUp &&
                t.transmissions > policy.maxRetransmitAttempts)
                t.gaveUp = true;
    }

    for (std::size_t i = 0; i < pf.packets.size(); ++i) {
        if (tx[i].delivered || tx[i].transmissions > 0)
            continue;
        ++rep.shedPackets;
        rep.shedTiles += pf.packets[i].header.tileCount;
        rep.shedBytes += pf.packets[i].bytes.size();
        rep.minShedEccDeg =
            std::min(rep.minShedEccDeg, pf.packets[i].minEccDeg);
    }
    if (rep.shedPackets > 0)
        obs::traceInstant("net/shed", "packets", rep.shedPackets);

    obs::TraceSpan finSpan("net/finalize");
    rep.frame = receiver.finalizeFrame(policy.streamId, frame_id, out);
    finSpan.end();

    rep.frame.adaptiveRate = rate != nullptr;
    rep.frame.budgetBytesPerRound = round_budget;
    rep.frame.cutoffEccDeg = cut.cutoffEccDeg;
    rep.frame.shedBytes = rep.shedBytes;
    if (rate != nullptr) {
        // Fold this frame back into the controller so the *next*
        // frame adapts. Admitted-but-undelivered packets count as
        // losses the NACK loop never recovered.
        DeliveryFeedback fb;
        fb.packetsSent = rep.packetsSent;
        fb.retransmittedPackets = rep.retransmittedPackets;
        fb.admittedPackets = cut.admittedPackets;
        for (std::size_t i = 0; i < pf.sendOrder.size() &&
                                i < cut.admittedPackets; ++i)
            if (!tx[pf.sendOrder[i]].delivered)
                ++fb.undeliveredAdmitted;
        fb.roundsUsed = rep.roundsUsed;
        rate->onFrame(fb);
        rep.frame.estimatedLossRate = rate->estimator().lossRate();
        rep.frame.estimatedRttRounds = rate->estimator().rttRounds();
    }

    // Foveal accounting lives here, not in the receiver: the receiver
    // never sees an eccentricity map, only the delivery mask.
    if (ecc) {
        const std::vector<TileRect> tiles =
            tileGrid(static_cast<int>(pf.manifest.width),
                     static_cast<int>(pf.manifest.height),
                     static_cast<int>(pf.manifest.tileSize));
        for (std::size_t t = 0; t < tiles.size(); ++t) {
            if (ecc->minInRect(tiles[t]) > policy.fovealCutoffDeg)
                continue;
            ++rep.fovealTiles;
            if (t < rep.frame.tileDelivered.size() &&
                rep.frame.tileDelivered[t])
                ++rep.fovealDelivered;
        }
    }
    rep.fovealIntact = rep.frame.manifestReceived &&
                       rep.fovealDelivered == rep.fovealTiles;
    return rep;
}

DeliverySession::DeliverySession(EncodeService &service,
                                 StreamHandle handle,
                                 LossyChannel &channel,
                                 const SenderPolicy &policy,
                                 const EccentricityMap *ecc)
    : service_(service), handle_(handle), channel_(channel),
      policy_(policy), ecc_(ecc), receiver_([&] {
          ReassemblerParams rp;
          rp.sessionId = policy.sessionId;
          return rp;
      }())
{
    if (policy_.adaptiveRate)
        rate_.emplace(policy_.rateControl);
}

DeliveryReport
DeliverySession::deliverNext(ImageU8 &out,
                             std::chrono::milliseconds encode_timeout)
{
    FrameLease lease = service_.collectFor(handle_, encode_timeout);
    if (!lease.valid()) {
        // Encoder missed the frame deadline: finalize the frame id
        // with nothing in it — whole-frame temporal hold. The late
        // result stays owed and delivers under the next frame id.
        DeliveryReport rep;
        rep.encodeTimedOut = true;
        rep.frame = receiver_.finalizeFrame(policy_.streamId,
                                            nextFrame_++, out);
        if (rate_)
            rate_->onIdleFrame();  // stale channel knowledge decays
        return rep;
    }
    DeliveryReport rep =
        deliverFrame(lease->bdStream, nextFrame_++, ecc_, channel_,
                     receiver_, out, policy_,
                     rate_ ? &*rate_ : nullptr);
    // Fold the delivery outcome into the stream's service-side stats
    // so EncodeService::report() covers the full pipeline.
    DeliverySample sample;
    sample.adaptiveRate = rep.frame.adaptiveRate;
    sample.budgetBytesPerRound = rep.frame.budgetBytesPerRound;
    sample.estimatedLossRate = rep.frame.estimatedLossRate;
    sample.cutoffEccDeg = rep.frame.cutoffEccDeg;
    sample.bytesSent = rep.bytesSent;
    sample.shedBytes = rep.shedBytes;
    sample.fovealIntact = rep.fovealIntact;
    sample.byteIdentical = rep.frame.byteIdentical;
    service_.recordDelivery(handle_, sample);
    return rep;
}

} // namespace pce::net
