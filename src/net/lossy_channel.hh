/**
 * @file
 * Seeded, replayable lossy-transport simulator.
 *
 * The delivery tier's validation problem is that real packet loss is
 * not reproducible: a flaky test under real UDP is a useless test.
 * LossyChannel models the transport as a deterministic function of a
 * 64-bit seed and the send sequence — drop, duplication, bit
 * corruption, and delay/reorder are all drawn from one pce::Rng — so
 * every loss scenario in tests and benches replays exactly, across
 * runs and platforms.
 *
 * Time is modeled in *rounds* (one sender NACK cycle), not wall
 * seconds: send() stamps each surviving copy with an arrival round,
 * ready() delivers everything due in the current round and advances
 * the clock. Delayed copies land 1..maxDelayRounds rounds late and are
 * shuffled among that round's arrivals, which is what produces
 * reordering at the receiver. Determinism over realism: the knobs are
 * i.i.d. per packet, which is enough to exercise every reassembly path
 * (the point), not a faithful queueing model.
 */

#ifndef PCE_NET_LOSSY_CHANNEL_HH
#define PCE_NET_LOSSY_CHANNEL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace pce::net {

struct LossyChannelConfig
{
    double dropRate = 0.0;       ///< P(packet never arrives)
    double duplicateRate = 0.0;  ///< P(a second copy is delivered)
    double corruptRate = 0.0;    ///< P(1-3 bit flips in the datagram)
    double reorderRate = 0.0;    ///< P(copy is delayed 1..maxDelayRounds)
    int maxDelayRounds = 2;      ///< worst-case extra rounds in flight
    std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

class LossyChannel
{
  public:
    explicit LossyChannel(const LossyChannelConfig &config = {});

    /** Submit one datagram; impairments are drawn and applied here. */
    void send(const std::vector<std::uint8_t> &packet);

    /**
     * Datagrams arriving in the current round (arrival order already
     * impaired), then advance the round clock. Delayed copies surface
     * in later calls.
     */
    std::vector<std::vector<std::uint8_t>> ready();

    /** Rounds elapsed (ready() calls). */
    int round() const { return round_; }

    /**
     * Retune the drop probability mid-stream (time-varying loss
     * schedules: rate_control.hh's scheduledDropRate). Only the
     * config changes — the RNG stream is untouched, so a schedule
     * replayed over the same seed draws the same random sequence and
     * the whole history stays deterministic.
     */
    void setDropRate(double rate) { config_.dropRate = rate; }
    const LossyChannelConfig &config() const { return config_; }

    // Impairment accounting (sent counts offered datagrams, the rest
    // count applied impairments).
    std::size_t packetsSent() const { return sent_; }
    std::size_t packetsDropped() const { return dropped_; }
    std::size_t packetsDuplicated() const { return duplicated_; }
    std::size_t packetsCorrupted() const { return corrupted_; }
    std::size_t packetsDelayed() const { return delayed_; }

  private:
    struct InFlight
    {
        int arriveRound = 0;
        std::uint64_t order = 0;  ///< within-round delivery key
        std::vector<std::uint8_t> bytes;
    };

    void enqueueCopy(std::vector<std::uint8_t> bytes);

    LossyChannelConfig config_;
    Rng rng_;
    std::vector<InFlight> pending_;
    int round_ = 0;
    std::uint64_t nextOrder_ = 0;
    std::size_t sent_ = 0;
    std::size_t dropped_ = 0;
    std::size_t duplicated_ = 0;
    std::size_t corrupted_ = 0;
    std::size_t delayed_ = 0;
};

} // namespace pce::net

#endif // PCE_NET_LOSSY_CHANNEL_HH
