/**
 * @file
 * Sender-side packetization: a BD bitstream into MTU-budgeted,
 * tile-aligned wire packets with a foveal-first send schedule.
 *
 * Packets are cut on per-tile bit-offset prefix boundaries (the
 * decoder's walk, BdCodec::walkTileRange): each tile-data packet
 * covers a contiguous run of whole tiles, its payload being the byte
 * span of the stream that contains those tiles' bits. Adjacent packets
 * share at most one boundary byte (tile records are bit-granular);
 * since both carry that byte from the same source stream, reassembly
 * copies are idempotent and order-free. Greedy accumulation packs as
 * many tiles as fit the MTU minus the header; a single tile larger
 * than the MTU gets its own oversize packet rather than being split —
 * splitting below tile granularity would break the
 * every-packet-decodes-alone property that loss resilience rests on.
 *
 * The send order is the eccentricity map turned into a QoS policy:
 * manifest first (nothing reassembles without it), then data packets
 * by ascending minimum eccentricity over their tile range, so the
 * foveal region crosses the wire before any peripheral byte and a
 * congestion budget cutting the tail sheds strictly peripheral-first.
 */

#ifndef PCE_NET_PACKETIZER_HH
#define PCE_NET_PACKETIZER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/wire_format.hh"

namespace pce {

class EccentricityMap;

namespace net {

/** One packetized datagram plus its scheduling metadata. */
struct Packet
{
    PacketHeader header;
    std::vector<std::uint8_t> bytes;  ///< serialized datagram (CRC set)
    /** Minimum eccentricity over the covered tiles, degrees; 0 for the
     *  manifest (it outranks everything). */
    double minEccDeg = 0.0;
};

struct PacketizerParams
{
    /** Total datagram budget, header included. Must exceed
     *  kPacketHeaderBytes; 1200 clears every real-world UDP path. */
    std::size_t mtuBytes = 1200;
    std::uint64_t sessionId = 0;
    std::uint32_t streamId = 0;
};

/** A frame cut into wire packets, in sequence order. */
struct PacketizedFrame
{
    FrameManifest manifest;
    /** packets[0] is the manifest; packets[seq] is sequence seq. */
    std::vector<Packet> packets;
    /** Indices into packets in send priority order: manifest, then
     *  data by ascending minEccDeg (ties in tile order). */
    std::vector<std::uint32_t> sendOrder;
    /** Sum of all datagram bytes (one transmission of everything). */
    std::size_t wireBytes = 0;
};

/**
 * Packetize one encoded frame's BD stream. Validates the stream with
 * the full prefix walk first (throws std::runtime_error on a malformed
 * stream, std::invalid_argument on an unusable MTU); @p ecc null
 * degrades the schedule to plain tile order.
 */
PacketizedFrame packetizeFrame(const std::vector<std::uint8_t> &bd_stream,
                               std::uint64_t frame_id,
                               const EccentricityMap *ecc,
                               const PacketizerParams &params);

} // namespace net
} // namespace pce

#endif // PCE_NET_PACKETIZER_HH
