#include "fault/fault_injector.hh"

#include <algorithm>

namespace pce {

const char *
faultSurfaceName(FaultSurface surface)
{
    switch (surface) {
    case FaultSurface::TileScratch: return "tile_scratch";
    case FaultSurface::BdStream:    return "bd_stream";
    case FaultSurface::PngPayload:  return "png_payload";
    case FaultSurface::QueueSlot:   return "queue_slot";
    case FaultSurface::EccMap:      return "ecc_map";
    case FaultSurface::FrameOutput: return "frame_output";
    case FaultSurface::NetPacket:   return "net_packet";
    }
    return "unknown";
}

std::vector<BitFlip>
FaultInjector::plan(std::size_t byte_size, int flips)
{
    std::vector<BitFlip> schedule;
    if (byte_size == 0 || flips <= 0)
        return schedule;
    const std::uint64_t total_bits =
        static_cast<std::uint64_t>(byte_size) * 8;
    const int n = static_cast<int>(std::min<std::uint64_t>(
        static_cast<std::uint64_t>(flips), total_bits));
    schedule.reserve(static_cast<std::size_t>(n));
    while (static_cast<int>(schedule.size()) < n) {
        const std::uint64_t pos = rng_.uniformInt(total_bits);
        BitFlip flip{static_cast<std::size_t>(pos / 8),
                     static_cast<int>(pos % 8)};
        // Distinct positions only: a repeated flip would cancel itself
        // and the trial would exercise fewer upsets than it reports.
        if (std::find(schedule.begin(), schedule.end(), flip) ==
            schedule.end())
            schedule.push_back(flip);
    }
    return schedule;
}

std::vector<BitFlip>
FaultInjector::inject(std::uint8_t *data, std::size_t byte_size,
                      int flips)
{
    std::vector<BitFlip> schedule = plan(byte_size, flips);
    for (const BitFlip &f : schedule)
        data[f.byte] ^= static_cast<std::uint8_t>(1u << f.bit);
    return schedule;
}

std::vector<BitFlip>
FaultInjector::inject(std::vector<std::uint8_t> &buffer, int flips)
{
    return inject(buffer.data(), buffer.size(), flips);
}

std::vector<BitFlip>
FaultInjector::injectDoubles(double *data, std::size_t count,
                             int flips)
{
    return inject(reinterpret_cast<std::uint8_t *>(data),
                  count * sizeof(double), flips);
}

} // namespace pce
