/**
 * @file
 * Deterministic, seeded bit-flip injection (docs/FAULTS.md).
 *
 * The fleet-scale threat this models is the single-event upset: a bit
 * of live state silently flips between the moment it was produced and
 * the moment it is consumed. The injector reproduces that — and only
 * that — as a pure byte/bit operation on a caller-named buffer: it
 * never knows what the buffer means, so the same injector drives every
 * campaign surface (pixel scratch, bitstreams, queue slots,
 * eccentricity maps) without per-surface code.
 *
 * Everything is seeded: one FaultInjector(seed) yields one
 * reproducible flip schedule, so a campaign trial that crashes or
 * silently corrupts can be replayed bit-for-bit from its (seed,
 * surface, trial) coordinates alone. plan() is the schedule,
 * inject() is plan() + apply; both dedupe so "3 flips" always means
 * three *distinct* bit positions (a repeated position would cancel
 * itself and silently weaken the trial).
 */

#ifndef PCE_FAULT_FAULT_INJECTOR_HH
#define PCE_FAULT_FAULT_INJECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace pce {

/**
 * Named injection surfaces of the encode pipeline — every place a
 * frame's data or steering state rests long enough for an upset to
 * matter. The campaign (fault/campaign.hh) drives one driver per
 * surface; the names key the per-surface coverage report.
 */
enum class FaultSurface
{
    /** Encoder tile working state: the adjusted linear-RGB frame the
     *  quantize + BD encode consumes. */
    TileScratch,
    /** An encoded BD bitstream in flight to a decoder. */
    BdStream,
    /** A PNG file payload (container-level comparison point: PNG
     *  carries its own CRC/Adler checks). */
    PngPayload,
    /** A service queue slot: the frame copy waiting for dispatch. */
    QueueSlot,
    /** Per-stream eccentricity map + gaze state steering foveation. */
    EccMap,
    /** An EncodedFrame's output buffers awaiting collect(). */
    FrameOutput,
    /** A delivery-tier datagram in flight (src/net wire format). */
    NetPacket,
};

/** Count of FaultSurface values (campaign sweep bound). */
inline constexpr int kFaultSurfaceCount = 7;

/** Stable snake_case surface name (report keys, bench records). */
const char *faultSurfaceName(FaultSurface surface);

/** One planned flip: bit @p bit of byte @p byte. */
struct BitFlip
{
    std::size_t byte = 0;
    int bit = 0;

    bool operator==(const BitFlip &o) const
    { return byte == o.byte && bit == o.bit; }
};

/**
 * Seeded source of bit-flip schedules (see file comment). One
 * injector is one deterministic stream: interleaving plan()/inject()
 * calls advances the same underlying Rng, exactly like drawing from
 * one random stream. Not thread-safe; campaigns use one injector per
 * (surface, trial) so trials stay independently replayable.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

    /**
     * Next schedule: @p flips distinct bit positions, uniform over a
     * buffer of @p byte_size bytes. @p flips is clamped to the number
     * of bits available. Empty when @p byte_size is zero.
     */
    std::vector<BitFlip> plan(std::size_t byte_size, int flips);

    /** plan() and XOR the flips into @p data; returns the schedule. */
    std::vector<BitFlip> inject(std::uint8_t *data,
                                std::size_t byte_size, int flips);

    /** inject() over a byte vector. */
    std::vector<BitFlip> inject(std::vector<std::uint8_t> &buffer,
                                int flips);

    /**
     * inject() over an array of doubles (eccentricity maps, linear-RGB
     * pixel storage), flipping bits of the raw representation.
     */
    std::vector<BitFlip> injectDoubles(double *data, std::size_t count,
                                       int flips);

  private:
    Rng rng_;
};

} // namespace pce

#endif // PCE_FAULT_FAULT_INJECTOR_HH
