#include "fault/campaign.hh"

#include <cstring>
#include <stdexcept>

#include "bd/bd_codec.hh"
#include "common/integrity.hh"
#include "common/rng.hh"
#include "core/pipeline.hh"
#include "gaze/incremental_ecc.hh"
#include "image/image.hh"
#include "net/packetizer.hh"
#include "net/reassembler.hh"
#include "perception/discrimination.hh"
#include "perception/display.hh"
#include "png/png_codec.hh"
#include "service/encode_service.hh"

namespace pce {

namespace {

/** Per-trial seed: one deterministic stream per (surface, flips,
 *  trial), identical across baseline/hardened so trials pair up. */
std::uint64_t
trialSeed(const FaultCampaignConfig &cfg, FaultSurface surface,
          int flips, int trial)
{
    std::uint64_t h = cfg.seed;
    h = h * 0x9e3779b97f4a7c15ull +
        static_cast<std::uint64_t>(surface) + 1;
    h = h * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(flips);
    h = h * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(trial);
    return h;
}

/** Deterministic synthetic frame: smooth fBm gradients (compresses
 *  like rendered content) — no dependency on the render layer. */
ImageF
syntheticFrame(int w, int h, std::uint64_t seed)
{
    ImageF img(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            const double u = 6.0 * x / w;
            const double v = 6.0 * y / h;
            Vec3 &px = img.at(x, y);
            px.x = 0.15 + 0.7 * fbmNoise(u, v, seed, 3);
            px.y = 0.15 + 0.7 * fbmNoise(u + 11.0, v, seed ^ 1, 3);
            px.z = 0.15 + 0.7 * fbmNoise(u, v + 7.0, seed ^ 2, 3);
        }
    }
    return img;
}

/** Wire identity the NetPacket surface delivers under. */
constexpr std::uint64_t kNetSessionId = 0x5e551d;
constexpr std::uint32_t kNetStreamId = 7;

/** Shared per-campaign fixtures: the golden path, computed once. */
struct CampaignContext
{
    const FaultCampaignConfig &cfg;
    DisplayGeometry geom;
    AnalyticDiscriminationModel model;
    PerceptualEncoder encoder;
    ImageF input;              ///< the synthetic source frame
    EccentricityMap ecc;       ///< golden map (centered fixation)
    EncodedFrame golden;       ///< golden encode of input against ecc
    std::vector<uint8_t> goldenPng;  ///< golden PNG of adjustedSrgb
    uint32_t goldenStreamCrc = 0;    ///< seal CRC of the golden stream
    net::PacketizedFrame goldenPackets;  ///< golden wire image

    static DisplayGeometry makeGeom(const FaultCampaignConfig &cfg)
    {
        DisplayGeometry g;
        g.width = cfg.width;
        g.height = cfg.height;
        g.horizontalFovDeg = 100.0;
        g.fixationX = cfg.width / 2.0;
        g.fixationY = cfg.height / 2.0;
        return g;
    }

    static PipelineParams makePipeline(const FaultCampaignConfig &cfg)
    {
        PipelineParams p;
        p.tileSize = cfg.tileSize;
        p.threads = cfg.threads;
        return p;
    }

    explicit CampaignContext(const FaultCampaignConfig &config)
        : cfg(config), geom(makeGeom(config)),
          encoder(model, makePipeline(config)),
          input(syntheticFrame(config.width, config.height,
                               config.seed)),
          ecc(geom), golden(encoder.encodeFrame(input, ecc))
    {
        goldenPng = pngEncode(golden.adjustedSrgb);
        goldenStreamCrc =
            crc32(golden.bdStream.data(), golden.bdStream.size());
        net::PacketizerParams pp;
        pp.sessionId = kNetSessionId;
        pp.streamId = kNetStreamId;
        goldenPackets =
            net::packetizeFrame(golden.bdStream, 0, &ecc, pp);
    }
};

enum class Outcome
{
    Detected,
    SilentCorrupt,
    Benign,
    Crash,
};

void
tally(SurfaceOutcome &out, Outcome o)
{
    ++out.trials;
    switch (o) {
    case Outcome::Detected:      ++out.detected; break;
    case Outcome::SilentCorrupt: ++out.silentCorrupt; break;
    case Outcome::Benign:        ++out.benign; break;
    case Outcome::Crash:         ++out.crashes; break;
    }
}

/** Classify a delivered image against the golden reference. */
Outcome
classifyDelivered(const ImageU8 &delivered, const ImageU8 &golden)
{
    return delivered == golden ? Outcome::Benign
                               : Outcome::SilentCorrupt;
}

/**
 * TileScratch: flip bits of the adjusted linear frame between the
 * tile adjustment and the quantize + BD encode. Neither configuration
 * defends this surface (the measured gap that motivates duplicating
 * the adjustment itself, docs/FAULTS.md "Residual exposure"): the
 * classification is whether the flip survives quantization.
 */
Outcome
runTileScratchTrial(CampaignContext &ctx, FaultInjector &inj,
                    int flips, bool /*hardened*/)
{
    try {
        static thread_local ImageF scratch;
        static thread_local ImageU8 srgb;
        if (scratch.width() != ctx.input.width() ||
            scratch.height() != ctx.input.height())
            scratch = ImageF(ctx.input.width(), ctx.input.height());
        std::memcpy(scratch.pixels().data(),
                    ctx.golden.adjustedLinear.pixels().data(),
                    scratch.pixels().size() * sizeof(Vec3));
        inj.injectDoubles(
            reinterpret_cast<double *>(scratch.pixels().data()),
            scratch.pixels().size() * 3, flips);
        toSrgb8Into(scratch, srgb);
        return classifyDelivered(srgb, ctx.golden.adjustedSrgb);
    } catch (...) {
        return Outcome::Crash;
    }
}

/**
 * BdStream: flip bits of an encoded bitstream in flight. Baseline
 * defense is the decoder's walk-validation; hardened adds the CRC-32
 * seal checked before the stream reaches a decoder at all.
 */
Outcome
runBdStreamTrial(CampaignContext &ctx, FaultInjector &inj, int flips,
                 bool hardened)
{
    static thread_local std::vector<uint8_t> stream;
    static thread_local ImageU8 decoded;
    static thread_local BdDecodeScratch scratch;
    stream = ctx.golden.bdStream;
    inj.inject(stream, flips);
    if (hardened &&
        crc32(stream.data(), stream.size()) != ctx.goldenStreamCrc)
        return Outcome::Detected;
    try {
        BdCodec::decodeInto(stream, decoded, &scratch);
    } catch (const std::runtime_error &) {
        return Outcome::Detected;  // walk-validation caught it
    } catch (...) {
        return Outcome::Crash;
    }
    return classifyDelivered(decoded, ctx.golden.adjustedSrgb);
}

/**
 * PngPayload: flip bits of a PNG file payload. PNG carries its own
 * CRC-32 per chunk and Adler-32 in the zlib container — the intrinsic
 * defenses both configurations share (the comparison point that
 * motivated promoting those checksums to common/integrity).
 */
Outcome
runPngPayloadTrial(CampaignContext &ctx, FaultInjector &inj,
                   int flips, bool /*hardened*/)
{
    static thread_local std::vector<uint8_t> payload;
    payload = ctx.goldenPng;
    inj.inject(payload, flips);
    try {
        const ImageU8 decoded = pngDecode(payload);
        return classifyDelivered(decoded, ctx.golden.adjustedSrgb);
    } catch (const std::runtime_error &) {
        return Outcome::Detected;
    } catch (...) {
        return Outcome::Crash;
    }
}

/**
 * EccMap: flip bits of the per-stream eccentricity state that steers
 * foveal bypass and adjustment strength. Baseline: the corrupted map
 * silently steers the encode. Hardened: the checksummed gaze state
 * detects the mismatch and recovers by exact rebuild before encoding.
 */
Outcome
runEccMapBaselineTrial(CampaignContext &ctx, EccentricityMap &map,
                       FaultInjector &inj, int flips)
{
    const std::size_t n = static_cast<std::size_t>(map.width()) *
                          static_cast<std::size_t>(map.height());
    inj.injectDoubles(map.data(), n, flips);
    Outcome o;
    try {
        static thread_local EncodedFrame out;
        ctx.encoder.encodeFrameInto(ctx.input, map, out);
        o = classifyDelivered(out.adjustedSrgb,
                              ctx.golden.adjustedSrgb);
    } catch (...) {
        o = Outcome::Crash;
    }
    map.rebuild(ctx.geom);  // restore for the next trial
    return o;
}

Outcome
runEccMapHardenedTrial(CampaignContext &ctx,
                       GazeTrackedEccentricity &gaze,
                       FaultInjector &inj, int flips)
{
    EccentricityMap &map = gaze.mutableMap();
    const std::size_t n = static_cast<std::size_t>(map.width()) *
                          static_cast<std::size_t>(map.height());
    inj.injectDoubles(map.data(), n, flips);
    try {
        if (!gaze.verifyAndRecoverState()) {
            // Detected and recovered; the recovered map must steer an
            // encode back onto the golden output (the map was exact
            // when sealed). A disagreement would mean the recovery
            // itself is broken — surface it as silent corruption.
            static thread_local EncodedFrame out;
            ctx.encoder.encodeFrameInto(ctx.input, gaze.map(), out);
            return out.adjustedSrgb == ctx.golden.adjustedSrgb
                       ? Outcome::Detected
                       : Outcome::SilentCorrupt;
        }
    } catch (...) {
        return Outcome::Crash;
    }
    // Undetected (cannot happen for intra-word flips; keep the
    // accounting honest anyway): encode against the corrupt map.
    static thread_local EncodedFrame out;
    ctx.encoder.encodeFrameInto(ctx.input, gaze.map(), out);
    return classifyDelivered(out.adjustedSrgb,
                             ctx.golden.adjustedSrgb);
}

/**
 * NetPacket: flip bits of one delivery-tier datagram in flight, with
 * the rest of the frame's packets arriving clean. Baseline is the
 * reassembler with per-packet CRC verification off — only the
 * structural parse and the per-packet prefix walk stand between the
 * flip and the framebuffer, and a flip in payload delta bits passes
 * both. Hardened is the product configuration (verifyCrc on): the
 * CRC-32 guarantees detection of 1-3 flips at datagram scale, the
 * packet is rejected, and the tile degrades *visibly* (reported
 * fallback/fill) instead of silently.
 *
 * "Detected" here means the tier refused or flagged the damage: a
 * rejection counter fired, the manifest never validated, or the frame
 * finalized incomplete — every one of those is surfaced in the
 * FrameDeliveryReport a consumer sees. Only a frame that claims
 * complete delivery while differing from the golden image is silent.
 */
Outcome
runNetPacketTrial(CampaignContext &ctx, FaultInjector &inj,
                  std::uint64_t seed, int flips, bool hardened)
{
    net::ReassemblerParams rp;
    rp.sessionId = kNetSessionId;
    rp.verifyCrc = hardened;
    net::FrameReassembler rx(rp);
    // The victim pick must not perturb the flip schedule: draw it
    // from an independent stream of the same trial seed.
    Rng pick(seed ^ 0xA11CE5ull);
    const std::size_t victim = static_cast<std::size_t>(
        pick.uniformInt(ctx.goldenPackets.packets.size()));
    static thread_local ImageU8 delivered;
    static thread_local std::vector<uint8_t> corrupt;
    try {
        for (std::size_t i = 0; i < ctx.goldenPackets.packets.size();
             ++i) {
            if (i != victim) {
                rx.accept(ctx.goldenPackets.packets[i].bytes);
                continue;
            }
            corrupt = ctx.goldenPackets.packets[i].bytes;
            inj.inject(corrupt, flips);
            rx.accept(corrupt);
        }
        const net::FrameDeliveryReport rep =
            rx.finalizeFrame(kNetStreamId, 0, delivered);
        if (rx.rejectedPackets() > 0 || !rep.manifestReceived ||
            !rep.complete)
            return Outcome::Detected;
        return classifyDelivered(delivered, ctx.golden.adjustedSrgb);
    } catch (...) {
        return Outcome::Crash;
    }
}

/**
 * QueueSlot / FrameOutput: flips inside the live EncodeService, via
 * its fault hooks — QueueSlot corrupts the queued input copy after
 * submit() (before the hardened dispatch verify), FrameOutput
 * corrupts the encoded result while it waits for collect() (after the
 * seal). One service runs all trials of a combination; each frame is
 * one trial, seeded by its frame index, so the schedule is identical
 * across configurations.
 */
void
runServiceSurface(CampaignContext &ctx, FaultSurface surface,
                  int flips, bool hardened, SurfaceOutcome &out)
{
    const FaultCampaignConfig &cfg = ctx.cfg;
    ServiceParams params;
    params.threads = cfg.threads;
    params.tileSize = cfg.tileSize;
    params.hardenIntegrity = hardened;
    auto hookSeed = [&, surface, flips](std::uint64_t frame_index) {
        return trialSeed(cfg, surface, flips,
                         static_cast<int>(frame_index));
    };
    if (surface == FaultSurface::QueueSlot) {
        params.preEncodeFaultHook =
            [&ctx, flips, hookSeed](const std::string &,
                                    std::uint64_t frame_index,
                                    ImageF &input) {
                FaultInjector inj(hookSeed(frame_index));
                inj.injectDoubles(
                    reinterpret_cast<double *>(input.pixels().data()),
                    input.pixels().size() * 3, flips);
            };
    } else {
        params.postEncodeFaultHook =
            [flips, hookSeed](const std::string &,
                              std::uint64_t frame_index,
                              EncodedFrame &frame) {
                FaultInjector inj(hookSeed(frame_index));
                inj.inject(frame.adjustedSrgb.data().data(),
                           frame.adjustedSrgb.data().size(), flips);
            };
    }

    EncodeService service(ctx.model, params);
    StreamHandle stream = service.openStream("campaign", ctx.ecc);
    for (int trial = 0; trial < cfg.trialsPerSurface; ++trial) {
        service.submit(stream, ctx.input);
        try {
            FrameLease lease = service.collect(stream);
            tally(out, classifyDelivered(lease->adjustedSrgb,
                                         ctx.golden.adjustedSrgb));
        } catch (const FrameQuarantined &) {
            tally(out, Outcome::Detected);
        } catch (...) {
            tally(out, Outcome::Crash);
        }
    }
}

} // namespace

const SurfaceOutcome *
FaultCampaignReport::find(FaultSurface surface, int flips,
                          bool hardened) const
{
    for (const SurfaceOutcome &o : outcomes)
        if (o.surface == surface && o.flips == flips &&
            o.hardened == hardened)
            return &o;
    return nullptr;
}

SurfaceOutcome
FaultCampaignReport::aggregate(FaultSurface surface,
                               bool hardened) const
{
    SurfaceOutcome sum;
    sum.surface = surface;
    sum.hardened = hardened;
    for (const SurfaceOutcome &o : outcomes) {
        if (o.surface != surface || o.hardened != hardened)
            continue;
        sum.trials += o.trials;
        sum.detected += o.detected;
        sum.silentCorrupt += o.silentCorrupt;
        sum.benign += o.benign;
        sum.crashes += o.crashes;
    }
    return sum;
}

FaultCampaignReport
runFaultCampaign(const FaultCampaignConfig &config)
{
    if (config.width < 1 || config.height < 1)
        throw std::invalid_argument("runFaultCampaign: empty frame");
    if (config.trialsPerSurface < 1)
        throw std::invalid_argument(
            "runFaultCampaign: trialsPerSurface < 1");
    if (config.flipCounts.empty())
        throw std::invalid_argument(
            "runFaultCampaign: no flip counts to sweep");

    CampaignContext ctx(config);
    FaultCampaignReport report;
    report.config = config;

    const FaultSurface surfaces[] = {
        FaultSurface::TileScratch, FaultSurface::BdStream,
        FaultSurface::PngPayload,  FaultSurface::QueueSlot,
        FaultSurface::EccMap,      FaultSurface::FrameOutput,
        FaultSurface::NetPacket,
    };
    for (const bool hardened : {false, true}) {
        for (const FaultSurface surface : surfaces) {
            for (const int flips : config.flipCounts) {
                SurfaceOutcome out;
                out.surface = surface;
                out.flips = flips;
                out.hardened = hardened;

                if (surface == FaultSurface::QueueSlot ||
                    surface == FaultSurface::FrameOutput) {
                    runServiceSurface(ctx, surface, flips, hardened,
                                      out);
                    report.outcomes.push_back(out);
                    continue;
                }

                // Per-trial fixtures of the in-process surfaces.
                EccentricityMap baselineMap(ctx.geom);
                GazeTrackedEccentricity gaze(ctx.geom);
                gaze.sealState();

                for (int trial = 0; trial < config.trialsPerSurface;
                     ++trial) {
                    const std::uint64_t seed =
                        trialSeed(config, surface, flips, trial);
                    FaultInjector inj(seed);
                    Outcome o = Outcome::Crash;
                    switch (surface) {
                    case FaultSurface::TileScratch:
                        o = runTileScratchTrial(ctx, inj, flips,
                                                hardened);
                        break;
                    case FaultSurface::BdStream:
                        o = runBdStreamTrial(ctx, inj, flips,
                                             hardened);
                        break;
                    case FaultSurface::PngPayload:
                        o = runPngPayloadTrial(ctx, inj, flips,
                                               hardened);
                        break;
                    case FaultSurface::EccMap:
                        o = hardened
                                ? runEccMapHardenedTrial(ctx, gaze,
                                                         inj, flips)
                                : runEccMapBaselineTrial(
                                      ctx, baselineMap, inj, flips);
                        break;
                    case FaultSurface::NetPacket:
                        o = runNetPacketTrial(ctx, inj, seed, flips,
                                              hardened);
                        break;
                    default:
                        break;
                    }
                    tally(out, o);
                }
                report.outcomes.push_back(out);
            }
        }
    }
    return report;
}

} // namespace pce
