/**
 * @file
 * Whole-pipeline fault-injection campaign (docs/FAULTS.md).
 *
 * runFaultCampaign() sweeps seeded bit flips (fault_injector.hh) over
 * every named surface of the encode pipeline, once with the stock
 * defenses ("baseline") and once with the selective hardening
 * ("hardened": sealed frames, checksummed queue slots and gaze state
 * — the EncodeService hardenIntegrity path plus CRC-sealed
 * bitstreams), and classifies every trial against a golden reference:
 *
 *  - **detected**: a defense fired — decode validation threw, a
 *    checksum/seal mismatched, the service quarantined the frame, the
 *    gaze state recovered. The fault cannot reach a consumer.
 *  - **silently corrupt**: no defense fired and the delivered output
 *    differs from the golden reference — the fleet-scale hazard the
 *    hardening exists to close.
 *  - **benign**: no defense fired and the output is bit-identical
 *    (the flip landed in bits the pipeline masks, e.g. low mantissa
 *    bits that quantize away).
 *  - **crash**: an exception outside the defense protocol.
 *
 * Trials are paired: the (surface, flips, trial) triple seeds the
 * injector identically in both configurations, so baseline and
 * hardened face the *same* flip schedules and their rates compare
 * directly. Everything — the synthetic input frame included — is
 * deterministic; any trial replays from its coordinates.
 */

#ifndef PCE_FAULT_CAMPAIGN_HH
#define PCE_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "fault/fault_injector.hh"

namespace pce {

/** Campaign shape; defaults give a seconds-scale smoke campaign. */
struct FaultCampaignConfig
{
    /** Synthetic test-frame geometry. */
    int width = 128;
    int height = 128;
    /** BD tile edge and encoder parallelism. */
    int tileSize = 4;
    int threads = 1;
    /** Trials per (surface, flip count, configuration). */
    int trialsPerSurface = 100;
    /** Flip multiplicities swept per surface (single- & multi-bit). */
    std::vector<int> flipCounts = {1, 3};
    /** Master seed; trials derive their own from it. */
    std::uint64_t seed = 0x5eedfa017ull;
};

/** Outcome tallies of one (surface, flip count, configuration). */
struct SurfaceOutcome
{
    FaultSurface surface = FaultSurface::TileScratch;
    int flips = 0;
    bool hardened = false;
    int trials = 0;
    int detected = 0;
    int silentCorrupt = 0;
    int benign = 0;
    int crashes = 0;

    /**
     * Detection coverage over the trials where the fault *mattered*:
     * detected / (trials - benign). Benign flips need no defense, so
     * counting them against coverage would reward surfaces whose
     * faults often mask themselves.
     */
    double coverage() const
    {
        const int consequential = trials - benign;
        return consequential <= 0
                   ? 1.0
                   : static_cast<double>(detected) / consequential;
    }

    /** Fraction of all trials that ended silently corrupt. */
    double silentRate() const
    {
        return trials <= 0
                   ? 0.0
                   : static_cast<double>(silentCorrupt) / trials;
    }
};

/** Full campaign result: one SurfaceOutcome per swept combination. */
struct FaultCampaignReport
{
    FaultCampaignConfig config;
    std::vector<SurfaceOutcome> outcomes;

    /** The outcome of one combination (nullptr when not swept). */
    const SurfaceOutcome *find(FaultSurface surface, int flips,
                               bool hardened) const;

    /**
     * Tallies summed over every flip count of (surface,
     * configuration) — the per-surface coverage row of the report.
     */
    SurfaceOutcome aggregate(FaultSurface surface, bool hardened) const;
};

/** Run the campaign (see file comment). Deterministic in the config. */
FaultCampaignReport runFaultCampaign(const FaultCampaignConfig &config);

} // namespace pce

#endif // PCE_FAULT_CAMPAIGN_HH
