#include "hw/fixed_datapath.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "color/dkl.hh"
#include "common/rng.hh"

namespace pce {

Fixed
Fixed::fromDouble(double v, int frac_bits)
{
    if (frac_bits < 1 || frac_bits > 40)
        throw std::invalid_argument("Fixed: frac_bits out of range");
    const double scaled = v * static_cast<double>(int64_t(1) << frac_bits);
    return Fixed(static_cast<int64_t>(std::llround(scaled)), frac_bits);
}

double
Fixed::toDouble() const
{
    return static_cast<double>(raw_) /
           static_cast<double>(int64_t(1) << fracBits_);
}

Fixed
Fixed::operator+(const Fixed &o) const
{
    return Fixed(raw_ + o.raw_, fracBits_);
}

Fixed
Fixed::operator-(const Fixed &o) const
{
    return Fixed(raw_ - o.raw_, fracBits_);
}

Fixed
Fixed::operator*(const Fixed &o) const
{
    // Full-width product then round-to-nearest shift, as a synthesized
    // multiplier + shifter pair behaves.
    const __int128 prod =
        static_cast<__int128>(raw_) * static_cast<__int128>(o.raw_);
    const __int128 half = __int128(1) << (fracBits_ - 1);
    return Fixed(static_cast<int64_t>((prod + half) >> fracBits_),
                 fracBits_);
}

Fixed
Fixed::sqrt() const
{
    if (raw_ < 0)
        throw std::domain_error("Fixed::sqrt: negative input");
    if (raw_ == 0)
        return *this;
    // sqrt(raw / 2^F) * 2^F = sqrt(raw * 2^F): integer Newton on the
    // widened radicand.
    const __int128 radicand = static_cast<__int128>(raw_) << fracBits_;
    __int128 x = radicand;
    __int128 prev = 0;
    // Newton iterations converge quadratically; 64 caps pathological
    // starts.
    for (int i = 0; i < 64 && x != prev; ++i) {
        prev = x;
        x = (x + radicand / x) >> 1;
    }
    // Round to nearest: check (x+1)^2.
    if ((x + 1) * (x + 1) <= radicand)
        ++x;
    return Fixed(static_cast<int64_t>(x), fracBits_);
}

Fixed
Fixed::reciprocal() const
{
    if (raw_ == 0)
        throw std::domain_error("Fixed::reciprocal: zero input");
    // (1 * 2^F) / (raw / 2^F) = 2^(2F) / raw, rounded.
    const __int128 numer = __int128(1) << (2 * fracBits_);
    const __int128 q = (numer + raw_ / 2) / raw_;
    return Fixed(static_cast<int64_t>(q), fracBits_);
}

namespace {

/** Fixed-point 3-vector helpers over the same Q format. */
struct FixedVec3
{
    Fixed x, y, z;

    static FixedVec3
    fromVec(const Vec3 &v, int frac_bits)
    {
        return {Fixed::fromDouble(v.x, frac_bits),
                Fixed::fromDouble(v.y, frac_bits),
                Fixed::fromDouble(v.z, frac_bits)};
    }

    Vec3 toVec() const { return {x.toDouble(), y.toDouble(), z.toDouble()}; }

    Fixed
    dot(const FixedVec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    FixedVec3
    cross(const FixedVec3 &o) const
    {
        return {y * o.z - z * o.y,
                z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    FixedVec3
    scale(const Fixed &s) const
    {
        return {x * s, y * s, z * s};
    }
};

/** 3x3 fixed matrix-vector product. */
FixedVec3
matVec(const Mat3 &m, const FixedVec3 &v, int frac_bits)
{
    FixedVec3 rows[3];
    for (int r = 0; r < 3; ++r)
        rows[r] = FixedVec3::fromVec(m.row(r), frac_bits);
    return {rows[0].dot(v), rows[1].dot(v), rows[2].dot(v)};
}

} // namespace

ExtremaPair
extremaAlongAxisFixed(const Ellipsoid &e, int axis,
                      const FixedDatapathConfig &config)
{
    if (axis < 0 || axis > 2)
        throw std::invalid_argument("extremaAlongAxisFixed: bad axis");
    const int f = config.fracBits;

    // Normalize the reciprocal semi-axes by the largest one so every
    // datapath value is O(1): n_i = a_min / a_i in (0, 1].
    const double a_min = e.semiAxes.minCoeff();
    const Vec3 n(a_min / e.semiAxes.x, a_min / e.semiAxes.y,
                 a_min / e.semiAxes.z);

    // Normalized quadric quadratic part: Q3' = M^T diag(n^2) M. This is
    // the Eq. 10 MAC-array stage; the scale factor a_min^2 cancels in
    // the Eq. 12 cross product (direction only).
    const Mat3 &m = rgb2dklMatrix();
    const Mat3 q3 =
        m.transpose() * Mat3::diagonal(n.cwiseMul(n)) * m;

    const int a1 = (axis + 1) % 3;
    const int a2 = (axis + 2) % 3;
    const FixedVec3 n1 = FixedVec3::fromVec(q3.row(a1) * 2.0, f);
    const FixedVec3 n2 = FixedVec3::fromVec(q3.row(a2) * 2.0, f);
    // Eq. 12: v = n1 x n2. The DKL matrix's opponent rows are near
    // negatives of each other, so the quadric is close to rank one and
    // the cross product suffers heavy cancellation: |v| can be 1e-3 of
    // the operand products. Hardware handles this the way synthesized
    // MAC trees do: the subtraction operates on the *full-width*
    // products (no truncation between multiplier and subtractor), and
    // the result is block-normalized (leading-zero count + barrel
    // shift) before entering the divider. The extrema *direction* is
    // all Eq. 13 needs, so the normalization shift cancels.
    FixedVec3 v;
    {
        // Full-width component differences at scale 2^(2f).
        const auto wide = [](const Fixed &a, const Fixed &b,
                             const Fixed &c, const Fixed &d) {
            return static_cast<__int128>(a.raw()) * b.raw() -
                   static_cast<__int128>(c.raw()) * d.raw();
        };
        const __int128 wx = wide(n1.y, n2.z, n1.z, n2.y);
        const __int128 wy = wide(n1.z, n2.x, n1.x, n2.z);
        const __int128 wz = wide(n1.x, n2.y, n1.y, n2.x);

        const auto absw = [](__int128 w) { return w < 0 ? -w : w; };
        const __int128 maxabs =
            std::max({absw(wx), absw(wy), absw(wz)});
        if (maxabs == 0)
            throw std::domain_error(
                "extremaAlongAxisFixed: extrema vector underflowed; "
                "datapath too narrow for this ellipsoid");

        // Normalize so the largest component sits near 1.0 in Q(f).
        int bits = 0;
        for (__int128 m = maxabs; m > 0; m >>= 1)
            ++bits;
        const int shift_right = bits - f;  // may be negative
        const auto renorm = [&](__int128 w) {
            const __int128 s = shift_right >= 0 ? (w >> shift_right)
                                                : (w << -shift_right);
            return Fixed::fromRaw(static_cast<int64_t>(s), f);
        };
        v = {renorm(wx), renorm(wy), renorm(wz)};
    }

    // Eq. 13a: x = M v.
    const FixedVec3 x = matVec(m, v, f);

    // Eq. 13b with the same normalization:
    // t = 1 / sqrt(sum x_i^2 / a_i^2) = a_min / sqrt(sum (x_i n_i)^2).
    // The products x_i * n_i can be ~1e-3 (thin ellipsoids), so this
    // stage also keeps full-width products and block-normalizes by a
    // *tracked* shift k (undone in the output scaling stage, where the
    // RTL folds it into the same barrel shifter as a_min).
    const FixedVec3 nfix = FixedVec3::fromVec(n, f);
    __int128 s[3] = {
        static_cast<__int128>(x.x.raw()) * nfix.x.raw(),
        static_cast<__int128>(x.y.raw()) * nfix.y.raw(),
        static_cast<__int128>(x.z.raw()) * nfix.z.raw(),
    };
    const auto absw = [](__int128 w) { return w < 0 ? -w : w; };
    const __int128 s_max = std::max({absw(s[0]), absw(s[1]), absw(s[2])});
    if (s_max == 0)
        throw std::domain_error(
            "extremaAlongAxisFixed: norm underflowed; datapath too "
            "narrow for this ellipsoid");
    int s_bits = 0;
    for (__int128 m = s_max; m > 0; m >>= 1)
        ++s_bits;
    const int k = 2 * f - s_bits;  // left-shift to bring max near 1.0
    Fixed sh[3];
    for (int i = 0; i < 3; ++i) {
        const __int128 shifted = k >= 0 ? (s[i] << k) : (s[i] >> -k);
        sh[i] = Fixed::fromRaw(static_cast<int64_t>(shifted >> f), f);
    }
    // sh represents S * 2^k with S = x (.) n; norm' = |S| * 2^k.
    const Fixed norm =
        (sh[0] * sh[0] + sh[1] * sh[1] + sh[2] * sh[2]).sqrt();
    // The divider: t' = 1/norm' = t * 2^-k.
    const Fixed t_prime = norm.reciprocal();

    // Eq. 13c: H/L = M^-1 (kappa +/- x * t), t = a_min * t' * 2^k.
    const FixedVec3 xt = x.scale(t_prime);
    const Vec3 offset_dkl = xt.toVec() * (a_min * std::ldexp(1.0, k));

    const Mat3 &inv = dkl2rgbMatrix();
    const Vec3 p_plus = inv * (e.centerDkl + offset_dkl);
    const Vec3 p_minus = inv * (e.centerDkl - offset_dkl);

    ExtremaPair pair;
    if (p_plus[axis] >= p_minus[axis]) {
        pair.high = p_plus;
        pair.low = p_minus;
    } else {
        pair.high = p_minus;
        pair.low = p_plus;
    }
    return pair;
}

FixedDatapathError
compareFixedDatapath(const DiscriminationModel &model, int samples,
                     const FixedDatapathConfig &config)
{
    Rng rng(0xf1);
    FixedDatapathError err;
    double sq_sum = 0.0;
    std::size_t n = 0;
    for (int i = 0; i < samples; ++i) {
        const Vec3 rgb(rng.uniform(0.05, 0.95), rng.uniform(0.05, 0.95),
                       rng.uniform(0.05, 0.95));
        const Ellipsoid e =
            model.ellipsoidFor(rgb, rng.uniform(5.0, 40.0));
        for (int axis : {0, 2}) {
            const ExtremaPair ref = extremaAlongAxis(e, axis);
            const ExtremaPair fix =
                extremaAlongAxisFixed(e, axis, config);
            for (const auto &[a, b] :
                 {std::pair(ref.high, fix.high),
                  std::pair(ref.low, fix.low)}) {
                for (int k = 0; k < 3; ++k) {
                    const double d = std::abs(a[k] - b[k]);
                    err.maxAbsError = std::max(err.maxAbsError, d);
                    sq_sum += d * d;
                    ++n;
                }
            }
            err.maxMembership = std::max(
                {err.maxMembership, e.membership(rgbToDkl(fix.high)),
                 e.membership(rgbToDkl(fix.low))});
        }
    }
    err.rmsError = n == 0 ? 0.0 : std::sqrt(sq_sum / n);
    return err;
}

} // namespace pce
