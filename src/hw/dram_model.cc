#include "hw/dram_model.hh"

#include <stdexcept>

namespace pce {

DramModel::DramModel(const DramConfig &config) : config_(config)
{
    if (config_.energyPerPixelPj <= 0 || config_.accessesPerFrame <= 0)
        throw std::invalid_argument("DramModel: invalid configuration");
}

double
DramModel::transferEnergyMj(double bytes) const
{
    return bytes * config_.energyPerBytePj() * 1e-9;
}

double
DramModel::streamPowerMw(double bytes_per_frame, double fps) const
{
    // mJ per frame times frames per second = mW.
    return transferEnergyMj(bytes_per_frame * config_.accessesPerFrame) *
           fps;
}

double
DramModel::powerSavingMw(double bytes_base, double bytes_ours, double fps,
                         double overhead_mw) const
{
    return streamPowerMw(bytes_base, fps) -
           streamPowerMw(bytes_ours, fps) - overhead_mw;
}

} // namespace pce
