#include "hw/cau_sim.hh"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace pce {

CauPipelineSim::CauPipelineSim(const CauSimConfig &config)
    : config_(config)
{
    if (config_.peCount <= 0 || config_.bufferTilesPerPe <= 0 ||
        config_.tilePixels <= 0 || config_.gpuPixelsPerCycle <= 0.0)
        throw std::invalid_argument("CauPipelineSim: invalid config");
    if (config_.traffic == GpuTraffic::Bursty &&
        (config_.dutyCycle <= 0.0 || config_.dutyCycle > 1.0 ||
         config_.burstCycles <= 0))
        throw std::invalid_argument(
            "CauPipelineSim: invalid burst parameters");
}

CauSimResult
CauPipelineSim::simulateFrame(uint64_t total_pixels) const
{
    CauSimResult result;
    const uint64_t total_tiles =
        (total_pixels + config_.tilePixels - 1) / config_.tilePixels;

    // Per-PE buffer occupancy in tiles.
    std::vector<int> buffers(config_.peCount, 0);

    // Pixel accumulator toward the next complete tile, and the
    // round-robin PE cursor for tile placement.
    double pixel_accum = 0.0;
    uint64_t tiles_produced = 0;
    uint64_t tiles_consumed = 0;
    int rr_cursor = 0;
    // Tiles formed but not yet accepted by a (full) buffer.
    uint64_t backlog_tiles = 0;

    const double peak_rate =
        config_.traffic == GpuTraffic::Uniform
            ? config_.gpuPixelsPerCycle
            : config_.gpuPixelsPerCycle / config_.dutyCycle;
    const int period =
        config_.traffic == GpuTraffic::Uniform
            ? 1
            : static_cast<int>(config_.burstCycles / config_.dutyCycle);

    // Hard bound against runaway loops (bug guard): even a 1-PE CAU
    // drains one tile per cycle once producing stops.
    const uint64_t cycle_limit =
        16 * total_tiles + 16 * config_.peCount + 1024;

    uint64_t cycle = 0;
    while (tiles_consumed < total_tiles) {
        if (cycle > cycle_limit)
            throw std::logic_error("CauPipelineSim: no forward progress");

        // --- Produce phase -----------------------------------------
        bool stalled_this_cycle = false;
        if (tiles_produced < total_tiles || backlog_tiles > 0) {
            if (backlog_tiles == 0 && tiles_produced < total_tiles) {
                const bool bursting =
                    config_.traffic == GpuTraffic::Uniform ||
                    (cycle % period) <
                        static_cast<uint64_t>(config_.burstCycles);
                if (bursting) {
                    // A ragged final tile is modeled as a full tile's
                    // worth of production (< 16 pixels of tail error).
                    pixel_accum += peak_rate;
                    while (pixel_accum >=
                               static_cast<double>(config_.tilePixels) &&
                           tiles_produced + backlog_tiles <
                               total_tiles) {
                        pixel_accum -= config_.tilePixels;
                        ++backlog_tiles;
                    }
                }
            }
            // Place backlog tiles round-robin; a full target buffer
            // back-pressures the GPU for this cycle.
            while (backlog_tiles > 0) {
                if (buffers[rr_cursor] >= config_.bufferTilesPerPe) {
                    stalled_this_cycle = true;
                    break;
                }
                ++buffers[rr_cursor];
                result.maxBufferOccupancy = std::max(
                    result.maxBufferOccupancy, buffers[rr_cursor]);
                rr_cursor = (rr_cursor + 1) % config_.peCount;
                --backlog_tiles;
                ++tiles_produced;
            }
        }
        if (stalled_this_cycle)
            ++result.gpuStallCycles;

        // --- Consume phase ------------------------------------------
        for (int pe = 0; pe < config_.peCount; ++pe) {
            if (buffers[pe] > 0) {
                --buffers[pe];
                ++result.peBusyCycles;
                ++tiles_consumed;
            } else {
                ++result.peStarveCycles;
            }
        }
        ++cycle;
    }

    result.cycles = cycle;
    result.tilesProcessed = tiles_consumed;
    if (tiles_consumed != total_tiles)
        throw std::logic_error("CauPipelineSim: tile conservation");
    return result;
}

} // namespace pce
