/**
 * @file
 * Cycle-approximate simulator of the CAU pipeline (paper Sec. 4.2).
 *
 * The analytical CauModel answers "how many PEs / how much area"; this
 * simulator answers the *dynamic* questions the paper raises when sizing
 * the pending buffers: "The buffers must be properly sized so as to not
 * stall or starve the CAU pipeline" and "The number of PEs in a CAU must
 * be properly decided so as to not stall either the GPU nor the CAU".
 *
 * The model, at CAU-cycle granularity:
 *  - the GPU produces pixels at a configurable rate and burstiness
 *    (uniform, or on/off bursts at peak rate with a duty cycle);
 *  - completed tiles are assigned round-robin to per-PE pending buffers
 *    (each holds bufferTilesPerPe tiles; the paper double-buffers);
 *  - when the target buffer is full the GPU back-pressures (a stall:
 *    rendered pixels with nowhere to go);
 *  - each PE is fully pipelined and retires one tile per cycle when its
 *    buffer is non-empty, otherwise it starves for that cycle.
 *
 * The simulation is deterministic and conservation-checked: every pixel
 * produced is eventually consumed exactly once.
 */

#ifndef PCE_HW_CAU_SIM_HH
#define PCE_HW_CAU_SIM_HH

#include <cstdint>

namespace pce {

/** GPU traffic shape feeding the CAU. */
enum class GpuTraffic
{
    Uniform,  ///< constant pixels/cycle
    Bursty,   ///< peak-rate bursts separated by idle gaps
};

/** Configuration of one simulation run. */
struct CauSimConfig
{
    /** Number of PEs (the paper's design point is 96). */
    int peCount = 96;
    /** Pending-buffer capacity per PE, in tiles (paper: 2). */
    int bufferTilesPerPe = 2;
    /** Pixels per tile (4x4). */
    int tilePixels = 16;
    /**
     * Average GPU pixels per CAU cycle. The paper's peak is
     * 512 cores x 3 px = 1536 (96 tiles) per CAU cycle.
     */
    double gpuPixelsPerCycle = 1536.0;
    /** Traffic shape. */
    GpuTraffic traffic = GpuTraffic::Uniform;
    /**
     * For Bursty traffic: burst length in cycles. Bursts run at
     * gpuPixelsPerCycle / dutyCycle (peak), followed by idle cycles so
     * the average matches gpuPixelsPerCycle.
     */
    int burstCycles = 8;
    /** For Bursty traffic: fraction of time spent bursting, (0, 1]. */
    double dutyCycle = 0.5;
};

/** Outcome of a simulated frame. */
struct CauSimResult
{
    uint64_t cycles = 0;           ///< total cycles to drain the frame
    uint64_t gpuStallCycles = 0;   ///< cycles the GPU was back-pressured
    uint64_t peBusyCycles = 0;     ///< sum over PEs of busy cycles
    uint64_t peStarveCycles = 0;   ///< sum over PEs of starved cycles
    uint64_t tilesProcessed = 0;
    int maxBufferOccupancy = 0;    ///< peak tiles in any one buffer

    /** Mean PE utilization over the run. */
    double peUtilization() const
    {
        const uint64_t total = peBusyCycles + peStarveCycles;
        return total == 0 ? 0.0
                          : static_cast<double>(peBusyCycles) /
                                static_cast<double>(total);
    }

    /** Fraction of cycles the GPU was stalled on the CAU. */
    double
    gpuStallFraction() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(gpuStallCycles) /
                                 static_cast<double>(cycles);
    }
};

/** The cycle-approximate pipeline simulator. */
class CauPipelineSim
{
  public:
    explicit CauPipelineSim(const CauSimConfig &config);

    const CauSimConfig &config() const { return config_; }

    /**
     * Simulate processing a frame of @p total_pixels pixels.
     * @throws std::logic_error if conservation is violated (bug guard).
     */
    CauSimResult simulateFrame(uint64_t total_pixels) const;

  private:
    CauSimConfig config_;
};

} // namespace pce

#endif // PCE_HW_CAU_SIM_HH
