/**
 * @file
 * Fixed-point model of the CAU's Compute Extrema Block (paper Fig. 8).
 *
 * The CAU is an ASIC: its dividers, square roots, and MAC arrays
 * (Synopsys DesignWare parts, Sec. 5.1) operate on fixed-point values,
 * not the doubles of src/core/quadric.cc. This module reproduces the
 * Eq. 11-13 datapath with explicit quantization so the repository can
 * answer the hardware question the paper's RTL implicitly settled: how
 * wide must the datapath be before quantization neither breaks the
 * perceptual constraint nor costs compression?
 *
 * Dynamic-range handling mirrors what the RTL must do: the quadric's
 * 1/a^2 coefficients span ~1e2..1e9, so the datapath normalizes the
 * ellipsoid by its largest reciprocal semi-axis first (the extrema
 * *direction* is scale-invariant), computes in Q-format, and rescales
 * at the end.
 *
 * An ablation bench (bench/ablation_fixedpoint) sweeps the fractional
 * width; tests assert convergence to the double-precision datapath.
 */

#ifndef PCE_HW_FIXED_DATAPATH_HH
#define PCE_HW_FIXED_DATAPATH_HH

#include <cstdint>

#include "core/quadric.hh"
#include "perception/discrimination.hh"

namespace pce {

/** Datapath width configuration. */
struct FixedDatapathConfig
{
    /** Fractional bits of the Q-format (total width = 64 minus guard). */
    int fracBits = 24;
};

/**
 * A Q-format fixed-point value on int64 with round-to-nearest
 * multiplication (the 128-bit intermediate models a full-width
 * multiplier followed by a truncating shifter, as synthesized MACs do).
 */
class Fixed
{
  public:
    Fixed() = default;

    /** Quantize a double at the given fractional width. */
    static Fixed fromDouble(double v, int frac_bits);

    /** Wrap a raw integer payload (barrel-shifter outputs). */
    static Fixed fromRaw(int64_t raw, int frac_bits)
    { return Fixed(raw, frac_bits); }

    /** Raw integer payload (scaled by 2^fracBits). */
    int64_t raw() const { return raw_; }
    int fracBits() const { return fracBits_; }

    double toDouble() const;

    Fixed operator+(const Fixed &o) const;
    Fixed operator-(const Fixed &o) const;
    Fixed operator*(const Fixed &o) const;

    /** Integer-Newton square root; input must be non-negative. */
    Fixed sqrt() const;

    /** Reciprocal via long division; input must be non-zero. */
    Fixed reciprocal() const;

  private:
    Fixed(int64_t raw, int frac_bits) : raw_(raw), fracBits_(frac_bits)
    {}

    int64_t raw_ = 0;
    int fracBits_ = 0;
};

/**
 * Eq. 11-13 extrema computed on the fixed-point datapath.
 *
 * @param e      Discrimination ellipsoid (DKL center + semi-axes).
 * @param axis   0 = Red, 1 = Green, 2 = Blue.
 * @param config Datapath width.
 */
ExtremaPair extremaAlongAxisFixed(const Ellipsoid &e, int axis,
                                  const FixedDatapathConfig &config);

/** Accuracy of the fixed datapath against the double reference. */
struct FixedDatapathError
{
    double maxAbsError = 0.0;  ///< worst per-component extrema error
    double rmsError = 0.0;
    /**
     * Worst ellipsoid-membership value of the fixed extrema: 1 means
     * exactly on the surface; above 1 + epsilon means the quantized
     * datapath stepped outside the perceptual constraint.
     */
    double maxMembership = 0.0;
};

/**
 * Compare the fixed and double datapaths over random colors and
 * eccentricities drawn from @p model (deterministic seed).
 */
FixedDatapathError compareFixedDatapath(const DiscriminationModel &model,
                                        int samples,
                                        const FixedDatapathConfig &config);

} // namespace pce

#endif // PCE_HW_FIXED_DATAPATH_HH
