#include "hw/cau_model.hh"

#include <cmath>
#include <stdexcept>

namespace pce {

CauModel::CauModel(const CauConfig &config) : config_(config)
{
    if (config_.cycleTimeNs <= 0 || config_.gpuFreqMhz <= 0 ||
        config_.shaderCores <= 0 || config_.tileSize <= 0)
        throw std::invalid_argument("CauModel: invalid configuration");
}

double
CauModel::frequencyMhz() const
{
    return 1000.0 / config_.cycleTimeNs;
}

int
CauModel::pixelsPerCauCycle() const
{
    // Each shader core can produce up to ceil(gpuFreq / cauFreq) pixels
    // during one CAU cycle (Sec. 6.1: three at 441 vs 166.7 MHz).
    const double ratio = config_.gpuFreqMhz / frequencyMhz();
    return static_cast<int>(std::ceil(ratio)) * config_.shaderCores;
}

int
CauModel::peCount() const
{
    const int tile_pixels = config_.tileSize * config_.tileSize;
    return (pixelsPerCauCycle() + tile_pixels - 1) / tile_pixels;
}

double
CauModel::peAreaTotalMm2() const
{
    return config_.peAreaMm2 * peCount();
}

double
CauModel::totalAreaMm2() const
{
    return peAreaTotalMm2() + config_.bufferAreaTotalMm2;
}

double
CauModel::totalPowerMw() const
{
    return config_.pePowerUw * peCount() / 1000.0;
}

std::size_t
CauModel::pendingBufferBytes() const
{
    const int tile_pixels = config_.tileSize * config_.tileSize;
    const double per_tile =
        tile_pixels * (config_.pixelBytes + config_.ellipsoidParamBytes);
    return static_cast<std::size_t>(per_tile * config_.tilesPerBuffer *
                                    peCount());
}

double
CauModel::compressionDelayUs(int width, int height) const
{
    // Sustained-rate model: the GPU feeds one pixel per shader core per
    // CAU cycle on average; the fully pipelined CAU keeps pace.
    const double pixels = static_cast<double>(width) * height;
    const double cycles = pixels / config_.shaderCores;
    return cycles * config_.cycleTimeNs / 1000.0;
}

bool
CauModel::meetsFrameRate(int width, int height, double fps) const
{
    const double budget_us = 1e6 / fps;
    return compressionDelayUs(width, height) <= budget_us;
}

} // namespace pce
