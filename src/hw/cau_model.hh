/**
 * @file
 * Analytical model of the Color Adjustment Unit (paper Sec. 4 and 6.1).
 *
 * The paper implements the CAU in SystemVerilog and synthesizes it with
 * a TSMC 7nm flow; we cannot run an EDA flow here, so this model is
 * parameterized with the paper's reported post-synthesis constants and
 * reproduces the Sec. 6.1 arithmetic exactly (substitution documented in
 * DESIGN.md):
 *
 *  - CAU cycle time 6 ns (~166.7 MHz), fully pipelined: 1 tile/PE/cycle;
 *  - Adreno 650: 441 MHz, 512 shader cores, 1 pixel/core/GPU-cycle peak,
 *    so up to ceil(441/166.7) = 3 pixels/core per CAU cycle; matching
 *    the GPU's peak output of 512*3 pixels (96 4x4 tiles) per CAU cycle
 *    requires 96 PEs;
 *  - per-PE area 0.022 mm^2, per-PE+buffer power 2.1 uW;
 *  - pending buffers hold 2 tiles each (double buffering) at 12 B per
 *    pixel (RGBA8 pixel + packed ellipsoid parameters), which lands on
 *    the paper's 36 KB total: 16 px * 12 B * 2 tiles * 96 PEs.
 *
 * The end-to-end compression delay for a frame follows the paper's
 * sustained-rate calculation (one pixel per shader core per CAU cycle):
 * 5408x2736 / 512 cores * 6 ns = 173.4 us, the figure quoted in
 * Sec. 6.1.
 */

#ifndef PCE_HW_CAU_MODEL_HH
#define PCE_HW_CAU_MODEL_HH

#include <cstddef>

namespace pce {

/** Synthesis/platform constants (defaults = paper values). */
struct CauConfig
{
    double cycleTimeNs = 6.0;       ///< CAU cycle time
    double gpuFreqMhz = 441.0;      ///< Adreno 650 nominal clock
    int shaderCores = 512;          ///< Adreno 650 shader cores
    int tileSize = 4;               ///< tile edge (16 pixels)
    double peAreaMm2 = 0.022;       ///< per-PE area, TSMC 7nm
    double pePowerUw = 2.1;         ///< per PE + buffer power
    double bufferAreaTotalMm2 = 0.03;  ///< all pending buffers
    int tilesPerBuffer = 2;         ///< double buffering
    double pixelBytes = 4.0;        ///< RGBA8 pixel in the buffer
    double ellipsoidParamBytes = 8.0;  ///< packed (a,b,c) parameters
};

/** The analytical CAU model. */
class CauModel
{
  public:
    explicit CauModel(const CauConfig &config = {});

    const CauConfig &config() const { return config_; }

    /** CAU clock frequency in MHz. */
    double frequencyMhz() const;

    /** Peak GPU pixels generated per CAU cycle. */
    int pixelsPerCauCycle() const;

    /** PEs needed to match the GPU's peak tile rate (Sec. 6.1: 96). */
    int peCount() const;

    /** Total PE area, mm^2 (Sec. 6.1: 2.1 mm^2). */
    double peAreaTotalMm2() const;

    /** Total area including pending buffers, mm^2. */
    double totalAreaMm2() const;

    /** Total CAU power in mW (Sec. 6.1: ~0.2016 mW). */
    double totalPowerMw() const;

    /** Pending buffer capacity in bytes across all PEs (Sec. 6.1: 36 KB). */
    std::size_t pendingBufferBytes() const;

    /**
     * Sustained compression delay for one frame of w x h pixels, in
     * microseconds (Sec. 6.1: 173.4 us at 5408 x 2736).
     */
    double compressionDelayUs(int width, int height) const;

    /**
     * Whether the CAU keeps up with a target frame rate at the given
     * resolution (delay <= frame budget).
     */
    bool meetsFrameRate(int width, int height, double fps) const;

  private:
    CauConfig config_;
};

} // namespace pce

#endif // PCE_HW_CAU_MODEL_HH
