/**
 * @file
 * DRAM traffic energy model (paper Sec. 5.1 and Fig. 13).
 *
 * The paper estimates DRAM access energy with Micron's system power
 * calculator for an 8 Gb, 32-bit LPDDR4 part: 3,477 pJ per (24-bit)
 * pixel on average, i.e. 1,159 pJ/byte. Framebuffer traffic per frame is
 * written once (GPU -> DRAM) and read once (DRAM -> display controller),
 * both compressed, so energy scales with the compressed frame size.
 *
 * Power saving over a baseline at a given resolution/frame rate:
 *   P_save = (bytes_base - bytes_ours) * accesses * fps * E_byte
 *            - P_CAU
 * which reproduces the structure of Fig. 13 (the CAU's 201.6 uW is
 * "faithfully accounted for", Sec. 6.2).
 */

#ifndef PCE_HW_DRAM_MODEL_HH
#define PCE_HW_DRAM_MODEL_HH

#include <cstddef>

namespace pce {

/** LPDDR4 energy constants (defaults = paper values). */
struct DramConfig
{
    /**
     * Average access energy per 24-bit pixel, pJ (Micron calculator).
     * Calibration against the paper's Fig. 13 indicates this constant
     * covers the full framebuffer round trip (GPU write + display
     * read), so accessesPerFrame defaults to 1.
     */
    double energyPerPixelPj = 3477.0;
    /** Framebuffer round trips per frame covered by the constant. */
    double accessesPerFrame = 1.0;

    /** Energy per byte, pJ. */
    double energyPerBytePj() const { return energyPerPixelPj / 3.0; }
};

/** Traffic/energy/power arithmetic for compressed framebuffers. */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config = {});

    const DramConfig &config() const { return config_; }

    /** Energy to move @p bytes through DRAM once, in mJ. */
    double transferEnergyMj(double bytes) const;

    /**
     * Average DRAM power for a stream of compressed frames, in mW.
     * @param bytes_per_frame Compressed frame size in bytes.
     * @param fps Frame rate.
     */
    double streamPowerMw(double bytes_per_frame, double fps) const;

    /**
     * Power saved by an encoding producing @p bytes_ours per frame
     * versus @p bytes_base, minus @p overhead_mw of encoder power
     * (Fig. 13), in mW.
     */
    double powerSavingMw(double bytes_base, double bytes_ours, double fps,
                         double overhead_mw) const;

  private:
    DramConfig config_;
};

} // namespace pce

#endif // PCE_HW_DRAM_MODEL_HH
