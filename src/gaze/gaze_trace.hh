/**
 * @file
 * Eye-tracked gaze traces: samples, I-VT classification, generators.
 *
 * The paper's premise is that color-discrimination thresholds widen
 * with retinal eccentricity; the encoder therefore needs to know where
 * the user is looking *this frame*. A real deployment feeds the
 * encoder from an eye tracker delivering timestamped gaze positions at
 * (or above) the display refresh rate. This module models that input:
 *
 *  - GazeSample / GazeTrace: timestamped gaze positions in pixel
 *    coordinates of one eye's display.
 *  - I-VT classification (velocity-threshold identification, the
 *    standard fixation/saccade segmentation): samples whose angular
 *    gaze velocity exceeds a threshold are saccades. During a saccade
 *    the visual system suppresses perception ("saccadic suppression"),
 *    which the encoder exploits by dropping the per-tile adjustment
 *    work for those frames (core/pipeline.hh, encodeFrameGazeInto).
 *  - Synthetic trace generators (smooth pursuit, saccade jumps,
 *    tracker noise) for benches/tests, and CSV loading for replaying
 *    recorded traces.
 *
 * Angular velocity between two gaze positions is the angle between the
 * two view rays of the display geometry (the same pinhole model as
 * perception/display.hh), divided by the sample interval.
 */

#ifndef PCE_GAZE_GAZE_TRACE_HH
#define PCE_GAZE_GAZE_TRACE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "perception/display.hh"

namespace pce {

/** One eye-tracker sample, pixel coordinates on the eye's display. */
struct GazeSample
{
    double timeSeconds = 0.0;
    double x = 0.0;
    double y = 0.0;

    bool operator==(const GazeSample &) const = default;
};

/** Per-sample I-VT label. */
enum class GazePhase
{
    Fixation,  ///< gaze velocity below the saccade threshold
    Saccade,   ///< gaze velocity above it (perception suppressed)
};

/**
 * Default I-VT saccade velocity threshold, degrees of visual angle
 * per second. Classic I-VT thresholds sit between 30 and 100 deg/s;
 * smooth pursuit tops out near 30 deg/s, saccades peak in the
 * hundreds, so the band between is all safe.
 */
inline constexpr double kSaccadeVelocityDegPerSec = 70.0;

/** Angle (degrees) between the view rays through two display points. */
double gazeAngleDeg(const DisplayGeometry &geom, double x0, double y0,
                    double x1, double y1);

/**
 * Streaming I-VT classifier: feed samples in time order, get the phase
 * of each. The first sample (and any non-monotonic timestamp) is a
 * Fixation — with no valid interval there is no velocity estimate, and
 * Fixation is the conservative label (the encoder does full-quality
 * work for it).
 */
class IVTClassifier
{
  public:
    explicit IVTClassifier(
        const DisplayGeometry &geom,
        double saccade_velocity_deg_per_sec = kSaccadeVelocityDegPerSec);

    /** Classify the next sample; also records it as the predecessor. */
    GazePhase update(const GazeSample &sample);

    /** Velocity (deg/s) computed for the last update; 0 for first. */
    double lastVelocityDegPerSec() const { return lastVelocity_; }

    /** Forget the predecessor (next sample classifies as Fixation). */
    void reset();

  private:
    DisplayGeometry geom_;
    double threshold_;
    bool havePrev_ = false;
    GazeSample prev_{};
    double lastVelocity_ = 0.0;
};

/** A time-ordered gaze recording. */
struct GazeTrace
{
    std::vector<GazeSample> samples;

    bool empty() const { return samples.empty(); }
    std::size_t size() const { return samples.size(); }
};

/**
 * Classify every sample of @p trace with I-VT (one streaming pass).
 * Returns one phase per sample.
 */
std::vector<GazePhase> classifyIVT(
    const GazeTrace &trace, const DisplayGeometry &geom,
    double saccade_velocity_deg_per_sec = kSaccadeVelocityDegPerSec);

/**
 * Smooth pursuit: gaze tracks a target circling the point
 * (@p center_x, @p center_y) at @p radius_px pixels, completing a lap
 * every @p period_seconds, sampled at @p sample_hz for
 * @p duration_seconds. Peak angular velocity is 2*pi*radius/period
 * pixels/s through the display geometry — keep it under the I-VT
 * threshold for an all-fixation trace.
 */
GazeTrace smoothPursuitTrace(double duration_seconds, double sample_hz,
                             double center_x, double center_y,
                             double radius_px, double period_seconds);

/**
 * Saccade jumps: gaze dwells on a uniformly drawn point inside the
 * central @p extent_fraction of the display for an exponentially
 * distributed time (mean @p mean_fixation_seconds), then jumps there
 * in one sample interval — the velocity spike I-VT flags. Deterministic
 * for a given @p rng state.
 */
GazeTrace saccadeJumpTrace(const DisplayGeometry &geom,
                           double duration_seconds, double sample_hz,
                           double mean_fixation_seconds, Rng &rng,
                           double extent_fraction = 0.8);

/**
 * Add zero-mean Gaussian tracker noise (@p sigma_px per axis) to every
 * sample in place — the jitter a real eye tracker superimposes on
 * fixations, which the incremental re-fixation path must absorb
 * without rebuilding.
 */
void addTrackerNoise(GazeTrace &trace, double sigma_px, Rng &rng);

/**
 * Parse a gaze trace from CSV: one `time,x,y` row per sample (seconds,
 * pixels, pixels). Blank lines and `#` comments are skipped, and a
 * leading non-numeric header row is allowed. Timestamps must be
 * strictly increasing. Throws std::runtime_error on malformed input.
 */
GazeTrace loadGazeTraceCsv(std::istream &in);
GazeTrace loadGazeTraceCsv(const std::string &path);

/** Write @p trace as the CSV understood by loadGazeTraceCsv. */
void saveGazeTraceCsv(const GazeTrace &trace, std::ostream &out);

} // namespace pce

#endif // PCE_GAZE_GAZE_TRACE_HH
