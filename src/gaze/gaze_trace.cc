#include "gaze/gaze_trace.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/vec3.hh"

namespace pce {

double
gazeAngleDeg(const DisplayGeometry &geom, double x0, double y0,
             double x1, double y1)
{
    const double f = geom.focalPixels();
    const double cx = geom.width / 2.0;
    const double cy = geom.height / 2.0;
    const Vec3 a(x0 - cx, y0 - cy, f);
    const Vec3 b(x1 - cx, y1 - cy, f);
    const double cosang =
        std::clamp(a.dot(b) / (a.norm() * b.norm()), -1.0, 1.0);
    return std::acos(cosang) * 180.0 / M_PI;
}

IVTClassifier::IVTClassifier(const DisplayGeometry &geom,
                             double saccade_velocity_deg_per_sec)
    : geom_(geom), threshold_(saccade_velocity_deg_per_sec)
{
    if (!(threshold_ > 0.0))
        throw std::invalid_argument(
            "IVTClassifier: saccade velocity threshold must be > 0");
}

GazePhase
IVTClassifier::update(const GazeSample &sample)
{
    lastVelocity_ = 0.0;
    if (havePrev_ && sample.timeSeconds > prev_.timeSeconds) {
        const double dt = sample.timeSeconds - prev_.timeSeconds;
        lastVelocity_ = gazeAngleDeg(geom_, prev_.x, prev_.y, sample.x,
                                     sample.y) /
                        dt;
    }
    havePrev_ = true;
    prev_ = sample;
    return lastVelocity_ > threshold_ ? GazePhase::Saccade
                                      : GazePhase::Fixation;
}

void
IVTClassifier::reset()
{
    havePrev_ = false;
    lastVelocity_ = 0.0;
}

std::vector<GazePhase>
classifyIVT(const GazeTrace &trace, const DisplayGeometry &geom,
            double saccade_velocity_deg_per_sec)
{
    IVTClassifier ivt(geom, saccade_velocity_deg_per_sec);
    std::vector<GazePhase> phases;
    phases.reserve(trace.samples.size());
    for (const GazeSample &s : trace.samples)
        phases.push_back(ivt.update(s));
    return phases;
}

GazeTrace
smoothPursuitTrace(double duration_seconds, double sample_hz,
                   double center_x, double center_y, double radius_px,
                   double period_seconds)
{
    if (!(duration_seconds >= 0.0) || !(sample_hz > 0.0) ||
        !(period_seconds > 0.0) || !(radius_px >= 0.0))
        throw std::invalid_argument("smoothPursuitTrace: bad params");
    GazeTrace trace;
    const auto n = static_cast<std::size_t>(
        std::floor(duration_seconds * sample_hz)) + 1;
    trace.samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / sample_hz;
        const double phase = 2.0 * M_PI * t / period_seconds;
        trace.samples.push_back(
            {t, center_x + radius_px * std::cos(phase),
             center_y + radius_px * std::sin(phase)});
    }
    return trace;
}

GazeTrace
saccadeJumpTrace(const DisplayGeometry &geom, double duration_seconds,
                 double sample_hz, double mean_fixation_seconds,
                 Rng &rng, double extent_fraction)
{
    if (!(duration_seconds >= 0.0) || !(sample_hz > 0.0) ||
        !(mean_fixation_seconds > 0.0) || !(extent_fraction > 0.0) ||
        extent_fraction > 1.0)
        throw std::invalid_argument("saccadeJumpTrace: bad params");
    const double x_lo = geom.width * (1.0 - extent_fraction) / 2.0;
    const double x_hi = geom.width - x_lo;
    const double y_lo = geom.height * (1.0 - extent_fraction) / 2.0;
    const double y_hi = geom.height - y_lo;

    GazeTrace trace;
    const auto n = static_cast<std::size_t>(
        std::floor(duration_seconds * sample_hz)) + 1;
    trace.samples.reserve(n);
    double fx = rng.uniform(x_lo, x_hi);
    double fy = rng.uniform(y_lo, y_hi);
    // Exponential dwell (clamped to one sample so every fixation is
    // observable), re-drawn after each jump.
    double next_jump =
        -mean_fixation_seconds * std::log(1.0 - rng.uniform());
    next_jump = std::max(next_jump, 1.0 / sample_hz);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / sample_hz;
        if (t >= next_jump) {
            fx = rng.uniform(x_lo, x_hi);
            fy = rng.uniform(y_lo, y_hi);
            double dwell =
                -mean_fixation_seconds * std::log(1.0 - rng.uniform());
            dwell = std::max(dwell, 1.0 / sample_hz);
            next_jump = t + dwell;
        }
        trace.samples.push_back({t, fx, fy});
    }
    return trace;
}

void
addTrackerNoise(GazeTrace &trace, double sigma_px, Rng &rng)
{
    if (!(sigma_px >= 0.0))
        throw std::invalid_argument("addTrackerNoise: sigma_px < 0");
    for (GazeSample &s : trace.samples) {
        s.x += rng.gaussian(0.0, sigma_px);
        s.y += rng.gaussian(0.0, sigma_px);
    }
}

namespace {

/** Parse one strict double field; throws on trailing garbage. */
double
parseField(const std::string &field, std::size_t line_no)
{
    std::size_t consumed = 0;
    double v = 0.0;
    try {
        v = std::stod(field, &consumed);
    } catch (const std::exception &) {
        throw std::runtime_error(
            "gaze CSV line " + std::to_string(line_no) +
            ": not a number: \"" + field + "\"");
    }
    // Allow trailing spaces only.
    for (std::size_t i = consumed; i < field.size(); ++i)
        if (field[i] != ' ' && field[i] != '\t' && field[i] != '\r')
            throw std::runtime_error(
                "gaze CSV line " + std::to_string(line_no) +
                ": trailing garbage in \"" + field + "\"");
    if (!std::isfinite(v))
        throw std::runtime_error("gaze CSV line " +
                                 std::to_string(line_no) +
                                 ": non-finite value");
    return v;
}

bool
looksNumeric(const std::string &field)
{
    for (char c : field)
        if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.')
            return true;
    return false;
}

} // namespace

GazeTrace
loadGazeTraceCsv(std::istream &in)
{
    GazeTrace trace;
    std::string line;
    std::size_t line_no = 0;
    bool first_content = true;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and surrounding whitespace.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto is_ws = [](char c) {
            return c == ' ' || c == '\t' || c == '\r';
        };
        while (!line.empty() && is_ws(line.back()))
            line.pop_back();
        std::size_t start = 0;
        while (start < line.size() && is_ws(line[start]))
            ++start;
        line.erase(0, start);
        if (line.empty())
            continue;

        std::vector<std::string> fields;
        std::stringstream ss(line);
        std::string field;
        while (std::getline(ss, field, ','))
            fields.push_back(field);
        if (first_content && !fields.empty() &&
            !looksNumeric(fields[0])) {
            first_content = false;  // header row (e.g. "time,x,y")
            continue;
        }
        first_content = false;
        if (fields.size() != 3)
            throw std::runtime_error(
                "gaze CSV line " + std::to_string(line_no) +
                ": expected 3 fields (time,x,y), got " +
                std::to_string(fields.size()));
        GazeSample s;
        s.timeSeconds = parseField(fields[0], line_no);
        s.x = parseField(fields[1], line_no);
        s.y = parseField(fields[2], line_no);
        if (!trace.samples.empty() &&
            s.timeSeconds <= trace.samples.back().timeSeconds)
            throw std::runtime_error(
                "gaze CSV line " + std::to_string(line_no) +
                ": timestamps must be strictly increasing");
        trace.samples.push_back(s);
    }
    return trace;
}

GazeTrace
loadGazeTraceCsv(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("gaze CSV: cannot open " + path);
    return loadGazeTraceCsv(in);
}

void
saveGazeTraceCsv(const GazeTrace &trace, std::ostream &out)
{
    out << "time,x,y\n";
    out.precision(17);
    for (const GazeSample &s : trace.samples)
        out << s.timeSeconds << ',' << s.x << ',' << s.y << '\n';
}

} // namespace pce
