#include "gaze/incremental_ecc.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/integrity.hh"

namespace pce {

IncrementalEccentricity::IncrementalEccentricity(
    const DisplayGeometry &geom, const IncrementalEccParams &params)
    : geom_(geom), params_(params)
{
    if (geom_.width < 1 || geom_.height < 1)
        throw std::invalid_argument(
            "IncrementalEccentricity: empty display");
    if (!(params_.maxShiftPx >= 0.0))
        throw std::invalid_argument(
            "IncrementalEccentricity: maxShiftPx < 0");
    if (!(params_.maxAccumulatedErrorDeg > 0.0))
        throw std::invalid_argument(
            "IncrementalEccentricity: maxAccumulatedErrorDeg <= 0");
    if (!(params_.exactBandDeg >= 0.0))
        throw std::invalid_argument(
            "IncrementalEccentricity: exactBandDeg < 0");
}

double
IncrementalEccentricity::shiftErrorBoundDeg(const DisplayGeometry &geom,
                                            double dx, double dy)
{
    // Spherical triangle inequality: the shifted lookup differs from
    // the exact value by at most the angular motion of the fixation
    // ray plus that of the pixel ray. A plane point moving s pixels
    // rotates its view ray by at most s / focal radians (the direction
    // Jacobian's singular values are f/(r^2+f^2) and 1/sqrt(r^2+f^2),
    // both <= 1/f), so: bound = (|delta| + |rounded delta|) / f.
    const double f = geom.focalPixels();
    const double d = std::hypot(dx, dy);
    const double di = std::hypot(static_cast<double>(std::lround(dx)),
                                 static_cast<double>(std::lround(dy)));
    return (d + di) / f * 180.0 / M_PI;
}

double
IncrementalEccentricity::exactBandRadiusPx() const
{
    const double band = params_.exactBandDeg;
    if (band <= 0.0)
        return 0.0;
    const double cx = geom_.width / 2.0;
    const double cy = geom_.height / 2.0;
    double ux = geom_.fixationX - cx;
    double uy = geom_.fixationY - cy;
    const double n = std::hypot(ux, uy);
    if (n < 1e-12) {
        ux = 1.0;  // centered fixation: the band is a circle
        uy = 0.0;
    } else {
        ux /= n;
        uy /= n;
    }

    // The iso-eccentricity contour {ecc == band} is the conic of a
    // cone (half-angle band) around the fixation ray with the display
    // plane; the fixation sits on its major axis, which lies along the
    // radial line through the display center. The farthest contour
    // point from the fixation is therefore one of the two crossings of
    // that line, each found by bisection (eccentricity is monotone
    // along any ray leaving the fixation).
    const double t_max = std::hypot(static_cast<double>(geom_.width),
                                    static_cast<double>(geom_.height));
    double radius = 0.0;
    for (double s : {1.0, -1.0}) {
        const auto ecc_at = [&](double t) {
            return geom_.eccentricityDeg(geom_.fixationX + s * ux * t,
                                         geom_.fixationY + s * uy * t);
        };
        double t;
        if (ecc_at(t_max) <= band) {
            t = t_max;  // the whole display direction is in-band
        } else {
            double lo = 0.0, hi = t_max;
            while (hi - lo > 1e-6) {
                const double mid = 0.5 * (lo + hi);
                (ecc_at(mid) <= band ? lo : hi) = mid;
            }
            t = hi;
        }
        radius = std::max(radius, t);
    }
    return radius + 1.0;  // one pixel of slack against rounding
}

void
IncrementalEccentricity::refixate(EccentricityMap &map, double fix_x,
                                  double fix_y, RefixStats *stats)
{
    const int w = geom_.width;
    const int h = geom_.height;
    if (map.width() != w || map.height() != h)
        throw std::invalid_argument(
            "IncrementalEccentricity::refixate: map does not match "
            "the display geometry");

    RefixStats st;

    // Tracker glitches land off-display; clamp so the fixation stays
    // a display position (the foveal region is then at the edge).
    const double cx = std::clamp(fix_x, 0.0,
                                 static_cast<double>(w - 1));
    const double cy = std::clamp(fix_y, 0.0,
                                 static_cast<double>(h - 1));
    st.clamped = (cx != fix_x) || (cy != fix_y);

    const double dx = cx - map.fixationX_;
    const double dy = cy - map.fixationY_;
    const double delta = std::hypot(dx, dy);
    const int dxi = static_cast<int>(std::lround(dx));
    const int dyi = static_cast<int>(std::lround(dy));
    const double step = shiftErrorBoundDeg(geom_, dx, dy);

    geom_.fixationX = cx;
    geom_.fixationY = cy;

    if (delta > params_.maxShiftPx ||
        accumulated_ + step > params_.maxAccumulatedErrorDeg ||
        std::abs(dxi) >= w || std::abs(dyi) >= h) {
        // Fallback: exact full rebuild, reusing the map's storage.
        map.rebuild(geom_);
        accumulated_ = 0.0;
        st.fullRebuild = true;
        st.recomputedPixels =
            static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
        st.exactRect = TileRect{0, 0, w, h};
        if (stats)
            *stats = st;
        return;
    }

    // ---- 1. shift the stored field by the rounded delta ------------
    double *e = map.ecc_.data();
    const auto row = [&](int y) {
        return e + static_cast<std::size_t>(y) * w;
    };
    if (dxi != 0 || dyi != 0) {
        const int dst_x = std::max(0, dxi);
        const int src_x = std::max(0, -dxi);
        const std::size_t count = static_cast<std::size_t>(
            w - std::abs(dxi));
        // Row order follows the shift direction so source rows are
        // read before they are overwritten; same-row moves overlap and
        // rely on memmove semantics.
        if (dyi >= 0) {
            for (int y = h - 1; y >= dyi; --y)
                std::memmove(row(y) + dst_x, row(y - dyi) + src_x,
                             count * sizeof(double));
        } else {
            for (int y = 0; y < h + dyi; ++y)
                std::memmove(row(y) + dst_x, row(y - dyi) + src_x,
                             count * sizeof(double));
        }
        st.shiftedPixels =
            count * static_cast<std::size_t>(h - std::abs(dyi));
    }
    map.fixationX_ = cx;
    map.fixationY_ = cy;
    accumulated_ += step;
    st.stepErrorBoundDeg = step;
    st.accumulatedErrorBoundDeg = accumulated_;

    // ---- 2. recompute the bands the shift cannot supply ------------
    const auto recompute = [&](int x0, int y0, int x1, int y1) {
        x0 = std::max(x0, 0);
        y0 = std::max(y0, 0);
        x1 = std::min(x1, w);
        y1 = std::min(y1, h);
        for (int y = y0; y < y1; ++y) {
            double *r = row(y);
            for (int x = x0; x < x1; ++x)
                r[x] = geom_.eccentricityDeg(x, y);
        }
        if (x1 > x0 && y1 > y0)
            st.recomputedPixels += static_cast<std::size_t>(x1 - x0) *
                                   static_cast<std::size_t>(y1 - y0);
    };

    // Incoming border rows/columns (no source under the shift).
    if (dyi > 0)
        recompute(0, 0, w, dyi);
    else if (dyi < 0)
        recompute(0, h + dyi, w, h);
    const int mid_y0 = std::max(0, dyi);
    const int mid_y1 = std::min(h, h + dyi);
    if (dxi > 0)
        recompute(0, mid_y0, dxi, mid_y1);
    else if (dxi < 0)
        recompute(w + dxi, mid_y0, w, mid_y1);

    // The always-exact foveal band around the new fixation.
    const double radius = exactBandRadiusPx();
    const int bx0 = std::max(
        0, static_cast<int>(std::floor(cx - radius)));
    const int by0 = std::max(
        0, static_cast<int>(std::floor(cy - radius)));
    const int bx1 = std::min(
        w, static_cast<int>(std::ceil(cx + radius)) + 1);
    const int by1 = std::min(
        h, static_cast<int>(std::ceil(cy + radius)) + 1);
    recompute(bx0, by0, bx1, by1);
    st.exactRect = TileRect{bx0, by0, bx1 - bx0, by1 - by0};

    if (stats)
        *stats = st;
}

void
IncrementalEccentricity::rebuildAt(EccentricityMap &map, double fix_x,
                                   double fix_y)
{
    if (map.width() != geom_.width || map.height() != geom_.height)
        throw std::invalid_argument(
            "IncrementalEccentricity::rebuildAt: map does not match "
            "the display geometry");
    geom_.fixationX = std::clamp(
        fix_x, 0.0, static_cast<double>(geom_.width - 1));
    geom_.fixationY = std::clamp(
        fix_y, 0.0, static_cast<double>(geom_.height - 1));
    map.rebuild(geom_);
    accumulated_ = 0.0;
}

GazeTrackedEccentricity::GazeTrackedEccentricity(
    const DisplayGeometry &geom, const IncrementalEccParams &params,
    double saccade_velocity_deg_per_sec)
    : map_(geom), updater_(geom, params),
      classifier_(geom, saccade_velocity_deg_per_sec)
{}

GazePhase
GazeTrackedEccentricity::update(const GazeSample &sample,
                                RefixStats *stats)
{
    phase_ = classifier_.update(sample);
    if (phase_ == GazePhase::Saccade) {
        // Saccadic suppression: the encoder bypasses adjustment for
        // this frame, so the map is not consulted — defer the update
        // until the saccade lands (that landing delta usually takes
        // the full-rebuild fallback).
        ++deferred_;
        if (stats)
            *stats = RefixStats{};
        return phase_;
    }
    updater_.refixate(map_, sample.x, sample.y, &lastRefix_);
    ++refixations_;
    if (lastRefix_.fullRebuild)
        ++fullRebuilds_;
    // Keep an active seal current: the refixate above legitimately
    // rewrote map values, so the checksum must follow it.
    if (seal_.valid)
        sealState();
    if (stats)
        *stats = lastRefix_;
    return phase_;
}

std::uint64_t
GazeTrackedEccentricity::mapHash() const
{
    return hash64(map_.data(),
                  static_cast<std::size_t>(map_.width()) *
                      static_cast<std::size_t>(map_.height()) *
                      sizeof(double));
}

void
GazeTrackedEccentricity::sealState()
{
    seal_.mapHash = mapHash();
    seal_.fixX = map_.fixationX();
    seal_.fixY = map_.fixationY();
    seal_.accumulated = updater_.accumulatedErrorBoundDeg();
    seal_.valid = true;
}

bool
GazeTrackedEccentricity::verifyState() const
{
    if (!seal_.valid)
        return true;
    return mapHash() == seal_.mapHash &&
           map_.fixationX() == seal_.fixX &&
           map_.fixationY() == seal_.fixY &&
           updater_.accumulatedErrorBoundDeg() == seal_.accumulated;
}

bool
GazeTrackedEccentricity::verifyAndRecoverState()
{
    if (verifyState())
        return true;
    // The sealed fixation is the last state known good; an exact
    // rebuild there restores a bit-identical map when the sealed map
    // was itself exact, and an error-bound-free one otherwise.
    updater_.rebuildAt(map_, seal_.fixX, seal_.fixY);
    ++recoveries_;
    sealState();
    return false;
}

} // namespace pce
